// Command hpmlint runs the repository's domain-aware static-analysis
// suite over the given packages:
//
//	go run ./cmd/hpmlint ./...
//
// Exit code contract (CI depends on it):
//
//	0  no findings (or all findings baselined / expectations met)
//	1  findings remain, new findings versus the baseline, or an -expect
//	   count mismatch
//	2  usage errors, load/type-check errors, or an unreadable baseline
//	   or expectations file
//
// Flags:
//
//	-rules                  list the analyzers and exit
//	-format text|json|sarif findings output format (default text)
//	-baseline FILE          fail only on findings not in FILE; report
//	                        stale entries on stderr
//	-write-baseline FILE    write the current findings to FILE and exit 0
//	-expect FILE            compare per-fixture-directory rule counts
//	                        against the golden JSON in FILE
//
// Findings are suppressed in source with //hpmlint:ignore <rule> <reason>.
// See internal/lint for the rules.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("rules", false, "list the analyzers and exit")
	format := flag.String("format", "text", "findings output format: text, json, or sarif")
	baselinePath := flag.String("baseline", "", "baseline file; only findings absent from it fail the run")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	expectPath := flag.String("expect", "", "golden per-fixture rule-count JSON to compare findings against")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hpmlint [-rules] [-format text|json|sarif] [-baseline FILE] [-write-baseline FILE] [-expect FILE] <packages>\n")
		fmt.Fprintf(os.Stderr, "packages are directory patterns: ./... or ./internal/hpm\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if flag.NArg() == 0 {
		flag.Usage()
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "hpmlint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpmlint:", err)
		return 2
	}
	diags, err := lint.Run(cwd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpmlint:", err)
		return 2
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpmlint:", err)
		return 2
	}
	findings := lint.Findings(diags, root)

	if *writeBaseline != "" {
		data, err := lint.EncodeBaseline(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpmlint:", err)
			return 2
		}
		if err := os.WriteFile(*writeBaseline, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hpmlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "hpmlint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}

	if *expectPath != "" {
		return checkExpectations(*expectPath, findings)
	}

	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpmlint:", err)
			return 2
		}
		base, err := lint.DecodeBaseline(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpmlint:", err)
			return 2
		}
		fresh, stale := lint.DiffBaseline(findings, base)
		for _, f := range stale {
			fmt.Fprintf(os.Stderr, "hpmlint: stale baseline entry (no longer fires): %s: %s: %s\n", f.File, f.Rule, f.Message)
		}
		if len(stale) > 0 {
			fmt.Fprintf(os.Stderr, "hpmlint: re-run with -write-baseline to shrink the baseline\n")
		}
		findings = fresh
	}

	if err := emit(*format, findings); err != nil {
		fmt.Fprintln(os.Stderr, "hpmlint:", err)
		return 2
	}
	if len(findings) > 0 {
		if *baselinePath != "" {
			fmt.Fprintf(os.Stderr, "hpmlint: %d new finding(s) not in baseline\n", len(findings))
		} else {
			fmt.Fprintf(os.Stderr, "hpmlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// emit writes findings to stdout in the selected format. A clean run still
// emits valid (empty) json/sarif documents, so consumers can parse
// unconditionally.
func emit(format string, findings []lint.Finding) error {
	switch format {
	case "json":
		return lint.WriteJSON(os.Stdout, findings)
	case "sarif":
		return lint.WriteSARIF(os.Stdout, findings, lint.Analyzers())
	default:
		return lint.WriteText(os.Stdout, findings)
	}
}

// checkExpectations compares findings, grouped by the base name of the
// directory that produced them, against the golden counts file:
//
//	{"puretaint": {"puretaint": 7}, "locks": {"lockorder": 5, "guarded": 1}}
//
// The comparison is exact in both directions: a fixture producing the
// wrong count, an expected fixture producing nothing, and an unexpected
// fixture producing anything all fail. This is how CI proves the linter
// still *detects* — a build-broken or silently-neutered analyzer cannot
// sneak through as "no findings".
func checkExpectations(path_ string, findings []lint.Finding) int {
	data, err := os.ReadFile(path_)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpmlint:", err)
		return 2
	}
	var want map[string]map[string]int
	if err := json.Unmarshal(data, &want); err != nil {
		fmt.Fprintf(os.Stderr, "hpmlint: %s: %v\n", path_, err)
		return 2
	}

	got := make(map[string]map[string]int)
	for _, f := range findings {
		fixture := path.Base(path.Dir(f.File))
		if got[fixture] == nil {
			got[fixture] = make(map[string]int)
		}
		got[fixture][f.Rule]++
	}

	var problems []string
	keys := make(map[string]bool)
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	var fixtures []string
	for k := range keys {
		fixtures = append(fixtures, k)
	}
	sort.Strings(fixtures)
	for _, fixture := range fixtures {
		rules := make(map[string]bool)
		for r := range want[fixture] {
			rules[r] = true
		}
		for r := range got[fixture] {
			rules[r] = true
		}
		var ruleNames []string
		for r := range rules {
			ruleNames = append(ruleNames, r)
		}
		sort.Strings(ruleNames)
		for _, r := range ruleNames {
			w, g := want[fixture][r], got[fixture][r]
			if w != g {
				problems = append(problems, fmt.Sprintf("%s: rule %s: want %d finding(s), got %d", fixture, r, w, g))
			}
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "hpmlint: expectation mismatch:", p)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "hpmlint: expectations met: %d finding(s) across %d fixture(s)\n", len(findings), len(want))
	return 0
}
