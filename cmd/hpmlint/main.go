// Command hpmlint runs the repository's domain-aware static-analysis
// suite over the given packages:
//
//	go run ./cmd/hpmlint ./...
//
// It exits 0 when every finding is fixed or explicitly suppressed with an
// //hpmlint:ignore <rule> <reason> comment, 1 when findings remain, and 2
// on usage or load errors. See internal/lint for the rules.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("rules", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hpmlint [-rules] <packages>\n")
		fmt.Fprintf(os.Stderr, "packages are directory patterns: ./... or ./internal/hpm\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpmlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(cwd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpmlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hpmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
