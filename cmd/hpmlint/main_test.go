package main

// The CLI contract test: exit codes, output schemas, suppression
// round-trips and the baseline/expectation gates, exercised end to end
// against the built binary. Each case runs hpmlint inside a throwaway
// module so the assertions cannot be perturbed by (or perturb) the real
// tree.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// binary builds hpmlint once per test run.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "hpmlint-bin-*")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "hpmlint")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building hpmlint: %v\n%s", buildErr, binPath)
	}
	return binPath
}

// module writes a throwaway module with the given files (path -> source)
// and returns its root.
func module(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runLint executes hpmlint in dir and returns (stdout, stderr, exit code).
func runLint(t *testing.T, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(binary(t), args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running hpmlint: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

const cleanSrc = `package clean

// Key derives a profile key.
//
//hpmlint:pure
func Key(seed uint64) uint64 { return seed * 2654435761 }
`

// dirtySrc has exactly one finding: a clock read on a pure chain.
const dirtySrc = `package dirty

import "time"

// Key mixes in the clock — the violation under test.
//
//hpmlint:pure
func Key(seed uint64) uint64 {
	return seed ^ salt()
}

func salt() uint64 {
	return uint64(time.Now().UnixNano())
}
`

// suppressedSrc is dirtySrc with the sanctioned suppression in place.
const suppressedSrc = `package dirty

import "time"

// Key mixes in the clock, by recorded decision.
//
//hpmlint:pure
func Key(seed uint64) uint64 {
	return seed ^ salt()
}

func salt() uint64 {
	//hpmlint:ignore puretaint boot salt is recorded in the run manifest
	return uint64(time.Now().UnixNano())
}
`

func TestExitCodeClean(t *testing.T) {
	dir := module(t, map[string]string{"clean/clean.go": cleanSrc})
	stdout, _, code := runLint(t, dir, "./...")
	if code != 0 {
		t.Fatalf("clean module: exit %d, stdout:\n%s", code, stdout)
	}
	if stdout != "" {
		t.Errorf("clean module: unexpected output %q", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	dir := module(t, map[string]string{"dirty/dirty.go": dirtySrc})
	stdout, stderr, code := runLint(t, dir, "./...")
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "puretaint") || !strings.Contains(stdout, "reads the wall clock") {
		t.Errorf("finding not reported:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("stderr summary missing: %q", stderr)
	}
}

func TestExitCodeUsage(t *testing.T) {
	dir := module(t, map[string]string{"clean/clean.go": cleanSrc})
	cases := [][]string{
		{},                                  // no patterns
		{"-format", "yaml", "./..."},        // unknown format
		{"-baseline", "nope.json", "./..."}, // missing baseline file
		{"./no/such/dir"},                   // load error
	}
	for _, args := range cases {
		if _, _, code := runLint(t, dir, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestFormatJSONSchema(t *testing.T) {
	dir := module(t, map[string]string{"dirty/dirty.go": dirtySrc})
	stdout, _, code := runLint(t, dir, "-format", "json", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var rep struct {
		Version  int `json:"version"`
		Findings []struct {
			Rule    string `json:"rule"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Message string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stdout is not the json envelope: %v\n%s", err, stdout)
	}
	if rep.Version != 1 {
		t.Errorf("version = %d, want 1", rep.Version)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings in json output")
	}
	f := rep.Findings[0]
	if f.Rule != "puretaint" || f.File != "dirty/dirty.go" || f.Line == 0 {
		t.Errorf("unexpected finding: %+v", f)
	}
	if strings.Contains(f.File, "\\") || filepath.IsAbs(f.File) {
		t.Errorf("file not a slash-relative path: %q", f.File)
	}

	// A clean run still emits a parseable (empty) envelope.
	clean := module(t, map[string]string{"clean/clean.go": cleanSrc})
	stdout, _, code = runLint(t, clean, "-format", "json", "./...")
	if code != 0 {
		t.Fatalf("clean: exit %d", code)
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("clean json: %v\n%s", err, stdout)
	}
	if rep.Findings == nil || len(rep.Findings) != 0 {
		t.Errorf("clean run findings = %v, want present-and-empty", rep.Findings)
	}
}

func TestFormatSARIF(t *testing.T) {
	dir := module(t, map[string]string{"dirty/dirty.go": dirtySrc})
	stdout, _, code := runLint(t, dir, "-format", "sarif", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("stdout is not sarif: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("unexpected sarif: %s", stdout)
	}
	if log.Runs[0].Results[0].RuleID != "puretaint" {
		t.Errorf("ruleId = %q", log.Runs[0].Results[0].RuleID)
	}
}

// TestSuppressionRoundTrip proves //hpmlint:ignore flips the exit code and
// nothing else does: same code, with and without the comment.
func TestSuppressionRoundTrip(t *testing.T) {
	dirty := module(t, map[string]string{"dirty/dirty.go": dirtySrc})
	if _, _, code := runLint(t, dirty, "./..."); code != 1 {
		t.Fatalf("unsuppressed: exit %d, want 1", code)
	}
	sup := module(t, map[string]string{"dirty/dirty.go": suppressedSrc})
	stdout, _, code := runLint(t, sup, "./...")
	if code != 0 {
		t.Fatalf("suppressed: exit %d, want 0\n%s", code, stdout)
	}
}

func TestBaselineGate(t *testing.T) {
	dir := module(t, map[string]string{"dirty/dirty.go": dirtySrc})

	// Accept the current findings as the baseline.
	_, stderr, code := runLint(t, dir, "-write-baseline", "base.json", "./...")
	if code != 0 {
		t.Fatalf("write-baseline: exit %d\n%s", code, stderr)
	}
	// Gated run is now clean.
	stdout, _, code := runLint(t, dir, "-baseline", "base.json", "./...")
	if code != 0 {
		t.Fatalf("baselined run: exit %d\n%s", code, stdout)
	}

	// A second violation is new against the baseline: exit 1, and only
	// the new finding is reported.
	second := strings.Replace(dirtySrc, "package dirty", "package dirty2", 1)
	if err := os.MkdirAll(filepath.Join(dir, "dirty2"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dirty2", "dirty2.go"), []byte(second), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code = runLint(t, dir, "-baseline", "base.json", "./...")
	if code != 1 {
		t.Fatalf("new finding vs baseline: exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "dirty2") || strings.Contains(stdout, "dirty/dirty.go") {
		t.Errorf("should report only the new finding:\n%s", stdout)
	}
	if !strings.Contains(stderr, "new finding(s) not in baseline") {
		t.Errorf("stderr: %q", stderr)
	}

	// Fix the original violation: its baseline entry is stale, reported on
	// stderr, but the gate stays green.
	if err := os.WriteFile(filepath.Join(dir, "dirty", "dirty.go"), []byte(suppressedSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, "dirty2")); err != nil {
		t.Fatal(err)
	}
	_, stderr, code = runLint(t, dir, "-baseline", "base.json", "./...")
	if code != 0 {
		t.Fatalf("stale-only run: exit %d, want 0\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "stale baseline entry") {
		t.Errorf("stale entry not reported: %q", stderr)
	}
}

func TestExpectGate(t *testing.T) {
	dir := module(t, map[string]string{
		"dirty/dirty.go": dirtySrc,
		"clean/clean.go": cleanSrc,
	})
	good := `{"dirty": {"puretaint": 1}}`
	if err := os.WriteFile(filepath.Join(dir, "want.json"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runLint(t, dir, "-expect", "want.json", "./...")
	if code != 0 {
		t.Fatalf("matching expectations: exit %d\n%s", code, stderr)
	}

	// Wrong count, missing fixture, and unexpected fixture all fail.
	for _, bad := range []string{
		`{"dirty": {"puretaint": 2}}`,
		`{"dirty": {"puretaint": 1}, "ghost": {"puretaint": 1}}`,
		`{}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, "want.json"), []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		_, stderr, code = runLint(t, dir, "-expect", "want.json", "./...")
		if code != 1 {
			t.Errorf("expectations %s: exit %d, want 1\n%s", bad, code, stderr)
		}
		if !strings.Contains(stderr, "expectation mismatch") {
			t.Errorf("expectations %s: stderr %q", bad, stderr)
		}
	}

	// An unreadable expectations file is an environment error, not a lint
	// failure.
	if _, _, code := runLint(t, dir, "-expect", "missing.json", "./..."); code != 2 {
		t.Errorf("missing expectations file: exit %d, want 2", code)
	}
}

func TestRulesListsAllAnalyzers(t *testing.T) {
	dir := module(t, map[string]string{"clean/clean.go": cleanSrc})
	stdout, _, code := runLint(t, dir, "-rules")
	if code != 0 {
		t.Fatalf("-rules: exit %d", code)
	}
	for _, rule := range []string{
		"nondeterminism", "counterwidth", "guarded", "floatcompare",
		"unitsmixing", "puretaint", "lockorder", "hotalloc",
	} {
		if !strings.Contains(stdout, rule) {
			t.Errorf("-rules output missing %s:\n%s", rule, stdout)
		}
	}
}
