// Command rs2hpmd is the RS2HPM data-collection daemon: it fronts a set of
// simulated SP2 nodes, keeps their POWER2 hardware counters advancing by
// running a workload kernel on each, and serves counter snapshots over TCP
// using the line protocol the rs2hpm client and collector speak.
//
// Usage:
//
//	rs2hpmd [-addr 127.0.0.1:7117] [-nodes 4] [-kernel cfd] [-chunk 200000]
//	        [-http 127.0.0.1:0]
//
// The daemon prints its bound address on startup (useful with :0) and runs
// until interrupted. With -http it also serves its own telemetry — the
// paper's self-measurement ethos applied to the daemon itself — at
// /metrics (Prometheus text) and /debug/hpmvars (JSON).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/node"
	"repro/internal/rs2hpm"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7117", "TCP listen address")
	nNodes := flag.Int("nodes", 4, "number of simulated nodes to front")
	kernel := flag.String("kernel", "cfd", "kernel each node runs (see internal/kernels)")
	chunk := flag.Uint64("chunk", 200_000, "instructions simulated per node per tick")
	tick := flag.Duration("tick", 250*time.Millisecond, "wall-clock interval between simulation bursts")
	flaky := flag.Float64("flaky", 0, "probability a counter read fails transiently (0 disables; exercises client retry paths)")
	flakySeed := flag.Uint64("flaky-seed", 1, "seed for the deterministic read-failure stream")
	httpAddr := flag.String("http", "", "serve telemetry over HTTP here (/metrics and /debug/hpmvars; empty disables)")
	protocol := flag.Int("protocol", rs2hpm.LatestProtocol,
		"wire protocol version to speak (1 = single-GET only, 2 = adds VERSION/MGET; lets a fleet stage mixed-version rollouts)")
	flag.Parse()

	k, ok := kernels.ByName(*kernel)
	if !ok {
		fmt.Fprintf(os.Stderr, "rs2hpmd: unknown kernel %q\n", *kernel)
		os.Exit(2)
	}
	if *protocol < rs2hpm.ProtocolV1 || *protocol > rs2hpm.LatestProtocol {
		fmt.Fprintf(os.Stderr, "rs2hpmd: -protocol must be between %d and %d\n",
			rs2hpm.ProtocolV1, rs2hpm.LatestProtocol)
		os.Exit(2)
	}

	nodes := make([]*node.Node, *nNodes)
	streams := make([]isa.Stream, *nNodes)
	daemon := rs2hpm.NewDaemonProtocol(*protocol)
	for i := range nodes {
		nodes[i] = node.New(node.Config{ID: i})
		streams[i] = k.New(uint64(i) + 1)
		if *flaky > 0 {
			daemon.AddSource(faults.NewUnreliableSource(nodes[i], *flakySeed, *flaky))
		} else {
			daemon.AddSource(nodes[i])
		}
	}

	bound, err := daemon.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rs2hpmd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("rs2hpmd: serving %d nodes running %q on %s (protocol v%d)\n", *nNodes, k.Name, bound, *protocol)

	telemetry.Default.Gauge("rs2hpmd.nodes").Set(int64(*nNodes))
	telTicks := telemetry.Default.Counter("rs2hpmd.ticks")
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rs2hpmd: telemetry listen: %v\n", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: telemetry.Handler(telemetry.Default)}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("rs2hpmd: telemetry on http://%s/metrics and /debug/hpmvars\n", ln.Addr())
	}

	// Keep the counters moving: each tick simulates a burst on every node.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			telTicks.Inc()
			for i, nd := range nodes {
				nd.RunLimited(streams[i], *chunk)
			}
		case <-stop:
			fmt.Println("rs2hpmd: shutting down")
			daemon.Close()
			return
		}
	}
}
