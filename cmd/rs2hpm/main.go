// Command rs2hpm is the counter-sampling client: it dials an rs2hpmd
// daemon, lists the nodes it serves, and prints either raw counter totals
// or — with -watch — the rates over a sampling interval, reduced exactly
// as the paper's tables reduce them.
//
// Usage:
//
//	rs2hpm -addr 127.0.0.1:7117            # raw totals per node
//	rs2hpm -addr 127.0.0.1:7117 -watch 5s  # rates over a 5-second window
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/hpm"
	"repro/internal/rs2hpm"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7117", "daemon address")
	watch := flag.Duration("watch", 0, "sample twice this far apart and print rates")
	flag.Parse()

	client, err := rs2hpm.Dial(*addr)
	if err != nil {
		fail(err)
	}
	defer client.Close()

	ids, err := client.Nodes()
	if err != nil {
		fail(err)
	}
	fmt.Printf("rs2hpm: daemon at %s serves %d nodes\n", *addr, len(ids))

	if *watch <= 0 {
		for _, id := range ids {
			c, err := client.Counters(id)
			if err != nil {
				fail(err)
			}
			printTotals(id, c)
		}
		return
	}

	before := map[int]hpm.Counts64{}
	for _, id := range ids {
		c, err := client.Counters(id)
		if err != nil {
			fail(err)
		}
		before[id] = c
	}
	time.Sleep(*watch)
	secs := watch.Seconds()
	for _, id := range ids {
		c, err := client.Counters(id)
		if err != nil {
			fail(err)
		}
		d := hpm.Sub64(before[id], c)
		r := hpm.UserRates(d, secs)
		fmt.Printf("node %3d: %7.2f Mflops  %7.2f Mips  fma-frac %.2f  fpu0/fpu1 %.2f  "+
			"cache %.3f M/s  tlb %.4f M/s  sys/user-fxu %.2f\n",
			id, r.MflopsAll, r.Mips, r.FMAFraction(), r.FPUAsymmetry(),
			r.DCacheMissM, r.TLBMissM, hpm.SystemUserFXURatio(d))
	}
}

func printTotals(id int, c hpm.Counts64) {
	fmt.Printf("node %d:\n", id)
	for ev := hpm.Event(0); ev < hpm.NumEvents; ev++ {
		info := hpm.Info(ev)
		fmt.Printf("  %-20s %-8s %14d %14d\n",
			info.Label, fmt.Sprintf("%s[%d]", info.Group, info.Index),
			c.Get(hpm.User, ev), c.Get(hpm.System, ev))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rs2hpm: %v\n", err)
	os.Exit(1)
}
