// Command rs2hpm is the counter-sampling client: it dials an rs2hpmd
// daemon, lists the nodes it serves, and prints either raw counter totals
// or — with -watch — the rates over a sampling interval, reduced exactly
// as the paper's tables reduce them. With -collect it instead runs the
// sustained collection service: pooled connections, batched MGET sweeps,
// and a bounded ingestion queue, against one daemon or a whole fleet.
//
// Usage:
//
//	rs2hpm -addr 127.0.0.1:7117            # raw totals per node
//	rs2hpm -addr 127.0.0.1:7117 -watch 5s  # rates over a 5-second window
//	rs2hpm -addrs host1:7117,host2:7117 -collect 1m -every 2s
//	       [-pool-size 2] [-batch] [-queue-depth 256] [-queue-policy block]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/hpm"
	"repro/internal/rs2hpm"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7117", "daemon address")
	watch := flag.Duration("watch", 0, "sample twice this far apart and print rates")
	collect := flag.Duration("collect", 0, "run the sustained collection service this long (0 disables)")
	every := flag.Duration("every", time.Second, "sweep interval in collect mode")
	addrs := flag.String("addrs", "", "comma-separated daemon addresses for collect mode (default: -addr)")
	poolSize := flag.Int("pool-size", 2, "idle connections kept per daemon in collect mode")
	batch := flag.Bool("batch", true, "use the batched MGET command against daemons that speak protocol v2")
	queueDepth := flag.Int("queue-depth", 256, "bounded ingestion queue depth in collect mode")
	queuePolicy := flag.String("queue-policy", "block", "full-queue policy in collect mode: block (lossless) or drop (gap-marked)")
	collectors := flag.Int("collectors", 0, "concurrent collector goroutines in collect mode (0 = one per daemon, capped at 4)")
	retries := flag.Int("retries", 2, "per-read retry budget in collect mode")
	flag.Parse()

	if *collect > 0 {
		runCollect(collectSettings{
			addrs:      *addrs,
			fallback:   *addr,
			duration:   *collect,
			every:      *every,
			poolSize:   *poolSize,
			batch:      *batch,
			queueDepth: *queueDepth,
			policy:     *queuePolicy,
			collectors: *collectors,
			retries:    *retries,
		})
		return
	}

	client, err := rs2hpm.Dial(*addr)
	if err != nil {
		fail(err)
	}
	defer client.Close()

	ids, err := client.Nodes()
	if err != nil {
		fail(err)
	}
	fmt.Printf("rs2hpm: daemon at %s serves %d nodes\n", *addr, len(ids))

	if *watch <= 0 {
		for _, id := range ids {
			c, err := client.Counters(id)
			if err != nil {
				fail(err)
			}
			printTotals(id, c)
		}
		return
	}

	before := map[int]hpm.Counts64{}
	for _, id := range ids {
		c, err := client.Counters(id)
		if err != nil {
			fail(err)
		}
		before[id] = c
	}
	time.Sleep(*watch)
	secs := watch.Seconds()
	for _, id := range ids {
		c, err := client.Counters(id)
		if err != nil {
			fail(err)
		}
		d := hpm.Sub64(before[id], c)
		r := hpm.UserRates(d, secs)
		fmt.Printf("node %3d: %7.2f Mflops  %7.2f Mips  fma-frac %.2f  fpu0/fpu1 %.2f  "+
			"cache %.3f M/s  tlb %.4f M/s  sys/user-fxu %.2f\n",
			id, r.MflopsAll, r.Mips, r.FMAFraction(), r.FPUAsymmetry(),
			r.DCacheMissM, r.TLBMissM, hpm.SystemUserFXURatio(d))
	}
}

// collectSettings carries the -collect mode flags.
type collectSettings struct {
	addrs      string
	fallback   string
	duration   time.Duration
	every      time.Duration
	poolSize   int
	batch      bool
	queueDepth int
	policy     string
	collectors int
	retries    int
}

// runCollect is the sustained-collection entry point: the in-process
// equivalent of the paper's 10-minute cron sweep, run continuously with
// pooled connections and batched reads, then accounted for exactly.
func runCollect(s collectSettings) {
	if s.addrs == "" {
		s.addrs = s.fallback
	}
	var list []string
	for _, a := range strings.Split(s.addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			list = append(list, a)
		}
	}
	var policy rs2hpm.BackpressurePolicy
	switch s.policy {
	case "block":
		policy = rs2hpm.BlockOnFull
	case "drop":
		policy = rs2hpm.DropWithGap
	default:
		fail(fmt.Errorf("-queue-policy must be block or drop, got %q", s.policy))
	}

	log := rs2hpm.NewSampleLog()
	svc, err := rs2hpm.NewService(rs2hpm.ServiceConfig{
		Addrs:      list,
		Collectors: s.collectors,
		Batch:      s.batch,
		Retries:    s.retries,
		Pool:       rs2hpm.PoolConfig{Size: s.poolSize, HealthCheck: true},
		Queue:      rs2hpm.IngestConfig{Depth: s.queueDepth, Policy: policy},
	}, log)
	if err != nil {
		fail(err)
	}
	fmt.Printf("rs2hpm: collecting from %d daemon(s) every %v for %v (batch=%v pool=%d queue=%d/%s)\n",
		len(list), s.every, s.duration, s.batch, s.poolSize, s.queueDepth, policy)

	start := time.Now()
	ticker := time.NewTicker(s.every)
	defer ticker.Stop()
	deadline := time.NewTimer(s.duration)
	defer deadline.Stop()
sweeps:
	for {
		if err := svc.SweepOnce(time.Since(start).Seconds()); err != nil {
			// Daemon-level failures are accounted, not fatal: the service
			// keeps sweeping the rest of the fleet.
			fmt.Fprintf(os.Stderr, "rs2hpm: %v\n", err)
		}
		select {
		case <-ticker.C:
		case <-deadline.C:
			break sweeps
		}
	}
	svc.Close()

	l := svc.Ledger()
	fmt.Printf("rs2hpm: %d sweeps, %d daemon-sweeps, %d sweep failures\n",
		l.Sweeps, l.DaemonSweeps, l.SweepFailures)
	fmt.Printf("rs2hpm: offered %d reads: captured %d, gapped %d, dropped %d, rejected %d (gap rate %.4f)\n",
		l.Offered, l.Captured, l.Gapped, l.Dropped, l.Rejected, l.GapRate())
	if err := l.CrossFoot(); err != nil {
		fail(err)
	}
	for _, id := range log.Nodes() {
		if d, secs, ok := log.DeltaOver(id, 0, time.Since(start).Seconds()); ok && secs > 0 {
			r := hpm.UserRates(d, secs)
			fmt.Printf("node %3d: %3d samples over %6.1fs  %7.2f Mflops  %7.2f Mips\n",
				id, log.Len(id), secs, r.MflopsAll, r.Mips)
		}
	}
}

func printTotals(id int, c hpm.Counts64) {
	fmt.Printf("node %d:\n", id)
	for ev := hpm.Event(0); ev < hpm.NumEvents; ev++ {
		info := hpm.Info(ev)
		fmt.Printf("  %-20s %-8s %14d %14d\n",
			info.Label, fmt.Sprintf("%s[%d]", info.Group, info.Index),
			c.Get(hpm.User, ev), c.Get(hpm.System, ev))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rs2hpm: %v\n", err)
	os.Exit(1)
}
