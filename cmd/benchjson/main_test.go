package main

import (
	"math"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkCampaignDay/workers=4-8  \t 3 \t 123456 ns/op \t 1.30 mean-Gflops[paper=1.3]")
	if !ok {
		t.Fatal("line not recognised")
	}
	if b.Name != "CampaignDay/workers=4" || b.Procs != 8 {
		t.Errorf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 3 || math.Abs(b.NsPerOp-123456) > 0.5 {
		t.Errorf("iters/ns = %d/%v", b.Iterations, b.NsPerOp)
	}
	if v := b.Metrics["mean-Gflops[paper=1.3]"]; math.Abs(v-1.3) > 1e-9 {
		t.Errorf("metric = %v", v)
	}
}

func TestParseLineNoProcsSuffix(t *testing.T) {
	b, ok := parseLine("BenchmarkTable1CounterSelection 100 50 ns/op")
	if !ok || b.Name != "Table1CounterSelection" || b.Procs != 1 {
		t.Fatalf("got %+v ok=%v", b, ok)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t1.2s",
		"BenchmarkBroken not-a-number 5 ns/op",
		"Benchmark", // too few fields
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseHeader(t *testing.T) {
	var r Report
	for _, line := range []string{"goos: linux", "goarch: amd64", "pkg: repro", "cpu: POWER2 (simulated)"} {
		parseHeader(&r, line)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || r.Pkg != "repro" || r.CPU != "POWER2 (simulated)" {
		t.Fatalf("header = %+v", r)
	}
}
