package main

import (
	"math"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkCampaignDay/workers=4-8  \t 3 \t 123456 ns/op \t 1.30 mean-Gflops[paper=1.3]")
	if !ok {
		t.Fatal("line not recognised")
	}
	if b.Name != "CampaignDay/workers=4" || b.Procs != 8 {
		t.Errorf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 3 || math.Abs(b.NsPerOp-123456) > 0.5 {
		t.Errorf("iters/ns = %d/%v", b.Iterations, b.NsPerOp)
	}
	if v := b.Metrics["mean-Gflops[paper=1.3]"]; math.Abs(v-1.3) > 1e-9 {
		t.Errorf("metric = %v", v)
	}
}

func TestParseLineNoProcsSuffix(t *testing.T) {
	b, ok := parseLine("BenchmarkTable1CounterSelection 100 50 ns/op")
	if !ok || b.Name != "Table1CounterSelection" || b.Procs != 1 {
		t.Fatalf("got %+v ok=%v", b, ok)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t1.2s",
		"BenchmarkBroken not-a-number 5 ns/op",
		"Benchmark", // too few fields
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseHeader(t *testing.T) {
	var r Report
	for _, line := range []string{"goos: linux", "goarch: amd64", "pkg: repro", "cpu: POWER2 (simulated)"} {
		parseHeader(&r, line)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || r.Pkg != "repro" || r.CPU != "POWER2 (simulated)" {
		t.Fatalf("header = %+v", r)
	}
}

func TestParseRun(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"pkg: repro",
		"BenchmarkCPUSimulation-1  1  376059 ns/op",
		"BenchmarkMeasureStandard/workers=1-1  1  256872250 ns/op",
		"PASS",
	}, "\n")
	var echoed strings.Builder
	rep, err := parseRun(strings.NewReader(in), &echoed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "repro" {
		t.Fatalf("bad header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	// The stream passes through untouched so the human-readable run stays
	// visible when benchjson sits at the end of a pipe.
	if echoed.String() != in+"\n" {
		t.Fatalf("echo mangled the stream:\n%s", echoed.String())
	}
}

func TestDiffReportsPairsByName(t *testing.T) {
	oldRep := Report{Benchmarks: []Benchmark{
		{Name: "CampaignDay/workers=1", NsPerOp: 200},
		{Name: "Gone", NsPerOp: 50},
		{Name: "MeasureStandard/workers=1", NsPerOp: 300, Metrics: map[string]float64{"hits": 0}},
	}}
	newRep := Report{Benchmarks: []Benchmark{
		{Name: "CampaignDay/workers=1", NsPerOp: 100},
		{Name: "MeasureStandard/workers=1", NsPerOp: 150, Metrics: map[string]float64{"hits": 5}},
		{Name: "Fresh", NsPerOp: 10},
	}}
	rows := diffReports(oldRep, newRep)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	if r := rows[0]; !r.inOld || !r.inNew || r.oldNs != 200 || r.newNs != 100 {
		t.Fatalf("bad matched row: %+v", r)
	}
	if r := rows[1]; len(r.metricNotes) != 1 || r.metricNotes[0] != "hits 0->5" {
		t.Fatalf("bad metric note: %+v", r)
	}
	if r := rows[2]; r.name != "Fresh" || r.inOld || !r.inNew {
		t.Fatalf("bad new-only row: %+v", r)
	}
	if r := rows[3]; r.name != "Gone" || !r.inOld || r.inNew {
		t.Fatalf("bad old-only row: %+v", r)
	}
}

// Duplicate names — go test's `#01` suffix only disambiguates within one
// run, and reports can carry repeated names — must pair in order rather
// than all matching the first baseline entry.
func TestDiffReportsDuplicateNames(t *testing.T) {
	oldRep := Report{Benchmarks: []Benchmark{
		{Name: "Dup", NsPerOp: 100},
		{Name: "Dup", NsPerOp: 200},
	}}
	newRep := Report{Benchmarks: []Benchmark{
		{Name: "Dup", NsPerOp: 10},
		{Name: "Dup", NsPerOp: 20},
	}}
	rows := diffReports(oldRep, newRep)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2: %+v", len(rows), rows)
	}
	if rows[0].oldNs != 100 || rows[0].newNs != 10 || rows[1].oldNs != 200 || rows[1].newNs != 20 {
		t.Fatalf("duplicates paired out of order: %+v", rows)
	}
}

func TestRenderDiff(t *testing.T) {
	out := renderDiff(diffReports(
		Report{Benchmarks: []Benchmark{{Name: "A", NsPerOp: 300}, {Name: "B", NsPerOp: 7}}},
		Report{Benchmarks: []Benchmark{{Name: "A", NsPerOp: 100}, {Name: "C", NsPerOp: 9}}},
	))
	for _, want := range []string{"-66.7%", "3.00x", "(new)", "(gone)"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func gateReports() (Report, Report) {
	oldRep := Report{Benchmarks: []Benchmark{
		{Name: "CampaignDay/workers=1", NsPerOp: 10_000_000},
		{Name: "FleetCampaign/shards=1", NsPerOp: 60_000_000},
	}}
	newRep := Report{Benchmarks: []Benchmark{
		{Name: "CampaignDay/workers=1", NsPerOp: 11_000_000},
		{Name: "CampaignDayTelemetry/workers=1", NsPerOp: 11_200_000},
		{Name: "FleetCampaign/shards=1", NsPerOp: 59_000_000},
	}}
	return oldRep, newRep
}

func TestApplyGatesClean(t *testing.T) {
	oldRep, newRep := gateReports()
	g := Gates{
		Tolerances: []Tolerance{
			{Benchmark: "CampaignDay/workers=1", MaxRatio: 2},
			{Benchmark: "FleetCampaign/shards=1", MaxRatio: 2},
		},
		Ratios: []RatioGate{{
			Name:      "telemetry-overhead",
			Numerator: "CampaignDayTelemetry/workers=1", Denominator: "CampaignDay/workers=1",
			Max: 1.5,
		}},
	}
	if viol := applyGates(g, oldRep, newRep); len(viol) != 0 {
		t.Fatalf("clean run flagged: %v", viol)
	}
}

func TestApplyGatesViolations(t *testing.T) {
	oldRep, newRep := gateReports()
	cases := []struct {
		name string
		g    Gates
		want string
	}{
		{"regression",
			Gates{Tolerances: []Tolerance{{Benchmark: "CampaignDay/workers=1", MaxRatio: 1.05}}},
			"exceeds 1.05x"},
		{"missing-from-run",
			Gates{Tolerances: []Tolerance{{Benchmark: "NoSuchBench", MaxRatio: 2}}},
			"missing from the baseline"},
		{"missing-from-baseline",
			Gates{Tolerances: []Tolerance{{Benchmark: "CampaignDayTelemetry/workers=1", MaxRatio: 2}}},
			"missing from the baseline"},
		{"bad-max-ratio",
			Gates{Tolerances: []Tolerance{{Benchmark: "CampaignDay/workers=1", MaxRatio: 0}}},
			"max_ratio must be > 0"},
		{"ratio-exceeded",
			Gates{Ratios: []RatioGate{{Name: "tel", Numerator: "CampaignDayTelemetry/workers=1",
				Denominator: "CampaignDay/workers=1", Max: 1.001}}},
			"exceeds 1.001"},
		{"ratio-missing-bench",
			Gates{Ratios: []RatioGate{{Name: "tel", Numerator: "NoSuchBench",
				Denominator: "CampaignDay/workers=1", Max: 2}}},
			"missing from this run"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			viol := applyGates(tc.g, oldRep, newRep)
			if len(viol) != 1 {
				t.Fatalf("got %d violations, want 1: %v", len(viol), viol)
			}
			if !strings.Contains(viol[0], tc.want) {
				t.Errorf("violation %q missing %q", viol[0], tc.want)
			}
		})
	}
}

// TestApplyGatesDeletedBenchFails pins the no-silent-pass property: a
// gated benchmark that disappears from the fresh run is a failure even
// when the baseline still has it.
func TestApplyGatesDeletedBenchFails(t *testing.T) {
	oldRep, _ := gateReports()
	g := Gates{Tolerances: []Tolerance{{Benchmark: "FleetCampaign/shards=1", MaxRatio: 2}}}
	viol := applyGates(g, oldRep, Report{Benchmarks: []Benchmark{{Name: "Other", NsPerOp: 1}}})
	if len(viol) != 1 || !strings.Contains(viol[0], "missing from this run") {
		t.Fatalf("deleted gated bench not flagged: %v", viol)
	}
}
