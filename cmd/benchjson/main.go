// Command benchjson turns `go test -bench` output into a machine-readable
// JSON table. It reads the benchmark run from stdin, passes every line
// through to stdout unchanged (so the human-readable run is still visible),
// and writes the parsed table to the -o file:
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson -o BENCH_campaign.json
//
// Each benchmark entry records the name (procs suffix stripped), iteration
// count, ns/op, and every custom metric the benchmark reported via
// b.ReportMetric — the paper-anchored quantities the top-level bench
// harness emits next to each table and figure.
//
// With -diff old.json the freshly parsed run is also compared against an
// earlier report and a per-benchmark delta table is printed to stderr.
// The diff is informational: single-iteration timings are noisy, so it
// never changes the exit status. Pass an empty -o to diff without
// writing a new report (the committed baseline stays untouched).
//
// -gate gates.json turns selected comparisons into a pass/fail contract:
// per-benchmark ns/op tolerances against the -diff baseline (a generous
// multiple, because single-iteration timings jitter) and within-run
// ratio limits (e.g. the telemetry-overhead contract). Any violation —
// including a gated benchmark missing from the run, so a deleted bench
// cannot silently pass — exits 1, which is what lets `make ci` fail on a
// hot-path regression instead of merely recording it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkCampaignDay/workers=4-8  1  123456 ns/op  1.30 mean-Gflops
//
// Fields after the iteration count come in value/unit pairs; ns/op is
// pulled out, everything else lands in Metrics keyed by unit.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// parseHeader records the run environment lines go test prints before the
// first benchmark ("goos: linux" and friends).
func parseHeader(r *Report, line string) {
	for _, h := range []struct {
		prefix string
		dst    *string
	}{
		{"goos: ", &r.Goos},
		{"goarch: ", &r.Goarch},
		{"pkg: ", &r.Pkg},
		{"cpu: ", &r.CPU},
	} {
		if strings.HasPrefix(line, h.prefix) {
			*h.dst = strings.TrimPrefix(line, h.prefix)
		}
	}
}

// parseRun consumes a `go test -bench` stream, echoing every line to echo
// (nil to discard) and returning the parsed report.
func parseRun(in io.Reader, echo io.Writer) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if b, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		} else {
			parseHeader(&rep, line)
		}
	}
	if err := sc.Err(); err != nil {
		return rep, fmt.Errorf("read input: %w", err)
	}
	return rep, nil
}

// diffLine is one row of the delta table.
type diffLine struct {
	name        string
	oldNs       float64
	newNs       float64
	inOld       bool
	inNew       bool
	metricNotes []string // shared custom metrics that moved, rendered "unit old->new"
}

// diffReports pairs benchmarks by name (repeated names pair in order, so
// the `#01` duplicates go test emits keep lining up) and returns rows for
// every benchmark seen in either report: the new run's benchmarks in run
// order, then baseline entries the new run no longer produces.
func diffReports(oldRep, newRep Report) []diffLine {
	oldByName := map[string][]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldByName[b.Name] = append(oldByName[b.Name], b)
	}
	var rows []diffLine
	for _, nb := range newRep.Benchmarks {
		row := diffLine{name: nb.Name, newNs: nb.NsPerOp, inNew: true}
		if q := oldByName[nb.Name]; len(q) > 0 {
			ob := q[0]
			oldByName[nb.Name] = q[1:]
			row.inOld = true
			row.oldNs = ob.NsPerOp
			var units []string
			for unit := range nb.Metrics {
				if _, ok := ob.Metrics[unit]; ok {
					units = append(units, unit)
				}
			}
			sort.Strings(units)
			for _, unit := range units {
				if ov, nv := ob.Metrics[unit], nb.Metrics[unit]; ov != nv {
					row.metricNotes = append(row.metricNotes, fmt.Sprintf("%s %g->%g", unit, ov, nv))
				}
			}
		}
		rows = append(rows, row)
	}
	// Baseline benchmarks the new run didn't produce, in old-report order.
	for _, ob := range oldRep.Benchmarks {
		if q := oldByName[ob.Name]; len(q) > 0 {
			oldByName[ob.Name] = q[1:]
			rows = append(rows, diffLine{name: ob.Name, oldNs: ob.NsPerOp, inOld: true})
		}
	}
	return rows
}

// renderDiff formats the delta table. Timings are compared as a speedup
// factor (old/new, so >1 is faster) alongside the percent change.
func renderDiff(rows []diffLine) string {
	var sb strings.Builder
	width := len("benchmark")
	for _, r := range rows {
		if len(r.name) > width {
			width = len(r.name)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %14s  %14s  %8s  %8s\n", width, "benchmark", "old ns/op", "new ns/op", "delta", "speedup")
	for _, r := range rows {
		switch {
		case r.inOld && r.inNew:
			delta, speedup := "n/a", "n/a"
			if r.oldNs > 0 && r.newNs > 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(r.newNs-r.oldNs)/r.oldNs)
				speedup = fmt.Sprintf("%.2fx", r.oldNs/r.newNs)
			}
			fmt.Fprintf(&sb, "%-*s  %14.0f  %14.0f  %8s  %8s\n", width, r.name, r.oldNs, r.newNs, delta, speedup)
			for _, m := range r.metricNotes {
				fmt.Fprintf(&sb, "%-*s    %s\n", width, "", m)
			}
		case r.inNew:
			fmt.Fprintf(&sb, "%-*s  %14s  %14.0f  %8s  %8s\n", width, r.name, "(new)", r.newNs, "", "")
		default:
			fmt.Fprintf(&sb, "%-*s  %14.0f  %14s  %8s  %8s\n", width, r.name, r.oldNs, "(gone)", "", "")
		}
	}
	return sb.String()
}

// Gates is the committed regression contract -gate enforces.
type Gates struct {
	// Tolerances bound each benchmark's ns/op against the -diff baseline:
	// new must stay under old * MaxRatio.
	Tolerances []Tolerance `json:"tolerances,omitempty"`
	// Ratios bound the quotient of two benchmarks within the same run —
	// baseline-free contracts like telemetry overhead.
	Ratios []RatioGate `json:"ratios,omitempty"`
}

// Tolerance is one per-benchmark timing bound.
type Tolerance struct {
	// Benchmark is the parsed name (procs suffix stripped), e.g.
	// "CampaignDay/workers=1".
	Benchmark string `json:"benchmark"`
	// MaxRatio is the allowed new/old ns_per_op multiple; must be > 0.
	MaxRatio float64 `json:"max_ratio"`
}

// RatioGate is one within-run quotient bound.
type RatioGate struct {
	Name        string  `json:"name"`
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	// Max is the allowed numerator/denominator ns_per_op quotient.
	Max float64 `json:"max"`
}

// findBench returns the first benchmark with the given parsed name.
func findBench(rep Report, name string) (Benchmark, bool) {
	for _, b := range rep.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// applyGates evaluates the contract and returns one message per
// violation. A gated benchmark missing from either report is itself a
// violation: a gate that cannot measure must not pass.
func applyGates(g Gates, oldRep, newRep Report) []string {
	var viol []string
	for _, tol := range g.Tolerances {
		if tol.MaxRatio <= 0 {
			viol = append(viol, fmt.Sprintf("gate %s: max_ratio must be > 0, got %g", tol.Benchmark, tol.MaxRatio))
			continue
		}
		ob, okOld := findBench(oldRep, tol.Benchmark)
		nb, okNew := findBench(newRep, tol.Benchmark)
		switch {
		case !okOld:
			viol = append(viol, fmt.Sprintf("gate %s: benchmark missing from the baseline", tol.Benchmark))
		case !okNew:
			viol = append(viol, fmt.Sprintf("gate %s: benchmark missing from this run", tol.Benchmark))
		case ob.NsPerOp <= 0:
			viol = append(viol, fmt.Sprintf("gate %s: baseline ns/op is %g", tol.Benchmark, ob.NsPerOp))
		case nb.NsPerOp > ob.NsPerOp*tol.MaxRatio:
			viol = append(viol, fmt.Sprintf("gate %s: %.0f ns/op exceeds %.2fx the baseline %.0f (limit %.0f)",
				tol.Benchmark, nb.NsPerOp, tol.MaxRatio, ob.NsPerOp, ob.NsPerOp*tol.MaxRatio))
		}
	}
	for _, r := range g.Ratios {
		num, okN := findBench(newRep, r.Numerator)
		den, okD := findBench(newRep, r.Denominator)
		switch {
		case r.Max <= 0:
			viol = append(viol, fmt.Sprintf("gate %s: max must be > 0, got %g", r.Name, r.Max))
		case !okN:
			viol = append(viol, fmt.Sprintf("gate %s: benchmark %s missing from this run", r.Name, r.Numerator))
		case !okD:
			viol = append(viol, fmt.Sprintf("gate %s: benchmark %s missing from this run", r.Name, r.Denominator))
		case den.NsPerOp <= 0:
			viol = append(viol, fmt.Sprintf("gate %s: denominator ns/op is %g", r.Name, den.NsPerOp))
		case num.NsPerOp/den.NsPerOp > r.Max:
			viol = append(viol, fmt.Sprintf("gate %s: %s/%s = %.3f exceeds %.3f",
				r.Name, r.Numerator, r.Denominator, num.NsPerOp/den.NsPerOp, r.Max))
		}
	}
	return viol
}

func main() {
	out := flag.String("o", "BENCH_campaign.json", "write the parsed benchmark table here ('' to skip writing)")
	diff := flag.String("diff", "", "print per-benchmark deltas against this earlier report (informational only)")
	gate := flag.String("gate", "", "enforce this gates file (per-benchmark tolerance vs the -diff baseline, within-run ratios); violations exit 1")
	flag.Parse()
	var gates Gates
	if *gate != "" {
		buf, err := os.ReadFile(*gate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(buf, &gates); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *gate, err)
			os.Exit(1)
		}
		if len(gates.Tolerances) > 0 && *diff == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -gate tolerances need a baseline; pass -diff")
			os.Exit(1)
		}
	}

	rep, err := parseRun(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
	}
	var oldRep Report
	if *diff != "" {
		buf, err := os.ReadFile(*diff)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(buf, &oldRep); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *diff, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: diff vs %s (timing deltas are informational, not pass/fail)\n", *diff)
		fmt.Fprint(os.Stderr, renderDiff(diffReports(oldRep, rep)))
	}
	if *gate != "" {
		if viol := applyGates(gates, oldRep, rep); len(viol) > 0 {
			for _, v := range viol {
				fmt.Fprintf(os.Stderr, "benchjson: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate %s passed (%d tolerance(s), %d ratio(s))\n",
			*gate, len(gates.Tolerances), len(gates.Ratios))
	}
}
