// Command benchjson turns `go test -bench` output into a machine-readable
// JSON table. It reads the benchmark run from stdin, passes every line
// through to stdout unchanged (so the human-readable run is still visible),
// and writes the parsed table to the -o file:
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson -o BENCH_campaign.json
//
// Each benchmark entry records the name (procs suffix stripped), iteration
// count, ns/op, and every custom metric the benchmark reported via
// b.ReportMetric — the paper-anchored quantities the top-level bench
// harness emits next to each table and figure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkCampaignDay/workers=4-8  1  123456 ns/op  1.30 mean-Gflops
//
// Fields after the iteration count come in value/unit pairs; ns/op is
// pulled out, everything else lands in Metrics keyed by unit.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// parseHeader records the run environment lines go test prints before the
// first benchmark ("goos: linux" and friends).
func parseHeader(r *Report, line string) {
	for _, h := range []struct {
		prefix string
		dst    *string
	}{
		{"goos: ", &r.Goos},
		{"goarch: ", &r.Goarch},
		{"pkg: ", &r.Pkg},
		{"cpu: ", &r.CPU},
	} {
		if strings.HasPrefix(line, h.prefix) {
			*h.dst = strings.TrimPrefix(line, h.prefix)
		}
	}
}

func main() {
	out := flag.String("o", "BENCH_campaign.json", "write the parsed benchmark table here")
	flag.Parse()

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if b, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		} else {
			parseHeader(&rep, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
}
