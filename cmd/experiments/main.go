// Command experiments regenerates every table and figure of the paper.
// It either loads a campaign database written by spsim -o, or runs the
// campaign itself.
//
// Usage:
//
//	experiments -all                       # run 270-day campaign, print everything
//	experiments -days 90 -table2 -fig3     # shorter campaign, selected outputs
//	experiments -trace run.json.gz -all    # analyse a saved campaign
//	experiments -spec bursty -fig1         # run a named workload-spec preset
//	experiments -clusters 4 -shards 2 -all # tables over a merged fleet campaign
//	experiments -record t.gz -all          # record the campaign trace while running
//	experiments -replay t.gz -all          # re-simulate a recorded trace bit-identically
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/analysis"
	"repro/internal/cliperf"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	tracePath := flag.String("trace", "", "load a saved campaign database instead of running one")
	days := flag.Int("days", 270, "campaign length when running fresh")
	nodes := flag.Int("nodes", 144, "cluster size when running fresh")
	seed := flag.Uint64("seed", 1, "seed when running fresh")
	specRef := flag.String("spec", "", "workload spec when running fresh: a committed preset name or a JSON file path")
	listPresets := flag.Bool("list-presets", false, "list the committed workload-spec presets and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker goroutines (1 = serial; results are seed-identical at any setting)")
	all := flag.Bool("all", false, "emit every table and figure")
	t1 := flag.Bool("table1", false, "Table 1: the 22-counter selection")
	t2 := flag.Bool("table2", false, "Table 2: major rates over >2 Gflops days")
	t3 := flag.Bool("table3", false, "Table 3: full rate breakdown")
	t4 := flag.Bool("table4", false, "Table 4: hierarchical memory performance")
	f1 := flag.Bool("fig1", false, "Figure 1: system performance history")
	f2 := flag.Bool("fig2", false, "Figure 2: walltime by nodes requested")
	f3 := flag.Bool("fig3", false, "Figure 3: per-node performance by nodes requested")
	f4 := flag.Bool("fig4", false, "Figure 4: 16-node job history")
	f5 := flag.Bool("fig5", false, "Figure 5: performance vs system intervention")
	whatif := flag.Bool("whatif", false, "what-if: the I/O-wait counter selection the paper recommends")
	withFaults := flag.Bool("faults", false, "inject the default collection-fault mix when running fresh; reductions use covered time")
	clusters := flag.Int("clusters", 0, "fleet size when running fresh: this many copies of the campaign as a multi-cluster fleet; 0 defers to the spec's fleet block (or a single cluster)")
	shards := flag.Int("shards", 1, "fleet shards: cluster-level workers (results are identical at any setting)")
	checkpoint := flag.String("checkpoint", "", "fleet checkpoint file (.json or .json.gz), written as clusters complete")
	resumeRun := flag.Bool("resume", false, "resume the fleet campaign recorded in -checkpoint")
	haltAfter := flag.Int("halt-after", 0, "stop the fleet after this many cluster completions (smoke/testing; requires -checkpoint)")
	recordTo := flag.String("record", "", "record the fresh campaign's generated plans (and resolved fault schedules) to a trace here (always gzip)")
	replayFrom := flag.String("replay", "", "re-simulate a recorded campaign trace instead of generating plans; the trace must match the campaign definition (exit 1 on corruption or mismatch)")
	npb := flag.Bool("npb", false, "NPB suite signatures (extends Table 4's BT reference)")
	profCache := flag.String("profile-cache", "", "persist kernel measurements here (.json or .json.gz) and reuse them on later runs")
	telFmt := flag.String("telemetry", "", `append the hpmtel self-measurement snapshot after the outputs ("text" or "json")`)
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile here")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile here on exit")
	flag.Parse()
	if *telFmt != "" && *telFmt != "text" && *telFmt != "json" {
		fmt.Fprintf(os.Stderr, "experiments: -telemetry must be \"text\" or \"json\", got %q\n", *telFmt)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	if *clusters < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -clusters must be >= 0, got %d\n", *clusters)
		os.Exit(2)
	}
	if *haltAfter < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -halt-after must be >= 0, got %d\n", *haltAfter)
		os.Exit(2)
	}
	if *resumeRun && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume requires -checkpoint")
		os.Exit(2)
	}
	if *haltAfter > 0 && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "experiments: -halt-after requires -checkpoint")
		os.Exit(2)
	}
	// Record/replay drive a campaign run, so neither combines with
	// -trace; recording additionally rejects every mode that would leave
	// the trace incomplete (mirrors fleet.Options).
	if (*recordTo != "" || *replayFrom != "") && *tracePath != "" {
		fmt.Fprintln(os.Stderr, "experiments: -record/-replay drive a campaign run and cannot be combined with -trace")
		os.Exit(2)
	}
	if *recordTo != "" && *replayFrom != "" {
		fmt.Fprintln(os.Stderr, "experiments: -record cannot be combined with -replay (a replay would only copy the trace)")
		os.Exit(2)
	}
	if *recordTo != "" && *resumeRun {
		fmt.Fprintln(os.Stderr, "experiments: -record cannot be combined with -resume (restored clusters never regenerate, so the trace would be incomplete)")
		os.Exit(2)
	}
	if *recordTo != "" && *haltAfter > 0 {
		fmt.Fprintln(os.Stderr, "experiments: -record cannot be combined with -halt-after (a halted run records an incomplete trace)")
		os.Exit(2)
	}
	fleetFlags := *clusters > 0 || *checkpoint != "" || *resumeRun || *haltAfter > 0
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			fleetFlags = true
		}
	})
	if fleetFlags && *tracePath != "" {
		fmt.Fprintln(os.Stderr, "experiments: fleet flags run a fresh campaign and cannot be combined with -trace")
		os.Exit(2)
	}
	if *listPresets {
		for _, name := range spec.PresetNames() {
			s, err := spec.Preset(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-14s %s\n", name, s.Description)
		}
		return
	}
	var sp *spec.Spec
	if *specRef != "" {
		var err error
		if sp, err = spec.Load(*specRef); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
	}
	// Probe the replay trace before paying for kernel measurement: a
	// corrupt or truncated trace should fail in milliseconds. The
	// definition-mismatch check needs the resolved config and runs later.
	if *replayFrom != "" {
		if _, err := replay.OpenFile(*replayFrom); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	stopCPU, err := cliperf.StartCPUProfile(*cpuProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer stopCPU()
	defer func() {
		if err := cliperf.WriteMemProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
	}()
	if err := cliperf.LoadProfileCache(*profCache); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := cliperf.SaveProfileCache(*profCache); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
	}()

	if !(*all || *t1 || *t2 || *t3 || *t4 || *f1 || *f2 || *f3 || *f4 || *f5 || *whatif || *npb) {
		*all = true
	}

	var res workload.Result
	if *tracePath != "" {
		var err error
		res, err = trace.ReadFile(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %d-day campaign from %s\n\n", len(res.Days), *tracePath)
	} else if fleetFlags || (sp != nil && sp.Fleet != nil) {
		// Fleet path: a sharded multi-cluster campaign merged in canonical
		// cluster order (internal/fleet); every table below reads the
		// fleet-wide reduction.
		ccfg := core.Config{Seed: *seed, Workers: *workers}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "days":
				ccfg.Days = *days
			case "nodes":
				ccfg.Nodes = *nodes
			}
		})
		var sys *core.System
		var err error
		if sp != nil {
			sys, err = core.NewWithSpec(ccfg, sp)
		} else {
			sys = core.New(ccfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		members, err := sys.FleetMembers(*clusters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		totalNodes := 0
		for i := range members {
			if *withFaults && members[i].Config.Faults == nil {
				f := faults.Default()
				members[i].Config.Faults = &f
			}
			totalNodes += members[i].Config.Nodes
		}
		fmt.Printf("running a %d-cluster fleet campaign (%d nodes total, seed %d, %d shards, %d workers each)...\n\n",
			len(members), totalNodes, *seed, *shards, *workers)
		res, err = fleet.Run(members, fleet.Options{
			Shards:     *shards,
			Checkpoint: *checkpoint,
			Resume:     *resumeRun,
			HaltAfter:  *haltAfter,
			RecordTo:   *recordTo,
			ReplayFrom: *replayFrom,
		})
		switch {
		case errors.Is(err, fleet.ErrHalted):
			fmt.Printf("fleet halted after %d cluster completion(s); %s holds the partial campaign — rerun with -resume to continue\n",
				*haltAfter, *checkpoint)
			return
		case err != nil:
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	} else {
		label := ""
		if sp != nil {
			label = fmt.Sprintf(" [scenario %s]", sp.Name)
		}
		fmt.Printf("measuring kernel profiles and running a %d-day campaign on %d nodes (seed %d, %d workers)%s...\n\n",
			*days, *nodes, *seed, *workers, label)
		std := profile.MeasureStandardWorkers(*seed, *workers)
		cfg := workload.DefaultConfig(*seed)
		cfg.Days = *days
		cfg.Nodes = *nodes
		mix := workload.DefaultMix(std)
		if sp != nil {
			var err error
			if cfg, mix, err = spec.Resolve(sp, std); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(2)
			}
			cfg.Seed = *seed
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "days":
					cfg.Days = *days
				case "nodes":
					cfg.Nodes = *nodes
				}
			})
		}
		cfg.Workers = *workers
		if *withFaults && cfg.Faults == nil {
			f := faults.Default()
			cfg.Faults = &f
		}
		var err error
		switch {
		case *recordTo != "":
			res, err = replay.RunRecorded(*recordTo, cfg, mix)
		case *replayFrom != "":
			res, err = replay.RunReplayed(*replayFrom, cfg, mix)
		default:
			res = workload.NewCampaign(cfg, mix).Run()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	if *recordTo != "" {
		fmt.Printf("campaign trace recorded to %s\n\n", *recordTo)
	}

	// Label every table and figure below with the scenario that produced
	// them, so output from different specs cannot be confused.
	if line := analysis.RenderScenario(res); line != "" {
		fmt.Println(line)
	}

	// A faulted campaign — fresh or loaded from a trace — leads with its
	// coverage report, so every table below is read against what the
	// collection actually observed.
	if cov := analysis.RenderCoverage(res); cov != "" {
		fmt.Println(cov)
	}

	emit := func(want bool, text string) {
		if *all || want {
			fmt.Println(text)
		}
	}
	emit(*t1, analysis.RenderTable1())
	emit(*t2, analysis.ComputeTable2(res).Render())
	emit(*t3, analysis.ComputeTable3(res).Render())
	if *all || *t4 {
		seq := analysis.MeasureSequentialRow(*seed, 200_000)
		bt := analysis.MeasureBT49Row(analysis.DefaultBT49())
		fmt.Println(analysis.ComputeTable4(res, seq, bt).Render())
	}
	emit(*f1, analysis.ComputeFigure1(res).Render())
	emit(*f2, analysis.ComputeFigure2(res).Render())
	emit(*f3, analysis.ComputeFigure3(res).Render())
	emit(*f4, analysis.ComputeFigure4(res).Render())
	emit(*f5, analysis.ComputeFigure5(res).Render())
	if *all || *whatif {
		fmt.Println(analysis.MeasureIOWaitWhatIf(*seed).Render())
	}
	if *all || *npb {
		fmt.Println(analysis.MeasureNPBSuite(*seed, 400_000).Render())
	}

	// The hpmtel snapshot: whatever this process measured of itself —
	// campaign stages, profile-store traffic — appended after the paper
	// artifacts. Taken at exit so the table/figure recomputation above is
	// included.
	if *telFmt != "" {
		fmt.Printf("\n=== telemetry (hpmtel) ===\n")
		snap := telemetry.Default.Snapshot()
		var err error
		if *telFmt == "json" {
			err = snap.WriteJSON(os.Stdout)
		} else {
			err = snap.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
}
