package main

// The experiments CLI contract for the fleet flags: validation exit
// codes (2 malformed invocation, 1 runtime failure — the spsim
// convention) and the -trace conflict. Fleet execution itself is
// exercised through cmd/spsim and internal/fleet; only the cheap
// reject-early paths run a binary here.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// binary builds experiments once per test run.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "experiments-bin-*")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "experiments")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building experiments: %v\n%s", buildErr, binPath)
	}
	return binPath
}

// run executes experiments and returns (stdout, stderr, exit code).
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(binary(t), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running experiments: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestFleetFlagValidationExits2(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"shards-zero", []string{"-shards", "0", "-days", "1"}, "-shards must be >= 1"},
		{"shards-negative", []string{"-shards", "-2", "-days", "1"}, "-shards must be >= 1"},
		{"clusters-negative", []string{"-clusters", "-1", "-days", "1"}, "-clusters must be >= 0"},
		{"halt-negative", []string{"-halt-after", "-1", "-days", "1"}, "-halt-after must be >= 0"},
		{"resume-without-checkpoint", []string{"-resume", "-days", "1"}, "-resume requires -checkpoint"},
		{"halt-without-checkpoint", []string{"-halt-after", "1", "-days", "1"}, "-halt-after requires -checkpoint"},
		{"fleet-with-trace", []string{"-clusters", "2", "-trace", "db.json"}, "cannot be combined with -trace"},
		{"shards-with-trace", []string{"-shards", "2", "-trace", "db.json"}, "cannot be combined with -trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := run(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}

func TestFleetResumeBadCheckpointExits1(t *testing.T) {
	if testing.Short() {
		t.Skip("binary run in -short mode")
	}
	dir := t.TempDir()
	_, stderr, code := run(t, "-days", "1", "-checkpoint", filepath.Join(dir, "nope.json"), "-resume", "-table1")
	if code != 1 {
		t.Fatalf("missing checkpoint: exit %d, want 1\nstderr: %s", code, stderr)
	}
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, code := run(t, "-days", "1", "-checkpoint", corrupt, "-resume", "-table1"); code != 1 {
		t.Fatalf("corrupt checkpoint: exit %d, want 1\nstderr: %s", code, stderr)
	}
}

func TestUnknownPresetExits2(t *testing.T) {
	if _, _, code := run(t, "-spec", "no-such-preset", "-days", "1"); code != 2 {
		t.Fatalf("unknown -spec: exit %d, want 2", code)
	}
}

// --- record/replay flag contract ---

func TestReplayFlagValidationExits2(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"record-with-trace", []string{"-record", "t.gz", "-trace", "db.json"},
			"cannot be combined with -trace"},
		{"replay-with-trace", []string{"-replay", "t.gz", "-trace", "db.json"},
			"cannot be combined with -trace"},
		{"record-with-replay", []string{"-record", "t.gz", "-replay", "t.gz", "-days", "1"},
			"-record cannot be combined with -replay"},
		{"record-with-resume", []string{"-record", "t.gz", "-checkpoint", "cp.json", "-resume", "-days", "1"},
			"-record cannot be combined with -resume"},
		{"record-with-halt", []string{"-record", "t.gz", "-checkpoint", "cp.json", "-halt-after", "1", "-days", "1"},
			"-record cannot be combined with -halt-after"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := run(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}

// TestReplayBadTraceExits1 drives the fail-fast probe: a missing or
// corrupt trace exits 1 before any kernel measurement, so this test
// stays cheap enough to run unconditionally.
func TestReplayBadTraceExits1(t *testing.T) {
	dir := t.TempDir()
	if _, stderr, code := run(t, "-days", "1", "-table1", "-replay", filepath.Join(dir, "nope.trace.gz")); code != 1 {
		t.Fatalf("missing trace: exit %d, want 1\nstderr: %s", code, stderr)
	}
	corrupt := filepath.Join(dir, "corrupt.trace.gz")
	if err := os.WriteFile(corrupt, []byte("not a gzip campaign trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := run(t, "-days", "1", "-table1", "-replay", corrupt)
	if code != 1 {
		t.Fatalf("corrupt trace: exit %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "corrupt.trace.gz") {
		t.Errorf("stderr should name the trace file:\n%s", stderr)
	}
}
