// Command calibrate runs each synthetic kernel through the POWER2 CPU model
// in isolation and prints its full counter-derived rate profile. It is the
// tool used to tune the kernel instruction mixes against the paper's
// workload signature (Tables 2-4).
//
// Usage:
//
//	calibrate [-n instructions] [kernel ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hpm"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/power2"
	prof "repro/internal/profile"
)

func main() {
	n := flag.Uint64("n", 500000, "instructions to simulate per kernel")
	dump := flag.Bool("dump", false, "also print the stream's static mix (op histogram, code footprint)")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		for _, k := range kernels.All() {
			names = append(names, k.Name)
		}
	}

	for _, name := range names {
		k, ok := kernels.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "calibrate: unknown kernel %q\n", name)
			os.Exit(2)
		}
		report(k, *n)
		if *dump {
			fmt.Println(isa.Describe(k.New(1), minU64(*n, 100_000)).String())
		}
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func report(k kernels.Kernel, n uint64) {
	// Measurements go through the memoized store: calibrating the same
	// kernel under the same budget twice in one process is free, and a
	// persisted cache could make it free across processes too.
	m := prof.DefaultStore.Measure(k, power2.Config{Seed: 1}, n)
	st := m.Stats
	r := hpm.UserRates(m.Delta, m.Seconds)

	fmt.Printf("=== %s — %s\n", k.Name, k.Description)
	fmt.Printf("  instructions  %12d     cycles %12d     IPC %.3f\n", st.Instructions, st.Cycles, st.IPC())
	fmt.Printf("  Mflops  all %7.2f  add %6.2f  mul %6.2f  fma %6.2f  div %6.2f (true div %d)\n",
		r.MflopsAll, r.MflopsAdd, r.MflopsMul, r.MflopsFMA, r.MflopsDiv, m.TrueDivides[hpm.User])
	fmt.Printf("  Mips    tot %7.2f  fpu %6.2f (0:%5.2f 1:%5.2f)  fxu %6.2f (0:%5.2f 1:%5.2f)  icu %5.2f\n",
		r.Mips, r.MipsFPU, r.MipsFPU0, r.MipsFPU1, r.MipsFXU, r.MipsFXU0, r.MipsFXU1, r.MipsICU)
	fmt.Printf("  ratios  fma-frac %.3f  fpu0/fpu1 %.2f  flops/memref %.3f  branch-frac %.3f\n",
		r.FMAFraction(), r.FPUAsymmetry(), r.FlopsPerMemRef(), r.BranchFraction())
	fmt.Printf("  memory  cache %7.4f M/s (ratio %.4f)  tlb %7.4f M/s (ratio %.5f)  icache %.4f M/s\n",
		r.DCacheMissM, r.CacheMissRatio(), r.TLBMissM, r.TLBMissRatio(), r.ICacheMissM)
	fmt.Printf("  i/o     dma-read %.4f M/s  dma-write %.4f M/s  page-faults %d\n\n",
		r.DMAReadM, r.DMAWriteM, st.PageFaults)
}
