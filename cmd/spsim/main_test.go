package main

// The spec-facing CLI contract: -list-presets, -validate exit codes
// (0 clean / 2 malformed, the hpmlint convention) and -spec error
// handling, exercised end to end against the built binary. Campaign
// execution itself is covered by the internal/spec round-trip tests;
// here only the cheap, run-nothing paths are driven, so the suite stays
// fast.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// binary builds spsim once per test run.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "spsim-bin-*")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "spsim")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building spsim: %v\n%s", buildErr, binPath)
	}
	return binPath
}

// run executes spsim and returns (stdout, stderr, exit code).
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(binary(t), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running spsim: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestListPresets(t *testing.T) {
	stdout, stderr, code := run(t, "-list-presets")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, name := range []string{"paper-1996", "bursty", "memory-bound", "comm-heavy"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list-presets output missing %s:\n%s", name, stdout)
		}
	}
}

func TestValidateAllPresetsClean(t *testing.T) {
	stdout, stderr, code := run(t, "-validate")
	if code != 0 {
		t.Fatalf("committed presets must validate: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "paper-1996: ok") {
		t.Errorf("per-spec ok lines missing:\n%s", stdout)
	}
}

func TestValidateMalformedSpecExits2(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	// Three problems: version, a missing name, and a share out of range.
	src := `{
	  "version": 9,
	  "name": "",
	  "campaign": {"days": 10, "nodes": 16, "mean_util": 0.5, "util_sigma": 0.1, "paging_day_prob": 0.1},
	  "clients": [
	    {"name": "c", "share": 1.7,
	     "profile": {"kernel": "cfd", "compute_duty": 0.8, "comm_active": 0.5,
	                 "perf_sigma": 0.3, "memory_per_node_bytes": 1048576,
	                 "msg_bytes_per_flop": 0.05, "disk_out_bytes_per_sec": 1000}},
	    {"name": "r", "remainder": true,
	     "profile": {"kernel": "cfd", "compute_duty": 0.8, "comm_active": 0.5,
	                 "perf_sigma": 0.3, "memory_per_node_bytes": 1048576,
	                 "msg_bytes_per_flop": 0.05, "disk_out_bytes_per_sec": 1000}}
	  ]
	}`
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := run(t, "-validate", bad)
	if code != 2 {
		t.Fatalf("malformed spec: exit %d, want 2\nstderr: %s", code, stderr)
	}
	// Field-path error messages must reach the user.
	for _, want := range []string{"version", "clients[0].share"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing field path %q:\n%s", want, stderr)
		}
	}

	// A clean file through the same path exits 0.
	good := filepath.Join(dir, "good.json")
	src = strings.Replace(src, `"version": 9`, `"version": 1`, 1)
	src = strings.Replace(src, `"name": ""`, `"name": "fixed"`, 1)
	src = strings.Replace(src, `"share": 1.7`, `"share": 0.7`, 1)
	if err := os.WriteFile(good, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, code := run(t, "-validate", good); code != 0 {
		t.Fatalf("clean spec: exit %d, want 0\nstderr: %s", code, stderr)
	}
}

func TestValidateUnreadableSpecExits2(t *testing.T) {
	if _, _, code := run(t, "-validate", "no/such/spec.json"); code != 2 {
		t.Fatalf("missing spec file: exit %d, want 2", code)
	}
	if _, _, code := run(t, "-validate", "-spec", "no-such-preset"); code != 2 {
		t.Fatalf("unknown preset: exit %d, want 2", code)
	}
}

func TestSpecFlagUnknownPresetExits2(t *testing.T) {
	_, stderr, code := run(t, "-spec", "no-such-preset", "-days", "1")
	if code != 2 {
		t.Fatalf("unknown -spec: exit %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "unknown preset") {
		t.Errorf("stderr should name the failure: %s", stderr)
	}
}

// --- fleet flag contract ---

func TestFleetFlagValidationExits2(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"shards-zero", []string{"-shards", "0", "-days", "1"}, "-shards must be >= 1"},
		{"shards-negative", []string{"-shards", "-3", "-days", "1"}, "-shards must be >= 1"},
		{"clusters-negative", []string{"-clusters", "-1", "-days", "1"}, "-clusters must be >= 0"},
		{"halt-negative", []string{"-halt-after", "-1", "-days", "1"}, "-halt-after must be >= 0"},
		{"resume-without-checkpoint", []string{"-resume", "-days", "1"}, "-resume requires -checkpoint"},
		{"halt-without-checkpoint", []string{"-halt-after", "2", "-days", "1"}, "-halt-after requires -checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := run(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}

func TestFleetResumeBadCheckpointExits1(t *testing.T) {
	if testing.Short() {
		t.Skip("binary run in -short mode")
	}
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.json")
	_, stderr, code := run(t, "-days", "1", "-checkpoint", missing, "-resume")
	if code != 1 {
		t.Fatalf("missing checkpoint: exit %d, want 1\nstderr: %s", code, stderr)
	}
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, code := run(t, "-days", "1", "-checkpoint", corrupt, "-resume"); code != 1 {
		t.Fatalf("corrupt checkpoint: exit %d, want 1\nstderr: %s", code, stderr)
	}
}

// TestFleetHaltResumeCLI drives the operational loop end to end: a
// halted fleet exits 0 pointing at its checkpoint, and a -resume run
// finishes the campaign from it.
func TestFleetHaltResumeCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet campaign in -short mode")
	}
	cp := filepath.Join(t.TempDir(), "fleet.json.gz")
	stdout, stderr, code := run(t,
		"-days", "1", "-clusters", "2", "-shards", "2",
		"-checkpoint", cp, "-halt-after", "1")
	if code != 0 {
		t.Fatalf("halt run: exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "halted after 1 cluster completion") {
		t.Fatalf("halt message missing:\n%s", stdout)
	}
	if strings.Contains(stdout, "campaign summary") {
		t.Fatal("halted run must not print a summary")
	}
	if _, err := os.Stat(cp); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	stdout, stderr, code = run(t,
		"-days", "1", "-clusters", "2", "-shards", "2",
		"-checkpoint", cp, "-resume")
	if code != 0 {
		t.Fatalf("resume run: exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "campaign summary") {
		t.Fatalf("resumed run must finish with a summary:\n%s", stdout)
	}
}

// --- record/replay flag contract ---

func TestReplayFlagValidationExits2(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"record-with-replay", []string{"-record", "t.gz", "-replay", "t.gz", "-days", "1"},
			"-record cannot be combined with -replay"},
		{"record-with-resume", []string{"-record", "t.gz", "-checkpoint", "cp.json", "-resume", "-days", "1"},
			"-record cannot be combined with -resume"},
		{"record-with-halt", []string{"-record", "t.gz", "-checkpoint", "cp.json", "-halt-after", "1", "-days", "1"},
			"-record cannot be combined with -halt-after"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := run(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}

// TestReplayBadTraceExits1 drives the fail-fast probe: a missing or
// corrupt trace exits 1 before any kernel measurement, so this test
// stays cheap enough to run unconditionally.
func TestReplayBadTraceExits1(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.trace.gz")
	if _, stderr, code := run(t, "-days", "1", "-replay", missing); code != 1 {
		t.Fatalf("missing trace: exit %d, want 1\nstderr: %s", code, stderr)
	}
	corrupt := filepath.Join(dir, "corrupt.trace.gz")
	if err := os.WriteFile(corrupt, []byte("not a gzip campaign trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := run(t, "-days", "1", "-replay", corrupt)
	if code != 1 {
		t.Fatalf("corrupt trace: exit %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "corrupt.trace.gz") {
		t.Errorf("stderr should name the trace file:\n%s", stderr)
	}
}

// TestRecordReplayRoundTripCLI is the CLI-level differential proof: a
// recorded run and its replay must export byte-identical campaign
// databases, and replaying against a different definition must fail
// with exit 1 rather than produce a plausible wrong database.
func TestRecordReplayRoundTripCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign runs in -short mode")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "campaign.trace.gz")
	live := filepath.Join(dir, "live.json")
	replayed := filepath.Join(dir, "replayed.json")

	stdout, stderr, code := run(t, "-days", "1", "-seed", "7", "-record", trace, "-o", live)
	if code != 0 {
		t.Fatalf("record run: exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "campaign trace recorded to") {
		t.Errorf("record run should announce the trace:\n%s", stdout)
	}
	// Replay at a different worker count: execution knobs must not
	// affect the replayed result.
	stdout, stderr, code = run(t, "-days", "1", "-seed", "7", "-workers", "3", "-replay", trace, "-o", replayed)
	if code != 0 {
		t.Fatalf("replay run: exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "replaying") {
		t.Errorf("replay run should announce itself:\n%s", stdout)
	}
	a, err := os.ReadFile(live)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("live and replayed campaign databases differ (%d vs %d bytes)", len(a), len(b))
	}

	// Wrong seed = wrong definition: the fingerprint check must refuse.
	_, stderr, code = run(t, "-days", "1", "-seed", "8", "-replay", trace)
	if code != 1 {
		t.Fatalf("mismatched replay: exit %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "fingerprint") {
		t.Errorf("stderr should name the fingerprint mismatch:\n%s", stderr)
	}
}
