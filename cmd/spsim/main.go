// Command spsim runs the nine-month NAS SP2 measurement campaign on the
// simulated cluster and prints the headline numbers the paper reports:
// daily system Gflops, utilisation, the >2 Gflops day sample, and the
// batch-job population.
//
// The workload defaults to the paper's 1996 NAS mix; -spec swaps in any
// declarative workload spec (a committed preset name or a JSON file path,
// see internal/spec), -list-presets shows the catalogue, and -validate
// checks specs without running anything (exit 0 clean, 2 malformed — the
// hpmlint exit-code convention, so CI can gate on it).
//
// Any fleet flag (-clusters, -shards, -checkpoint, -resume, -halt-after)
// or a spec with a fleet block switches to the sharded multi-cluster
// campaign engine (internal/fleet): N clusters partitioned across shards,
// merged in canonical cluster order — results are bit-identical at every
// shard count and across a kill/resume cycle.
//
// -record tees the generate stage into a campaign trace (internal/replay)
// while the run proceeds normally; -replay re-simulates a recorded trace
// instead of generating plans, reproducing the recorded run bit for bit
// (exit 1 on a corrupt or mismatched trace). Both work on the single
// campaign and on the fleet.
//
// Usage:
//
//	spsim [-days 270] [-nodes 144] [-seed 1] [-workers N] [-v] [-faults] [-o db.json.gz]
//	      [-spec preset-or-file] [-list-presets] [-validate [spec files...]]
//	      [-clusters N] [-shards N] [-checkpoint fleet.json.gz] [-resume] [-halt-after N]
//	      [-record trace.gz | -replay trace.gz]
//	      [-csv jobs.csv] [-telemetry text|json] [-profile-cache profiles.json.gz]
//	      [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/cliperf"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// dayPrinter is a streaming reducer that prints each day as the campaign
// closes it, instead of waiting for the full Result.
type dayPrinter struct{ nodes int }

func (p dayPrinter) ReduceDay(d workload.Day) {
	r := d.PerNodeRates(p.nodes)
	fmt.Printf("day %3d  %5.2f Gflops  util %4.1f%%  mflops/node %5.2f  sys/user-fxu %4.2f\n",
		d.Index, d.Gflops(), 100*d.Utilization(p.nodes), r.MflopsAll, d.SystemUserFXURatio())
}

func (dayPrinter) Finish(workload.Final) {}

// validateSpecs checks the referenced specs without running anything and
// returns the process exit code: 0 when every spec is clean, 2 when any
// fails to load, decode or validate. With no explicit reference it
// sweeps every committed preset — the CI spec-validate gate.
func validateSpecs(ref string, args []string) int {
	var refs []string
	switch {
	case len(args) > 0:
		refs = args
	case ref != "":
		refs = []string{ref}
	default:
		refs = spec.PresetNames()
	}
	code := 0
	for _, r := range refs {
		if _, err := spec.Load(r); err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			code = 2
			continue
		}
		fmt.Printf("%s: ok\n", r)
	}
	return code
}

func main() {
	days := flag.Int("days", 270, "campaign length in days")
	nodes := flag.Int("nodes", 144, "cluster size")
	seed := flag.Uint64("seed", 1, "campaign random seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker goroutines (1 = serial; results are seed-identical at any setting)")
	verbose := flag.Bool("v", false, "print per-day detail")
	specRef := flag.String("spec", "", "workload spec: a committed preset name (see -list-presets) or a JSON file path")
	listPresets := flag.Bool("list-presets", false, "list the committed workload-spec presets and exit")
	validate := flag.Bool("validate", false, "validate workload specs and exit 0 (clean) or 2 (malformed): the -spec reference, file arguments, or — with neither — every committed preset")
	withFaults := flag.Bool("faults", false, "inject the default collection-fault mix (crashes, cron misses, daemon restarts) and report coverage; a spec's own faults block takes precedence")
	clusters := flag.Int("clusters", 0, "fleet size: run this many copies of the campaign as a multi-cluster fleet; 0 defers to the spec's fleet block (or a single cluster)")
	shards := flag.Int("shards", 1, "fleet shards: cluster-level workers, each owning its own engine pool (results are identical at any setting)")
	checkpoint := flag.String("checkpoint", "", "fleet checkpoint file (.json or .json.gz), written as clusters complete")
	resumeRun := flag.Bool("resume", false, "resume the fleet campaign recorded in -checkpoint")
	haltAfter := flag.Int("halt-after", 0, "stop the fleet after this many cluster completions (smoke/testing; requires -checkpoint)")
	recordTo := flag.String("record", "", "record the campaign's generated plans (and resolved fault schedules) to a trace here (always gzip); replaying it reproduces this run bit for bit")
	replayFrom := flag.String("replay", "", "re-simulate a recorded campaign trace instead of generating plans; the trace must match the campaign definition (exit 1 on corruption or mismatch)")
	out := flag.String("o", "", "write the campaign database here (.json or .json.gz) for cmd/experiments")
	csvOut := flag.String("csv", "", "also export the batch-job database as CSV")
	profCache := flag.String("profile-cache", "", "persist kernel measurements here (.json or .json.gz) and reuse them on later runs")
	telFmt := flag.String("telemetry", "", `append the hpmtel self-measurement snapshot after the summary ("text" or "json")`)
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile here")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile here on exit")
	flag.Parse()
	if *telFmt != "" && *telFmt != "text" && *telFmt != "json" {
		fmt.Fprintf(os.Stderr, "spsim: -telemetry must be \"text\" or \"json\", got %q\n", *telFmt)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "spsim: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	if *clusters < 0 {
		fmt.Fprintf(os.Stderr, "spsim: -clusters must be >= 0, got %d\n", *clusters)
		os.Exit(2)
	}
	if *haltAfter < 0 {
		fmt.Fprintf(os.Stderr, "spsim: -halt-after must be >= 0, got %d\n", *haltAfter)
		os.Exit(2)
	}
	if *resumeRun && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "spsim: -resume requires -checkpoint")
		os.Exit(2)
	}
	if *haltAfter > 0 && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "spsim: -halt-after requires -checkpoint")
		os.Exit(2)
	}
	// A useful trace is a complete trace: recording rejects every mode
	// that would leave some day ungenerated (mirrors fleet.Options).
	if *recordTo != "" && *replayFrom != "" {
		fmt.Fprintln(os.Stderr, "spsim: -record cannot be combined with -replay (a replay would only copy the trace)")
		os.Exit(2)
	}
	if *recordTo != "" && *resumeRun {
		fmt.Fprintln(os.Stderr, "spsim: -record cannot be combined with -resume (restored clusters never regenerate, so the trace would be incomplete)")
		os.Exit(2)
	}
	if *recordTo != "" && *haltAfter > 0 {
		fmt.Fprintln(os.Stderr, "spsim: -record cannot be combined with -halt-after (a halted run records an incomplete trace)")
		os.Exit(2)
	}
	// Any explicit fleet flag selects the fleet engine; so does a spec
	// fleet block (checked after the spec loads). A fleet of one in one
	// shard reduces to the classic campaign bit-for-bit, so the switch
	// never changes results — only the machinery.
	fleetFlags := *clusters > 0 || *checkpoint != "" || *resumeRun || *haltAfter > 0
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			fleetFlags = true
		}
	})

	if *listPresets {
		for _, name := range spec.PresetNames() {
			s, err := spec.Preset(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-14s %s\n", name, s.Description)
		}
		return
	}
	if *validate {
		os.Exit(validateSpecs(*specRef, flag.Args()))
	}
	// Load (and validate) the spec before paying for kernel measurement:
	// a typo should fail in milliseconds.
	var sp *spec.Spec
	if *specRef != "" {
		var err error
		if sp, err = spec.Load(*specRef); err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(2)
		}
	}
	// Probe the replay trace before paying for kernel measurement: a
	// corrupt or truncated trace should fail in milliseconds. The
	// definition-mismatch check needs the resolved config and runs later.
	if *replayFrom != "" {
		if _, err := replay.OpenFile(*replayFrom); err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(1)
		}
	}

	stopCPU, err := cliperf.StartCPUProfile(*cpuProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
		os.Exit(1)
	}
	defer stopCPU()
	defer func() {
		if err := cliperf.WriteMemProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
		}
	}()
	if err := cliperf.LoadProfileCache(*profCache); err != nil {
		fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("measuring kernel profiles...\n")
	std := profile.MeasureStandardWorkers(*seed, *workers)
	if err := cliperf.SaveProfileCache(*profCache); err != nil {
		fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
		os.Exit(1)
	}

	cfg := workload.DefaultConfig(*seed)
	cfg.Days = *days
	cfg.Nodes = *nodes
	mix := workload.DefaultMix(std)
	if sp != nil {
		var err error
		if cfg, mix, err = spec.Resolve(sp, std); err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(2)
		}
		cfg.Seed = *seed
		// Explicitly-passed -days/-nodes override the spec's campaign
		// block; the spec wins when the flag was left at its default.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "days":
				cfg.Days = *days
			case "nodes":
				cfg.Nodes = *nodes
			}
		})
	}
	cfg.Workers = *workers
	if *withFaults && cfg.Faults == nil {
		f := faults.Default()
		cfg.Faults = &f
	}

	var res workload.Result
	var telRed workload.TelemetryReducer
	if fleetFlags || (sp != nil && sp.Fleet != nil) {
		// Fleet path: per-cluster configs (spec fleet block or -clusters
		// replicas) with substream-derived seeds, sharded and merged in
		// canonical cluster order by internal/fleet.
		ccfg := core.Config{Seed: *seed, Workers: *workers}
		flag.Visit(func(f *flag.Flag) {
			// Explicit -days/-nodes override every cluster; defaults defer
			// to the spec's campaign block and per-cluster overrides.
			switch f.Name {
			case "days":
				ccfg.Days = *days
			case "nodes":
				ccfg.Nodes = *nodes
			}
		})
		var sys *core.System
		var err error
		if sp != nil {
			sys, err = core.NewWithSpec(ccfg, sp)
		} else {
			sys = core.New(ccfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(2)
		}
		members, err := sys.FleetMembers(*clusters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(2)
		}
		totalNodes := 0
		for i := range members {
			if *withFaults && members[i].Config.Faults == nil {
				f := faults.Default()
				members[i].Config.Faults = &f
			}
			totalNodes += members[i].Config.Nodes
		}
		scenario := ""
		if members[0].Config.Scenario != "" {
			scenario = fmt.Sprintf(" [scenario %s]", members[0].Config.Scenario)
		}
		fmt.Printf("running %d-cluster fleet campaign (%d nodes total, %d shards, %d workers each)%s...\n",
			len(members), totalNodes, *shards, *workers, scenario)
		var sinks workload.TeeReducer
		if *verbose {
			sinks = append(sinks, dayPrinter{totalNodes})
		}
		if *telFmt != "" {
			sinks = append(sinks, &telRed)
		}
		res, err = fleet.Run(members, fleet.Options{
			Shards:     *shards,
			Checkpoint: *checkpoint,
			Resume:     *resumeRun,
			HaltAfter:  *haltAfter,
			RecordTo:   *recordTo,
			ReplayFrom: *replayFrom,
		}, sinks...)
		switch {
		case errors.Is(err, fleet.ErrHalted):
			fmt.Printf("fleet halted after %d cluster completion(s); %s holds the partial campaign — rerun with -resume to continue\n",
				*haltAfter, *checkpoint)
			return
		case err != nil:
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(1)
		}
		cfg = res.Config
	} else {
		scenario := ""
		if cfg.Scenario != "" {
			scenario = fmt.Sprintf(" [scenario %s]", cfg.Scenario)
		}
		verb := "running"
		if *replayFrom != "" {
			verb = "replaying"
		}
		fmt.Printf("%s %d-day campaign on %d nodes (%d workers)%s...\n", verb, cfg.Days, cfg.Nodes, *workers, scenario)
		var sinks workload.TeeReducer
		if *verbose {
			sinks = append(sinks, dayPrinter{cfg.Nodes})
		}
		if *telFmt != "" {
			sinks = append(sinks, &telRed)
		}
		var err error
		switch {
		case *recordTo != "":
			res, err = replay.RunRecorded(*recordTo, cfg, mix, sinks...)
		case *replayFrom != "":
			res, err = replay.RunReplayed(*replayFrom, cfg, mix, sinks...)
		default:
			var rr workload.ResultReducer
			workload.NewCampaign(cfg, mix).RunInto(append(sinks, &rr))
			res = rr.Result()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(1)
		}
	}
	if *recordTo != "" {
		fmt.Printf("campaign trace recorded to %s\n", *recordTo)
	}

	if *out != "" {
		if err := trace.WriteFile(*out, res); err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("campaign database written to %s\n", *out)
	}
	if *csvOut != "" {
		if err := trace.WriteRecordsCSVFile(*csvOut, res.Records); err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("job database (CSV) written to %s\n", *csvOut)
	}

	var gflops, utils []float64
	for i, d := range res.Days {
		gflops = append(gflops, res.DayGflops(i))
		utils = append(utils, d.Utilization(cfg.Nodes))
	}

	fmt.Printf("\n=== campaign summary (paper values in brackets) ===\n")
	fmt.Printf("daily system rate   : mean %.2f Gflops [1.3], max %.2f [3.4]\n",
		stats.Mean(gflops), stats.Max(gflops))
	fmt.Printf("max 15-minute rate  : %.2f Gflops [5.7]\n", res.MaxGflops15min)
	fmt.Printf("utilization         : mean %.0f%% [64%%], max %.0f%% [95%%]\n",
		100*stats.Mean(utils), 100*stats.Max(utils))

	good := 0
	var goodR []float64
	for i := range res.Days {
		if res.DayGflops(i) > 2.0 {
			good++
			goodR = append(goodR, res.DayPerNodeRates(i).MflopsAll)
		}
	}
	fmt.Printf("days > 2.0 Gflops   : %d of %d [30 of 270], avg %.1f Mflops/node [17.4]\n",
		good, len(res.Days), stats.Mean(goodR))

	// Batch population.
	fmt.Printf("\nbatch records       : %d (dropped %d under 600 s)\n", len(res.Records), res.DroppedRecords)
	byNodes := map[int]float64{}
	var jobMf []float64
	var jobWall []float64
	for _, r := range res.Records {
		byNodes[r.NodesUsed] += r.WallSeconds
		jobMf = append(jobMf, r.PerNodeRates().MflopsAll)
		jobWall = append(jobWall, r.WallSeconds)
	}
	fmt.Printf("time-weighted job rate: %.1f Mflops/node [19]\n",
		stats.WeightedMean(jobMf, jobWall))
	var keys []int
	for k := range byNodes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Printf("walltime by node count:\n")
	for _, k := range keys {
		fmt.Printf("  %3d nodes: %10.0f s\n", k, byNodes[k])
	}

	if res.Coverage != nil {
		fmt.Printf("\n%s", res.Coverage.Render())
	}

	// The hpmtel snapshot captured at campaign Finish: the run measuring
	// its own execution, appended after the simulated results.
	if *telFmt != "" {
		fmt.Printf("\n=== telemetry (hpmtel) ===\n")
		var err error
		if *telFmt == "json" {
			err = telRed.Snapshot.WriteJSON(os.Stdout)
		} else {
			err = telRed.Snapshot.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(1)
		}
	}
}
