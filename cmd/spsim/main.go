// Command spsim runs the nine-month NAS SP2 measurement campaign on the
// simulated cluster and prints the headline numbers the paper reports:
// daily system Gflops, utilisation, the >2 Gflops day sample, and the
// batch-job population.
//
// Usage:
//
//	spsim [-days 270] [-nodes 144] [-seed 1] [-workers N] [-v] [-faults] [-o db.json.gz]
//	      [-csv jobs.csv] [-telemetry text|json] [-profile-cache profiles.json.gz]
//	      [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/cliperf"
	"repro/internal/faults"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// dayPrinter is a streaming reducer that prints each day as the campaign
// closes it, instead of waiting for the full Result.
type dayPrinter struct{ nodes int }

func (p dayPrinter) ReduceDay(d workload.Day) {
	r := d.PerNodeRates(p.nodes)
	fmt.Printf("day %3d  %5.2f Gflops  util %4.1f%%  mflops/node %5.2f  sys/user-fxu %4.2f\n",
		d.Index, d.Gflops(), 100*d.Utilization(p.nodes), r.MflopsAll, d.SystemUserFXURatio())
}

func (dayPrinter) Finish(workload.Final) {}

func main() {
	days := flag.Int("days", 270, "campaign length in days")
	nodes := flag.Int("nodes", 144, "cluster size")
	seed := flag.Uint64("seed", 1, "campaign random seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker goroutines (1 = serial; results are seed-identical at any setting)")
	verbose := flag.Bool("v", false, "print per-day detail")
	withFaults := flag.Bool("faults", false, "inject the default collection-fault mix (crashes, cron misses, daemon restarts) and report coverage")
	out := flag.String("o", "", "write the campaign database here (.json or .json.gz) for cmd/experiments")
	csvOut := flag.String("csv", "", "also export the batch-job database as CSV")
	profCache := flag.String("profile-cache", "", "persist kernel measurements here (.json or .json.gz) and reuse them on later runs")
	telFmt := flag.String("telemetry", "", `append the hpmtel self-measurement snapshot after the summary ("text" or "json")`)
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile here")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile here on exit")
	flag.Parse()
	if *telFmt != "" && *telFmt != "text" && *telFmt != "json" {
		fmt.Fprintf(os.Stderr, "spsim: -telemetry must be \"text\" or \"json\", got %q\n", *telFmt)
		os.Exit(2)
	}

	stopCPU, err := cliperf.StartCPUProfile(*cpuProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
		os.Exit(1)
	}
	defer stopCPU()
	defer func() {
		if err := cliperf.WriteMemProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
		}
	}()
	if err := cliperf.LoadProfileCache(*profCache); err != nil {
		fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
		os.Exit(1)
	}

	cfg := workload.DefaultConfig(*seed)
	cfg.Days = *days
	cfg.Nodes = *nodes
	cfg.Workers = *workers
	if *withFaults {
		f := faults.Default()
		cfg.Faults = &f
	}

	fmt.Printf("measuring kernel profiles...\n")
	std := profile.MeasureStandardWorkers(*seed, *workers)
	if err := cliperf.SaveProfileCache(*profCache); err != nil {
		fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("running %d-day campaign on %d nodes (%d workers)...\n", cfg.Days, cfg.Nodes, *workers)
	var rr workload.ResultReducer
	var telRed workload.TelemetryReducer
	tee := workload.TeeReducer{&rr}
	if *verbose {
		tee = append(workload.TeeReducer{dayPrinter{cfg.Nodes}}, tee...)
	}
	if *telFmt != "" {
		tee = append(tee, &telRed)
	}
	workload.NewCampaign(cfg, workload.DefaultMix(std)).RunInto(tee)
	res := rr.Result()

	if *out != "" {
		if err := trace.WriteFile(*out, res); err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("campaign database written to %s\n", *out)
	}
	if *csvOut != "" {
		if err := trace.WriteRecordsCSVFile(*csvOut, res.Records); err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("job database (CSV) written to %s\n", *csvOut)
	}

	var gflops, utils []float64
	for i, d := range res.Days {
		gflops = append(gflops, res.DayGflops(i))
		utils = append(utils, d.Utilization(cfg.Nodes))
	}

	fmt.Printf("\n=== campaign summary (paper values in brackets) ===\n")
	fmt.Printf("daily system rate   : mean %.2f Gflops [1.3], max %.2f [3.4]\n",
		stats.Mean(gflops), stats.Max(gflops))
	fmt.Printf("max 15-minute rate  : %.2f Gflops [5.7]\n", res.MaxGflops15min)
	fmt.Printf("utilization         : mean %.0f%% [64%%], max %.0f%% [95%%]\n",
		100*stats.Mean(utils), 100*stats.Max(utils))

	good := 0
	var goodR []float64
	for i := range res.Days {
		if res.DayGflops(i) > 2.0 {
			good++
			goodR = append(goodR, res.DayPerNodeRates(i).MflopsAll)
		}
	}
	fmt.Printf("days > 2.0 Gflops   : %d of %d [30 of 270], avg %.1f Mflops/node [17.4]\n",
		good, len(res.Days), stats.Mean(goodR))

	// Batch population.
	fmt.Printf("\nbatch records       : %d (dropped %d under 600 s)\n", len(res.Records), res.DroppedRecords)
	byNodes := map[int]float64{}
	var jobMf []float64
	var jobWall []float64
	for _, r := range res.Records {
		byNodes[r.NodesUsed] += r.WallSeconds
		jobMf = append(jobMf, r.PerNodeRates().MflopsAll)
		jobWall = append(jobWall, r.WallSeconds)
	}
	fmt.Printf("time-weighted job rate: %.1f Mflops/node [19]\n",
		stats.WeightedMean(jobMf, jobWall))
	var keys []int
	for k := range byNodes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Printf("walltime by node count:\n")
	for _, k := range keys {
		fmt.Printf("  %3d nodes: %10.0f s\n", k, byNodes[k])
	}

	if res.Coverage != nil {
		fmt.Printf("\n%s", res.Coverage.Render())
	}

	// The hpmtel snapshot captured at campaign Finish: the run measuring
	// its own execution, appended after the simulated results.
	if *telFmt != "" {
		fmt.Printf("\n=== telemetry (hpmtel) ===\n")
		var err error
		if *telFmt == "json" {
			err = telRed.Snapshot.WriteJSON(os.Stdout)
		} else {
			err = telRed.Snapshot.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spsim: %v\n", err)
			os.Exit(1)
		}
	}
}
