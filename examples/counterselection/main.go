// Counter selection: the paper's 22 events are one selection over the
// monitor's larger signal catalog, and its conclusion recommends that
// other sites select options reporting I/O wait. This example runs the
// same oversubscribed workload twice — once under the NAS selection, once
// under the recommended I/O-wait selection, re-armed remotely through the
// rs2hpmd daemon protocol — and prints what each can and cannot see.
//
//	go run ./examples/counterselection
package main

import (
	"fmt"
	"log"

	"repro/internal/hpm"
	"repro/internal/kernels"
	"repro/internal/node"
	"repro/internal/rs2hpm"
)

func main() {
	nd := node.New(node.Config{ID: 0, MemoryBytes: 32 << 20}) // starved node
	daemon := rs2hpm.NewDaemon()
	daemon.AddSource(nd)
	addr, err := daemon.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer daemon.Close()
	client, err := rs2hpm.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	kernel, _ := kernels.ByName("paging")
	const instrs = 700_000

	fmt.Println("one oversubscribed node, two counter selections (re-armed over TCP)")
	fmt.Println()

	// Pass 1: the NAS selection (Table 1).
	if err := client.Arm(0, "nas"); err != nil {
		log.Fatal(err)
	}
	nd.RunLimited(kernel.New(1), instrs)
	nas, _ := client.Counters(0)

	sysFXU := nas.Get(hpm.System, hpm.EvFXU0Instr) + nas.Get(hpm.System, hpm.EvFXU1Instr)
	userFXU := nas.Get(hpm.User, hpm.EvFXU0Instr) + nas.Get(hpm.User, hpm.EvFXU1Instr)
	fmt.Printf("NAS selection (the campaign's view):\n")
	fmt.Printf("  system FXU %d vs user FXU %d -> ratio %.1f: 'evidently these processes\n",
		sysFXU, userFXU, float64(sysFXU)/float64(userFXU))
	fmt.Printf("  were paging' is an inference; wait time itself is not a counter.\n\n")

	// Pass 2: the I/O-wait selection the paper recommends, same workload.
	if err := client.Arm(0, "iowait"); err != nil {
		log.Fatal(err)
	}
	startCycles := nd.CPU().Cycle()
	nd.RunLimited(kernel.New(1), instrs)
	io, _ := client.Counters(0)
	elapsed := nd.CPU().Cycle() - startCycles

	wait := io.Get(hpm.User, hpm.EvICacheReload) + io.Get(hpm.System, hpm.EvICacheReload)
	pageIns := io.Get(hpm.User, hpm.EvDMARead) + io.Get(hpm.System, hpm.EvDMARead)
	fmt.Printf("I/O-wait selection (the paper's recommendation):\n")
	fmt.Printf("  io_wait_cycles %d of %d total -> %.1f%% of the node's time,\n",
		wait, elapsed, 100*float64(wait)/float64(elapsed))
	fmt.Printf("  page_ins %d — measured directly, no inference needed.\n\n", pageIns)

	fmt.Println("\"Other sites wishing to monitor their SP or SP2 systems might consider")
	fmt.Println(" selecting counter options which could also report I/O wait time in")
	fmt.Println(" addition to CPU performance.\"  — the paper's closing sentence, run.")
}
