// Register-reuse study: the paper anchors its analysis on a blocked,
// unrolled matrix multiply that sustains ~240 Mflops with a
// flops-per-memory-reference ratio of 3.0, against a workload average of
// 0.53 ("many of the codes were not making good reuse of the registers").
//
// This example measures the blocked matmul kernel, then builds a naive
// non-blocked variant inline — one fma per load pair, no register tiling,
// streaming operands — and shows how register reuse alone separates them.
//
//	go run ./examples/matmul
package main

import (
	"fmt"

	"repro/internal/hpm"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/power2"
)

// naiveMatMul is the untiled inner loop: every fma re-loads both operands
// from streaming arrays, so there is no register reuse to exploit and the
// serial accumulator chain limits ILP.
func naiveMatMul() isa.Stream {
	b := isa.NewBuilder()
	x, y, acc := b.FPR(), b.FPR(), b.FPR()
	b.Load(x, isa.Ref{Base: 0x100000, Stride: 8})
	b.Load(y, isa.Ref{Base: 0x4100000, Stride: 8})
	b.FMA(acc, x, y, acc)
	b.IntALU(0, 0)
	b.Branch()
	return b.Build(1<<62, 0x9000)
}

func measure(name string, s isa.Stream, n uint64) hpm.Rates {
	cpu := power2.New(power2.Config{Seed: 1})
	cpu.RunLimited(s, n)
	d := hpm.Sub(hpm.Snapshot{}, cpu.Monitor().Snapshot())
	r := hpm.UserRates(d, cpu.Elapsed())
	fmt.Printf("%-22s %8.1f Mflops   flops/memref %5.2f   fma-frac %4.2f   cache-miss %5.2f%%\n",
		name, r.MflopsAll, r.FlopsPerMemRef(), r.FMAFraction(), 100*r.CacheMissRatio())
	return r
}

func main() {
	fmt.Println("single-node matrix multiply on the simulated POWER2 (paper section 5)")
	fmt.Println()

	blocked, _ := kernels.ByName("matmul")
	rb := measure("blocked + unrolled", blocked.New(1), 600_000)
	rn := measure("naive (no blocking)", naiveMatMul(), 600_000)

	fmt.Println()
	fmt.Printf("speedup from register blocking: %.1fx\n", rb.MflopsAll/rn.MflopsAll)
	fmt.Printf("paper's anchors: 240 Mflops and flops/memref 3.0 for the blocked code;\n")
	fmt.Printf("the workload averaged 0.53 flops/memref — closer to the naive loop's %.2f.\n",
		rn.FlopsPerMemRef())
	fmt.Printf("achievable single-node peak (paper): ~240 of 267 Mflops; measured blocked: %.0f.\n",
		rb.MflopsAll)
}
