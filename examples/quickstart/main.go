// Quickstart: simulate one SP2 node running the workload-average CFD
// kernel, read its hardware performance monitor the way RS2HPM did, and
// print the counter-derived rates next to the paper's workload numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/hpm"
	"repro/internal/kernels"
	"repro/internal/power2"
)

func main() {
	// An RS6000/590 node CPU with the paper's geometry: 256 KB 4-way
	// D-cache with 256-byte lines, 512-entry TLB, dual FXUs and FPUs.
	cpu := power2.New(power2.Config{Seed: 1})

	// The multi-block CFD solver kernel that stands in for the NAS
	// workload average.
	kernel, _ := kernels.ByName("cfd")
	fmt.Printf("running 1,000,000 instructions of %q on one POWER2 node...\n\n", kernel.Name)
	st := cpu.RunLimited(kernel.New(1), 1_000_000)

	// Read the 22 SCU counters and reduce them to the paper's rates.
	delta := hpm.Sub(hpm.Snapshot{}, cpu.Monitor().Snapshot())
	r := hpm.UserRates(delta, cpu.Elapsed())

	fmt.Printf("architectural: %d instructions in %d cycles (IPC %.2f)\n\n",
		st.Instructions, st.Cycles, st.IPC())
	fmt.Printf("%-34s %10s %s\n", "counter-derived rate", "this run", "paper (workload avg)")
	fmt.Printf("%-34s %10.1f %s\n", "Mflops", r.MflopsAll, "17.4 at the job level (crunch x duty x util)")
	fmt.Printf("%-34s %10.1f %s\n", "Mips (FPU+FXU+ICU)", r.Mips, "45.7")
	fmt.Printf("%-34s %10.2f %s\n", "fma share of flops", r.FMAFraction(), "~0.54 pooled across codes")
	fmt.Printf("%-34s %10.2f %s\n", "FPU0/FPU1 instruction ratio", r.FPUAsymmetry(), "1.7")
	fmt.Printf("%-34s %10.2f %s\n", "flops per memory instruction", r.FlopsPerMemRef(), "0.53-0.63")
	fmt.Printf("%-34s %10.2f%% %s\n", "cache miss ratio", 100*r.CacheMissRatio(), "~1.0%")
	fmt.Printf("%-34s %10.3f%% %s\n", "TLB miss ratio", 100*r.TLBMissRatio(), "~0.1%")
	fmt.Printf("%-34s %10d %s\n", "divides counted by the monitor",
		delta.Get(hpm.User, hpm.EvFPU0Div)+delta.Get(hpm.User, hpm.EvFPU1Div),
		"0 — the documented hardware bug")
	fmt.Printf("%-34s %10d %s\n", "divides actually executed",
		cpu.Monitor().TrueDivides(hpm.User), "~3% of flops, invisible to the counters")
}
