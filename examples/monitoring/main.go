// The monitoring stack, end to end: simulated nodes running kernels, the
// rs2hpmd daemon serving their counters over real TCP, and the collector
// sampling the daemon into a time-series log — the in-memory form of the
// files the paper's 15-minute cron job wrote.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"

	"repro/internal/hpm"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/node"
	"repro/internal/rs2hpm"
)

func main() {
	// Four nodes running different codes: two production CFD, one tuned
	// BT-class code, one blocked matmul benchmark.
	specs := []string{"cfd", "cfd", "bt", "matmul"}
	nodes := make([]*node.Node, len(specs))
	streams := make([]isa.Stream, len(specs))
	daemon := rs2hpm.NewDaemon()
	for i, name := range specs {
		k, ok := kernels.ByName(name)
		if !ok {
			log.Fatalf("unknown kernel %q", name)
		}
		nodes[i] = node.New(node.Config{ID: i})
		streams[i] = k.New(uint64(i) + 1)
		daemon.AddSource(nodes[i])
	}

	addr, err := daemon.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer daemon.Close()
	fmt.Printf("rs2hpmd serving %d nodes on %s\n\n", len(nodes), addr)

	logbook := rs2hpm.NewSampleLog()
	collector := rs2hpm.NewCollector(addr, logbook)

	// Two sampling passes with simulated work in between — the cron cycle,
	// compressed: each "15-minute interval" is a burst of simulated
	// instructions.
	if err := collector.CollectOnce(0); err != nil {
		log.Fatal(err)
	}
	elapsed := make([]float64, len(nodes))
	for i := range nodes {
		st := nodes[i].RunLimited(streams[i], 800_000)
		elapsed[i] = float64(st.Cycles) / 66.7e6
	}
	if err := collector.CollectOnce(900); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%4s %-8s %10s %10s %10s %12s\n", "node", "code", "Mflops", "Mips", "fma-frac", "flops/memref")
	for i, name := range specs {
		d, _, ok := logbook.DeltaOver(i, 0, 900)
		if !ok {
			log.Fatalf("node %d: no sample window", i)
		}
		// Rates over the node's simulated busy time.
		r := hpm.UserRates(d, elapsed[i])
		fmt.Printf("%4d %-8s %10.1f %10.1f %10.2f %12.2f\n",
			i, name, r.MflopsAll, r.Mips, r.FMAFraction(), r.FlopsPerMemRef())
	}
	fmt.Printf("\nthe collector spoke the daemon's line protocol over TCP %s;\n", addr)
	fmt.Printf("the daemon's 64-bit totals extend the 22 wrapping 32-bit SCU registers\n")
	fmt.Printf("(Maki's multipass sampling), so deltas over any window are exact.\n")
}
