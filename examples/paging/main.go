// The >64-node pathology: the paper's surprising finding was that large
// jobs oversubscribed node memory and spent more instructions in system
// mode than user mode — AIX was paging. This example runs the same
// oversubscribed kernel on a healthy node and a memory-starved one and
// prints the Figure 5 signature: the system-FXU/user-FXU ratio and the
// performance collapse that comes with it.
//
//	go run ./examples/paging
package main

import (
	"fmt"

	"repro/internal/hpm"
	"repro/internal/kernels"
	"repro/internal/power2"
)

func run(label string, memoryBytes uint64, instrs uint64) {
	kernel, _ := kernels.ByName("paging")
	cpu := power2.New(power2.Config{Seed: 1, MemoryBytes: memoryBytes})
	cpu.RunLimited(kernel.New(1), instrs)
	d := hpm.Sub(hpm.Snapshot{}, cpu.Monitor().Snapshot())
	r := hpm.UserRates(d, cpu.Elapsed())
	vmStats := cpu.VM().Stats()

	fmt.Printf("%-28s %8.2f Mflops   zero-fill faults %6d   disk page-ins %7d   sys/user FXU %8.1f\n",
		label, r.MflopsAll, vmStats.ZeroFills, vmStats.PageIns, hpm.SystemUserFXURatio(d))
	if w := d.Get(hpm.System, hpm.EvDMAWrite); w > 0 {
		fmt.Printf("%-28s paging-disk traffic: %d page-in DMA transfers charged in system mode\n", "", w)
	}
}

func main() {
	fmt.Println("memory oversubscription on the simulated SP2 node (paper section 6, Figure 5)")
	fmt.Println("kernel: page-striding sweep over a 256 MB working set, revisited repeatedly")
	fmt.Println()
	// Two full sweeps of the working set so steady-state paging dominates.
	const instrs = 700_000
	run("healthy node (1 GB)", 1<<30, instrs)
	run("oversubscribed node (32 MB)", 32<<20, instrs)
	fmt.Println()
	fmt.Println("the healthy node only zero-fills each page once (first touch, no disk); the")
	fmt.Println("starved node keeps reclaiming and re-reading pages from paging space, its")
	fmt.Println("floating rate collapses, and the OS executes far more fixed-point instructions")
	fmt.Println("than the user code — exactly how the paper diagnosed that its >64-node jobs")
	fmt.Println("were paging, without any I/O-wait counter in the 22-event selection.")
}
