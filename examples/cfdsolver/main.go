// A multi-node CFD job, end to end: 16 ranks run the multi-block solver
// kernel on their own simulated POWER2 nodes, exchange halos around a ring
// over the High Performance Switch, and synchronise on periodic residual
// reductions — the structure of the paper's dominant workload class.
//
// When the job finishes, the per-node hardware counters are reduced the
// way Saphir's PBS prologue/epilogue reduction did: job-level Mflops per
// node, the compute/communication split, and the DMA traffic the message
// passing generated.
//
//	go run ./examples/cfdsolver
package main

import (
	"fmt"
	"log"

	"repro/internal/hpm"
	"repro/internal/hps"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/nfs"
	"repro/internal/node"
)

const (
	ranks      = 16
	steps      = 25
	instrsStep = 60_000 // solver work per step per rank
	haloBytes  = 16 << 10
)

func main() {
	fmt.Printf("16-node multi-block CFD job on the simulated SP2\n\n")

	net := hps.New(hps.SP2())
	homes := nfs.New(net, nfs.SP2Config()) // the 3x8 GB home filesystems
	nodes := make([]*node.Node, ranks)
	for i := range nodes {
		nodes[i] = node.New(node.Config{ID: i})
	}
	world := mpi.NewWorld(net, nodes)
	kernel, _ := kernels.ByName("cfd")

	world.Run(func(r *mpi.Rank) {
		stream := kernel.New(uint64(r.ID()) + 1)
		right := (r.ID() + 1) % ranks
		left := (r.ID() + ranks - 1) % ranks
		for step := 0; step < steps; step++ {
			// Boundary blocks are larger: a little load imbalance.
			work := uint64(instrsStep)
			if r.ID() == 0 || r.ID() == ranks-1 {
				work += instrsStep / 8
			}
			r.ComputeStream(stream, work)
			// Nearest-neighbour halo exchange (asynchronous sends, the
			// style of the paper's best-performing 28-node job).
			r.SendRecv(right, haloBytes, left)
			r.SendRecv(left, haloBytes, right)
			// Residual norm every few steps.
			if (step+1)%5 == 0 {
				r.Allreduce(64)
			}
		}
	})

	// Each rank writes its solution block to the home filesystems over the
	// switch — the NFS traffic the paper notes rides the same DMA counters.
	for _, r := range world.Ranks() {
		path := fmt.Sprintf("/u/cfd/block%02d.dat", r.ID())
		if _, err := homes.Write(r.Node().NodeID(), path, 2<<20); err != nil {
			log.Fatalf("result output: %v", err)
		}
	}

	// Job wall time = slowest rank; reduce counters per node.
	wall := 0.0
	for _, r := range world.Ranks() {
		if r.Now() > wall {
			wall = r.Now()
		}
	}
	fmt.Printf("job wall time: %.1f ms (virtual)\n\n", wall*1000)
	fmt.Printf("%4s %10s %10s %12s %12s %10s\n",
		"rank", "Mflops", "Mips", "comm-wait", "dma-read", "dma-write")
	var total hpm.Delta
	for i, r := range world.Ranks() {
		d := hpm.Sub64(hpm.Counts64{}, nodes[i].Counters())
		total.Add(d)
		rates := hpm.UserRates(d, wall)
		fmt.Printf("%4d %10.1f %10.1f %11.1f%% %12d %12d\n",
			r.ID(), rates.MflopsAll, rates.Mips, 100*r.WaitSeconds()/r.Now(),
			d.Get(hpm.User, hpm.EvDMARead), d.Get(hpm.User, hpm.EvDMAWrite))
	}
	job := hpm.UserRates(total, wall*ranks)
	fmt.Printf("\njob average: %.1f Mflops/node — the gap to the kernel's pure-crunch rate\n", job.MflopsAll)
	fmt.Printf("is communication wait, the mechanism behind the paper's job-level rates.\n")
	msgs, bytes := net.Stats()
	fmt.Printf("switch traffic: %d messages, %.1f KB total (halos + NFS result output)\n", msgs, float64(bytes)/1024)
	fmt.Printf("home filesystems: %d files, %.1f MB across %d volumes\n",
		len(homes.List()), float64(homes.TotalUsed())/(1<<20), len(homes.Servers()))
}
