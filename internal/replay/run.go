package replay

// Campaign-level record/replay drivers: the single-cluster counterparts
// of the fleet wiring in internal/fleet. Both run the ordinary staged
// campaign — only the generate stage differs: RunRecorded tees it into a
// trace, RunReplayed substitutes the trace for it.

import (
	"repro/internal/workload"
)

// RunRecorded runs the campaign live and records its generated plans to
// a gzip trace at path. The Result is identical to an unrecorded run;
// the trace appears at path only if both the campaign and the trace
// write completed (the recorder writes a temp file and renames on
// success).
func RunRecorded(path string, cfg workload.Config, mix workload.Mix, sinks ...workload.Reducer) (workload.Result, error) {
	rec, err := Create(path, HeaderFor([]Def{{Config: cfg, Mix: mix}}))
	if err != nil {
		return workload.Result{}, err
	}
	defer rec.Abort() // no-op after a successful Close; discards on panic
	c := workload.NewCampaign(cfg, mix)
	c.SetGenerator(rec.Tap(0, cfg, workload.NewGenerator(cfg, mix)))
	var rr workload.ResultReducer
	c.RunInto(append(workload.TeeReducer(sinks), &rr))
	if err := rec.Close(); err != nil {
		return workload.Result{}, err
	}
	return rr.Result(), nil
}

// RunReplayed re-simulates the trace at path under the given campaign
// definition, bypassing generation. The definition must be the one the
// trace was recorded from (Validate's fingerprint check); Workers is an
// execution knob and may differ freely. The Result is bit-identical to
// the live run that recorded the trace.
func RunReplayed(path string, cfg workload.Config, mix workload.Mix, sinks ...workload.Reducer) (workload.Result, error) {
	rp, err := OpenFile(path)
	if err != nil {
		return workload.Result{}, err
	}
	if err := rp.Validate([]Def{{Config: cfg, Mix: mix}}); err != nil {
		return workload.Result{}, err
	}
	src := rp.Source(0)
	c := workload.NewCampaign(cfg, mix)
	c.SetGenerator(src)
	c.SetFaultPlanner(src)
	var rr workload.ResultReducer
	c.RunInto(append(workload.TeeReducer(sinks), &rr))
	return rr.Result(), nil
}
