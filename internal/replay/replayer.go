package replay

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// maxTraceDim bounds the geometry a header may claim (clusters, days per
// cluster). Real fleets are orders of magnitude smaller; anything larger
// is a corrupt or adversarial header, rejected before it can size an
// allocation.
const maxTraceDim = 1 << 20

// Replayer holds a fully decoded, internally consistent trace. Decode
// verifies structure (every (cluster, day) present exactly once);
// Validate then binds the trace to a campaign definition. Only after
// both may Source feed a campaign.
type Replayer struct {
	h         Header
	records   [][]*Record // [cluster][day]; rows allocated on first record
	validated bool
}

// Decode reads an uncompressed JSON trace from r. Failures classify as
// ErrVersion or ErrCorrupt — never a panic, whatever the bytes. Most
// callers want OpenFile, which layers gzip and the file on top.
func Decode(r io.Reader) (*Replayer, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()

	// Two-pass header decode. The loose probe reads only the format
	// identity, so a trace from a *newer* writer — whose header may have
	// fields this reader has never heard of — still classifies as a
	// version error rather than corruption.
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	var probe struct {
		Format  string `json:"format"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil || probe.Format != FormatName {
		return nil, fmt.Errorf("%w: not a %s header", ErrCorrupt, FormatName)
	}
	if probe.Version != FormatVersion {
		return nil, fmt.Errorf("%w: trace is version %d, this reader speaks %d", ErrVersion, probe.Version, FormatVersion)
	}
	var h Header
	hdec := json.NewDecoder(bytes.NewReader(raw))
	hdec.DisallowUnknownFields()
	if err := hdec.Decode(&h); err != nil {
		return nil, fmt.Errorf("%w: malformed header: %v", ErrCorrupt, err)
	}
	if h.Clusters < 1 || h.Clusters > maxTraceDim {
		return nil, fmt.Errorf("%w: header claims %d clusters", ErrCorrupt, h.Clusters)
	}
	if len(h.ClusterDays) != h.Clusters {
		return nil, fmt.Errorf("%w: header has %d cluster day counts for %d clusters", ErrCorrupt, len(h.ClusterDays), h.Clusters)
	}
	total, maxDays := 0, 0
	for c, d := range h.ClusterDays {
		if d < 1 || d > maxTraceDim {
			return nil, fmt.Errorf("%w: header claims %d days for cluster %d", ErrCorrupt, d, c)
		}
		if d > maxDays {
			maxDays = d
		}
		total += d
	}
	if h.Days != maxDays {
		return nil, fmt.Errorf("%w: header says %d days, cluster day counts say %d", ErrCorrupt, h.Days, maxDays)
	}

	rp := &Replayer{h: h, records: make([][]*Record, h.Clusters)}
	// Rows are sized lazily from arriving records, so a lying header
	// cannot drive an allocation bigger than the input that carries it.
	seen := 0
	for {
		var rec Record
		err := dec.Decode(&rec)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrCorrupt, seen, err)
		}
		if rec.Cluster < 0 || rec.Cluster >= h.Clusters {
			return nil, fmt.Errorf("%w: record for cluster %d, trace has %d", ErrCorrupt, rec.Cluster, h.Clusters)
		}
		if rec.Day < 0 || rec.Day >= h.ClusterDays[rec.Cluster] {
			return nil, fmt.Errorf("%w: record for cluster %d day %d, cluster has %d days", ErrCorrupt, rec.Cluster, rec.Day, h.ClusterDays[rec.Cluster])
		}
		if rec.Plan.Day != rec.Day {
			return nil, fmt.Errorf("%w: record for day %d carries a plan for day %d", ErrCorrupt, rec.Day, rec.Plan.Day)
		}
		if rec.Faults != nil && rec.Faults.Day != rec.Day {
			return nil, fmt.Errorf("%w: record for day %d carries a fault plan for day %d", ErrCorrupt, rec.Day, rec.Faults.Day)
		}
		if rp.records[rec.Cluster] == nil {
			rp.records[rec.Cluster] = make([]*Record, h.ClusterDays[rec.Cluster])
		}
		if rp.records[rec.Cluster][rec.Day] != nil {
			return nil, fmt.Errorf("%w: cluster %d day %d recorded twice", ErrCorrupt, rec.Cluster, rec.Day)
		}
		r := rec
		rp.records[rec.Cluster][rec.Day] = &r
		seen++
	}
	// Every record landed in a distinct in-bounds slot, so matching the
	// expected count means every slot is filled — a truncated trace (or
	// one whose recorder died mid-campaign) fails here.
	if seen != total {
		return nil, fmt.Errorf("%w: trace has %d of %d records", ErrCorrupt, seen, total)
	}
	return rp, nil
}

// OpenFile loads a gzip-compressed trace from path, classifying every
// failure as ErrVersion or ErrCorrupt (I/O errors surface as themselves).
func OpenFile(path string) (*Replayer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replay: open trace: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(countingReader{f, telBytesRead})
	if err != nil {
		return nil, fmt.Errorf("%w: %s is not a gzip stream: %v", ErrCorrupt, path, err)
	}
	defer gz.Close()
	rp, err := Decode(gz)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rp, nil
}

// Header returns the trace header.
func (rp *Replayer) Header() Header { return rp.h }

// Validate binds the trace to a campaign definition: same cluster count,
// same per-cluster day window, same fault geometry, and — the decisive
// check — the same config fingerprint the recorder computed. Any
// disagreement is ErrMismatch: replaying a trace against the wrong
// system must hard-fail, not produce a plausible wrong Result.
func (rp *Replayer) Validate(defs []Def) error {
	if len(defs) != rp.h.Clusters {
		return fmt.Errorf("%w: trace has %d clusters, definition has %d", ErrMismatch, rp.h.Clusters, len(defs))
	}
	for i := range defs {
		cfg := defs[i].Config
		if cfg.Days > rp.h.ClusterDays[i] {
			return fmt.Errorf("%w: cluster %d wants %d days but the trace records only %d", ErrMismatch, i, cfg.Days, rp.h.ClusterDays[i])
		}
		if cfg.Days < rp.h.ClusterDays[i] {
			return fmt.Errorf("%w: cluster %d wants %d days but the trace records %d", ErrMismatch, i, cfg.Days, rp.h.ClusterDays[i])
		}
		ticks := ticksPerDay(cfg)
		for day, rec := range rp.records[i] {
			if (cfg.Faults != nil) != (rec.Faults != nil) {
				return fmt.Errorf("%w: cluster %d day %d: fault plan %s but configuration says %s", ErrMismatch,
					i, day, presence(rec.Faults != nil), presence(cfg.Faults != nil))
			}
			if rec.Faults != nil && (rec.Faults.Nodes != cfg.Nodes || rec.Faults.Ticks != ticks) {
				return fmt.Errorf("%w: cluster %d day %d: fault plan is %dx%d, configuration is %dx%d", ErrMismatch,
					i, day, rec.Faults.Nodes, rec.Faults.Ticks, cfg.Nodes, ticks)
			}
			for j := range rec.Plan.Jobs {
				if n := rec.Plan.Jobs[j].Spec.Nodes; n < 1 || n > cfg.Nodes {
					return fmt.Errorf("%w: cluster %d day %d job %d wants %d nodes, cluster has %d", ErrMismatch,
						i, day, j, n, cfg.Nodes)
				}
			}
		}
	}
	if got, want := Fingerprint(defs), rp.h.Fingerprint; got != want {
		return fmt.Errorf("%w: trace fingerprint %016x, definition fingerprint %016x (recorded from a different campaign?)", ErrMismatch, want, got)
	}
	rp.validated = true
	return nil
}

func presence(p bool) string {
	if p {
		return "recorded"
	}
	return "absent"
}

// Source returns the cluster's trace-backed generate stage. It satisfies
// both workload.Generator and workload.FaultPlanner, so one Source wires
// a campaign's plan stream and fault schedule to the trace. Validate
// must have succeeded first.
func (rp *Replayer) Source(cluster int) *Source {
	if !rp.validated {
		panic("replay: Source before successful Validate")
	}
	if cluster < 0 || cluster >= rp.h.Clusters {
		panic(fmt.Sprintf("replay: Source(%d) of %d clusters", cluster, rp.h.Clusters))
	}
	return &Source{rp: rp, cluster: cluster}
}

// Source feeds one cluster's recorded plans into a campaign.
type Source struct {
	rp      *Replayer
	cluster int
}

// GenerateDay returns the recorded day plan. Validate pinned the day
// window, so an out-of-range day here is a campaign bug, not bad input.
func (s *Source) GenerateDay(day int) workload.DayPlan {
	telPlansReplayed.Inc()
	return s.rp.records[s.cluster][day].Plan
}

// PlanFaultDay returns the recorded fault schedule. Validate pinned the
// geometry against the configuration, so the campaign's request can only
// match the record.
func (s *Source) PlanFaultDay(day, nodes, ticks int) faults.Plan {
	p := s.rp.records[s.cluster][day].Faults
	if p == nil || p.Nodes != nodes || p.Ticks != ticks {
		panic(fmt.Sprintf("replay: campaign asked for a %dx%d fault plan for day %d the trace does not carry", nodes, ticks, day))
	}
	return *p
}

// countingReader feeds the trace-size telemetry (compressed bytes).
type countingReader struct {
	r io.Reader
	c *telemetry.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(uint64(n))
	}
	return n, err
}
