package replay

// Fuzz target for the trace decoder (header probe + record framing).
// The decoder fronts files users hand to -replay, so arbitrary bytes
// must classify as ErrVersion or ErrCorrupt — never panic, never hang,
// never allocate proportionally to a lying header — and anything it
// accepts must survive a re-encode/decode cycle identically (in-package
// so the cycle can compare the decoded storage directly).

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

func FuzzReplayDecode(f *testing.F) {
	const header = `{"format":"hpm-campaign-trace","version":1,"seed":7,"fingerprint":123,"clusters":1,"days":1,"cluster_days":[1],"faulted":false}`
	const record = `{"cluster":0,"day":0,"plan":{"Day":0,"Util":0.5,"PagingDay":false,"Quality":1,"Jobs":null}}`
	const faulted = `{"cluster":0,"day":0,"plan":{"Day":0,"Util":0.5,"PagingDay":true,"Quality":1,"Jobs":[]},` +
		`"faults":{"day":0,"nodes":1,"ticks":2,"drop":[true,false],"dup":null,"down_from":[0],"down_to":[1],"reset_tick":[-1],"reset_kind":[0]}}`

	f.Add([]byte(header + "\n" + record + "\n"))
	f.Add([]byte(header + "\n" + faulted + "\n"))
	f.Add([]byte(header + "\n")) // header only: incomplete
	f.Add([]byte(header + "\n" + record + "\n" + record + "\n")) // duplicate
	f.Add([]byte(`{"format":"hpm-campaign-trace","version":99,"novel":true}` + "\n"))
	f.Add([]byte(`{"format":"something-else","version":1}` + "\n"))
	f.Add([]byte(`{"format":"hpm-campaign-trace","version":1,"clusters":1000000,"days":1,"cluster_days":[1]}` + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte("null\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rp, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error escaped classification: %v", err)
			}
			return
		}
		// Accepted input: re-encode the decoded trace and decode it
		// again; header and every record must come back identical.
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		if err := enc.Encode(rp.h); err != nil {
			t.Fatalf("re-encoding accepted header failed: %v", err)
		}
		for _, row := range rp.records {
			for _, rec := range row {
				if err := enc.Encode(rec); err != nil {
					t.Fatalf("re-encoding accepted record failed: %v", err)
				}
			}
		}
		again, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own encoder's output failed: %v", err)
		}
		if !reflect.DeepEqual(rp.h, again.h) {
			t.Fatalf("header changed across the round trip:\n first: %+v\nsecond: %+v", rp.h, again.h)
		}
		if !reflect.DeepEqual(rp.records, again.records) {
			t.Fatal("records changed across the round trip")
		}
	})
}
