package replay_test

// Property tests for the trace codec: whatever the generate stage can
// produce must survive the trace bit-for-bit. DayPlans round-trip
// exactly through JSON (empty days and nil-vs-empty job lists included),
// and a recorded trace feeds back, through the real Recorder → Decode →
// Validate → Source path, the very plans the generator produced
// (reflect.DeepEqual, fault schedules included). Only generation runs
// here — no simulation — so the properties are checked across many
// randomized seeds cheaply.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func TestDayPlanJSONRoundTrip(t *testing.T) {
	std := profile.MeasureStandardWorkers(7, 1)
	mix := workload.DefaultMix(std)
	rnd := rand.New(rand.NewSource(4))
	plans := []workload.DayPlan{
		{},                                   // zero value: nil Jobs must stay nil
		{Day: 3, Jobs: []workload.JobSpec{}}, // empty-but-present must stay empty
		{Day: 1, Util: 0.5, PagingDay: true, Quality: 1.25},
	}
	for i := 0; i < 20; i++ {
		cfg := workload.DefaultConfig(rnd.Uint64())
		cfg.Days = 1 + rnd.Intn(4)
		// A near-zero demand day exercises sparse (possibly empty) plans.
		if i%5 == 0 {
			cfg.MeanUtil, cfg.UtilSigma = 0.01, 0.01
		}
		g := workload.NewGenerator(cfg, mix)
		plans = append(plans, g.GenerateDay(rnd.Intn(cfg.Days)))
	}
	for i, p := range plans {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("plan %d: marshal: %v", i, err)
		}
		var got workload.DayPlan
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("plan %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("plan %d: round trip not exact\nwant %+v\ngot  %+v", i, p, got)
		}
	}
}

// TestTraceRoundTripExact records generated plans through the real
// Recorder and reads them back through Decode → Validate → Source: every
// replayed DayPlan and fault schedule must equal what the generator
// produced, exactly.
func TestTraceRoundTripExact(t *testing.T) {
	std := profile.MeasureStandardWorkers(7, 1)
	mix := workload.DefaultMix(std)
	rnd := rand.New(rand.NewSource(9))
	for round := 0; round < 6; round++ {
		cfg := workload.DefaultConfig(rnd.Uint64())
		cfg.Days = 1 + rnd.Intn(3)
		if round%2 == 1 {
			fc := faults.Default()
			fc.CrashProbPerNodeDay = 0.2 // duplicated samples and resets both likely
			fc.DupProbPerSample = 0.02
			cfg.Faults = &fc
		}
		defs := []replay.Def{{Config: cfg, Mix: mix}}

		var buf bytes.Buffer
		rec, err := replay.NewRecorder(&buf, replay.HeaderFor(defs))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		tap := rec.Tap(0, cfg, workload.NewGenerator(cfg, mix))
		for d := 0; d < cfg.Days; d++ {
			tap.GenerateDay(d)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}

		rp, err := replay.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if err := rp.Validate(defs); err != nil {
			t.Fatalf("round %d: validate: %v", round, err)
		}
		src := rp.Source(0)
		g := workload.NewGenerator(cfg, mix) // regenerate: the generator is pure
		ticks := int(86400 / cfg.SamplePeriodSeconds)
		for d := 0; d < cfg.Days; d++ {
			if want, got := g.GenerateDay(d), src.GenerateDay(d); !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d day %d: replayed plan differs from generated plan", round, d)
			}
			if cfg.Faults != nil {
				want := faults.NewPlan(*cfg.Faults, cfg.Seed, d, cfg.Nodes, ticks)
				if got := src.PlanFaultDay(d, cfg.Nodes, ticks); !reflect.DeepEqual(want, got) {
					t.Fatalf("round %d day %d: replayed fault plan differs from derived plan", round, d)
				}
			}
		}
	}
}

// TestJobSpecTimeRoundTrip pins the float precision the trace relies on:
// submission instants are float64 seconds, and Go's JSON encoder writes
// the shortest form that round-trips exactly.
func TestJobSpecTimeRoundTrip(t *testing.T) {
	times := []simclock.Time{0, 1.0 / 3, 86399.999999999, 12345.6789012345678}
	for _, at := range times {
		data, err := json.Marshal(workload.JobSpec{At: at})
		if err != nil {
			t.Fatal(err)
		}
		var got workload.JobSpec
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got.At != at {
			t.Fatalf("submission instant %v round-tripped to %v", at, got.At)
		}
	}
}
