package replay

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Recorder streams campaign records into a trace. It tees off the
// generate stage via Tap, so the campaign being recorded is otherwise
// untouched — same plans, same simulation, same Result. A Recorder is
// safe for concurrent use: fleet shards generate their clusters' days
// in parallel, and records land in the trace in whatever order they
// arrive (the decoder indexes by (cluster, day), not position).
type Recorder struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error

	// File-backed state (Create); nil for NewRecorder.
	f    *os.File
	gz   *gzip.Writer
	tmp  string
	path string
	done bool
}

// NewRecorder writes a trace to w as uncompressed JSON — the header
// immediately, records as they are generated. Most callers want Create.
func NewRecorder(w io.Writer, h Header) (*Recorder, error) {
	r := &Recorder{enc: json.NewEncoder(w)}
	if err := r.writeHeader(h); err != nil {
		return nil, err
	}
	return r, nil
}

// Create opens a gzip-compressed trace file at path. The trace is
// written to a temporary file in the same directory and renamed into
// place by Close, so a crash mid-campaign never leaves a plausible
// half-trace at the target path.
func Create(path string, h Header) (*Recorder, error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("replay: create trace: %w", err)
	}
	gz := gzip.NewWriter(countingWriter{f, telBytesWritten})
	r := &Recorder{
		enc:  json.NewEncoder(gz),
		f:    f,
		gz:   gz,
		tmp:  f.Name(),
		path: path,
	}
	if err := r.writeHeader(h); err != nil {
		r.Abort()
		return nil, err
	}
	return r, nil
}

func (r *Recorder) writeHeader(h Header) error {
	h.Format, h.Version = FormatName, FormatVersion
	if h.Clusters < 1 || len(h.ClusterDays) != h.Clusters {
		return fmt.Errorf("replay: header has %d cluster day counts for %d clusters", len(h.ClusterDays), h.Clusters)
	}
	if err := r.enc.Encode(h); err != nil {
		return fmt.Errorf("replay: write header: %w", err)
	}
	return nil
}

// record appends one record; after the first failure the recorder goes
// inert and Close reports the error.
func (r *Recorder) record(rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil || r.done {
		return
	}
	if err := r.enc.Encode(rec); err != nil {
		r.err = fmt.Errorf("replay: write record: %w", err)
		return
	}
	telRecordsWritten.Inc()
}

// Err reports the first write failure, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close flushes the trace and, for file-backed recorders, renames the
// temporary file over the target path. It returns the first error the
// recorder hit anywhere — a trace that Closed cleanly is complete.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return r.err
	}
	r.done = true
	if r.gz != nil {
		if err := r.gz.Close(); err != nil && r.err == nil {
			r.err = fmt.Errorf("replay: flush trace: %w", err)
		}
	}
	if r.f != nil {
		if err := r.f.Close(); err != nil && r.err == nil {
			r.err = fmt.Errorf("replay: close trace: %w", err)
		}
		if r.err != nil {
			os.Remove(r.tmp)
		} else if err := os.Rename(r.tmp, r.path); err != nil {
			os.Remove(r.tmp)
			r.err = fmt.Errorf("replay: finalize trace: %w", err)
		}
	}
	return r.err
}

// Abort discards the trace: the temporary file is removed and nothing
// appears at the target path. Safe after Close (then a no-op).
func (r *Recorder) Abort() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	r.done = true
	if r.gz != nil {
		r.gz.Close()
	}
	if r.f != nil {
		r.f.Close()
		os.Remove(r.tmp)
	}
}

// Tap wraps a cluster's generator so every plan it produces is recorded.
// For faulted configurations the tap also records the day's resolved
// fault schedule: faults.NewPlan is pure in (Config.Faults, seed, day,
// geometry), so deriving it here yields exactly the plan the campaign
// will derive at the day boundary — the trace stores the schedule as
// data and the replayer never re-derives it.
func (r *Recorder) Tap(cluster int, cfg workload.Config, g workload.Generator) workload.Generator {
	return &tapGenerator{rec: r, cluster: cluster, cfg: cfg, ticks: ticksPerDay(cfg), gen: g}
}

type tapGenerator struct {
	rec     *Recorder
	cluster int
	cfg     workload.Config
	ticks   int
	gen     workload.Generator
}

// GenerateDay forwards to the wrapped generator and tees the plan out.
func (t *tapGenerator) GenerateDay(day int) workload.DayPlan {
	plan := t.gen.GenerateDay(day)
	rec := Record{Cluster: t.cluster, Day: day, Plan: plan}
	if t.cfg.Faults != nil {
		fp := faults.NewPlan(*t.cfg.Faults, t.cfg.Seed, day, t.cfg.Nodes, t.ticks)
		rec.Faults = &fp
	}
	t.rec.record(rec)
	return plan
}

// countingWriter feeds the trace-size telemetry (compressed bytes).
type countingWriter struct {
	w io.Writer
	c *telemetry.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.c.Add(uint64(n))
	}
	return n, err
}
