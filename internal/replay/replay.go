// Package replay records and replays campaign traces. The paper's
// methodology is record-then-reduce: the RS2HPM cron sweep wrote nine
// months of samples to disk, and Tables 2–4 and Figures 2–5 were
// *re-reductions* of that stored record, long after the workload itself
// was gone. Our staged engine re-derives a campaign from a seed instead
// — good for reproducibility, useless for forensics on a workload whose
// seed you no longer trust, and limiting for experiments that want one
// pinned workload under many configurations. This package restores the
// paper's property: a Recorder tees the generate stage's output (each
// day's workload.DayPlan, plus the resolved faults.Plan for faulted
// campaigns) into a versioned gzip-JSON trace, and a Replayer feeds the
// recorded plans back into the simulate→reduce stages, bypassing
// generation entirely.
//
// Replay is bit-identical to live generation: the campaign Result is a
// pure function of the plan stream, so simulating recorded plans at any
// Workers count — or through the fleet path at any shard count — lands
// on the same bits as the live run that recorded them. That makes a
// committed trace a differential-testing oracle: any engine optimization
// can be checked against it, not just against the single golden seed.
//
// A trace is bound to the campaign definition that wrote it by a config
// fingerprint (the fnv-64a hash of every cluster's serialized
// (Config, Mix), the same scheme fleet.ID uses). Replaying a trace
// against a different definition is a hard ErrMismatch, never a silently
// wrong answer. Execution knobs (Workers, shard count, Scenario label)
// are excluded from Config's JSON form, so a replay may use any of them.
package replay

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/faults"
	"repro/internal/workload"
)

// Format identity. FormatVersion must change whenever the trace layout
// changes incompatibly — a reader seeing a newer version reports
// ErrVersion rather than guessing.
const (
	FormatName    = "hpm-campaign-trace"
	FormatVersion = 1
)

// Decode and validation failures classify into exactly three families,
// matchable with errors.Is. Nothing in this package panics on trace
// bytes: arbitrary input decodes or fails with one of these.
var (
	// ErrVersion: the file is a campaign trace, but from an incompatible
	// format version (usually a newer writer).
	ErrVersion = errors.New("replay: unsupported trace format version")
	// ErrCorrupt: the bytes are not a structurally sound trace —
	// truncated, trailing garbage, not gzip/JSON, or internally
	// inconsistent (duplicate or out-of-range records).
	ErrCorrupt = errors.New("replay: corrupt trace")
	// ErrMismatch: the trace is sound but was recorded from a different
	// campaign definition than the one replaying it.
	ErrMismatch = errors.New("replay: trace does not match campaign definition")
)

// Header opens every trace: the identity of the campaign that wrote it.
type Header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Scenario is the workload-spec label the campaign was resolved from
	// (metadata only — the fingerprint pins the resolved numbers).
	Scenario string `json:"scenario,omitempty"`
	// Seed is cluster 0's campaign seed, recorded for display; the
	// fingerprint is the binding check.
	Seed uint64 `json:"seed"`
	// Fingerprint is Fingerprint() of the recording definition.
	Fingerprint uint64 `json:"fingerprint"`
	// Clusters is the fleet width (1 for a plain campaign); ClusterDays
	// gives each cluster's recorded day count and Days their maximum.
	Clusters    int   `json:"clusters"`
	Days        int   `json:"days"`
	ClusterDays []int `json:"cluster_days"`
	// Faulted marks a campaign whose records carry resolved fault plans.
	Faulted bool `json:"faulted"`
}

// Record is one (cluster, day) of generated workload: the day plan the
// generator produced and, for faulted campaigns, the day's resolved
// fault schedule.
type Record struct {
	Cluster int              `json:"cluster"`
	Day     int              `json:"day"`
	Plan    workload.DayPlan `json:"plan"`
	Faults  *faults.Plan     `json:"faults,omitempty"`
}

// Def is one cluster's campaign definition — what the trace is recorded
// from and validated against on replay. For a plain (non-fleet) campaign
// the definition is a single Def.
type Def struct {
	Config workload.Config
	Mix    workload.Mix
}

// Fingerprint hashes a campaign definition the way fleet.ID hashes a
// fleet: fnv-64a over each cluster's serialized (Config, Mix). Workers
// and Scenario carry `json:"-"`, so execution knobs never affect the
// fingerprint. It panics only if the definition is unserializable, which
// a constructible Config/Mix never is.
func Fingerprint(defs []Def) uint64 {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	for i := range defs {
		if err := enc.Encode(defs[i]); err != nil {
			panic(fmt.Sprintf("replay: hashing cluster %d definition: %v", i, err))
		}
	}
	return h.Sum64()
}

// HeaderFor builds the trace header for a campaign definition.
func HeaderFor(defs []Def) Header {
	h := Header{
		Format:      FormatName,
		Version:     FormatVersion,
		Fingerprint: Fingerprint(defs),
		Clusters:    len(defs),
		ClusterDays: make([]int, len(defs)),
	}
	if len(defs) > 0 {
		h.Scenario = defs[0].Config.Scenario
		h.Seed = defs[0].Config.Seed
	}
	for i := range defs {
		h.ClusterDays[i] = defs[i].Config.Days
		if defs[i].Config.Days > h.Days {
			h.Days = defs[i].Config.Days
		}
		if defs[i].Config.Faults != nil {
			h.Faulted = true
		}
	}
	return h
}

// ticksPerDay mirrors the campaign's sample-period normalization: an
// unset period means the 15-minute RS2HPM cadence.
func ticksPerDay(cfg workload.Config) int {
	sp := cfg.SamplePeriodSeconds
	if sp <= 0 {
		sp = 900
	}
	return int(86400 / sp)
}
