package replay_test

// The differential proof layer: record a campaign, replay the trace,
// and demand full-Result hash equality with the live run — through the
// single-campaign path at workers {1, 8}, through the fleet path at
// shards {1, 4}, and for faulted campaigns whose resolved fault plans
// must round-trip through the trace. The golden campaign hash pins the
// replay path to the same constant every other execution knob is pinned
// to: a trace-fed simulation is an execution knob, never a model change.
//
// This file lives in an external test package so it can drive
// internal/fleet, which imports internal/replay.

import (
	"encoding/json"
	"hash/fnv"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/workload"
)

// goldenCampaignHash mirrors the constant pinned in
// internal/workload/golden_test.go: resultHash of the seed-7, 2-day
// default campaign.
const goldenCampaignHash uint64 = 0x88ee6c33b8c0bd5c

func resultHash(t *testing.T, r workload.Result) uint64 {
	t.Helper()
	h := fnv.New64a()
	if err := json.NewEncoder(h).Encode(r); err != nil {
		t.Fatalf("hash result: %v", err)
	}
	return h.Sum64()
}

// goldenDef is the golden recipe: standard profiles at seed 7, 2-day
// default campaign, the given engine worker count. Profile measurement
// memoizes through the default store, so repeated calls are cheap.
func goldenDef(workers int) (workload.Config, workload.Mix) {
	std := profile.MeasureStandardWorkers(7, workers)
	cfg := workload.DefaultConfig(7)
	cfg.Days = 2
	cfg.Workers = workers
	return cfg, workload.DefaultMix(std)
}

func TestGoldenRecordReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaign is a full 2-day simulation per case")
	}
	for _, recWorkers := range []int{1, 8} {
		cfg, mix := goldenDef(recWorkers)
		path := filepath.Join(t.TempDir(), "golden.trace.gz")
		live, err := replay.RunRecorded(path, cfg, mix)
		if err != nil {
			t.Fatalf("workers=%d: record: %v", recWorkers, err)
		}
		if h := resultHash(t, live); h != goldenCampaignHash {
			t.Fatalf("workers=%d: recorded live run hash %#x, want golden %#x — the recording tap changed observable behaviour",
				recWorkers, h, goldenCampaignHash)
		}
		for _, repWorkers := range []int{1, 8} {
			rcfg := cfg
			rcfg.Workers = repWorkers
			res, err := replay.RunReplayed(path, rcfg, mix)
			if err != nil {
				t.Fatalf("workers=%d->%d: replay: %v", recWorkers, repWorkers, err)
			}
			if h := resultHash(t, res); h != goldenCampaignHash {
				t.Fatalf("workers=%d->%d: replayed hash %#x, want golden %#x — replay is not bit-identical to live generation",
					recWorkers, repWorkers, h, goldenCampaignHash)
			}
		}
	}
}

func TestGoldenFleetRecordReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("golden fleet campaign is a full 2-day simulation per case")
	}
	cfg, mix := goldenDef(1)
	members := []fleet.Member{{Config: cfg, Mix: mix}}
	path := filepath.Join(t.TempDir(), "golden-fleet.trace.gz")
	live, err := fleet.Run(members, fleet.Options{RecordTo: path})
	if err != nil {
		t.Fatalf("fleet record: %v", err)
	}
	if h := resultHash(t, live); h != goldenCampaignHash {
		t.Fatalf("recorded fleet hash %#x, want golden %#x", h, goldenCampaignHash)
	}
	for _, shards := range []int{1, 4} {
		res, err := fleet.Run(members, fleet.Options{Shards: shards, ReplayFrom: path})
		if err != nil {
			t.Fatalf("shards=%d: fleet replay: %v", shards, err)
		}
		if h := resultHash(t, res); h != goldenCampaignHash {
			t.Fatalf("shards=%d: replayed fleet hash %#x, want golden %#x — the fleet replay path changed bits",
				shards, h, goldenCampaignHash)
		}
	}
}

// faultedDef is a campaign with every fault mode hot enough to fire in a
// 2-day window: the trace must round-trip resolved fault plans, not just
// day plans, for replay to land on the live bits.
func faultedDef(t *testing.T) (workload.Config, workload.Mix) {
	t.Helper()
	std := profile.MeasureStandardWorkers(7, 1)
	cfg := workload.DefaultConfig(11)
	cfg.Days = 2
	fc := faults.Config{
		CrashProbPerNodeDay:      0.05,
		MeanOutageTicks:          6,
		DropProbPerSample:        0.03,
		DupProbPerSample:         0.01,
		RestartProbPerNodeDay:    0.05,
		EpilogueDelayProb:        0.2,
		EpilogueDelayMeanSeconds: 300,
	}
	cfg.Faults = &fc
	return cfg, workload.DefaultMix(std)
}

func TestFaultedRecordReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("faulted campaign is a full 2-day simulation per case")
	}
	cfg, mix := faultedDef(t)
	path := filepath.Join(t.TempDir(), "faulted.trace.gz")
	live, err := replay.RunRecorded(path, cfg, mix)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if live.Coverage == nil || live.Coverage.Total.Expected == live.Coverage.Total.Captured {
		t.Fatal("faulted campaign lost no samples; the fault round-trip is untested at these rates")
	}
	want := resultHash(t, live)
	rp, err := replay.OpenFile(path)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	if !rp.Header().Faulted {
		t.Fatal("trace of a faulted campaign is not marked Faulted")
	}
	for _, workers := range []int{1, 8} {
		rcfg := cfg
		rcfg.Workers = workers
		res, err := replay.RunReplayed(path, rcfg, mix)
		if err != nil {
			t.Fatalf("workers=%d: replay: %v", workers, err)
		}
		if h := resultHash(t, res); h != want {
			t.Fatalf("workers=%d: replayed faulted hash %#x, live %#x — fault plans did not survive the trace",
				workers, h, want)
		}
	}
}

// TestHeterogeneousFleetRecordReplay drives the fleet seam hard: two
// clusters with different day windows, one faulted, recorded under
// concurrent shards (record order is nondeterministic; the decoder
// indexes, never assumes position) and replayed at shards {1, 4}.
func TestHeterogeneousFleetRecordReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster fleet simulation")
	}
	std := profile.MeasureStandardWorkers(7, 1)
	mix := workload.DefaultMix(std)
	c0 := workload.DefaultConfig(workload.ClusterSeed(21, 0))
	c0.Days = 2
	fc := faults.Default()
	fc.CrashProbPerNodeDay = 0.1 // hot enough to fire in a 2-day window
	c0.Faults = &fc
	c1 := workload.DefaultConfig(workload.ClusterSeed(21, 1))
	c1.Days = 1
	members := []fleet.Member{{Config: c0, Mix: mix}, {Config: c1, Mix: mix}}

	path := filepath.Join(t.TempDir(), "fleet.trace.gz")
	live, err := fleet.Run(members, fleet.Options{Shards: 2, RecordTo: path})
	if err != nil {
		t.Fatalf("fleet record: %v", err)
	}
	want := resultHash(t, live)
	for _, shards := range []int{1, 4} {
		res, err := fleet.Run(members, fleet.Options{Shards: shards, ReplayFrom: path})
		if err != nil {
			t.Fatalf("shards=%d: fleet replay: %v", shards, err)
		}
		if h := resultHash(t, res); h != want {
			t.Fatalf("shards=%d: replayed fleet hash %#x, live %#x", shards, h, want)
		}
	}
}
