package replay_test

// Error-path coverage for the trace decoder and validator: every way a
// trace can be wrong classifies into exactly one of the three sentinel
// families (ErrVersion, ErrCorrupt, ErrMismatch), with no panics and no
// silently accepted garbage. The cases mirror what operators actually
// hit — truncated files from killed recorders, traces from newer builds,
// traces replayed against the wrong campaign definition.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/workload"
)

// testDef builds a small campaign definition (generation only — these
// tests never simulate).
func testDef(t *testing.T, days int, seed uint64, faulted bool) ([]replay.Def, workload.Config, workload.Mix) {
	t.Helper()
	std := profile.MeasureStandardWorkers(7, 1)
	mix := workload.DefaultMix(std)
	cfg := workload.DefaultConfig(seed)
	cfg.Days = days
	if faulted {
		fc := faults.Default()
		cfg.Faults = &fc
	}
	return []replay.Def{{Config: cfg, Mix: mix}}, cfg, mix
}

// traceBytes records the definition's generated plans into an
// uncompressed in-memory trace.
func traceBytes(t *testing.T, defs []replay.Def) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec, err := replay.NewRecorder(&buf, replay.HeaderFor(defs))
	if err != nil {
		t.Fatal(err)
	}
	for c := range defs {
		tap := rec.Tap(c, defs[c].Config, workload.NewGenerator(defs[c].Config, defs[c].Mix))
		for d := 0; d < defs[c].Config.Days; d++ {
			tap.GenerateDay(d)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeErrorClassification(t *testing.T) {
	defs, _, _ := testDef(t, 1, 3, false)
	valid := traceBytes(t, defs)
	header := valid[:bytes.IndexByte(valid, '\n')+1]

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty input", nil, replay.ErrCorrupt},
		{"not JSON", []byte("RS2HPM says hi"), replay.ErrCorrupt},
		{"JSON but not an object", []byte("[1,2,3]\n"), replay.ErrCorrupt},
		{"wrong format name", []byte(`{"format":"hpm-checkpoint","version":1}` + "\n"), replay.ErrCorrupt},
		{"future format version", []byte(`{"format":"hpm-campaign-trace","version":2,"fields_from_the_future":true}` + "\n"), replay.ErrVersion},
		{"version zero", []byte(`{"format":"hpm-campaign-trace","version":0}` + "\n"), replay.ErrVersion},
		{"unknown header field at current version", []byte(`{"format":"hpm-campaign-trace","version":1,"seed":1,"fingerprint":1,"clusters":1,"days":1,"cluster_days":[1],"faulted":false,"extra":1}` + "\n"), replay.ErrCorrupt},
		{"cluster_days disagrees with clusters", []byte(`{"format":"hpm-campaign-trace","version":1,"seed":1,"fingerprint":1,"clusters":2,"days":1,"cluster_days":[1],"faulted":false}` + "\n"), replay.ErrCorrupt},
		{"days disagrees with cluster_days", []byte(`{"format":"hpm-campaign-trace","version":1,"seed":1,"fingerprint":1,"clusters":1,"days":5,"cluster_days":[1],"faulted":false}` + "\n"), replay.ErrCorrupt},
		{"absurd cluster count", []byte(`{"format":"hpm-campaign-trace","version":1,"seed":1,"fingerprint":1,"clusters":1073741824,"days":1,"cluster_days":[1],"faulted":false}` + "\n"), replay.ErrCorrupt},
		{"header only, no records", header, replay.ErrCorrupt},
		{"truncated mid-record", valid[:len(valid)-len(valid)/3], replay.ErrCorrupt},
		{"trailing garbage", append(append([]byte{}, valid...), []byte("}{ not a record")...), replay.ErrCorrupt},
		{"trailing duplicate record", append(append([]byte{}, valid...), valid[len(header):]...), replay.ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := replay.Decode(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("decode unexpectedly succeeded")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("decode error %v, want %v", err, tc.want)
			}
		})
	}

	if _, err := replay.Decode(bytes.NewReader(valid)); err != nil {
		t.Fatalf("the valid trace itself failed to decode: %v", err)
	}
}

func TestValidateMismatches(t *testing.T) {
	defs, cfg, mix := testDef(t, 1, 3, false)
	valid := traceBytes(t, defs)

	decode := func(t *testing.T) *replay.Replayer {
		t.Helper()
		rp, err := replay.Decode(bytes.NewReader(valid))
		if err != nil {
			t.Fatal(err)
		}
		return rp
	}

	cases := []struct {
		name    string
		mutate  func(workload.Config) workload.Config
		wantMsg string
	}{
		{"different seed", func(c workload.Config) workload.Config {
			c.Seed = 4
			return c
		}, "fingerprint"},
		{"replay wants more days than the trace", func(c workload.Config) workload.Config {
			c.Days = 2
			return c
		}, "days"},
		{"faulted configuration against unfaulted trace", func(c workload.Config) workload.Config {
			fc := faults.Default()
			c.Faults = &fc
			return c
		}, "fault plan"},
		{"different sample period", func(c workload.Config) workload.Config {
			c.SamplePeriodSeconds = 450
			return c
		}, "fingerprint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rp := decode(t)
			err := rp.Validate([]replay.Def{{Config: tc.mutate(cfg), Mix: mix}})
			if !errors.Is(err, replay.ErrMismatch) {
				t.Fatalf("validate error %v, want ErrMismatch", err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("validate error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}

	t.Run("wrong cluster count", func(t *testing.T) {
		rp := decode(t)
		two := []replay.Def{{Config: cfg, Mix: mix}, {Config: cfg, Mix: mix}}
		if err := rp.Validate(two); !errors.Is(err, replay.ErrMismatch) {
			t.Fatalf("validate error %v, want ErrMismatch", err)
		}
	})
	t.Run("matching definition validates", func(t *testing.T) {
		rp := decode(t)
		if err := rp.Validate(defs); err != nil {
			t.Fatalf("matching definition failed validation: %v", err)
		}
	})
	t.Run("workers and scenario are execution knobs", func(t *testing.T) {
		rp := decode(t)
		c := cfg
		c.Workers = 16
		c.Scenario = "renamed-spec"
		if err := rp.Validate([]replay.Def{{Config: c, Mix: mix}}); err != nil {
			t.Fatalf("execution knobs invalidated the trace: %v", err)
		}
	})
}

// TestUnfaultedConfigAgainstFaultedTrace covers the mismatch in the
// other direction: a trace carrying fault plans must not replay into a
// campaign that would ignore them.
func TestUnfaultedConfigAgainstFaultedTrace(t *testing.T) {
	defs, cfg, mix := testDef(t, 1, 3, true)
	rp, err := replay.Decode(bytes.NewReader(traceBytes(t, defs)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = nil
	if err := rp.Validate([]replay.Def{{Config: cfg, Mix: mix}}); !errors.Is(err, replay.ErrMismatch) {
		t.Fatalf("validate error %v, want ErrMismatch", err)
	}
}

func TestOpenFileErrors(t *testing.T) {
	dir := t.TempDir()

	t.Run("missing file", func(t *testing.T) {
		_, err := replay.OpenFile(filepath.Join(dir, "nope.trace.gz"))
		if err == nil || errors.Is(err, replay.ErrCorrupt) {
			t.Fatalf("want a plain I/O error, got %v", err)
		}
	})
	t.Run("not gzip", func(t *testing.T) {
		path := filepath.Join(dir, "plain.trace.gz")
		if err := os.WriteFile(path, []byte("just text"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := replay.OpenFile(path); !errors.Is(err, replay.ErrCorrupt) {
			t.Fatalf("want ErrCorrupt for a non-gzip file, got %v", err)
		}
	})
	t.Run("recorded file round-trips", func(t *testing.T) {
		defs, cfg, mix := testDef(t, 1, 3, false)
		path := filepath.Join(dir, "ok.trace.gz")
		rec, err := replay.Create(path, replay.HeaderFor(defs))
		if err != nil {
			t.Fatal(err)
		}
		tap := rec.Tap(0, cfg, workload.NewGenerator(cfg, mix))
		tap.GenerateDay(0)
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		rp, err := replay.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := rp.Validate(defs); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("aborted recorder leaves nothing behind", func(t *testing.T) {
		defs, _, _ := testDef(t, 1, 3, false)
		path := filepath.Join(dir, "aborted.trace.gz")
		rec, err := replay.Create(path, replay.HeaderFor(defs))
		if err != nil {
			t.Fatal(err)
		}
		rec.Abort()
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("aborted trace left a file at %s (stat: %v)", path, err)
		}
		left, err := filepath.Glob(filepath.Join(dir, "aborted.trace.gz.tmp*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(left) != 0 {
			t.Fatalf("aborted recorder left temp files: %v", left)
		}
	})
}
