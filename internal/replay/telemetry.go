package replay

// hpmtel instrumentation for the record/replay path. Observation only:
// no metric feeds back into what gets recorded or replayed, so a traced
// campaign's Result is identical with telemetry on or off.

import "repro/internal/telemetry"

var (
	telReplay         = telemetry.Default.Scope("replay")
	telRecordsWritten = telReplay.Counter("records_written")
	telPlansReplayed  = telReplay.Counter("plans_replayed")
	telBytesWritten   = telReplay.Counter("bytes_written")
	telBytesRead      = telReplay.Counter("bytes_read")
)
