package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded stream produced only %d distinct values", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("Intn(10) never produced %d", i)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(36, 54)
		if v < 36 || v > 54 {
			t.Fatalf("IntRange(36,54) = %d", v)
		}
	}
	// Degenerate range.
	if v := r.IntRange(7, 7); v != 7 {
		t.Fatalf("IntRange(7,7) = %d", v)
	}
}

func TestIntRangePanicsInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(5,4) did not panic")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestRangeProperty(t *testing.T) {
	f := func(seed uint64, a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := New(seed).Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestNormalClamped(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.NormalClamped(0, 100, -5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("NormalClamped escaped bounds: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(19)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(4.0)
		if v < 0 {
			t.Fatalf("Exponential returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-4.0) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~4", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned %v", v)
		}
	}
}

func TestWeightedDistribution(t *testing.T) {
	w := NewWeighted([]float64{1, 0, 3})
	r := New(29)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight outcome drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3.0) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestWeightedPanics(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"zero-total", []float64{0, 0}},
		{"negative", []float64{1, -1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewWeighted(%v) did not panic", c.weights)
				}
			}()
			NewWeighted(c.weights)
		})
	}
}

func TestWeightedSingleOutcome(t *testing.T) {
	w := NewWeighted([]float64{5})
	r := New(31)
	for i := 0; i < 100; i++ {
		if w.Sample(r) != 0 {
			t.Fatal("single-outcome sampler returned nonzero index")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		p := New(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(101)
	child := parent.Fork()
	// The child stream must be deterministic given the parent seed...
	parent2 := New(101)
	child2 := parent2.Fork()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("forked streams not reproducible")
		}
	}
	// ...and distinct from the parent's continuation.
	if parent.Uint64() == child.Uint64() {
		t.Fatal("fork appears correlated with parent")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(37)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate = %v", p)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Normal(0, 1)
	}
	_ = sink
}

func TestStreamDeterministicAndOrderFree(t *testing.T) {
	// Same (seed, id) -> same stream, regardless of what else was derived.
	a := Stream(7, 3)
	_ = Stream(7, 1).Uint64() // unrelated derivation in between
	b := Stream(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Stream(7,3) not reproducible at draw %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	// Different ids and different seeds give different streams; substream 0
	// also differs from the parent New(seed) stream.
	first := func(r *Source) uint64 { return r.Uint64() }
	vals := map[uint64]string{}
	cases := map[string]uint64{
		"New(9)":       first(New(9)),
		"Stream(9,0)":  first(Stream(9, 0)),
		"Stream(9,1)":  first(Stream(9, 1)),
		"Stream(10,0)": first(Stream(10, 0)),
	}
	for name, v := range cases {
		if prev, dup := vals[v]; dup {
			t.Fatalf("%s and %s start identically (%x)", name, prev, v)
		}
		vals[v] = name
	}
}

func TestStreamUniformity(t *testing.T) {
	// First draws across consecutive ids should look uniform: a crude
	// mean test over [0,1) catches catastrophic correlation with id.
	sum := 0.0
	const n = 20000
	for id := uint64(0); id < n; id++ {
		sum += Stream(1, id).Float64()
	}
	if m := sum / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("mean of first draws across streams = %v, want ~0.5", m)
	}
}
