// Package rng provides a deterministic pseudo-random number generator and
// the distributions the workload model draws from.
//
// The campaign simulation must be exactly reproducible from a seed across Go
// releases, so we implement xoshiro256** (seeded via splitmix64) locally
// instead of depending on math/rand's unspecified stream.
package rng

import "math"

// Source is a xoshiro256** generator. The zero value is not usable; obtain
// one from New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed via splitmix64. Any seed,
// including zero, yields a well-mixed state.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		src.s[i] = mix64(sm)
	}
	return &src
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream returns the id-th substream of seed: the splitmix64 generator
// seeded at seed is jumped id+1 gamma increments forward and its output
// seeds a fresh Source. Substreams of one seed are statistically
// independent of each other and of New(seed), and — crucially for the
// parallel campaign engine — Stream(seed, id) depends only on (seed, id),
// never on how many draws any other stream has consumed or on the order
// streams are created in.
func Stream(seed, id uint64) *Source {
	return New(mix64(seed + (id+1)*0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Fork returns a new Source deterministically derived from this one; the
// parent's stream advances by one draw. Use it to give subsystems
// independent streams without coupling their consumption rates.
func (r *Source) Fork() *Source { return New(r.Uint64()) }

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Range returns a uniform float64 in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// IntRange returns a uniform int in [lo, hi]. It panics if hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform.
func (r *Source) Normal(mean, stddev float64) float64 {
	// Reject u1 == 0 so the log is finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// NormalClamped returns a Normal draw clamped to [lo, hi].
func (r *Source) NormalClamped(mean, stddev, lo, hi float64) float64 {
	v := r.Normal(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LogNormal returns exp(Normal(mu, sigma)); mu and sigma parameterise the
// underlying normal, not the resulting distribution's mean.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed value with the given
// mean (i.e. rate 1/mean).
func (r *Source) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Weighted selects an index according to the given non-negative weights.
// It panics if weights is empty or sums to zero.
type Weighted struct {
	cum []float64
}

// NewWeighted builds a weighted sampler over the given weights.
func NewWeighted(weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("rng: NewWeighted with no weights")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("rng: NewWeighted with negative weight")
		}
		total += w
		cum[i] = total
	}
	if total == 0 {
		panic("rng: NewWeighted with zero total weight")
	}
	return &Weighted{cum: cum}
}

// Sample draws an index with probability proportional to its weight.
func (w *Weighted) Sample(r *Source) int {
	x := r.Float64() * w.cum[len(w.cum)-1]
	// Binary search for the first cumulative weight exceeding x.
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Len reports the number of outcomes.
func (w *Weighted) Len() int { return len(w.cum) }

// Shuffle permutes the first n elements using the Fisher-Yates algorithm,
// calling swap(i, j) for each exchange.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
