package pbs

import (
	"testing"

	"repro/internal/hpm"
	"repro/internal/node"
	"repro/internal/simclock"
)

func cluster(n int) []*node.Node {
	nodes := make([]*node.Node, n)
	for i := range nodes {
		nodes[i] = node.New(node.Config{ID: i})
	}
	return nodes
}

func newServer(t *testing.T, n int, cfg Config) (*simclock.Clock, *Server) {
	t.Helper()
	clock := &simclock.Clock{}
	return clock, New(clock, cluster(n), cfg)
}

func TestSubmitValidation(t *testing.T) {
	_, s := newServer(t, 4, Config{})
	if _, err := s.Submit(Spec{Nodes: 0, WallSeconds: 10}); err == nil {
		t.Fatal("zero-node job accepted")
	}
	if _, err := s.Submit(Spec{Nodes: 5, WallSeconds: 10}); err == nil {
		t.Fatal("oversized job accepted")
	}
	if _, err := s.Submit(Spec{Nodes: 1, WallSeconds: 0}); err == nil {
		t.Fatal("zero-wall job accepted")
	}
}

func TestSingleJobLifecycle(t *testing.T) {
	clock, s := newServer(t, 4, Config{})
	var started, ended *Job
	s.OnStart = func(j *Job) { started = j }
	s.OnEnd = func(j *Job) { ended = j }

	id, err := s.Submit(Spec{User: "alice", Nodes: 2, WallSeconds: 700, Class: "cfd"})
	if err != nil {
		t.Fatal(err)
	}
	if started == nil || started.ID != id {
		t.Fatal("OnStart not fired at submit-time scheduling")
	}
	if s.RunningCount() != 1 || s.FreeNodes() != 2 || s.BusyNodes() != 2 {
		t.Fatalf("state after start: running=%d free=%d", s.RunningCount(), s.FreeNodes())
	}
	clock.Run()
	if ended == nil || ended.ID != id {
		t.Fatal("OnEnd not fired")
	}
	if s.RunningCount() != 0 || s.FreeNodes() != 4 {
		t.Fatal("nodes not freed")
	}
	recs := s.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.User != "alice" || r.NodesUsed != 2 || r.WallSeconds != 700 || r.Class != "cfd" {
		t.Fatalf("record = %+v", r)
	}
	if r.StartAt != 0 || r.EndAt != simclock.Time(700) {
		t.Fatalf("times = %v..%v", r.StartAt, r.EndAt)
	}
}

func TestFIFOWhenSaturated(t *testing.T) {
	clock, s := newServer(t, 2, Config{})
	var order []int
	s.OnStart = func(j *Job) { order = append(order, j.ID) }
	a, _ := s.Submit(Spec{Nodes: 2, WallSeconds: 100})
	b, _ := s.Submit(Spec{Nodes: 2, WallSeconds: 100})
	c, _ := s.Submit(Spec{Nodes: 2, WallSeconds: 100})
	clock.Run()
	if len(order) != 3 || order[0] != a || order[1] != b || order[2] != c {
		t.Fatalf("start order = %v", order)
	}
}

func TestBackfillPastBlockedSmallJob(t *testing.T) {
	clock, s := newServer(t, 4, Config{})
	var order []int
	s.OnStart = func(j *Job) { order = append(order, j.ID) }
	s.Submit(Spec{Nodes: 3, WallSeconds: 1000})          // takes 3, leaves 1
	bID, _ := s.Submit(Spec{Nodes: 2, WallSeconds: 100}) // does not fit
	cID, _ := s.Submit(Spec{Nodes: 1, WallSeconds: 100}) // fits: backfill
	if len(order) != 2 || order[1] != cID {
		t.Fatalf("backfill order = %v (b=%d c=%d)", order, bID, cID)
	}
	clock.Run()
}

func TestDrainForLargeJobs(t *testing.T) {
	clock, s := newServer(t, 100, Config{DrainThreshold: 64})
	var order []int
	s.OnStart = func(j *Job) { order = append(order, j.ID) }
	s.Submit(Spec{Nodes: 60, WallSeconds: 500})           // running
	big, _ := s.Submit(Spec{Nodes: 80, WallSeconds: 100}) // >64: needs drain
	small, _ := s.Submit(Spec{Nodes: 10, WallSeconds: 50})
	// The small job fits in the 40 free nodes but must NOT start: the
	// queue is draining for the 80-node job.
	if len(order) != 1 {
		t.Fatalf("drain violated: order = %v", order)
	}
	clock.Run()
	// After the 60-node job ends the big job starts, then the small one.
	if len(order) != 3 || order[1] != big || order[2] != small {
		t.Fatalf("order = %v", order)
	}
}

func TestSmallJobsBackfillFreely(t *testing.T) {
	clock, s := newServer(t, 10, Config{DrainThreshold: 64})
	var order []int
	s.OnStart = func(j *Job) { order = append(order, j.ID) }
	s.Submit(Spec{Nodes: 8, WallSeconds: 500})
	s.Submit(Spec{Nodes: 4, WallSeconds: 100})         // small, does not fit
	c, _ := s.Submit(Spec{Nodes: 2, WallSeconds: 100}) // fits: backfill allowed
	if len(order) != 2 || order[1] != c {
		t.Fatalf("order = %v", order)
	}
	clock.Run()
}

func TestPrologueEpilogueCaptureDeltas(t *testing.T) {
	clock, s := newServer(t, 2, Config{})
	// Pre-existing counter activity must not leak into the job's record.
	s.nodes[0].WithAccumulator(func(a *hpm.Accumulator) {
		a.AddDirect(hpm.User, hpm.EvCycles, 999999)
	})
	s.OnEnd = func(j *Job) {
		// The campaign applies the job's counters before the epilogue.
		for _, nd := range j.Nodes() {
			nd.WithAccumulator(func(a *hpm.Accumulator) {
				a.AddDirect(hpm.User, hpm.EvFPU0Add, 5000)
				a.AddDirect(hpm.User, hpm.EvCycles, 70000)
			})
		}
	}
	s.Submit(Spec{Nodes: 2, WallSeconds: 700})
	clock.Run()
	recs := s.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, d := range recs[0].PerNode {
		if got := d.Get(hpm.User, hpm.EvFPU0Add); got != 5000 {
			t.Fatalf("node %d delta adds = %d", i, got)
		}
		if got := d.Get(hpm.User, hpm.EvCycles); got != 70000 {
			t.Fatalf("node %d delta cycles = %d (baseline leaked?)", i, got)
		}
	}
	// Derived record quantities.
	total := recs[0].TotalDelta()
	if total.Get(hpm.User, hpm.EvFPU0Add) != 10000 {
		t.Fatal("TotalDelta wrong")
	}
	rates := recs[0].PerNodeRates()
	wantMflops := 5000.0 / 700 / 1e6
	if diff := rates.MflopsAll - wantMflops; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("per-node Mflops = %v, want %v", rates.MflopsAll, wantMflops)
	}
	if recs[0].JobMflops() < rates.MflopsAll {
		t.Fatal("JobMflops must scale by node count")
	}
}

func TestMinRecordWallFilters(t *testing.T) {
	clock, s := newServer(t, 2, Config{MinRecordWall: 600})
	s.Submit(Spec{Nodes: 1, WallSeconds: 100}) // interactive-ish: dropped
	s.Submit(Spec{Nodes: 1, WallSeconds: 900}) // kept
	clock.Run()
	if len(s.Records()) != 1 {
		t.Fatalf("records = %d", len(s.Records()))
	}
	if s.DroppedRecords() != 1 {
		t.Fatalf("dropped = %d", s.DroppedRecords())
	}
	if s.Records()[0].WallSeconds != 900 {
		t.Fatal("wrong record kept")
	}
}

func TestBusyNodeSeconds(t *testing.T) {
	clock, s := newServer(t, 4, Config{})
	s.Submit(Spec{Nodes: 2, WallSeconds: 100})
	clock.RunUntil(simclock.Time(50))
	clock.AdvanceTo(simclock.Time(50))
	got := s.BusyNodeSeconds()
	if got != 100 { // 2 nodes x 50 s elapsed
		t.Fatalf("mid-job busy node-seconds = %v, want 100", got)
	}
	clock.Run()
	if got := s.BusyNodeSeconds(); got != 200 {
		t.Fatalf("final busy node-seconds = %v, want 200", got)
	}
}

func TestUtilizationArithmetic(t *testing.T) {
	clock, s := newServer(t, 4, Config{})
	s.Submit(Spec{Nodes: 4, WallSeconds: 64})
	clock.Run()
	clock.AdvanceTo(simclock.Time(100))
	util := s.BusyNodeSeconds() / (float64(s.NodeCount()) * 100)
	if util != 0.64 {
		t.Fatalf("utilization = %v, want 0.64", util)
	}
}

func TestSequentialJobsReuseNodesDeterministically(t *testing.T) {
	clock, s := newServer(t, 3, Config{})
	var allocs [][]int
	s.OnStart = func(j *Job) {
		var ids []int
		for _, nd := range j.Nodes() {
			ids = append(ids, nd.ID())
		}
		allocs = append(allocs, ids)
	}
	for i := 0; i < 3; i++ {
		s.Submit(Spec{Nodes: 2, WallSeconds: 10})
	}
	clock.Run()
	for _, a := range allocs {
		if len(a) != 2 || a[0] != 0 || a[1] != 1 {
			t.Fatalf("allocations not deterministic: %v", allocs)
		}
	}
}

func TestRecordsCopyIsolated(t *testing.T) {
	clock, s := newServer(t, 1, Config{})
	s.Submit(Spec{Nodes: 1, WallSeconds: 10})
	clock.Run()
	r := s.Records()
	r[0].User = "mallory"
	if s.Records()[0].User == "mallory" {
		t.Fatal("Records exposes internal slice")
	}
}

func TestEmptyRecordRates(t *testing.T) {
	var r Record
	if r.PerNodeRates().MflopsAll != 0 || r.JobMflops() != 0 {
		t.Fatal("empty record rates not zero")
	}
}

func TestNewPanicsWithoutNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(&simclock.Clock{}, nil, Config{})
}

func TestCheckpointingFreesNodesForLargeJob(t *testing.T) {
	clock, s := newServer(t, 100, Config{DrainThreshold: 64, Checkpointing: true, CheckpointSeconds: 60})
	var order []int
	s.OnStart = func(j *Job) { order = append(order, j.ID) }
	small, _ := s.Submit(Spec{Nodes: 60, WallSeconds: 5000, MemoryPerNodeBytes: 1 << 20})
	big, _ := s.Submit(Spec{Nodes: 80, WallSeconds: 100})
	// The big job preempts the small one immediately instead of draining.
	if len(order) < 2 || order[1] != big {
		t.Fatalf("big job did not start via preemption: order=%v", order)
	}
	if s.Preemptions() != 1 {
		t.Fatalf("preemptions = %d", s.Preemptions())
	}
	clock.Run()
	// Both jobs complete; the small one restarted after the big one.
	recs := s.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	for _, r := range recs {
		if r.JobID == small {
			if r.Preemptions != 1 {
				t.Fatalf("small job preemptions = %d", r.Preemptions)
			}
			// Total span: ran twice with checkpoint overhead.
			span := (r.EndAt - r.StartAt).Seconds()
			if span <= 5000+60 {
				t.Fatalf("preempted job span = %v, want > wall+overhead", span)
			}
		}
		if r.JobID == big && r.Preemptions != 0 {
			t.Fatal("big job should not be preempted")
		}
	}
}

func TestCheckpointWritesAndRestoresImages(t *testing.T) {
	clock, s := newServer(t, 4, Config{DrainThreshold: 2, Checkpointing: true})
	s.Submit(Spec{Nodes: 2, WallSeconds: 1000, MemoryPerNodeBytes: 64 << 20})
	victimNodes := make([]*node.Node, 2)
	copy(victimNodes, s.running[1].Nodes())
	s.Submit(Spec{Nodes: 4, WallSeconds: 100}) // preempts the 2-node job
	// The victim's nodes wrote their 64 MB images to disk.
	for _, nd := range victimNodes {
		_, w := nd.Disk().Traffic()
		if w != 64<<20 {
			t.Fatalf("checkpoint image write = %d bytes", w)
		}
	}
	clock.Run()
	// After restore, the image was read back on the restart nodes.
	var restored bool
	for i := 0; i < 4; i++ {
		r, _ := s.nodes[i].Disk().Traffic()
		if r == 64<<20 {
			restored = true
		}
	}
	if !restored {
		t.Fatal("no node read a restore image")
	}
	if len(s.Records()) != 2 {
		t.Fatalf("records = %d", len(s.Records()))
	}
}

func TestCheckpointSegmentsPreserveCounters(t *testing.T) {
	clock, s := newServer(t, 4, Config{DrainThreshold: 2, Checkpointing: true, MinRecordWall: 0})
	// The campaign-style hooks apply counters during each segment.
	s.OnPreempt = func(j *Job) {
		for _, nd := range j.Nodes() {
			nd.WithAccumulator(func(a *hpm.Accumulator) {
				a.AddDirect(hpm.User, hpm.EvFPU0Add, 1000)
			})
		}
	}
	s.OnEnd = func(j *Job) {
		for _, nd := range j.Nodes() {
			nd.WithAccumulator(func(a *hpm.Accumulator) {
				a.AddDirect(hpm.User, hpm.EvFPU0Add, 500)
			})
		}
	}
	victim, _ := s.Submit(Spec{Nodes: 2, WallSeconds: 1000, MemoryPerNodeBytes: 1 << 20})
	s.Submit(Spec{Nodes: 4, WallSeconds: 100})
	clock.Run()
	for _, r := range s.Records() {
		total := r.TotalDelta().Get(hpm.User, hpm.EvFPU0Add)
		switch r.JobID {
		case victim:
			// Two nodes x (1000 at checkpoint + 500 at end) = 3000.
			if total != 3000 {
				t.Fatalf("victim counters = %d, want 3000 (segments lost?)", total)
			}
		default:
			if total != 4*500 {
				t.Fatalf("big job counters = %d", total)
			}
		}
	}
}

func TestLargeJobsAreNeverVictims(t *testing.T) {
	// Two above-threshold jobs must not checkpoint each other (the
	// ping-pong hazard); the second drains behind the first instead.
	clock, s := newServer(t, 4, Config{DrainThreshold: 1, Checkpointing: true})
	var order []int
	s.OnStart = func(j *Job) { order = append(order, j.ID) }
	a, _ := s.Submit(Spec{Nodes: 2, WallSeconds: 50}) // above threshold 1
	b, _ := s.Submit(Spec{Nodes: 4, WallSeconds: 10}) // also above threshold
	if s.Preemptions() != 0 {
		t.Fatalf("preemptions = %d, want 0 (large jobs are not victims)", s.Preemptions())
	}
	clock.Run()
	if len(s.Records()) != 2 {
		t.Fatal("jobs lost")
	}
	if len(order) != 2 || order[0] != a || order[1] != b {
		t.Fatalf("order = %v", order)
	}
}

func TestPreemptionFailsWhenVictimsInsufficient(t *testing.T) {
	// A small job holds 1 node, a large job already holds 2 (not a
	// victim); a 4-node job cannot be satisfied by preemption and drains.
	clock, s := newServer(t, 4, Config{DrainThreshold: 2, Checkpointing: true})
	s.Submit(Spec{Nodes: 3, WallSeconds: 30}) // above threshold: protected
	s.Submit(Spec{Nodes: 1, WallSeconds: 500, MemoryPerNodeBytes: 1 << 20})
	s.Submit(Spec{Nodes: 4, WallSeconds: 10})
	// Preempting the 1-node job alone cannot free 4 nodes.
	if s.Preemptions() != 0 {
		t.Fatalf("futile preemption happened: %d", s.Preemptions())
	}
	clock.Run()
	if len(s.Records()) != 3 {
		t.Fatalf("records = %d", len(s.Records()))
	}
}

func TestBusyAccountingWithCheckpoint(t *testing.T) {
	clock, s := newServer(t, 4, Config{DrainThreshold: 2, Checkpointing: true, CheckpointSeconds: 40})
	s.Submit(Spec{Nodes: 2, WallSeconds: 300, MemoryPerNodeBytes: 1 << 20})
	clock.AdvanceTo(simclock.Time(100))
	s.Submit(Spec{Nodes: 4, WallSeconds: 100}) // preempts at t=100
	clock.Run()
	// Busy node-seconds: victim segment 2x100, big job 4x100, victim
	// remainder 2x(200+40).
	want := 200.0 + 400 + 2*240
	if got := s.BusyNodeSeconds(); got != want {
		t.Fatalf("busy node-seconds = %v, want %v", got, want)
	}
}
