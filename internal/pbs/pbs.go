// Package pbs reimplements the Portable Batch System as the paper's
// campaign used it: FIFO scheduling with backfill, dedicated node
// allocation (one job per node — the decision that allowed idle from
// message-passing and I/O delays), queue draining so >64-node jobs can
// eventually start, and prologue/epilogue hooks that capture each job's
// hardware counters on every allocated node (Saphir's per-job RS2HPM
// extension).
//
// PBS deliberately does NOT enforce memory limits: the paper found that
// node memory oversubscription by large jobs caused heavy paging, and
// notes that enforcing a no-paging restriction "would require considerable
// rewriting of the current batch system scheduler".
package pbs

import (
	"fmt"
	"sort"

	"repro/internal/hpm"
	"repro/internal/node"
	"repro/internal/simclock"
)

// State is a job's lifecycle position.
type State uint8

// Job states.
const (
	Queued State = iota
	Running
	Completed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	default:
		return "completed"
	}
}

// Spec describes a submitted job.
type Spec struct {
	User string
	// Nodes is the number of dedicated nodes requested.
	Nodes int
	// WallSeconds is how long the job will run once started.
	WallSeconds float64
	// Class names the workload class (kernel) the job runs; opaque to PBS.
	Class string
	// MemoryPerNodeBytes is the per-node working set. PBS records it but
	// does not enforce it — oversubscription pages, exactly as on the
	// real machine.
	MemoryPerNodeBytes uint64
	// PerfFactor is workload metadata (day-quality multiplier) carried
	// through to the executor; PBS does not interpret it. Zero means 1.
	PerfFactor float64
	// StreamID names the RNG substream driving the job's in-flight
	// randomness (performance jitter, stochastic counter rounding). The
	// workload generator assigns it so a job's counter stream depends
	// only on (campaign seed, StreamID), never on execution order; PBS
	// carries it opaquely, like PerfFactor.
	StreamID uint64
}

// Job is a tracked job.
type Job struct {
	ID   int
	Spec Spec

	State    State
	SubmitAt simclock.Time
	StartAt  simclock.Time
	EndAt    simclock.Time

	nodes []*node.Node
	// prologue counter baselines, one per allocated node.
	baseline []hpm.Counts64

	// Checkpoint/restart state (the extension the paper says the real
	// PBS lacked): remaining wall time, accumulated counter deltas from
	// completed segments, and the pending end event.
	remaining   float64
	segments    []hpm.Delta
	endEvent    *simclock.Event
	firstStart  simclock.Time
	wasStarted  bool
	Preemptions int
}

// Nodes returns the allocated nodes (nil until the job starts).
func (j *Job) Nodes() []*node.Node { return j.nodes }

// Record is the accounting record the epilogue writes.
type Record struct {
	JobID              int
	User               string
	Class              string
	NodesUsed          int
	NodeIDs            []int
	SubmitAt           simclock.Time
	StartAt            simclock.Time
	EndAt              simclock.Time
	WallSeconds        float64
	MemoryPerNodeBytes uint64
	// Preemptions counts checkpoint/restart cycles (0 without the
	// checkpointing extension).
	Preemptions int
	// PerNode holds the counter delta each allocated node accumulated
	// between prologue and epilogue.
	PerNode []hpm.Delta
}

// TotalDelta sums the per-node deltas.
func (r Record) TotalDelta() hpm.Delta {
	var d hpm.Delta
	for _, nd := range r.PerNode {
		d.Add(nd)
	}
	return d
}

// PerNodeRates reduces the job to average per-node user-mode rates.
func (r Record) PerNodeRates() hpm.Rates {
	if len(r.PerNode) == 0 || r.WallSeconds <= 0 {
		return hpm.Rates{}
	}
	total := r.TotalDelta()
	// Average across nodes: divide by scaling the interval.
	return hpm.UserRates(total, r.WallSeconds*float64(len(r.PerNode)))
}

// JobMflops reports the whole job's Mflops (all nodes together) — the
// quantity Figure 4 plots for 16-node jobs.
func (r Record) JobMflops() float64 {
	return r.PerNodeRates().MflopsAll * float64(len(r.PerNode))
}

// SystemUserFXURatio reports the job's aggregate system/user FXU ratio —
// the paging indicator of Figure 5.
func (r Record) SystemUserFXURatio() float64 {
	return hpm.SystemUserFXURatio(r.TotalDelta())
}

// Config tunes the scheduler.
type Config struct {
	// DrainThreshold: a queued job requesting more than this many nodes
	// stops backfill until it starts (the paper's "draining the queues";
	// 64 by default).
	DrainThreshold int
	// MinRecordWall drops records of jobs shorter than this many seconds
	// (the paper analyses jobs exceeding 600 s to filter interactive
	// sessions and benchmarking runs). Zero keeps everything.
	MinRecordWall float64
	// Checkpointing enables the extension the real system lacked ("System
	// administrators could not checkpoint MPI/PVM jobs and had to rely
	// upon draining the queues"): when a large job waits, running jobs
	// are checkpointed to free its nodes instead of holding the queue.
	Checkpointing bool
	// CheckpointSeconds is the save+restore overhead added to a preempted
	// job's remaining wall time (default 120 s: image the per-node memory
	// to disk and back).
	CheckpointSeconds float64
}

// Server is the batch system for one cluster.
type Server struct {
	cfg   Config
	clock *simclock.Clock
	nodes []*node.Node
	free  []int // free node indices (sorted for determinism)

	queue   []*Job
	running map[int]*Job
	nextID  int
	records []Record

	// Hooks. OnStart fires after the prologue captured baselines (also on
	// every restart after a checkpoint); OnEnd fires before the epilogue
	// reads final counters, so the campaign can flush any outstanding
	// counter extrapolation for the job. OnPreempt fires before a
	// checkpointed job's segment counters are captured.
	OnStart   func(j *Job)
	OnEnd     func(j *Job)
	OnPreempt func(j *Job)

	preemptions int

	busyNodeSeconds float64 // accumulated over completed jobs
	droppedRecords  int
}

// New builds a server over the given nodes. DrainThreshold defaults to 64.
func New(clock *simclock.Clock, nodes []*node.Node, cfg Config) *Server {
	if len(nodes) == 0 {
		panic("pbs: no nodes")
	}
	if cfg.DrainThreshold == 0 {
		cfg.DrainThreshold = 64
	}
	if cfg.CheckpointSeconds == 0 {
		cfg.CheckpointSeconds = 120
	}
	s := &Server{
		cfg:     cfg,
		clock:   clock,
		nodes:   nodes,
		running: make(map[int]*Job),
		nextID:  1,
	}
	for i := range nodes {
		s.free = append(s.free, i)
	}
	return s
}

// Submit enqueues a job and attempts to schedule. It returns the job ID or
// an error for impossible requests.
func (s *Server) Submit(spec Spec) (int, error) {
	if spec.Nodes <= 0 {
		return 0, fmt.Errorf("pbs: job requests %d nodes", spec.Nodes)
	}
	if spec.Nodes > len(s.nodes) {
		return 0, fmt.Errorf("pbs: job requests %d nodes, cluster has %d", spec.Nodes, len(s.nodes))
	}
	if spec.WallSeconds <= 0 {
		return 0, fmt.Errorf("pbs: job has non-positive wall time %v", spec.WallSeconds)
	}
	j := &Job{ID: s.nextID, Spec: spec, State: Queued, SubmitAt: s.clock.Now()}
	s.nextID++
	s.queue = append(s.queue, j)
	s.schedule()
	return j.ID, nil
}

// schedule starts every queued job that fits, in FIFO order with backfill,
// draining for large jobs.
func (s *Server) schedule() {
	i := 0
	for i < len(s.queue) {
		j := s.queue[i]
		if len(s.free) >= j.Spec.Nodes {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.start(j)
			continue // same index now holds the next job
		}
		if j.Spec.Nodes > s.cfg.DrainThreshold {
			if s.cfg.Checkpointing && s.preemptFor(j) {
				// checkpoint() prepended the victims, shifting indices;
				// locate j, start it on the freed nodes before anything
				// else (in particular before its own victims, which sit
				// at the queue head and would otherwise reclaim the
				// nodes and livelock), then rescan.
				for k, q := range s.queue {
					if q == j {
						s.queue = append(s.queue[:k], s.queue[k+1:]...)
						break
					}
				}
				s.start(j)
				i = 0
				continue
			}
			// Drain: hold all later jobs so the big one can accumulate
			// free nodes.
			return
		}
		i++ // backfill past the small job that does not fit
	}
}

// preemptFor checkpoints running jobs (most recently started first, so the
// longest-running work survives) until j fits. It reports whether enough
// nodes were freed.
func (s *Server) preemptFor(j *Job) bool {
	candidates := make([]*Job, 0, len(s.running))
	for _, r := range s.running {
		// Large jobs are never victims: preempting one large job for
		// another would ping-pong forever, and the point of the extension
		// is to clear *small* jobs out of a large job's way.
		if r.Spec.Nodes > s.cfg.DrainThreshold {
			continue
		}
		candidates = append(candidates, r)
	}
	// Most recent starters first; ties by descending ID for determinism.
	sort.Slice(candidates, func(a, b int) bool {
		if candidates[a].StartAt != candidates[b].StartAt {
			return candidates[a].StartAt > candidates[b].StartAt
		}
		return candidates[a].ID > candidates[b].ID
	})
	need := j.Spec.Nodes - len(s.free)
	var victims []*Job
	for _, v := range candidates {
		if need <= 0 {
			break
		}
		victims = append(victims, v)
		need -= len(v.nodes)
	}
	if need > 0 {
		return false // even preempting everything would not fit
	}
	for _, v := range victims {
		s.checkpoint(v)
	}
	return len(s.free) >= j.Spec.Nodes
}

// checkpoint suspends a running job: counters are captured into a segment,
// the memory image is written to each node's disk (DMA-visible), and the
// job returns to the head of the queue with its remaining wall time plus
// the save/restore overhead.
func (s *Server) checkpoint(j *Job) {
	if j.State != Running {
		return
	}
	if s.OnPreempt != nil {
		s.OnPreempt(j)
	}
	j.endEvent.Cancel()
	j.remaining = (j.EndAt - s.clock.Now()).Seconds() + s.cfg.CheckpointSeconds
	for i, nd := range j.nodes {
		j.segments = append(j.segments, hpm.Sub64(j.baseline[i], nd.Counters()))
		// Image the job's memory to local disk: memory-to-device DMA.
		nd.DiskIO(0, j.Spec.MemoryPerNodeBytes)
	}
	s.busyNodeSeconds += float64(len(j.nodes)) * (s.clock.Now() - j.StartAt).Seconds()
	s.freeNodes(j)
	j.nodes = nil
	j.baseline = nil
	j.State = Queued
	j.Preemptions++
	s.preemptions++
	delete(s.running, j.ID)
	// Back to the head: a checkpointed job resumes as soon as room exists.
	s.queue = append([]*Job{j}, s.queue...)
}

// Preemptions reports total checkpoint events.
func (s *Server) Preemptions() int { return s.preemptions }

// freeNodes returns a job's nodes to the free pool (sorted).
func (s *Server) freeNodes(j *Job) {
	for _, nd := range j.nodes {
		for i := range s.nodes {
			if s.nodes[i] == nd {
				s.free = append(s.free, i)
				break
			}
		}
	}
	sort.Ints(s.free)
}

// start allocates nodes, runs the prologue, and schedules completion. A
// checkpointed job restarts here with its remaining wall time: the restore
// reads the memory image back from disk.
func (s *Server) start(j *Job) {
	n := j.Spec.Nodes
	alloc := s.free[:n]
	s.free = append([]int(nil), s.free[n:]...)
	j.nodes = make([]*node.Node, n)
	j.baseline = make([]hpm.Counts64, n)
	restore := j.wasStarted
	for i, idx := range alloc {
		j.nodes[i] = s.nodes[idx]
		if restore {
			// Restore: read the checkpoint image (device-to-memory DMA).
			s.nodes[idx].DiskIO(j.Spec.MemoryPerNodeBytes, 0)
		}
		// Prologue: capture the counter baseline on each node.
		j.baseline[i] = s.nodes[idx].Counters()
	}
	wall := j.Spec.WallSeconds
	if restore {
		wall = j.remaining
	} else {
		j.firstStart = s.clock.Now()
	}
	j.wasStarted = true
	j.State = Running
	j.StartAt = s.clock.Now()
	j.EndAt = j.StartAt + simclock.Time(wall)
	s.running[j.ID] = j

	if s.OnStart != nil {
		s.OnStart(j)
	}
	j.endEvent = s.clock.At(j.EndAt, func() { s.finish(j) })
}

// finish runs the epilogue, frees nodes, and reschedules the queue.
func (s *Server) finish(j *Job) {
	if s.OnEnd != nil {
		s.OnEnd(j)
	}
	startAt := j.StartAt
	if j.Preemptions > 0 {
		startAt = j.firstStart
	}
	rec := Record{
		JobID:              j.ID,
		User:               j.Spec.User,
		Class:              j.Spec.Class,
		NodesUsed:          len(j.nodes),
		SubmitAt:           j.SubmitAt,
		StartAt:            startAt,
		EndAt:              s.clock.Now(),
		WallSeconds:        j.Spec.WallSeconds,
		MemoryPerNodeBytes: j.Spec.MemoryPerNodeBytes,
		Preemptions:        j.Preemptions,
	}
	for i, nd := range j.nodes {
		rec.NodeIDs = append(rec.NodeIDs, nd.ID())
		rec.PerNode = append(rec.PerNode, hpm.Sub64(j.baseline[i], nd.Counters()))
	}
	// Fold in counter segments captured at checkpoints. Segment deltas are
	// merged pairwise into the final per-node deltas (node sets across
	// segments may differ; the aggregate statistics the records feed use
	// totals, which merging preserves).
	for i, seg := range j.segments {
		if i < len(rec.PerNode) {
			rec.PerNode[i].Add(seg)
		} else {
			rec.PerNode = append(rec.PerNode, seg)
		}
	}
	j.State = Completed
	delete(s.running, j.ID)
	s.busyNodeSeconds += float64(len(j.nodes)) * (s.clock.Now() - j.StartAt).Seconds()
	s.freeNodes(j)

	if rec.WallSeconds >= s.cfg.MinRecordWall {
		s.records = append(s.records, rec)
	} else {
		s.droppedRecords++
	}
	s.schedule()
}

// Records returns the accounting records written so far (jobs shorter than
// MinRecordWall are excluded, as in the paper's batch analysis).
func (s *Server) Records() []Record {
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// DroppedRecords reports jobs excluded by the MinRecordWall filter.
func (s *Server) DroppedRecords() int { return s.droppedRecords }

// QueueLength reports jobs waiting.
func (s *Server) QueueLength() int { return len(s.queue) }

// RunningCount reports jobs executing.
func (s *Server) RunningCount() int { return len(s.running) }

// FreeNodes reports unallocated nodes.
func (s *Server) FreeNodes() int { return len(s.free) }

// NodeFree reports whether the node at cluster index idx is currently
// unallocated. The fault layer consults it before applying a counter
// reset: resetting under a running job would corrupt its epilogue
// baseline.
func (s *Server) NodeFree(idx int) bool {
	for _, f := range s.free {
		if f == idx {
			return true
		}
	}
	return false
}

// BusyNodes reports allocated nodes.
func (s *Server) BusyNodes() int { return len(s.nodes) - len(s.free) }

// BusyNodeSeconds reports accumulated node-busy time: completed jobs plus
// the elapsed portion of running ones. Utilisation over a window is this
// quantity differenced and divided by nodes*seconds.
func (s *Server) BusyNodeSeconds() float64 {
	total := s.busyNodeSeconds
	now := s.clock.Now()
	// Sum in job-ID order: float addition is not associative, and map
	// iteration order would make campaign results non-deterministic.
	ids := make([]int, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		j := s.running[id]
		total += float64(len(j.nodes)) * (now - j.StartAt).Seconds()
	}
	return total
}

// NodeCount reports the cluster size.
func (s *Server) NodeCount() int { return len(s.nodes) }
