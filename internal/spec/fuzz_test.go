package spec

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// FuzzSpecDecode throws arbitrary bytes at the strict decoder and holds
// the pipeline's invariants on whatever gets through:
//
//   - Decode never panics; it either returns a spec or an error;
//   - Validate never panics and classifies every failure as a
//     *ValidationError (field-path errors, not raw strings);
//   - a spec that validates must resolve without error — validation is
//     supposed to be the complete gate for the resolver's references;
//   - a decoded spec survives an encode/decode round-trip bit-for-bit,
//     so canonicalizing a preset on disk never changes its meaning.
//
// The committed corpus under testdata/fuzz/FuzzSpecDecode seeds the
// interesting shapes; `make fuzz-smoke` gives it a short adversarial
// run on every CI build.
func FuzzSpecDecode(f *testing.F) {
	for _, name := range PresetNames() {
		data, err := presetFS.ReadFile("presets/" + name + ".json")
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version": 1`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1, 2, 3]`))

	std := syntheticStandard()
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeBytes(data)
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}
		if err := s.Validate(); err != nil {
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("Validate returned %T (%v), want *ValidationError", err, err)
			}
			if len(ve.Errors) == 0 {
				t.Fatal("ValidationError with no field errors")
			}
			return
		}
		if _, _, err := Resolve(s, std); err != nil {
			t.Fatalf("validated spec failed to resolve: %v", err)
		}
		buf, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("re-encode of decoded spec failed: %v", err)
		}
		back, err := DecodeBytes(buf)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v\nencoded: %s", err, buf)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("spec does not survive encode/decode round-trip:\n in  %+v\n out %+v", s, back)
		}
	})
}
