// Package spec is the declarative workload-specification layer: the
// scenario a campaign runs — named client classes with rate fractions,
// job-size and runtime distributions, kernel-mix profiles, arrival
// processes, cohort lifecycle patterns and an optional fault block — as a
// JSON document instead of Go code. The paper characterized exactly one
// workload, the 1996 NAS SP2 production mix; specs make that mix one
// preset among many (see presets/), so every later scaling or policy
// experiment is a data file, not a code edit.
//
// The pipeline is Load -> Validate -> Resolve: Load decodes strictly
// (unknown fields are errors), Validate reports every problem with a
// field path (clients[2].arrival.cv: must be > 0), and Resolve compiles
// the spec against a measured profile.Standard into the
// (workload.Config, workload.Mix) pair the campaign engine runs.
// Resolution is a pure function of its inputs — no clocks, no maps
// ranged, no ambient state — so a spec names a reproducible scenario:
// same spec, same seed, same result, at any worker count.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Version is the schema version this package reads and writes.
const Version = 1

// Spec is one declarative workload scenario.
type Spec struct {
	// Version pins the schema; it must equal Version.
	Version int `json:"version"`
	// Name labels the scenario; campaign output carries it so results
	// from different specs cannot be confused.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Campaign sets the window, the cluster and the demand model.
	Campaign Campaign `json:"campaign"`
	// JobSize is the campaign-wide node-count distribution; omitted, it
	// defaults to the paper's Figure 2 marginal.
	JobSize *SizeDist `json:"job_size,omitempty"`
	// Runtime is the campaign-wide wall-time distribution; omitted, it
	// defaults to the paper's lognormal.
	Runtime *Dist `json:"runtime,omitempty"`
	// Quality is the day-level tuning-quality distribution; omitted, it
	// defaults to the paper's.
	Quality *Dist `json:"quality,omitempty"`
	// Clients is the named traffic population; at least one entry, and
	// exactly one marked remainder.
	Clients []Client `json:"clients"`
	// LargeJobs optionally reroutes jobs above a node-count threshold.
	LargeJobs *LargeJobs `json:"large_jobs,omitempty"`
	// Faults optionally threads the collection-path chaos layer through
	// the campaign (see internal/faults). An all-zero block is treated
	// as absent.
	Faults *Faults `json:"faults,omitempty"`
	// Fleet optionally scales the scenario out to a multi-cluster fleet
	// (internal/fleet): Clusters copies of the campaign, each seeded from
	// its own substream, merged through the canonical-order fleet
	// reduction. Absent means the classic single-cluster campaign.
	Fleet *FleetBlock `json:"fleet,omitempty"`
}

// FleetBlock declares a multi-cluster fleet built from this scenario.
type FleetBlock struct {
	// Clusters is the fleet size; every cluster starts as a copy of the
	// campaign block.
	Clusters int `json:"clusters"`
	// Overrides specialize individual clusters — a fleet is rarely
	// perfectly homogeneous. Zero-valued fields inherit the campaign
	// block.
	Overrides []ClusterOverride `json:"overrides,omitempty"`
}

// ClusterOverride respecifies parts of one cluster's campaign. Only the
// knobs that vary across real fleet members are overridable; the mix
// (the user population) is shared fleet-wide by construction.
type ClusterOverride struct {
	// Cluster indexes the fleet member, 0-based.
	Cluster int `json:"cluster"`
	// Days, when > 0, replaces the measurement-window length.
	Days int `json:"days,omitempty"`
	// Nodes, when > 0, replaces the cluster size.
	Nodes int `json:"nodes,omitempty"`
	// MeanUtil / UtilSigma, when > 0, reshape the demand distribution.
	MeanUtil  float64 `json:"mean_util,omitempty"`
	UtilSigma float64 `json:"util_sigma,omitempty"`
	// PagingDayProb, when >= 0, replaces the oversubscribed-day
	// probability; negative (the zero value as far as inheritance goes)
	// inherits. Use 0 to turn paging days off for a cluster.
	PagingDayProb *float64 `json:"paging_day_prob,omitempty"`
}

// Campaign is the window, cluster and demand model of a scenario.
type Campaign struct {
	// Days is the measurement-window length (270 for the paper).
	Days int `json:"days"`
	// Nodes is the cluster size (144 for the paper).
	Nodes int `json:"nodes"`
	// SamplePeriodSeconds is the counter sampling cadence; 0 defaults to
	// the 15-minute cron period (900).
	SamplePeriodSeconds float64 `json:"sample_period_seconds,omitempty"`
	// MeanUtil and UtilSigma shape the daily demand distribution.
	MeanUtil  float64 `json:"mean_util"`
	UtilSigma float64 `json:"util_sigma"`
	// PagingDayProb is the probability a day's mix leans oversubscribed.
	PagingDayProb float64 `json:"paging_day_prob"`
	// MinRecordWallSeconds filters batch records; 0 defaults to the
	// paper's 600 s.
	MinRecordWallSeconds float64 `json:"min_record_wall_seconds,omitempty"`
	// WeekendFactor multiplies demand on days 5 and 6 of each week;
	// 0 defaults to 1 (no dip).
	WeekendFactor float64 `json:"weekend_factor,omitempty"`
	// Users is the synthetic submitting-user population; 0 defaults to
	// the paper's 40.
	Users int `json:"users,omitempty"`
}

// Dist is a scalar distribution. Exactly the parameters its family needs
// must be present: lognormal takes mu/sigma, normal takes mean/stddev,
// exponential takes mean, uniform takes lo/hi, constant takes value.
// Min/max clamp the draw and are optional for every family.
type Dist struct {
	Dist   string   `json:"dist"`
	Mu     *float64 `json:"mu,omitempty"`
	Sigma  *float64 `json:"sigma,omitempty"`
	Mean   *float64 `json:"mean,omitempty"`
	Stddev *float64 `json:"stddev,omitempty"`
	Lo     *float64 `json:"lo,omitempty"`
	Hi     *float64 `json:"hi,omitempty"`
	Value  *float64 `json:"value,omitempty"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
}

// SizeDist is a discrete node-count distribution: nodes[i] is requested
// with probability weights[i]/sum(weights).
type SizeDist struct {
	Nodes   []int     `json:"nodes"`
	Weights []float64 `json:"weights"`
}

// Client is one named traffic source.
type Client struct {
	Name string `json:"name"`
	// Share is the client's rate fraction of the job stream; required
	// unless the client is the remainder. Shares may sum to less than 1
	// only if a remainder client absorbs the rest.
	Share *float64 `json:"share,omitempty"`
	// PagingDayShare replaces Share on memory-oversubscribed days.
	PagingDayShare *float64 `json:"paging_day_share,omitempty"`
	// Remainder marks the client that absorbs the unassigned share;
	// exactly one client must set it.
	Remainder bool `json:"remainder,omitempty"`
	// Profile is the class's counter signature recipe.
	Profile Profile `json:"profile"`
	// Arrival shapes within-day placement; omitted = poisson.
	Arrival *Arrival `json:"arrival,omitempty"`
	// Lifecycle is the cohort's population dynamics; omitted = steady.
	Lifecycle *Lifecycle `json:"lifecycle,omitempty"`
	// JobSize / Runtime override the campaign-wide distributions for
	// this client's jobs.
	JobSize *SizeDist `json:"job_size,omitempty"`
	Runtime *Dist     `json:"runtime,omitempty"`
}

// Profile is the recipe for a class's measured counter signature:
// either one kernel or a weighted kernel mix, duty-cycled against the
// message-passing signature.
type Profile struct {
	// Kernel names a registered kernel (cfd, bt, matmul, sequential,
	// comm, paging); exactly one of Kernel and KernelMix must be set.
	Kernel string `json:"kernel,omitempty"`
	// KernelMix blends several kernels by weight into the crunch
	// signature.
	KernelMix []KernelWeight `json:"kernel_mix,omitempty"`
	// Scale multiplies the crunch signature (0 defaults to 1) — how
	// "debug grade" variants of a kernel are declared.
	Scale float64 `json:"scale,omitempty"`
	// ComputeDuty is the fraction of wall time spent crunching.
	ComputeDuty float64 `json:"compute_duty"`
	// CommActive is the fraction of non-compute time in the
	// message-passing software path.
	CommActive float64 `json:"comm_active"`
	// CommKernel names the communication signature kernel; empty
	// defaults to "comm".
	CommKernel string `json:"comm_kernel,omitempty"`
	// PerfSigma is the lognormal sigma of per-job performance jitter.
	PerfSigma float64 `json:"perf_sigma"`
	// MemoryPerNodeBytes is the per-node working set.
	MemoryPerNodeBytes uint64 `json:"memory_per_node_bytes"`
	// MsgBytesPerFlop scales message volume with computation.
	MsgBytesPerFlop float64 `json:"msg_bytes_per_flop"`
	// DiskOutBytesPerSec is steady result-output traffic.
	DiskOutBytesPerSec float64 `json:"disk_out_bytes_per_sec"`
}

// KernelWeight is one component of a kernel mix.
type KernelWeight struct {
	Kernel string  `json:"kernel"`
	Weight float64 `json:"weight"`
}

// Arrival selects a client's within-day placement process.
type Arrival struct {
	// Process is "poisson", "gamma" (bursty) or "weibull".
	Process string `json:"process"`
	// CV is the gamma burstiness (required for gamma).
	CV float64 `json:"cv,omitempty"`
	// Shape is the Weibull shape (required for weibull).
	Shape float64 `json:"shape,omitempty"`
}

// Lifecycle selects a client cohort's population dynamics.
type Lifecycle struct {
	// Pattern is "steady", "diurnal", "spike" or "drain".
	Pattern string `json:"pattern"`
	// StartDay/Days bound the spike or drain window.
	StartDay int `json:"start_day,omitempty"`
	Days     int `json:"days,omitempty"`
	// Factor is the spike share multiplier.
	Factor float64 `json:"factor,omitempty"`
	// Amplitude/Peak shape the diurnal concentration.
	Amplitude float64 `json:"amplitude,omitempty"`
	Peak      float64 `json:"peak,omitempty"`
}

// LargeJobs reroutes jobs above ThresholdNodes: overrides are tried in
// order, each firing with its probability; Fallback takes the rest.
type LargeJobs struct {
	ThresholdNodes int        `json:"threshold_nodes"`
	Overrides      []Override `json:"overrides,omitempty"`
	Fallback       string     `json:"fallback"`
}

// Override is one step of the large-job policy.
type Override struct {
	Client string  `json:"client"`
	Prob   float64 `json:"prob"`
}

// Faults mirrors faults.Config field for field (see internal/faults for
// the semantics of each rate).
type Faults struct {
	CrashProbPerNodeDay      float64 `json:"crash_prob_per_node_day,omitempty"`
	MeanOutageTicks          float64 `json:"mean_outage_ticks,omitempty"`
	DropProbPerSample        float64 `json:"drop_prob_per_sample,omitempty"`
	DupProbPerSample         float64 `json:"dup_prob_per_sample,omitempty"`
	RestartProbPerNodeDay    float64 `json:"restart_prob_per_node_day,omitempty"`
	EpilogueDelayProb        float64 `json:"epilogue_delay_prob,omitempty"`
	EpilogueDelayMeanSeconds float64 `json:"epilogue_delay_mean_seconds,omitempty"`
}

// Decode reads one spec from r. Decoding is strict: unknown fields,
// malformed JSON and trailing garbage are all errors, so a typo'd knob
// can never silently fall back to a default.
func Decode(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: decode: %w", err)
	}
	// Reject trailing content after the document: a second JSON value in
	// the same file is almost certainly a mangled edit.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("spec: trailing data after spec document")
	}
	return &s, nil
}

// DecodeBytes decodes one spec from an in-memory document.
func DecodeBytes(data []byte) (*Spec, error) {
	return Decode(bytes.NewReader(data))
}

// LoadFile reads, decodes and validates the spec at path.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := DecodeBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Encode writes the spec as indented JSON — the canonical on-disk form
// the presets are committed in.
func (s *Spec) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
