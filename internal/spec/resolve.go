package spec

// Resolution: compiling a declarative spec into the concrete
// (workload.Config, workload.Mix) pair the campaign engine runs. The
// measured kernel profiles come in as a profile.Standard, so resolution
// itself simulates nothing — it is pure wiring, and is registered as a
// //hpmlint:pure root: the same spec and the same profile set must
// resolve identically on every worker of a parallel campaign.
//
// Resolve assumes a validated spec (LoadFile, Load and Preset all
// validate before returning); it re-checks only the cross-references it
// must dereference — kernel and client names — and reports those as
// errors rather than panicking, so a caller that skipped validation
// still fails cleanly.

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/profile"
	"repro/internal/workload"
)

// Resolve compiles the spec against a measured profile set. The returned
// Config carries the spec's campaign block with Seed and Workers left
// zero — they are execution parameters, owned by the caller, not the
// scenario — and Scenario set to the spec name. The returned Mix is
// ready for workload.NewGenerator.
//
//hpmlint:pure a spec must resolve identically on every worker of a campaign
func Resolve(s *Spec, std profile.Standard) (workload.Config, workload.Mix, error) {
	cfg := workload.Config{
		Days:                s.Campaign.Days,
		Nodes:               s.Campaign.Nodes,
		Scenario:            s.Name,
		SamplePeriodSeconds: s.Campaign.SamplePeriodSeconds,
		MeanUtil:            s.Campaign.MeanUtil,
		UtilSigma:           s.Campaign.UtilSigma,
		PagingDayProb:       s.Campaign.PagingDayProb,
		MinRecordWall:       s.Campaign.MinRecordWallSeconds,
	}
	if cfg.SamplePeriodSeconds <= 0 {
		cfg.SamplePeriodSeconds = 900
	}
	if cfg.MinRecordWall <= 0 {
		cfg.MinRecordWall = 600
	}

	mix := workload.Mix{
		JobSize:       workload.PaperJobSize(),
		Runtime:       workload.PaperRuntime(),
		Quality:       workload.PaperQuality(),
		WeekendFactor: s.Campaign.WeekendFactor,
		Users:         s.Campaign.Users,
	}
	if mix.WeekendFactor <= 0 {
		mix.WeekendFactor = 1
	}
	if mix.Users <= 0 {
		mix.Users = workload.PaperUsers
	}
	if s.JobSize != nil {
		mix.JobSize = resolveSizeDist(s.JobSize)
	}
	if s.Runtime != nil {
		d, err := resolveDist(s.Runtime)
		if err != nil {
			return cfg, mix, fmt.Errorf("spec %s: runtime: %w", s.Name, err)
		}
		mix.Runtime = d
	}
	if s.Quality != nil {
		d, err := resolveDist(s.Quality)
		if err != nil {
			return cfg, mix, fmt.Errorf("spec %s: quality: %w", s.Name, err)
		}
		mix.Quality = d
	}

	mix.Clients = make([]workload.Client, len(s.Clients))
	for i := range s.Clients {
		cl, err := resolveClient(&s.Clients[i], std)
		if err != nil {
			return cfg, mix, fmt.Errorf("spec %s: clients[%d]: %w", s.Name, i, err)
		}
		mix.Clients[i] = cl
	}

	if lj := s.LargeJobs; lj != nil && lj.ThresholdNodes > 0 {
		pol := workload.LargeJobPolicy{ThresholdNodes: lj.ThresholdNodes}
		for _, ov := range lj.Overrides {
			ci, err := clientIndex(s.Clients, ov.Client)
			if err != nil {
				return cfg, mix, fmt.Errorf("spec %s: large_jobs: %w", s.Name, err)
			}
			pol.Overrides = append(pol.Overrides, workload.LargeJobOverride{Client: ci, Prob: ov.Prob})
		}
		fb, err := clientIndex(s.Clients, lj.Fallback)
		if err != nil {
			return cfg, mix, fmt.Errorf("spec %s: large_jobs: %w", s.Name, err)
		}
		pol.Fallback = fb
		mix.LargeJobs = pol
	}

	if f := s.Faults; f != nil {
		fc := faults.Config{
			CrashProbPerNodeDay:      f.CrashProbPerNodeDay,
			MeanOutageTicks:          f.MeanOutageTicks,
			DropProbPerSample:        f.DropProbPerSample,
			DupProbPerSample:         f.DupProbPerSample,
			RestartProbPerNodeDay:    f.RestartProbPerNodeDay,
			EpilogueDelayProb:        f.EpilogueDelayProb,
			EpilogueDelayMeanSeconds: f.EpilogueDelayMeanSeconds,
		}
		// An all-zero block resolves to no fault layer at all, keeping the
		// reduction bit-identical to a spec without the block.
		if fc.Enabled() {
			cfg.Faults = &fc
		}
	}
	return cfg, mix, nil
}

// resolveClient compiles one client entry into a workload.Client.
func resolveClient(c *Client, std profile.Standard) (workload.Client, error) {
	class, err := resolveClass(c, std)
	if err != nil {
		return workload.Client{}, err
	}
	out := workload.Client{
		Class:     class,
		Share:     fval(c.Share),
		Remainder: c.Remainder,
		Arrival:   resolveArrival(c.Arrival),
		Lifecycle: resolveLifecycle(c.Lifecycle),
	}
	// Paging-day share defaults to the everyday share: only classes whose
	// prevalence actually shifts on oversubscribed days declare it.
	out.PagingDayShare = out.Share
	if c.PagingDayShare != nil {
		out.PagingDayShare = *c.PagingDayShare
	}
	if c.JobSize != nil {
		sd := resolveSizeDist(c.JobSize)
		out.JobSize = &sd
	}
	if c.Runtime != nil {
		d, err := resolveDist(c.Runtime)
		if err != nil {
			return workload.Client{}, fmt.Errorf("runtime: %w", err)
		}
		out.Runtime = &d
	}
	return out, nil
}

// resolveClass builds the client's counter-signature class from its
// profile recipe: one kernel or a normalized weighted kernel sum,
// scaled, with the communication signature alongside.
func resolveClass(c *Client, std profile.Standard) (workload.Class, error) {
	p := &c.Profile
	var crunch profile.Profile
	if p.Kernel != "" {
		k, err := kernelProfile(std, p.Kernel)
		if err != nil {
			return workload.Class{}, err
		}
		crunch = k
	} else {
		wsum := 0.0
		for _, kw := range p.KernelMix {
			wsum += kw.Weight
		}
		if wsum <= 0 {
			return workload.Class{}, fmt.Errorf("profile: kernel_mix weights must sum to > 0")
		}
		for i, kw := range p.KernelMix {
			k, err := kernelProfile(std, kw.Kernel)
			if err != nil {
				return workload.Class{}, err
			}
			k = k.Scale(kw.Weight / wsum)
			if i == 0 {
				crunch = k
			} else {
				crunch = crunch.Plus(k)
			}
		}
	}
	scale := p.Scale
	if scale <= 0 {
		scale = 1
	}
	// Scale unconditionally: multiplying by exactly 1.0 is a bitwise
	// identity on every rate, so the default costs nothing and the code
	// avoids a float equality test.
	crunch = crunch.Scale(scale)

	ck := p.CommKernel
	if ck == "" {
		ck = "comm"
	}
	comm, err := kernelProfile(std, ck)
	if err != nil {
		return workload.Class{}, err
	}
	return workload.Class{
		Name:               c.Name,
		Crunch:             crunch,
		ComputeDuty:        p.ComputeDuty,
		CommActive:         p.CommActive,
		Comm:               comm,
		PerfSigma:          p.PerfSigma,
		MemoryPerNode:      p.MemoryPerNodeBytes,
		MsgBytesPerFlop:    p.MsgBytesPerFlop,
		DiskOutBytesPerSec: p.DiskOutBytesPerSec,
	}, nil
}

// kernelProfile maps a kernel name to its measured profile. The cases
// mirror the knownKernels registry in validate.go.
func kernelProfile(std profile.Standard, name string) (profile.Profile, error) {
	switch name {
	case "cfd":
		return std.CFD, nil
	case "bt":
		return std.BT, nil
	case "matmul":
		return std.MatMul, nil
	case "sequential":
		return std.Sequential, nil
	case "comm":
		return std.Comm, nil
	case "paging":
		return std.Paging, nil
	}
	return profile.Profile{}, fmt.Errorf("unknown kernel %q", name)
}

// resolveDist maps a distribution spec to the workload sampler form.
func resolveDist(d *Dist) (workload.Dist, error) {
	out := workload.Dist{Min: fval(d.Min), Max: fval(d.Max)}
	switch d.Dist {
	case "lognormal":
		out.Kind, out.A, out.B = workload.DistLogNormal, fval(d.Mu), fval(d.Sigma)
	case "normal":
		out.Kind, out.A, out.B = workload.DistNormal, fval(d.Mean), fval(d.Stddev)
	case "exponential":
		out.Kind, out.A = workload.DistExponential, fval(d.Mean)
	case "uniform":
		out.Kind, out.A, out.B = workload.DistUniform, fval(d.Lo), fval(d.Hi)
	case "constant":
		out.Kind, out.A = workload.DistConstant, fval(d.Value)
	default:
		return out, fmt.Errorf("unknown dist %q", d.Dist)
	}
	return out, nil
}

func resolveSizeDist(sd *SizeDist) workload.SizeDist {
	out := workload.SizeDist{
		Counts:  make([]int, len(sd.Nodes)),
		Weights: make([]float64, len(sd.Weights)),
	}
	copy(out.Counts, sd.Nodes)
	copy(out.Weights, sd.Weights)
	return out
}

func resolveArrival(a *Arrival) workload.Arrival {
	if a == nil {
		return workload.Arrival{}
	}
	switch a.Process {
	case "gamma":
		return workload.Arrival{Process: workload.ArrivalGammaBurst, CV: a.CV}
	case "weibull":
		return workload.Arrival{Process: workload.ArrivalWeibull, Shape: a.Shape}
	default:
		return workload.Arrival{} // poisson
	}
}

func resolveLifecycle(l *Lifecycle) workload.Lifecycle {
	if l == nil {
		return workload.Lifecycle{}
	}
	switch l.Pattern {
	case "diurnal":
		return workload.Lifecycle{Pattern: workload.LifeDiurnal, Amplitude: l.Amplitude, Peak: l.Peak}
	case "spike":
		return workload.Lifecycle{Pattern: workload.LifeSpike, StartDay: l.StartDay, Days: l.Days, Factor: l.Factor}
	case "drain":
		return workload.Lifecycle{Pattern: workload.LifeDrain, StartDay: l.StartDay, Days: l.Days}
	default:
		return workload.Lifecycle{} // steady
	}
}

// clientIndex resolves a client name to its Mix index — a linear walk,
// not a map, so resolution stays provably order-deterministic.
func clientIndex(clients []Client, name string) (int, error) {
	for i := range clients {
		if clients[i].Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("unknown client %q", name)
}

// fval dereferences an optional number, zero when absent.
func fval(p *float64) float64 {
	if p == nil {
		return 0
	}
	return *p
}
