package spec

// Committed presets: the named scenarios shipped with the tree, embedded
// at build time so `spsim -spec bursty` works from any directory with no
// data files installed. paper-1996 is the calibration anchor — it must
// resolve to exactly the built-in DefaultMix/DefaultConfig and therefore
// reproduce the golden campaign hash bit-for-bit (resolve_test.go and
// presets_test.go pin both); the others are the scenario axes the paper
// could not explore on the production machine.

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed presets/*.json
var presetFS embed.FS

// PresetNames returns the committed preset names, sorted.
func PresetNames() []string {
	entries, err := presetFS.ReadDir("presets")
	if err != nil {
		panic("spec: embedded presets unreadable: " + err.Error())
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// Preset loads and validates the named committed preset.
func Preset(name string) (*Spec, error) {
	data, err := presetFS.ReadFile("presets/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("spec: unknown preset %q (have: %s)", name, strings.Join(PresetNames(), ", "))
	}
	s, err := DecodeBytes(data)
	if err != nil {
		return nil, fmt.Errorf("preset %s: %w", name, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("preset %s: %w", name, err)
	}
	return s, nil
}

// Load resolves a spec reference: a bare name loads the committed preset
// of that name, anything containing a path separator or extension is
// read as a file. This is the lookup behind `spsim -spec <ref>`.
func Load(ref string) (*Spec, error) {
	if strings.ContainsAny(ref, "./\\") {
		return LoadFile(ref)
	}
	return Preset(ref)
}
