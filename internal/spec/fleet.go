package spec

// Fleet resolution: expanding a spec's fleet block into one campaign
// config per cluster. Like Resolve, this is pure wiring — every cluster
// starts as the resolved campaign block, overrides specialize
// individual members, and Seed/Workers stay zero for the caller
// (internal/core derives per-cluster seeds with workload.ClusterSeed).

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/workload"
)

// ResolveFleet compiles the spec into the per-cluster campaign configs of
// its fleet plus the fleet-wide Mix. A spec without a fleet block is a
// fleet of one — so callers can treat every scenario uniformly.
//
//hpmlint:pure a spec must resolve identically on every shard of a fleet
func ResolveFleet(s *Spec, std profile.Standard) ([]workload.Config, workload.Mix, error) {
	base, mix, err := Resolve(s, std)
	if err != nil {
		return nil, mix, err
	}
	n := 1
	if s.Fleet != nil {
		n = s.Fleet.Clusters
	}
	if n < 1 {
		return nil, mix, fmt.Errorf("spec %s: fleet.clusters must be >= 1 (got %d)", s.Name, n)
	}
	cfgs := make([]workload.Config, n)
	for i := range cfgs {
		cfgs[i] = base
	}
	if s.Fleet != nil {
		for _, ov := range s.Fleet.Overrides {
			if ov.Cluster < 0 || ov.Cluster >= n {
				return nil, mix, fmt.Errorf("spec %s: fleet override for cluster %d outside [0, %d)", s.Name, ov.Cluster, n)
			}
			c := &cfgs[ov.Cluster]
			if ov.Days > 0 {
				c.Days = ov.Days
			}
			if ov.Nodes > 0 {
				c.Nodes = ov.Nodes
			}
			if ov.MeanUtil > 0 {
				c.MeanUtil = ov.MeanUtil
			}
			if ov.UtilSigma > 0 {
				c.UtilSigma = ov.UtilSigma
			}
			if ov.PagingDayProb != nil {
				c.PagingDayProb = *ov.PagingDayProb
			}
		}
	}
	return cfgs, mix, nil
}
