package spec

// The fleet block: validation field paths and the expansion into
// per-cluster campaign configs.

import (
	"testing"
)

func TestValidateFleetBlock(t *testing.T) {
	bad := 1.5
	s := minimalSpec()
	s.Fleet = &FleetBlock{
		Clusters: 0,
		Overrides: []ClusterOverride{
			{Cluster: 0, Days: -1},
			{Cluster: -2},
			{Cluster: 0, PagingDayProb: &bad},
		},
	}
	ve := mustInvalid(t, s)
	for _, want := range []struct{ path, msg string }{
		{"fleet.clusters", "must be >= 1"},
		{"fleet.overrides[0].days", "must be >= 0"},
		{"fleet.overrides[1].cluster", "must be in [0, 0)"},
		{"fleet.overrides[2].cluster", "duplicate override"},
		{"fleet.overrides[2].paging_day_prob", "must be in [0, 1]"},
	} {
		if !hasPathError(ve, want.path, want.msg) {
			t.Errorf("missing error %s: %s in:\n%v", want.path, want.msg, ve)
		}
	}
}

func TestValidateFleetBlockAccepts(t *testing.T) {
	off := 0.0
	s := minimalSpec()
	s.Fleet = &FleetBlock{
		Clusters: 3,
		Overrides: []ClusterOverride{
			{Cluster: 1, Days: 2, Nodes: 32, MeanUtil: 0.8},
			{Cluster: 2, PagingDayProb: &off},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid fleet block rejected: %v", err)
	}
}

func TestResolveFleetDefaultsToOneCluster(t *testing.T) {
	s := minimalSpec()
	cfgs, mix, err := ResolveFleet(s, syntheticStandard())
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 {
		t.Fatalf("fleet-less spec resolved to %d clusters, want 1", len(cfgs))
	}
	cfg, mix2, err := Resolve(s, syntheticStandard())
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[0] != cfg {
		t.Fatalf("fleet-of-one config differs from Resolve:\n fleet %+v\nsingle %+v", cfgs[0], cfg)
	}
	if len(mix.Clients) != len(mix2.Clients) {
		t.Fatal("fleet mix differs from Resolve mix")
	}
}

func TestResolveFleetAppliesOverrides(t *testing.T) {
	off := 0.0
	s := minimalSpec()
	s.Fleet = &FleetBlock{
		Clusters: 3,
		Overrides: []ClusterOverride{
			{Cluster: 1, Days: 5, Nodes: 32, MeanUtil: 0.9, UtilSigma: 0.3},
			{Cluster: 2, PagingDayProb: &off},
		},
	}
	cfgs, _, err := ResolveFleet(s, syntheticStandard())
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("got %d clusters, want 3", len(cfgs))
	}
	base := cfgs[0]
	if base.Days != 1 || base.Nodes != 16 {
		t.Fatalf("cluster 0 should inherit the campaign block, got %+v", base)
	}
	if c := cfgs[1]; c.Days != 5 || c.Nodes != 32 || c.MeanUtil != 0.9 || c.UtilSigma != 0.3 {
		t.Fatalf("cluster 1 overrides not applied: %+v", c)
	}
	if c := cfgs[2]; c.PagingDayProb != 0 {
		t.Fatalf("cluster 2 paging override not applied: %+v", c)
	}
	if cfgs[2].Days != base.Days || cfgs[2].Nodes != base.Nodes {
		t.Fatalf("cluster 2 should inherit unoverridden fields: %+v", cfgs[2])
	}
	for i, c := range cfgs {
		if c.Seed != 0 || c.Workers != 0 {
			t.Fatalf("cluster %d: Seed/Workers are the caller's, must resolve zero: %+v", i, c)
		}
	}
}

func TestResolveFleetRejectsBadBlock(t *testing.T) {
	s := minimalSpec()
	s.Fleet = &FleetBlock{Clusters: 2, Overrides: []ClusterOverride{{Cluster: 5}}}
	if _, _, err := ResolveFleet(s, syntheticStandard()); err == nil {
		t.Fatal("out-of-range override resolved")
	}
	s.Fleet = &FleetBlock{Clusters: 0}
	if _, _, err := ResolveFleet(s, syntheticStandard()); err == nil {
		t.Fatal("zero-cluster fleet resolved")
	}
}
