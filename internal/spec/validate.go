package spec

// Validation. Validate walks the whole document and collects every
// problem it finds — not just the first — each carrying the JSON field
// path it was found at (clients[2].arrival.cv: must be >= 1), so a
// malformed spec is fixed in one edit cycle rather than one error per
// run. Validation is purely structural: it needs no measured profiles
// and no cluster state, which is what lets `spsim -validate` gate specs
// in CI without running anything.

import (
	"fmt"
	"sort"
	"strings"
)

// FieldError is one validation problem, anchored to the JSON path of the
// offending field.
type FieldError struct {
	Path string
	Msg  string
}

func (e FieldError) Error() string { return e.Path + ": " + e.Msg }

// ValidationError is the full set of problems found in one document.
type ValidationError struct {
	Errors []FieldError
}

func (e *ValidationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invalid spec (%d problem", len(e.Errors))
	if len(e.Errors) != 1 {
		b.WriteByte('s')
	}
	b.WriteByte(')')
	for _, fe := range e.Errors {
		b.WriteString("\n  ")
		b.WriteString(fe.Error())
	}
	return b.String()
}

// validator accumulates field errors during the walk.
type validator struct {
	errs []FieldError
}

func (v *validator) errorf(path, format string, args ...any) {
	v.errs = append(v.errs, FieldError{Path: path, Msg: fmt.Sprintf(format, args...)})
}

// knownKernels is the registry of kernel names a profile may reference,
// matching the switch in resolve.go. Sorted-slice form (not a map) so
// error messages list candidates in a stable order without sorting at
// the call site.
var knownKernels = []string{"bt", "cfd", "comm", "matmul", "paging", "sequential"}

func kernelKnown(name string) bool {
	i := sort.SearchStrings(knownKernels, name)
	return i < len(knownKernels) && knownKernels[i] == name
}

// Validate checks the spec structurally and returns either nil or a
// *ValidationError carrying every problem found.
func (s *Spec) Validate() error {
	v := &validator{}
	if s.Version != Version {
		v.errorf("version", "must be %d (got %d)", Version, s.Version)
	}
	if s.Name == "" {
		v.errorf("name", "must be set")
	}
	v.campaign(&s.Campaign)
	if s.JobSize != nil {
		v.sizeDist("job_size", s.JobSize)
	}
	if s.Runtime != nil {
		v.dist("runtime", s.Runtime)
	}
	if s.Quality != nil {
		v.dist("quality", s.Quality)
	}
	v.clients(s.Clients)
	if s.LargeJobs != nil {
		v.largeJobs(s.LargeJobs, s.Clients)
	}
	if s.Faults != nil {
		v.faults(s.Faults)
	}
	if s.Fleet != nil {
		v.fleet(s.Fleet)
	}
	if len(v.errs) == 0 {
		return nil
	}
	return &ValidationError{Errors: v.errs}
}

func (v *validator) campaign(c *Campaign) {
	if c.Days <= 0 {
		v.errorf("campaign.days", "must be > 0")
	}
	if c.Nodes <= 0 {
		v.errorf("campaign.nodes", "must be > 0")
	}
	if c.SamplePeriodSeconds < 0 {
		v.errorf("campaign.sample_period_seconds", "must be >= 0")
	}
	if c.MeanUtil <= 0 || c.MeanUtil > 1 {
		v.errorf("campaign.mean_util", "must be in (0, 1]")
	}
	if c.UtilSigma < 0 {
		v.errorf("campaign.util_sigma", "must be >= 0")
	}
	if c.PagingDayProb < 0 || c.PagingDayProb > 1 {
		v.errorf("campaign.paging_day_prob", "must be in [0, 1]")
	}
	if c.MinRecordWallSeconds < 0 {
		v.errorf("campaign.min_record_wall_seconds", "must be >= 0")
	}
	if c.WeekendFactor < 0 {
		v.errorf("campaign.weekend_factor", "must be >= 0")
	}
	if c.Users < 0 {
		v.errorf("campaign.users", "must be >= 0")
	}
}

// dist checks family-specific parameter presence: each family requires
// exactly its own parameters, and stray ones from another family are
// rejected so a half-edited distribution cannot validate.
func (v *validator) dist(path string, d *Dist) {
	need := func(p *float64, name string) *float64 {
		if p == nil {
			v.errorf(path+"."+name, "required for dist %q", d.Dist)
		}
		return p
	}
	forbid := func(p *float64, name string) {
		if p != nil {
			v.errorf(path+"."+name, "not a parameter of dist %q", d.Dist)
		}
	}
	switch d.Dist {
	case "lognormal":
		need(d.Mu, "mu")
		if s := need(d.Sigma, "sigma"); s != nil && *s < 0 {
			v.errorf(path+".sigma", "must be >= 0")
		}
		forbid(d.Mean, "mean")
		forbid(d.Stddev, "stddev")
		forbid(d.Lo, "lo")
		forbid(d.Hi, "hi")
		forbid(d.Value, "value")
	case "normal":
		need(d.Mean, "mean")
		if s := need(d.Stddev, "stddev"); s != nil && *s < 0 {
			v.errorf(path+".stddev", "must be >= 0")
		}
		forbid(d.Mu, "mu")
		forbid(d.Sigma, "sigma")
		forbid(d.Lo, "lo")
		forbid(d.Hi, "hi")
		forbid(d.Value, "value")
	case "exponential":
		if m := need(d.Mean, "mean"); m != nil && *m <= 0 {
			v.errorf(path+".mean", "must be > 0")
		}
		forbid(d.Mu, "mu")
		forbid(d.Sigma, "sigma")
		forbid(d.Stddev, "stddev")
		forbid(d.Lo, "lo")
		forbid(d.Hi, "hi")
		forbid(d.Value, "value")
	case "uniform":
		lo, hi := need(d.Lo, "lo"), need(d.Hi, "hi")
		if lo != nil && hi != nil && !(*lo < *hi) {
			v.errorf(path+".lo", "must be < hi")
		}
		forbid(d.Mu, "mu")
		forbid(d.Sigma, "sigma")
		forbid(d.Mean, "mean")
		forbid(d.Stddev, "stddev")
		forbid(d.Value, "value")
	case "constant":
		need(d.Value, "value")
		forbid(d.Mu, "mu")
		forbid(d.Sigma, "sigma")
		forbid(d.Mean, "mean")
		forbid(d.Stddev, "stddev")
		forbid(d.Lo, "lo")
		forbid(d.Hi, "hi")
	case "":
		v.errorf(path+".dist", "must be one of lognormal, normal, exponential, uniform, constant")
	default:
		v.errorf(path+".dist", "unknown dist %q (want lognormal, normal, exponential, uniform or constant)", d.Dist)
	}
	if d.Min != nil && *d.Min < 0 {
		v.errorf(path+".min", "must be >= 0")
	}
	if d.Max != nil && *d.Max < 0 {
		v.errorf(path+".max", "must be >= 0")
	}
	if d.Min != nil && d.Max != nil && *d.Min > *d.Max {
		v.errorf(path+".min", "must be <= max")
	}
}

func (v *validator) sizeDist(path string, sd *SizeDist) {
	if len(sd.Nodes) == 0 {
		v.errorf(path+".nodes", "must have at least one entry")
		return
	}
	if len(sd.Weights) != len(sd.Nodes) {
		v.errorf(path+".weights", "must have the same length as nodes (%d vs %d)", len(sd.Weights), len(sd.Nodes))
		return
	}
	sum := 0.0
	for i, n := range sd.Nodes {
		if n <= 0 {
			v.errorf(fmt.Sprintf("%s.nodes[%d]", path, i), "must be > 0")
		}
		if sd.Weights[i] < 0 {
			v.errorf(fmt.Sprintf("%s.weights[%d]", path, i), "must be >= 0")
		}
		sum += sd.Weights[i]
	}
	if sum <= 0 {
		v.errorf(path+".weights", "must sum to > 0")
	}
}

func (v *validator) clients(clients []Client) {
	if len(clients) == 0 {
		v.errorf("clients", "must have at least one client")
		return
	}
	seen := make(map[string]bool, len(clients))
	remainders := 0
	shareSum, pagingSum := 0.0, 0.0
	for i := range clients {
		c := &clients[i]
		path := fmt.Sprintf("clients[%d]", i)
		if c.Name == "" {
			v.errorf(path+".name", "must be set")
		} else if seen[c.Name] {
			v.errorf(path+".name", "duplicate client name %q", c.Name)
		} else {
			seen[c.Name] = true
		}
		if c.Remainder {
			remainders++
			if c.Share != nil {
				v.errorf(path+".share", "remainder client must not set share")
			}
			if c.PagingDayShare != nil {
				v.errorf(path+".paging_day_share", "remainder client must not set paging_day_share")
			}
		} else {
			if c.Share == nil {
				v.errorf(path+".share", "required for non-remainder client")
			} else {
				if *c.Share < 0 || *c.Share > 1 {
					v.errorf(path+".share", "must be in [0, 1]")
				} else {
					shareSum += *c.Share
					if c.PagingDayShare == nil {
						pagingSum += *c.Share
					}
				}
			}
			if p := c.PagingDayShare; p != nil {
				if *p < 0 || *p > 1 {
					v.errorf(path+".paging_day_share", "must be in [0, 1]")
				} else {
					pagingSum += *p
				}
			}
		}
		v.profile(path+".profile", &c.Profile)
		if c.Arrival != nil {
			v.arrival(path+".arrival", c.Arrival)
		}
		if c.Lifecycle != nil {
			v.lifecycle(path+".lifecycle", c.Lifecycle)
		}
		if c.JobSize != nil {
			v.sizeDist(path+".job_size", c.JobSize)
		}
		if c.Runtime != nil {
			v.dist(path+".runtime", c.Runtime)
		}
	}
	if remainders == 0 {
		v.errorf("clients", "exactly one client must set remainder (none do)")
	} else if remainders > 1 {
		v.errorf("clients", "exactly one client must set remainder (%d do)", remainders)
	}
	if shareSum > 1.0000001 {
		v.errorf("clients", "shares sum to %.4f; must not exceed 1", shareSum)
	}
	if pagingSum > 1.0000001 {
		v.errorf("clients", "paging-day shares sum to %.4f; must not exceed 1", pagingSum)
	}
}

func (v *validator) profile(path string, p *Profile) {
	switch {
	case p.Kernel == "" && len(p.KernelMix) == 0:
		v.errorf(path+".kernel", "exactly one of kernel and kernel_mix must be set (neither is)")
	case p.Kernel != "" && len(p.KernelMix) > 0:
		v.errorf(path+".kernel", "exactly one of kernel and kernel_mix must be set (both are)")
	case p.Kernel != "":
		if !kernelKnown(p.Kernel) {
			v.errorf(path+".kernel", "unknown kernel %q (want one of %s)", p.Kernel, strings.Join(knownKernels, ", "))
		}
	default:
		wsum := 0.0
		for i, kw := range p.KernelMix {
			kp := fmt.Sprintf("%s.kernel_mix[%d]", path, i)
			if !kernelKnown(kw.Kernel) {
				v.errorf(kp+".kernel", "unknown kernel %q (want one of %s)", kw.Kernel, strings.Join(knownKernels, ", "))
			}
			if kw.Weight <= 0 {
				v.errorf(kp+".weight", "must be > 0")
			}
			wsum += kw.Weight
		}
		if wsum <= 0 {
			v.errorf(path+".kernel_mix", "weights must sum to > 0")
		}
	}
	if p.Scale < 0 {
		v.errorf(path+".scale", "must be >= 0")
	}
	if p.ComputeDuty < 0 || p.ComputeDuty > 1 {
		v.errorf(path+".compute_duty", "must be in [0, 1]")
	}
	if p.CommActive < 0 || p.CommActive > 1 {
		v.errorf(path+".comm_active", "must be in [0, 1]")
	}
	if p.CommKernel != "" && !kernelKnown(p.CommKernel) {
		v.errorf(path+".comm_kernel", "unknown kernel %q (want one of %s)", p.CommKernel, strings.Join(knownKernels, ", "))
	}
	if p.PerfSigma < 0 {
		v.errorf(path+".perf_sigma", "must be >= 0")
	}
	if p.MsgBytesPerFlop < 0 {
		v.errorf(path+".msg_bytes_per_flop", "must be >= 0")
	}
	if p.DiskOutBytesPerSec < 0 {
		v.errorf(path+".disk_out_bytes_per_sec", "must be >= 0")
	}
}

func (v *validator) arrival(path string, a *Arrival) {
	switch a.Process {
	case "poisson":
		if a.CV != 0 {
			v.errorf(path+".cv", "not a parameter of the poisson process")
		}
		if a.Shape != 0 {
			v.errorf(path+".shape", "not a parameter of the poisson process")
		}
	case "gamma":
		if a.CV < 1 {
			v.errorf(path+".cv", "must be >= 1")
		}
		if a.Shape != 0 {
			v.errorf(path+".shape", "not a parameter of the gamma process")
		}
	case "weibull":
		if a.Shape <= 0 {
			v.errorf(path+".shape", "must be > 0")
		}
		if a.CV != 0 {
			v.errorf(path+".cv", "not a parameter of the weibull process")
		}
	case "":
		v.errorf(path+".process", "must be one of poisson, gamma, weibull")
	default:
		v.errorf(path+".process", "unknown process %q (want poisson, gamma or weibull)", a.Process)
	}
}

func (v *validator) lifecycle(path string, l *Lifecycle) {
	switch l.Pattern {
	case "steady":
	case "diurnal":
		if l.Amplitude < 0 || l.Amplitude > 1 {
			v.errorf(path+".amplitude", "must be in [0, 1]")
		}
		if l.Peak < 0 || l.Peak >= 1 {
			v.errorf(path+".peak", "must be in [0, 1)")
		}
	case "spike":
		if l.StartDay < 0 {
			v.errorf(path+".start_day", "must be >= 0")
		}
		if l.Days <= 0 {
			v.errorf(path+".days", "must be > 0")
		}
		if l.Factor <= 0 {
			v.errorf(path+".factor", "must be > 0")
		}
	case "drain":
		if l.StartDay < 0 {
			v.errorf(path+".start_day", "must be >= 0")
		}
		if l.Days < 0 {
			v.errorf(path+".days", "must be >= 0")
		}
	case "":
		v.errorf(path+".pattern", "must be one of steady, diurnal, spike, drain")
	default:
		v.errorf(path+".pattern", "unknown pattern %q (want steady, diurnal, spike or drain)", l.Pattern)
	}
}

func (v *validator) largeJobs(lj *LargeJobs, clients []Client) {
	if lj.ThresholdNodes < 0 {
		v.errorf("large_jobs.threshold_nodes", "must be >= 0")
	}
	byName := make(map[string]bool, len(clients))
	for i := range clients {
		byName[clients[i].Name] = true
	}
	for i, ov := range lj.Overrides {
		path := fmt.Sprintf("large_jobs.overrides[%d]", i)
		if !byName[ov.Client] {
			v.errorf(path+".client", "unknown client %q", ov.Client)
		}
		if ov.Prob < 0 || ov.Prob > 1 {
			v.errorf(path+".prob", "must be in [0, 1]")
		}
	}
	if lj.Fallback == "" {
		v.errorf("large_jobs.fallback", "must name a client")
	} else if !byName[lj.Fallback] {
		v.errorf("large_jobs.fallback", "unknown client %q", lj.Fallback)
	}
}

func (v *validator) faults(f *Faults) {
	prob := func(val float64, name string) {
		if val < 0 || val > 1 {
			v.errorf("faults."+name, "must be in [0, 1]")
		}
	}
	prob(f.CrashProbPerNodeDay, "crash_prob_per_node_day")
	prob(f.DropProbPerSample, "drop_prob_per_sample")
	prob(f.DupProbPerSample, "dup_prob_per_sample")
	prob(f.RestartProbPerNodeDay, "restart_prob_per_node_day")
	prob(f.EpilogueDelayProb, "epilogue_delay_prob")
	if f.MeanOutageTicks < 0 {
		v.errorf("faults.mean_outage_ticks", "must be >= 0")
	}
	if f.EpilogueDelayMeanSeconds < 0 {
		v.errorf("faults.epilogue_delay_mean_seconds", "must be >= 0")
	}
}

func (v *validator) fleet(f *FleetBlock) {
	if f.Clusters < 1 {
		v.errorf("fleet.clusters", "must be >= 1")
	}
	seen := make(map[int]bool, len(f.Overrides))
	for i, ov := range f.Overrides {
		path := fmt.Sprintf("fleet.overrides[%d]", i)
		if ov.Cluster < 0 || (f.Clusters >= 1 && ov.Cluster >= f.Clusters) {
			v.errorf(path+".cluster", "must be in [0, %d)", f.Clusters)
		} else if seen[ov.Cluster] {
			v.errorf(path+".cluster", "duplicate override for cluster %d", ov.Cluster)
		} else {
			seen[ov.Cluster] = true
		}
		if ov.Days < 0 {
			v.errorf(path+".days", "must be >= 0 (0 inherits)")
		}
		if ov.Nodes < 0 {
			v.errorf(path+".nodes", "must be >= 0 (0 inherits)")
		}
		if ov.MeanUtil < 0 || ov.MeanUtil > 1 {
			v.errorf(path+".mean_util", "must be in [0, 1] (0 inherits)")
		}
		if ov.UtilSigma < 0 {
			v.errorf(path+".util_sigma", "must be >= 0 (0 inherits)")
		}
		if p := ov.PagingDayProb; p != nil && (*p < 0 || *p > 1) {
			v.errorf(path+".paging_day_prob", "must be in [0, 1]")
		}
	}
}
