package spec

import (
	"encoding/json"
	"hash/fnv"
	"reflect"
	"testing"

	"repro/internal/profile"
	"repro/internal/workload"
)

// resultHash mirrors the workload package's determinism hash: fnv64a over
// the JSON encoding of the full Result, floats at shortest
// round-trippable precision — equal iff bit-identical.
func resultHash(t *testing.T, r workload.Result) uint64 {
	t.Helper()
	h := fnv.New64a()
	if err := json.NewEncoder(h).Encode(r); err != nil {
		t.Fatalf("hash result: %v", err)
	}
	return h.Sum64()
}

// goldenCampaignHash duplicates the constant pinned in
// internal/workload/golden_test.go: the seed-7, 2-day default campaign
// on the pre-optimization simulator. The paper-1996 preset must hit it
// through the whole spec pipeline — load, validate, resolve, run.
const goldenCampaignHash uint64 = 0x88ee6c33b8c0bd5c

// TestPresetsRoundTrip runs every committed preset end-to-end: load,
// validate, resolve against real measured profiles, then a 1-day
// campaign at workers 1 and 8 — which must hash identically. This is the
// worker-count-invariance guarantee extended to every scenario axis the
// spec layer adds (bursty arrivals, lifecycle warps, kernel mixes,
// embedded faults).
func TestPresetsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("preset round-trips run real campaigns")
	}
	store := profile.NewStore()
	for _, name := range PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			if s.Name != name {
				t.Errorf("preset file %s.json declares name %q; file and name must agree", name, s.Name)
			}

			// Marshal/decode round-trip: the committed form must survive
			// re-encoding, or editing a preset would silently change it.
			var buf []byte
			if buf, err = json.Marshal(s); err != nil {
				t.Fatal(err)
			}
			back, err := DecodeBytes(buf)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if !reflect.DeepEqual(s, back) {
				t.Errorf("preset %s does not survive an encode/decode round-trip", name)
			}

			std := profile.MeasureStandardStore(store, 7, 8)
			cfg, mix, err := Resolve(s, std)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Days = 1 // a day is enough to exercise every draw path
			cfg.Seed = 7

			var hashes [2]uint64
			for i, workers := range []int{1, 8} {
				c := cfg
				c.Workers = workers
				res := workload.NewCampaign(c, mix).Run()
				if len(res.Days) != 1 {
					t.Fatalf("workers=%d: got %d days, want 1", workers, len(res.Days))
				}
				if res.Days[0].Gflops() <= 0 {
					t.Fatalf("workers=%d: campaign advanced no floating-point counters", workers)
				}
				hashes[i] = resultHash(t, res)
			}
			if hashes[0] != hashes[1] {
				t.Errorf("preset %s: workers=1 hash %#x != workers=8 hash %#x", name, hashes[0], hashes[1])
			}
		})
	}
}

// TestPaper1996GoldenHash runs the golden recipe through the spec
// pipeline: seed-7 profiles, the paper-1996 preset, 2 days. The hash
// must equal the constant captured before the spec layer existed — the
// refactor's proof that lifting the mix into data changed nothing.
func TestPaper1996GoldenHash(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaign is a full 2-day simulation")
	}
	s, err := Preset("paper-1996")
	if err != nil {
		t.Fatal(err)
	}
	std := profile.MeasureStandardStore(profile.NewStore(), 7, 8)
	cfg, mix, err := Resolve(s, std)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 7
	cfg.Days = 2
	cfg.Workers = 8
	res := workload.NewCampaign(cfg, mix).Run()
	if h := resultHash(t, res); h != goldenCampaignHash {
		t.Fatalf("spec-resolved paper-1996 campaign hash %#x, want golden %#x — the spec pipeline changed observable behaviour", h, goldenCampaignHash)
	}
}

// TestPresetNames pins the committed catalogue: CLI docs, README and CI
// all reference these four names.
func TestPresetNames(t *testing.T) {
	want := []string{"bursty", "comm-heavy", "memory-bound", "paper-1996"}
	if got := PresetNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("PresetNames() = %v, want %v", got, want)
	}
	if _, err := Preset("no-such-preset"); err == nil {
		t.Error("Preset on an unknown name must fail")
	}
}

// TestLoadDispatch checks the name-vs-path dispatch behind -spec.
func TestLoadDispatch(t *testing.T) {
	if _, err := Load("bursty"); err != nil {
		t.Errorf("Load(bursty) should hit the preset: %v", err)
	}
	if _, err := Load("presets/bursty.json"); err != nil {
		t.Errorf("Load of a relative path should read the file: %v", err)
	}
	if _, err := Load("no/such/file.json"); err == nil {
		t.Error("Load of a missing path must fail")
	}
}
