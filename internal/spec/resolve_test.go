package spec

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/workload"
)

// syntheticStandard builds a cheap, fully distinguishable profile set:
// every kernel gets distinct rates so a resolution mix-up (wrong kernel,
// wrong scale, swapped comm) changes the result. No micro-simulation —
// resolve tests must not pay the measurement cost.
func syntheticStandard() profile.Standard {
	mk := func(name string, base float64) profile.Profile {
		var p profile.Profile
		p.Name = name
		for m := 0; m < 2; m++ {
			for ev := range p.EventsPerSec[m] {
				p.EventsPerSec[m][ev] = base + float64(m*1000+ev)
			}
		}
		p.Mflops = base
		p.TrueDivPerSec = base / 10
		return p
	}
	return profile.Standard{
		CFD:        mk("cfd", 1e6),
		BT:         mk("bt", 2e6),
		MatMul:     mk("matmul", 3e6),
		Sequential: mk("sequential", 4e6),
		Comm:       mk("comm", 5e6),
		Paging:     mk("paging", 6e6),
	}
}

// TestPaper1996ResolvesToDefaults is the calibration linchpin: the
// committed paper-1996 preset must resolve to exactly the built-in
// DefaultConfig and DefaultMix — bit-for-bit, every float, every slice —
// because that equality is what carries the golden campaign hash across
// the spec refactor.
func TestPaper1996ResolvesToDefaults(t *testing.T) {
	s, err := Preset("paper-1996")
	if err != nil {
		t.Fatal(err)
	}
	std := syntheticStandard()
	cfg, mix, err := Resolve(s, std)
	if err != nil {
		t.Fatal(err)
	}

	wantCfg := workload.DefaultConfig(0)
	if cfg.Scenario != "paper-1996" {
		t.Errorf("Scenario = %q, want paper-1996", cfg.Scenario)
	}
	cfg.Scenario = "" // metadata, not model input
	if !reflect.DeepEqual(cfg, wantCfg) {
		t.Errorf("resolved Config diverges from DefaultConfig:\n got  %+v\n want %+v", cfg, wantCfg)
	}

	wantMix := workload.DefaultMix(std)
	if reflect.DeepEqual(mix, wantMix) {
		return
	}
	// Field-by-field reporting: a whole-Mix dump is unreadable.
	if len(mix.Clients) != len(wantMix.Clients) {
		t.Fatalf("clients: got %d, want %d", len(mix.Clients), len(wantMix.Clients))
	}
	for i := range mix.Clients {
		if !reflect.DeepEqual(mix.Clients[i], wantMix.Clients[i]) {
			t.Errorf("clients[%d] (%s) diverges:\n got  %+v\n want %+v",
				i, wantMix.Clients[i].Class.Name, mix.Clients[i], wantMix.Clients[i])
		}
	}
	if !reflect.DeepEqual(mix.LargeJobs, wantMix.LargeJobs) {
		t.Errorf("LargeJobs: got %+v, want %+v", mix.LargeJobs, wantMix.LargeJobs)
	}
	if !reflect.DeepEqual(mix.JobSize, wantMix.JobSize) {
		t.Errorf("JobSize: got %+v, want %+v", mix.JobSize, wantMix.JobSize)
	}
	if !reflect.DeepEqual(mix.Runtime, wantMix.Runtime) {
		t.Errorf("Runtime: got %+v, want %+v", mix.Runtime, wantMix.Runtime)
	}
	if !reflect.DeepEqual(mix.Quality, wantMix.Quality) {
		t.Errorf("Quality: got %+v, want %+v", mix.Quality, wantMix.Quality)
	}
	if mix.WeekendFactor != wantMix.WeekendFactor {
		t.Errorf("WeekendFactor: got %v, want %v", mix.WeekendFactor, wantMix.WeekendFactor)
	}
	if mix.Users != wantMix.Users {
		t.Errorf("Users: got %d, want %d", mix.Users, wantMix.Users)
	}
}

// TestResolveDefaults checks the omitted-field defaults: a minimal spec
// inherits the paper's distributions, cadence and record filter.
func TestResolveDefaults(t *testing.T) {
	s := minimalSpec()
	cfg, mix, err := Resolve(s, syntheticStandard())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SamplePeriodSeconds != 900 {
		t.Errorf("SamplePeriodSeconds = %v, want default 900", cfg.SamplePeriodSeconds)
	}
	if cfg.MinRecordWall != 600 {
		t.Errorf("MinRecordWall = %v, want default 600", cfg.MinRecordWall)
	}
	if cfg.Seed != 0 || cfg.Workers != 0 {
		t.Errorf("Seed/Workers must be left to the caller, got %d/%d", cfg.Seed, cfg.Workers)
	}
	if mix.WeekendFactor != 1 {
		t.Errorf("WeekendFactor = %v, want default 1", mix.WeekendFactor)
	}
	if mix.Users != workload.PaperUsers {
		t.Errorf("Users = %d, want default %d", mix.Users, workload.PaperUsers)
	}
	if !reflect.DeepEqual(mix.JobSize, workload.PaperJobSize()) {
		t.Errorf("JobSize should default to the paper marginal")
	}
	if !reflect.DeepEqual(mix.Runtime, workload.PaperRuntime()) {
		t.Errorf("Runtime should default to the paper distribution")
	}
	if mix.LargeJobs.ThresholdNodes != 0 {
		t.Errorf("LargeJobs should be disabled by default, got %+v", mix.LargeJobs)
	}
	if cfg.Faults != nil {
		t.Errorf("Faults should be nil with no faults block")
	}
}

// TestResolveKernelMix checks the weighted blend: equal weights of two
// kernels must average their rates (weights are normalized).
func TestResolveKernelMix(t *testing.T) {
	s := minimalSpec()
	s.Clients[0].Profile.Kernel = ""
	s.Clients[0].Profile.KernelMix = []KernelWeight{
		{Kernel: "cfd", Weight: 2},
		{Kernel: "comm", Weight: 2},
	}
	std := syntheticStandard()
	_, mix, err := Resolve(s, std)
	if err != nil {
		t.Fatal(err)
	}
	got := mix.Clients[0].Class.Crunch.Mflops
	want := (std.CFD.Mflops + std.Comm.Mflops) / 2
	if got != want {
		t.Errorf("blended Mflops = %v, want %v", got, want)
	}
}

// TestResolveFaults checks that a non-zero faults block threads through
// and an all-zero one resolves to no fault layer.
func TestResolveFaults(t *testing.T) {
	s := minimalSpec()
	s.Faults = &Faults{}
	cfg, _, err := Resolve(s, syntheticStandard())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults != nil {
		t.Errorf("all-zero faults block must resolve to nil, got %+v", cfg.Faults)
	}
	s.Faults = &Faults{DropProbPerSample: 0.01, MeanOutageTicks: 3}
	cfg, _, err = Resolve(s, syntheticStandard())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults == nil || cfg.Faults.DropProbPerSample != 0.01 {
		t.Errorf("faults block lost in resolution: %+v", cfg.Faults)
	}
}

// TestResolveUnknownReferences checks that a spec that skipped
// validation still fails with errors, not panics.
func TestResolveUnknownReferences(t *testing.T) {
	s := minimalSpec()
	s.Clients[0].Profile.Kernel = "fft"
	if _, _, err := Resolve(s, syntheticStandard()); err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Errorf("unknown kernel: got err %v", err)
	}

	s = minimalSpec()
	s.LargeJobs = &LargeJobs{ThresholdNodes: 64, Fallback: "nobody"}
	if _, _, err := Resolve(s, syntheticStandard()); err == nil || !strings.Contains(err.Error(), "unknown client") {
		t.Errorf("unknown fallback client: got err %v", err)
	}
}

// minimalSpec is the smallest valid document: one remainder client.
func minimalSpec() *Spec {
	return &Spec{
		Version: 1,
		Name:    "minimal",
		Campaign: Campaign{
			Days: 1, Nodes: 16,
			MeanUtil: 0.5, UtilSigma: 0.1, PagingDayProb: 0.1,
		},
		Clients: []Client{{
			Name:      "only",
			Remainder: true,
			Profile: Profile{
				Kernel:             "cfd",
				ComputeDuty:        0.8,
				CommActive:         0.5,
				PerfSigma:          0.3,
				MemoryPerNodeBytes: 32 << 20,
				MsgBytesPerFlop:    0.05,
				DiskOutBytesPerSec: 100e3,
			},
		}},
	}
}
