package spec

import (
	"errors"
	"strings"
	"testing"
)

// mustInvalid validates the spec, requires failure, and returns the
// collected field errors.
func mustInvalid(t *testing.T, s *Spec) *ValidationError {
	t.Helper()
	err := s.Validate()
	if err == nil {
		t.Fatal("Validate() = nil, want errors")
	}
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("Validate() returned %T, want *ValidationError", err)
	}
	return ve
}

// hasPathError reports whether any collected error anchors at path and
// mentions msg.
func hasPathError(ve *ValidationError, path, msg string) bool {
	for _, fe := range ve.Errors {
		if fe.Path == path && strings.Contains(fe.Msg, msg) {
			return true
		}
	}
	return false
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := DecodeBytes([]byte(`{"version": 1, "name": "x", "campain": {}}`))
	if err == nil || !strings.Contains(err.Error(), "campain") {
		t.Errorf("typo'd field must be rejected by name, got %v", err)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	_, err := DecodeBytes([]byte(`{"version": 1, "name": "x", "campaign": {"days": 1, "nodes": 1, "mean_util": 0.5}, "clients": []} {"oops": true}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing JSON must be rejected, got %v", err)
	}
}

func TestDecodeRejectsMalformedJSON(t *testing.T) {
	if _, err := DecodeBytes([]byte(`{"version": 1,`)); err == nil {
		t.Error("truncated JSON must be rejected")
	}
}

// TestValidateFieldPaths checks that each class of problem is reported
// at its exact JSON path — the error-message contract the CLI and CI
// lean on.
func TestValidateFieldPaths(t *testing.T) {
	s := minimalSpec()
	s.Version = 2
	s.Name = ""
	s.Campaign.Days = 0
	s.Campaign.MeanUtil = 1.5
	ve := mustInvalid(t, s)
	for _, want := range []struct{ path, msg string }{
		{"version", "must be 1"},
		{"name", "must be set"},
		{"campaign.days", "must be > 0"},
		{"campaign.mean_util", "must be in (0, 1]"},
	} {
		if !hasPathError(ve, want.path, want.msg) {
			t.Errorf("missing error %s: %s in:\n%v", want.path, want.msg, ve)
		}
	}
}

func TestValidateClientErrors(t *testing.T) {
	share := 0.3
	cv := 0.5
	s := minimalSpec()
	s.Clients = append(s.Clients, Client{
		Name:    "only", // duplicate of the remainder client's name
		Share:   &share,
		Profile: Profile{Kernel: "fft", ComputeDuty: 2, CommActive: 0.5},
		Arrival: &Arrival{Process: "gamma", CV: cv},
	})
	ve := mustInvalid(t, s)
	for _, want := range []struct{ path, msg string }{
		{"clients[1].name", "duplicate"},
		{"clients[1].profile.kernel", "unknown kernel"},
		{"clients[1].profile.compute_duty", "must be in [0, 1]"},
		{"clients[1].arrival.cv", "must be >= 1"},
	} {
		if !hasPathError(ve, want.path, want.msg) {
			t.Errorf("missing error %s: %s in:\n%v", want.path, want.msg, ve)
		}
	}
}

func TestValidateRemainderRules(t *testing.T) {
	s := minimalSpec()
	s.Clients[0].Remainder = false
	share := 0.5
	s.Clients[0].Share = &share
	ve := mustInvalid(t, s)
	if !hasPathError(ve, "clients", "exactly one client must set remainder") {
		t.Errorf("missing no-remainder error in:\n%v", ve)
	}

	s = minimalSpec()
	s.Clients[0].Share = &share
	ve = mustInvalid(t, s)
	if !hasPathError(ve, "clients[0].share", "remainder client must not set share") {
		t.Errorf("missing remainder-share error in:\n%v", ve)
	}
}

func TestValidateShareBudget(t *testing.T) {
	a, b := 0.7, 0.5
	s := minimalSpec()
	s.Clients = append(s.Clients,
		Client{Name: "a", Share: &a, Profile: s.Clients[0].Profile},
		Client{Name: "b", Share: &b, Profile: s.Clients[0].Profile},
	)
	ve := mustInvalid(t, s)
	if !hasPathError(ve, "clients", "must not exceed 1") {
		t.Errorf("missing share-budget error in:\n%v", ve)
	}
}

func TestValidateDistFamilies(t *testing.T) {
	mu, lo := 1.0, 2.0
	s := minimalSpec()
	s.Runtime = &Dist{Dist: "lognormal", Mu: &mu} // sigma missing
	ve := mustInvalid(t, s)
	if !hasPathError(ve, "runtime.sigma", "required for dist") {
		t.Errorf("missing required-param error in:\n%v", ve)
	}

	s = minimalSpec()
	s.Runtime = &Dist{Dist: "exponential", Mean: &mu, Lo: &lo} // stray param
	ve = mustInvalid(t, s)
	if !hasPathError(ve, "runtime.lo", "not a parameter") {
		t.Errorf("missing stray-param error in:\n%v", ve)
	}

	s = minimalSpec()
	s.Runtime = &Dist{Dist: "weibull"} // unknown family
	ve = mustInvalid(t, s)
	if !hasPathError(ve, "runtime.dist", "unknown dist") {
		t.Errorf("missing unknown-dist error in:\n%v", ve)
	}
}

func TestValidateLargeJobs(t *testing.T) {
	s := minimalSpec()
	s.LargeJobs = &LargeJobs{
		ThresholdNodes: 64,
		Overrides:      []Override{{Client: "ghost", Prob: 1.5}},
		Fallback:       "",
	}
	ve := mustInvalid(t, s)
	for _, want := range []struct{ path, msg string }{
		{"large_jobs.overrides[0].client", "unknown client"},
		{"large_jobs.overrides[0].prob", "must be in [0, 1]"},
		{"large_jobs.fallback", "must name a client"},
	} {
		if !hasPathError(ve, want.path, want.msg) {
			t.Errorf("missing error %s: %s in:\n%v", want.path, want.msg, ve)
		}
	}
}

func TestValidateFaults(t *testing.T) {
	s := minimalSpec()
	s.Faults = &Faults{DropProbPerSample: 1.2, MeanOutageTicks: -1}
	ve := mustInvalid(t, s)
	if !hasPathError(ve, "faults.drop_prob_per_sample", "must be in [0, 1]") {
		t.Errorf("missing fault-prob error in:\n%v", ve)
	}
	if !hasPathError(ve, "faults.mean_outage_ticks", "must be >= 0") {
		t.Errorf("missing outage-ticks error in:\n%v", ve)
	}
}

// TestValidationErrorRendering pins the one-line-per-problem rendering
// the CLI prints on exit 2.
func TestValidationErrorRendering(t *testing.T) {
	s := minimalSpec()
	s.Name = ""
	err := s.Validate()
	msg := err.Error()
	if !strings.Contains(msg, "invalid spec (1 problem)") {
		t.Errorf("header missing from %q", msg)
	}
	if !strings.Contains(msg, "\n  name: must be set") {
		t.Errorf("field line missing from %q", msg)
	}
}

func TestValidateAcceptsMinimal(t *testing.T) {
	if err := minimalSpec().Validate(); err != nil {
		t.Errorf("minimal spec must validate, got %v", err)
	}
}
