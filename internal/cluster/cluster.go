// Package cluster assembles the NAS SP2: N RS6000/590 nodes wired to one
// High Performance Switch, with an optional RS2HPM daemon fronting every
// node's counters. It is the construction kit the daemon binary and the
// examples use; the campaign layer builds its own nodes because PBS owns
// their lifecycle there.
package cluster

import (
	"fmt"

	"repro/internal/hps"
	"repro/internal/nfs"
	"repro/internal/node"
	"repro/internal/power2"
	"repro/internal/rs2hpm"
	"repro/internal/units"
)

// Config sizes the cluster.
type Config struct {
	// Nodes is the node count; zero selects the SP2's 144.
	Nodes int
	// MemoryBytes per node; zero selects 128 MB.
	MemoryBytes uint64
	// CPU template applied to every node (per-node seeds are derived).
	CPU power2.Config
}

// Cluster is an assembled machine.
type Cluster struct {
	nodes   []*node.Node
	net     *hps.Network
	daemon  *rs2hpm.Daemon
	hpmAddr string // bound address while daemon is serving, else ""
	homes   *nfs.Mount
}

// New builds the cluster and attaches every node to the switch.
func New(cfg Config) *Cluster {
	if cfg.Nodes == 0 {
		cfg.Nodes = units.NodeCount
	}
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("cluster: bad node count %d", cfg.Nodes))
	}
	c := &Cluster{net: hps.New(hps.SP2())}
	for i := 0; i < cfg.Nodes; i++ {
		n := node.New(node.Config{ID: i, MemoryBytes: cfg.MemoryBytes, CPU: cfg.CPU})
		c.nodes = append(c.nodes, n)
		c.net.Attach(n)
	}
	// The NFS-mounted home filesystems (3 x 8 GB), reachable from every
	// node over the switch.
	c.homes = nfs.New(c.net, nfs.SP2Config())
	return c
}

// Size reports the node count.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i; it panics on an out-of-range index.
func (c *Cluster) Node(i int) *node.Node {
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: node %d of %d", i, len(c.nodes)))
	}
	return c.nodes[i]
}

// Nodes returns all nodes (shared slice copy).
func (c *Cluster) Nodes() []*node.Node {
	out := make([]*node.Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Network exposes the switch fabric.
func (c *Cluster) Network() *hps.Network { return c.net }

// Homes exposes the NFS home filesystems.
func (c *Cluster) Homes() *nfs.Mount { return c.homes }

// Transfer moves bytes between two nodes over the switch, charging the
// endpoint DMA counters, and returns the transfer time.
func (c *Cluster) Transfer(src, dst int, bytes uint64) (float64, error) {
	return c.net.Deliver(src, dst, bytes)
}

// ServeHPM starts an RS2HPM daemon fronting every node on addr (use
// "127.0.0.1:0" to pick a free port) and returns the bound address.
func (c *Cluster) ServeHPM(addr string) (string, error) {
	if c.daemon != nil {
		return "", fmt.Errorf("cluster: daemon already serving")
	}
	d := rs2hpm.NewDaemon()
	for _, n := range c.nodes {
		d.AddSource(n)
	}
	bound, err := d.Start(addr)
	if err != nil {
		return "", err
	}
	c.daemon = d
	c.hpmAddr = bound
	return bound, nil
}

// HPMAddr reports the daemon's bound address, or "" when not serving —
// the handle collection services use to find this cluster on the wire.
func (c *Cluster) HPMAddr() string { return c.hpmAddr }

// Close stops the daemon if one is serving.
func (c *Cluster) Close() {
	if c.daemon != nil {
		c.daemon.Close()
		c.daemon = nil
		c.hpmAddr = ""
	}
}
