package cluster

import (
	"testing"

	"repro/internal/hpm"
	"repro/internal/rs2hpm"
)

func TestFleetAssembly(t *testing.T) {
	f := NewFleet(Config{Nodes: 4}, Config{Nodes: 2})
	if f.Clusters() != 2 {
		t.Fatalf("Clusters = %d", f.Clusters())
	}
	if f.Size() != 6 {
		t.Fatalf("Size = %d", f.Size())
	}
	if f.Cluster(1).Size() != 2 {
		t.Fatal("member 1 wrong size")
	}
	// Members are fully independent machines: separate switches.
	if f.Cluster(0).Network() == f.Cluster(1).Network() {
		t.Fatal("fleet members share a switch")
	}
}

func TestFleetPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":        func() { NewFleet() },
		"out-of-range": func() { NewFleet(Config{Nodes: 1}).Cluster(1) },
	} {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFleetServeHPM(t *testing.T) {
	f := NewFleet(Config{Nodes: 2}, Config{Nodes: 2})
	defer f.Close()
	addrs, err := f.ServeHPM("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] == addrs[1] {
		t.Fatalf("bound addresses %v", addrs)
	}
	for i, addr := range addrs {
		client, err := rs2hpm.Dial(addr)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		c, err := client.Counters(0)
		client.Close()
		if err != nil {
			t.Fatalf("member %d counters: %v", i, err)
		}
		_ = c.Get(hpm.User, hpm.EvCycles)
	}
	// A second serve must fail (daemons already running) and leave the
	// fleet closed afterwards per the all-or-nothing contract.
	if _, err := f.ServeHPM("127.0.0.1:0"); err == nil {
		t.Fatal("double ServeHPM accepted")
	}
	if _, err := f.ServeHPM("127.0.0.1:0"); err != nil {
		t.Fatalf("serve after rollback-close failed: %v", err)
	}
}
