package cluster

import (
	"testing"

	"repro/internal/hpm"
	"repro/internal/rs2hpm"
)

func TestFleetAssembly(t *testing.T) {
	f := NewFleet(Config{Nodes: 4}, Config{Nodes: 2})
	if f.Clusters() != 2 {
		t.Fatalf("Clusters = %d", f.Clusters())
	}
	if f.Size() != 6 {
		t.Fatalf("Size = %d", f.Size())
	}
	if f.Cluster(1).Size() != 2 {
		t.Fatal("member 1 wrong size")
	}
	// Members are fully independent machines: separate switches.
	if f.Cluster(0).Network() == f.Cluster(1).Network() {
		t.Fatal("fleet members share a switch")
	}
}

func TestFleetPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":        func() { NewFleet() },
		"out-of-range": func() { NewFleet(Config{Nodes: 1}).Cluster(1) },
	} {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestFleetCollectionService: the fleet's daemons, swept by the pooled
// batched collection service instead of hand-rolled per-member dials —
// every node of every member lands in one log, exactly accounted.
func TestFleetCollectionService(t *testing.T) {
	f := NewFleet(Config{Nodes: 2}, Config{Nodes: 3})
	defer f.Close()

	// Before ServeHPM the service must refuse to build.
	if _, err := f.CollectionService(rs2hpm.ServiceConfig{}, rs2hpm.NewSampleLog()); err == nil {
		t.Fatal("CollectionService built against a non-serving fleet")
	}
	if _, err := f.ServeHPM("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	log := rs2hpm.NewSampleLog()
	svc, err := f.CollectionService(rs2hpm.ServiceConfig{Batch: true}, log)
	if err != nil {
		t.Fatal(err)
	}
	const sweeps = 3
	for i := 0; i < sweeps; i++ {
		if err := svc.SweepOnce(float64(i)); err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	svc.Close()

	l := svc.Ledger()
	if err := l.CrossFoot(); err != nil {
		t.Fatal(err)
	}
	if want := uint64(sweeps * f.Size()); l.Captured != want || l.Offered != want {
		t.Fatalf("captured %d of %d offered, want %d (sweeps x fleet nodes)", l.Captured, l.Offered, want)
	}
	// Node IDs repeat across members (each cluster numbers from 0), so the
	// log keys hold the union; every member's node 0 contributed.
	if got := log.Len(0); got != sweeps*f.Clusters() {
		t.Fatalf("node 0 samples = %d, want %d (each member has a node 0)", got, sweeps*f.Clusters())
	}
	// The fleet's daemons survive the service's Close.
	cl, err := rs2hpm.Dial(f.Cluster(0).HPMAddr())
	if err != nil {
		t.Fatalf("daemon gone after service close: %v", err)
	}
	cl.Close()
}

func TestFleetServeHPM(t *testing.T) {
	f := NewFleet(Config{Nodes: 2}, Config{Nodes: 2})
	defer f.Close()
	addrs, err := f.ServeHPM("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] == addrs[1] {
		t.Fatalf("bound addresses %v", addrs)
	}
	for i, addr := range addrs {
		client, err := rs2hpm.Dial(addr)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		c, err := client.Counters(0)
		client.Close()
		if err != nil {
			t.Fatalf("member %d counters: %v", i, err)
		}
		_ = c.Get(hpm.User, hpm.EvCycles)
	}
	// A second serve must fail (daemons already running) and leave the
	// fleet closed afterwards per the all-or-nothing contract.
	if _, err := f.ServeHPM("127.0.0.1:0"); err == nil {
		t.Fatal("double ServeHPM accepted")
	}
	if _, err := f.ServeHPM("127.0.0.1:0"); err != nil {
		t.Fatalf("serve after rollback-close failed: %v", err)
	}
}
