package cluster

import (
	"testing"

	"repro/internal/hpm"
	"repro/internal/rs2hpm"
)

func TestDefaultsTo144Nodes(t *testing.T) {
	c := New(Config{})
	if c.Size() != 144 {
		t.Fatalf("Size = %d", c.Size())
	}
	if c.Network().Attached() != 144+3 { // nodes + the 3 home filesystems
		t.Fatalf("attached = %d", c.Network().Attached())
	}
}

func TestNodeAccessors(t *testing.T) {
	c := New(Config{Nodes: 4})
	if c.Node(3).ID() != 3 {
		t.Fatal("Node(3) wrong")
	}
	if len(c.Nodes()) != 4 {
		t.Fatal("Nodes() wrong length")
	}
	// The returned slice must not alias internal storage.
	ns := c.Nodes()
	ns[0] = nil
	if c.Node(0) == nil {
		t.Fatal("Nodes() aliases internals")
	}
}

func TestNodePanicsOutOfRange(t *testing.T) {
	c := New(Config{Nodes: 2})
	for _, i := range []int{-1, 2} {
		i := i
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Node(%d) did not panic", i)
				}
			}()
			c.Node(i)
		}()
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{Nodes: -1})
}

func TestTransferChargesDMA(t *testing.T) {
	c := New(Config{Nodes: 2})
	sec, err := c.Transfer(0, 1, 6400)
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatal("no transfer time")
	}
	if got := c.Node(0).Counters().Get(hpm.User, hpm.EvDMARead); got != 100 {
		t.Fatalf("sender dma_read = %d", got)
	}
	if got := c.Node(1).Counters().Get(hpm.User, hpm.EvDMAWrite); got != 100 {
		t.Fatalf("receiver dma_write = %d", got)
	}
}

func TestServeHPMEndToEnd(t *testing.T) {
	c := New(Config{Nodes: 3})
	addr, err := c.ServeHPM("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Double serve is rejected.
	if _, err := c.ServeHPM("127.0.0.1:0"); err == nil {
		t.Fatal("second ServeHPM accepted")
	}
	client, err := rs2hpm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ids, err := client.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("daemon serves %d nodes", len(ids))
	}
	// Counter state flows through.
	c.Transfer(0, 1, 640)
	snap, err := client.Counters(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Get(hpm.User, hpm.EvDMARead) != 10 {
		t.Fatalf("counters over TCP = %d", snap.Get(hpm.User, hpm.EvDMARead))
	}
}

func TestCloseIdempotent(t *testing.T) {
	c := New(Config{Nodes: 1})
	c.Close() // no daemon: no-op
	if _, err := c.ServeHPM("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
}

func TestHomesMountedOverSwitch(t *testing.T) {
	c := New(Config{Nodes: 2})
	if len(c.Homes().Servers()) != 3 {
		t.Fatalf("home volumes = %d", len(c.Homes().Servers()))
	}
	if _, err := c.Homes().Write(0, "/u/test/a.dat", 6400); err != nil {
		t.Fatal(err)
	}
	// The write travelled the switch: client DMA charged.
	if got := c.Node(0).Counters().Get(hpm.User, hpm.EvDMARead); got != 100 {
		t.Fatalf("client dma_read = %d", got)
	}
	if _, _, err := c.Homes().Read(1, "/u/test/a.dat"); err != nil {
		t.Fatal(err)
	}
}
