package cluster

// Fleet assembly: the multi-cluster counterpart of New. Each member is a
// complete SP2-style machine — its own nodes, switch and NFS homes —
// because fleet members share nothing at the hardware level; only the
// campaign layer (internal/fleet) merges their measurements. Callers
// wanting decorrelated members derive per-cluster CPU seeds themselves
// (workload.ClusterSeed is the campaign layer's derivation).

import (
	"fmt"

	"repro/internal/rs2hpm"
)

// Fleet is an assembled multi-cluster machine.
type Fleet struct {
	members []*Cluster
}

// NewFleet builds one Cluster per config. It panics on an empty config
// list, matching New's treatment of impossible shapes.
func NewFleet(cfgs ...Config) *Fleet {
	if len(cfgs) == 0 {
		panic("cluster: fleet needs at least one member")
	}
	f := &Fleet{members: make([]*Cluster, len(cfgs))}
	for i, cfg := range cfgs {
		f.members[i] = New(cfg)
	}
	return f
}

// Clusters reports the member count.
func (f *Fleet) Clusters() int { return len(f.members) }

// Cluster returns member i; it panics on an out-of-range index.
func (f *Fleet) Cluster(i int) *Cluster {
	if i < 0 || i >= len(f.members) {
		panic(fmt.Sprintf("cluster: fleet member %d of %d", i, len(f.members)))
	}
	return f.members[i]
}

// Size reports the total node count across all members.
func (f *Fleet) Size() int {
	n := 0
	for _, c := range f.members {
		n += c.Size()
	}
	return n
}

// ServeHPM starts one RS2HPM daemon per member on addr (use
// "127.0.0.1:0" to pick a free port per daemon) and returns the bound
// addresses in member order. On error every already-started daemon is
// stopped — the fleet either serves completely or not at all.
func (f *Fleet) ServeHPM(addr string) ([]string, error) {
	bound := make([]string, 0, len(f.members))
	for i, c := range f.members {
		b, err := c.ServeHPM(addr)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: fleet member %d: %w", i, err)
		}
		bound = append(bound, b)
	}
	return bound, nil
}

// CollectionService builds a sustained collection service over every
// member's serving daemon, appending into log. The config's address list
// is filled from the fleet — callers tune pooling, batching and the
// ingestion queue, not addressing. Every member must be serving (see
// ServeHPM); the caller owns the returned service's lifecycle and the
// fleet's daemons stay up when it closes.
func (f *Fleet) CollectionService(cfg rs2hpm.ServiceConfig, log *rs2hpm.SampleLog) (*rs2hpm.Service, error) {
	addrs := make([]string, 0, len(f.members))
	for i, c := range f.members {
		a := c.HPMAddr()
		if a == "" {
			return nil, fmt.Errorf("cluster: fleet member %d is not serving HPM (call ServeHPM first)", i)
		}
		addrs = append(addrs, a)
	}
	cfg.Addrs = addrs
	return rs2hpm.NewService(cfg, log)
}

// Close stops every member's daemon.
func (f *Fleet) Close() {
	for _, c := range f.members {
		c.Close()
	}
}
