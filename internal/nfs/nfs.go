// Package nfs models the SP2's external home filesystems: three 8 GB
// NFS-mounted volumes reachable from every node, with all data transfers
// travelling over the High Performance Switch (paper §2). File traffic
// therefore shows up in the client node's DMA counters and competes for
// the same links as message passing — the paper measured an average of
// 3.2 MB/s of disk traffic riding the DMA counters.
package nfs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/hps"
	"repro/internal/units"
)

// ServerIDBase offsets NFS server adapter IDs above any node ID.
const ServerIDBase = 10_000

// Server is one home filesystem.
type Server struct {
	id       int
	capacity uint64

	mu    sync.Mutex
	used  uint64            // guarded by mu
	files map[string]uint64 // guarded by mu

	bytesIn  uint64 // guarded by mu; writes received
	bytesOut uint64 // guarded by mu; reads served
}

// NodeID implements hps.Adapter.
func (s *Server) NodeID() int { return s.id }

// AccountDMA implements hps.Adapter; the server side's DMA is not part of
// any node's counters, so it is only tallied.
func (s *Server) AccountDMA(reads, writes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesIn += writes * 64
	s.bytesOut += reads * 64
}

// Capacity returns the volume size.
func (s *Server) Capacity() uint64 { return s.capacity }

// Used returns allocated bytes.
func (s *Server) Used() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Files returns the number of files stored.
func (s *Server) Files() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// Mount is the cluster-wide view: three home filesystems over one switch.
type Mount struct {
	net     *hps.Network
	servers []*Server
}

// Config sizes the mount.
type Config struct {
	// Volumes is the number of home filesystems (3 on the NAS SP2).
	Volumes int
	// VolumeBytes is each volume's capacity (8 GB on the NAS SP2).
	VolumeBytes uint64
}

// SP2Config returns the paper's home-filesystem layout.
func SP2Config() Config {
	return Config{Volumes: 3, VolumeBytes: 8 << 30}
}

// New attaches the home filesystems to the switch.
func New(net *hps.Network, cfg Config) *Mount {
	if cfg.Volumes <= 0 {
		cfg.Volumes = 3
	}
	if cfg.VolumeBytes == 0 {
		cfg.VolumeBytes = 8 << 30
	}
	m := &Mount{net: net}
	for i := 0; i < cfg.Volumes; i++ {
		s := &Server{
			id:       ServerIDBase + i,
			capacity: cfg.VolumeBytes,
			files:    make(map[string]uint64),
		}
		net.Attach(s)
		m.servers = append(m.servers, s)
	}
	return m
}

// Servers returns the volumes.
func (m *Mount) Servers() []*Server {
	out := make([]*Server, len(m.servers))
	copy(out, m.servers)
	return out
}

// volumeFor places a path: a stable hash spreads home directories across
// the three volumes, as NAS spread its users.
func (m *Mount) volumeFor(path string) *Server {
	h := uint64(1469598103934665603)
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= 1099511628211
	}
	return m.servers[h%uint64(len(m.servers))]
}

// Write stores (or overwrites) a file from the given client node. The
// bytes cross the switch (charging the client's DMA counters) and consume
// volume space. It returns the transfer time.
func (m *Mount) Write(clientNode int, path string, bytes uint64) (seconds float64, err error) {
	srv := m.volumeFor(path)
	srv.mu.Lock()
	old := srv.files[path]
	if srv.used-old+bytes > srv.capacity {
		srv.mu.Unlock()
		return 0, fmt.Errorf("nfs: volume %d full: %s needs %s",
			srv.id-ServerIDBase, path, units.Bytes(bytes))
	}
	srv.used = srv.used - old + bytes
	srv.files[path] = bytes
	srv.mu.Unlock()

	return m.net.Deliver(clientNode, srv.id, bytes)
}

// Read fetches a file to the given client node, returning its size and the
// transfer time.
func (m *Mount) Read(clientNode int, path string) (bytes uint64, seconds float64, err error) {
	srv := m.volumeFor(path)
	srv.mu.Lock()
	size, ok := srv.files[path]
	srv.mu.Unlock()
	if !ok {
		return 0, 0, fmt.Errorf("nfs: no such file %q", path)
	}
	sec, err := m.net.Deliver(srv.id, clientNode, size)
	return size, sec, err
}

// Remove deletes a file, freeing its space.
func (m *Mount) Remove(path string) error {
	srv := m.volumeFor(path)
	srv.mu.Lock()
	defer srv.mu.Unlock()
	size, ok := srv.files[path]
	if !ok {
		return fmt.Errorf("nfs: no such file %q", path)
	}
	srv.used -= size
	delete(srv.files, path)
	return nil
}

// Stat returns a file's size.
func (m *Mount) Stat(path string) (uint64, bool) {
	srv := m.volumeFor(path)
	srv.mu.Lock()
	defer srv.mu.Unlock()
	size, ok := srv.files[path]
	return size, ok
}

// List returns all paths across the volumes, sorted.
func (m *Mount) List() []string {
	var out []string
	for _, srv := range m.servers {
		srv.mu.Lock()
		for p := range srv.files {
			out = append(out, p)
		}
		srv.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// TotalUsed sums allocation across volumes.
func (m *Mount) TotalUsed() uint64 {
	var t uint64
	for _, srv := range m.servers {
		t += srv.Used()
	}
	return t
}
