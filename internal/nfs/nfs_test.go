package nfs

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/hpm"
	"repro/internal/hps"
	"repro/internal/node"
)

func mountWithNodes(t *testing.T, n int, cfg Config) (*Mount, []*node.Node, *hps.Network) {
	t.Helper()
	net := hps.New(hps.SP2())
	nodes := make([]*node.Node, n)
	for i := range nodes {
		nodes[i] = node.New(node.Config{ID: i})
		net.Attach(nodes[i])
	}
	return New(net, cfg), nodes, net
}

func TestSP2Layout(t *testing.T) {
	m, _, net := mountWithNodes(t, 1, SP2Config())
	if len(m.Servers()) != 3 {
		t.Fatalf("volumes = %d, want 3", len(m.Servers()))
	}
	for _, s := range m.Servers() {
		if s.Capacity() != 8<<30 {
			t.Fatalf("capacity = %d, want 8 GB", s.Capacity())
		}
	}
	if net.Attached() != 4 { // 1 node + 3 volumes
		t.Fatalf("attached = %d", net.Attached())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, nodes, _ := mountWithNodes(t, 2, Config{Volumes: 3, VolumeBytes: 1 << 20})
	sec, err := m.Write(0, "/u/alice/results.dat", 64_000)
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatal("no transfer time")
	}
	size, _, err := m.Read(1, "/u/alice/results.dat")
	if err != nil {
		t.Fatal(err)
	}
	if size != 64_000 {
		t.Fatalf("read size = %d", size)
	}
	// The writer's node shows outbound DMA (dma_read), the reader inbound.
	w := nodes[0].Counters()
	if w.Get(hpm.User, hpm.EvDMARead) != 1000 {
		t.Fatalf("writer dma_read = %d, want 1000 transfers", w.Get(hpm.User, hpm.EvDMARead))
	}
	r := nodes[1].Counters()
	if r.Get(hpm.User, hpm.EvDMAWrite) != 1000 {
		t.Fatalf("reader dma_write = %d", r.Get(hpm.User, hpm.EvDMAWrite))
	}
}

func TestQuotaEnforced(t *testing.T) {
	m, _, _ := mountWithNodes(t, 1, Config{Volumes: 1, VolumeBytes: 1000})
	if _, err := m.Write(0, "/a", 900); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write(0, "/b", 200); err == nil {
		t.Fatal("overflow write accepted")
	}
	// Overwriting shrinks before checking.
	if _, err := m.Write(0, "/a", 1000); err != nil {
		t.Fatalf("overwrite within quota rejected: %v", err)
	}
}

func TestOverwriteReplaces(t *testing.T) {
	m, _, _ := mountWithNodes(t, 1, Config{Volumes: 1, VolumeBytes: 1 << 20})
	m.Write(0, "/f", 100)
	m.Write(0, "/f", 300)
	if size, ok := m.Stat("/f"); !ok || size != 300 {
		t.Fatalf("Stat = %d,%v", size, ok)
	}
	if m.TotalUsed() != 300 {
		t.Fatalf("TotalUsed = %d", m.TotalUsed())
	}
}

func TestRemove(t *testing.T) {
	m, _, _ := mountWithNodes(t, 1, Config{Volumes: 2, VolumeBytes: 1 << 20})
	m.Write(0, "/f", 100)
	if err := m.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Stat("/f"); ok {
		t.Fatal("file survived Remove")
	}
	if err := m.Remove("/f"); err == nil {
		t.Fatal("double remove accepted")
	}
	if m.TotalUsed() != 0 {
		t.Fatalf("TotalUsed = %d", m.TotalUsed())
	}
}

func TestReadMissing(t *testing.T) {
	m, _, _ := mountWithNodes(t, 1, Config{Volumes: 1, VolumeBytes: 1 << 20})
	if _, _, err := m.Read(0, "/nope"); err == nil {
		t.Fatal("missing read accepted")
	}
}

func TestPlacementSpreadsAcrossVolumes(t *testing.T) {
	m, _, _ := mountWithNodes(t, 1, Config{Volumes: 3, VolumeBytes: 1 << 30})
	for u := 0; u < 60; u++ {
		if _, err := m.Write(0, fmt.Sprintf("/u/user%02d/out.dat", u), 1000); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range m.Servers() {
		if s.Files() == 0 {
			t.Fatalf("volume %d received no files", i)
		}
	}
	if got := len(m.List()); got != 60 {
		t.Fatalf("List = %d files", got)
	}
}

func TestPlacementStable(t *testing.T) {
	m, _, _ := mountWithNodes(t, 1, Config{Volumes: 3, VolumeBytes: 1 << 30})
	a := m.volumeFor("/u/alice/x")
	for i := 0; i < 10; i++ {
		if m.volumeFor("/u/alice/x") != a {
			t.Fatal("placement unstable")
		}
	}
}

func TestServerTrafficTallies(t *testing.T) {
	m, _, _ := mountWithNodes(t, 1, Config{Volumes: 1, VolumeBytes: 1 << 20})
	m.Write(0, "/f", 6400)
	m.Read(0, "/f")
	s := m.Servers()[0]
	s.mu.Lock()
	in, out := s.bytesIn, s.bytesOut
	s.mu.Unlock()
	if in != 6400 || out != 6400 {
		t.Fatalf("server traffic = %d/%d", in, out)
	}
}

// TestConcurrentClientsDoNotRace hammers the mount from several client
// nodes at once — writes, reads, stats, listings — the access pattern of
// many users' home directories. Run under -race this pins the per-server
// mutex discipline.
func TestConcurrentClientsDoNotRace(t *testing.T) {
	m, _, _ := mountWithNodes(t, 4, SP2Config())
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				path := fmt.Sprintf("/home/u%d/f%d", c, i%10)
				if _, err := m.Write(c, path, 4096); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, _, err := m.Read(c, path); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				m.Stat(path)
				m.TotalUsed()
				if i%50 == 0 {
					m.List()
				}
			}
		}(c)
	}
	wg.Wait()
	if got, want := len(m.List()), 4*10; got != want {
		t.Fatalf("List() = %d files, want %d", got, want)
	}
}
