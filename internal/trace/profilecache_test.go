package trace

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/power2"
	"repro/internal/profile"
)

// Round-tripping a store through the cache file must reproduce every
// measurement bit-for-bit, including float fields (Go's JSON encoder
// emits the shortest form that parses back to the identical float64).
func TestProfileCacheRoundTrip(t *testing.T) {
	for _, name := range []string{"cache.json", "cache.json.gz"} {
		t.Run(name, func(t *testing.T) {
			src := profile.NewStore()
			k, ok := kernels.ByName("matmul")
			if !ok {
				t.Fatal("missing kernel matmul")
			}
			src.Measure(k, power2.Config{Seed: 1}, 10_000)
			src.Measure(k, power2.Config{Seed: 2}, 10_000)

			path := filepath.Join(t.TempDir(), name)
			if err := WriteProfileCacheFile(path, src); err != nil {
				t.Fatal(err)
			}

			dst := profile.NewStore()
			if err := LoadProfileCacheFile(path, dst); err != nil {
				t.Fatal(err)
			}
			want, got := src.Entries(), dst.Entries()
			if len(got) != len(want) {
				t.Fatalf("loaded %d measurements, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("measurement %d changed across the round trip:\n wrote %+v\n read  %+v", i, want[i], got[i])
				}
			}

			// A warm load must turn the first Measure into a hit.
			if m := dst.Measure(k, power2.Config{Seed: 1}, 10_000); m != want[0] && m != want[1] {
				t.Fatal("measurement after warm load diverged")
			}
			if st := dst.Stats(); st.Hits != 1 || st.Misses != 0 {
				t.Fatalf("warm store stats = %+v, want pure hit", st)
			}
		})
	}
}

// A missing cache file is a cold start, not an error.
func TestProfileCacheMissingFile(t *testing.T) {
	s := profile.NewStore()
	if err := LoadProfileCacheFile(filepath.Join(t.TempDir(), "absent.json"), s); err != nil {
		t.Fatalf("missing cache file should be a cold start, got %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("store has %d entries after loading nothing", s.Len())
	}
}

// Version mismatches must be refused loudly — a stale cache written by an
// older simulator would silently pin old numbers.
func TestProfileCacheVersionCheck(t *testing.T) {
	_, err := ReadProfileCache(strings.NewReader(`{"version": 999, "measurements": []}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}
