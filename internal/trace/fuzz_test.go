package trace

// Fuzz target for the profile-cache codec. The decoder fronts files users
// hand to -profile-cache, so arbitrary bytes must produce an error, never
// a panic, and anything it accepts must survive an encode/decode cycle
// unchanged (the memoized store would otherwise drift between runs).

import (
	"bytes"
	"reflect"
	"testing"
)

func FuzzProfileCacheDecode(f *testing.F) {
	// Hand seeds covering the envelope's edges; the committed corpus under
	// testdata/fuzz adds a dump written by the real encoder.
	f.Add([]byte(`{"version":1,"measurements":[]}`))
	f.Add([]byte(`{"version":1,"measurements":null}`))
	f.Add([]byte(`{"version":2,"measurements":[]}`))
	f.Add([]byte(`{"version":1,"measurements":[{"Kernel":"cfd","Instrs":1000,"Seconds":0.5}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"version":1,"measurements":[{"Kernel":"nul","Instrs":18446744073709551615}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ms, err := ReadProfileCache(bytes.NewReader(data))
		if err != nil {
			return // rejected input; the only requirement is not panicking
		}
		// Accepted input must round-trip bit-identically through the
		// writer: encode what we decoded, decode it again, compare.
		var buf bytes.Buffer
		if err := WriteProfileCache(&buf, ms); err != nil {
			t.Fatalf("re-encoding accepted measurements failed: %v", err)
		}
		again, err := ReadProfileCache(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own encoder's output failed: %v", err)
		}
		if !reflect.DeepEqual(ms, again) {
			t.Fatalf("round trip changed the measurements:\n first: %+v\nsecond: %+v", ms, again)
		}
	})
}
