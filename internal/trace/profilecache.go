package trace

// Persistence for the memoized profile store (the -profile-cache flag on
// cmd/spsim and cmd/experiments): the store's measurements, sorted in the
// store's canonical order, in the same versioned JSON envelope style as
// campaign results, with the same transparent ".gz" handling. Because a
// Measurement is a pure function of its key, loading a cache written by a
// previous process changes nothing but the time the first measurements
// take.

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/profile"
)

// ProfileCacheVersion guards against reading incompatible cache files. It
// must change whenever the simulator's behaviour changes in a way that
// alters any measurement — a stale cache would otherwise silently pin the
// old numbers.
const ProfileCacheVersion = 1

// profileCacheEnvelope is the on-disk form.
type profileCacheEnvelope struct {
	Version      int                   `json:"version"`
	Measurements []profile.Measurement `json:"measurements"`
}

// WriteProfileCache serialises measurements to w as JSON.
func WriteProfileCache(w io.Writer, ms []profile.Measurement) error {
	enc := json.NewEncoder(w)
	env := profileCacheEnvelope{Version: ProfileCacheVersion, Measurements: ms}
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("trace: profile cache encode: %w", err)
	}
	return nil
}

// ReadProfileCache deserialises measurements from r.
func ReadProfileCache(r io.Reader) ([]profile.Measurement, error) {
	var env profileCacheEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("trace: profile cache decode: %w", err)
	}
	if env.Version != ProfileCacheVersion {
		return nil, fmt.Errorf("trace: profile cache version %d, want %d", env.Version, ProfileCacheVersion)
	}
	return env.Measurements, nil
}

// WriteProfileCacheFile persists a store's measurements to path; a ".gz"
// suffix enables gzip compression.
func WriteProfileCacheFile(path string, s *profile.Store) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer gz.Close()
		w = gz
	}
	return WriteProfileCache(w, s.Entries())
}

// LoadProfileCacheFile loads a persisted cache into the store. A missing
// file is not an error — the first run of a warm/cold cycle starts cold.
func LoadProfileCacheFile(path string, s *profile.Store) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return fmt.Errorf("trace: gzip: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	ms, err := ReadProfileCache(r)
	if err != nil {
		return err
	}
	s.AddAll(ms)
	return nil
}
