package trace

import "os"

// statFile and writeRaw keep the test file free of os-level noise.
func statFile(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func writeRaw(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
