package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hpm"
	"repro/internal/pbs"
	"repro/internal/workload"
)

// sampleResult builds a small synthetic result with non-trivial content.
func sampleResult() workload.Result {
	var res workload.Result
	res.Config = workload.DefaultConfig(5)
	res.Config.Days = 2
	var d workload.Day
	d.Index = 0
	d.Delta.Counts[hpm.User][hpm.EvFPU0Add] = 123456789
	d.Delta.Counts[hpm.System][hpm.EvFXU0Instr] = 42
	d.BusyNodeSeconds = 98765
	res.Days = append(res.Days, d)
	d.Index = 1
	res.Days = append(res.Days, d)
	var rec pbs.Record
	rec.JobID = 7
	rec.User = "u01"
	rec.Class = "production-cfd"
	rec.NodesUsed = 16
	rec.WallSeconds = 7200
	var nd hpm.Delta
	nd.Counts[hpm.User][hpm.EvCycles] = 1 << 40
	rec.PerNode = append(rec.PerNode, nd)
	res.Records = append(res.Records, rec)
	res.MaxGflops15min = 5.7
	res.DroppedRecords = 3
	return res
}

func TestRoundTrip(t *testing.T) {
	res := sampleResult()
	var buf bytes.Buffer
	if err := Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, res)
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	r := strings.NewReader(`{"version": 99, "result": {}}`)
	if _, err := Read(r); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	res := sampleResult()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteFile(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatal("file round trip mismatch")
	}
}

func TestGzipFileRoundTrip(t *testing.T) {
	res := sampleResult()
	dir := t.TempDir()
	plain := filepath.Join(dir, "trace.json")
	gz := filepath.Join(dir, "trace.json.gz")
	if err := WriteFile(plain, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(gz, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatal("gzip round trip mismatch")
	}
	// Compression must actually shrink the file.
	pi, _ := fileSize(t, plain)
	gi, _ := fileSize(t, gz)
	if gi >= pi {
		t.Fatalf("gzip (%d) not smaller than plain (%d)", gi, pi)
	}
}

func fileSize(t *testing.T, path string) (int64, error) {
	t.Helper()
	fi, err := statFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi, nil
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadFileBadGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json.gz")
	if err := writeRaw(path, []byte("not gzip")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("bad gzip accepted")
	}
}

func TestRecordsCSV(t *testing.T) {
	res := sampleResult()
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+len(res.Records) {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "job_id,user,class,nodes") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "u01") || !strings.Contains(lines[1], "production-cfd") {
		t.Fatalf("row = %q", lines[1])
	}
	// The header column count matches every row.
	cols := strings.Count(lines[0], ",")
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != cols {
			t.Fatalf("ragged row: %q", l)
		}
	}
}

func TestRecordsCSVFile(t *testing.T) {
	res := sampleResult()
	path := filepath.Join(t.TempDir(), "jobs.csv")
	if err := WriteRecordsCSVFile(path, res.Records); err != nil {
		t.Fatal(err)
	}
	if sz, err := statFile(path); err != nil || sz == 0 {
		t.Fatalf("csv file size %d err %v", sz, err)
	}
}
