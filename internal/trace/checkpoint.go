package trace

// Fleet campaign checkpoints: the durable record that lets a multi-year
// fleet campaign survive a kill and restart bit-identically. The unit of
// resumable progress is the completed cluster — a cluster campaign's
// Result is a pure function of (Config, Mix, seed), so anything
// in-flight at the kill is simply re-run from its own day 0 on resume
// and lands on the same bits. The checkpoint therefore carries the
// completed clusters' full Results (the reducer state) plus per-cluster
// day cursors (the generator frontier, recorded for progress reporting
// and cross-checked on load), in the same versioned JSON envelope style
// as campaign traces, with the same transparent ".gz" handling.
//
// A checkpoint is bound to the fleet that wrote it by FleetID, a hash of
// every member's (Config, Mix) — resuming against a different fleet
// definition is an error, not a silent wrong answer. Execution knobs
// (Workers, shard count) are excluded from Config's JSON form, so a
// resume may use any shard or worker count.

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/workload"
)

// FleetCheckpointVersion guards against reading incompatible checkpoint
// files. It must change whenever the simulator's behaviour changes in a
// way that alters any campaign result — resuming from a stale checkpoint
// would otherwise silently mix old and new bits in one merged Result.
const FleetCheckpointVersion = 1

// FleetClusterResult is one completed cluster's campaign reduction.
type FleetClusterResult struct {
	Cluster int             `json:"cluster"`
	Result  workload.Result `json:"result"`
}

// FleetCursor records how far a cluster's generator had advanced when
// the checkpoint was written: NextDay is the first day not yet fully
// simulated. For completed clusters NextDay equals the cluster's Days;
// for in-flight clusters it marks lost work a resume re-runs from day 0.
type FleetCursor struct {
	Cluster int `json:"cluster"`
	NextDay int `json:"next_day"`
}

// FleetCheckpoint is the on-disk form.
type FleetCheckpoint struct {
	Version int `json:"version"`
	// FleetID binds the checkpoint to a fleet definition: the fnv-64a
	// hash of every member's serialized (Config, Mix).
	FleetID uint64 `json:"fleet_id"`
	// Clusters is the fleet size the checkpoint was written under.
	Clusters int                  `json:"clusters"`
	Done     []FleetClusterResult `json:"done"`
	Cursors  []FleetCursor        `json:"cursors"`
}

// WriteFleetCheckpoint serialises the checkpoint to w as JSON.
func WriteFleetCheckpoint(w io.Writer, cp FleetCheckpoint) error {
	cp.Version = FleetCheckpointVersion
	if err := json.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("trace: checkpoint encode: %w", err)
	}
	return nil
}

// ReadFleetCheckpoint deserialises and validates a checkpoint from r. It
// rejects version skew, trailing garbage after the envelope, and any
// internally inconsistent progress record (out-of-range or duplicate
// cluster indexes) — a corrupt checkpoint must fail the resume, never
// seed a silently wrong merge.
func ReadFleetCheckpoint(r io.Reader) (FleetCheckpoint, error) {
	var cp FleetCheckpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&cp); err != nil {
		return FleetCheckpoint{}, fmt.Errorf("trace: checkpoint decode: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return FleetCheckpoint{}, errors.New("trace: checkpoint decode: trailing data after envelope")
	}
	if cp.Version != FleetCheckpointVersion {
		return FleetCheckpoint{}, fmt.Errorf("trace: checkpoint version %d, want %d", cp.Version, FleetCheckpointVersion)
	}
	if cp.Clusters < 1 {
		return FleetCheckpoint{}, fmt.Errorf("trace: checkpoint fleet size %d, want >= 1", cp.Clusters)
	}
	seen := make(map[int]bool, len(cp.Done))
	for _, d := range cp.Done {
		if d.Cluster < 0 || d.Cluster >= cp.Clusters {
			return FleetCheckpoint{}, fmt.Errorf("trace: checkpoint cluster %d out of range [0,%d)", d.Cluster, cp.Clusters)
		}
		if seen[d.Cluster] {
			return FleetCheckpoint{}, fmt.Errorf("trace: checkpoint cluster %d recorded twice", d.Cluster)
		}
		seen[d.Cluster] = true
	}
	cseen := make(map[int]bool, len(cp.Cursors))
	for _, c := range cp.Cursors {
		if c.Cluster < 0 || c.Cluster >= cp.Clusters {
			return FleetCheckpoint{}, fmt.Errorf("trace: checkpoint cursor for cluster %d out of range [0,%d)", c.Cluster, cp.Clusters)
		}
		if cseen[c.Cluster] {
			return FleetCheckpoint{}, fmt.Errorf("trace: checkpoint cursor for cluster %d recorded twice", c.Cluster)
		}
		cseen[c.Cluster] = true
		if c.NextDay < 0 {
			return FleetCheckpoint{}, fmt.Errorf("trace: checkpoint cursor for cluster %d has negative day %d", c.Cluster, c.NextDay)
		}
	}
	return cp, nil
}

// WriteFleetCheckpointFile atomically persists the checkpoint to path: it
// writes a temporary file in the same directory and renames it over the
// target, so a kill mid-write leaves the previous checkpoint intact — the
// whole point of checkpointing. A ".gz" suffix enables gzip compression.
func WriteFleetCheckpointFile(path string, cp FleetCheckpoint) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("trace: checkpoint: %w", err)
	}
	tmp := f.Name()
	werr := func() error {
		defer f.Close()
		var w io.Writer = f
		if strings.HasSuffix(path, ".gz") {
			gz := gzip.NewWriter(f)
			defer gz.Close()
			w = gz
		}
		return WriteFleetCheckpoint(w, cp)
	}()
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: checkpoint: %w", err)
	}
	return nil
}

// ReadFleetCheckpointFile loads a checkpoint from path, transparently
// handling ".gz".
func ReadFleetCheckpointFile(path string) (FleetCheckpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return FleetCheckpoint{}, fmt.Errorf("trace: checkpoint: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return FleetCheckpoint{}, fmt.Errorf("trace: checkpoint gzip: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	return ReadFleetCheckpoint(r)
}
