// Package trace persists campaign results: the per-day counter reductions
// and the PBS accounting records, in a versioned JSON envelope. This is
// the stand-in for the files the real deployment wrote ("these values are
// written to a file for later processing and viewing by both users and
// system personnel") and lets cmd/spsim produce a database that
// cmd/experiments analyses separately.
package trace

import (
	"compress/gzip"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/pbs"
	"repro/internal/workload"
)

// FormatVersion guards against reading incompatible files.
const FormatVersion = 1

// Envelope is the on-disk form.
type Envelope struct {
	Version int             `json:"version"`
	Result  workload.Result `json:"result"`
}

// Write serialises the result to w as JSON.
func Write(w io.Writer, res workload.Result) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(Envelope{Version: FormatVersion, Result: res}); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// Read deserialises a result from r.
func Read(r io.Reader) (workload.Result, error) {
	var env Envelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return workload.Result{}, fmt.Errorf("trace: decode: %w", err)
	}
	if env.Version != FormatVersion {
		return workload.Result{}, fmt.Errorf("trace: version %d, want %d", env.Version, FormatVersion)
	}
	return env.Result, nil
}

// WriteFile writes the result to path; a ".gz" suffix enables gzip
// compression (the counter arrays compress extremely well).
func WriteFile(path string, res workload.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer gz.Close()
		w = gz
	}
	return Write(w, res)
}

// ReadFile loads a result from path, transparently handling ".gz".
func ReadFile(path string) (workload.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return workload.Result{}, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return workload.Result{}, fmt.Errorf("trace: gzip: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	return Read(r)
}

// WriteRecordsCSV exports the batch-job database as CSV — the form in
// which "users and system personnel may examine and analyze" job counters.
// One row per job with the headline derived quantities.
func WriteRecordsCSV(w io.Writer, recs []pbs.Record) error {
	cw := csv.NewWriter(w)
	header := []string{
		"job_id", "user", "class", "nodes", "submit_s", "start_s", "end_s",
		"wall_s", "preemptions", "mflops_per_node", "job_mflops", "mips_per_node",
		"fma_fraction", "flops_per_memref", "cache_miss_ratio", "tlb_miss_ratio",
		"sys_user_fxu",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: csv: %w", err)
	}
	f := strconv.FormatFloat
	for _, r := range recs {
		rates := r.PerNodeRates()
		row := []string{
			strconv.Itoa(r.JobID),
			r.User,
			r.Class,
			strconv.Itoa(r.NodesUsed),
			f(r.SubmitAt.Seconds(), 'f', 1, 64),
			f(r.StartAt.Seconds(), 'f', 1, 64),
			f(r.EndAt.Seconds(), 'f', 1, 64),
			f(r.WallSeconds, 'f', 1, 64),
			strconv.Itoa(r.Preemptions),
			f(rates.MflopsAll, 'f', 3, 64),
			f(r.JobMflops(), 'f', 2, 64),
			f(rates.Mips, 'f', 3, 64),
			f(rates.FMAFraction(), 'f', 4, 64),
			f(rates.FlopsPerMemRef(), 'f', 4, 64),
			f(rates.CacheMissRatio(), 'f', 6, 64),
			f(rates.TLBMissRatio(), 'f', 6, 64),
			f(r.SystemUserFXURatio(), 'f', 4, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: csv: %w", err)
	}
	return nil
}

// WriteRecordsCSVFile writes the job database to a file.
func WriteRecordsCSVFile(path string, recs []pbs.Record) error {
	fl, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer fl.Close()
	return WriteRecordsCSV(fl, recs)
}
