package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

// sampleCheckpoint builds a small but non-trivial checkpoint: one
// completed cluster with a hand-built Result, one in-flight cursor.
func sampleCheckpoint() FleetCheckpoint {
	res := workload.Result{
		Config: workload.Config{
			Days: 2, Nodes: 8, Seed: 7,
			SamplePeriodSeconds: 900,
			MeanUtil:            0.65, UtilSigma: 0.20,
			PagingDayProb: 0.20, MinRecordWall: 600,
		},
		Days: []workload.Day{
			{Index: 0, BusyNodeSeconds: 12345.5},
			{Index: 1, BusyNodeSeconds: 23456.25},
		},
		MaxGflops15min: 1.5,
		DroppedRecords: 3,
	}
	return FleetCheckpoint{
		Version:  FleetCheckpointVersion,
		FleetID:  0xdeadbeefcafe,
		Clusters: 3,
		Done:     []FleetClusterResult{{Cluster: 1, Result: res}},
		Cursors:  []FleetCursor{{Cluster: 0, NextDay: 1}, {Cluster: 1, NextDay: 2}},
	}
}

func TestFleetCheckpointRoundTrip(t *testing.T) {
	cp := sampleCheckpoint()
	var buf bytes.Buffer
	if err := WriteFleetCheckpoint(&buf, cp); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadFleetCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Fatalf("round trip changed the checkpoint:\nwrote %+v\n read %+v", cp, got)
	}
}

func TestFleetCheckpointFileRoundTrip(t *testing.T) {
	for _, name := range []string{"fleet.ckpt", "fleet.ckpt.gz"} {
		path := filepath.Join(t.TempDir(), name)
		cp := sampleCheckpoint()
		if err := WriteFleetCheckpointFile(path, cp); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadFleetCheckpointFile(path)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if !reflect.DeepEqual(cp, got) {
			t.Fatalf("%s: file round trip changed the checkpoint", name)
		}
	}
}

// The atomic write must replace the previous checkpoint and leave no
// temporary droppings — a kill between runs must always find either the
// old or the new checkpoint, never a partial one.
func TestFleetCheckpointFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.ckpt")
	first := sampleCheckpoint()
	if err := WriteFleetCheckpointFile(path, first); err != nil {
		t.Fatalf("first write: %v", err)
	}
	second := first
	second.Done = nil
	second.Cursors = []FleetCursor{{Cluster: 2, NextDay: 5}}
	if err := WriteFleetCheckpointFile(path, second); err != nil {
		t.Fatalf("second write: %v", err)
	}
	got, err := ReadFleetCheckpointFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(second, got) {
		t.Fatalf("replace did not take: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "fleet.ckpt" {
		t.Fatalf("temporary files left behind: %v", entries)
	}
}

func TestFleetCheckpointRejectsCorruptEnvelopes(t *testing.T) {
	valid := func() FleetCheckpoint { return sampleCheckpoint() }
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", ``, "decode"},
		{"truncated", `{"version":1,"fleet_id":1,"clu`, "decode"},
		{"version skew", `{"version":99,"fleet_id":1,"clusters":1,"done":null,"cursors":null}`, "version 99"},
		{"trailing garbage", `{"version":1,"fleet_id":1,"clusters":1,"done":null,"cursors":null}{}`, "trailing data"},
		{"zero clusters", `{"version":1,"fleet_id":1,"clusters":0,"done":null,"cursors":null}`, "fleet size 0"},
		{"done out of range", `{"version":1,"fleet_id":1,"clusters":1,"done":[{"cluster":1,"result":{}}],"cursors":null}`, "out of range"},
		{"done duplicate", `{"version":1,"fleet_id":1,"clusters":2,"done":[{"cluster":0,"result":{}},{"cluster":0,"result":{}}],"cursors":null}`, "recorded twice"},
		{"cursor out of range", `{"version":1,"fleet_id":1,"clusters":2,"done":null,"cursors":[{"cluster":-1,"next_day":0}]}`, "out of range"},
		{"cursor duplicate", `{"version":1,"fleet_id":1,"clusters":2,"done":null,"cursors":[{"cluster":1,"next_day":0},{"cluster":1,"next_day":1}]}`, "recorded twice"},
		{"negative day", `{"version":1,"fleet_id":1,"clusters":2,"done":null,"cursors":[{"cluster":1,"next_day":-3}]}`, "negative day"},
	}
	for _, tc := range cases {
		_, err := ReadFleetCheckpoint(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Sanity: the rejection cases above are rejections of the *input*, not
	// an over-strict validator — the reference checkpoint still loads.
	var buf bytes.Buffer
	if err := WriteFleetCheckpoint(&buf, valid()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFleetCheckpoint(&buf); err != nil {
		t.Fatalf("reference checkpoint rejected: %v", err)
	}
}

func TestFleetCheckpointMissingFile(t *testing.T) {
	if _, err := ReadFleetCheckpointFile(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("missing checkpoint file did not error")
	}
}

// FuzzCheckpointDecode: the decoder fronts files users hand to -resume,
// so arbitrary bytes must produce an error, never a panic, and anything
// it accepts must survive an encode/decode cycle unchanged (a drifting
// checkpoint would silently corrupt a resumed campaign).
func FuzzCheckpointDecode(f *testing.F) {
	// Hand seeds covering the envelope's edges; the committed corpus under
	// testdata/fuzz adds valid, truncated, version-skewed and
	// trailing-garbage checkpoints.
	f.Add([]byte(`{"version":1,"fleet_id":1,"clusters":1,"done":null,"cursors":null}`))
	f.Add([]byte(`{"version":1,"fleet_id":18446744073709551615,"clusters":2,"done":[],"cursors":[{"cluster":0,"next_day":3}]}`))
	f.Add([]byte(`{"version":2,"fleet_id":1,"clusters":1,"done":null,"cursors":null}`))
	f.Add([]byte(`{"version":1,"fleet_id":1,"clusters":-1,"done":null,"cursors":null}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := ReadFleetCheckpoint(bytes.NewReader(data))
		if err != nil {
			return // rejected input; the only requirement is not panicking
		}
		var buf bytes.Buffer
		if err := WriteFleetCheckpoint(&buf, cp); err != nil {
			t.Fatalf("re-encoding accepted checkpoint failed: %v", err)
		}
		again, err := ReadFleetCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own encoder's output failed: %v", err)
		}
		if !reflect.DeepEqual(cp, again) {
			t.Fatalf("round trip changed the checkpoint:\n first: %+v\nsecond: %+v", cp, again)
		}
	})
}
