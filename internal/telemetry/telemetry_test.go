package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a.b") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("lvl")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, math.NaN(), math.Inf(1)} {
		h.Observe(v)
	}
	// NaN and Inf dropped: 5 observations.
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+5+50+500; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	p := r.Snapshot().Histograms[0]
	wantCounts := []uint64{2, 1, 1, 1} // ≤1: {0.5, 1}; ≤10: {5}; ≤100: {50}; +Inf: {500}
	for i, w := range wantCounts {
		if p.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, p.Counts[i], w, p.Counts)
		}
	}
}

func TestHistogramBoundsSanitized(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", []float64{10, math.NaN(), 1, 10, math.Inf(1), 1})
	if len(h.bounds) != 2 || h.bounds[0] != 1 || h.bounds[1] != 10 {
		t.Fatalf("bounds = %v, want [1 10]", h.bounds)
	}
}

func TestScopeNesting(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("rs2hpm").Scope("collector")
	s.Counter("gaps").Add(2)
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "rs2hpm.collector.gaps" || snap.Counters[0].Value != 2 {
		t.Fatalf("snapshot = %+v", snap.Counters)
	}
}

func TestSetEnabledDropsUpdates(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h", DurationBuckets)
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() after SetEnabled(false)")
	}
	c.Inc()
	g.Set(9)
	h.Observe(1)
	w := StartWatch()
	if w.start != 0 {
		t.Fatal("disabled StartWatch returned a live stopwatch")
	}
	w.Record(h)
	w.AddTo(c)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled updates recorded: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled counter did not record")
	}
}

func TestStopwatch(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ns", DurationBuckets)
	c := r.Counter("busy")
	w := StartWatch()
	if w.ElapsedNanos() < 0 {
		t.Fatal("negative elapsed")
	}
	w.Record(h)
	w.AddTo(c)
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
}

// The allocation contract: the hot path (counter inc, gauge set,
// histogram observe, full stopwatch cycle) allocates nothing, enabled or
// not. This is the "<1% of a node" discipline made mechanical.
func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets)
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter-inc", func() { c.Inc() }},
		{"counter-add", func() { c.Add(3) }},
		{"gauge-set", func() { g.Set(1) }},
		{"histogram-observe", func() { h.Observe(12345) }},
		{"stopwatch-record", func() { StartWatch().Record(h) }},
		{"stopwatch-addto", func() { StartWatch().AddTo(c) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
				t.Fatalf("%s allocates %.1f per op, want 0", tc.name, n)
			}
		})
	}
	t.Run("disabled", func(t *testing.T) {
		defer SetEnabled(true)
		SetEnabled(false)
		for _, tc := range cases {
			if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
				t.Fatalf("disabled %s allocates %.1f per op, want 0", tc.name, n)
			}
		}
	})
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z", "a", "m"} {
		r.Counter(n).Inc()
		r.Gauge("g." + n).Set(1)
		r.Histogram("h."+n, nil).Observe(1)
	}
	s := r.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Fatalf("counters unsorted: %+v", s.Counters)
		}
	}
	var a, b bytes.Buffer
	if err := s.WriteMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("quiesced registry encoded differently twice")
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("rs2hpm.collector.gaps").Add(3)
	r.Gauge("rs2hpmd.nodes").Set(4)
	r.Histogram("profile.store.load_ns", []float64{100, 1000}).Observe(250)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE rs2hpm_collector_gaps counter",
		"rs2hpm_collector_gaps 3",
		"# TYPE rs2hpmd_nodes gauge",
		"rs2hpmd_nodes 4",
		"# TYPE profile_store_load_ns histogram",
		`profile_store_load_ns_bucket{le="100"} 0`,
		`profile_store_load_ns_bucket{le="1000"} 1`,
		`profile_store_load_ns_bucket{le="+Inf"} 1`,
		"profile_store_load_ns_sum 250",
		"profile_store_load_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteJSONValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.Gauge("g").Set(-2)
	h := r.Histogram("h", []float64{1})
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]int64  `json:"gauges"`
		Histograms map[string]struct {
			Count   uint64 `json:"count"`
			Buckets []struct {
				Le    *float64 `json:"le"`
				Count uint64   `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["c"] != 1 || doc.Gauges["g"] != -2 {
		t.Fatalf("values wrong: %+v", doc)
	}
	hh := doc.Histograms["h"]
	if hh.Count != 1 || len(hh.Buckets) != 2 || hh.Buckets[1].Le != nil {
		t.Fatalf("histogram wrong: %+v", hh)
	}
}

func TestWriteTextDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("days").Add(2)
	h := r.Histogram("tick_ns", nil)
	h.Observe(10)
	h.Observe(30)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "days") || !strings.Contains(out, "count=2 mean=20") {
		t.Fatalf("text dump broken:\n%s", out)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"rs2hpm.collector.gaps": "rs2hpm_collector_gaps",
		"already_ok:name":       "already_ok:name",
		"9leading":              "_9leading",
		"":                      "_",
		"sp\xffce y":            "sp_ce_y",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSanitizeFloat(t *testing.T) {
	if sanitizeFloat(math.NaN()) != 0 {
		t.Error("NaN not clamped to 0")
	}
	if sanitizeFloat(math.Inf(1)) != math.MaxFloat64 {
		t.Error("+Inf not clamped")
	}
	if sanitizeFloat(math.Inf(-1)) != -math.MaxFloat64 {
		t.Error("-Inf not clamped")
	}
	if sanitizeFloat(1.5) != 1.5 {
		t.Error("finite value changed")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("rs2hpm.daemon.conns").Add(6)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	body, ct := get("/metrics")
	if !strings.Contains(body, "rs2hpm_daemon_conns 6") || !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics broken (ct=%q):\n%s", ct, body)
	}
	body, ct = get("/debug/hpmvars")
	if !json.Valid([]byte(body)) || !strings.Contains(ct, "application/json") {
		t.Fatalf("/debug/hpmvars broken (ct=%q):\n%s", ct, body)
	}
	if resp, err := http.Get(srv.URL + "/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown path: %s", resp.Status)
		}
	}
}

// Concurrent updates and snapshots must be race-clean (run with -race)
// and lose nothing when writers quiesce first.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("v", []float64{10})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}
