// The HTTP exposure: rs2hpmd (and any other long-running binary) mounts
// Handler to serve the live registry — /metrics in Prometheus text for
// scrapers, /debug/hpmvars as expvar-style JSON for humans with curl.
// The handler snapshots per request; it never blocks writers.

package telemetry

import "net/http"

// Handler serves r's live metrics at /metrics (Prometheus text) and
// /debug/hpmvars (JSON). Unknown paths 404.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WriteMetrics(w)
	})
	mux.HandleFunc("/debug/hpmvars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.Snapshot().WriteJSON(w)
	})
	return mux
}
