package telemetry

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// FuzzMetricsEncode drives the /metrics and /debug/hpmvars encoders with
// arbitrary metric names, values and histogram bounds. The invariants:
// encoding never panics or errors, the Prometheus text output obeys the
// exposition grammar line by line, the JSON output is valid JSON, and a
// quiesced snapshot encodes identically twice.
func FuzzMetricsEncode(f *testing.F) {
	f.Add("rs2hpm.collector.gaps", uint64(3), "rs2hpmd.nodes", int64(-4), "profile.store.load_ns", 1e3, 250.0, 99.5)
	f.Add("", uint64(0), "9leading", int64(1), "sp ce\x00y", -1.0, 0.0, 1e308)
	f.Add("dup", uint64(1), "dup", int64(2), "dup", 0.0, 1e308, 1e308)
	f.Fuzz(func(t *testing.T, cname string, cval uint64, gname string, gval int64, hname string, bound, v1, v2 float64) {
		r := NewRegistry()
		r.Counter(cname).Add(cval)
		r.Gauge(gname).Set(gval)
		h := r.Histogram(hname, []float64{bound, bound * 2})
		h.Observe(v1)
		h.Observe(v2)
		snap := r.Snapshot()

		var prom bytes.Buffer
		if err := snap.WriteMetrics(&prom); err != nil {
			t.Fatalf("WriteMetrics: %v", err)
		}
		checkExposition(t, prom.String())

		var prom2 bytes.Buffer
		if err := snap.WriteMetrics(&prom2); err != nil {
			t.Fatal(err)
		}
		if prom.String() != prom2.String() {
			t.Fatal("non-deterministic Prometheus encoding")
		}

		var js bytes.Buffer
		if err := snap.WriteJSON(&js); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if !json.Valid(js.Bytes()) {
			t.Fatalf("invalid JSON:\n%s", js.String())
		}

		var txt bytes.Buffer
		if err := snap.WriteText(&txt); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
	})
}

// checkExposition validates each non-comment line of Prometheus text
// output: a grammar-valid metric name (optionally with an le label),
// one space, and a parseable number.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("bad exposition line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			label := name[i:]
			name = name[:i]
			if !strings.HasPrefix(label, `{le="`) || !strings.HasSuffix(label, `"}`) {
				t.Fatalf("bad label in %q", line)
			}
		}
		for i := 0; i < len(name); i++ {
			if !promNameByte(name[i], i == 0) {
				t.Fatalf("invalid metric name %q in %q", name, line)
			}
		}
		if val != "+Inf" && val != "-Inf" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("unparseable value %q in %q: %v", val, line, err)
			}
		}
	}
}
