// Lightweight span tracing: a Stopwatch brackets one region of real work
// (a campaign stage, a store miss, a collector sweep) and records the
// elapsed wall time into a histogram or counter. Spans are values — no
// allocation, no context plumbing — and vanish entirely when telemetry
// is disabled: the clock is not even read.
//
// This file holds the only sanctioned wall-clock read in the simulator's
// dependency cone. The nondeterminism lint bars simulator packages from
// the clock because simulated results must be a pure function of the
// seed; telemetry reads it to measure the simulator's own execution and
// feeds the durations nowhere but its own histograms, so determinism of
// the simulated Result is untouched.

package telemetry

import "time"

// nowNanos reads the monotonic wall clock.
func nowNanos() int64 {
	//hpmlint:ignore nondeterminism telemetry measures the simulator's real execution; durations never feed simulated state
	return int64(time.Since(processStart))
}

// processStart anchors the monotonic readings; only differences are used.
//
//hpmlint:ignore nondeterminism process-start anchor for monotonic deltas; never observable in simulated results
var processStart = time.Now()

// Stopwatch measures one wall-clock interval. The zero value is a dead
// stopwatch (records nothing); StartWatch returns a live one unless
// telemetry is disabled, so a disabled run performs no clock reads.
type Stopwatch struct {
	start int64 // 0 = dead
}

// StartWatch starts timing. When telemetry is disabled the returned
// stopwatch is dead and every method is a no-op.
func StartWatch() Stopwatch {
	if disabled.Load() {
		return Stopwatch{}
	}
	return Stopwatch{start: nowNanos()}
}

// ElapsedNanos reports nanoseconds since StartWatch (0 for a dead watch).
func (s Stopwatch) ElapsedNanos() int64 {
	if s.start == 0 {
		return 0
	}
	return nowNanos() - s.start
}

// Record observes the elapsed nanoseconds into h.
//
//hpmlint:hotpath span close-out runs inside the engine's per-day loop
func (s Stopwatch) Record(h *Histogram) {
	if s.start == 0 {
		return
	}
	h.Observe(float64(nowNanos() - s.start))
}

// AddTo adds the elapsed nanoseconds to c (for busy-time accumulators).
//
//hpmlint:hotpath span close-out runs inside the engine's per-day loop
func (s Stopwatch) AddTo(c *Counter) {
	if s.start == 0 {
		return
	}
	if d := nowNanos() - s.start; d > 0 {
		c.Add(uint64(d))
	}
}
