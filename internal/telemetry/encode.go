// Snapshot encoders. Three formats, all deterministic for a quiesced
// registry (name-sorted, stable float formatting):
//
//   - Prometheus text exposition (WriteMetrics, served at /metrics);
//   - expvar-style JSON (WriteJSON, served at /debug/hpmvars and behind
//     the CLIs' -telemetry json);
//   - a human-readable dump (WriteText, -telemetry text).
//
// Metric names are free-form dotted strings internally; the Prometheus
// encoder sanitizes them to the exposition grammar, so arbitrary names
// (FuzzMetricsEncode feeds them) still produce well-formed output.

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// sanitizeFloat clamps non-finite aggregates to encodable sentinels:
// observation sums could overflow to ±Inf over a long enough run, and
// encoding/json refuses non-finite values — the telemetry endpoint must
// never be the thing that fails.
func sanitizeFloat(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

func floatToBits(v float64) uint64   { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// promName sanitizes a metric name to the Prometheus exposition grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*: every other rune becomes '_', an empty or
// digit-leading name gains a '_' prefix.
func promName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		if !promNameByte(name[i], i == 0) {
			ok = false
			break
		}
	}
	if ok && name != "" {
		return name
	}
	b := make([]byte, 0, len(name)+1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		if promNameByte(c, false) {
			b = append(b, c)
		} else {
			b = append(b, '_')
		}
	}
	if len(b) == 0 || !promNameByte(b[0], true) {
		b = append([]byte{'_'}, b...)
	}
	return string(b)
}

func promNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// promFloat formats a float the way the exposition format expects.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetrics writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): TYPE comments, counters and gauges as single
// samples, histograms as cumulative le-labelled buckets plus _sum and
// _count series.
func (s Snapshot) WriteMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		n := promName(c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", n)
		var cum uint64
		for i, cnt := range h.Counts {
			cum += cnt
			le := math.Inf(1)
			if i < len(h.Bounds) {
				le = h.Bounds[i]
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", n, promFloat(le), cum)
		}
		fmt.Fprintf(bw, "%s_sum %s\n", n, promFloat(sanitizeFloat(h.Sum)))
		fmt.Fprintf(bw, "%s_count %d\n", n, h.Count)
	}
	return bw.Flush()
}

// jsonHistogram is the JSON shape of one histogram.
type jsonHistogram struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []jsonBucket `json:"buckets"`
}

// jsonBucket is one non-cumulative bucket; Le is null for +Inf.
type jsonBucket struct {
	Le    *float64 `json:"le"`
	Count uint64   `json:"count"`
}

// WriteJSON writes the snapshot as an expvar-style JSON document:
// {"counters": {...}, "gauges": {...}, "histograms": {...}}. Map keys
// are the raw metric names; encoding/json sorts them, so output is
// deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	doc := struct {
		Counters   map[string]uint64        `json:"counters"`
		Gauges     map[string]int64         `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]jsonHistogram, len(s.Histograms)),
	}
	for _, c := range s.Counters {
		doc.Counters[c.Name] = c.Value
	}
	for _, g := range s.Gauges {
		doc.Gauges[g.Name] = g.Value
	}
	for _, h := range s.Histograms {
		jh := jsonHistogram{Count: h.Count, Sum: sanitizeFloat(h.Sum), Buckets: make([]jsonBucket, len(h.Counts))}
		for i, cnt := range h.Counts {
			jh.Buckets[i] = jsonBucket{Count: cnt}
			if i < len(h.Bounds) {
				le := sanitizeFloat(h.Bounds[i])
				jh.Buckets[i].Le = &le
			}
		}
		doc.Histograms[h.Name] = jh
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteText writes a human-readable dump: one line per metric, sorted,
// histograms summarised as count/mean.
func (s Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		fmt.Fprintf(bw, "%-44s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(bw, "%-44s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = sanitizeFloat(h.Sum) / float64(h.Count)
		}
		fmt.Fprintf(bw, "%-44s count=%d mean=%.4g\n", h.Name, h.Count, mean)
	}
	return bw.Flush()
}
