// Package telemetry is hpmtel: the reproduction measuring itself. The
// paper's premise is that a production system should carry an always-on,
// near-zero-overhead monitor (RS2HPM's daemon plus cron sampling cost
// under 1% of a node); this package applies the same discipline to the
// simulator — atomic counters, gauges and fixed-bucket histograms that
// the campaign engine, the profile store, the fault layer and the rs2hpm
// collection path update from their hot paths.
//
// The contract, in order of importance:
//
//   - Observation must never perturb the simulation. No metric feeds back
//     into simulated state, so the golden campaign hash is bit-identical
//     with telemetry enabled or disabled at any worker count.
//   - The hot path allocates nothing: a counter increment or histogram
//     observation is a handful of atomic operations (guarded by alloc
//     tests, not by promise).
//   - Everything is race-clean: metric state is atomics, registry
//     bookkeeping is mutex-guarded.
//   - Wall-clock reads exist only here. Simulator packages are barred
//     from the clock by the nondeterminism lint; telemetry carries the
//     single sanctioned read (span.go) and feeds durations nowhere but
//     its own histograms.
//
// Metrics live in a Registry under dotted names ("rs2hpm.collector.gaps");
// Scope prepends a component prefix. Snapshot captures a deterministic,
// name-sorted view that encode.go serializes as Prometheus text,
// expvar-style JSON, or a human dump, and http.go serves on rs2hpmd.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// disabled is the global kill switch, default off (telemetry enabled).
// The inverted sense keeps the zero value the useful one.
var disabled atomic.Bool

// SetEnabled turns the whole subsystem on or off. Disabled metrics drop
// updates and skip clock reads; readers still work (they report whatever
// accumulated while enabled). The switch exists for the overhead bench
// pair and for callers that want a hard guarantee of zero observation
// cost, not for correctness — results are identical either way.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether updates are being recorded.
func Enabled() bool { return !disabled.Load() }

// Counter is a monotonically increasing uint64. The zero value is ready
// to use, but counters normally come from a Registry so they appear in
// snapshots.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//hpmlint:hotpath counters fire inside the simulated CPU's cycle loop
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
//
//hpmlint:hotpath counters fire inside the simulated CPU's cycle loop
func (c *Counter) Add(n uint64) {
	if disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 level (queue depth, node count).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//hpmlint:hotpath gauges fire inside the engine's per-day loop
func (g *Gauge) Set(v int64) {
	if disabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the level by d (negative to decrease).
//
//hpmlint:hotpath gauges fire inside the engine's per-day loop
func (g *Gauge) Add(d int64) {
	if disabled.Load() {
		return
	}
	g.v.Add(d)
}

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed upper-bound buckets (plus an
// implicit +Inf bucket) and tracks count and sum. Bounds are fixed at
// construction; observing is lock-free and allocation-free. Non-finite
// observations are dropped so aggregates stay encodable.
type Histogram struct {
	bounds []float64 // immutable after construction; sorted, finite, deduped
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
}

// newHistogram sanitizes the bounds: non-finite entries are dropped,
// the rest sorted and deduped. A nil or empty bounds slice leaves only
// the implicit +Inf bucket.
func newHistogram(bounds []float64) *Histogram {
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if isFinite(b) {
			clean = append(clean, b)
		}
	}
	sort.Float64s(clean)
	n := 0
	for i, b := range clean {
		if i == 0 || b != clean[i-1] { //hpmlint:ignore floatcompare dedup of sorted bounds wants exact equality
			clean[n] = b
			n++
		}
	}
	clean = clean[:n]
	return &Histogram{bounds: clean, counts: make([]atomic.Uint64, len(clean)+1)}
}

// Observe records one value. NaN and ±Inf are ignored.
//
//hpmlint:hotpath observations fire per measured span; the AllocsPerRun == 0 benchmark guards the same path
func (h *Histogram) Observe(v float64) {
	if disabled.Load() || !isFinite(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// atomicFloat is a float64 updated by CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := floatToBits(floatFromBits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return floatFromBits(f.bits.Load()) }

// DurationBuckets is the standard latency bucket ladder in nanoseconds:
// 1µs to 10s, a decade apart, with a 100ns floor for the memoized fast
// paths. Wide decades keep histograms tiny (the RS2HPM ethos: coarse but
// always on).
var DurationBuckets = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// Registry owns a namespace of metrics. Registration is idempotent: the
// first caller creates the metric, later callers with the same name get
// the same instance, so package-level instrumentation can register
// eagerly without coordination.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry all standard instrumentation
// registers into — the analogue of the daemon's one shared counter file.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds if new. An existing histogram keeps its
// original bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Scope returns a view of the registry that prefixes every metric name
// with prefix + ".".
func (r *Registry) Scope(prefix string) Scope { return Scope{r: r, prefix: prefix} }

// Scope is a named namespace within a registry.
type Scope struct {
	r      *Registry
	prefix string
}

// Counter registers prefix.name in the underlying registry.
func (s Scope) Counter(name string) *Counter { return s.r.Counter(s.prefix + "." + name) }

// Gauge registers prefix.name in the underlying registry.
func (s Scope) Gauge(name string) *Gauge { return s.r.Gauge(s.prefix + "." + name) }

// Histogram registers prefix.name in the underlying registry.
func (s Scope) Histogram(name string, bounds []float64) *Histogram {
	return s.r.Histogram(s.prefix+"."+name, bounds)
}

// Scope nests a further namespace level.
func (s Scope) Scope(name string) Scope {
	return Scope{r: s.r, prefix: s.prefix + "." + name}
}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name  string
	Value uint64
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name  string
	Value int64
}

// HistogramPoint is one histogram in a snapshot. Counts[i] is the count
// for Bounds[i]; the final entry of Counts is the +Inf bucket.
type HistogramPoint struct {
	Name   string
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot is a point-in-time view of a registry, each kind sorted by
// name. Under concurrent updates it is not an atomic cut across metrics
// — fine for observability, and exact once writers quiesce. A quiesced
// registry snapshots (and therefore encodes) deterministically.
type Snapshot struct {
	Counters   []CounterPoint
	Gauges     []GaugePoint
	Histograms []HistogramPoint
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		p := HistogramPoint{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Count:  h.Count(),
			Sum:    sanitizeFloat(h.Sum()),
		}
		for i := range h.counts {
			p.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, p)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
