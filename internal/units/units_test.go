package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCyclesSeconds(t *testing.T) {
	c := Cycles(66.7e6)
	if got := c.Seconds(); !almostEqual(got, 1.0, 1e-9) {
		t.Fatalf("66.7M cycles = %v s, want 1.0", got)
	}
	if got := Cycles(0).Seconds(); got != 0 {
		t.Fatalf("0 cycles = %v s, want 0", got)
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.0); got != Cycles(66.7e6) {
		t.Fatalf("FromSeconds(1) = %v, want 66.7e6", got)
	}
	if got := FromSeconds(-1.0); got != 0 {
		t.Fatalf("FromSeconds(-1) = %v, want 0", got)
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms uint32) bool {
		s := float64(ms) / 1000.0
		back := FromSeconds(s).Seconds()
		return almostEqual(back, s, 1e-6*s+1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatePerSec(t *testing.T) {
	r := RatePerSec(17_400_000, 1.0)
	if !almostEqual(r.Millions(), 17.4, 1e-9) {
		t.Fatalf("rate = %v, want 17.4", r.Millions())
	}
	if got := RatePerSec(100, 0); got != 0 {
		t.Fatalf("zero interval rate = %v, want 0", got)
	}
	if got := RatePerSec(100, -5); got != 0 {
		t.Fatalf("negative interval rate = %v, want 0", got)
	}
}

func TestRatePerCycles(t *testing.T) {
	// 66.7M flops in 66.7M cycles = 1 flop/cycle = 66.7 Mflops.
	r := RatePerCycles(uint64(66.7e6), Cycles(66.7e6))
	if !almostEqual(r.Millions(), 66.7, 1e-6) {
		t.Fatalf("rate = %v, want 66.7", r.Millions())
	}
}

func TestRatePerSecondInverse(t *testing.T) {
	r := Rate(3.5)
	if !almostEqual(r.PerSecond(), 3.5e6, 1e-3) {
		t.Fatalf("PerSecond = %v", r.PerSecond())
	}
}

func TestGflops(t *testing.T) {
	// Paper: ~9 Mflops/node x 144 nodes ~ 1.3 Gflops.
	g := Gflops(9.0, NodeCount)
	if !almostEqual(g, 1.296, 1e-9) {
		t.Fatalf("Gflops(9,144) = %v, want 1.296", g)
	}
}

func TestPercentOfPeak(t *testing.T) {
	// Paper: 9 Mflops/node is ~3% of the 267 Mflops peak.
	p := PercentOfPeak(9.0)
	if p < 3.0 || p > 3.5 {
		t.Fatalf("PercentOfPeak(9) = %v, want ~3.37", p)
	}
	if got := PercentOfPeak(PeakMflopsPerNode); !almostEqual(got, 100, 1e-9) {
		t.Fatalf("peak should be 100%%, got %v", got)
	}
}

func TestPeakDerivation(t *testing.T) {
	// 2 FPUs x 2 flops/fma/cycle at 66.7 MHz = 266.8 Mflops ~ 267.
	derived := 4 * ClockHz / 1e6
	if !almostEqual(derived, PeakMflopsPerNode, 0.5) {
		t.Fatalf("derived peak %v disagrees with constant %v", derived, PeakMflopsPerNode)
	}
}

func TestCacheGeometry(t *testing.T) {
	if DCacheLines != 1024 {
		t.Fatalf("DCacheLines = %d, want 1024 (paper: 1024 lines of 256 bytes)", DCacheLines)
	}
	if DCacheBytes/DCacheWays/DCacheLineBytes != 256 {
		t.Fatalf("sets per way = %d, want 256", DCacheBytes/DCacheWays/DCacheLineBytes)
	}
}

func TestCacheLinesTouched(t *testing.T) {
	// Paper: for real*8 data a cache miss every 32 elements.
	if got := CacheLinesTouched(32); got != 1 {
		t.Fatalf("32 elems -> %d lines, want 1", got)
	}
	if got := CacheLinesTouched(33); got != 2 {
		t.Fatalf("33 elems -> %d lines, want 2", got)
	}
	if got := CacheLinesTouched(0); got != 0 {
		t.Fatalf("0 elems -> %d lines, want 0", got)
	}
	if got := CacheLinesTouched(-4); got != 0 {
		t.Fatalf("negative elems -> %d lines, want 0", got)
	}
}

func TestPagesTouched(t *testing.T) {
	// Paper: a TLB miss every 512 elements.
	if got := PagesTouched(512); got != 1 {
		t.Fatalf("512 elems -> %d pages, want 1", got)
	}
	if got := PagesTouched(513); got != 2 {
		t.Fatalf("513 elems -> %d pages, want 2", got)
	}
}

func TestSequentialAccessMissRatios(t *testing.T) {
	// The paper's sequential-access thought experiment: a miss every 32
	// elements means a ~3% cache-miss ratio per element touched, and a TLB
	// miss every 512 elements means ~0.2%.
	cacheRatio := 1.0 / 32.0 * 100
	tlbRatio := 1.0 / 512.0 * 100
	if !almostEqual(cacheRatio, 3.125, 1e-9) {
		t.Fatalf("sequential cache ratio = %v", cacheRatio)
	}
	if !almostEqual(tlbRatio, 0.1953125, 1e-9) {
		t.Fatalf("sequential TLB ratio = %v", tlbRatio)
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestCyclesString(t *testing.T) {
	if got := Cycles(42).String(); got != "42 cyc" {
		t.Fatalf("String = %q", got)
	}
}

func TestRateString(t *testing.T) {
	if got := Rate(17.4).String(); got != "17.400 M/s" {
		t.Fatalf("String = %q", got)
	}
}

func TestRateNonNegativeProperty(t *testing.T) {
	f := func(count uint32, secs uint16) bool {
		r := RatePerSec(uint64(count), float64(secs))
		return r >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGflopsScalesLinearly(t *testing.T) {
	f := func(m uint16) bool {
		mf := float64(m) / 100.0
		return almostEqual(Gflops(mf, 288), 2*Gflops(mf, 144), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
