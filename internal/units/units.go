// Package units defines the physical quantities and machine constants used
// throughout the SP2 simulation: cycles, floating-point operations, bytes,
// and the rates derived from them, together with the published geometry of
// the NAS SP2 RS6000/590 node (White and Dhawan, 1994).
//
// Every rate reported by the paper is "mega-something per second"; keeping
// the unit arithmetic in one tested place prevents the classic
// cycles-vs-seconds and per-node-vs-per-system mistakes.
package units

import "fmt"

// Machine constants for the NAS SP2 node (RS6000/590, POWER2).
const (
	// ClockHz is the POWER2 clock rate: 66.7 MHz.
	ClockHz = 66.7e6

	// PeakMflopsPerNode is the peak floating-point rate of one node:
	// 2 FPUs x 2 flops (fma) per cycle x 66.7 MHz = 266.8 ~ 267 Mflops.
	PeakMflopsPerNode = 267.0

	// NodeCount is the size of the NAS SP2 cluster.
	NodeCount = 144

	// DCacheBytes is the data cache capacity: 256 kB.
	DCacheBytes = 256 * 1024
	// DCacheLineBytes is the data cache line size: 256 bytes.
	DCacheLineBytes = 256
	// DCacheWays is the data-cache associativity.
	DCacheWays = 4
	// DCacheLines is the number of cache lines (1024).
	DCacheLines = DCacheBytes / DCacheLineBytes

	// ICacheBytes is the instruction cache capacity (32 kB on the 590).
	ICacheBytes = 32 * 1024
	// ICacheLineBytes is the instruction cache line size.
	ICacheLineBytes = 128
	// ICacheWays is the instruction-cache associativity.
	ICacheWays = 2

	// PageBytes is the virtual-memory page size: 4096 bytes.
	PageBytes = 4096
	// TLBEntries is the number of TLB entries: 512.
	TLBEntries = 512
	// TLBWays is the TLB associativity (2-way on POWER2).
	TLBWays = 2

	// CacheMissPenaltyCycles is the stall on a D-cache miss (paper: 8 cycles).
	CacheMissPenaltyCycles = 8
	// TLBMissPenaltyMinCycles and TLBMissPenaltyMaxCycles bound the TLB
	// reload delay (paper: 36 to 54 cycles).
	TLBMissPenaltyMinCycles = 36
	TLBMissPenaltyMaxCycles = 54

	// FPDivideCycles is the POWER2 floating divide latency (paper: 10 cycles).
	FPDivideCycles = 10
	// FPSqrtCycles is the floating square-root latency (paper: 15 cycles).
	FPSqrtCycles = 15

	// DispatchWidth is the ICU dispatch width: 4 instructions/cycle.
	DispatchWidth = 4
	// FetchWidth is the ICU prefetch width: 8 instructions/cycle.
	FetchWidth = 8

	// SwitchLatencySeconds is the High Performance Switch latency (~45 us).
	SwitchLatencySeconds = 45e-6
	// SwitchBandwidthBytesPerSec is the node-to-node bandwidth (34 MB/s).
	SwitchBandwidthBytesPerSec = 34e6

	// NodeMemoryBytes is the main memory per node (at least 128 MB).
	NodeMemoryBytes = 128 * 1024 * 1024
	// NodeDiskBytes is the local disk per node (2 GB).
	NodeDiskBytes = 2 * 1024 * 1024 * 1024

	// WordBytes is the fundamental word size used by DMA accounting
	// (a transfer moves 4 or 8 words; a word is 8 bytes for real*8 data).
	WordBytes = 8

	// Real8Bytes is the size of a double-precision element.
	Real8Bytes = 8
)

// Cycles counts processor clock cycles.
type Cycles uint64

// Seconds converts a cycle count to wall-clock seconds at the SP2 clock.
func (c Cycles) Seconds() float64 { return float64(c) / ClockHz }

// String renders the count with a unit suffix.
func (c Cycles) String() string { return fmt.Sprintf("%d cyc", uint64(c)) }

// FromSeconds converts seconds of node time to cycles at the SP2 clock.
func FromSeconds(s float64) Cycles {
	if s < 0 {
		return 0
	}
	return Cycles(s * ClockHz)
}

// Flops counts floating-point operations (an fma counts as two).
type Flops uint64

// Bytes counts bytes.
type Bytes uint64

// String renders a byte count with a binary-prefix suffix.
func (b Bytes) String() string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", uint64(b))
}

// Rate is a per-second rate expressed in "millions per second", the unit the
// paper uses for every table (Mips, Mops, Mflops, Mtransfers/s).
type Rate float64

// RatePerSec builds a Rate from a raw count over an interval in seconds.
func RatePerSec(count uint64, seconds float64) Rate {
	if seconds <= 0 {
		return 0
	}
	return Rate(float64(count) / seconds / 1e6)
}

// RatePerCycles builds a Rate from a raw count over an interval in cycles.
func RatePerCycles(count uint64, cycles Cycles) Rate {
	return RatePerSec(count, cycles.Seconds())
}

// Millions reports the numeric value in millions/second.
func (r Rate) Millions() float64 { return float64(r) }

// PerSecond reports the raw events-per-second value.
func (r Rate) PerSecond() float64 { return float64(r) * 1e6 }

// String renders the rate as the paper prints it.
func (r Rate) String() string { return fmt.Sprintf("%.3f M/s", float64(r)) }

// Gflops converts a per-node Mflops rate into a per-system Gflops rate for
// the given node count.
func Gflops(perNodeMflops float64, nodes int) float64 {
	return perNodeMflops * float64(nodes) / 1000.0
}

// PercentOfPeak reports a per-node Mflops rate as a percentage of node peak.
func PercentOfPeak(perNodeMflops float64) float64 {
	return 100 * perNodeMflops / PeakMflopsPerNode
}

// CacheLinesTouched reports how many distinct cache lines a sequential scan
// of n real*8 elements touches (one miss every 32 elements at a 256 B line).
func CacheLinesTouched(nElems int) int {
	if nElems <= 0 {
		return 0
	}
	bytes := nElems * Real8Bytes
	return (bytes + DCacheLineBytes - 1) / DCacheLineBytes
}

// PagesTouched reports how many distinct pages a sequential scan of n real*8
// elements touches (one TLB miss every 512 elements at a 4 KB page).
func PagesTouched(nElems int) int {
	if nElems <= 0 {
		return 0
	}
	bytes := nElems * Real8Bytes
	return (bytes + PageBytes - 1) / PageBytes
}
