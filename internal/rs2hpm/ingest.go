package rs2hpm

// IngestQueue: the bounded buffer between the network side of sustained
// collection and the sample log. Collectors offer samples; a single drain
// goroutine appends them to the log. The queue's depth bounds how far the
// network side can run ahead of the log, and the backpressure policy says
// what happens at the bound: block the collector (lossless, the default)
// or drop the sample with an explicit gap mark (bounded latency). Nothing
// is ever silently lost — every drop and every rejection is counted in
// telemetry and reconciled as a gap in the log, so
//
//	offered == enqueued + dropped
//	enqueued == captured + rejected        (once the queue is closed)
//
// cross-foot exactly, the same discipline the faults coverage ledger
// enforces for the campaign path.

import (
	"sync"
	"sync/atomic"
	"time"
)

// BackpressurePolicy says what Offer does when the queue is full.
type BackpressurePolicy uint8

const (
	// BlockOnFull makes Offer wait for space: lossless, and the
	// collector's sweep rate degrades to the log's drain rate.
	BlockOnFull BackpressurePolicy = iota
	// DropWithGap makes Offer discard the sample and record a gap mark
	// for it: the sweep rate is preserved and the loss is explicit.
	DropWithGap
)

// String names the policy for flags and telemetry labels.
func (p BackpressurePolicy) String() string {
	if p == DropWithGap {
		return "drop"
	}
	return "block"
}

// IngestConfig tunes an IngestQueue. The zero value is a 256-deep
// blocking queue with no drain throttle.
type IngestConfig struct {
	// Depth is the queue capacity in samples; zero selects 256.
	Depth int
	// Policy is the full-queue behavior.
	Policy BackpressurePolicy
	// SinkDelay, when non-zero, sleeps this long before each log append —
	// a drain throttle that models a slow sample-log writer. It exists
	// for load tests that need to force the backpressure path
	// deterministically; production configs leave it zero.
	SinkDelay time.Duration
}

// IngestStats is a point-in-time reading of the queue's ledger columns.
type IngestStats struct {
	Offered  uint64 // samples presented to Offer
	Enqueued uint64 // samples accepted into the queue
	Dropped  uint64 // samples rejected at the bound (policy or shutdown), gap-marked
	Captured uint64 // samples the drain appended to the log
	Rejected uint64 // samples the log refused (out-of-order), gap-marked
}

// IngestQueue is a bounded sample queue draining into a SampleLog.
type IngestQueue struct {
	cfg     IngestConfig
	log     *SampleLog
	ch      chan Sample
	closeCh chan struct{}
	wg      sync.WaitGroup
	once    sync.Once

	offered  atomic.Uint64
	enqueued atomic.Uint64
	dropped  atomic.Uint64
	captured atomic.Uint64
	rejected atomic.Uint64
}

// NewIngestQueue builds the queue and starts its drain goroutine; Close
// stops it.
func NewIngestQueue(log *SampleLog, cfg IngestConfig) *IngestQueue {
	if cfg.Depth <= 0 {
		cfg.Depth = 256
	}
	q := &IngestQueue{
		cfg:     cfg,
		log:     log,
		ch:      make(chan Sample, cfg.Depth),
		closeCh: make(chan struct{}),
	}
	q.wg.Add(1)
	go q.drain()
	return q
}

// Offer presents one sample for ingestion. It reports whether the sample
// was accepted; a false return means the sample was dropped and a gap
// mark now stands in its place. Under BlockOnFull a full queue blocks the
// caller until space frees (or the queue closes); under DropWithGap it
// drops immediately.
func (q *IngestQueue) Offer(s Sample) bool {
	q.offered.Add(1)
	telIngestOffered.Inc()
	select {
	case <-q.closeCh:
		// The drain is gone; a buffered send would succeed and strand the
		// sample, so refuse up front. (Producers racing Close can still
		// slip one into the buffer — that's why Close happens-after
		// producers stop is part of the contract.)
		q.drop(s, "ingest queue closed")
		return false
	default:
	}
	if q.cfg.Policy == DropWithGap {
		select {
		case q.ch <- s:
			q.enqueued.Add(1)
			telIngestEnqueued.Inc()
			return true
		default:
			q.drop(s, "ingest queue full")
			return false
		}
	}
	select {
	case q.ch <- s:
		q.enqueued.Add(1)
		telIngestEnqueued.Inc()
		return true
	case <-q.closeCh:
		// A producer racing shutdown: refuse rather than wedge, and keep
		// the ledger exact.
		q.drop(s, "ingest queue closed")
		return false
	}
}

// drop records the loss: one counter tick, one gap mark.
func (q *IngestQueue) drop(s Sample, reason string) {
	q.dropped.Add(1)
	telIngestDropped.Inc()
	q.log.AddGap(Gap{AtSeconds: s.AtSeconds, Node: s.Node, Reason: reason})
}

// drain is the consumer: queue -> log, one goroutine, FIFO.
func (q *IngestQueue) drain() {
	defer q.wg.Done()
	for {
		select {
		case s := <-q.ch:
			q.ingest(s)
		case <-q.closeCh:
			// Closed: drain whatever the producers managed to enqueue,
			// then exit. Close happens-after producers stop, so an empty
			// channel here is final.
			for {
				select {
				case s := <-q.ch:
					q.ingest(s)
				default:
					return
				}
			}
		}
	}
}

// ingest appends one sample, throttled by SinkDelay when configured. A
// sample the log refuses (out-of-order for its node) becomes a gap mark:
// rejected, not silently lost.
func (q *IngestQueue) ingest(s Sample) {
	if q.cfg.SinkDelay > 0 {
		time.Sleep(q.cfg.SinkDelay)
	}
	if err := q.log.Add(s); err != nil {
		q.rejected.Add(1)
		telIngestRejected.Inc()
		q.log.AddGap(Gap{AtSeconds: s.AtSeconds, Node: s.Node, Reason: err.Error()})
		return
	}
	q.captured.Add(1)
	telIngestCaptured.Inc()
}

// Close stops ingestion: further Offers are refused (and gap-marked), the
// drain empties what was already accepted, and Close returns once the
// drain goroutine has exited. Callers must stop their producers first if
// they need offered == enqueued + dropped to be final. Idempotent.
func (q *IngestQueue) Close() {
	q.once.Do(func() { close(q.closeCh) })
	q.wg.Wait()
}

// Stats reads the ledger columns. Exact once Close has returned and all
// producers have stopped; a live reading is a consistent-enough snapshot
// for monitoring.
func (q *IngestQueue) Stats() IngestStats {
	return IngestStats{
		Offered:  q.offered.Load(),
		Enqueued: q.enqueued.Load(),
		Dropped:  q.dropped.Load(),
		Captured: q.captured.Load(),
		Rejected: q.rejected.Load(),
	}
}

// Depth reports the configured capacity.
func (q *IngestQueue) Depth() int { return q.cfg.Depth }
