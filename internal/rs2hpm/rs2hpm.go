// Package rs2hpm reimplements the measurement tool suite the paper is
// built on: Jussi Maki's POWER2 hardware-counter tools with Bill Saphir's
// parallel extensions. It consists of
//
//   - a per-host daemon that serves hardware-counter snapshots over TCP
//     (the real rs2hpmd, reached by a cron script every 15 minutes);
//   - a client speaking the daemon's line protocol;
//   - a collector that samples a set of daemons and accumulates a
//     time-series of snapshots, wrap-correcting 32-bit counters between
//     samples.
//
// The kernel extension of the original is replaced by direct access to
// the simulated SCU monitor; everything from the wire up is real code
// paths (stdlib net, text protocol, concurrent serving).
package rs2hpm

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/hpm"
	"repro/internal/simclock"
)

// Source provides extended counter totals for one node. node.Node
// implements it; the extension from the 32-bit hardware registers to
// 64-bit software totals is the daemon-side "multipass sampling" of the
// original tools.
type Source interface {
	NodeID() int
	Counters() hpm.Counts64
}

// Armer is the optional extension a Source may implement to let the
// daemon re-program its counter selection remotely (ARM command).
type Armer interface {
	ArmSelection(name string) error
}

// TrySource is the optional extension a Source may implement when its
// reads can fail (a flaky kernel extension, an injected fault schedule —
// see faults.UnreliableSource). The daemon prefers TryCounters when
// available and turns a failure into an ERR response, which the collector
// retries and, past its retry budget, gap-marks.
type TrySource interface {
	TryCounters() (hpm.Counts64, error)
}

// Wire protocol versions. Version 1 is the original single-GET line
// protocol (NODES/COUNTERS/ARM/QUIT); version 2 adds VERSION and the
// batched MGET command. A v2 daemon still speaks every v1 command, and a
// v2 client falls back to single-GET sweeps against a v1 daemon.
const (
	ProtocolV1 = 1
	ProtocolV2 = 2
	// LatestProtocol is what NewDaemon serves.
	LatestProtocol = ProtocolV2
)

// Daemon serves counter snapshots for a set of nodes over TCP. One daemon
// can front many simulated nodes (the real deployment ran one per host;
// serving many keeps tests cheap without changing the protocol).
type Daemon struct {
	protocol int // immutable after construction
	mu       sync.Mutex
	sources  map[int]Source // guarded by mu
	ln       net.Listener   // guarded by mu
	wg       sync.WaitGroup
	closed   bool // guarded by mu
}

// NewDaemon builds a daemon fronting the given sources, speaking the
// latest wire protocol.
func NewDaemon(sources ...Source) *Daemon {
	return NewDaemonProtocol(LatestProtocol, sources...)
}

// NewDaemonProtocol builds a daemon pinned to an older wire protocol
// version — the knob mixed-version fleets (and their tests) use to stand
// up daemons that predate batched collection.
func NewDaemonProtocol(protocol int, sources ...Source) *Daemon {
	if protocol < ProtocolV1 || protocol > LatestProtocol {
		panic(fmt.Sprintf("rs2hpm: unknown protocol version %d", protocol))
	}
	d := &Daemon{protocol: protocol, sources: make(map[int]Source, len(sources))}
	for _, s := range sources {
		//hpmlint:ignore guarded construction precedes publication; no other goroutine can hold d yet
		d.sources[s.NodeID()] = s
	}
	return d
}

// AddSource registers another node (e.g. as the cluster boots).
func (d *Daemon) AddSource(s Source) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sources[s.NodeID()] = s
}

// Start listens on addr (use "127.0.0.1:0" in tests) and serves until
// Close. It returns the bound address.
func (d *Daemon) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rs2hpm: listen: %w", err)
	}
	d.mu.Lock()
	d.ln = ln
	d.mu.Unlock()
	d.wg.Add(1)
	go d.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (d *Daemon) acceptLoop(ln net.Listener) {
	defer d.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer conn.Close()
			d.serve(conn)
		}()
	}
}

// serve handles one client connection.
func (d *Daemon) serve(conn net.Conn) {
	telDaemonConns.Inc()
	sc := bufio.NewScanner(countingReader{conn, telDaemonBytesRx})
	w := bufio.NewWriter(countingWriter{conn, telDaemonBytesTx})
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		telDaemonCmds.Inc()
		switch strings.ToUpper(fields[0]) {
		case "NODES":
			d.writeNodes(w)
		case "COUNTERS":
			if len(fields) != 2 {
				errf(w, "ERR usage: COUNTERS <node>\n")
				break
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				errf(w, "ERR bad node id %q\n", fields[1])
				break
			}
			d.writeCounters(w, id)
		case "ARM":
			if len(fields) != 3 {
				errf(w, "ERR usage: ARM <node|*> <selection>\n")
				break
			}
			d.arm(w, fields[1], fields[2])
		case "VERSION":
			if d.protocol < ProtocolV2 {
				// A v1 daemon predates VERSION; the client reads the
				// unknown-command ERR as "version 1".
				errf(w, "ERR unknown command %q\n", fields[0])
				break
			}
			fmt.Fprintf(w, "OK RS2HPM %d\n", d.protocol)
		case "MGET":
			if d.protocol < ProtocolV2 {
				errf(w, "ERR unknown command %q\n", fields[0])
				break
			}
			d.writeBatch(w, fields[1:])
		case "QUIT":
			w.Flush()
			return
		default:
			errf(w, "ERR unknown command %q\n", fields[0])
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// errf writes an ERR response and counts it.
func errf(w *bufio.Writer, format string, args ...any) {
	telDaemonErrs.Inc()
	fmt.Fprintf(w, format, args...)
}

// nodeIDs lists the served node IDs in ascending order.
func (d *Daemon) nodeIDs() []int {
	d.mu.Lock()
	ids := make([]int, 0, len(d.sources))
	for id := range d.sources {
		ids = append(ids, id)
	}
	d.mu.Unlock()
	sort.Ints(ids)
	return ids
}

func (d *Daemon) writeNodes(w *bufio.Writer) {
	for _, id := range d.nodeIDs() {
		fmt.Fprintf(w, "NODE %d\n", id)
	}
	fmt.Fprintf(w, "END\n")
}

// readNode resolves one node's extended totals, preferring the fallible
// read when the source supports it. Shared by the single-GET and batched
// paths so both report identical failures.
func (d *Daemon) readNode(id int) (hpm.Counts64, error) {
	d.mu.Lock()
	src, ok := d.sources[id]
	d.mu.Unlock()
	if !ok {
		return hpm.Counts64{}, fmt.Errorf("no such node %d", id)
	}
	if ts, ok := src.(TrySource); ok {
		return ts.TryCounters()
	}
	return src.Counters(), nil
}

func (d *Daemon) writeCounters(w *bufio.Writer, id int) {
	totals, err := d.readNode(id)
	if err != nil {
		if strings.HasPrefix(err.Error(), "no such node") {
			errf(w, "ERR %v\n", err)
		} else {
			errf(w, "ERR read node %d: %v\n", id, err)
		}
		return
	}
	fmt.Fprintf(w, "OK %d\n", id)
	writeCounterLines(w, totals)
	fmt.Fprintf(w, "END\n")
}

// writeCounterLines emits the per-event C lines of one snapshot.
func writeCounterLines(w *bufio.Writer, totals hpm.Counts64) {
	for ev := hpm.Event(0); ev < hpm.NumEvents; ev++ {
		info := hpm.Info(ev)
		fmt.Fprintf(w, "C %d %s.%d %s %d %d\n",
			ev, info.Group, info.Index, info.Label,
			totals.Get(hpm.User, ev), totals.Get(hpm.System, ev))
	}
}

// arm re-programs one node's (or every node's, for "*") counter selection.
func (d *Daemon) arm(w *bufio.Writer, nodeArg, selection string) {
	d.mu.Lock()
	var targets []Source
	if nodeArg == "*" {
		for _, s := range d.sources {
			targets = append(targets, s)
		}
	} else if id, err := strconv.Atoi(nodeArg); err == nil {
		if s, ok := d.sources[id]; ok {
			targets = append(targets, s)
		}
	}
	d.mu.Unlock()
	if len(targets) == 0 {
		errf(w, "ERR no such node %q\n", nodeArg)
		return
	}
	armed := 0
	for _, s := range targets {
		a, ok := s.(Armer)
		if !ok {
			errf(w, "ERR node %d cannot re-arm\n", s.NodeID())
			return
		}
		if err := a.ArmSelection(selection); err != nil {
			errf(w, "ERR %v\n", err)
			return
		}
		armed++
	}
	fmt.Fprintf(w, "OK armed %d node(s) with %s\n", armed, selection)
}

// Close stops the daemon and waits for in-flight connections.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	ln := d.ln
	d.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	d.wg.Wait()
}

// Client speaks the daemon protocol over one TCP connection.
type Client struct {
	addr  string
	conn  net.Conn
	sc    *bufio.Scanner
	w     *bufio.Writer
	proto int // 0 until negotiated; then the daemon's wire version
}

// Dial connects to a daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rs2hpm: dial %s: %w", addr, err)
	}
	telClientDials.Inc()
	return &Client{
		addr: addr,
		conn: conn,
		sc:   bufio.NewScanner(countingReader{conn, telClientBytesRx}),
		w:    bufio.NewWriter(countingWriter{conn, telClientBytesTx}),
	}, nil
}

// Addr reports the daemon address this client dialed.
func (c *Client) Addr() string { return c.addr }

// Close terminates the session.
func (c *Client) Close() error {
	fmt.Fprintf(c.w, "QUIT\n")
	c.w.Flush()
	return c.conn.Close()
}

var errProtocol = errors.New("rs2hpm: protocol error")

// Nodes lists the node IDs the daemon serves.
func (c *Client) Nodes() ([]int, error) {
	fmt.Fprintf(c.w, "NODES\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var ids []int
	for c.sc.Scan() {
		line := strings.TrimSpace(c.sc.Text())
		if line == "END" {
			return ids, nil
		}
		if strings.HasPrefix(line, "ERR") {
			return nil, fmt.Errorf("%w: %s", errProtocol, line)
		}
		var id int
		if _, err := fmt.Sscanf(line, "NODE %d", &id); err != nil {
			return nil, fmt.Errorf("%w: bad line %q", errProtocol, line)
		}
		ids = append(ids, id)
	}
	return nil, fmt.Errorf("%w: connection closed mid-response", errProtocol)
}

// Counters fetches the current extended counter totals for one node.
func (c *Client) Counters(id int) (hpm.Counts64, error) {
	var snap hpm.Counts64
	fmt.Fprintf(c.w, "COUNTERS %d\n", id)
	if err := c.w.Flush(); err != nil {
		return snap, err
	}
	first := true
	for c.sc.Scan() {
		line := strings.TrimSpace(c.sc.Text())
		if strings.HasPrefix(line, "ERR") {
			return snap, fmt.Errorf("%w: %s", errProtocol, line)
		}
		if first {
			if !strings.HasPrefix(line, "OK") {
				return snap, fmt.Errorf("%w: expected OK, got %q", errProtocol, line)
			}
			first = false
			continue
		}
		if line == "END" {
			return snap, nil
		}
		if err := parseCounterLine(line, &snap); err != nil {
			return snap, err
		}
	}
	return snap, fmt.Errorf("%w: connection closed mid-response", errProtocol)
}

// parseCounterLine decodes one "C <ev> <group.idx> <label> <user> <sys>"
// line into the snapshot. Shared by the single-GET and batched decoders.
func parseCounterLine(line string, snap *hpm.Counts64) error {
	fields := strings.Fields(line)
	if len(fields) != 6 || fields[0] != "C" {
		return fmt.Errorf("%w: bad counter line %q", errProtocol, line)
	}
	ev, err1 := strconv.Atoi(fields[1])
	user, err2 := strconv.ParseUint(fields[4], 10, 64)
	sys, err3 := strconv.ParseUint(fields[5], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || ev < 0 || ev >= int(hpm.NumEvents) {
		return fmt.Errorf("%w: bad counter line %q", errProtocol, line)
	}
	snap.Counts[hpm.User][ev] = user
	snap.Counts[hpm.System][ev] = sys
	return nil
}

// Arm asks the daemon to re-program a node's counter selection; pass
// node -1 to arm every node the daemon serves.
func (c *Client) Arm(node int, selection string) error {
	target := strconv.Itoa(node)
	if node < 0 {
		target = "*"
	}
	fmt.Fprintf(c.w, "ARM %s %s\n", target, selection)
	if err := c.w.Flush(); err != nil {
		return err
	}
	if !c.sc.Scan() {
		return fmt.Errorf("%w: connection closed", errProtocol)
	}
	line := strings.TrimSpace(c.sc.Text())
	if !strings.HasPrefix(line, "OK") {
		return fmt.Errorf("%w: %s", errProtocol, line)
	}
	return nil
}

// Sample is one timestamped snapshot of one node's extended counters.
type Sample struct {
	AtSeconds float64
	Node      int
	Snap      hpm.Counts64
}

// Gap marks a scheduled sample that was never captured: the collector
// records one when a node read fails past its retry budget, so the
// record is explicit about what is missing instead of silently shorter.
type Gap struct {
	AtSeconds float64
	Node      int
	Reason    string
}

// SampleLog accumulates samples and answers wrap-corrected delta queries.
// It is the in-memory form of the files the 15-minute cron job wrote.
type SampleLog struct {
	mu      sync.Mutex
	samples map[int][]Sample // guarded by mu; per node, in time order
	gaps    map[int][]Gap    // guarded by mu; per node, in time order
}

// NewSampleLog returns an empty log.
func NewSampleLog() *SampleLog {
	return &SampleLog{samples: make(map[int][]Sample), gaps: make(map[int][]Gap)}
}

// AddGap records a missing sample for a node.
func (l *SampleLog) AddGap(g Gap) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gaps[g.Node] = append(l.gaps[g.Node], g)
}

// Gaps returns a copy of the gap markers for one node.
func (l *SampleLog) Gaps(node int) []Gap {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Gap, len(l.gaps[node]))
	copy(out, l.gaps[node])
	return out
}

// GapCount reports the total gap markers across all nodes.
func (l *SampleLog) GapCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, gs := range l.gaps {
		n += len(gs)
	}
	return n
}

// Add appends a sample; samples for one node must arrive in time order.
func (l *SampleLog) Add(s Sample) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ss := l.samples[s.Node]
	if len(ss) > 0 && ss[len(ss)-1].AtSeconds > s.AtSeconds {
		return fmt.Errorf("rs2hpm: out-of-order sample for node %d: %v after %v",
			s.Node, s.AtSeconds, ss[len(ss)-1].AtSeconds)
	}
	l.samples[s.Node] = append(ss, s)
	return nil
}

// Nodes lists node IDs with at least one sample.
func (l *SampleLog) Nodes() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]int, 0, len(l.samples))
	for id := range l.samples {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Len reports the number of samples held for a node.
func (l *SampleLog) Len(node int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples[node])
}

// TotalSamples reports the samples held across all nodes — the "captured"
// column of the collection ledger.
func (l *SampleLog) TotalSamples() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ss := range l.samples {
		n += len(ss)
	}
	return n
}

// Samples returns a copy of the samples for one node.
func (l *SampleLog) Samples(node int) []Sample {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Sample, len(l.samples[node]))
	copy(out, l.samples[node])
	return out
}

// DeltaOver returns the wrap-corrected counter delta and the covered
// observation time between samples in [t0, t1] for one node. ok is false
// when no interval in the window is usable. On a clean log this equals
// the old endpoint difference; on a log with counter resets it is the
// reset-aware sum DeltaOverReport computes.
func (l *SampleLog) DeltaOver(node int, t0, t1 float64) (d hpm.Delta, seconds float64, ok bool) {
	d, seconds, _, ok = l.DeltaOverReport(node, t0, t1)
	return d, seconds, ok
}

// DeltaOverReport walks the samples in [t0, t1] pairwise and sums the
// deltas of the usable intervals. An interval whose counters ran
// backwards spans a counter reset (daemon restart, node reboot): its
// counts are unknowable, so it is excluded from both the delta and the
// covered seconds and reported in resets instead — the sampling record
// re-baselines rather than inventing counts. ok is false when no usable
// interval exists. Extended counters never wrap in a campaign; 32-bit
// wrap handling lives in hpm.Accumulator on the daemon side.
func (l *SampleLog) DeltaOverReport(node int, t0, t1 float64) (d hpm.Delta, covered float64, resets int, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var prev *Sample
	for i := range l.samples[node] {
		s := &l.samples[node][i]
		if s.AtSeconds < t0 || s.AtSeconds > t1 {
			continue
		}
		if prev != nil {
			if hpm.RanBackwards(prev.Snap, s.Snap) {
				resets++
			} else {
				d.Add(hpm.Sub64(prev.Snap, s.Snap))
				covered += s.AtSeconds - prev.AtSeconds
				ok = true
			}
		}
		prev = s
	}
	if !ok {
		return hpm.Delta{}, 0, resets, false
	}
	return d, covered, resets, true
}

// CollectorConfig tunes the collector's handling of failed node reads.
// The zero value retries nothing and gap-marks on the first failure.
type CollectorConfig struct {
	// Retries is how many extra attempts a failed node read gets within
	// one sweep before the sample is abandoned and gap-marked.
	Retries int
	// Backoff, when non-nil, runs before retry attempt k (1-based) — the
	// hook for a sleep, a simulated-clock wait, or test instrumentation.
	Backoff func(attempt int)
}

// Collector samples a daemon's nodes into a log.
type Collector struct {
	addr string
	log  *SampleLog
	cfg  CollectorConfig
}

// NewCollector builds a collector for the daemon at addr with no retry
// budget (every read failure becomes a gap).
func NewCollector(addr string, log *SampleLog) *Collector {
	return NewCollectorConfig(addr, log, CollectorConfig{})
}

// NewCollectorConfig builds a collector with explicit failure handling.
func NewCollectorConfig(addr string, log *SampleLog, cfg CollectorConfig) *Collector {
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	return &Collector{addr: addr, log: log, cfg: cfg}
}

// CollectOnce dials the daemon, samples every node it serves, and appends
// the samples stamped with atSeconds. It is the body of the cron script.
// A node whose read keeps failing past the retry budget does not abort
// the sweep: the miss is gap-marked in the log, the remaining nodes are
// still sampled, and the returned error summarises the abandoned reads.
func (c *Collector) CollectOnce(atSeconds float64) error {
	telSweeps.Inc()
	cl, err := Dial(c.addr)
	if err != nil {
		telSweepErrors.Inc()
		return err
	}
	defer cl.Close()
	ids, err := cl.Nodes()
	if err != nil {
		telSweepErrors.Inc()
		return err
	}
	var abandoned []int
	for _, id := range ids {
		snap, err := c.readWithRetry(cl, id)
		if err != nil {
			c.log.AddGap(Gap{AtSeconds: atSeconds, Node: id, Reason: err.Error()})
			telGaps.Inc()
			abandoned = append(abandoned, id)
			continue
		}
		if err := c.log.Add(Sample{AtSeconds: atSeconds, Node: id, Snap: snap}); err != nil {
			telSweepErrors.Inc()
			return err
		}
		telSamples.Inc()
	}
	if len(abandoned) > 0 {
		telSweepErrors.Inc()
		return fmt.Errorf("rs2hpm: sweep at %vs gap-marked %d node read(s) %v after %d attempt(s) each",
			atSeconds, len(abandoned), abandoned, c.cfg.Retries+1)
	}
	return nil
}

// readWithRetry reads one node's counters, retrying with backoff up to
// the configured budget.
func (c *Collector) readWithRetry(cl *Client, id int) (hpm.Counts64, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			telRetries.Inc()
			if c.cfg.Backoff != nil {
				telBackoffs.Inc()
				c.cfg.Backoff(attempt)
			}
		}
		snap, err := cl.Counters(id)
		if err == nil {
			return snap, nil
		}
		lastErr = err
	}
	return hpm.Counts64{}, fmt.Errorf("rs2hpm: collect node %d: %w", id, lastErr)
}

// Schedule wires the collector to a simulation clock at the given period
// (the 15-minute cron job). onErr receives collection failures; a nil
// onErr panics on failure, since a silently broken collector would fake
// machine idleness. It returns the stop function.
func (c *Collector) Schedule(clock *simclock.Clock, period simclock.Time, onErr func(error)) (stop func()) {
	return clock.Every(period, period, func(at simclock.Time) {
		if err := c.CollectOnce(at.Seconds()); err != nil {
			if onErr == nil {
				panic(fmt.Sprintf("rs2hpm: scheduled collection failed: %v", err))
			}
			onErr(err)
		}
	})
}
