package rs2hpm

// Property test for the ingestion queue's accounting invariant. Under any
// randomized schedule — depth, policy, drain throttle, producer count,
// and a sprinkle of out-of-order stamps, all drawn from a seeded stream —
// the ledger must cross-foot exactly:
//
//	offered  == enqueued + dropped
//	enqueued == captured + rejected     (after Close)
//
// and every dropped or rejected sample leaves exactly one gap mark in the
// log, so the log reconciles against the counters with no slack. Run via
// `make property` (go test -run Property -race).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/hpm"
	"repro/internal/rng"
)

func TestPropertyIngestAccounting(t *testing.T) {
	const trials = 16
	for trial := 0; trial < trials; trial++ {
		t.Run(fmt.Sprintf("trial-%02d", trial), func(t *testing.T) {
			r := rng.Stream(0xB0BCAFE, uint64(trial))

			cfg := IngestConfig{Depth: r.IntRange(1, 8)}
			if r.Bool(0.5) {
				cfg.Policy = DropWithGap
			}
			if r.Bool(0.5) {
				// Throttle the drain so shallow queues actually fill.
				cfg.SinkDelay = time.Duration(r.IntRange(1, 200)) * time.Microsecond
			}
			log := NewSampleLog()
			q := NewIngestQueue(log, cfg)

			// Producers share disjoint node sets, so each node's stamps
			// come from one goroutine and disorder is injected, not raced.
			producers := r.IntRange(1, 4)
			nodesEach := r.IntRange(1, 3)
			steps := r.IntRange(40, 250)
			disorderP := r.Range(0, 0.2)

			var offered, disordered int
			var mu sync.Mutex
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					pr := rng.Stream(0xB0BCAFE, uint64(trial)<<8|uint64(p))
					clock := make([]float64, nodesEach)
					myOffered, myDisordered := 0, 0
					for i := 0; i < steps; i++ {
						n := pr.Intn(nodesEach)
						node := p*nodesEach + n
						var at float64
						if clock[n] > 1 && pr.Bool(disorderP) {
							// Deliberately step backwards: the log must
							// refuse this sample if it drains in order.
							at = clock[n] - 1
							myDisordered++
						} else {
							clock[n]++
							at = clock[n]
						}
						q.Offer(Sample{AtSeconds: at, Node: node, Snap: hpm.Counts64{}})
						myOffered++
					}
					mu.Lock()
					offered += myOffered
					disordered += myDisordered
					mu.Unlock()
				}(p)
			}
			wg.Wait() // producers stop first: the Close contract
			q.Close()

			st := q.Stats()
			if st.Offered != uint64(offered) {
				t.Fatalf("queue counted %d offered, driver offered %d", st.Offered, offered)
			}
			if st.Offered != st.Enqueued+st.Dropped {
				t.Fatalf("offered %d != enqueued %d + dropped %d", st.Offered, st.Enqueued, st.Dropped)
			}
			if st.Enqueued != st.Captured+st.Rejected {
				t.Fatalf("enqueued %d != captured %d + rejected %d after Close", st.Enqueued, st.Captured, st.Rejected)
			}
			if cfg.Policy == BlockOnFull && st.Dropped != 0 {
				t.Fatalf("blocking queue dropped %d samples", st.Dropped)
			}
			// Log reconciliation: captured samples all landed, and every
			// drop/rejection left exactly one gap mark.
			if got := log.TotalSamples(); uint64(got) != st.Captured {
				t.Fatalf("log holds %d samples, queue captured %d", got, st.Captured)
			}
			if got := log.GapCount(); uint64(got) != st.Dropped+st.Rejected {
				t.Fatalf("log holds %d gap marks, queue dropped %d + rejected %d",
					got, st.Dropped, st.Rejected)
			}
			// A disordered offer is rejected only if it survives to the
			// drain, so rejected <= disordered; but nothing else may be.
			if st.Rejected > uint64(disordered) {
				t.Fatalf("rejected %d samples but only %d were offered out of order", st.Rejected, disordered)
			}
			t.Logf("depth=%d policy=%s delay=%v producers=%d: %+v (disordered %d)",
				cfg.Depth, cfg.Policy, cfg.SinkDelay, producers, st, disordered)
		})
	}
}

// TestPropertyIngestOfferAfterClose: the shutdown edge of the invariant —
// a producer that outlives Close gets refused, counted, and gap-marked,
// never wedged and never silently lost.
func TestPropertyIngestOfferAfterClose(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		r := rng.Stream(0xDEADD0, uint64(trial))
		log := NewSampleLog()
		q := NewIngestQueue(log, IngestConfig{Depth: r.IntRange(1, 4)})
		q.Close()
		late := r.IntRange(1, 20)
		for i := 0; i < late; i++ {
			if q.Offer(Sample{AtSeconds: float64(i), Node: 0}) {
				t.Fatal("closed queue accepted a sample")
			}
		}
		st := q.Stats()
		if st.Dropped != uint64(late) || st.Captured != 0 {
			t.Fatalf("late offers: %+v, want %d dropped", st, late)
		}
		if got := log.GapCount(); got != late {
			t.Fatalf("%d late offers left %d gap marks", late, got)
		}
	}
}
