package rs2hpm

// CollectorPool: persistent connections for sustained collection. The
// paper's collector dialed every daemon afresh each 10-minute sweep —
// fine at cron cadence, but a sustained service re-dialing the fleet
// every few milliseconds spends its time in TCP handshakes. The pool
// keeps a bounded number of idle connections per daemon, health-checks a
// connection before reuse, and re-dials on demand with the same
// Retries/Backoff discipline the sweep-level collector already uses.

import (
	"fmt"
	"sync"
)

// PoolConfig tunes a CollectorPool. The zero value keeps 2 idle
// connections per daemon, never retries a failed dial, and skips the
// reuse-time health check.
type PoolConfig struct {
	// Size is the maximum idle connections kept per daemon address;
	// excess returns are closed (evicted). Zero selects 2.
	Size int
	// Retries is how many extra dial attempts a daemon gets before Get
	// gives up.
	Retries int
	// Backoff, when non-nil, runs before dial retry attempt k (1-based).
	Backoff func(attempt int)
	// HealthCheck verifies an idle connection with a VERSION probe before
	// handing it out; a connection that fails the probe is discarded and
	// replaced by a fresh dial.
	HealthCheck bool
}

// CollectorPool holds persistent client connections to a fleet of
// daemons, keyed by address.
type CollectorPool struct {
	cfg    PoolConfig
	mu     sync.Mutex
	idle   map[string][]*Client // guarded by mu
	closed bool                 // guarded by mu
}

// NewCollectorPool builds an empty pool; connections are dialed on
// demand by Get.
func NewCollectorPool(cfg PoolConfig) *CollectorPool {
	if cfg.Size <= 0 {
		cfg.Size = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	return &CollectorPool{cfg: cfg, idle: make(map[string][]*Client)}
}

// Get returns a connection to the daemon at addr: a pooled idle one when
// available (health-checked if configured), a fresh dial otherwise. The
// caller must return it with Put or drop it with Discard.
func (p *CollectorPool) Get(addr string) (*Client, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, fmt.Errorf("rs2hpm: pool is closed")
		}
		var c *Client
		if conns := p.idle[addr]; len(conns) > 0 {
			c = conns[len(conns)-1]
			p.idle[addr] = conns[:len(conns)-1]
		}
		p.mu.Unlock()
		if c == nil {
			break // nothing idle: dial
		}
		if p.cfg.HealthCheck && !p.healthy(c) {
			telPoolHealthFails.Inc()
			c.Close()
			continue // try the next idle conn, or fall through to dial
		}
		telPoolReuses.Inc()
		return c, nil
	}
	return p.dial(addr)
}

// healthy probes the connection with VERSION. Any well-formed response —
// including a v1 daemon's unknown-command ERR — proves the connection
// alive; a transport or framing failure condemns it.
func (p *CollectorPool) healthy(c *Client) bool {
	_, err := c.ServerVersion()
	return err == nil
}

// dial opens a fresh connection with the configured retry budget.
func (p *CollectorPool) dial(addr string) (*Client, error) {
	var lastErr error
	for attempt := 0; attempt <= p.cfg.Retries; attempt++ {
		if attempt > 0 && p.cfg.Backoff != nil {
			p.cfg.Backoff(attempt)
		}
		c, err := Dial(addr)
		if err == nil {
			telPoolDials.Inc()
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("rs2hpm: pool dial %s after %d attempt(s): %w",
		addr, p.cfg.Retries+1, lastErr)
}

// Put returns a healthy connection to the pool for reuse. Past the
// per-daemon idle cap — or after Close — the connection is closed
// instead.
func (p *CollectorPool) Put(c *Client) {
	if c == nil {
		return
	}
	p.mu.Lock()
	if !p.closed && len(p.idle[c.addr]) < p.cfg.Size {
		p.idle[c.addr] = append(p.idle[c.addr], c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	telPoolEvictions.Inc()
	c.Close()
}

// Discard closes a connection the caller observed failing; the next Get
// will dial a replacement.
func (p *CollectorPool) Discard(c *Client) {
	if c == nil {
		return
	}
	telPoolDiscards.Inc()
	c.Close()
}

// IdleCount reports the idle connections currently pooled for addr.
func (p *CollectorPool) IdleCount(addr string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[addr])
}

// Close closes every idle connection and rejects further Gets.
// Connections checked out at Close time are closed by their holders via
// Put (which now evicts) or Discard.
func (p *CollectorPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = make(map[string][]*Client)
	p.mu.Unlock()
	for _, conns := range idle {
		for _, c := range conns {
			c.Close()
		}
	}
}
