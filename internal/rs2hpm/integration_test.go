package rs2hpm

// The end-to-end integration test for the collection path: a daemon
// fronting real simulated nodes (one of them flaky, one of them dead) on
// a loopback TCP port, the real collector driven against it with a retry
// budget, and the telemetry HTTP endpoint served the way cmd/rs2hpmd
// serves it. This is the whole paper pipeline in miniature — kernel →
// counters → daemon → wire → collector → log — with the failure handling
// and the self-measurement layered on, asserted from the outside.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/hpm"
	"repro/internal/kernels"
	"repro/internal/leakcheck"
	"repro/internal/node"
	"repro/internal/telemetry"
)

// alwaysFails is a Source whose reads never succeed — the dead kernel
// extension the collector must gap-mark without aborting the sweep.
type alwaysFails struct{ id int }

func (a alwaysFails) NodeID() int            { return a.id }
func (a alwaysFails) Counters() hpm.Counts64 { return hpm.Counts64{} }
func (a alwaysFails) TryCounters() (hpm.Counts64, error) {
	return hpm.Counts64{}, errors.New("injected permanent failure")
}

func TestIntegrationCollectorAgainstFlakyDaemon(t *testing.T) {
	// Bracket the whole test: daemon, web server, and every per-sweep
	// dial must be returned by the deferred Closes below. Registered
	// first so it runs after them.
	before := leakcheck.Take()
	defer leakcheck.Check(t, before)

	k, ok := kernels.ByName("cfd")
	if !ok {
		t.Fatal("cfd kernel missing")
	}

	// The cluster: node 0 healthy, node 1 flaky (transient failures the
	// retry budget should absorb most sweeps), node 2 permanently dead.
	healthy := node.New(node.Config{ID: 0})
	flaky := node.New(node.Config{ID: 1})
	s0, s1 := k.New(1), k.New(2)

	daemon := NewDaemon(
		healthy,
		faults.NewUnreliableSource(flaky, 42, 0.55),
		alwaysFails{id: 2},
	)
	addr, err := daemon.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Close()

	// The telemetry endpoint, wired exactly as cmd/rs2hpmd wires it.
	web := httptest.NewServer(telemetry.Handler(telemetry.Default))
	defer web.Close()

	// Counter baselines: the registry is process-wide and other tests in
	// this package feed the same handles, so assert on deltas.
	sweeps0 := telSweeps.Value()
	samples0 := telSamples.Value()
	gaps0 := telGaps.Value()
	retries0 := telRetries.Value()
	backoffs0 := telBackoffs.Value()
	daemonErrs0 := telDaemonErrs.Value()
	clientRx0 := telClientBytesRx.Value()
	daemonTx0 := telDaemonBytesTx.Value()

	log := NewSampleLog()
	backoffs := 0
	col := NewCollectorConfig(addr, log, CollectorConfig{
		Retries: 3,
		Backoff: func(attempt int) { backoffs++ },
	})

	const sweepCount = 6
	gapSweeps := 0
	for i := 0; i < sweepCount; i++ {
		// Advance the counters between sweeps, as the daemon's tick loop
		// does.
		healthy.RunLimited(s0, 50_000)
		flaky.RunLimited(s1, 50_000)
		err := col.CollectOnce(float64(i) * 900)
		// Node 2 fails past any budget, so every sweep must report the
		// abandoned read — and still deliver the other nodes.
		if err == nil {
			t.Fatalf("sweep %d: want gap-marking error, got nil", i)
		}
		if !strings.Contains(err.Error(), "gap-marked") {
			t.Fatalf("sweep %d: unexpected error: %v", i, err)
		}
		gapSweeps++
	}

	// The healthy node delivered every sweep; the dead node none.
	if got := log.Len(0); got != sweepCount {
		t.Errorf("healthy node samples = %d, want %d", got, sweepCount)
	}
	if got := log.Len(2); got != 0 {
		t.Errorf("dead node samples = %d, want 0", got)
	}
	if got := len(log.Gaps(2)); got != sweepCount {
		t.Errorf("dead node gaps = %d, want %d", got, sweepCount)
	}
	// Flaky node: every scheduled sample is either captured or explicitly
	// gap-marked — nothing silently missing.
	if got := log.Len(1) + len(log.Gaps(1)); got != sweepCount {
		t.Errorf("flaky node samples+gaps = %d, want %d", got, sweepCount)
	}
	// The healthy node's counters moved between sweeps.
	if d, secs, ok := log.DeltaOver(0, 0, float64(sweepCount)*900); !ok || secs <= 0 {
		t.Errorf("no usable delta for healthy node (ok=%v secs=%v)", ok, secs)
	} else if d.Get(hpm.User, hpm.EvCycles) == 0 {
		t.Error("healthy node delta shows no cycles")
	}

	// Telemetry: the collection path measured itself. The dead node costs
	// 3 retries per sweep, so retries ≥ 3*sweeps; every retry ran the
	// backoff hook; every abandoned read gap-marked.
	if got := telSweeps.Value() - sweeps0; got != sweepCount {
		t.Errorf("sweeps counter delta = %d, want %d", got, sweepCount)
	}
	if got := telGaps.Value() - gaps0; got != uint64(len(log.Gaps(1)))+uint64(sweepCount) {
		t.Errorf("gaps counter delta = %d, want %d", got, len(log.Gaps(1))+sweepCount)
	}
	if got := telSamples.Value() - samples0; got != uint64(log.Len(0)+log.Len(1)+log.Len(2)) {
		t.Errorf("samples counter delta = %d, want %d", got, log.Len(0)+log.Len(1)+log.Len(2))
	}
	retryDelta := telRetries.Value() - retries0
	if retryDelta < uint64(3*sweepCount) {
		t.Errorf("retries counter delta = %d, want >= %d", retryDelta, 3*sweepCount)
	}
	if got := telBackoffs.Value() - backoffs0; got != uint64(backoffs) || backoffs == 0 {
		t.Errorf("backoffs counter delta = %d, hook saw %d", got, backoffs)
	}
	// Every failed read produced a daemon-side ERR response.
	if got := telDaemonErrs.Value() - daemonErrs0; got < uint64((3+1)*sweepCount) {
		t.Errorf("daemon errors delta = %d, want >= %d (dead node, %d attempts/sweep)", got, 4*sweepCount, 4)
	}
	// Bytes moved on the wire, both ends.
	if telClientBytesRx.Value() == clientRx0 || telDaemonBytesTx.Value() == daemonTx0 {
		t.Error("wire byte counters did not move")
	}

	// The /metrics endpoint serves the same live counters in Prometheus
	// text — the acceptance criterion's `curl /metrics`.
	body := httpGet(t, web.URL+"/metrics")
	for _, want := range []string{
		"# TYPE rs2hpm_collector_sweeps counter",
		"rs2hpm_collector_sweeps",
		"rs2hpm_collector_gaps",
		"rs2hpm_collector_retries",
		"rs2hpm_daemon_bytes_tx",
		"rs2hpm_client_bytes_rx",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Spot-check one live value against the in-process counter.
	wantLine := "rs2hpm_collector_sweeps " + uitoa(telSweeps.Value())
	if !strings.Contains(body, wantLine) {
		t.Errorf("/metrics lacks %q in:\n%s", wantLine, firstLines(body, 30))
	}

	// And the expvar-style JSON endpoint decodes with the same names.
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/debug/hpmvars")), &doc); err != nil {
		t.Fatalf("/debug/hpmvars invalid JSON: %v", err)
	}
	if doc.Counters["rs2hpm.collector.sweeps"] != telSweeps.Value() {
		t.Errorf("/debug/hpmvars sweeps = %d, want %d",
			doc.Counters["rs2hpm.collector.sweeps"], telSweeps.Value())
	}
	if _, ok := doc.Counters["rs2hpm.daemon.conns"]; !ok {
		t.Error("/debug/hpmvars missing rs2hpm.daemon.conns")
	}

	if gapSweeps != sweepCount {
		t.Fatalf("only %d of %d sweeps exercised the gap path", gapSweeps, sweepCount)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
