package rs2hpm

// Failure-path tests for the collection stack: the daemon's ERR response
// for fallible sources, the collector's retry budget and gap-marking, and
// the reset-aware delta segmentation the reducer relies on when a log
// spans a daemon restart.

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/hpm"
)

// TestDaemonReportsFailedRead: a source whose every read fails turns into
// an ERR response on the wire, not a hang or a bogus snapshot.
func TestDaemonReportsFailedRead(t *testing.T) {
	dead := faults.NewUnreliableSource(newFakeSource(4), 1, 1)
	_, addr := startDaemon(t, dead)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Counters(4); err == nil {
		t.Fatal("failing source read succeeded over the wire")
	} else if !strings.Contains(err.Error(), "read node 4") {
		t.Fatalf("wrong error for failed read: %v", err)
	}
	// The connection survives the ERR: the next command still works.
	if ids, err := c.Nodes(); err != nil || len(ids) != 1 {
		t.Fatalf("connection unusable after ERR: ids=%v err=%v", ids, err)
	}
}

// TestCollectorRetriesPastTransientFailures: with a retry budget large
// enough, a flaky source's sweep completes with samples and no gaps, and
// the backoff hook fires once per retry.
func TestCollectorRetriesPastTransientFailures(t *testing.T) {
	flaky := faults.NewUnreliableSource(newFakeSource(7), 99, 0.5)
	_, addr := startDaemon(t, flaky)
	log := NewSampleLog()
	backoffs := 0
	col := NewCollectorConfig(addr, log, CollectorConfig{
		Retries: 50, // vanishingly unlikely to exhaust at rate 0.5
		Backoff: func(attempt int) {
			if attempt < 1 {
				t.Fatalf("backoff attempt %d out of range", attempt)
			}
			backoffs++
		},
	})
	for sweep := 0; sweep < 20; sweep++ {
		if err := col.CollectOnce(float64(sweep) * 900); err != nil {
			t.Fatalf("sweep %d failed despite retry budget: %v", sweep, err)
		}
	}
	if got := log.Len(7); got != 20 {
		t.Fatalf("collected %d samples, want 20", got)
	}
	if log.GapCount() != 0 {
		t.Fatalf("retried sweeps still gap-marked %d reads", log.GapCount())
	}
	_, fails := flaky.Stats()
	if fails == 0 {
		t.Fatal("flaky source never failed; the test exercised nothing")
	}
	if backoffs != int(fails) {
		t.Fatalf("backoff ran %d times for %d failures", backoffs, fails)
	}
}

// TestCollectorGapMarksAbandonedReads: past the retry budget the sweep
// gap-marks the node, keeps collecting the others, and reports the miss.
func TestCollectorGapMarksAbandonedReads(t *testing.T) {
	dead := faults.NewUnreliableSource(newFakeSource(2), 1, 1)
	healthy := newFakeSource(9)
	_, addr := startDaemon(t, dead, healthy)
	log := NewSampleLog()
	col := NewCollectorConfig(addr, log, CollectorConfig{Retries: 3})
	err := col.CollectOnce(900)
	if err == nil {
		t.Fatal("sweep with a dead node reported success")
	}
	if !strings.Contains(err.Error(), "gap-marked 1 node") {
		t.Fatalf("sweep error does not describe the gap: %v", err)
	}
	if log.Len(9) != 1 {
		t.Fatal("healthy node was not collected after the dead one failed")
	}
	gaps := log.Gaps(2)
	if len(gaps) != 1 || gaps[0].AtSeconds != 900 || gaps[0].Node != 2 {
		t.Fatalf("gap marker wrong: %+v", gaps)
	}
	reads, _ := dead.Stats()
	if reads != 4 { // 1 attempt + 3 retries
		t.Fatalf("dead node read %d times, want 4", reads)
	}
}

// TestDeltaOverSegmentsAtResets: a log spanning a counter reset excludes
// the reset-crossing interval from delta and covered time instead of
// panicking or inventing counts, and a clean log is unchanged from the
// endpoint difference.
func TestDeltaOverSegmentsAtResets(t *testing.T) {
	log := NewSampleLog()
	at := func(sec float64, cycles uint64) {
		var s hpm.Counts64
		s.Counts[hpm.User][hpm.EvCycles] = cycles
		if err := log.Add(Sample{AtSeconds: sec, Node: 1, Snap: s}); err != nil {
			t.Fatal(err)
		}
	}
	at(0, 1000)
	at(900, 2000)  // +1000 over 900 s
	at(1800, 3000) // +1000 over 900 s
	at(2700, 50)   // daemon restarted: totals re-based below the previous read
	at(3600, 1050) // +1000 over 900 s

	d, covered, resets, ok := log.DeltaOverReport(1, 0, 3600)
	if !ok {
		t.Fatal("segmented window reported no usable interval")
	}
	if got := d.Get(hpm.User, hpm.EvCycles); got != 3000 {
		t.Fatalf("reset-aware delta %d cycles, want 3000", got)
	}
	if covered != 2700 {
		t.Fatalf("covered %v seconds, want 2700", covered)
	}
	if resets != 1 {
		t.Fatalf("detected %d resets, want 1", resets)
	}

	// Clean sub-window: identical to the endpoint difference.
	d2, sec2, ok2 := log.DeltaOver(1, 0, 1800)
	if !ok2 || sec2 != 1800 || d2.Get(hpm.User, hpm.EvCycles) != 2000 {
		t.Fatalf("clean window delta=%d sec=%v ok=%v, want 2000/1800/true",
			d2.Get(hpm.User, hpm.EvCycles), sec2, ok2)
	}

	// A window holding only the reset-crossing interval has no usable data.
	if _, _, ok := log.DeltaOver(1, 1800, 2700); ok {
		t.Fatal("reset-only window claimed a usable delta")
	}
}
