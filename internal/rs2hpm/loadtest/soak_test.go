package loadtest

// The soak suite: wall-bounded runs of the collection service against
// fleets at fault rates {0, flaky, dead(+slow)}, each bracketed by a
// goroutine/fd leak check and closed with an exact cross-foot of the
// sample ledger. `make soak-smoke` runs exactly these tests under -race;
// the durations are chosen so the whole suite stays CI-cheap while still
// covering hundreds of sweeps.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/rs2hpm"
	"repro/internal/telemetry"
)

// soakBudget is the wall budget per soak case — long enough for hundreds
// of sweeps over loopback, short enough to keep `make ci` pleasant.
const soakBudget = 400 * time.Millisecond

// TestSoakLedgerAcrossFaultRates is the acceptance matrix: fault rates
// {0, flaky, dead}, batched and single-GET, each soaked for the wall
// budget with zero leaked goroutines/fds and an exactly cross-footed
// ledger.
func TestSoakLedgerAcrossFaultRates(t *testing.T) {
	cases := []struct {
		name      string
		spec      Spec
		wantGaps  bool // fault injection must actually produce gaps
		wantFails bool // dead daemons must surface as sweep failures
	}{
		{
			name: "fault-rate-zero",
			spec: Spec{Healthy: 3, NodesPerDaemon: 4, Collectors: 3, Batch: true, Seed: 1},
		},
		{
			name: "fault-rate-zero-single-get",
			spec: Spec{Healthy: 3, NodesPerDaemon: 4, Collectors: 3, Batch: false, Seed: 1},
		},
		{
			name:     "flaky",
			spec:     Spec{Healthy: 2, Flaky: 2, NodesPerDaemon: 4, FlakyRate: 0.6, Collectors: 4, Batch: true, Retries: 1, Seed: 42},
			wantGaps: true,
		},
		{
			name:      "dead-and-slow",
			spec:      Spec{Healthy: 2, Dead: 2, Slow: 1, NodesPerDaemon: 3, SlowDelay: 100 * time.Microsecond, Collectors: 4, Batch: true, Seed: 7},
			wantFails: true,
		},
		{
			name:      "mixed-version-fleet",
			spec:      Spec{Healthy: 4, Dead: 1, NodesPerDaemon: 4, LegacyEvery: 2, Collectors: 4, Batch: true, Seed: 9},
			wantFails: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := leakcheck.Take()
			h, err := New(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			sweeps := h.SoakFor(soakBudget)
			h.Close()
			leakcheck.Check(t, before)

			if sweeps < 10 {
				t.Fatalf("soak managed only %d sweeps; the run proves nothing", sweeps)
			}
			if err := h.Verify(); err != nil {
				t.Fatal(err)
			}
			l := h.Ledger()
			if tc.wantGaps && l.Gapped == 0 {
				t.Error("flaky fleet produced no gap-marked reads")
			}
			if !tc.wantGaps && l.Gapped != 0 {
				t.Errorf("fault-free reads gap-marked %d times", l.Gapped)
			}
			if tc.wantFails && l.SweepFailures == 0 {
				t.Error("dead daemons produced no sweep failures")
			}
			// Healthy-fleet capture is lossless under the default
			// blocking policy: every offered read lands.
			if !tc.wantGaps && l.Captured != l.Offered {
				t.Errorf("captured %d of %d offered reads with no faults injected", l.Captured, l.Offered)
			}
			t.Logf("%s: %d sweeps, offered %d, captured %d, gap rate %.4f",
				tc.name, sweeps, l.Offered, l.Captured, l.GapRate())
		})
	}
}

// TestSoakGapRateBounded: under a seeded flaky fleet with a retry budget,
// the gap rate stays within the analytically expected band. With failure
// probability p and r retries, a read is abandoned with probability
// p^(r+1); the flaky half of the fleet at p=0.5, r=2 abandons ~12.5% of
// its reads, so the fleet-wide rate must sit well under that and above
// zero.
func TestSoakGapRateBounded(t *testing.T) {
	h, err := New(Spec{
		Healthy: 2, Flaky: 2, NodesPerDaemon: 4,
		FlakyRate: 0.5, Retries: 2,
		Collectors: 4, Batch: true, Seed: 1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.SoakFor(soakBudget)
	h.Close()
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	l := h.Ledger()
	rate := l.GapRate()
	// Flaky nodes are half the fleet; their abandon probability is
	// 0.5^3 = 12.5%, fleet-wide ~6.25%. Bound generously: the seeded
	// schedule wobbles at finite sweep counts, but an order-of-magnitude
	// excursion means retries or accounting broke.
	if rate <= 0 {
		t.Fatal("flaky fleet produced a zero gap rate; injection is dead")
	}
	if rate > 0.15 {
		t.Fatalf("gap rate %.4f exceeds bound 0.15; retry budget not absorbing transients", rate)
	}
	if l.Gapped != l.Gaps() {
		t.Fatalf("blocking policy dropped/rejected samples: %+v", l)
	}
}

// TestSoakBackpressureDrop forces the bounded queue to its limit: a
// throttled drain behind a shallow queue under the drop policy must shed
// load, and every shed sample must be a counted drop with exactly one
// gap mark — the ledger still cross-foots to the sample.
func TestSoakBackpressureDrop(t *testing.T) {
	before := leakcheck.Take()
	h, err := New(Spec{
		Healthy: 2, NodesPerDaemon: 8,
		Collectors: 2, Batch: true, Seed: 5,
		QueueDepth: 2, Policy: rs2hpm.DropWithGap, SinkDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.SoakFor(soakBudget)
	h.Close()
	leakcheck.Check(t, before)

	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	l := h.Ledger()
	if l.Dropped == 0 {
		t.Fatal("throttled drain behind a 2-deep queue dropped nothing; backpressure is not engaging")
	}
	if l.Captured == 0 {
		t.Fatal("drop policy shed everything; the queue is not draining")
	}
	// Spot-check the gap marks name the queue, not the network.
	for _, node := range h.Log.Nodes() {
		for _, g := range h.Log.Gaps(node) {
			if !strings.Contains(g.Reason, "ingest queue") {
				t.Fatalf("unexpected gap reason on healthy fleet: %q", g.Reason)
			}
		}
	}
}

// TestSoakBlockingPolicyIsLossless: the same throttled drain under the
// blocking policy sheds nothing — sweeps slow down instead, and every
// offered sample is captured.
func TestSoakBlockingPolicyIsLossless(t *testing.T) {
	h, err := New(Spec{
		Healthy: 2, NodesPerDaemon: 8,
		Collectors: 2, Batch: true, Seed: 5,
		QueueDepth: 2, Policy: rs2hpm.BlockOnFull, SinkDelay: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.SoakFor(soakBudget / 2)
	h.Close()
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	l := h.Ledger()
	if l.Dropped != 0 || l.Captured != l.Offered {
		t.Fatalf("blocking policy lost samples: %+v", l)
	}
}

// TestSoakPoolReusesConnections: a sustained run must not dial per sweep
// — the pool's reuse count dwarfs its dial count on a healthy fleet.
func TestSoakPoolReusesConnections(t *testing.T) {
	// The pool counters are process-wide telemetry; assert on deltas.
	dials := telemetry.Default.Counter("rs2hpm.pool.dials")
	reuses := telemetry.Default.Counter("rs2hpm.pool.reuses")
	dials0, reuses0 := dials.Value(), reuses.Value()

	h, err := New(Spec{Healthy: 3, NodesPerDaemon: 2, Collectors: 3, Batch: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := h.Sweep(); err != nil {
			t.Fatal(err)
		}
	}
	h.Close()
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	l := h.Ledger()
	if l.DaemonSweeps != 150 {
		t.Fatalf("daemon sweeps = %d, want 150", l.DaemonSweeps)
	}
	// 150 daemon-sweeps over 3 persistent connections: a handful of
	// dials, everything else reuse.
	d, r := dials.Value()-dials0, reuses.Value()-reuses0
	if d > 9 {
		t.Errorf("pool dialed %d times for 150 daemon-sweeps; connections are not persisting", d)
	}
	if r < 100 {
		t.Errorf("pool reused connections only %d times for 150 daemon-sweeps", r)
	}
}

// TestSoakDeterministicGapPattern: same seed, same flaky fleet, same
// sweep count — the gap pattern per node is identical run to run. The
// collectors race, but every fault draw comes from the node's own
// substream, so concurrency cannot smear the schedule.
func TestSoakDeterministicGapPattern(t *testing.T) {
	run := func() map[int]int {
		h, err := New(Spec{
			Healthy: 1, Flaky: 2, NodesPerDaemon: 3,
			FlakyRate: 0.5, Retries: 1,
			Collectors: 3, Batch: true, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			h.Sweep()
		}
		h.Close()
		if err := h.Verify(); err != nil {
			t.Fatal(err)
		}
		gaps := map[int]int{}
		for _, node := range h.Log.Nodes() {
			gaps[node] = len(h.Log.Gaps(node))
		}
		return gaps
	}
	a, b := run(), run()
	for node, n := range a {
		if b[node] != n {
			t.Fatalf("node %d gapped %d times in run A, %d in run B", node, n, b[node])
		}
	}
}
