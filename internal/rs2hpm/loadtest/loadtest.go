// Package loadtest is the load/soak harness for the sustained collection
// service: it stands up an in-process fleet of rs2hpm daemons in four
// variants — healthy, flaky (seeded transient read failures), dead
// (connection refused), and slow (delayed reads) — and drives a pooled,
// batched, backpressured collection Service against them. The harness is
// the proof layer for the service's contracts: after any run, Verify
// cross-foots the sample ledger exactly (captured + gapped + dropped +
// rejected == offered, gaps reconciled against the log) the way the
// faults coverage ledger cross-foots a campaign. Soak tests bracket a
// harness with leakcheck to prove Close returns every goroutine and
// socket.
package loadtest

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/hpm"
	"repro/internal/rs2hpm"
)

// Spec sizes a harness fleet and its collection service. The zero value
// is useless; Normalize fills serviceable defaults.
type Spec struct {
	// Fleet shape: daemon counts per variant.
	Healthy int // daemons whose reads always succeed
	Flaky   int // daemons whose node reads fail transiently (seeded)
	Dead    int // daemons that refuse connections
	Slow    int // daemons whose node reads stall for SlowDelay

	// NodesPerDaemon is the node count each live daemon fronts (default 4).
	NodesPerDaemon int
	// FlakyRate is the per-read failure probability on flaky daemons
	// (default 0.5).
	FlakyRate float64
	// SlowDelay is the per-read stall on slow daemons (default 200µs).
	SlowDelay time.Duration
	// Seed keys every fault schedule; same seed, same failure pattern.
	Seed uint64
	// LegacyEvery pins every k-th live daemon to wire protocol v1 so the
	// service's batch path exercises mixed-version fallback (0 = all v2).
	LegacyEvery int

	// Service shape, passed through to rs2hpm.ServiceConfig.
	Collectors int
	PoolSize   int
	QueueDepth int
	Policy     rs2hpm.BackpressurePolicy
	SinkDelay  time.Duration // drain throttle, forces backpressure
	Batch      bool
	Retries    int
}

// Normalize fills defaults in place and returns the spec for chaining.
func (s Spec) Normalize() Spec {
	if s.NodesPerDaemon <= 0 {
		s.NodesPerDaemon = 4
	}
	if s.FlakyRate <= 0 {
		s.FlakyRate = 0.5
	}
	if s.SlowDelay <= 0 {
		s.SlowDelay = 200 * time.Microsecond
	}
	return s
}

// LiveDaemons counts the daemons that accept connections.
func (s Spec) LiveDaemons() int { return s.Healthy + s.Flaky + s.Slow }

// memSource is a cheap Source: an atomic instruction counter expanded
// into a counter snapshot on read. It keeps sweep cost in the wire and
// service layers, where the harness wants it, not in simulation.
type memSource struct {
	id int
	n  atomic.Uint64
}

func (m *memSource) NodeID() int { return m.id }

func (m *memSource) Counters() hpm.Counts64 {
	n := m.n.Load()
	var c hpm.Counts64
	c.Counts[hpm.User][hpm.EvCycles] = 2 * n
	c.Counts[hpm.User][hpm.EvFXU0Instr] = n
	c.Counts[hpm.User][hpm.EvFPU0Instr] = n / 2
	c.Counts[hpm.System][hpm.EvFXU0Instr] = n / 10
	return c
}

// slowSource stalls every read — the daemon that answers, eventually.
type slowSource struct {
	*memSource
	delay time.Duration
}

func (s *slowSource) TryCounters() (hpm.Counts64, error) {
	time.Sleep(s.delay)
	return s.Counters(), nil
}

// Harness is an assembled fleet plus the service collecting from it.
type Harness struct {
	Spec    Spec
	Log     *rs2hpm.SampleLog
	Service *rs2hpm.Service

	daemons []*rs2hpm.Daemon
	sources []*memSource
	addrs   []string
	sweeps  int
}

// New builds and starts the fleet, then the service. Close the harness
// to release everything.
func New(spec Spec) (*Harness, error) {
	spec = spec.Normalize()
	h := &Harness{Spec: spec, Log: rs2hpm.NewSampleLog()}

	nextNode := 0
	newNodes := func() []*memSource {
		srcs := make([]*memSource, spec.NodesPerDaemon)
		for i := range srcs {
			srcs[i] = &memSource{id: nextNode}
			nextNode++
		}
		h.sources = append(h.sources, srcs...)
		return srcs
	}
	startDaemon := func(build func([]*memSource) []rs2hpm.Source) error {
		srcs := newNodes()
		proto := rs2hpm.LatestProtocol
		if spec.LegacyEvery > 0 && len(h.daemons)%spec.LegacyEvery == spec.LegacyEvery-1 {
			proto = rs2hpm.ProtocolV1
		}
		d := rs2hpm.NewDaemonProtocol(proto, build(srcs)...)
		addr, err := d.Start("127.0.0.1:0")
		if err != nil {
			h.Close()
			return err
		}
		h.daemons = append(h.daemons, d)
		h.addrs = append(h.addrs, addr)
		return nil
	}

	for i := 0; i < spec.Healthy; i++ {
		err := startDaemon(func(srcs []*memSource) []rs2hpm.Source {
			out := make([]rs2hpm.Source, len(srcs))
			for j, s := range srcs {
				out[j] = s
			}
			return out
		})
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < spec.Flaky; i++ {
		err := startDaemon(func(srcs []*memSource) []rs2hpm.Source {
			out := make([]rs2hpm.Source, len(srcs))
			for j, s := range srcs {
				out[j] = faults.NewUnreliableSource(s, spec.Seed, spec.FlakyRate)
			}
			return out
		})
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < spec.Slow; i++ {
		err := startDaemon(func(srcs []*memSource) []rs2hpm.Source {
			out := make([]rs2hpm.Source, len(srcs))
			for j, s := range srcs {
				out[j] = &slowSource{memSource: s, delay: spec.SlowDelay}
			}
			return out
		})
		if err != nil {
			return nil, err
		}
	}
	// Dead daemons: bind a port, remember it, close the listener. Dials
	// get connection-refused — the crashed daemon of the fleet.
	for i := 0; i < spec.Dead; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			h.Close()
			return nil, err
		}
		addr := ln.Addr().String()
		ln.Close()
		h.addrs = append(h.addrs, addr)
	}

	svc, err := rs2hpm.NewService(rs2hpm.ServiceConfig{
		Addrs:      h.addrs,
		Collectors: spec.Collectors,
		Batch:      spec.Batch,
		Retries:    spec.Retries,
		Pool:       rs2hpm.PoolConfig{Size: spec.PoolSize, HealthCheck: true},
		Queue: rs2hpm.IngestConfig{
			Depth:     spec.QueueDepth,
			Policy:    spec.Policy,
			SinkDelay: spec.SinkDelay,
		},
	}, h.Log)
	if err != nil {
		h.Close()
		return nil, err
	}
	h.Service = svc
	return h, nil
}

// Sweep advances every node's counters and runs one fleet-wide sweep.
// Sweep stamps are the sweep index in seconds, so per-node sample order
// is monotonic by construction. The returned error reports daemon-level
// failures (expected whenever the fleet has dead members).
func (h *Harness) Sweep() error {
	h.sweeps++
	for _, s := range h.sources {
		s.n.Add(10_000)
	}
	return h.Service.SweepOnce(float64(h.sweeps))
}

// Sweeps reports how many sweeps have run.
func (h *Harness) Sweeps() int { return h.sweeps }

// SoakFor sweeps continuously until the wall budget is spent, returning
// the sweep count. At least one sweep always runs.
func (h *Harness) SoakFor(budget time.Duration) int {
	deadline := time.Now().Add(budget)
	n := 0
	for {
		h.Sweep() // daemon-level failures are the ledger's business
		n++
		if !time.Now().Before(deadline) {
			return n
		}
	}
}

// Close shuts down the service, then the daemons. Idempotent.
func (h *Harness) Close() {
	if h.Service != nil {
		h.Service.Close()
	}
	for _, d := range h.daemons {
		d.Close()
	}
	h.daemons = nil
}

// Ledger reads the service's sample accounting (exact after Close).
func (h *Harness) Ledger() rs2hpm.ServiceLedger { return h.Service.Ledger() }

// Verify cross-foots the ledger against itself, against the sample log,
// and against the fleet's scheduled workload. Call it after Close.
func (h *Harness) Verify() error {
	l := h.Ledger()
	if err := l.CrossFoot(); err != nil {
		return err
	}
	if got, want := uint64(h.Log.TotalSamples()), l.Captured; got != want {
		return fmt.Errorf("loadtest: log holds %d samples, ledger captured %d", got, want)
	}
	if got, want := uint64(h.Log.GapCount()), l.Gaps(); got != want {
		return fmt.Errorf("loadtest: log holds %d gap marks, ledger gapped+dropped+rejected %d", got, want)
	}
	// Every live daemon answers NODES on a loopback socket, so the
	// scheduled node reads are exactly sweeps x live nodes...
	scheduled := uint64(h.sweeps * h.Spec.LiveDaemons() * h.Spec.NodesPerDaemon)
	if l.Offered != scheduled {
		return fmt.Errorf("loadtest: offered %d node reads, scheduled %d", l.Offered, scheduled)
	}
	// ...and every dead daemon is a whole-sweep failure each time.
	wantFails := uint64(h.sweeps * h.Spec.Dead)
	if l.SweepFailures != wantFails {
		return fmt.Errorf("loadtest: %d sweep failures, want %d (dead daemons x sweeps)", l.SweepFailures, wantFails)
	}
	return nil
}
