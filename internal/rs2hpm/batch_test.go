package rs2hpm

// Table-driven tests for the batched wire command (MGET) and its version
// negotiation: v2 batches, v1 fallback, partial-batch failure, ERR
// propagation, and 32-bit wrap correction across a batch boundary.

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/hpm"
)

// failingSource always errors — the dead kernel extension, batch-side.
type failingSource struct{ id int }

func (f failingSource) NodeID() int            { return f.id }
func (f failingSource) Counters() hpm.Counts64 { return hpm.Counts64{} }
func (f failingSource) TryCounters() (hpm.Counts64, error) {
	return hpm.Counts64{}, errors.New("injected permanent failure")
}

func TestBatchCounters(t *testing.T) {
	cases := []struct {
		name     string
		protocol int
		sources  func() []Source
		ids      []int
		// wantErr[i] true means entry i must carry a per-node error.
		wantErr      []bool
		wantVersion  int
		wantFallback bool // the client must have downgraded to v1
	}{
		{
			name:     "v2-all-healthy",
			protocol: ProtocolV2,
			sources: func() []Source {
				return []Source{newFakeSource(0), newFakeSource(1), newFakeSource(2)}
			},
			ids:         []int{0, 1, 2},
			wantErr:     []bool{false, false, false},
			wantVersion: ProtocolV2,
		},
		{
			name:     "v1-daemon-falls-back-to-single-get",
			protocol: ProtocolV1,
			sources: func() []Source {
				return []Source{newFakeSource(0), newFakeSource(1)}
			},
			ids:          []int{0, 1},
			wantErr:      []bool{false, false},
			wantVersion:  ProtocolV1,
			wantFallback: true,
		},
		{
			name:     "v2-partial-batch-failure",
			protocol: ProtocolV2,
			sources: func() []Source {
				return []Source{newFakeSource(0), failingSource{id: 1}, newFakeSource(2)}
			},
			ids:         []int{0, 1, 2},
			wantErr:     []bool{false, true, false},
			wantVersion: ProtocolV2,
		},
		{
			name:     "v1-partial-failure-propagates-too",
			protocol: ProtocolV1,
			sources: func() []Source {
				return []Source{newFakeSource(0), failingSource{id: 1}}
			},
			ids:          []int{0, 1},
			wantErr:      []bool{false, true},
			wantVersion:  ProtocolV1,
			wantFallback: true,
		},
		{
			name:     "v2-unknown-node-is-per-entry-err",
			protocol: ProtocolV2,
			sources: func() []Source {
				return []Source{newFakeSource(0)}
			},
			ids:         []int{0, 42},
			wantErr:     []bool{false, true},
			wantVersion: ProtocolV2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srcs := tc.sources()
			d := NewDaemonProtocol(tc.protocol, srcs...)
			addr, err := d.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			entries, err := c.BatchCounters(tc.ids)
			if err != nil {
				t.Fatalf("BatchCounters: %v", err)
			}
			if len(entries) != len(tc.ids) {
				t.Fatalf("got %d entries for %d requested nodes", len(entries), len(tc.ids))
			}
			for i, e := range entries {
				if e.Node != tc.ids[i] {
					t.Errorf("entry %d answers node %d, requested %d", i, e.Node, tc.ids[i])
				}
				if (e.Err != nil) != tc.wantErr[i] {
					t.Errorf("entry %d err = %v, want failure=%v", i, e.Err, tc.wantErr[i])
				}
			}
			// The connection is still usable after any mix of outcomes.
			if _, err := c.Nodes(); err != nil {
				t.Fatalf("connection unusable after batch: %v", err)
			}
			// Negotiation: the client learned the daemon's version.
			v, err := c.ServerVersion()
			if err != nil {
				t.Fatal(err)
			}
			if v != tc.wantVersion {
				t.Errorf("negotiated version %d, want %d", v, tc.wantVersion)
			}
			if tc.wantFallback != (c.proto == ProtocolV1) {
				t.Errorf("client proto = %d, fallback expected %v", c.proto, tc.wantFallback)
			}
		})
	}
}

// TestBatchMatchesSingleGet: for healthy sources the batched read and the
// single-GET read return identical snapshots — one wire format, one truth.
func TestBatchMatchesSingleGet(t *testing.T) {
	a, b := newFakeSource(0), newFakeSource(1)
	a.add(hpm.EvCycles, 1234)
	b.add(hpm.EvFXU0Instr, 999)
	_, addr := startDaemon(t, a, b)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	entries, err := c.BatchCounters([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		single, err := c.Counters(e.Node)
		if err != nil {
			t.Fatal(err)
		}
		if single != e.Snap {
			t.Errorf("node %d: batch snapshot differs from single-GET", e.Node)
		}
	}
}

// wrapSource feeds a 32-bit monitor through the daemon-side accumulator,
// exactly as node.Node does — the wrap correction under test.
type wrapSource struct {
	id  int
	mu  sync.Mutex
	mon *hpm.Monitor
	acc *hpm.Accumulator
}

func newWrapSource(id int) *wrapSource {
	mon := hpm.New()
	return &wrapSource{id: id, mon: mon, acc: hpm.NewAccumulator(mon)}
}

func (w *wrapSource) NodeID() int { return w.id }
func (w *wrapSource) Counters() hpm.Counts64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.acc.Sample()
	return w.acc.Totals()
}
func (w *wrapSource) add(ev hpm.Event, n uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mon.Add(ev, n)
}

// TestBatchWrapCorrectAcrossBatchBoundary: the 32-bit hardware counter
// wraps between two batched sweeps; the extended totals crossing the
// wire must be wrap-corrected so the log's delta is exact. This is the
// same guarantee the single-GET path has always had, asserted through
// MGET framing.
func TestBatchWrapCorrectAcrossBatchBoundary(t *testing.T) {
	src := newWrapSource(7)
	_, addr := startDaemon(t, src)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	log := NewSampleLog()

	sample := func(at float64) {
		t.Helper()
		entries, err := c.BatchCounters([]int{7})
		if err != nil || len(entries) != 1 || entries[0].Err != nil {
			t.Fatalf("batch at %v: entries=%v err=%v", at, entries, err)
		}
		if err := log.Add(Sample{AtSeconds: at, Node: 7, Snap: entries[0].Snap}); err != nil {
			t.Fatal(err)
		}
	}

	src.add(hpm.EvCycles, math.MaxUint32-50)
	sample(0)
	src.add(hpm.EvCycles, 100) // wraps the 32-bit register between batches
	sample(900)
	src.add(hpm.EvCycles, math.MaxUint32) // nearly a full second lap
	sample(1800)

	d, _, ok := log.DeltaOver(7, 0, 1800)
	if !ok {
		t.Fatal("no usable window")
	}
	if got, want := d.Get(hpm.User, hpm.EvCycles), uint64(100)+math.MaxUint32; got != want {
		t.Fatalf("wrap-corrected delta across batch boundary = %d, want %d", got, want)
	}
}

// TestBatchRawWireErrors: malformed MGET requests get top-level ERRs and
// the connection survives.
func TestBatchRawWireErrors(t *testing.T) {
	_, addr := startDaemon(t, newFakeSource(0))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, raw := range []string{"MGET\n", "MGET abc\n"} {
		if _, err := c.conn.Write([]byte(raw)); err != nil {
			t.Fatal(err)
		}
		c.sc.Scan()
		if !strings.HasPrefix(c.sc.Text(), "ERR") {
			t.Fatalf("%q got %q, want ERR", strings.TrimSpace(raw), c.sc.Text())
		}
	}
	// MGET * answers every served node.
	if _, err := c.conn.Write([]byte("MGET *\n")); err != nil {
		t.Fatal(err)
	}
	entries, err := decodeBatch(c.sc, []int{0})
	if err != nil || len(entries) != 1 || entries[0].Node != 0 || entries[0].Err != nil {
		t.Fatalf("MGET * entries=%v err=%v", entries, err)
	}
}

// TestVersionCommand: the VERSION probe across daemon versions, raw.
func TestVersionCommand(t *testing.T) {
	cases := []struct {
		protocol int
		want     int
	}{
		{ProtocolV1, ProtocolV1},
		{ProtocolV2, ProtocolV2},
	}
	for _, tc := range cases {
		d := NewDaemonProtocol(tc.protocol, newFakeSource(0))
		addr, err := d.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.ServerVersion()
		if err != nil {
			t.Fatalf("protocol %d: %v", tc.protocol, err)
		}
		if v != tc.want {
			t.Errorf("protocol %d negotiated as %d", tc.protocol, v)
		}
		// Cached: a second probe answers without a round-trip.
		if v2, _ := c.ServerVersion(); v2 != v {
			t.Errorf("cached version %d != probed %d", v2, v)
		}
		c.Close()
		d.Close()
	}
}
