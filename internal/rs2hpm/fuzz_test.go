package rs2hpm

// Fuzz target for the MGET response decoder. decodeBatch reads frames off
// a network socket, so arbitrary bytes must produce an error, never a
// panic or a hang, and anything it accepts must honor the frame contract:
// exactly one entry per requested node, in request order. The committed
// corpus under testdata/fuzz pins the interesting shapes: a well-formed
// frame, the v1 unknown-command downgrade signal, truncations, count
// mismatches, and out-of-order blocks.

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
)

func FuzzWireBatchDecode(f *testing.F) {
	// Seeds mirror real daemon output and its edges. nodes picks the
	// request list the frame is decoded against: 0 -> [], 1 -> [0],
	// 2 -> [0 1], ...
	f.Add([]byte("BATCH 2\nOK 0\nC 1 1.1 CYCLES 10 0\nEND\nOK 1\nEND\n"), uint8(2))
	f.Add([]byte("BATCH 2\nOK 0\nEND\nERR 1 read node 1: boom\n"), uint8(2))
	f.Add([]byte("ERR unknown command \"MGET\"\n"), uint8(1))
	f.Add([]byte("ERR usage: MGET <node...>|*\n"), uint8(1))
	f.Add([]byte("BATCH 0\n"), uint8(0))
	f.Add([]byte("BATCH 1\n"), uint8(2))              // count mismatch
	f.Add([]byte("BATCH 2\nOK 1\nEND\n"), uint8(2))   // out-of-order block
	f.Add([]byte("BATCH 1\nOK 0\nC 1 1.1"), uint8(1)) // truncated mid-block
	f.Add([]byte("BATCH -1\n"), uint8(0))
	f.Add([]byte(""), uint8(1))
	f.Add([]byte("BATCH 99999999999999999999\n"), uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, nodes uint8) {
		if nodes > 8 {
			nodes = nodes % 9
		}
		want := make([]int, nodes)
		for i := range want {
			want[i] = i
		}
		sc := bufio.NewScanner(bytes.NewReader(data))
		entries, err := decodeBatch(sc, want)
		if err != nil {
			// Rejected frames must say what they are: either the v1
			// negotiation signal or a protocol error — never a bare error
			// the pool/service layers can't classify.
			if !errors.Is(err, errUnsupported) && !errors.Is(err, errProtocol) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			if errors.Is(err, errUnsupported) && !strings.Contains(string(data), "unknown command") {
				t.Fatalf("downgrade signal from a frame that never said unknown command: %q", data)
			}
			return
		}
		// Accepted frames honor the contract exactly.
		if len(entries) != len(want) {
			t.Fatalf("accepted frame decoded %d entries for %d requested nodes", len(entries), len(want))
		}
		for i, e := range entries {
			if e.Node != want[i] {
				t.Fatalf("entry %d answers node %d, requested %d", i, e.Node, want[i])
			}
			if e.Err != nil && !errors.Is(e.Err, errProtocol) {
				t.Fatalf("per-node error is unclassified: %v", e.Err)
			}
		}
	})
}
