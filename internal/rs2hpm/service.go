package rs2hpm

// Service: the sustained-collection successor to the cron sweep. The
// paper's collector was a script: dial, read every node, write a file,
// exit, sleep ten minutes. A collection service keeping up with a fleet
// holds its connections (CollectorPool), collects a full sample set per
// round-trip (MGET, with single-GET fallback for old daemons), and
// decouples the network side from the log with a bounded ingestion queue
// (IngestQueue). The service's ledger accounts for every scheduled node
// read exactly once:
//
//	offered == captured + gapped + dropped + rejected
//
// where gapped reads failed past the retry budget, dropped hit the
// queue's backpressure bound, and rejected were refused by the log —
// each of the three leaving a gap mark, so the log's gap count
// cross-foots too. Daemons that cannot even report their node list are
// counted as whole-sweep failures rather than inventing per-node rows.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hpm"
)

// ServiceConfig configures a collection Service. Addrs is required;
// everything else has serviceable defaults.
type ServiceConfig struct {
	// Addrs are the daemon addresses the service sweeps.
	Addrs []string
	// Collectors is the number of concurrent sweep workers fanning over
	// Addrs; zero selects min(len(Addrs), 4).
	Collectors int
	// Batch collects each daemon with one MGET round-trip per sweep,
	// falling back per-daemon to single-GET against v1 daemons. Off, the
	// service sweeps node by node like the original collector.
	Batch bool
	// Retries is the per-node read retry budget within a sweep (after a
	// batched read, failed nodes are retried individually).
	Retries int
	// Backoff, when non-nil, runs before read-retry attempt k (1-based).
	Backoff func(attempt int)
	// Pool tunes the connection pool. Pool.Retries/Backoff default to the
	// service's Retries/Backoff when unset.
	Pool PoolConfig
	// Queue tunes the ingestion queue.
	Queue IngestConfig
}

// ServiceLedger is the exact sample accounting of a service's lifetime.
type ServiceLedger struct {
	Sweeps        uint64 // SweepOnce calls
	DaemonSweeps  uint64 // per-daemon sweep attempts
	SweepFailures uint64 // daemon sweeps that failed before the node list was known
	Offered       uint64 // scheduled node reads (nodes listed x sweeps reaching them)
	Captured      uint64 // samples landed in the log
	Gapped        uint64 // reads failed past the retry budget, gap-marked
	Dropped       uint64 // samples lost to queue backpressure, gap-marked
	Rejected      uint64 // samples the log refused (out-of-order), gap-marked
}

// CrossFoot verifies the ledger balances: every scheduled read is
// captured or explicitly gap-marked, never silently lost. Valid once the
// service is closed.
func (l ServiceLedger) CrossFoot() error {
	if got := l.Captured + l.Gapped + l.Dropped + l.Rejected; got != l.Offered {
		return fmt.Errorf("rs2hpm: ledger out of balance: captured %d + gapped %d + dropped %d + rejected %d = %d, offered %d",
			l.Captured, l.Gapped, l.Dropped, l.Rejected, got, l.Offered)
	}
	return nil
}

// Gaps reports the gap-marked reads — the ledger rows reconciled in the
// sample log's gap list.
func (l ServiceLedger) Gaps() uint64 { return l.Gapped + l.Dropped + l.Rejected }

// GapRate is the fraction of scheduled reads that ended as gaps.
func (l ServiceLedger) GapRate() float64 {
	if l.Offered == 0 {
		return 0
	}
	return float64(l.Gaps()) / float64(l.Offered)
}

// Service is a sustained collection service over a fleet of daemons.
type Service struct {
	cfg  ServiceConfig
	pool *CollectorPool
	q    *IngestQueue
	log  *SampleLog

	sweeps        atomic.Uint64
	daemonSweeps  atomic.Uint64
	sweepFailures atomic.Uint64
	offered       atomic.Uint64
	gapped        atomic.Uint64

	mu     sync.Mutex
	closed bool // guarded by mu
}

// NewService builds a service collecting from cfg.Addrs into log. Close
// it to release its connections and drain its queue.
func NewService(cfg ServiceConfig, log *SampleLog) (*Service, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("rs2hpm: service needs at least one daemon address")
	}
	if cfg.Collectors <= 0 {
		cfg.Collectors = len(cfg.Addrs)
		if cfg.Collectors > 4 {
			cfg.Collectors = 4
		}
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Pool.Retries == 0 {
		cfg.Pool.Retries = cfg.Retries
	}
	if cfg.Pool.Backoff == nil {
		cfg.Pool.Backoff = cfg.Backoff
	}
	return &Service{
		cfg:  cfg,
		pool: NewCollectorPool(cfg.Pool),
		q:    NewIngestQueue(log, cfg.Queue),
		log:  log,
	}, nil
}

// Log exposes the sample log the service ingests into.
func (s *Service) Log() *SampleLog { return s.log }

// SweepOnce runs one fleet-wide sweep stamped atSeconds: every daemon's
// nodes read once, fanned across the configured collector workers. It
// returns an error summarising daemon-level failures; per-node misses are
// gap-marked, counted in the ledger, and do not fail the sweep. Sweeps
// may run concurrently, but samples for one node must carry increasing
// stamps to be accepted by the log, so callers sequence their stamps.
func (s *Service) SweepOnce(atSeconds float64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rs2hpm: service is closed")
	}
	s.mu.Unlock()
	s.sweeps.Add(1)
	telServiceSweeps.Inc()

	type result struct {
		addr string
		err  error
	}
	work := make(chan string, len(s.cfg.Addrs))
	results := make(chan result, len(s.cfg.Addrs))
	for _, addr := range s.cfg.Addrs {
		work <- addr
	}
	close(work)
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Collectors; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for addr := range work {
				results <- result{addr, s.sweepDaemon(addr, atSeconds)}
			}
		}()
	}
	wg.Wait()
	close(results)
	var failed []string
	for r := range results {
		if r.err != nil {
			failed = append(failed, fmt.Sprintf("%s: %v", r.addr, r.err))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("rs2hpm: sweep at %vs failed %d of %d daemon(s): %v",
			atSeconds, len(failed), len(s.cfg.Addrs), failed)
	}
	return nil
}

// sweepDaemon collects one daemon's full node set once.
func (s *Service) sweepDaemon(addr string, atSeconds float64) error {
	s.daemonSweeps.Add(1)
	telServiceDaemons.Inc()
	cl, err := s.pool.Get(addr)
	if err != nil {
		s.sweepFailures.Add(1)
		telServiceSweepFails.Inc()
		return err
	}
	ids, err := cl.Nodes()
	if err != nil {
		// The node list is unknowable: a whole-sweep failure, not
		// per-node gaps.
		s.pool.Discard(cl)
		s.sweepFailures.Add(1)
		telServiceSweepFails.Inc()
		return err
	}
	s.offered.Add(uint64(len(ids)))

	var entries []BatchEntry
	if s.cfg.Batch {
		entries, err = cl.BatchCounters(ids)
		if err != nil {
			// Transport/framing failure mid-batch: the connection is
			// poisoned and nothing landed. Gap-mark the whole schedule —
			// the reads were offered and are now unknowable.
			s.pool.Discard(cl)
			for _, id := range ids {
				s.gapMark(id, atSeconds, err)
			}
			return err
		}
	} else {
		entries = make([]BatchEntry, 0, len(ids))
		for _, id := range ids {
			snap, rerr := cl.Counters(id)
			entries = append(entries, BatchEntry{Node: id, Snap: snap, Err: rerr})
			if rerr != nil && !errors.Is(rerr, errProtocol) {
				// Transport failure: remaining reads are unknowable.
				for _, rest := range ids[len(entries):] {
					entries = append(entries, BatchEntry{Node: rest, Err: rerr})
				}
				s.pool.Discard(cl)
				cl = nil
				break
			}
		}
	}

	// Retry failed entries individually within the budget, then offer
	// everything that survived to the ingestion queue.
	for _, e := range entries {
		if e.Err != nil && cl != nil {
			e.Snap, e.Err = s.retryRead(cl, e.Node, e.Err)
		}
		if e.Err != nil {
			s.gapMark(e.Node, atSeconds, e.Err)
			continue
		}
		s.q.Offer(Sample{AtSeconds: atSeconds, Node: e.Node, Snap: e.Snap})
	}
	if cl != nil {
		s.pool.Put(cl)
	}
	return nil
}

// retryRead re-reads one node with the service's retry budget, starting
// from the error the first attempt already produced.
func (s *Service) retryRead(cl *Client, id int, firstErr error) (hpm.Counts64, error) {
	lastErr := firstErr
	for attempt := 1; attempt <= s.cfg.Retries; attempt++ {
		telRetries.Inc()
		if s.cfg.Backoff != nil {
			telBackoffs.Inc()
			s.cfg.Backoff(attempt)
		}
		snap, err := cl.Counters(id)
		if err == nil {
			return snap, nil
		}
		lastErr = err
	}
	return hpm.Counts64{}, lastErr
}

// gapMark records one abandoned read in the ledger and the log.
func (s *Service) gapMark(node int, atSeconds float64, err error) {
	s.gapped.Add(1)
	telServiceGaps.Inc()
	telGaps.Inc()
	s.log.AddGap(Gap{AtSeconds: atSeconds, Node: node, Reason: err.Error()})
}

// Ledger reads the service's sample accounting. Exact once Close has
// returned; mid-flight it is a monitoring snapshot.
func (s *Service) Ledger() ServiceLedger {
	qs := s.q.Stats()
	return ServiceLedger{
		Sweeps:        s.sweeps.Load(),
		DaemonSweeps:  s.daemonSweeps.Load(),
		SweepFailures: s.sweepFailures.Load(),
		Offered:       s.offered.Load(),
		Captured:      qs.Captured,
		Gapped:        s.gapped.Load(),
		Dropped:       qs.Dropped,
		Rejected:      qs.Rejected,
	}
}

// Pool exposes the connection pool (for stats and tests).
func (s *Service) Pool() *CollectorPool { return s.pool }

// Queue exposes the ingestion queue (for stats and tests).
func (s *Service) Queue() *IngestQueue { return s.q }

// Close shuts the service down: no further sweeps, queue drained into
// the log, pooled connections closed. Idempotent; safe after failed
// sweeps.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.q.Close()
	s.pool.Close()
}
