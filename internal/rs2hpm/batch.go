package rs2hpm

// The batched half of wire protocol v2. The original tools paid one
// round-trip per node per sweep — tolerable for a cron job every ten
// minutes, ruinous for a sustained collection service. MGET collects a
// whole sample set in one round-trip:
//
//	-> MGET 0 1 2            (or MGET * for every served node)
//	<- BATCH 3
//	<- OK 0
//	<- C <ev> <group.idx> <label> <user> <sys>   (one per event)
//	<- END
//	<- ERR 1 read failed: ...
//	<- OK 2
//	<- ...
//	<- END
//
// The response carries exactly one block per requested node, in request
// order; a block is either an OK snapshot or a single ERR line naming the
// node, so one dead node cannot poison the rest of the batch. A v1 daemon
// answers MGET with "ERR unknown command", which the client reads as a
// version signal and downgrades to single-GET sweeps for the rest of the
// connection — mixed-version fleets collect correctly, just less cheaply.

import (
	"bufio"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hpm"
)

// BatchEntry is one node's outcome within a batched read: a snapshot, or
// the per-node error the daemon reported in its place.
type BatchEntry struct {
	Node int
	Snap hpm.Counts64
	Err  error // nil when Snap is valid
}

// errUnsupported marks a daemon that does not speak MGET/VERSION — the
// negotiation signal, not a failure.
var errUnsupported = errors.New("rs2hpm: daemon does not speak protocol v2")

// writeBatch serves one MGET command: a count-delimited frame of per-node
// blocks in request order.
func (d *Daemon) writeBatch(w *bufio.Writer, args []string) {
	if len(args) == 0 {
		errf(w, "ERR usage: MGET <node...>|*\n")
		return
	}
	var ids []int
	if len(args) == 1 && args[0] == "*" {
		ids = d.nodeIDs()
	} else {
		for _, a := range args {
			id, err := strconv.Atoi(a)
			if err != nil {
				errf(w, "ERR bad node id %q\n", a)
				return
			}
			ids = append(ids, id)
		}
	}
	telDaemonBatches.Inc()
	fmt.Fprintf(w, "BATCH %d\n", len(ids))
	for _, id := range ids {
		totals, err := d.readNode(id)
		if err != nil {
			// Per-node ERR inside a batch carries the node id in a fixed
			// position so the decoder can attribute it without relying on
			// block order alone.
			telDaemonErrs.Inc()
			fmt.Fprintf(w, "ERR %d %v\n", id, err)
			continue
		}
		fmt.Fprintf(w, "OK %d\n", id)
		writeCounterLines(w, totals)
		fmt.Fprintf(w, "END\n")
	}
}

// decodeBatch reads one MGET response frame off the scanner. want is the
// request's node list; the frame must answer exactly those nodes in that
// order. A top-level "ERR unknown command" maps to errUnsupported so the
// caller can downgrade; any other malformation is a protocol error.
func decodeBatch(sc *bufio.Scanner, want []int) ([]BatchEntry, error) {
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: connection closed before batch header", errProtocol)
	}
	header := strings.TrimSpace(sc.Text())
	if strings.HasPrefix(header, "ERR") {
		if strings.Contains(header, "unknown command") {
			return nil, errUnsupported
		}
		return nil, fmt.Errorf("%w: %s", errProtocol, header)
	}
	var n int
	if _, err := fmt.Sscanf(header, "BATCH %d", &n); err != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad batch header %q", errProtocol, header)
	}
	if n != len(want) {
		return nil, fmt.Errorf("%w: batch answers %d nodes, requested %d", errProtocol, n, len(want))
	}
	entries := make([]BatchEntry, 0, n)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("%w: connection closed mid-batch (%d of %d blocks)", errProtocol, i, n)
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "ERR "):
			rest := strings.TrimPrefix(line, "ERR ")
			idStr, reason, _ := strings.Cut(rest, " ")
			id, err := strconv.Atoi(idStr)
			if err != nil {
				return nil, fmt.Errorf("%w: bad batch error line %q", errProtocol, line)
			}
			if id != want[i] {
				return nil, fmt.Errorf("%w: batch block %d answers node %d, requested %d", errProtocol, i, id, want[i])
			}
			entries = append(entries, BatchEntry{Node: id, Err: fmt.Errorf("%w: node %d: %s", errProtocol, id, reason)})
		case strings.HasPrefix(line, "OK "):
			id, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "OK ")))
			if err != nil {
				return nil, fmt.Errorf("%w: bad batch block header %q", errProtocol, line)
			}
			if id != want[i] {
				return nil, fmt.Errorf("%w: batch block %d answers node %d, requested %d", errProtocol, i, id, want[i])
			}
			var snap hpm.Counts64
			for {
				if !sc.Scan() {
					return nil, fmt.Errorf("%w: connection closed mid-block for node %d", errProtocol, id)
				}
				body := strings.TrimSpace(sc.Text())
				if body == "END" {
					break
				}
				if err := parseCounterLine(body, &snap); err != nil {
					return nil, err
				}
			}
			entries = append(entries, BatchEntry{Node: id, Snap: snap})
		default:
			return nil, fmt.Errorf("%w: bad batch block header %q", errProtocol, line)
		}
	}
	return entries, nil
}

// ServerVersion probes the daemon's wire version with a VERSION command.
// A daemon that predates VERSION answers with an unknown-command ERR,
// which reports as version 1 — the probe never fails on old daemons.
func (c *Client) ServerVersion() (int, error) {
	if c.proto != 0 {
		return c.proto, nil
	}
	fmt.Fprintf(c.w, "VERSION\n")
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	if !c.sc.Scan() {
		return 0, fmt.Errorf("%w: connection closed", errProtocol)
	}
	line := strings.TrimSpace(c.sc.Text())
	if strings.HasPrefix(line, "ERR") {
		if strings.Contains(line, "unknown command") {
			c.proto = ProtocolV1
			return c.proto, nil
		}
		return 0, fmt.Errorf("%w: %s", errProtocol, line)
	}
	var v int
	if _, err := fmt.Sscanf(line, "OK RS2HPM %d", &v); err != nil || v < ProtocolV1 {
		return 0, fmt.Errorf("%w: bad version response %q", errProtocol, line)
	}
	c.proto = v
	return v, nil
}

// BatchCounters fetches the given nodes' totals in one round-trip when
// the daemon speaks protocol v2, and transparently falls back to per-node
// single-GET reads against a v1 daemon. The returned slice always has one
// entry per requested node, in request order; per-node failures land in
// the entry's Err instead of failing the call. The error return is
// reserved for transport and framing failures, after which the
// connection should be discarded.
func (c *Client) BatchCounters(ids []int) ([]BatchEntry, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if c.proto == ProtocolV1 {
		return c.batchFallback(ids)
	}
	var req strings.Builder
	req.WriteString("MGET")
	for _, id := range ids {
		req.WriteByte(' ')
		req.WriteString(strconv.Itoa(id))
	}
	req.WriteByte('\n')
	if _, err := c.w.WriteString(req.String()); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	entries, err := decodeBatch(c.sc, ids)
	if errors.Is(err, errUnsupported) {
		// Negotiated down: remember, count, and collect the old way.
		c.proto = ProtocolV1
		telClientFallbacks.Inc()
		return c.batchFallback(ids)
	}
	if err != nil {
		return nil, err
	}
	c.proto = ProtocolV2
	telClientBatches.Inc()
	return entries, nil
}

// batchFallback emulates one batched read with per-node single-GET
// round-trips — the v1 path, same shape out.
func (c *Client) batchFallback(ids []int) ([]BatchEntry, error) {
	entries := make([]BatchEntry, 0, len(ids))
	for _, id := range ids {
		snap, err := c.Counters(id)
		if err != nil {
			// A daemon-reported ERR response is a per-node outcome;
			// anything else (transport, framing) poisons the connection
			// and fails the whole batch, matching the v2 contract.
			if !errors.Is(err, errProtocol) || !strings.Contains(err.Error(), ": ERR") {
				return nil, err
			}
			entries = append(entries, BatchEntry{Node: id, Err: err})
			continue
		}
		entries = append(entries, BatchEntry{Node: id, Snap: snap})
	}
	return entries, nil
}
