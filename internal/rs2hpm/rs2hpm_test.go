package rs2hpm

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/hpm"
	"repro/internal/simclock"
)

// fakeSource is a Source with a settable monitor.
type fakeSource struct {
	id  int
	mu  sync.Mutex
	mon *hpm.Monitor
	acc *hpm.Accumulator
}

func newFakeSource(id int) *fakeSource {
	mon := hpm.New()
	return &fakeSource{id: id, mon: mon, acc: hpm.NewAccumulator(mon)}
}

func (f *fakeSource) NodeID() int { return f.id }
func (f *fakeSource) Counters() hpm.Counts64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.acc.Sample()
	return f.acc.Totals()
}
func (f *fakeSource) add(ev hpm.Event, n uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mon.Add(ev, n)
}

func startDaemon(t *testing.T, sources ...Source) (*Daemon, string) {
	t.Helper()
	d := NewDaemon(sources...)
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d, addr
}

func TestNodesListing(t *testing.T) {
	_, addr := startDaemon(t, newFakeSource(3), newFakeSource(1), newFakeSource(2))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids, err := c.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestCountersRoundTrip(t *testing.T) {
	src := newFakeSource(5)
	src.add(hpm.EvFXU0Instr, 12345)
	src.add(hpm.EvCycles, 99999)
	src.mon.SetMode(hpm.System)
	src.add(hpm.EvFXU0Instr, 777)
	_, addr := startDaemon(t, src)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	snap, err := c.Counters(5)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Get(hpm.User, hpm.EvFXU0Instr) != 12345 {
		t.Fatalf("user fxu0 = %d", snap.Get(hpm.User, hpm.EvFXU0Instr))
	}
	if snap.Get(hpm.User, hpm.EvCycles) != 99999 {
		t.Fatalf("cycles = %d", snap.Get(hpm.User, hpm.EvCycles))
	}
	if snap.Get(hpm.System, hpm.EvFXU0Instr) != 777 {
		t.Fatalf("system fxu0 = %d", snap.Get(hpm.System, hpm.EvFXU0Instr))
	}
}

func TestCountersUnknownNode(t *testing.T) {
	_, addr := startDaemon(t, newFakeSource(1))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Counters(42); err == nil {
		t.Fatal("unknown node did not error")
	}
	// The connection must remain usable after an ERR.
	if _, err := c.Counters(1); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
}

func TestMultipleClientsConcurrently(t *testing.T) {
	src := newFakeSource(0)
	_, addr := startDaemon(t, src)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				if _, err := c.Counters(0); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Writer mutates counters while clients sample.
	for j := 0; j < 1000; j++ {
		src.add(hpm.EvCycles, 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDaemonCloseIdempotent(t *testing.T) {
	d, _ := startDaemon(t, newFakeSource(0))
	d.Close()
	d.Close() // must not panic or hang
}

func TestAddSourceAfterStart(t *testing.T) {
	d, addr := startDaemon(t, newFakeSource(0))
	d.AddSource(newFakeSource(9))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids, err := c.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestSampleLogDelta(t *testing.T) {
	l := NewSampleLog()
	mon := hpm.New()
	acc := hpm.NewAccumulator(mon)
	add := func(at float64) {
		acc.Sample()
		if err := l.Add(Sample{AtSeconds: at, Node: 1, Snap: acc.Totals()}); err != nil {
			t.Fatal(err)
		}
	}
	add(0)
	mon.Add(hpm.EvCycles, 1000)
	add(900)
	mon.Add(hpm.EvCycles, 2000)
	add(1800)

	d, secs, ok := l.DeltaOver(1, 0, 1800)
	if !ok {
		t.Fatal("DeltaOver found no window")
	}
	if secs != 1800 {
		t.Fatalf("span = %v", secs)
	}
	if got := d.Get(hpm.User, hpm.EvCycles); got != 3000 {
		t.Fatalf("delta = %d", got)
	}
	// Sub-window.
	d, secs, ok = l.DeltaOver(1, 800, 1800)
	if !ok || secs != 900 || d.Get(hpm.User, hpm.EvCycles) != 2000 {
		t.Fatalf("sub-window delta = %d over %v (ok=%v)", d.Get(hpm.User, hpm.EvCycles), secs, ok)
	}
}

func TestSampleLogDeltaSurvivesWraps(t *testing.T) {
	// The 32-bit hardware registers wrap between samples; the daemon's
	// accumulator corrects them before the log ever sees a value.
	l := NewSampleLog()
	mon := hpm.New()
	acc := hpm.NewAccumulator(mon)
	add := func(at float64) {
		acc.Sample()
		l.Add(Sample{AtSeconds: at, Node: 0, Snap: acc.Totals()})
	}
	mon.Add(hpm.EvCycles, math.MaxUint32-100)
	add(0)
	mon.Add(hpm.EvCycles, 200) // wrap 1
	add(900)
	mon.Add(hpm.EvCycles, math.MaxUint32) // nearly a full lap more
	add(1800)
	d, _, ok := l.DeltaOver(0, 0, 1800)
	if !ok {
		t.Fatal("no window")
	}
	if got := d.Get(hpm.User, hpm.EvCycles); got != 200+math.MaxUint32 {
		t.Fatalf("wrap-corrected delta = %d, want %d", got, 200+uint64(math.MaxUint32))
	}
}

func TestSampleLogRejectsOutOfOrder(t *testing.T) {
	l := NewSampleLog()
	l.Add(Sample{AtSeconds: 100, Node: 0})
	if err := l.Add(Sample{AtSeconds: 50, Node: 0}); err == nil {
		t.Fatal("out-of-order sample accepted")
	}
}

func TestSampleLogInsufficientWindow(t *testing.T) {
	l := NewSampleLog()
	l.Add(Sample{AtSeconds: 100, Node: 0})
	if _, _, ok := l.DeltaOver(0, 0, 1000); ok {
		t.Fatal("single-sample window reported ok")
	}
	if _, _, ok := l.DeltaOver(9, 0, 1000); ok {
		t.Fatal("unknown node reported ok")
	}
}

func TestCollectorEndToEnd(t *testing.T) {
	// The full path: simulated nodes -> daemon -> TCP -> collector -> log.
	a, b := newFakeSource(0), newFakeSource(1)
	_, addr := startDaemon(t, a, b)
	log := NewSampleLog()
	col := NewCollector(addr, log)

	if err := col.CollectOnce(0); err != nil {
		t.Fatal(err)
	}
	a.add(hpm.EvFXU0Instr, 500)
	b.add(hpm.EvFXU1Instr, 700)
	if err := col.CollectOnce(900); err != nil {
		t.Fatal(err)
	}

	if got := log.Nodes(); len(got) != 2 {
		t.Fatalf("nodes = %v", got)
	}
	d, _, ok := log.DeltaOver(0, 0, 900)
	if !ok || d.Get(hpm.User, hpm.EvFXU0Instr) != 500 {
		t.Fatalf("node 0 delta = %d", d.Get(hpm.User, hpm.EvFXU0Instr))
	}
	d, _, ok = log.DeltaOver(1, 0, 900)
	if !ok || d.Get(hpm.User, hpm.EvFXU1Instr) != 700 {
		t.Fatalf("node 1 delta = %d", d.Get(hpm.User, hpm.EvFXU1Instr))
	}
	if log.Len(0) != 2 || log.Len(1) != 2 {
		t.Fatalf("sample counts = %d/%d", log.Len(0), log.Len(1))
	}
}

func TestCollectorBadAddress(t *testing.T) {
	col := NewCollector("127.0.0.1:1", NewSampleLog())
	if err := col.CollectOnce(0); err == nil {
		t.Fatal("collect from dead address succeeded")
	}
}

func TestProtocolRejectsGarbage(t *testing.T) {
	src := newFakeSource(0)
	_, addr := startDaemon(t, src)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Speak garbage directly.
	if _, err := c.conn.Write([]byte("BOGUS\n")); err != nil {
		t.Fatal(err)
	}
	c.sc.Scan()
	if !strings.HasPrefix(c.sc.Text(), "ERR") {
		t.Fatalf("garbage got %q", c.sc.Text())
	}
	// COUNTERS with a non-numeric argument.
	if _, err := c.conn.Write([]byte("COUNTERS abc\n")); err != nil {
		t.Fatal(err)
	}
	c.sc.Scan()
	if !strings.HasPrefix(c.sc.Text(), "ERR") {
		t.Fatalf("bad id got %q", c.sc.Text())
	}
}

func TestSamplesCopyIsolated(t *testing.T) {
	l := NewSampleLog()
	l.Add(Sample{AtSeconds: 1, Node: 0})
	ss := l.Samples(0)
	ss[0].AtSeconds = 999
	if l.Samples(0)[0].AtSeconds != 1 {
		t.Fatal("Samples exposes internal storage")
	}
}

// armableSource wraps fakeSource with the Armer extension.
type armableSource struct{ *fakeSource }

func (a *armableSource) ArmSelection(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.mon.Arm(name); err != nil {
		return err
	}
	a.acc.Reset()
	return nil
}

func TestRemoteArm(t *testing.T) {
	src := &armableSource{newFakeSource(0)}
	_, addr := startDaemon(t, src)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Counters accumulate under the NAS selection...
	src.add(hpm.EvCycles, 500)
	if err := c.Arm(0, "iowait"); err != nil {
		t.Fatal(err)
	}
	// ...and arming clears them and re-routes signals.
	snap, err := c.Counters(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Get(hpm.User, hpm.EvCycles) != 0 {
		t.Fatal("ARM did not clear counters")
	}
	src.mu.Lock()
	src.mon.Signal(hpm.SigIOWaitCycles, 777)
	src.mu.Unlock()
	snap, _ = c.Counters(0)
	if snap.Get(hpm.User, hpm.EvICacheReload) != 777 {
		t.Fatalf("io_wait slot = %d after remote arm", snap.Get(hpm.User, hpm.EvICacheReload))
	}

	// Unknown selection and unknown node both error without killing the
	// connection.
	if err := c.Arm(0, "bogus-selection"); err == nil {
		t.Fatal("bogus selection armed")
	}
	if err := c.Arm(42, "nas"); err == nil {
		t.Fatal("unknown node armed")
	}
	if _, err := c.Counters(0); err != nil {
		t.Fatalf("connection dead after ARM errors: %v", err)
	}
}

func TestRemoteArmAll(t *testing.T) {
	a := &armableSource{newFakeSource(0)}
	b := &armableSource{newFakeSource(1)}
	_, addr := startDaemon(t, a, b)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Arm(-1, "iowait"); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*armableSource{a, b} {
		s.mu.Lock()
		name := s.mon.Selection().Name
		s.mu.Unlock()
		if name != "iowait" {
			t.Fatalf("node %d selection = %q", s.id, name)
		}
	}
}

func TestArmRejectsNonArmerSource(t *testing.T) {
	_, addr := startDaemon(t, newFakeSource(0)) // plain source: no Armer
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Arm(0, "nas"); err == nil {
		t.Fatal("non-armer source armed")
	}
}

func TestScheduledCollection(t *testing.T) {
	src := newFakeSource(0)
	_, addr := startDaemon(t, src)
	log := NewSampleLog()
	col := NewCollector(addr, log)

	var clock simclock.Clock
	stop := col.Schedule(&clock, simclock.Minutes(15), nil)
	// Counter activity between cron firings.
	clock.At(simclock.Minutes(5), func() { src.add(hpm.EvCycles, 1000) })
	clock.At(simclock.Minutes(20), func() { src.add(hpm.EvCycles, 2000) })
	clock.RunUntil(simclock.Minutes(45))
	stop()
	clock.Run()

	if got := log.Len(0); got != 3 {
		t.Fatalf("samples = %d, want 3 (15/30/45 min)", got)
	}
	d, secs, ok := log.DeltaOver(0, 0, simclock.Minutes(45).Seconds())
	if !ok || secs != 1800 {
		t.Fatalf("window = %v ok=%v", secs, ok)
	}
	if got := d.Get(hpm.User, hpm.EvCycles); got != 2000 {
		t.Fatalf("delta over 15..45 min = %d, want 2000", got)
	}
}

func TestScheduledCollectionErrorHandler(t *testing.T) {
	// Collector pointed at a dead address: the error handler is invoked,
	// the simulation continues.
	col := NewCollector("127.0.0.1:1", NewSampleLog())
	var clock simclock.Clock
	errs := 0
	stop := col.Schedule(&clock, simclock.Minutes(15), func(error) { errs++ })
	clock.RunUntil(simclock.Minutes(30))
	stop()
	clock.Run()
	if errs != 2 {
		t.Fatalf("error handler invoked %d times, want 2", errs)
	}
}

// TestCollectorConcurrentWithSimulation runs the 15-minute collector loop
// against a daemon whose sources are being driven hard by a "simulation"
// goroutine, while new nodes boot mid-campaign. This is the deployment
// shape of the paper's measurement stack; under -race it pins the
// daemon's source-table and the log's sample-table locking.
func TestCollectorConcurrentWithSimulation(t *testing.T) {
	srcs := make([]*fakeSource, 4)
	sources := make([]Source, 4)
	for i := range srcs {
		srcs[i] = newFakeSource(i)
		sources[i] = srcs[i]
	}
	d, addr := startDaemon(t, sources...)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the simulation: counters advance while sampling runs
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			srcs[i%len(srcs)].add(hpm.EvCycles, 1000)
		}
	}()
	wg.Add(1)
	go func() { // mid-campaign boots
		defer wg.Done()
		for i := 0; i < 8; i++ {
			d.AddSource(newFakeSource(100 + i))
		}
	}()

	log := NewSampleLog()
	col := NewCollector(addr, log)
	for tick := 1; tick <= 5; tick++ {
		if err := col.CollectOnce(float64(tick) * 900); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := len(log.Nodes()); got < 4 {
		t.Fatalf("collected %d nodes, want >= 4", got)
	}
	for _, id := range []int{0, 1, 2, 3} {
		if log.Len(id) != 5 {
			t.Fatalf("node %d has %d samples, want 5", id, log.Len(id))
		}
	}
}
