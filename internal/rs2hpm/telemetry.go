package rs2hpm

// hpmtel instrumentation for the collection path — the reproduction of
// the paper's own self-measurement ethos applied to the measurement tools
// themselves: how many sweeps and samples the collector performed, how
// often it retried, backed off or gap-marked, and the bytes the line
// protocol moved on the wire (both directions, both ends).

import (
	"io"

	"repro/internal/telemetry"
)

var (
	telCollector   = telemetry.Default.Scope("rs2hpm.collector")
	telSweeps      = telCollector.Counter("sweeps")
	telSweepErrors = telCollector.Counter("sweep_errors")
	telSamples     = telCollector.Counter("samples")
	telGaps        = telCollector.Counter("gaps")
	telRetries     = telCollector.Counter("retries")
	telBackoffs    = telCollector.Counter("backoffs")

	telClient          = telemetry.Default.Scope("rs2hpm.client")
	telClientDials     = telClient.Counter("dials")
	telClientBytesRx   = telClient.Counter("bytes_rx")
	telClientBytesTx   = telClient.Counter("bytes_tx")
	telClientBatches   = telClient.Counter("batches")
	telClientFallbacks = telClient.Counter("fallbacks")

	telDaemon        = telemetry.Default.Scope("rs2hpm.daemon")
	telDaemonConns   = telDaemon.Counter("conns")
	telDaemonCmds    = telDaemon.Counter("commands")
	telDaemonErrs    = telDaemon.Counter("errors")
	telDaemonBytesRx = telDaemon.Counter("bytes_rx")
	telDaemonBytesTx = telDaemon.Counter("bytes_tx")
	telDaemonBatches = telDaemon.Counter("batches")

	// The sustained-collection layers: connection pool, bounded ingestion
	// queue, and the service that drives them. Every drop and rejection is
	// counted here and reconciled as a gap mark in the sample log, so the
	// telemetry and the coverage ledger cross-foot.
	telPool            = telemetry.Default.Scope("rs2hpm.pool")
	telPoolDials       = telPool.Counter("dials")
	telPoolReuses      = telPool.Counter("reuses")
	telPoolDiscards    = telPool.Counter("discards")
	telPoolEvictions   = telPool.Counter("evictions")
	telPoolHealthFails = telPool.Counter("health_fails")

	telIngest         = telemetry.Default.Scope("rs2hpm.ingest")
	telIngestOffered  = telIngest.Counter("offered")
	telIngestEnqueued = telIngest.Counter("enqueued")
	telIngestDropped  = telIngest.Counter("dropped")
	telIngestRejected = telIngest.Counter("rejected")
	telIngestCaptured = telIngest.Counter("captured")

	telService           = telemetry.Default.Scope("rs2hpm.service")
	telServiceSweeps     = telService.Counter("sweeps")
	telServiceDaemons    = telService.Counter("daemon_sweeps")
	telServiceSweepFails = telService.Counter("sweep_failures")
	telServiceGaps       = telService.Counter("read_gaps")
)

// countingReader counts bytes read from the wire into a counter.
type countingReader struct {
	r io.Reader
	c *telemetry.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(uint64(n))
	return n, err
}

// countingWriter counts bytes written to the wire into a counter.
type countingWriter struct {
	w io.Writer
	c *telemetry.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(uint64(n))
	return n, err
}
