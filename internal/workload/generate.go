package workload

// The generate stage. A Generator turns (Config, day) into the day's job
// submissions — pure, with every random draw taken from an RNG substream
// derived via splitmix from (seed, day) and each job tagged with the
// substream ID its in-flight randomness (performance jitter, stochastic
// counter rounding) will use. Nothing here touches the clock, the batch
// system, or the nodes, so plans for different days can be produced in any
// order — or concurrently — and come out bit-identical.

import (
	"fmt"

	"repro/internal/pbs"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// RNG substream namespaces. Day-generation streams and per-job streams
// must never collide: generation consumes stream genStreamBase+day, while
// a job consumes stream jobStreamBase+UID. Job UIDs are day<<jobUIDShift|n,
// which stays far below the 2^40 namespace spacing for any realistic
// campaign. Fleet campaigns derive per-cluster seeds from
// clusterStreamBase+cluster (see ClusterSeed in fleet.go), again far below
// the spacing for any realistic fleet; 3<<40 and 4<<40 are skipped because
// internal/faults draws its plan and epilogue streams there from the same
// campaign seed.
const (
	genStreamBase     uint64 = 1 << 40
	jobStreamBase     uint64 = 2 << 40
	clusterStreamBase uint64 = 5 << 40
	jobUIDShift              = 20 // jobs per day fit comfortably in 2^20
)

// JobSpec is one generated submission: when it arrives and what it asks
// PBS for. The embedded pbs.Spec carries the job's StreamID, the identity
// its private RNG stream is derived from.
type JobSpec struct {
	// UID is the campaign-unique job identity: day<<20 | index-within-day.
	UID uint64
	// At is the submission instant.
	At simclock.Time
	// Spec is the batch request.
	Spec pbs.Spec
}

// DayPlan is one day's generated submissions plus the day-level character
// the draws were conditioned on.
type DayPlan struct {
	Day int
	// Util is the day's target utilisation (weekend dip applied).
	Util float64
	// PagingDay marks a day whose mix leans memory-oversubscribed.
	PagingDay bool
	// Quality is the day's tuning-quality multiplier.
	Quality float64
	Jobs    []JobSpec
}

// Generator produces a day's job arrivals. Implementations must be pure:
// GenerateDay(d) returns the same plan no matter how many times or in
// what order days are generated.
type Generator interface {
	GenerateDay(day int) DayPlan
}

// mixGenerator is the demand model compiled from a Mix: daily utilisation
// draws, the node-count marginal, the client-share walk, the large-job
// policy, and the per-client arrival shaping. Every scenario knob is data
// in the Mix; the generator only fixes the order draws are consumed in,
// which is what makes a scenario's plans reproducible.
type mixGenerator struct {
	cfg Config
	mix Mix

	// sizes is the compiled campaign-wide node-count sampler;
	// clientSizes[i] is client i's compiled override, nil for none.
	sizes       *rng.Weighted
	clientSizes []*rng.Weighted
	// remainder indexes the client absorbing the unassigned share.
	remainder int
}

// NewGenerator builds the standard demand generator for a campaign
// configuration and class mix. It panics on a structurally invalid mix
// (no clients, no remainder, unusable weight table): DefaultMix is valid
// by construction and spec-resolved mixes are validated with field-level
// errors long before they reach here.
//
//hpmlint:pure the generator must be constructible identically on every worker
func NewGenerator(cfg Config, mix Mix) Generator {
	if len(mix.Clients) == 0 {
		panic("workload: mix has no clients")
	}
	g := &mixGenerator{
		cfg:         cfg,
		mix:         mix,
		sizes:       mix.JobSize.sampler(),
		clientSizes: make([]*rng.Weighted, len(mix.Clients)),
		remainder:   -1,
	}
	for i := range mix.Clients {
		if mix.Clients[i].Remainder {
			if g.remainder >= 0 {
				panic("workload: mix has more than one remainder client")
			}
			g.remainder = i
		}
		if js := mix.Clients[i].JobSize; js != nil {
			g.clientSizes[i] = js.sampler()
		}
	}
	if g.remainder < 0 {
		panic("workload: mix has no remainder client")
	}
	lj := mix.LargeJobs
	if lj.ThresholdNodes > 0 {
		if lj.Fallback < 0 || lj.Fallback >= len(mix.Clients) {
			panic("workload: large-job fallback out of range")
		}
		for _, ov := range lj.Overrides {
			if ov.Client < 0 || ov.Client >= len(mix.Clients) {
				panic("workload: large-job override out of range")
			}
		}
	}
	return g
}

// classFor assigns a workload client given the node count and day
// character, consuming draws from the day's generation stream: one Bool
// per large-job override until one fires, or a single uniform draw walked
// down the cumulative client shares.
func (g *mixGenerator) classFor(rnd *rng.Source, nodes int, pagingDay bool, day int) int {
	if lj := g.mix.LargeJobs; lj.ThresholdNodes > 0 && nodes > lj.ThresholdNodes {
		for _, ov := range lj.Overrides {
			if rnd.Bool(ov.Prob) {
				return ov.Client
			}
		}
		return lj.Fallback
	}
	x := rnd.Float64()
	cum := 0.0
	for i := range g.mix.Clients {
		cl := &g.mix.Clients[i]
		if cl.Remainder {
			continue
		}
		share := cl.Share
		if pagingDay {
			share = cl.PagingDayShare
		}
		cum += share * cl.Lifecycle.shareFactor(day)
		if x < cum {
			return i
		}
	}
	return g.remainder
}

// GenerateDay produces the day's job arrivals: total node-seconds of
// demand set by the day's target utilisation, spread uniformly over the
// day. Every draw comes from the day's own substream, so the plan depends
// only on (Config, mix, day).
//
//hpmlint:pure the staged engine replays days in any order at any worker count
func (g *mixGenerator) GenerateDay(day int) DayPlan {
	rnd := rng.Stream(g.cfg.Seed, genStreamBase+uint64(day))

	util := rnd.NormalClamped(g.cfg.MeanUtil, g.cfg.UtilSigma, 0.05, 0.97)
	// Weekend dips: submission demand drops when the users go home — part
	// of the load-demand fluctuation Figure 1 attributes the variability
	// to. (The campaign starts on a Monday.)
	if dow := day % 7; dow == 5 || dow == 6 {
		util *= g.mix.WeekendFactor
	}
	pagingDay := rnd.Bool(g.cfg.PagingDayProb)
	// Day quality: how well-tuned the day's job population is. For the
	// paper mix most days sit below 1 (development machine), a few are
	// benchmark-grade.
	quality := g.mix.Quality.Sample(rnd)

	plan := DayPlan{Day: day, Util: util, PagingDay: pagingDay, Quality: quality}
	demand := util * float64(g.cfg.Nodes) * 86400
	dayStart := simclock.Days(float64(day))
	for demand > 0 {
		// Draw order is part of the determinism contract: the campaign-wide
		// size and runtime draws come first so class assignment can depend
		// on the node count (the large-job policy); a client's overrides
		// then re-draw after assignment, consuming extra draws only in
		// scenarios that declare them — which is what keeps the paper
		// preset's stream bit-identical to the original hard-coded mix.
		nodes := g.mix.JobSize.Counts[g.sizes.Sample(rnd)]
		wall := g.mix.Runtime.Sample(rnd)
		ci := g.classFor(rnd, nodes, pagingDay, day)
		cl := &g.mix.Clients[ci]
		if w := g.clientSizes[ci]; w != nil {
			nodes = cl.JobSize.Counts[w.Sample(rnd)]
		}
		if cl.Runtime != nil {
			wall = cl.Runtime.Sample(rnd)
		}
		frac := cl.Lifecycle.warp(cl.Arrival.sample(rnd))
		at := dayStart + simclock.Time(frac*86400)
		uid := uint64(day)<<jobUIDShift | uint64(len(plan.Jobs))
		plan.Jobs = append(plan.Jobs, JobSpec{
			UID: uid,
			At:  at,
			Spec: pbs.Spec{
				User:               fmt.Sprintf("u%02d", rnd.Intn(g.mix.Users)),
				Nodes:              nodes,
				WallSeconds:        wall,
				Class:              cl.Class.Name,
				MemoryPerNodeBytes: cl.Class.MemoryPerNode,
				PerfFactor:         quality,
				StreamID:           uid,
			},
		})
		demand -= float64(nodes) * wall
	}
	return plan
}
