package workload

// The generate stage. A Generator turns (Config, day) into the day's job
// submissions — pure, with every random draw taken from an RNG substream
// derived via splitmix from (seed, day) and each job tagged with the
// substream ID its in-flight randomness (performance jitter, stochastic
// counter rounding) will use. Nothing here touches the clock, the batch
// system, or the nodes, so plans for different days can be produced in any
// order — or concurrently — and come out bit-identical.

import (
	"fmt"

	"repro/internal/pbs"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// RNG substream namespaces. Day-generation streams and per-job streams
// must never collide: generation consumes stream genStreamBase+day, while
// a job consumes stream jobStreamBase+UID. Job UIDs are day<<jobUIDShift|n,
// which stays far below the 2^40 namespace spacing for any realistic
// campaign.
const (
	genStreamBase uint64 = 1 << 40
	jobStreamBase uint64 = 2 << 40
	jobUIDShift          = 20 // jobs per day fit comfortably in 2^20
)

// JobSpec is one generated submission: when it arrives and what it asks
// PBS for. The embedded pbs.Spec carries the job's StreamID, the identity
// its private RNG stream is derived from.
type JobSpec struct {
	// UID is the campaign-unique job identity: day<<20 | index-within-day.
	UID uint64
	// At is the submission instant.
	At simclock.Time
	// Spec is the batch request.
	Spec pbs.Spec
}

// DayPlan is one day's generated submissions plus the day-level character
// the draws were conditioned on.
type DayPlan struct {
	Day int
	// Util is the day's target utilisation (weekend dip applied).
	Util float64
	// PagingDay marks a day whose mix leans memory-oversubscribed.
	PagingDay bool
	// Quality is the day's tuning-quality multiplier.
	Quality float64
	Jobs    []JobSpec
}

// Generator produces a day's job arrivals. Implementations must be pure:
// GenerateDay(d) returns the same plan no matter how many times or in
// what order days are generated.
type Generator interface {
	GenerateDay(day int) DayPlan
}

// mixGenerator is the calibrated Figure 1/2 demand model: daily
// utilisation draws, the node-count marginal, and the class mix.
type mixGenerator struct {
	cfg Config
	mix Mix

	// Node-count demand distribution (Figure 2's marginal): counts and
	// weights chosen so 16-, 32- and 8-node jobs dominate wall time and
	// >64-node jobs are rare.
	nodeCounts  []int
	nodeWeights *rng.Weighted
}

// NewGenerator builds the standard demand generator for a campaign
// configuration and class mix.
//
//hpmlint:pure the generator must be constructible identically on every worker
func NewGenerator(cfg Config, mix Mix) Generator {
	return &mixGenerator{
		cfg:        cfg,
		mix:        mix,
		nodeCounts: []int{1, 2, 4, 8, 16, 24, 28, 32, 48, 64, 80, 96, 128},
		nodeWeights: rng.NewWeighted([]float64{
			3, 3, 6, 15, 32, 5, 4, 19, 6, 7, 0.9, 0.6, 0.4,
		}),
	}
}

// classFor assigns a workload class given the node count and day
// character, consuming draws from the day's generation stream.
func (g *mixGenerator) classFor(rnd *rng.Source, nodes int, pagingDay bool) Class {
	if nodes > 64 {
		// The paper: >64-node jobs were paging (memory oversubscription),
		// not floating-point intensive, or using synchronous comm.
		switch {
		case rnd.Bool(0.75):
			return g.mix.Paging
		case rnd.Bool(0.6):
			return g.mix.NonFP
		default:
			return g.mix.Production
		}
	}
	pagingShare := 0.04
	if pagingDay {
		pagingShare = 0.35
	}
	x := rnd.Float64()
	switch {
	case x < pagingShare:
		return g.mix.Paging
	case x < pagingShare+0.13:
		return g.mix.Debug
	case x < pagingShare+0.13+0.06:
		return g.mix.Tuned
	case x < pagingShare+0.13+0.06+0.04:
		return g.mix.Bench
	default:
		return g.mix.Production
	}
}

// GenerateDay produces the day's job arrivals: total node-seconds of
// demand set by the day's target utilisation, spread uniformly over the
// day. Every draw comes from the day's own substream, so the plan depends
// only on (Config, mix, day).
//
//hpmlint:pure the staged engine replays days in any order at any worker count
func (g *mixGenerator) GenerateDay(day int) DayPlan {
	rnd := rng.Stream(g.cfg.Seed, genStreamBase+uint64(day))

	util := rnd.NormalClamped(g.cfg.MeanUtil, g.cfg.UtilSigma, 0.05, 0.97)
	// Weekend dips: submission demand drops when the users go home — part
	// of the load-demand fluctuation Figure 1 attributes the variability
	// to. (The campaign starts on a Monday.)
	if dow := day % 7; dow == 5 || dow == 6 {
		util *= 0.62
	}
	pagingDay := rnd.Bool(g.cfg.PagingDayProb)
	// Day quality: how well-tuned the day's job population is. Most days
	// sit below 1 (development machine), a few are benchmark-grade.
	quality := rnd.LogNormal(-0.22, 0.30)
	if quality < 0.35 {
		quality = 0.35
	}
	if quality > 1.35 {
		quality = 1.35
	}

	plan := DayPlan{Day: day, Util: util, PagingDay: pagingDay, Quality: quality}
	demand := util * float64(g.cfg.Nodes) * 86400
	dayStart := simclock.Days(float64(day))
	for demand > 0 {
		nodes := g.nodeCounts[g.nodeWeights.Sample(rnd)]
		wall := rnd.LogNormal(9.2, 0.85) // median ~10^4/e^0.8... ~9900 s
		if wall < 700 {
			wall = 700
		}
		if wall > 86400 {
			wall = 86400
		}
		class := g.classFor(rnd, nodes, pagingDay)
		at := dayStart + simclock.Time(rnd.Float64()*86400)
		uid := uint64(day)<<jobUIDShift | uint64(len(plan.Jobs))
		plan.Jobs = append(plan.Jobs, JobSpec{
			UID: uid,
			At:  at,
			Spec: pbs.Spec{
				User:               fmt.Sprintf("u%02d", rnd.Intn(40)),
				Nodes:              nodes,
				WallSeconds:        wall,
				Class:              class.Name,
				MemoryPerNodeBytes: class.MemoryPerNode,
				PerfFactor:         quality,
				StreamID:           uid,
			},
		})
		demand -= float64(nodes) * wall
	}
	return plan
}
