package workload

// Scalar and node-count distributions for the data-driven generator. The
// hard-coded draws the 1996 mix used (lognormal wall times, the Figure 2
// node-count marginal, the day-quality multiplier) become Dist / SizeDist
// values carried in the Mix, so a workload spec can swap them without
// touching generator code. Sampling consumes draws from the caller's
// substream only — a Dist owns no state — which keeps GenerateDay pure and
// bit-identical at any worker count.

import (
	"fmt"

	"repro/internal/rng"
)

// DistKind selects a scalar distribution family.
type DistKind uint8

const (
	// DistLogNormal draws exp(Normal(A, B)): A is mu, B is sigma.
	DistLogNormal DistKind = iota
	// DistNormal draws Normal(A, B): A is the mean, B the stddev.
	DistNormal
	// DistExponential draws Exponential with mean A.
	DistExponential
	// DistUniform draws uniformly from [A, B).
	DistUniform
	// DistConstant always yields A, consuming no randomness.
	DistConstant
)

// String names the distribution family the way specs spell it.
func (k DistKind) String() string {
	switch k {
	case DistLogNormal:
		return "lognormal"
	case DistNormal:
		return "normal"
	case DistExponential:
		return "exponential"
	case DistUniform:
		return "uniform"
	case DistConstant:
		return "constant"
	}
	return fmt.Sprintf("DistKind(%d)", uint8(k))
}

// Dist is one scalar distribution: a family, its two parameters (meaning
// per family, see the DistKind constants) and an optional clamp. A zero
// Min or Max disables that side of the clamp — every quantity the
// generator draws is positive, so zero never needs to be representable.
type Dist struct {
	Kind DistKind
	A, B float64
	// Min and Max clamp the draw after sampling (0 = unclamped). Clamping
	// after the draw, rather than redrawing, keeps the number of stream
	// draws per sample fixed — a redraw loop would make later draws in the
	// same substream depend on how often the tail was hit.
	Min, Max float64
}

// Sample draws one value. The draw count per call is fixed for a given
// Kind, so samplers can be interleaved on one substream deterministically.
func (d Dist) Sample(rnd *rng.Source) float64 {
	var v float64
	switch d.Kind {
	case DistLogNormal:
		v = rnd.LogNormal(d.A, d.B)
	case DistNormal:
		v = rnd.Normal(d.A, d.B)
	case DistExponential:
		v = rnd.Exponential(d.A)
	case DistUniform:
		v = rnd.Range(d.A, d.B)
	case DistConstant:
		v = d.A
	default:
		panic(fmt.Sprintf("workload: unknown distribution kind %d", d.Kind))
	}
	if d.Min > 0 && v < d.Min {
		v = d.Min
	}
	if d.Max > 0 && v > d.Max {
		v = d.Max
	}
	return v
}

// SizeDist is a discrete node-count distribution: Counts[i] is requested
// with probability Weights[i]/sum(Weights). The generator compiles it to
// an rng.Weighted once per campaign.
type SizeDist struct {
	Counts  []int
	Weights []float64
}

// sampler compiles the distribution; it panics on an empty or all-zero
// table, mirroring rng.NewWeighted (spec-driven mixes are validated long
// before they reach here).
func (s SizeDist) sampler() *rng.Weighted {
	if len(s.Counts) != len(s.Weights) {
		panic(fmt.Sprintf("workload: size distribution has %d counts but %d weights", len(s.Counts), len(s.Weights)))
	}
	return rng.NewWeighted(s.Weights)
}
