package workload

// The reduce stage. The campaign emits its reduction as a stream — one
// Day as each simulated day closes, then the end-of-campaign aggregates —
// and a Reducer folds that stream into whatever the consumer needs. The
// analysis layer can compute figures online without ever holding the full
// nine-month Result; ResultReducer is the fold that reconstructs the
// classic struct.

import (
	"repro/internal/faults"
	"repro/internal/pbs"
)

// Final carries the campaign's end-of-run aggregates: everything that is
// only known once the window closes.
type Final struct {
	Config Config
	// Records is the filtered batch accounting database.
	Records []pbs.Record
	// MaxGflops15min is the highest 15-minute system rate observed.
	MaxGflops15min float64
	// DroppedRecords counts jobs under the record filter.
	DroppedRecords int
	// Coverage is the fault layer's sample-accounting report; nil when the
	// campaign ran without fault injection.
	Coverage *faults.Report
}

// Reducer consumes a campaign's reduction stream. ReduceDay is called
// once per simulated day, in day order, as the day closes; Finish is
// called exactly once after the last day.
type Reducer interface {
	ReduceDay(d Day)
	Finish(f Final)
}

// ResultReducer folds the stream into a Result — the default reduction,
// equivalent to what the monolithic campaign used to build in place.
// The zero value is ready to use.
type ResultReducer struct {
	res Result
}

// ReduceDay appends the day to the result.
//
//hpmlint:pure reduction must depend only on the day stream, never on timing
func (r *ResultReducer) ReduceDay(d Day) { r.res.Days = append(r.res.Days, d) }

// Finish folds in the end-of-campaign aggregates.
//
//hpmlint:pure reduction must depend only on the day stream, never on timing
func (r *ResultReducer) Finish(f Final) {
	r.res.Config = f.Config
	r.res.Records = f.Records
	r.res.MaxGflops15min = f.MaxGflops15min
	r.res.DroppedRecords = f.DroppedRecords
	r.res.Coverage = f.Coverage
}

// Result returns the folded result.
func (r *ResultReducer) Result() Result { return r.res }

// TeeReducer fans the stream out to several reducers in order — e.g. a
// live per-day printer alongside the Result fold.
type TeeReducer []Reducer

// ReduceDay forwards the day to every reducer.
func (t TeeReducer) ReduceDay(d Day) {
	for _, r := range t {
		r.ReduceDay(d)
	}
}

// Finish forwards the final aggregates to every reducer.
func (t TeeReducer) Finish(f Final) {
	for _, r := range t {
		r.Finish(f)
	}
}
