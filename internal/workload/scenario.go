package workload

// Scenario shaping: the parts of a Mix that describe *who* submits jobs
// and *when*, rather than what the jobs compute. Everything here is pure
// data evaluated with either no randomness at all (share factors, arrival
// warps — pure functions of the day or of a uniform draw) or a fixed
// number of substream draws, so the generator stays bit-identical at any
// worker count no matter which scenario is loaded.

import (
	"math"

	"repro/internal/rng"
)

// ArrivalProcess selects how a client's jobs are placed within the day.
// The generator is closed-loop — the number of jobs per day comes from the
// demand model, not from an open arrival rate — so the process shapes the
// placement of a day's submissions, not their count.
type ArrivalProcess uint8

const (
	// ArrivalPoisson places each job independently and uniformly over the
	// day — the order statistics of a homogeneous Poisson process, and
	// exactly what the 1996 mix hard-coded.
	ArrivalPoisson ArrivalProcess = iota
	// ArrivalGammaBurst clusters submissions into bursts: the day is cut
	// into roughly 24/CV burst windows and each job lands at an
	// exponentially-distributed offset into one window. Larger CV means
	// fewer, denser bursts.
	ArrivalGammaBurst
	// ArrivalWeibull warps placement with density shape*p^(shape-1):
	// shape < 1 front-loads the day, shape > 1 ramps load toward the end,
	// shape = 1 is uniform.
	ArrivalWeibull
)

// Arrival is one client's placement process.
type Arrival struct {
	Process ArrivalProcess
	// CV is the gamma-burst coefficient of variation (ignored otherwise).
	CV float64
	// Shape is the Weibull shape parameter (ignored otherwise).
	Shape float64
}

// sample returns the job's position in the day as a fraction in [0, 1).
// Poisson consumes one draw — the same single uniform the 1996 generator
// spent — so the paper preset's stream is untouched.
func (a Arrival) sample(rnd *rng.Source) float64 {
	switch a.Process {
	case ArrivalGammaBurst:
		cv := a.CV
		if cv < 1 {
			cv = 1
		}
		bursts := int(24/cv + 0.5)
		if bursts < 1 {
			bursts = 1
		}
		b := rnd.Intn(bursts)
		off := rnd.Exponential(0.25)
		off -= math.Floor(off) // fold the exponential tail back into the window
		return (float64(b) + off) / float64(bursts)
	case ArrivalWeibull:
		shape := a.Shape
		if shape <= 0 {
			shape = 1
		}
		return math.Pow(rnd.Float64(), 1/shape)
	default:
		return rnd.Float64()
	}
}

// LifecyclePattern selects how a client cohort's presence evolves over
// the campaign.
type LifecyclePattern uint8

const (
	// LifeSteady keeps the cohort's share constant — the 1996 behaviour.
	LifeSteady LifecyclePattern = iota
	// LifeDiurnal keeps the share constant but concentrates the cohort's
	// within-day arrivals around Peak with strength Amplitude.
	LifeDiurnal
	// LifeSpike multiplies the cohort's share by Factor for Days days
	// starting at StartDay (a deadline crunch, a benchmark drive).
	LifeSpike
	// LifeDrain ramps the cohort's share linearly from full at StartDay to
	// zero at StartDay+Days (a project winding down, a decommissioned
	// code).
	LifeDrain
)

// Lifecycle is one client's cohort dynamics. The zero value is steady.
type Lifecycle struct {
	Pattern LifecyclePattern
	// StartDay and Days bound the spike or drain window.
	StartDay int
	Days     int
	// Factor is the spike's share multiplier.
	Factor float64
	// Amplitude in [0, 1] is the diurnal concentration strength; Peak in
	// [0, 1) is the within-day position arrivals concentrate around.
	Amplitude float64
	Peak      float64
}

// shareFactor is the multiplier applied to the client's share on the
// given day — a pure function of the day index, consuming no randomness.
func (l Lifecycle) shareFactor(day int) float64 {
	switch l.Pattern {
	case LifeSpike:
		if day >= l.StartDay && day < l.StartDay+l.Days {
			return l.Factor
		}
	case LifeDrain:
		if day < l.StartDay {
			return 1
		}
		if l.Days <= 0 || day >= l.StartDay+l.Days {
			return 0
		}
		return 1 - float64(day-l.StartDay)/float64(l.Days)
	}
	return 1
}

// warp maps a uniform within-day position to the cohort's diurnal
// placement: a monotone transform whose derivative is smallest around the
// peak, so arrival density is highest there. Identity for every other
// pattern, and for amplitude zero — the paper preset passes positions
// through untouched.
func (l Lifecycle) warp(p float64) float64 {
	if l.Pattern != LifeDiurnal || l.Amplitude <= 0 {
		return p
	}
	o := p - 0.5
	o = (1-l.Amplitude)*o + 2*l.Amplitude*o*math.Abs(o)
	p = l.Peak + o
	p -= math.Floor(p) // wrap into [0, 1)
	return p
}

// Client is one named traffic source: a workload class plus its share of
// the job stream and the shaping of its jobs' sizes, runtimes and arrival
// placement. The paper's Table 2 population is six of these.
type Client struct {
	Class Class
	// Share is the client's rate fraction: the probability a generated
	// job (at or below the large-job threshold) is assigned to this
	// client. Non-remainder shares must sum to at most 1; assignment
	// walks clients in Mix order and the remainder client absorbs
	// whatever the walk leaves.
	Share float64
	// PagingDayShare replaces Share on memory-oversubscribed days.
	PagingDayShare float64
	// Remainder marks the client that takes the unassigned share; a valid
	// mix has exactly one.
	Remainder bool
	Arrival   Arrival
	Lifecycle Lifecycle
	// JobSize, when non-nil, re-draws the job's node count from this
	// distribution after class assignment (the mix-wide draw still
	// happens first, so scenarios without overrides keep a bit-identical
	// stream).
	JobSize *SizeDist
	// Runtime, when non-nil, re-draws the job's wall time the same way.
	Runtime *Dist
}

// LargeJobOverride is one step of the large-job class policy: with
// probability Prob the job is assigned to Clients[Client].
type LargeJobOverride struct {
	Client int
	Prob   float64
}

// LargeJobPolicy reroutes jobs above a node-count threshold: the paper
// found >64-node jobs were paging, non-floating-point or barely-tuned
// codes, never the well-behaved production classes. Overrides are
// evaluated in order, each consuming one Bool draw until one fires;
// Fallback takes the rest. A zero ThresholdNodes disables the policy.
type LargeJobPolicy struct {
	ThresholdNodes int
	Overrides      []LargeJobOverride
	Fallback       int
}
