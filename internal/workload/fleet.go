package workload

// Fleet merge primitives: the canonical-order reduction that folds many
// independent cluster campaigns into one fleet-wide Result. The fleet
// orchestration itself (sharding, checkpoint/resume) lives in
// internal/fleet; the merge lives here because it is part of the
// reduction contract — the same bit-identity rules that govern a single
// campaign govern the fold across clusters:
//
//   - counter deltas are integers, so any fold order gives the same bits,
//     but busy-time and covered-time are floats whose sum depends on
//     order: every fold below walks clusters in ascending cluster index,
//     the canonical order, so the merged result is identical for any
//     shard count and any completion order;
//   - a single-cluster merge is the identity: folding one Result through
//     MergeResults reproduces it field for field, which is what lets the
//     golden campaign hash hold through the fleet path.
//
// The merged view is day-major — fleet day d aggregates every cluster's
// day d, the paper's per-day cluster reduction applied to the whole
// fleet — so the analysis layer consumes a fleet exactly as it consumes
// one machine, with Config.Nodes carrying the fleet-wide node count.

import (
	"repro/internal/faults"
	"repro/internal/pbs"
	"repro/internal/rng"
)

// ClusterSeed derives cluster i's campaign seed from the fleet seed.
// Cluster 0 is the anchor: it keeps the fleet seed unchanged, so a
// one-cluster fleet runs the exact campaign the single-cluster path runs
// (the golden-hash contract). Every other cluster draws its seed from a
// dedicated substream namespace, disjoint from the generation and job
// namespaces by construction.
//
//hpmlint:pure seed derivation must be identical on every shard
func ClusterSeed(seed uint64, cluster int) uint64 {
	if cluster == 0 {
		return seed
	}
	return rng.Stream(seed, clusterStreamBase+uint64(cluster)).Uint64()
}

// Merge folds another cluster's same-index day into this one: counter
// deltas add exactly (integers), busy time accumulates in call order —
// which the fleet merge keeps canonical (ascending cluster index).
//
//hpmlint:pure the day fold must depend only on its operands, never on timing
func (d *Day) Merge(o Day) {
	d.Delta.Add(o.Delta)
	d.BusyNodeSeconds += o.BusyNodeSeconds
}

// MergeFinal folds the end-of-campaign aggregates of several cluster
// results, walked in slice (canonical cluster) order, into one fleet
// Final: records concatenate, the record filter counts add, the peak
// 15-minute rate is the fleet-wide maximum, and coverage reports merge
// day-major. The merged Config describes the fleet view — cluster 0's
// parameters with Days the longest window and Nodes the fleet total — so
// per-node reductions divide by fleet capacity. It panics on an empty
// parts slice: a fleet has at least one cluster.
//
//hpmlint:pure the merge is part of the reduction; it must be bit-identical everywhere
func MergeFinal(parts []Result) Final {
	if len(parts) == 0 {
		panic("workload: MergeFinal of no results")
	}
	cfg := parts[0].Config
	cfg.Nodes = 0
	var f Final
	f.MaxGflops15min = parts[0].MaxGflops15min
	var records []pbs.Record
	for i := range parts {
		p := &parts[i]
		if p.Config.Days > cfg.Days {
			cfg.Days = p.Config.Days
		}
		cfg.Nodes += p.Config.Nodes
		if p.MaxGflops15min > f.MaxGflops15min {
			f.MaxGflops15min = p.MaxGflops15min
		}
		f.DroppedRecords += p.DroppedRecords
		if p.Records != nil && records == nil {
			records = []pbs.Record{}
		}
		records = append(records, p.Records...)
	}
	f.Config = cfg
	f.Records = records
	f.Coverage = mergeCoverage(parts)
	return f
}

// mergeCoverage merges the fault layer's sample-accounting reports
// day-major, in canonical cluster order. A fleet has a coverage report
// only when every cluster ran under fault injection; mixing faulted and
// fault-free clusters yields no report, because a partial ledger could
// not cross-foot against the fleet's expected samples.
//
//hpmlint:pure ledger folding is pure accounting over the cluster reports
func mergeCoverage(parts []Result) *faults.Report {
	maxDay := -1
	for i := range parts {
		if parts[i].Coverage == nil {
			return nil
		}
		for _, dc := range parts[i].Coverage.Days {
			if dc.Day > maxDay {
				maxDay = dc.Day
			}
		}
	}
	merged := &faults.Report{}
	if maxDay >= 0 {
		merged.Days = make([]faults.DayCoverage, maxDay+1)
		for d := range merged.Days {
			merged.Days[d].Day = d
		}
	}
	for i := range parts {
		cov := parts[i].Coverage
		merged.Total.Add(cov.Total)
		for _, dc := range cov.Days {
			row := &merged.Days[dc.Day]
			row.Coverage.Add(dc.Coverage)
			row.CoveredNodeSeconds += dc.CoveredNodeSeconds
		}
	}
	return merged
}

// MergeResults is the whole-fleet fold: per-day counter reductions merged
// day-major plus the MergeFinal aggregates, all in canonical cluster
// order. Folding a single Result is the identity — the golden-hash
// contract of the fleet path — and the fold is a pure function of the
// parts, so any shard count and any completion order produce the same
// merged Result.
//
//hpmlint:pure the merge is part of the reduction; it must be bit-identical everywhere
func MergeResults(parts []Result) Result {
	f := MergeFinal(parts)
	days := make([]Day, 0, f.Config.Days)
	for d := 0; d < f.Config.Days; d++ {
		day := Day{Index: d}
		for i := range parts {
			if d < len(parts[i].Days) {
				day.Merge(parts[i].Days[d])
			}
		}
		days = append(days, day)
	}
	var rr ResultReducer
	rr.res.Days = days
	rr.Finish(f)
	return rr.Result()
}
