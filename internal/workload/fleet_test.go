package workload

// The fleet merge primitives' own contract, tested below the fleet
// runner: single-cluster folding is the identity (the golden-hash
// anchor), seeds are namespaced, and the multi-cluster fold is a pure,
// order-canonical function of its parts.

import (
	"reflect"
	"testing"

	"repro/internal/faults"
)

func TestClusterSeedAnchorsClusterZero(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 0xdeadbeef} {
		if got := ClusterSeed(seed, 0); got != seed {
			t.Fatalf("ClusterSeed(%d, 0) = %d, want the fleet seed unchanged", seed, got)
		}
	}
	seen := map[uint64]int{7: 0}
	for c := 1; c <= 64; c++ {
		s := ClusterSeed(7, c)
		if prev, dup := seen[s]; dup {
			t.Fatalf("ClusterSeed(7, %d) collides with cluster %d", c, prev)
		}
		seen[s] = c
	}
}

func TestMergeResultsSingleClusterIsIdentity(t *testing.T) {
	res := shortCampaign(t, 3, 11)
	merged := MergeResults([]Result{res})
	if !reflect.DeepEqual(res, merged) {
		t.Fatalf("single-cluster merge is not the identity:\n direct %+v\n merged %+v", res, merged)
	}
	if h1, h2 := resultHash(t, res), resultHash(t, merged); h1 != h2 {
		t.Fatalf("single-cluster merge changed the hash: %#x vs %#x", h2, h1)
	}
}

func TestMergeResultsSingleClusterIsIdentityFaulted(t *testing.T) {
	cfg := DefaultConfig(13)
	cfg.Days = 2
	cfg.Faults = &faults.Config{
		CrashProbPerNodeDay: 0.05,
		MeanOutageTicks:     4,
		DropProbPerSample:   0.02,
	}
	res := NewCampaign(cfg, DefaultMix(std(t))).Run()
	if res.Coverage == nil {
		t.Fatal("faulted campaign produced no coverage report")
	}
	merged := MergeResults([]Result{res})
	if !reflect.DeepEqual(res, merged) {
		t.Fatal("single-cluster merge is not the identity under fault injection")
	}
	if err := merged.Coverage.Check(); err != nil {
		t.Fatalf("merged coverage ledger does not balance: %v", err)
	}
}

func TestMergeResultsFleetView(t *testing.T) {
	a := shortCampaign(t, 3, 21)
	cfgB := DefaultConfig(ClusterSeed(21, 1))
	cfgB.Days = 2
	b := NewCampaign(cfgB, DefaultMix(std(t))).Run()

	merged := MergeResults([]Result{a, b})
	if want := a.Config.Nodes + b.Config.Nodes; merged.Config.Nodes != want {
		t.Fatalf("fleet Nodes = %d, want the fleet total %d", merged.Config.Nodes, want)
	}
	if merged.Config.Days != 3 || len(merged.Days) != 3 {
		t.Fatalf("fleet Days = %d (%d rows), want the longest window 3", merged.Config.Days, len(merged.Days))
	}
	// Day 0 folds both clusters; day 2 is cluster a alone.
	if want := a.Days[0].BusyNodeSeconds + b.Days[0].BusyNodeSeconds; merged.Days[0].BusyNodeSeconds != want {
		t.Fatalf("day 0 busy = %v, want %v", merged.Days[0].BusyNodeSeconds, want)
	}
	if merged.Days[2].BusyNodeSeconds != a.Days[2].BusyNodeSeconds {
		t.Fatalf("day 2 should be cluster a alone")
	}
	if want := len(a.Records) + len(b.Records); len(merged.Records) != want {
		t.Fatalf("fleet records = %d, want %d", len(merged.Records), want)
	}
	if want := a.DroppedRecords + b.DroppedRecords; merged.DroppedRecords != want {
		t.Fatalf("fleet dropped = %d, want %d", merged.DroppedRecords, want)
	}
	max := a.MaxGflops15min
	if b.MaxGflops15min > max {
		max = b.MaxGflops15min
	}
	if merged.MaxGflops15min != max {
		t.Fatalf("fleet MaxGflops15min = %v, want %v", merged.MaxGflops15min, max)
	}
	// A fault-free fleet has no coverage report.
	if merged.Coverage != nil {
		t.Fatal("fault-free fleet grew a coverage report")
	}
}

func TestMergeFinalPanicsOnEmptyFleet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MergeFinal of no results did not panic")
		}
	}()
	MergeFinal(nil)
}
