package workload

// hpmtel instrumentation for the staged campaign engine. The handles are
// package-level so the hot paths pay only the atomic update, never a
// registry lookup; everything registers into telemetry.Default, the
// process-wide registry the CLIs dump and rs2hpmd serves. Updates are
// observation only — no metric feeds back into simulated state, so the
// golden campaign hash is identical with telemetry on or off.

import "repro/internal/telemetry"

var (
	// The simulate stage (engine.go): bulk state advancement.
	telEngine    = telemetry.Default.Scope("workload.engine")
	telAdvanced  = telEngine.Counter("jobs_advanced")
	telSampled   = telEngine.Counter("nodes_sampled")
	telAdvanceNs = telEngine.Histogram("advance_ns", telemetry.DurationBuckets)
	telSampleNs  = telEngine.Histogram("sample_ns", telemetry.DurationBuckets)

	// The campaign lifecycle (workload.go): generate → simulate → reduce.
	telCampaign   = telemetry.Default.Scope("workload.campaign")
	telDays       = telCampaign.Counter("days")
	telTicks      = telCampaign.Counter("ticks")
	telGenerateNs = telCampaign.Histogram("generate_ns", telemetry.DurationBuckets)
	telTickNs     = telCampaign.Histogram("tick_ns", telemetry.DurationBuckets)
	telReduceNs   = telCampaign.Histogram("reduce_ns", telemetry.DurationBuckets)

	// The fault layer's per-day sampling fates, folded in at day close
	// from the coverage ledger (one batched Add per fate per day, not one
	// atomic op per node per tick).
	telFaults           = telemetry.Default.Scope("workload.faults")
	telFateCaptured     = telFaults.Counter("captured")
	telFateDropped      = telFaults.Counter("dropped")
	telFateDown         = telFaults.Counter("down")
	telFateRebased      = telFaults.Counter("rebased")
	telFateDuplicates   = telFaults.Counter("duplicates")
	telFaultResets      = telFaults.Counter("resets")
	telDelayedEpilogues = telFaults.Counter("delayed_epilogues")
)

// addLedger folds one non-negative int64 ledger entry into a counter.
func addLedger(c *telemetry.Counter, v int64) {
	if v > 0 {
		c.Add(uint64(v))
	}
}

// TelemetryReducer is the reduce-stage tap for hpmtel: it ignores the day
// stream and captures a snapshot of the process-wide registry when the
// campaign finishes, so a telemetry dump rides alongside the Result in a
// TeeReducer without touching the Result itself (the golden-hash
// contract: observability is never part of the reduction).
type TelemetryReducer struct {
	// Snapshot is populated by Finish.
	Snapshot telemetry.Snapshot
}

// ReduceDay ignores the day stream.
func (r *TelemetryReducer) ReduceDay(Day) {}

// Finish captures the process-wide telemetry snapshot.
func (r *TelemetryReducer) Finish(Final) { r.Snapshot = telemetry.Default.Snapshot() }
