// Package workload models the NAS SP2 user population over the paper's
// nine-month measurement window (July 1996 - March 1997): a stochastic
// stream of batch jobs with the published marginals —
//
//   - node counts peaked at 16 (then 32 and 8), with almost no demand
//     beyond 64 nodes (Figure 2);
//   - a job-class mix dominated by moderately-tuned multi-block CFD, with
//     a tail of well-tuned codes (the 40 Mflops/node Navier-Stokes run of
//     Cui and Street), debug/development runs, NPB-style benchmarks, and
//     — for >64-node jobs — memory-oversubscribed codes that page
//     (Figures 3 and 5);
//   - daily load demand averaging ~64% utilisation with heavy
//     day-to-day variability and no trend over time (Figure 1);
//   - per-job performance spread matching Figure 4's 320 +/- 200 Mflops
//     for 16-node jobs.
//
// Jobs run under the pbs scheduler on dedicated nodes; while a job runs,
// its nodes' hardware counters advance at the rates micro-measured for its
// class (see internal/profile), and the campaign reduces the counter
// stream to per-day cluster deltas — the same reduction the 15-minute
// RS2HPM cron sampling performed.
package workload

import (
	"fmt"

	"repro/internal/hpm"
	"repro/internal/node"
	"repro/internal/pbs"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/units"
)

// Class describes one workload class: which crunch profile it runs, how
// much of its wall time is computation, and its I/O signature.
type Class struct {
	Name string
	// Crunch is the pure-computation counter signature.
	Crunch profile.Profile
	// ComputeDuty is the fraction of job wall time spent crunching; the
	// rest is communication/imbalance.
	ComputeDuty float64
	// CommActive is the fraction of non-compute time spent in the
	// message-passing software path (buffer copies); the remainder idles.
	CommActive float64
	// Comm is the message-passing service signature.
	Comm profile.Profile
	// PerfSigma is the lognormal sigma of per-job performance jitter.
	PerfSigma float64
	// MemoryPerNode is the per-node working set (drives the record and,
	// for paging classes, already baked into the crunch profile).
	MemoryPerNode uint64
	// MsgBytesPerFlop scales message volume with computation.
	MsgBytesPerFlop float64
	// DiskOutBytesPerSec is steady result-output traffic to the NFS home
	// filesystems (memory-to-device: dma_read).
	DiskOutBytesPerSec float64
}

// jobProfile builds the effective per-node profile for one job instance:
// jittered crunch, duty-cycled, overlaid with active comm time, with DMA
// rates derived from the class's message volume.
func (c Class) jobProfile(jitter float64) profile.Profile {
	crunch := c.Crunch.Scale(jitter)
	p := crunch.Scale(c.ComputeDuty)
	p = p.Plus(c.Comm.Scale((1 - c.ComputeDuty) * c.CommActive))

	// Message traffic: each node both sends and receives at the same
	// volume (halo exchanges are symmetric); sends are dma_read
	// (memory-to-device), receives dma_write. Disk output adds reads.
	inJobFlopsPerSec := p.Mflops * 1e6
	msgTransfersPerSec := c.MsgBytesPerFlop * inJobFlopsPerSec / 64
	diskTransfersPerSec := c.DiskOutBytesPerSec / 64
	p = p.WithDMA(msgTransfersPerSec+diskTransfersPerSec, msgTransfersPerSec)
	p.Name = c.Name
	return p
}

// Mix is the full class registry plus node-count and class-assignment
// distributions.
type Mix struct {
	Production Class // moderately tuned multi-block CFD: the bulk
	Tuned      Class // well-tuned codes (Cui & Street class)
	Debug      Class // development runs: slow, short
	Bench      Class // NPB-style benchmark runs
	Paging     Class // memory-oversubscribed codes
	NonFP      Class // non-floating-point large jobs
}

// DefaultMix builds the calibrated class mix from measured kernel profiles.
func DefaultMix(std profile.Standard) Mix {
	return Mix{
		Production: Class{
			Name:               "production-cfd",
			Crunch:             std.CFD,
			ComputeDuty:        0.80,
			CommActive:         0.45,
			Comm:               std.Comm,
			PerfSigma:          0.45,
			MemoryPerNode:      48 << 20,
			MsgBytesPerFlop:    0.06,
			DiskOutBytesPerSec: 300e3,
		},
		Tuned: Class{
			Name:               "tuned-cfd",
			Crunch:             std.BT, // high-ILP, cache-blocked codes
			ComputeDuty:        0.50,
			CommActive:         0.5,
			Comm:               std.Comm,
			PerfSigma:          0.25,
			MemoryPerNode:      24 << 20,
			MsgBytesPerFlop:    0.03,
			DiskOutBytesPerSec: 200e3,
		},
		Debug: Class{
			Name:               "debug",
			Crunch:             std.CFD.Scale(0.45),
			ComputeDuty:        0.55,
			CommActive:         0.5,
			Comm:               std.Comm,
			PerfSigma:          0.6,
			MemoryPerNode:      16 << 20,
			MsgBytesPerFlop:    0.08,
			DiskOutBytesPerSec: 100e3,
		},
		Bench: Class{
			Name:               "npb-bench",
			Crunch:             std.BT,
			ComputeDuty:        0.55,
			CommActive:         0.5,
			Comm:               std.Comm,
			PerfSigma:          0.15,
			MemoryPerNode:      24 << 20,
			MsgBytesPerFlop:    0.03,
			DiskOutBytesPerSec: 100e3,
		},
		Paging: Class{
			Name:               "paging",
			Crunch:             std.Paging,
			ComputeDuty:        0.9,  // "compute" here is mostly fault service
			CommActive:         0.12, // thrashing jobs barely reach their comm phases
			Comm:               std.Comm,
			PerfSigma:          0.5,
			MemoryPerNode:      256 << 20, // 2x node memory
			MsgBytesPerFlop:    0.02,
			DiskOutBytesPerSec: 100e3,
		},
		NonFP: Class{
			Name:               "non-fp",
			Crunch:             std.Comm, // integer/copy-bound work
			ComputeDuty:        0.7,
			CommActive:         0.5,
			Comm:               std.Comm,
			PerfSigma:          0.4,
			MemoryPerNode:      32 << 20,
			MsgBytesPerFlop:    0.0,
			DiskOutBytesPerSec: 400e3,
		},
	}
}

// Config parameterises a campaign.
type Config struct {
	Days  int // 270 for the paper's nine months
	Nodes int // 144
	Seed  uint64
	// SamplePeriodSeconds is the counter sampling cadence (900 = 15 min).
	SamplePeriodSeconds float64
	// MeanUtil / UtilSigma shape the daily demand distribution.
	MeanUtil  float64
	UtilSigma float64
	// PagingDayProb is the probability a day's mix leans oversubscribed.
	PagingDayProb float64
	// MinRecordWall filters batch records (600 s in the paper).
	MinRecordWall float64
}

// DefaultConfig returns the paper's campaign parameters.
func DefaultConfig(seed uint64) Config {
	return Config{
		Days:                270,
		Nodes:               units.NodeCount,
		Seed:                seed,
		SamplePeriodSeconds: 900,
		MeanUtil:            0.65,
		UtilSigma:           0.20,
		PagingDayProb:       0.20,
		MinRecordWall:       600,
	}
}

// Day is the campaign's per-day reduction of the counter stream.
type Day struct {
	Index int
	// Delta is the cluster-wide counter delta for the day (all nodes).
	Delta hpm.Delta
	// BusyNodeSeconds is PBS-allocated node time during the day.
	BusyNodeSeconds float64
}

// Gflops reports the day's system floating-point rate in Gflops.
func (d Day) Gflops() float64 {
	r := hpm.UserRates(d.Delta, 86400)
	return r.MflopsAll / 1000 // cluster-wide Mflops -> Gflops
}

// PerNodeRates reports the day's per-node user rates (the Table 2/3 view:
// cluster totals divided by node count).
func (d Day) PerNodeRates(nodes int) hpm.Rates {
	return hpm.UserRates(d.Delta, 86400*float64(nodes))
}

// Utilization reports the day's PBS utilisation.
func (d Day) Utilization(nodes int) float64 {
	return d.BusyNodeSeconds / (86400 * float64(nodes))
}

// SystemUserFXURatio reports the day's paging indicator (Figure 5 x-axis).
func (d Day) SystemUserFXURatio() float64 {
	return hpm.SystemUserFXURatio(d.Delta)
}

// Result is everything the analysis layer needs.
type Result struct {
	Config  Config
	Days    []Day
	Records []pbs.Record
	// MaxGflops15min is the highest 15-minute system rate observed.
	MaxGflops15min float64
	// DroppedRecords counts jobs under the record filter.
	DroppedRecords int
}

// Campaign drives the cluster through the measurement window.
type Campaign struct {
	cfg   Config
	mix   Mix
	clock *simclock.Clock
	nodes []*node.Node
	srv   *pbs.Server
	rnd   *rng.Source

	nodeWeights *rng.Weighted
	nodeCounts  []int

	running map[int]*jobRun

	prev       []hpm.Counts64 // last sampled totals per node
	curDay     Day
	days       []Day
	prevBusyNS float64
	maxG15     float64
	lastTick   simclock.Time
}

type jobRun struct {
	job     *pbs.Job
	prof    profile.Profile
	applied simclock.Time // counters advanced up to this instant
	rnd     *rng.Source
}

// NewCampaign assembles a campaign. The mix usually comes from
// DefaultMix(profile.MeasureStandard(seed)).
func NewCampaign(cfg Config, mix Mix) *Campaign {
	if cfg.Days <= 0 || cfg.Nodes <= 0 {
		panic(fmt.Sprintf("workload: bad campaign config %+v", cfg))
	}
	if cfg.SamplePeriodSeconds <= 0 {
		cfg.SamplePeriodSeconds = 900
	}
	clock := &simclock.Clock{}
	nodes := make([]*node.Node, cfg.Nodes)
	for i := range nodes {
		nodes[i] = node.New(node.Config{ID: i})
	}
	c := &Campaign{
		cfg:     cfg,
		mix:     mix,
		clock:   clock,
		nodes:   nodes,
		rnd:     rng.New(cfg.Seed),
		running: make(map[int]*jobRun),
		prev:    make([]hpm.Counts64, cfg.Nodes),
	}
	c.srv = pbs.New(clock, nodes, pbs.Config{DrainThreshold: 64, MinRecordWall: cfg.MinRecordWall})
	c.srv.OnStart = c.onStart
	c.srv.OnEnd = c.onEnd

	// Node-count demand distribution (Figure 2's marginal): counts and
	// weights chosen so 16-, 32- and 8-node jobs dominate wall time and
	// >64-node jobs are rare.
	c.nodeCounts = []int{1, 2, 4, 8, 16, 24, 28, 32, 48, 64, 80, 96, 128}
	c.nodeWeights = rng.NewWeighted([]float64{
		3, 3, 6, 15, 32, 5, 4, 19, 6, 7, 0.9, 0.6, 0.4,
	})
	return c
}

// Nodes exposes the cluster (for examples and the daemon).
func (c *Campaign) Nodes() []*node.Node { return c.nodes }

// Clock exposes the simulation clock.
func (c *Campaign) Clock() *simclock.Clock { return c.clock }

// classFor assigns a workload class given the node count and day character.
func (c *Campaign) classFor(nodes int, pagingDay bool) Class {
	if nodes > 64 {
		// The paper: >64-node jobs were paging (memory oversubscription),
		// not floating-point intensive, or using synchronous comm.
		switch {
		case c.rnd.Bool(0.75):
			return c.mix.Paging
		case c.rnd.Bool(0.6):
			return c.mix.NonFP
		default:
			return c.mix.Production
		}
	}
	pagingShare := 0.04
	if pagingDay {
		pagingShare = 0.35
	}
	x := c.rnd.Float64()
	switch {
	case x < pagingShare:
		return c.mix.Paging
	case x < pagingShare+0.13:
		return c.mix.Debug
	case x < pagingShare+0.13+0.06:
		return c.mix.Tuned
	case x < pagingShare+0.13+0.06+0.04:
		return c.mix.Bench
	default:
		return c.mix.Production
	}
}

// onStart builds the job's effective profile (with per-job jitter and the
// day-quality factor assigned at submission).
func (c *Campaign) onStart(j *pbs.Job) {
	class := c.classByName(j.Spec.Class)
	// Mean-one lognormal jitter (mu = -sigma^2/2).
	sigma := class.PerfSigma
	jitter := c.rnd.LogNormal(-sigma*sigma/2, sigma)
	if f := j.Spec.PerfFactor; f > 0 {
		jitter *= f
	}
	if jitter < 0.2 {
		jitter = 0.2
	}
	if jitter > 1.6 {
		jitter = 1.6
	}
	c.running[j.ID] = &jobRun{
		job:     j,
		prof:    class.jobProfile(jitter),
		applied: c.clock.Now(),
		rnd:     c.rnd.Fork(),
	}
}

func (c *Campaign) classByName(name string) Class {
	for _, cl := range []Class{c.mix.Production, c.mix.Tuned, c.mix.Debug, c.mix.Bench, c.mix.Paging, c.mix.NonFP} {
		if cl.Name == name {
			return cl
		}
	}
	panic("workload: unknown class " + name)
}

// onEnd flushes the job's remaining counter extrapolation before the PBS
// epilogue reads the final totals.
func (c *Campaign) onEnd(j *pbs.Job) {
	run, ok := c.running[j.ID]
	if !ok {
		return
	}
	c.advanceJob(run, c.clock.Now())
	delete(c.running, j.ID)
}

// advanceJob applies the job's profile to its nodes up to instant t.
func (c *Campaign) advanceJob(run *jobRun, t simclock.Time) {
	dt := (t - run.applied).Seconds()
	if dt <= 0 {
		return
	}
	for _, nd := range run.job.Nodes() {
		nd.WithAccumulator(func(a *hpm.Accumulator) {
			run.prof.Apply(a, dt, run.rnd)
		})
	}
	run.applied = t
}

// tick is the 15-minute sampler: advance all running jobs, then fold every
// node's new counts into the current day and track the peak 15-minute rate.
func (c *Campaign) tick(at simclock.Time) {
	for _, run := range c.running {
		c.advanceJob(run, at)
	}
	var tickDelta hpm.Delta
	for i, nd := range c.nodes {
		cur := nd.Counters()
		d := hpm.Sub64(c.prev[i], cur)
		c.prev[i] = cur
		tickDelta.Add(d)
	}
	c.curDay.Delta.Add(tickDelta)

	span := (at - c.lastTick).Seconds()
	if span > 0 {
		g := hpm.UserRates(tickDelta, span).MflopsAll / 1000
		if g > c.maxG15 {
			c.maxG15 = g
		}
	}
	c.lastTick = at
}

// endDay closes out the current day.
func (c *Campaign) endDay(dayIdx int) {
	busy := c.srv.BusyNodeSeconds()
	c.curDay.Index = dayIdx
	c.curDay.BusyNodeSeconds = busy - c.prevBusyNS
	c.prevBusyNS = busy
	c.days = append(c.days, c.curDay)
	c.curDay = Day{}
}

// generateDay submits the day's job arrivals: total node-seconds of demand
// set by the day's target utilisation, spread uniformly over the day.
func (c *Campaign) generateDay(dayIdx int) {
	util := c.rnd.NormalClamped(c.cfg.MeanUtil, c.cfg.UtilSigma, 0.05, 0.97)
	// Weekend dips: submission demand drops when the users go home — part
	// of the load-demand fluctuation Figure 1 attributes the variability
	// to. (The campaign starts on a Monday.)
	if dow := dayIdx % 7; dow == 5 || dow == 6 {
		util *= 0.62
	}
	pagingDay := c.rnd.Bool(c.cfg.PagingDayProb)
	// Day quality: how well-tuned the day's job population is. Most days
	// sit below 1 (development machine), a few are benchmark-grade.
	quality := c.rnd.LogNormal(-0.22, 0.30)
	if quality < 0.35 {
		quality = 0.35
	}
	if quality > 1.35 {
		quality = 1.35
	}
	demand := util * float64(c.cfg.Nodes) * 86400

	dayStart := simclock.Days(float64(dayIdx))
	for demand > 0 {
		nodes := c.nodeCounts[c.nodeWeights.Sample(c.rnd)]
		wall := c.rnd.LogNormal(9.2, 0.85) // median ~10^4/e^0.8... ~9900 s
		if wall < 700 {
			wall = 700
		}
		if wall > 86400 {
			wall = 86400
		}
		class := c.classFor(nodes, pagingDay)
		at := dayStart + simclock.Time(c.rnd.Float64()*86400)
		spec := pbs.Spec{
			User:               fmt.Sprintf("u%02d", c.rnd.Intn(40)),
			Nodes:              nodes,
			WallSeconds:        wall,
			Class:              class.Name,
			MemoryPerNodeBytes: class.MemoryPerNode,
			PerfFactor:         quality,
		}
		c.clock.At(at, func() {
			// Keep backlog bounded: drop submissions when the queue is
			// deep (users stop submitting into a jammed machine).
			if c.srv.QueueLength() < 40 {
				if _, err := c.srv.Submit(spec); err != nil {
					panic(err)
				}
			}
		})
		demand -= float64(nodes) * wall
	}
}

// Run executes the campaign and returns the reduction.
func (c *Campaign) Run() Result {
	if int(86400)%int(c.cfg.SamplePeriodSeconds) != 0 {
		panic(fmt.Sprintf("workload: sample period %v must divide a day", c.cfg.SamplePeriodSeconds))
	}
	period := simclock.Time(c.cfg.SamplePeriodSeconds)
	ticksPerDay := int(86400 / c.cfg.SamplePeriodSeconds)
	total := simclock.Days(float64(c.cfg.Days))

	// Schedule all day generators up front (they only enqueue submit
	// events for their own day).
	for d := 0; d < c.cfg.Days; d++ {
		c.generateDay(d)
	}
	// The sampler; the tick landing on a day boundary closes the day
	// after folding its last interval in.
	tickNo := 0
	stop := c.clock.Every(period, period, func(at simclock.Time) {
		if at > total {
			return
		}
		c.tick(at)
		tickNo++
		if tickNo%ticksPerDay == 0 {
			c.endDay(tickNo/ticksPerDay - 1)
		}
	})

	c.clock.RunUntil(total)
	stop()

	return Result{
		Config:         c.cfg,
		Days:           c.days,
		Records:        c.srv.Records(),
		MaxGflops15min: c.maxG15,
		DroppedRecords: c.srv.DroppedRecords(),
	}
}
