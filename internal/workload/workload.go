// Package workload models the NAS SP2 user population over the paper's
// nine-month measurement window (July 1996 - March 1997): a stochastic
// stream of batch jobs with the published marginals —
//
//   - node counts peaked at 16 (then 32 and 8), with almost no demand
//     beyond 64 nodes (Figure 2);
//   - a job-class mix dominated by moderately-tuned multi-block CFD, with
//     a tail of well-tuned codes (the 40 Mflops/node Navier-Stokes run of
//     Cui and Street), debug/development runs, NPB-style benchmarks, and
//     — for >64-node jobs — memory-oversubscribed codes that page
//     (Figures 3 and 5);
//   - daily load demand averaging ~64% utilisation with heavy
//     day-to-day variability and no trend over time (Figure 1);
//   - per-job performance spread matching Figure 4's 320 +/- 200 Mflops
//     for 16-node jobs.
//
// The campaign is a staged engine:
//
//	generate  (Generator, generate.go)  (Config, day) -> DayPlan, pure
//	simulate  (Engine, engine.go)       advance job runs + node counters
//	reduce    (Reducer, reduce.go)      fold per-day deltas into a Result
//
// Jobs run under the pbs scheduler on dedicated nodes; while a job runs,
// its nodes' hardware counters advance at the rates micro-measured for its
// class (see internal/profile), and the campaign reduces the counter
// stream to per-day cluster deltas — the same reduction the 15-minute
// RS2HPM cron sampling performed. Every random draw comes from a splitmix
// substream keyed by (seed, day) or (seed, job UID), so the reduction is
// bit-identical for any Workers count and any execution order.
package workload

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/hpm"
	"repro/internal/node"
	"repro/internal/pbs"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Class describes one workload class: which crunch profile it runs, how
// much of its wall time is computation, and its I/O signature.
type Class struct {
	Name string
	// Crunch is the pure-computation counter signature.
	Crunch profile.Profile
	// ComputeDuty is the fraction of job wall time spent crunching; the
	// rest is communication/imbalance.
	ComputeDuty float64
	// CommActive is the fraction of non-compute time spent in the
	// message-passing software path (buffer copies); the remainder idles.
	CommActive float64
	// Comm is the message-passing service signature.
	Comm profile.Profile
	// PerfSigma is the lognormal sigma of per-job performance jitter.
	PerfSigma float64
	// MemoryPerNode is the per-node working set (drives the record and,
	// for paging classes, already baked into the crunch profile).
	MemoryPerNode uint64
	// MsgBytesPerFlop scales message volume with computation.
	MsgBytesPerFlop float64
	// DiskOutBytesPerSec is steady result-output traffic to the NFS home
	// filesystems (memory-to-device: dma_read).
	DiskOutBytesPerSec float64
}

// jobProfile builds the effective per-node profile for one job instance:
// jittered crunch, duty-cycled, overlaid with active comm time, with DMA
// rates derived from the class's message volume.
func (c Class) jobProfile(jitter float64) profile.Profile {
	crunch := c.Crunch.Scale(jitter)
	p := crunch.Scale(c.ComputeDuty)
	p = p.Plus(c.Comm.Scale((1 - c.ComputeDuty) * c.CommActive))

	// Message traffic: each node both sends and receives at the same
	// volume (halo exchanges are symmetric); sends are dma_read
	// (memory-to-device), receives dma_write. Disk output adds reads.
	inJobFlopsPerSec := p.Mflops * 1e6
	msgTransfersPerSec := c.MsgBytesPerFlop * inJobFlopsPerSec / 64
	diskTransfersPerSec := c.DiskOutBytesPerSec / 64
	p = p.WithDMA(msgTransfersPerSec+diskTransfersPerSec, msgTransfersPerSec)
	p.Name = c.Name
	return p
}

// Mix is the full scenario registry: the named client population with its
// shares and arrival shaping, the large-job policy, and the campaign-wide
// size/runtime/quality distributions. It is pure data — the generator
// compiles it once and every draw it implies comes from the caller's
// substream — so a Mix can come from DefaultMix (the paper's 1996
// population) or be resolved from a declarative workload spec
// (internal/spec) without touching generator code. A Mix is not part of
// the serialized Result: the campaign database records the resolved
// numbers, not the scenario that produced them.
type Mix struct {
	// Clients are walked in order for class assignment; exactly one must
	// be the remainder.
	Clients []Client
	// LargeJobs reroutes jobs above the node-count threshold.
	LargeJobs LargeJobPolicy
	// JobSize is the campaign-wide node-count distribution (Figure 2's
	// marginal for the paper mix); clients may override it.
	JobSize SizeDist
	// Runtime is the campaign-wide wall-time distribution.
	Runtime Dist
	// Quality is the day-level tuning-quality multiplier distribution.
	Quality Dist
	// WeekendFactor multiplies submission demand on days 5 and 6 of each
	// week (the campaign starts on a Monday); 1 means no dip.
	WeekendFactor float64
	// Users is the synthetic submitting-user population size.
	Users int
}

// ClientNamed returns the client with the given class name, or nil.
func (m *Mix) ClientNamed(name string) *Client {
	for i := range m.Clients {
		if m.Clients[i].Class.Name == name {
			return &m.Clients[i]
		}
	}
	return nil
}

// classByName returns the class with the given name; it panics on an
// unknown name, which can only mean a Mix was swapped mid-campaign.
func (m *Mix) classByName(name string) Class {
	if cl := m.ClientNamed(name); cl != nil {
		return cl.Class
	}
	panic("workload: unknown class " + name)
}

// PaperJobSize returns the paper's node-count demand distribution
// (Figure 2's marginal): counts and weights chosen so 16-, 32- and 8-node
// jobs dominate wall time and >64-node jobs are rare.
func PaperJobSize() SizeDist {
	return SizeDist{
		Counts:  []int{1, 2, 4, 8, 16, 24, 28, 32, 48, 64, 80, 96, 128},
		Weights: []float64{3, 3, 6, 15, 32, 5, 4, 19, 6, 7, 0.9, 0.6, 0.4},
	}
}

// PaperRuntime returns the paper's wall-time distribution: lognormal with
// a ~9900 s median, clamped to [700 s, one day].
func PaperRuntime() Dist {
	return Dist{Kind: DistLogNormal, A: 9.2, B: 0.85, Min: 700, Max: 86400}
}

// PaperQuality returns the paper's day-quality distribution: most days
// sit below 1 (a development machine), a few are benchmark-grade.
func PaperQuality() Dist {
	return Dist{Kind: DistLogNormal, A: -0.22, B: 0.30, Min: 0.35, Max: 1.35}
}

// PaperWeekendFactor is the weekend submission dip of the 1996 demand
// model — part of the load variability Figure 1 records.
const PaperWeekendFactor = 0.62

// PaperUsers is the synthetic submitting-user population of the 1996 mix.
const PaperUsers = 40

// DefaultMix builds the calibrated 1996 NAS class mix from measured
// kernel profiles. Clients are ordered as the class-assignment walk
// consumed its thresholds in the original hard-coded generator — paging,
// debug, tuned, bench, then production absorbing the remainder — so the
// substream draw sequence, and therefore every campaign hash, is
// unchanged. The spec preset presets/paper-1996.json must resolve to
// exactly this value (internal/spec pins that with a DeepEqual test).
func DefaultMix(std profile.Standard) Mix {
	production := Class{
		Name:               "production-cfd",
		Crunch:             std.CFD,
		ComputeDuty:        0.80,
		CommActive:         0.45,
		Comm:               std.Comm,
		PerfSigma:          0.45,
		MemoryPerNode:      48 << 20,
		MsgBytesPerFlop:    0.06,
		DiskOutBytesPerSec: 300e3,
	}
	tuned := Class{
		Name:               "tuned-cfd",
		Crunch:             std.BT, // high-ILP, cache-blocked codes
		ComputeDuty:        0.50,
		CommActive:         0.5,
		Comm:               std.Comm,
		PerfSigma:          0.25,
		MemoryPerNode:      24 << 20,
		MsgBytesPerFlop:    0.03,
		DiskOutBytesPerSec: 200e3,
	}
	debug := Class{
		Name:               "debug",
		Crunch:             std.CFD.Scale(0.45),
		ComputeDuty:        0.55,
		CommActive:         0.5,
		Comm:               std.Comm,
		PerfSigma:          0.6,
		MemoryPerNode:      16 << 20,
		MsgBytesPerFlop:    0.08,
		DiskOutBytesPerSec: 100e3,
	}
	bench := Class{
		Name:               "npb-bench",
		Crunch:             std.BT,
		ComputeDuty:        0.55,
		CommActive:         0.5,
		Comm:               std.Comm,
		PerfSigma:          0.15,
		MemoryPerNode:      24 << 20,
		MsgBytesPerFlop:    0.03,
		DiskOutBytesPerSec: 100e3,
	}
	paging := Class{
		Name:               "paging",
		Crunch:             std.Paging,
		ComputeDuty:        0.9,  // "compute" here is mostly fault service
		CommActive:         0.12, // thrashing jobs barely reach their comm phases
		Comm:               std.Comm,
		PerfSigma:          0.5,
		MemoryPerNode:      256 << 20, // 2x node memory
		MsgBytesPerFlop:    0.02,
		DiskOutBytesPerSec: 100e3,
	}
	nonFP := Class{
		Name:               "non-fp",
		Crunch:             std.Comm, // integer/copy-bound work
		ComputeDuty:        0.7,
		CommActive:         0.5,
		Comm:               std.Comm,
		PerfSigma:          0.4,
		MemoryPerNode:      32 << 20,
		MsgBytesPerFlop:    0.0,
		DiskOutBytesPerSec: 400e3,
	}
	return Mix{
		Clients: []Client{
			{Class: paging, Share: 0.04, PagingDayShare: 0.35},
			{Class: debug, Share: 0.13, PagingDayShare: 0.13},
			{Class: tuned, Share: 0.06, PagingDayShare: 0.06},
			{Class: bench, Share: 0.04, PagingDayShare: 0.04},
			{Class: production, Remainder: true}, // moderately tuned multi-block CFD: the bulk
			{Class: nonFP},                       // reached only through the large-job policy
		},
		// The paper: >64-node jobs were paging (memory oversubscription),
		// not floating-point intensive, or using synchronous comm.
		LargeJobs: LargeJobPolicy{
			ThresholdNodes: 64,
			Overrides: []LargeJobOverride{
				{Client: 0, Prob: 0.75}, // paging
				{Client: 5, Prob: 0.6},  // non-fp
			},
			Fallback: 4, // production
		},
		JobSize:       PaperJobSize(),
		Runtime:       PaperRuntime(),
		Quality:       PaperQuality(),
		WeekendFactor: PaperWeekendFactor,
		Users:         PaperUsers,
	}
}

// Config parameterises a campaign.
type Config struct {
	Days  int // 270 for the paper's nine months
	Nodes int // 144
	Seed  uint64
	// Workers is the engine's parallelism: <= 1 runs the serial reference
	// engine, larger values a worker pool of that many goroutines. The
	// reduction is bit-identical for every value — Workers trades wall
	// clock only — so it is an execution knob, not part of the result:
	// it is excluded from the serialized campaign database.
	Workers int `json:"-"`
	// Scenario names the workload spec this configuration was resolved
	// from (internal/spec); empty for the built-in paper mix. Like
	// Workers it is metadata, not model input: the serialized campaign
	// database records the resolved numbers, not the label, so renaming
	// a spec can never change a result hash.
	Scenario string `json:"-"`
	// SamplePeriodSeconds is the counter sampling cadence (900 = 15 min).
	SamplePeriodSeconds float64
	// MeanUtil / UtilSigma shape the daily demand distribution.
	MeanUtil  float64
	UtilSigma float64
	// PagingDayProb is the probability a day's mix leans oversubscribed.
	PagingDayProb float64
	// MinRecordWall filters batch records (600 s in the paper).
	MinRecordWall float64
	// Faults, when non-nil, threads the chaos layer through the collection
	// path: node crash/reboot windows, dropped and duplicated cron
	// samples, daemon restarts, delayed PBS epilogues (see
	// internal/faults). A nil Faults — or a non-nil all-zero one — leaves
	// the reduction bit-identical to a campaign without the fault layer.
	Faults *faults.Config `json:",omitempty"`
}

// DefaultConfig returns the paper's campaign parameters (serial engine;
// set Workers for the parallel one).
func DefaultConfig(seed uint64) Config {
	return Config{
		Days:                270,
		Nodes:               units.NodeCount,
		Seed:                seed,
		SamplePeriodSeconds: 900,
		MeanUtil:            0.65,
		UtilSigma:           0.20,
		PagingDayProb:       0.20,
		MinRecordWall:       600,
	}
}

// Day is the campaign's per-day reduction of the counter stream.
type Day struct {
	Index int
	// Delta is the cluster-wide counter delta for the day (all nodes).
	Delta hpm.Delta
	// BusyNodeSeconds is PBS-allocated node time during the day.
	BusyNodeSeconds float64
}

// Gflops reports the day's system floating-point rate in Gflops.
func (d Day) Gflops() float64 {
	r := hpm.UserRates(d.Delta, 86400)
	return r.MflopsAll / 1000 // cluster-wide Mflops -> Gflops
}

// PerNodeRates reports the day's per-node user rates (the Table 2/3 view:
// cluster totals divided by node count).
func (d Day) PerNodeRates(nodes int) hpm.Rates {
	return hpm.UserRates(d.Delta, 86400*float64(nodes))
}

// Utilization reports the day's PBS utilisation.
func (d Day) Utilization(nodes int) float64 {
	return d.BusyNodeSeconds / (86400 * float64(nodes))
}

// SystemUserFXURatio reports the day's paging indicator (Figure 5 x-axis).
func (d Day) SystemUserFXURatio() float64 {
	return hpm.SystemUserFXURatio(d.Delta)
}

// Result is everything the analysis layer needs.
type Result struct {
	Config  Config
	Days    []Day
	Records []pbs.Record
	// MaxGflops15min is the highest 15-minute system rate observed.
	MaxGflops15min float64
	// DroppedRecords counts jobs under the record filter.
	DroppedRecords int
	// Coverage is the fault layer's sample-accounting report; nil when the
	// campaign ran without fault injection.
	Coverage *faults.Report `json:",omitempty"`
}

// Campaign drives the cluster through the measurement window. It wires the
// three stages together: plans from the Generator are scheduled onto the
// discrete-event clock, the Engine advances counter state between events,
// and each closed day streams into the Reducer.
type Campaign struct {
	cfg   Config
	mix   Mix
	gen   Generator
	eng   Engine
	clock *simclock.Clock
	nodes []*node.Node
	srv   *pbs.Server

	running map[int]*jobRun
	runs    []*jobRun // canonical job-ID-ordered view of running; nil when stale

	prev       []hpm.Counts64 // last sampled totals per node
	curDay     Day
	red        Reducer
	prevBusyNS float64
	maxG15     float64
	lastTick   simclock.Time
	ran        bool

	// Fault-injection state, all touched only on the simulation goroutine;
	// nil/zero when cfg.Faults is nil. The plan is rebuilt at each day
	// boundary from the day's own substream, fates is the per-tick scratch
	// the engine executes, pendingRebase marks nodes whose next captured
	// sample must re-baseline after a counter reset, and lastCaptured
	// tracks each node's last successful sample time for the covered/lost
	// node-second accounting.
	plan          faults.Plan
	planner       FaultPlanner
	fates         []faults.Fate
	pendingRebase []bool
	lastCaptured  []float64
	report        faults.Report
	dayCov        faults.DayCoverage
	ticksPerDay   int
}

// NewCampaign assembles a campaign. The mix usually comes from
// DefaultMix(profile.MeasureStandard(seed)).
func NewCampaign(cfg Config, mix Mix) *Campaign {
	if cfg.Days <= 0 || cfg.Nodes <= 0 {
		panic(fmt.Sprintf("workload: bad campaign config %+v", cfg))
	}
	if cfg.SamplePeriodSeconds <= 0 {
		cfg.SamplePeriodSeconds = 900
	}
	clock := &simclock.Clock{}
	nodes := make([]*node.Node, cfg.Nodes)
	for i := range nodes {
		nodes[i] = node.New(node.Config{ID: i})
	}
	c := &Campaign{
		cfg:     cfg,
		mix:     mix,
		gen:     NewGenerator(cfg, mix),
		clock:   clock,
		nodes:   nodes,
		running: make(map[int]*jobRun),
		prev:    make([]hpm.Counts64, cfg.Nodes),
	}
	c.srv = pbs.New(clock, nodes, pbs.Config{DrainThreshold: 64, MinRecordWall: cfg.MinRecordWall})
	c.srv.OnStart = c.onStart
	c.srv.OnEnd = c.onEnd
	return c
}

// FaultPlanner supplies each day's fault schedule. The campaign's
// default planner derives the plan from (Config.Faults, seed, day) via
// faults.NewPlan; a replayer substitutes recorded plans instead, so a
// faulted campaign can be re-simulated from a trace without re-deriving
// its outages. Implementations must return a plan for the requested
// geometry — the campaign asks once per day boundary, in day order.
type FaultPlanner interface {
	PlanFaultDay(day, nodes, ticks int) faults.Plan
}

// SetGenerator replaces the campaign's generate stage. The simulate and
// reduce stages are untouched: a substituted generator that yields the
// plans a live generator would have yielded produces a bit-identical
// Result. This is the record/replay seam (internal/replay) — the
// recorder wraps the live generator to tee plans out, the replayer
// substitutes a trace-backed one. Must be called before Run/RunInto.
func (c *Campaign) SetGenerator(g Generator) {
	if c.ran {
		panic("workload: SetGenerator after campaign ran")
	}
	if g == nil {
		panic("workload: SetGenerator(nil)")
	}
	c.gen = g
}

// SetFaultPlanner replaces the campaign's fault-plan derivation (the
// faults.NewPlan call at each day boundary). Only consulted when the
// campaign is faulted (Config.Faults non-nil); must be called before
// Run/RunInto.
func (c *Campaign) SetFaultPlanner(p FaultPlanner) {
	if c.ran {
		panic("workload: SetFaultPlanner after campaign ran")
	}
	c.planner = p
}

// Nodes exposes the cluster (for examples and the daemon).
func (c *Campaign) Nodes() []*node.Node { return c.nodes }

// Clock exposes the simulation clock.
func (c *Campaign) Clock() *simclock.Clock { return c.clock }

// onStart builds the job's effective profile. The jitter draw and the
// run's stochastic-rounding stream both come from the job's private
// substream, derived from (seed, StreamID): a job's counter contribution
// is a pure function of its identity and lifetime.
func (c *Campaign) onStart(j *pbs.Job) {
	class := c.mix.classByName(j.Spec.Class)
	src := rng.Stream(c.cfg.Seed, jobStreamBase+j.Spec.StreamID)
	// Mean-one lognormal jitter (mu = -sigma^2/2).
	sigma := class.PerfSigma
	jitter := src.LogNormal(-sigma*sigma/2, sigma)
	if f := j.Spec.PerfFactor; f > 0 {
		jitter *= f
	}
	if jitter < 0.2 {
		jitter = 0.2
	}
	if jitter > 1.6 {
		jitter = 1.6
	}
	c.running[j.ID] = &jobRun{
		job:     j,
		prof:    class.jobProfile(jitter),
		applied: c.clock.Now(),
		rnd:     src,
	}
	c.runs = nil
}

// onEnd flushes the job's remaining counter extrapolation before the PBS
// epilogue reads the final totals. Under fault injection the epilogue's
// capture can race job teardown: a delayed epilogue truncates the tail of
// the extrapolation, so the lost counts vanish from the record and the
// day totals alike — exactly what the real race destroyed.
func (c *Campaign) onEnd(j *pbs.Job) {
	run, ok := c.running[j.ID]
	if !ok {
		return
	}
	end := c.clock.Now()
	if c.cfg.Faults != nil {
		if delay := c.cfg.Faults.EpilogueDelay(c.cfg.Seed, j.Spec.StreamID); delay > 0 {
			trunc := end - simclock.Time(delay)
			if trunc < run.applied {
				trunc = run.applied // never un-advance already-flushed counts
			}
			if lost := (end - trunc).Seconds(); lost > 0 {
				c.dayCov.DelayedEpilogues++
				c.dayCov.LostNodeSeconds += lost * float64(len(j.Nodes()))
			}
			end = trunc
		}
	}
	run.advanceTo(end)
	delete(c.running, j.ID)
	c.runs = nil
}

// sortedRuns returns the running jobs in canonical (ascending job-ID)
// order, rebuilding the cached slice only when the running set changed.
func (c *Campaign) sortedRuns() []*jobRun {
	if c.runs != nil {
		return c.runs
	}
	c.runs = make([]*jobRun, 0, len(c.running))
	for _, r := range c.running {
		c.runs = append(c.runs, r)
	}
	// Insertion sort by job ID: the set is small and mostly ordered.
	for i := 1; i < len(c.runs); i++ {
		for j := i; j > 0 && c.runs[j].job.ID < c.runs[j-1].job.ID; j-- {
			c.runs[j], c.runs[j-1] = c.runs[j-1], c.runs[j]
		}
	}
	return c.runs
}

// tick is the 15-minute sampler: advance all running jobs, then fold every
// node's new counts into the current day and track the peak 15-minute rate.
// tickNo is the zero-based campaign tick index; under fault injection it
// locates the tick in the day's fault plan.
func (c *Campaign) tick(at simclock.Time, tickNo int) {
	var fates []faults.Fate
	if c.cfg.Faults != nil {
		fates = c.prepareFaultTick(at, tickNo)
	}
	c.eng.AdvanceRuns(c.sortedRuns(), at)
	tickDelta := c.eng.SampleNodes(c.nodes, c.prev, fates)
	c.curDay.Delta.Add(tickDelta)

	clean := true
	if fates != nil {
		clean = c.tallyFaultTick(at, fates)
	}
	span := (at - c.lastTick).Seconds()
	// Only a gap-free tick is a valid 15-minute rate observation: a delta
	// that carries counts across a sampling gap covers more wall time than
	// the span and would fake a peak.
	if clean && span > 0 {
		g := hpm.UserRates(tickDelta, span).MflopsAll / 1000
		if g > c.maxG15 {
			c.maxG15 = g
		}
	}
	c.lastTick = at
}

// prepareFaultTick builds the day's plan at the day boundary, applies the
// counter resets scheduled for this tick, and decides every node's
// sampling fate. Resets only land on idle nodes: a busy node's crash is
// modelled as a sampling outage only, because zeroing counters under a
// running job would corrupt its PBS baseline (see DESIGN.md).
func (c *Campaign) prepareFaultTick(at simclock.Time, tickNo int) []faults.Fate {
	day, dayTick := tickNo/c.ticksPerDay, tickNo%c.ticksPerDay
	if dayTick == 0 {
		if c.planner != nil {
			c.plan = c.planner.PlanFaultDay(day, c.cfg.Nodes, c.ticksPerDay)
		} else {
			c.plan = faults.NewPlan(*c.cfg.Faults, c.cfg.Seed, day, c.cfg.Nodes, c.ticksPerDay)
		}
	}
	for n := range c.nodes {
		k := c.plan.ResetAt(n, dayTick)
		if k == faults.NoReset || !c.srv.NodeFree(n) {
			continue
		}
		switch k {
		case faults.RebootReset:
			c.nodes[n].ResetMonitor()
		case faults.RestartReset:
			c.nodes[n].ResetExtendedTotals()
		}
		c.pendingRebase[n] = true
		c.dayCov.Resets++
	}
	for n := range c.fates {
		switch {
		case c.plan.Down(n, dayTick):
			c.fates[n] = faults.FateDown
		case c.plan.Dropped(n, dayTick):
			c.fates[n] = faults.FateDropped
		case c.pendingRebase[n]:
			c.fates[n] = faults.FateRebase
		case c.plan.Duplicated(n, dayTick):
			c.fates[n] = faults.FateDuplicated
		default:
			c.fates[n] = faults.FateCaptured
		}
	}
	return c.fates
}

// tallyFaultTick folds the tick's fates into the day ledger and reports
// whether the tick's cluster delta is gap-free (every node captured over
// exactly one sample period).
func (c *Campaign) tallyFaultTick(at simclock.Time, fates []faults.Fate) bool {
	now, prevTick := at.Seconds(), c.lastTick.Seconds()
	clean := true
	for n, f := range fates {
		c.dayCov.Expected++
		switch f {
		case faults.FateDown:
			c.dayCov.Down++
			clean = false
		case faults.FateDropped:
			c.dayCov.Dropped++
			clean = false
		case faults.FateRebase:
			c.dayCov.Captured++
			c.dayCov.Rebased++
			// The interval back to the last capture was destroyed by the
			// reset; the rebase observes nothing.
			c.dayCov.LostNodeSeconds += now - c.lastCaptured[n]
			c.pendingRebase[n] = false
			c.lastCaptured[n] = now
			clean = false
		default: // FateCaptured, FateDuplicated
			c.dayCov.Captured++
			if f == faults.FateDuplicated {
				c.dayCov.Duplicates++
			}
			if c.lastCaptured[n] != prevTick {
				clean = false // delta bridges an earlier gap
			}
			c.dayCov.CoveredNodeSeconds += now - c.lastCaptured[n]
			c.lastCaptured[n] = now
		}
	}
	return clean
}

// endDay closes out the current day and streams it to the reducer.
func (c *Campaign) endDay(dayIdx int) {
	busy := c.srv.BusyNodeSeconds()
	c.curDay.Index = dayIdx
	c.curDay.BusyNodeSeconds = busy - c.prevBusyNS
	c.prevBusyNS = busy
	c.red.ReduceDay(c.curDay)
	c.curDay = Day{}
	if c.cfg.Faults != nil {
		c.dayCov.Day = dayIdx
		c.report.Days = append(c.report.Days, c.dayCov)
		c.report.Total.Add(c.dayCov.Coverage)
		// Fates per day, batched from the ledger: one atomic Add per fate
		// per day instead of one per node per tick.
		addLedger(telFateCaptured, c.dayCov.Captured)
		addLedger(telFateDropped, c.dayCov.Dropped)
		addLedger(telFateDown, c.dayCov.Down)
		addLedger(telFateRebased, c.dayCov.Rebased)
		addLedger(telFateDuplicates, c.dayCov.Duplicates)
		addLedger(telFaultResets, c.dayCov.Resets)
		addLedger(telDelayedEpilogues, c.dayCov.DelayedEpilogues)
		c.dayCov = faults.DayCoverage{}
	}
}

// schedulePlan enqueues a generated day's submissions onto the clock.
func (c *Campaign) schedulePlan(plan DayPlan) {
	for _, js := range plan.Jobs {
		spec := js.Spec
		c.clock.At(js.At, func() {
			// Keep backlog bounded: drop submissions when the queue is
			// deep (users stop submitting into a jammed machine).
			if c.srv.QueueLength() < 40 {
				if _, err := c.srv.Submit(spec); err != nil {
					panic(err)
				}
			}
		})
	}
}

// Run executes the campaign and returns the reduction.
func (c *Campaign) Run() Result {
	var rr ResultReducer
	c.RunInto(&rr)
	return rr.Result()
}

// RunInto executes the campaign, streaming the reduction into red: one
// ReduceDay per simulated day as it closes, then Finish. A campaign runs
// once; calling RunInto again panics.
func (c *Campaign) RunInto(red Reducer) {
	if c.ran {
		panic("workload: campaign already run")
	}
	c.ran = true
	if int(86400)%int(c.cfg.SamplePeriodSeconds) != 0 {
		panic(fmt.Sprintf("workload: sample period %v must divide a day", c.cfg.SamplePeriodSeconds))
	}
	c.red = red
	c.eng = NewEngine(c.cfg.Workers)
	defer c.eng.Close()

	period := simclock.Time(c.cfg.SamplePeriodSeconds)
	ticksPerDay := int(86400 / c.cfg.SamplePeriodSeconds)
	total := simclock.Days(float64(c.cfg.Days))

	if c.cfg.Faults != nil {
		c.ticksPerDay = ticksPerDay
		c.fates = make([]faults.Fate, c.cfg.Nodes)
		c.pendingRebase = make([]bool, c.cfg.Nodes)
		c.lastCaptured = make([]float64, c.cfg.Nodes)
	}

	// Generate stage: plan every day and schedule its submissions. Plans
	// only depend on (Config, mix, day), so this loop could run in any
	// order; the events land on the clock in deterministic time order
	// regardless.
	for d := 0; d < c.cfg.Days; d++ {
		w := telemetry.StartWatch()
		c.schedulePlan(c.gen.GenerateDay(d))
		w.Record(telGenerateNs)
	}

	// Simulate stage: the sampler; the tick landing on a day boundary
	// closes the day after folding its last interval in.
	tickNo := 0
	c.clock.EveryUntil(period, period, total, func(at simclock.Time) {
		w := telemetry.StartWatch()
		c.tick(at, tickNo)
		w.Record(telTickNs)
		telTicks.Inc()
		tickNo++
		if tickNo%ticksPerDay == 0 {
			wd := telemetry.StartWatch()
			c.endDay(tickNo/ticksPerDay - 1)
			wd.Record(telReduceNs)
			telDays.Inc()
		}
	})
	c.clock.RunUntil(total)

	// Reduce stage: end-of-campaign aggregates.
	var cov *faults.Report
	if c.cfg.Faults != nil {
		cov = &c.report
		if err := cov.Check(); err != nil {
			panic(fmt.Sprintf("workload: coverage ledger corrupt: %v", err))
		}
	}
	c.red.Finish(Final{
		Config:         c.cfg,
		Records:        c.srv.Records(),
		MaxGflops15min: c.maxG15,
		DroppedRecords: c.srv.DroppedRecords(),
		Coverage:       cov,
	})
	c.red = nil
}
