package workload

// The bit-identity guard for the performance work: the optimized microsim
// (flattened cache lookup, MRU/last-hit fast paths, batched counter
// signals, lazy paging state) and the memoized profile store are execution
// knobs, not model changes, so a fixed-seed campaign must hash to exactly
// what the unoptimized seed code produced. goldenCampaignHash was captured
// by running this recipe against the pre-optimization tree; if it ever
// changes, an "optimization" changed observable behaviour.

import (
	"testing"

	"repro/internal/profile"
	"repro/internal/telemetry"
)

// goldenCampaignHash is resultHash of the seed-7, 2-day campaign below,
// measured on the unoptimized simulator this PR started from.
const goldenCampaignHash uint64 = 0x88ee6c33b8c0bd5c

// goldenCampaign runs the pinned recipe: standard profiles at seed 7
// through the given store (nil = memoization bypassed), then a 2-day
// default campaign at the given engine worker count.
func goldenCampaign(store *profile.Store, workers int) Result {
	std := profile.MeasureStandardStore(store, 7, workers)
	cfg := DefaultConfig(7)
	cfg.Days = 2
	cfg.Workers = workers
	return NewCampaign(cfg, DefaultMix(std)).Run()
}

func TestGoldenCampaignHash(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaign is a full 2-day simulation")
	}
	cases := []struct {
		name      string
		store     bool
		workers   int
		telemetry bool
	}{
		{"store=off/workers=1/telemetry=on", false, 1, true},
		{"store=off/workers=8/telemetry=on", false, 8, true},
		{"store=on/workers=1/telemetry=on", true, 1, true},
		{"store=on/workers=8/telemetry=on", true, 8, true},
		// The hpmtel contract: observation must never perturb the
		// simulation, so the hash holds with telemetry off too — at both
		// engine settings, against the same golden constant.
		{"store=on/workers=1/telemetry=off", true, 1, false},
		{"store=on/workers=8/telemetry=off", true, 8, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			telemetry.SetEnabled(tc.telemetry)
			defer telemetry.SetEnabled(true)
			var store *profile.Store
			if tc.store {
				store = profile.NewStore()
				// Run twice so the second pass hits the warm store: the
				// hash must hold for misses and hits alike.
				if h := resultHash(t, goldenCampaign(store, tc.workers)); h != goldenCampaignHash {
					t.Fatalf("cold-store campaign hash %#x, want %#x", h, goldenCampaignHash)
				}
			}
			if h := resultHash(t, goldenCampaign(store, tc.workers)); h != goldenCampaignHash {
				t.Fatalf("campaign hash %#x, want golden %#x — the optimized path changed observable behaviour", h, goldenCampaignHash)
			}
		})
	}
}
