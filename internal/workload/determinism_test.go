package workload

// Determinism contract of the staged engine: the full Result — every
// counter of every day, every record, every float — is bit-identical
// across repeated same-seed runs and across any Workers count. These
// tests run under -race in CI with GOMAXPROCS 1 and 4, so both the data
// races and the scheduler-order nondeterminism a parallel engine could
// introduce are machine-checked.

import (
	"encoding/json"
	"hash/fnv"
	"reflect"
	"testing"
)

// resultHash hashes the complete Result, floats included: Go marshals a
// float64 to its shortest round-trippable decimal, so two results hash
// equal iff they are bit-identical (modulo the impossible-here -0/NaN).
func resultHash(t *testing.T, r Result) uint64 {
	t.Helper()
	h := fnv.New64a()
	if err := json.NewEncoder(h).Encode(r); err != nil {
		t.Fatalf("hash result: %v", err)
	}
	return h.Sum64()
}

func runWorkers(t *testing.T, days int, seed uint64, workers int) Result {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Days = days
	cfg.Workers = workers
	return NewCampaign(cfg, DefaultMix(std(t))).Run()
}

func TestResultIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := runWorkers(t, 5, 42, 1)
	h1 := resultHash(t, serial)
	for _, workers := range []int{2, 8} {
		par := runWorkers(t, 5, 42, workers)
		if h := resultHash(t, par); h != h1 {
			t.Fatalf("Workers=%d result hash %x differs from serial %x", workers, h, h1)
		}
		if !reflect.DeepEqual(serial.Days, par.Days) {
			t.Fatalf("Workers=%d day stream differs from serial", workers)
		}
	}
}

func TestResultIdenticalAcrossRepeatedRuns(t *testing.T) {
	a := runWorkers(t, 4, 99, 8)
	b := runWorkers(t, 4, 99, 8)
	if ha, hb := resultHash(t, a), resultHash(t, b); ha != hb {
		t.Fatalf("same-seed parallel runs differ: %x vs %x", ha, hb)
	}
}

func TestGeneratorIsPure(t *testing.T) {
	cfg := DefaultConfig(7)
	mix := DefaultMix(std(t))
	g1 := NewGenerator(cfg, mix)
	g2 := NewGenerator(cfg, mix)

	// Same day twice from one generator, and out of order across two
	// generators: identical plans either way.
	for _, day := range []int{0, 3, 9} {
		a := g1.GenerateDay(day)
		b := g1.GenerateDay(day)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("day %d: repeated generation differs", day)
		}
	}
	for day := 9; day >= 0; day-- {
		rev := g2.GenerateDay(day)
		fwd := g1.GenerateDay(day)
		if !reflect.DeepEqual(rev, fwd) {
			t.Fatalf("day %d: generation order changed the plan", day)
		}
	}
}

func TestGeneratedJobStreamIDsUnique(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Days = 8
	g := NewGenerator(cfg, DefaultMix(std(t)))
	seen := make(map[uint64]bool)
	for d := 0; d < cfg.Days; d++ {
		for _, js := range g.GenerateDay(d).Jobs {
			if js.Spec.StreamID != js.UID {
				t.Fatalf("day %d: StreamID %d != UID %d", d, js.Spec.StreamID, js.UID)
			}
			if seen[js.UID] {
				t.Fatalf("duplicate job UID %d", js.UID)
			}
			seen[js.UID] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("generator produced no jobs")
	}
}

func TestPoolEngineDoesTheWork(t *testing.T) {
	cfg := DefaultConfig(13)
	cfg.Days = 2
	cfg.Workers = 4
	c := NewCampaign(cfg, DefaultMix(std(t)))
	var rr ResultReducer
	// Run through RunInto so the engine the campaign builds is observable
	// afterwards via the retained Campaign.
	c.RunInto(&rr)
	pool, ok := c.eng.(*poolEngine)
	if !ok {
		t.Fatalf("Workers=4 campaign used %T, want *poolEngine", c.eng)
	}
	advanced, sampled := pool.Stats()
	ticks := uint64(cfg.Days) * uint64(86400/int(cfg.SamplePeriodSeconds))
	if wantSampled := ticks * uint64(cfg.Nodes); sampled != wantSampled {
		t.Errorf("pool sampled %d node counters, want %d", sampled, wantSampled)
	}
	if advanced == 0 {
		t.Error("pool advanced no job runs")
	}
	if len(rr.Result().Days) != cfg.Days {
		t.Errorf("reduced %d days, want %d", len(rr.Result().Days), cfg.Days)
	}
}

func TestTeeReducerFansOut(t *testing.T) {
	cfg := DefaultConfig(21)
	cfg.Days = 1
	var a, b ResultReducer
	NewCampaign(cfg, DefaultMix(std(t))).RunInto(TeeReducer{&a, &b})
	if ha, hb := resultHash(t, a.Result()), resultHash(t, b.Result()); ha != hb {
		t.Fatalf("tee branches diverged: %x vs %x", ha, hb)
	}
	if len(a.Result().Days) != 1 {
		t.Fatalf("tee dropped days: %d", len(a.Result().Days))
	}
}
