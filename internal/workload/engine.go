package workload

// The simulate stage. An Engine owns the campaign's bulk state
// advancement: extrapolating every running job's counter profile onto its
// nodes, and sampling every node's extended counters into per-tick deltas.
// Both are embarrassingly parallel — dedicated node allocation means no
// two jobs share a node, and every job rounds fractional counts with its
// own splitmix-derived stream — so the worker-pool engine shards them
// across goroutines and merges in canonical order, producing bit-identical
// results for any worker count.

import (
	"fmt"
	"sync"

	"repro/internal/faults"
	"repro/internal/hpm"
	"repro/internal/node"
	"repro/internal/pbs"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// jobRun is one executing job's extrapolation state. Its rnd is the job's
// private stream (derived from the campaign seed and the job's StreamID),
// so the counters it accumulates depend only on the job's identity and
// lifetime, never on which worker advances it or in what order.
type jobRun struct {
	job     *pbs.Job
	prof    profile.Profile
	applied simclock.Time // counters advanced up to this instant
	rnd     *rng.Source
}

// advanceTo applies the job's profile to its nodes up to instant t.
func (r *jobRun) advanceTo(t simclock.Time) {
	dt := (t - r.applied).Seconds()
	if dt <= 0 {
		return
	}
	for _, nd := range r.job.Nodes() {
		nd.WithAccumulator(func(a *hpm.Accumulator) {
			r.prof.Apply(a, dt, r.rnd)
		})
	}
	r.applied = t
}

// Engine advances independent campaign state. AdvanceRuns and SampleNodes
// are called from the simulation goroutine between discrete events; runs
// arrive in canonical (job-ID) order and nodes in cluster order, and every
// implementation must produce results identical to the serial engine.
type Engine interface {
	// AdvanceRuns extrapolates each run's counters to instant t.
	AdvanceRuns(runs []*jobRun, t simclock.Time)
	// SampleNodes reads each node's extended counters, differences them
	// against prev (updated in place), and returns the cluster-wide delta
	// folded in node order. fates, when non-nil, carries each node's
	// sampling fate for the tick (fault injection); a nil fates samples
	// every node, exactly the pre-fault behaviour.
	SampleNodes(nodes []*node.Node, prev []hpm.Counts64, fates []faults.Fate) hpm.Delta
	// Close releases engine resources (worker goroutines).
	Close()
}

// NewEngine selects an engine: workers <= 1 is the serial reference
// implementation, anything larger a pool of that many goroutines.
func NewEngine(workers int) Engine {
	if workers <= 1 {
		return serialEngine{}
	}
	return newPoolEngine(workers)
}

// serialEngine is the single-threaded reference implementation.
type serialEngine struct{}

func (serialEngine) AdvanceRuns(runs []*jobRun, t simclock.Time) {
	w := telemetry.StartWatch()
	for _, r := range runs {
		r.advanceTo(t)
	}
	w.Record(telAdvanceNs)
	telAdvanced.Add(uint64(len(runs)))
}

func (serialEngine) SampleNodes(nodes []*node.Node, prev []hpm.Counts64, fates []faults.Fate) hpm.Delta {
	w := telemetry.StartWatch()
	var total hpm.Delta
	for i, nd := range nodes {
		total.Add(sampleNode(nd, prev, fates, i))
	}
	w.Record(telSampleNs)
	telSampled.Add(uint64(len(nodes)))
	return total
}

func (serialEngine) Close() {}

// sampleNode executes one node's sampling fate. A captured read
// differences against the previous capture; a down or dropped sample
// leaves prev untouched so the counts carry to the next successful read;
// a rebase re-baselines after a counter reset without producing a delta
// (the daemon cannot know how much of the post-reset count is new); a
// duplicated read reads the node twice — the overlapping cron case — and
// by construction the second read contributes nothing, the invariant the
// duplicate-injection tests pin.
func sampleNode(nd *node.Node, prev []hpm.Counts64, fates []faults.Fate, i int) hpm.Delta {
	f := faults.FateCaptured
	if fates != nil {
		f = fates[i]
	}
	switch f {
	case faults.FateDown, faults.FateDropped:
		return hpm.Delta{}
	case faults.FateRebase:
		prev[i] = nd.Counters()
		return hpm.Delta{}
	case faults.FateDuplicated:
		cur := nd.Counters()
		d := hpm.Sub64(prev[i], cur)
		again := nd.Counters() // the second, overlapping read
		d.Add(hpm.Sub64(cur, again))
		prev[i] = again
		return d
	default:
		cur := nd.Counters()
		d := hpm.Sub64(prev[i], cur)
		prev[i] = cur
		return d
	}
}

// poolEngine shards advancement across a fixed pool of worker goroutines.
// Work is striped: shard s of k handles indices s, s+k, s+2k, ... — a
// deterministic assignment, though correctness never depends on it: jobs
// touch disjoint node sets and draw from disjoint RNG streams, and node
// sampling writes disjoint slots of a scratch slice that is folded in
// index order afterwards (the canonical-order merge).
type poolEngine struct {
	workers int
	tasks   chan func()
	alive   sync.WaitGroup

	// scratch holds per-node deltas between the parallel sample and the
	// ordered fold; workers write disjoint indices and the fold happens
	// after the barrier, so it needs no lock.
	scratch []hpm.Delta

	mu       sync.Mutex
	advanced uint64 // guarded by mu; job-advancement tasks executed
	sampled  uint64 // guarded by mu; node counter samples folded
}

func newPoolEngine(workers int) *poolEngine {
	e := &poolEngine{workers: workers, tasks: make(chan func())}
	for w := 0; w < workers; w++ {
		e.alive.Add(1)
		// Per-worker busy-time accumulators share names across engines of
		// the same width, so totals aggregate across campaigns in one
		// process — the per-worker view of pool utilisation.
		busy := telEngine.Counter(fmt.Sprintf("worker%d.busy_ns", w))
		go func() {
			defer e.alive.Done()
			for fn := range e.tasks {
				sw := telemetry.StartWatch()
				fn()
				sw.AddTo(busy)
			}
		}()
	}
	return e
}

// runSharded executes body(shard, shards) on the pool for each shard and
// waits for all of them — the per-call barrier that keeps the simulation
// goroutine's view sequentially consistent.
func (e *poolEngine) runSharded(n int, body func(shard, shards int)) {
	shards := e.workers
	if n < shards {
		shards = n
	}
	if shards <= 1 {
		if n > 0 {
			body(0, 1)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		s := s
		e.tasks <- func() {
			defer wg.Done()
			body(s, shards)
		}
	}
	wg.Wait()
}

func (e *poolEngine) AdvanceRuns(runs []*jobRun, t simclock.Time) {
	w := telemetry.StartWatch()
	defer func() {
		w.Record(telAdvanceNs)
		telAdvanced.Add(uint64(len(runs)))
	}()
	e.runSharded(len(runs), func(shard, shards int) {
		var n uint64
		for i := shard; i < len(runs); i += shards {
			runs[i].advanceTo(t)
			n++
		}
		e.mu.Lock()
		e.advanced += n
		e.mu.Unlock()
	})
}

func (e *poolEngine) SampleNodes(nodes []*node.Node, prev []hpm.Counts64, fates []faults.Fate) hpm.Delta {
	w := telemetry.StartWatch()
	defer func() {
		w.Record(telSampleNs)
		telSampled.Add(uint64(len(nodes)))
	}()
	if cap(e.scratch) < len(nodes) {
		e.scratch = make([]hpm.Delta, len(nodes))
	}
	deltas := e.scratch[:len(nodes)]
	e.runSharded(len(nodes), func(shard, shards int) {
		var n uint64
		for i := shard; i < len(nodes); i += shards {
			deltas[i] = sampleNode(nodes[i], prev, fates, i)
			n++
		}
		e.mu.Lock()
		e.sampled += n
		e.mu.Unlock()
	})
	// Canonical-order merge: fold per-node deltas in cluster order. The
	// counts are integers, so any order would give the same bits — the
	// fixed order is belt-and-braces and keeps the serial engine the
	// executable specification.
	var total hpm.Delta
	for i := range deltas {
		total.Add(deltas[i])
	}
	return total
}

// Stats reports how much work the pool has executed (for tests and
// observability).
func (e *poolEngine) Stats() (advanced, sampled uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.advanced, e.sampled
}

// Close shuts the workers down. The engine must not be used afterwards.
func (e *poolEngine) Close() {
	close(e.tasks)
	e.alive.Wait()
}
