package workload

import (
	"math"
	"sync"
	"testing"

	"repro/internal/hpm"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/stats"
)

var (
	stdOnce sync.Once
	stdSet  profile.Standard
)

func std(t *testing.T) profile.Standard {
	t.Helper()
	stdOnce.Do(func() { stdSet = profile.MeasureStandard(1) })
	return stdSet
}

// shortCampaign runs a reduced but statistically meaningful campaign.
func shortCampaign(t *testing.T, days int, seed uint64) Result {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Days = days
	return NewCampaign(cfg, DefaultMix(std(t))).Run()
}

var (
	resOnce sync.Once
	res     Result
)

func campaign(t *testing.T) Result {
	t.Helper()
	resOnce.Do(func() { res = shortCampaign(t, 40, 7) })
	return res
}

func TestCampaignHeadlineNumbers(t *testing.T) {
	r := campaign(t)
	if len(r.Days) != 40 {
		t.Fatalf("days = %d", len(r.Days))
	}
	var g, u []float64
	for _, d := range r.Days {
		g = append(g, d.Gflops())
		u = append(u, d.Utilization(r.Config.Nodes))
	}
	// Paper: ~1.3 Gflops daily average (3% of the 38.4 Gflops peak).
	if m := stats.Mean(g); m < 0.7 || m > 2.2 {
		t.Errorf("mean daily Gflops = %v, want ~1.3", m)
	}
	// Paper: 64% average utilisation, max 95%.
	if m := stats.Mean(u); m < 0.4 || m > 0.85 {
		t.Errorf("mean utilization = %v, want ~0.64", m)
	}
	for _, x := range u {
		if x < 0 || x > 1.0001 {
			t.Fatalf("utilization out of range: %v", x)
		}
	}
	// The maximum 15-minute rate exceeds the best daily rate.
	if r.MaxGflops15min < stats.Max(g) {
		t.Errorf("max 15-min rate %v below max daily %v", r.MaxGflops15min, stats.Max(g))
	}
	if len(r.Records) == 0 {
		t.Fatal("no batch records")
	}
}

func TestGoodDaysMatchTable2Band(t *testing.T) {
	r := campaign(t)
	var goodPerNode []float64
	for _, d := range r.Days {
		if d.Gflops() > 2.0 {
			goodPerNode = append(goodPerNode, d.PerNodeRates(r.Config.Nodes).MflopsAll)
		}
	}
	if len(goodPerNode) == 0 {
		t.Skip("no >2 Gflops days in this short window")
	}
	m := stats.Mean(goodPerNode)
	// Paper Table 2: 17.4 +/- 3.8 Mflops per node.
	if m < 12 || m > 24 {
		t.Errorf("good-day per-node Mflops = %v, want ~17.4", m)
	}
}

func TestSixteenNodeJobsDominateWalltime(t *testing.T) {
	r := campaign(t)
	byNodes := map[int]float64{}
	for _, rec := range r.Records {
		byNodes[rec.NodesUsed] += rec.WallSeconds
	}
	best, bestW := 0, 0.0
	var over64 float64
	var total float64
	for n, w := range byNodes {
		total += w
		if w > bestW {
			best, bestW = n, w
		}
		if n > 64 {
			over64 += w
		}
	}
	if best != 16 {
		t.Errorf("walltime peak at %d nodes, want 16 (Figure 2)", best)
	}
	if over64/total > 0.1 {
		t.Errorf(">64-node jobs consumed %.1f%% of walltime, want ~0 (Figure 2)", 100*over64/total)
	}
}

func TestPerNodeRateCollapsesBeyond64(t *testing.T) {
	r := campaign(t)
	var small, large []float64
	for _, rec := range r.Records {
		mf := rec.PerNodeRates().MflopsAll
		if rec.NodesUsed > 64 {
			large = append(large, mf)
		} else if rec.NodesUsed >= 8 {
			small = append(small, mf)
		}
	}
	if len(large) == 0 {
		t.Skip("no >64-node jobs completed in window")
	}
	if stats.Mean(large) > stats.Mean(small)/2 {
		t.Errorf("no collapse: >64-node jobs at %.1f vs %.1f Mflops/node (Figure 3)",
			stats.Mean(large), stats.Mean(small))
	}
}

func TestLargeJobsAreSystemDominated(t *testing.T) {
	r := campaign(t)
	var large, small []float64
	for _, rec := range r.Records {
		ratio := rec.SystemUserFXURatio()
		if rec.NodesUsed > 64 {
			large = append(large, ratio)
		} else {
			small = append(small, ratio)
		}
	}
	if len(large) == 0 {
		t.Skip("no >64-node jobs in window")
	}
	// Paper: for >64-node jobs, system-mode FXU+ICU instructions exceeded
	// user-mode ones. Most large jobs must show ratio > 1.
	over1 := 0
	for _, x := range large {
		if x > 1 {
			over1++
		}
	}
	if float64(over1)/float64(len(large)) < 0.5 {
		t.Errorf("only %d/%d large jobs have system/user > 1", over1, len(large))
	}
	if stats.Mean(large) <= stats.Mean(small) {
		t.Errorf("large jobs not more system-bound: %.2f vs %.2f",
			stats.Mean(large), stats.Mean(small))
	}
}

func TestBadDaysCorrelateWithSystemIntervention(t *testing.T) {
	// Figure 5: high system/user FXU ratio on days with poor performance.
	r := campaign(t)
	var perf, ratio []float64
	for _, d := range r.Days {
		if d.BusyNodeSeconds == 0 {
			continue
		}
		perf = append(perf, d.PerNodeRates(r.Config.Nodes).MflopsAll)
		ratio = append(ratio, d.SystemUserFXURatio())
	}
	if corr := stats.Correlation(ratio, perf); corr >= 0 {
		t.Errorf("per-node performance should anticorrelate with system intervention, corr = %v", corr)
	}
}

func TestNoPerformanceTrendOverTime(t *testing.T) {
	// Paper: "no obvious trend toward increased performance as time passes".
	r := campaign(t)
	var idx, g []float64
	for i, d := range r.Days {
		idx = append(idx, float64(i))
		g = append(g, d.Gflops())
	}
	slope, _ := stats.LinearFit(idx, g)
	mean := stats.Mean(g)
	// The trend over the window must be small relative to the mean level.
	if math.Abs(slope)*float64(len(g)) > mean {
		t.Errorf("drift %v Gflops over window vs mean %v", slope*float64(len(g)), mean)
	}
}

func TestDMATrafficInTable3Band(t *testing.T) {
	r := campaign(t)
	var reads, writes []float64
	for _, d := range r.Days {
		if d.Gflops() < 1.0 {
			continue
		}
		rr := d.PerNodeRates(r.Config.Nodes)
		reads = append(reads, rr.DMAReadM)
		writes = append(writes, rr.DMAWriteM)
	}
	if len(reads) == 0 {
		t.Skip("no active days")
	}
	// Paper Table 3: 0.024 / 0.017 Mtransfers per second, reads > writes.
	mr, mw := stats.Mean(reads), stats.Mean(writes)
	if mr < 0.004 || mr > 0.08 {
		t.Errorf("DMA reads = %v M/s, want ~0.024", mr)
	}
	if mw < 0.003 || mw > 0.06 {
		t.Errorf("DMA writes = %v M/s, want ~0.017", mw)
	}
	if mr <= mw {
		t.Errorf("reads (%v) should exceed writes (%v): disk output asymmetry", mr, mw)
	}
}

func TestDeterministicCampaign(t *testing.T) {
	a := shortCampaign(t, 6, 99)
	b := shortCampaign(t, 6, 99)
	if len(a.Days) != len(b.Days) || len(a.Records) != len(b.Records) {
		t.Fatal("campaign shape differs between runs")
	}
	for i := range a.Days {
		if a.Days[i].Delta != b.Days[i].Delta {
			t.Fatalf("day %d deltas differ", i)
		}
		if a.Days[i].BusyNodeSeconds != b.Days[i].BusyNodeSeconds {
			t.Fatalf("day %d busy seconds differ", i)
		}
	}
	if a.MaxGflops15min != b.MaxGflops15min {
		t.Fatal("max rates differ")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := shortCampaign(t, 4, 1)
	b := shortCampaign(t, 4, 2)
	same := true
	for i := range a.Days {
		if a.Days[i].Delta != b.Days[i].Delta {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical campaigns")
	}
}

func TestRecordFilterDropsShortJobs(t *testing.T) {
	r := campaign(t)
	for _, rec := range r.Records {
		if rec.WallSeconds < r.Config.MinRecordWall {
			t.Fatalf("record under the %vs filter: %v", r.Config.MinRecordWall, rec.WallSeconds)
		}
	}
}

func TestJobProfileComposition(t *testing.T) {
	mix := DefaultMix(std(t))
	production := mix.ClientNamed("production-cfd").Class
	p := production.jobProfile(1.0)
	// Duty-cycled: the in-job Mflops must be ComputeDuty x crunch.
	want := production.Crunch.Mflops * production.ComputeDuty
	if math.Abs(p.Mflops-want) > 1e-9 {
		t.Fatalf("in-job Mflops = %v, want %v", p.Mflops, want)
	}
	// DMA rates present, reads > writes (disk output asymmetry).
	rd := p.EventsPerSec[hpm.User][hpm.EvDMARead]
	wr := p.EventsPerSec[hpm.User][hpm.EvDMAWrite]
	if rd <= wr || wr <= 0 {
		t.Fatalf("DMA composition wrong: %v/%v", rd, wr)
	}
	// Comm overlay adds FXU work beyond the duty-scaled crunch.
	fxuCrunch := production.Crunch.EventsPerSec[hpm.User][hpm.EvFXU0Instr] * production.ComputeDuty
	if p.EventsPerSec[hpm.User][hpm.EvFXU0Instr] <= fxuCrunch {
		t.Fatal("comm overlay missing from FXU rate")
	}
}

func TestDayAccessors(t *testing.T) {
	var d Day
	d.Delta.Counts[hpm.User][hpm.EvFPU0Add] = 86400 * 1e6 // 1 Mflop/s for a day
	d.BusyNodeSeconds = 86400 * 72
	if g := d.Gflops(); math.Abs(g-0.001) > 1e-12 {
		t.Fatalf("Gflops = %v", g)
	}
	if u := d.Utilization(144); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("Utilization = %v", u)
	}
}

func TestBadSamplePeriodPanics(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Days = 1
	cfg.SamplePeriodSeconds = 1000 // does not divide 86400
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCampaign(cfg, DefaultMix(std(t))).Run()
}

func TestClassForLargeJobsAvoidsStandardMix(t *testing.T) {
	cfg := DefaultConfig(3)
	g := NewGenerator(cfg, DefaultMix(std(t))).(*mixGenerator)
	rnd := rng.New(3)
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[g.mix.Clients[g.classFor(rnd, 96, false, 0)].Class.Name]++
	}
	if counts["paging"] < 400 {
		t.Errorf("paging share for >64-node jobs = %d/1000, want majority", counts["paging"])
	}
	if counts["tuned-cfd"] > 0 || counts["npb-bench"] > 0 {
		t.Error(">64-node jobs drew tuned/bench classes")
	}
}

func TestWeekendDemandDips(t *testing.T) {
	r := campaign(t)
	var weekday, weekend []float64
	for _, d := range r.Days {
		u := d.Utilization(r.Config.Nodes)
		if dow := d.Index % 7; dow == 5 || dow == 6 {
			weekend = append(weekend, u)
		} else {
			weekday = append(weekday, u)
		}
	}
	if len(weekend) < 5 || len(weekday) < 10 {
		t.Skip("window too short")
	}
	if stats.Mean(weekend) >= stats.Mean(weekday) {
		t.Errorf("weekend utilization (%.2f) not below weekday (%.2f)",
			stats.Mean(weekend), stats.Mean(weekday))
	}
}
