package workload

// Tests for the fault-injected collection path: the golden-equivalence
// guarantee (a zero-rate fault config perturbs nothing), determinism of a
// faulted campaign across worker counts, the coverage ledger invariant
// over a real campaign, and the duplicates-are-free property.

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/profile"
)

// goldenStd measures the standard profiles exactly as the golden recipe
// does (seed 7, serial, store bypassed).
func goldenStd() profile.Standard {
	return profile.MeasureStandardStore(nil, 7, 1)
}

// faultedCfg builds a short default campaign with the given fault mix.
func faultedCfg(seed uint64, days, workers int, f faults.Config) Config {
	cfg := DefaultConfig(seed)
	cfg.Days = days
	cfg.Workers = workers
	cfg.Faults = &f
	return cfg
}

// TestZeroFaultConfigMatchesGolden: threading a non-nil but all-zero
// fault config through the whole machinery — plans built, fates decided,
// engine consulted every tick — must reproduce the golden campaign hash
// bit for bit once the fault-only fields are stripped.
func TestZeroFaultConfigMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaign is a full 2-day simulation")
	}
	cfg := faultedCfg(7, 2, 1, faults.Config{})
	res := NewCampaign(cfg, DefaultMix(goldenStd())).Run()
	if res.Coverage == nil {
		t.Fatal("faulted campaign produced no coverage report")
	}
	cov := res.Coverage.Total
	if cov.Dropped != 0 || cov.Down != 0 || cov.Resets != 0 || cov.Duplicates != 0 || cov.DelayedEpilogues != 0 {
		t.Fatalf("zero-rate config injected faults: %+v", cov)
	}
	if cov.Captured != cov.Expected {
		t.Fatalf("zero-rate config lost samples: captured %d of %d", cov.Captured, cov.Expected)
	}
	// Strip the fault-only fields; everything else must hash golden.
	res.Coverage = nil
	res.Config.Faults = nil
	if h := resultHash(t, res); h != goldenCampaignHash {
		t.Fatalf("zero-rate faulted campaign hash %#x, want golden %#x — the fault layer perturbed the clean path", h, goldenCampaignHash)
	}
}

// TestFaultedCampaignDeterminism: with the default fault mix live, the
// entire Result — days, records, coverage report — is identical at any
// worker count and across repeated runs.
func TestFaultedCampaignDeterminism(t *testing.T) {
	run := func(workers int) Result {
		cfg := faultedCfg(11, 3, workers, faults.Default())
		return NewCampaign(cfg, DefaultMix(std(t))).Run()
	}
	serial := run(1)
	if serial.Coverage == nil || serial.Coverage.Total.Expected == 0 {
		t.Fatal("faulted campaign produced no coverage")
	}
	h1 := resultHash(t, serial)
	for _, workers := range []int{8, 1} {
		again := run(workers)
		if h := resultHash(t, again); h != h1 {
			t.Fatalf("workers=%d faulted result hash %#x differs from serial %#x", workers, h, h1)
		}
		if !reflect.DeepEqual(serial.Coverage, again.Coverage) {
			t.Fatalf("workers=%d coverage report differs from serial", workers)
		}
	}
}

// TestPropertyCampaignCoverageLedger runs several seeds of an aggressive
// fault mix and checks the ledger invariants end to end: every day
// balances, days cross-foot to the total, coverage plus loss counts sum
// to the samples the schedule owed, and covered node-seconds never exceed
// the day's wall clock.
func TestPropertyCampaignCoverageLedger(t *testing.T) {
	mix := faults.Config{
		CrashProbPerNodeDay:      0.10,
		MeanOutageTicks:          4,
		DropProbPerSample:        0.05,
		DupProbPerSample:         0.02,
		RestartProbPerNodeDay:    0.10,
		EpilogueDelayProb:        0.3,
		EpilogueDelayMeanSeconds: 400,
	}
	for _, seed := range []uint64{1, 2, 3} {
		cfg := faultedCfg(seed, 2, 4, mix)
		res := NewCampaign(cfg, DefaultMix(std(t))).Run()
		rep := res.Coverage
		if rep == nil {
			t.Fatalf("seed %d: no coverage report", seed)
		}
		if err := rep.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ticksPerDay := int64(86400 / cfg.SamplePeriodSeconds)
		if len(rep.Days) != cfg.Days {
			t.Fatalf("seed %d: %d coverage days, want %d", seed, len(rep.Days), cfg.Days)
		}
		totalCovered := 0.0
		for _, d := range rep.Days {
			if want := ticksPerDay * int64(cfg.Nodes); d.Expected != want {
				t.Fatalf("seed %d day %d: expected %d samples, schedule owed %d", seed, d.Day, d.Expected, want)
			}
			// A capture bridging midnight credits its whole interval to the
			// day it lands in, so one day may exceed its own wall clock —
			// but never by more than a day, and the campaign total is bounded.
			if wall := 86400 * float64(cfg.Nodes); d.CoveredNodeSeconds > 2*wall {
				t.Fatalf("seed %d day %d: covered %.0f node-seconds, over double the day's %.0f", seed, d.Day, d.CoveredNodeSeconds, wall)
			}
			totalCovered += d.CoveredNodeSeconds
		}
		if wall := 86400 * float64(cfg.Nodes) * float64(cfg.Days); totalCovered > wall+1e-6 {
			t.Fatalf("seed %d: campaign covered %.0f node-seconds exceeds the wall clock's %.0f", seed, totalCovered, wall)
		}
		if rep.Total.Dropped == 0 && rep.Total.Down == 0 {
			t.Fatalf("seed %d: aggressive mix injected no losses", seed)
		}
	}
}

// TestPropertyDuplicatesAreFree: a campaign whose only fault is duplicate
// reads — every sample read twice — must produce the identical day stream
// and records as the clean campaign. Duplicates may never create or
// destroy counts.
func TestPropertyDuplicatesAreFree(t *testing.T) {
	clean := func() Result {
		cfg := DefaultConfig(17)
		cfg.Days = 2
		return NewCampaign(cfg, DefaultMix(std(t))).Run()
	}()
	duped := func() Result {
		cfg := faultedCfg(17, 2, 1, faults.Config{DupProbPerSample: 1})
		return NewCampaign(cfg, DefaultMix(std(t))).Run()
	}()
	if duped.Coverage == nil || duped.Coverage.Total.Duplicates != duped.Coverage.Total.Expected {
		t.Fatalf("DupProb=1 did not duplicate every sample: %+v", duped.Coverage)
	}
	if !reflect.DeepEqual(clean.Days, duped.Days) {
		t.Fatal("duplicate reads changed the day stream")
	}
	if !reflect.DeepEqual(clean.Records, duped.Records) {
		t.Fatal("duplicate reads changed the batch records")
	}
	if clean.MaxGflops15min != duped.MaxGflops15min {
		t.Fatalf("duplicate reads moved the 15-minute peak: %v vs %v", clean.MaxGflops15min, duped.MaxGflops15min)
	}
}

// TestFaultedCampaignLosesSamples is the positive control: the default
// mix on a short campaign actually exercises every fault mode the plan
// schedules, and the lossy modes reduce coverage below 100%.
func TestFaultedCampaignLosesSamples(t *testing.T) {
	cfg := faultedCfg(23, 3, 2, faults.Default())
	res := NewCampaign(cfg, DefaultMix(std(t))).Run()
	cov := res.Coverage.Total
	if cov.Dropped == 0 {
		t.Error("default mix dropped no samples")
	}
	if cov.Captured >= cov.Expected {
		t.Errorf("default mix lost nothing: captured %d of %d", cov.Captured, cov.Expected)
	}
	if ratio := res.Coverage.Total.CaptureRatio(); ratio < 0.9 {
		t.Errorf("default mix too destructive: %.1f%% capture", 100*ratio)
	}
}
