package workload

// Coverage-aware reductions. A clean campaign observes every node for
// every second of every day, so dividing a day's counter delta by
// nodes * 86400 gives per-node rates. A faulted campaign's record is
// gappy: samples lost to crashes, cron misses and counter resets mean the
// day's delta covers fewer node-seconds than the wall clock. These
// helpers divide by what the collection actually observed, which is how
// the paper's reductions stayed meaningful over a nine-month record that
// was never complete.

import (
	"repro/internal/faults"
	"repro/internal/hpm"
)

// dayCoverage returns the fault layer's ledger row for day index i, nil
// when the campaign ran without fault injection.
func (r *Result) dayCoverage(i int) *faults.DayCoverage {
	if r.Coverage == nil || i < 0 || i >= len(r.Coverage.Days) {
		return nil
	}
	return &r.Coverage.Days[i]
}

// DayPerNodeRates reports day i's per-node user rates over the observed
// record: identical to Day.PerNodeRates on a clean campaign, divided by
// the day's covered node-seconds when the fault layer left gaps. A day
// with no covered time at all reports zero rates.
func (r *Result) DayPerNodeRates(i int) hpm.Rates {
	if cov := r.dayCoverage(i); cov != nil {
		if cov.CoveredNodeSeconds <= 0 {
			return hpm.Rates{}
		}
		return hpm.UserRates(r.Days[i].Delta, cov.CoveredNodeSeconds)
	}
	return r.Days[i].PerNodeRates(r.Config.Nodes)
}

// DayCoveredNodeSeconds reports how many node-seconds of observation back
// day i's delta: the full wall clock on a clean campaign, the fault
// ledger's covered time otherwise. A capture that bridges a gap across
// midnight credits the whole observed interval — counts and seconds alike
// — to the day it lands in, so one day's covered time can exceed its own
// wall clock while the campaign total never does.
func (r *Result) DayCoveredNodeSeconds(i int) float64 {
	if cov := r.dayCoverage(i); cov != nil {
		return cov.CoveredNodeSeconds
	}
	return 86400 * float64(r.Config.Nodes)
}

// DayGflops reports day i's system floating-point rate in Gflops over the
// observed record: the covered-time per-node rate scaled back to the full
// cluster, so a day that was half-observed is not reported at half speed.
func (r *Result) DayGflops(i int) float64 {
	if cov := r.dayCoverage(i); cov != nil {
		if cov.CoveredNodeSeconds <= 0 {
			return 0
		}
		perNode := hpm.UserRates(r.Days[i].Delta, cov.CoveredNodeSeconds)
		return perNode.MflopsAll * float64(r.Config.Nodes) / 1000
	}
	return r.Days[i].Gflops()
}
