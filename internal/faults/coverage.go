package faults

import (
	"fmt"
	"strings"
)

// Coverage is the sample-accounting ledger for one window (a day, or the
// whole campaign): how many node-samples the cron schedule owed, how many
// arrived, and where the rest went. The core invariant — pinned by the
// property suite and asserted by Check — is
//
//	Captured + Dropped + Down == Expected
//
// with Rebased a subset of Captured (reads that arrived but could only
// re-baseline after a counter reset) and Duplicates extra reads beyond
// the schedule (never part of the sum, never a source of counts).
type Coverage struct {
	// Expected is the node-samples the cron schedule owed the window.
	Expected int64
	// Captured is the scheduled reads that arrived (Rebased included).
	Captured int64
	// Dropped is samples lost to cron misses.
	Dropped int64
	// Down is samples lost to unreachable nodes (crash/reboot windows).
	Down int64
	// Rebased counts captured reads that re-baselined after a counter
	// reset instead of yielding a delta.
	Rebased int64
	// Duplicates counts extra reads beyond the schedule.
	Duplicates int64
	// Resets counts counter-reset events applied (reboots and daemon
	// restarts).
	Resets int64
	// DelayedEpilogues counts job records whose final counter capture was
	// truncated by the epilogue race.
	DelayedEpilogues int64
	// LostNodeSeconds is the simulated node-time whose counter record was
	// destroyed (reset gaps and epilogue truncations) rather than merely
	// deferred to a later sample.
	LostNodeSeconds float64
}

// Add folds another ledger into this one.
func (c *Coverage) Add(o Coverage) {
	c.Expected += o.Expected
	c.Captured += o.Captured
	c.Dropped += o.Dropped
	c.Down += o.Down
	c.Rebased += o.Rebased
	c.Duplicates += o.Duplicates
	c.Resets += o.Resets
	c.DelayedEpilogues += o.DelayedEpilogues
	c.LostNodeSeconds += o.LostNodeSeconds
}

// Check validates the accounting invariants, returning a descriptive
// error on violation.
func (c Coverage) Check() error {
	if c.Captured+c.Dropped+c.Down != c.Expected {
		return fmt.Errorf("faults: coverage does not balance: captured %d + dropped %d + down %d != expected %d",
			c.Captured, c.Dropped, c.Down, c.Expected)
	}
	if c.Rebased > c.Captured {
		return fmt.Errorf("faults: rebased %d exceeds captured %d", c.Rebased, c.Captured)
	}
	for _, v := range []int64{c.Expected, c.Captured, c.Dropped, c.Down, c.Rebased, c.Duplicates, c.Resets, c.DelayedEpilogues} {
		if v < 0 {
			return fmt.Errorf("faults: negative coverage count in %+v", c)
		}
	}
	if c.LostNodeSeconds < 0 {
		return fmt.Errorf("faults: negative LostNodeSeconds %v", c.LostNodeSeconds)
	}
	return nil
}

// CaptureRatio reports captured over expected samples (1 when nothing was
// expected).
func (c Coverage) CaptureRatio() float64 {
	if c.Expected == 0 {
		return 1
	}
	return float64(c.Captured) / float64(c.Expected)
}

// DayCoverage is one day's ledger plus the covered observation time the
// partial-record reductions divide by.
type DayCoverage struct {
	Day int
	Coverage
	// CoveredNodeSeconds is the node-time the day's captured sample
	// intervals actually observed: the denominator for rates over a gappy
	// record. A clean day covers nodes * 86400.
	CoveredNodeSeconds float64
}

// Report is the per-campaign coverage report the faulted reduction emits:
// the campaign ledger plus the per-day rows analysis divides by.
type Report struct {
	Total Coverage
	Days  []DayCoverage
}

// Check validates every ledger in the report.
func (r *Report) Check() error {
	if err := r.Total.Check(); err != nil {
		return err
	}
	var sum Coverage
	for _, d := range r.Days {
		if err := d.Coverage.Check(); err != nil {
			return fmt.Errorf("day %d: %w", d.Day, err)
		}
		if d.CoveredNodeSeconds < 0 {
			return fmt.Errorf("day %d: negative CoveredNodeSeconds", d.Day)
		}
		sum.Add(d.Coverage)
	}
	if sum != r.Total {
		return fmt.Errorf("faults: per-day ledgers sum to %+v, total says %+v", sum, r.Total)
	}
	return nil
}

// Render formats the report the way cmd/spsim -faults and
// cmd/experiments print it.
func (r *Report) Render() string {
	var b strings.Builder
	t := r.Total
	fmt.Fprintf(&b, "=== coverage report (faulted collection) ===\n")
	fmt.Fprintf(&b, "samples expected    : %d\n", t.Expected)
	fmt.Fprintf(&b, "samples captured    : %d (%.2f%%), %d of them baseline-only after resets\n",
		t.Captured, 100*t.CaptureRatio(), t.Rebased)
	fmt.Fprintf(&b, "lost to cron misses : %d\n", t.Dropped)
	fmt.Fprintf(&b, "lost to node outage : %d\n", t.Down)
	fmt.Fprintf(&b, "duplicate reads     : %d (zero-delta, by construction)\n", t.Duplicates)
	fmt.Fprintf(&b, "counter resets      : %d (reboots + daemon restarts)\n", t.Resets)
	fmt.Fprintf(&b, "delayed epilogues   : %d job records truncated\n", t.DelayedEpilogues)
	fmt.Fprintf(&b, "node-seconds lost   : %.0f\n", t.LostNodeSeconds)
	worst, worstIdx := 2.0, -1
	for i, d := range r.Days {
		if ratio := d.CaptureRatio(); ratio < worst {
			worst, worstIdx = ratio, i
		}
	}
	if worstIdx >= 0 {
		fmt.Fprintf(&b, "worst day           : day %d at %.2f%% capture\n",
			r.Days[worstIdx].Day, 100*worst)
	}
	return b.String()
}
