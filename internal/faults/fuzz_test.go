package faults

import (
	"reflect"
	"testing"
)

// FuzzPlanInvariants throws arbitrary configurations — including NaN-free
// but wildly out-of-range rates, huge means, and degenerate geometries —
// at the planner and asserts the three invariants every consumer relies
// on: NewPlan never panics, building the same plan twice is bit-identical,
// and every scheduled fault stays inside the day's geometry.
func FuzzPlanInvariants(f *testing.F) {
	f.Add(uint64(7), uint16(0), uint16(144), uint16(96), 0.004, 6.0, 0.01, 0.003, 0.01)
	f.Add(uint64(7), uint16(3), uint16(1), uint16(1), 1.0, 1.0, 1.0, 1.0, 1.0)
	f.Add(uint64(0), uint16(0), uint16(0), uint16(0), 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(uint64(12345), uint16(200), uint16(16), uint16(4), -3.5, 1e18, 2.0, -1.0, 0.5)
	f.Fuzz(func(t *testing.T, seed uint64, day, nodes, ticks uint16, crash, outage, drop, dup, restart float64) {
		// Cap the geometry so the fuzzer probes logic, not allocator limits.
		nn, tt := int(nodes%300), int(ticks%300)
		cfg := Config{
			CrashProbPerNodeDay:   crash,
			MeanOutageTicks:       outage,
			DropProbPerSample:     drop,
			DupProbPerSample:      dup,
			RestartProbPerNodeDay: restart,
		}
		p := NewPlan(cfg, seed, int(day), nn, tt)
		if again := NewPlan(cfg, seed, int(day), nn, tt); !reflect.DeepEqual(p, again) {
			t.Fatal("identical arguments produced different plans")
		}
		if nn <= 0 || tt <= 0 {
			if !p.Empty() {
				t.Fatalf("degenerate geometry %dx%d produced a non-empty plan", nn, tt)
			}
			return
		}
		checkPlanBounds(t, p, nn, tt)
	})
}

// FuzzEpilogueDelay asserts the per-job delay draw never panics and never
// goes negative, whatever the configuration.
func FuzzEpilogueDelay(f *testing.F) {
	f.Add(uint64(7), uint64(42), 0.05, 300.0)
	f.Add(uint64(0), uint64(0), 1.0, -5.0)
	f.Add(uint64(1), uint64(1<<40), 2.0, 1e300)
	f.Fuzz(func(t *testing.T, seed, uid uint64, prob, mean float64) {
		cfg := Config{EpilogueDelayProb: prob, EpilogueDelayMeanSeconds: mean}
		d := cfg.EpilogueDelay(seed, uid)
		if d < 0 {
			t.Fatalf("negative epilogue delay %v", d)
		}
		if d != cfg.EpilogueDelay(seed, uid) {
			t.Fatal("EpilogueDelay not pure")
		}
	})
}
