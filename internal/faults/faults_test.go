package faults

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/hpm"
	"repro/internal/rng"
)

// TestPlanPure pins the core determinism contract: building the same plan
// twice yields identical schedules, field for field.
func TestPlanPure(t *testing.T) {
	cfg := Default()
	for day := 0; day < 8; day++ {
		a := NewPlan(cfg, 7, day, 144, 96)
		b := NewPlan(cfg, 7, day, 144, 96)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("day %d: identical arguments produced different plans", day)
		}
	}
}

// TestPlanZeroConfig: the zero config schedules nothing, so the fault
// layer can be threaded through a campaign without perturbing it.
func TestPlanZeroConfig(t *testing.T) {
	p := NewPlan(Config{}, 7, 0, 16, 96)
	if !p.Empty() {
		t.Fatal("zero config produced a non-empty plan")
	}
	for n := 0; n < 16; n++ {
		for tick := 0; tick < 96; tick++ {
			if p.Down(n, tick) || p.Dropped(n, tick) || p.Duplicated(n, tick) || p.ResetAt(n, tick) != NoReset {
				t.Fatalf("zero config scheduled a fault at node %d tick %d", n, tick)
			}
		}
	}
	if d := (Config{}).EpilogueDelay(7, 42); d != 0 {
		t.Fatalf("zero config delayed an epilogue by %v", d)
	}
}

// TestPlanDifferentDaysDiffer is a sanity check that the per-day
// substreams actually decorrelate days (a stuck stream ID would pass
// every purity test while making all days identical).
func TestPlanDifferentDaysDiffer(t *testing.T) {
	cfg := Default()
	a := NewPlan(cfg, 7, 0, 144, 96)
	b := NewPlan(cfg, 7, 1, 144, 96)
	if reflect.DeepEqual(a.drop, b.drop) && reflect.DeepEqual(a.downFrom, b.downFrom) {
		t.Fatal("day 0 and day 1 drew identical schedules; substreams look collapsed")
	}
}

// TestPropertyPlanBounds: for arbitrary configurations, every scheduled
// fault stays inside the day's geometry — outage windows inside
// [0, ticks), reset ticks in range, Bernoulli arrays sized exactly.
func TestPropertyPlanBounds(t *testing.T) {
	rnd := rng.New(20260806)
	for trial := 0; trial < 300; trial++ {
		cfg := Config{
			CrashProbPerNodeDay:   rnd.Range(-1, 2),
			MeanOutageTicks:       rnd.Range(-5, 500),
			DropProbPerSample:     rnd.Range(-1, 2),
			DupProbPerSample:      rnd.Range(-1, 2),
			RestartProbPerNodeDay: rnd.Range(-1, 2),
		}
		nodes, ticks := 1+rnd.Intn(64), 1+rnd.Intn(128)
		p := NewPlan(cfg, rnd.Uint64(), rnd.Intn(1000), nodes, ticks)
		checkPlanBounds(t, p, nodes, ticks)
	}
}

// checkPlanBounds asserts the geometric invariants shared by the property
// test above and the fuzz target.
func checkPlanBounds(t *testing.T, p Plan, nodes, ticks int) {
	t.Helper()
	if p.Nodes != nodes || p.Ticks != ticks {
		t.Fatalf("plan geometry %dx%d, want %dx%d", p.Nodes, p.Ticks, nodes, ticks)
	}
	if p.drop != nil && len(p.drop) != nodes*ticks {
		t.Fatalf("drop array has %d entries, want %d", len(p.drop), nodes*ticks)
	}
	if p.dup != nil && len(p.dup) != nodes*ticks {
		t.Fatalf("dup array has %d entries, want %d", len(p.dup), nodes*ticks)
	}
	for n := 0; n < nodes; n++ {
		from, to := p.downFrom[n], p.downTo[n]
		if from == -1 {
			if to != -1 {
				t.Fatalf("node %d: downTo %d without downFrom", n, to)
			}
		} else if from < 0 || from >= ticks || to <= from || to > ticks {
			t.Fatalf("node %d: outage window [%d, %d) outside day of %d ticks", n, from, to, ticks)
		}
		rt, rk := p.resetTick[n], p.resetKind[n]
		if (rt == -1) != (rk == NoReset) {
			t.Fatalf("node %d: reset tick %d inconsistent with kind %v", n, rt, rk)
		}
		if rt != -1 && (rt < 0 || rt >= ticks) {
			t.Fatalf("node %d: reset tick %d outside day of %d ticks", n, rt, ticks)
		}
		if rk == RebootReset && rt != from {
			t.Fatalf("node %d: reboot reset at %d but outage starts at %d", n, rt, from)
		}
	}
	// Out-of-geometry queries are inert, never a panic or a phantom fault.
	for _, probe := range [][2]int{{-1, 0}, {nodes, 0}, {0, -1}, {0, ticks}, {nodes + 5, ticks + 5}} {
		if p.Dropped(probe[0], probe[1]) || p.Duplicated(probe[0], probe[1]) || p.ResetAt(probe[0], probe[1]) != NoReset {
			t.Fatalf("out-of-geometry probe %v reported a fault", probe)
		}
	}
}

// TestPropertyCoverageSums replays fault plans through the same fate
// precedence the campaign uses (down > dropped > rebase > captured) and
// checks the ledger invariant the reducer depends on: captured + dropped
// + down always equals the samples the schedule owed, for any config.
func TestPropertyCoverageSums(t *testing.T) {
	rnd := rng.New(41)
	for trial := 0; trial < 200; trial++ {
		cfg := Config{
			CrashProbPerNodeDay:   rnd.Range(0, 0.5),
			MeanOutageTicks:       rnd.Range(1, 20),
			DropProbPerSample:     rnd.Range(0, 0.3),
			DupProbPerSample:      rnd.Range(0, 0.3),
			RestartProbPerNodeDay: rnd.Range(0, 0.5),
		}
		nodes, ticks := 1+rnd.Intn(32), 1+rnd.Intn(64)
		p := NewPlan(cfg, rnd.Uint64(), trial, nodes, ticks)

		var cov Coverage
		pendingRebase := make([]bool, nodes)
		for tick := 0; tick < ticks; tick++ {
			for n := 0; n < nodes; n++ {
				cov.Expected++
				if p.ResetAt(n, tick) != NoReset {
					cov.Resets++
					pendingRebase[n] = true
				}
				switch {
				case p.Down(n, tick):
					cov.Down++
				case p.Dropped(n, tick):
					cov.Dropped++
				case pendingRebase[n]:
					cov.Captured++
					cov.Rebased++
					pendingRebase[n] = false
				default:
					cov.Captured++
					if p.Duplicated(n, tick) {
						cov.Duplicates++
					}
				}
			}
		}
		if cov.Expected != int64(nodes*ticks) {
			t.Fatalf("trial %d: expected %d samples, schedule owed %d", trial, cov.Expected, nodes*ticks)
		}
		if err := cov.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestCoverageCheckRejectsImbalance pins the failure side of Check.
func TestCoverageCheckRejectsImbalance(t *testing.T) {
	bad := []Coverage{
		{Expected: 10, Captured: 5, Dropped: 2, Down: 2}, // 9 != 10
		{Expected: 4, Captured: 4, Rebased: 5},           // rebased > captured
		{Expected: 0, Captured: 1, Dropped: -1},          // negative bucket
		{Expected: 2, Captured: 2, LostNodeSeconds: -1},  // negative time
	}
	for i, c := range bad {
		if err := c.Check(); err == nil {
			t.Fatalf("case %d: invalid ledger %+v passed Check", i, c)
		}
	}
}

// TestReportCheckCrossFoots: the campaign report must equal the sum of
// its days, and Render has to mention the worst day.
func TestReportCheckCrossFoots(t *testing.T) {
	day0 := DayCoverage{Day: 0, Coverage: Coverage{Expected: 100, Captured: 90, Dropped: 6, Down: 4, Rebased: 2, Resets: 1}, CoveredNodeSeconds: 80000}
	day1 := DayCoverage{Day: 1, Coverage: Coverage{Expected: 100, Captured: 99, Dropped: 1, Duplicates: 3}, CoveredNodeSeconds: 86000}
	r := &Report{Days: []DayCoverage{day0, day1}}
	r.Total.Add(day0.Coverage)
	r.Total.Add(day1.Coverage)
	if err := r.Check(); err != nil {
		t.Fatalf("consistent report failed Check: %v", err)
	}
	out := r.Render()
	if !strings.Contains(out, "worst day           : day 0") {
		t.Fatalf("Render did not flag day 0 as worst:\n%s", out)
	}
	r.Total.Dropped++ // un-balance the cross-foot
	if err := r.Check(); err == nil {
		t.Fatal("report with mismatched total passed Check")
	}
}

// TestEpilogueDelayPure: the per-job delay draw is a pure function of
// (config, seed, UID) and respects the probability knob at its extremes.
func TestEpilogueDelayPure(t *testing.T) {
	cfg := Default()
	delayed := 0
	for uid := uint64(0); uid < 2000; uid++ {
		a := cfg.EpilogueDelay(7, uid)
		b := cfg.EpilogueDelay(7, uid)
		if a != b {
			t.Fatalf("uid %d: EpilogueDelay not pure: %v then %v", uid, a, b)
		}
		if a < 0 {
			t.Fatalf("uid %d: negative delay %v", uid, a)
		}
		if a > 0 {
			delayed++
		}
	}
	// ~5% of 2000 draws; a factor-of-three band catches a broken knob
	// without flaking on the seeded stream.
	if delayed < 30 || delayed > 300 {
		t.Fatalf("delayed %d of 2000 jobs at prob %v; knob looks broken", delayed, cfg.EpilogueDelayProb)
	}
	always := Config{EpilogueDelayProb: 1, EpilogueDelayMeanSeconds: 10}
	if always.EpilogueDelay(7, 1) <= 0 {
		t.Fatal("prob 1 did not delay")
	}
	never := Config{EpilogueDelayProb: 0, EpilogueDelayMeanSeconds: 10}
	if never.EpilogueDelay(7, 1) != 0 {
		t.Fatal("prob 0 delayed")
	}
}

// fixedSource is a test CounterSource with a constant reading.
type fixedSource struct {
	id   int
	snap hpm.Counts64
}

func (f fixedSource) NodeID() int            { return f.id }
func (f fixedSource) Counters() hpm.Counts64 { return f.snap }

// TestUnreliableSourceDeterministic: two wrappers with identical keys
// fail on identical reads, and the probability extremes behave.
func TestUnreliableSourceDeterministic(t *testing.T) {
	var snap hpm.Counts64
	snap.Counts[hpm.User][hpm.EvCycles] = 12345
	a := NewUnreliableSource(fixedSource{id: 3, snap: snap}, 7, 0.3)
	b := NewUnreliableSource(fixedSource{id: 3, snap: snap}, 7, 0.3)
	sawFailure := false
	for i := 0; i < 500; i++ {
		got, errA := a.TryCounters()
		_, errB := b.TryCounters()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("read %d: schedules diverged (%v vs %v)", i, errA, errB)
		}
		if errA != nil {
			sawFailure = true
		} else if got != snap {
			t.Fatalf("read %d: successful read returned wrong counters", i)
		}
	}
	if !sawFailure {
		t.Fatal("failure rate 0.3 never failed in 500 reads")
	}
	reads, fails := a.Stats()
	if reads != 500 || fails <= 0 || fails >= 500 {
		t.Fatalf("stats (%d reads, %d fails) implausible for rate 0.3", reads, fails)
	}

	solid := NewUnreliableSource(fixedSource{id: 1, snap: snap}, 7, 0)
	for i := 0; i < 100; i++ {
		if _, err := solid.TryCounters(); err != nil {
			t.Fatalf("rate 0 failed: %v", err)
		}
	}
	dead := NewUnreliableSource(fixedSource{id: 2, snap: snap}, 7, 1)
	if _, err := dead.TryCounters(); err == nil {
		t.Fatal("rate 1 succeeded")
	}
	if dead.Counters() != snap { // bypass path never fails
		t.Fatal("Counters bypass returned wrong counters")
	}
}
