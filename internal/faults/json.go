package faults

// JSON codec for Plan. A Plan's schedule lives in unexported flattened
// arrays (the hot collection path indexes them per tick), so the default
// encoding would drop everything but the geometry. Campaign traces
// (internal/replay) persist resolved plans so a recorded campaign can be
// re-simulated without re-deriving its faults — the codec therefore
// round-trips *exactly*: for any plan NewPlan can produce,
// Unmarshal(Marshal(p)) is reflect.DeepEqual to p, nil-ness of every
// slice included. The decoder validates the geometry invariants the
// accessors rely on (per-node arrays all present or all absent, per-tick
// arrays sized nodes*ticks, reset kinds in range), so a decoded plan can
// never index out of bounds — corrupt trace bytes fail the decode, they
// do not panic the replay.

import (
	"encoding/json"
	"fmt"
)

// planWire is Plan's on-the-wire form. No field carries omitempty: nil
// encodes as null and an empty slice as [], so nil-ness survives the
// round trip and DeepEqual holds bit-for-bit.
type planWire struct {
	Day   int `json:"day"`
	Nodes int `json:"nodes"`
	Ticks int `json:"ticks"`
	// Drop/Dup are the per-node-tick Bernoulli outcomes, indexed
	// node*Ticks+tick; null when the corresponding rate was zero.
	Drop []bool `json:"drop"`
	Dup  []bool `json:"dup"`
	// Per-node schedule: unreachable window [DownFrom, DownTo), reset
	// tick and kind. -1 marks no event, mirroring the in-memory form.
	DownFrom  []int `json:"down_from"`
	DownTo    []int `json:"down_to"`
	ResetTick []int `json:"reset_tick"`
	// ResetKind is []int, not []uint8: a byte slice would JSON-encode as
	// base64 and the trace format stays greppable.
	ResetKind []int `json:"reset_kind"`
}

// MarshalJSON encodes the plan in its wire form.
func (p Plan) MarshalJSON() ([]byte, error) {
	w := planWire{
		Day:       p.Day,
		Nodes:     p.Nodes,
		Ticks:     p.Ticks,
		Drop:      p.drop,
		Dup:       p.dup,
		DownFrom:  p.downFrom,
		DownTo:    p.downTo,
		ResetTick: p.resetTick,
	}
	if p.resetKind != nil {
		w.ResetKind = make([]int, len(p.resetKind))
		for i, k := range p.resetKind {
			w.ResetKind[i] = int(k)
		}
	}
	return json.Marshal(w)
}

// maxPlanDim bounds the decoded geometry: a day has at most 86400 ticks
// and no machine this simulator models approaches a million nodes.
// Anything larger is a corrupt or adversarial trace, rejected before the
// Nodes*Ticks product can overflow or drive a giant allocation.
const maxPlanDim = 1 << 20

// UnmarshalJSON decodes and validates the wire form. Every invariant the
// accessors assume is checked here, so arbitrary bytes either decode to
// a structurally sound plan or fail with an error — never a panic later.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var w planWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Nodes > maxPlanDim || w.Ticks > maxPlanDim {
		return fmt.Errorf("faults: plan geometry %dx%d exceeds %d", w.Nodes, w.Ticks, maxPlanDim)
	}
	// NewPlan passes degenerate geometry (zero or negative dims) through
	// with every table nil; mirror that here — no cells, no per-node rows.
	cells := 0
	if w.Nodes > 0 && w.Ticks > 0 {
		cells = w.Nodes * w.Ticks
	}
	if w.Drop != nil && len(w.Drop) != cells {
		return fmt.Errorf("faults: plan drop table has %d cells, geometry says %d", len(w.Drop), cells)
	}
	if w.Dup != nil && len(w.Dup) != cells {
		return fmt.Errorf("faults: plan dup table has %d cells, geometry says %d", len(w.Dup), cells)
	}
	// The four per-node arrays are allocated together by NewPlan; the
	// accessors index them together, so a partial set cannot be sound.
	perNode := []([]int){w.DownFrom, w.DownTo, w.ResetTick, w.ResetKind}
	names := []string{"down_from", "down_to", "reset_tick", "reset_kind"}
	for i, s := range perNode {
		if (s == nil) != (w.DownFrom == nil) {
			return fmt.Errorf("faults: plan %s present/absent disagrees with down_from", names[i])
		}
		if s != nil && (w.Nodes < 0 || len(s) != w.Nodes) {
			return fmt.Errorf("faults: plan %s has %d entries, geometry says %d nodes", names[i], len(s), w.Nodes)
		}
	}
	p.Day, p.Nodes, p.Ticks = w.Day, w.Nodes, w.Ticks
	p.drop, p.dup = w.Drop, w.Dup
	p.downFrom, p.downTo, p.resetTick = w.DownFrom, w.DownTo, w.ResetTick
	p.resetKind = nil
	if w.ResetKind != nil {
		p.resetKind = make([]ResetKind, len(w.ResetKind))
		for i, k := range w.ResetKind {
			if k < int(NoReset) || k > int(RestartReset) {
				return fmt.Errorf("faults: plan reset kind %d for node %d out of range", k, i)
			}
			p.resetKind[i] = ResetKind(k)
		}
	}
	return nil
}
