package faults

import (
	"fmt"
	"sync"

	"repro/internal/hpm"
	"repro/internal/rng"
)

// sourceStreamBase is the substream namespace for per-node read-failure
// schedules (5<<40; see the package doc for the full namespace map).
const sourceStreamBase uint64 = 5 << 40

// CounterSource is the subset of rs2hpm.Source the unreliable wrapper
// needs. It is restated here structurally so the fault layer stays below
// the collection stack in the import graph.
type CounterSource interface {
	NodeID() int
	Counters() hpm.Counts64
}

// UnreliableSource wraps a counter source with a seeded, deterministic
// read-failure schedule: each TryCounters call consults the node's own
// failure substream, so a given (seed, node, failure rate) produces the
// same error pattern on every run — including across the retries the
// collector layers on top. The always-succeeding Counters method is kept
// so the wrapper still satisfies rs2hpm.Source for callers that predate
// fallible reads.
type UnreliableSource struct {
	src      CounterSource
	failProb float64

	mu    sync.Mutex
	rnd   *rng.Source // guarded by mu
	reads int64       // guarded by mu
	fails int64       // guarded by mu
}

// NewUnreliableSource wraps src with the given per-read failure
// probability (clamped to [0, 1]). The failure schedule is keyed by
// (seed, node ID) so a cluster of wrapped sources fails independently.
func NewUnreliableSource(src CounterSource, seed uint64, failProb float64) *UnreliableSource {
	return &UnreliableSource{
		src:      src,
		failProb: clampProb(failProb),
		rnd:      rng.Stream(seed, sourceStreamBase+uint64(uint32(src.NodeID()))),
	}
}

// NodeID returns the wrapped node's ID.
func (u *UnreliableSource) NodeID() int { return u.src.NodeID() }

// Counters reads the wrapped source directly, bypassing the failure
// schedule; it exists for rs2hpm.Source compatibility.
func (u *UnreliableSource) Counters() hpm.Counts64 { return u.src.Counters() }

// TryCounters reads the wrapped source, or fails according to the
// schedule. Every call — including a retry of a failed read — draws the
// next scheduled outcome.
func (u *UnreliableSource) TryCounters() (hpm.Counts64, error) {
	u.mu.Lock()
	u.reads++
	fail := u.rnd.Bool(u.failProb)
	if fail {
		u.fails++
	}
	u.mu.Unlock()
	if fail {
		return hpm.Counts64{}, fmt.Errorf("faults: node %d: transient counter read failure", u.src.NodeID())
	}
	return u.src.Counters(), nil
}

// Stats reports the reads attempted and the failures injected so far.
func (u *UnreliableSource) Stats() (reads, failures int64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.reads, u.fails
}
