// Package faults is the chaos layer for the RS2HPM collection pipeline.
// The paper's nine-month campaign was not a clean record: nodes crashed
// and rebooted, the cron job driving the 15-minute RS2HPM sweep missed
// samples, daemon restarts zeroed the extended software totals, and the
// PBS epilogue's counter capture raced job termination. This package
// models those outages as *seeded, deterministic* events so a faulted
// campaign is exactly as reproducible as a clean one: every draw comes
// from an rng.Stream substream keyed by (campaign seed, day) or
// (campaign seed, job UID), the same discipline the workload generator
// uses, so a fault schedule depends only on the configuration and never
// on worker count or execution order.
//
// Substream namespaces: this package consumes stream IDs planStreamBase
// (3<<40) + day and jobStreamBase (4<<40) + job UID. The workload
// generator owns 1<<40 (day generation) and 2<<40 (per-job runtime); the
// 2^40 spacing keeps all four namespaces disjoint for any realistic
// campaign.
package faults

import "repro/internal/rng"

const (
	planStreamBase uint64 = 3 << 40
	jobStreamBase  uint64 = 4 << 40
)

// Config parameterises the fault mix. The zero value injects nothing; a
// campaign with a nil or zero Config is bit-identical to one without the
// fault layer at all. All rates are clamped to sane ranges when a plan is
// built, so arbitrary (fuzzed) values cannot panic or hang the planner.
type Config struct {
	// CrashProbPerNodeDay is the probability a node begins a crash+reboot
	// window on any given day. The crash zeroes the node's hardware
	// registers and extended totals (RAM state is gone) and the node is
	// unreachable for the reboot window.
	CrashProbPerNodeDay float64
	// MeanOutageTicks is the mean reboot-window length in sample periods
	// (geometric-ish via an exponential draw, minimum one tick).
	MeanOutageTicks float64
	// DropProbPerSample is the per-node-per-tick probability the cron
	// sweep misses the sample (the read never happens; counts carry to
	// the next successful sample).
	DropProbPerSample float64
	// DupProbPerSample is the per-node-per-tick probability the sweep
	// reads a node twice (overlapping cron runs). Duplicates must never
	// change any total — a property the test suite pins.
	DupProbPerSample float64
	// RestartProbPerNodeDay is the probability the node's RS2HPM daemon
	// restarts on a given day, zeroing the extended software totals while
	// the hardware keeps counting. Counts since the previous capture are
	// lost and the next read can only re-baseline.
	RestartProbPerNodeDay float64
	// EpilogueDelayProb is the per-job probability the PBS epilogue's
	// counter capture races job teardown and truncates the tail of the
	// job's counter record.
	EpilogueDelayProb float64
	// EpilogueDelayMeanSeconds is the mean truncation for delayed
	// epilogues (exponential draw).
	EpilogueDelayMeanSeconds float64
}

// Default returns a calibrated fault mix: a few node crashes a month
// across the cluster, percent-level cron misses, occasional daemon
// restarts — gappy the way a nine-month production record is gappy, while
// leaving the headline reductions recognisable.
func Default() Config {
	return Config{
		CrashProbPerNodeDay:      0.004, // ~0.6 crashes/day on 144 nodes
		MeanOutageTicks:          6,     // ~90 min median reboot+fsck
		DropProbPerSample:        0.01,
		DupProbPerSample:         0.003,
		RestartProbPerNodeDay:    0.01,
		EpilogueDelayProb:        0.05,
		EpilogueDelayMeanSeconds: 300,
	}
}

// Enabled reports whether any fault mode can fire.
func (c Config) Enabled() bool {
	return c.CrashProbPerNodeDay > 0 || c.DropProbPerSample > 0 ||
		c.DupProbPerSample > 0 || c.RestartProbPerNodeDay > 0 ||
		c.EpilogueDelayProb > 0
}

// clampProb forces p into [0, 1], mapping NaN to 0 — the planner's guard
// against adversarial configurations.
func clampProb(p float64) float64 {
	if !(p > 0) { // false for NaN and non-positive
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// sanitized returns the config with every rate clamped to a usable range.
func (c Config) sanitized() Config {
	c.CrashProbPerNodeDay = clampProb(c.CrashProbPerNodeDay)
	c.DropProbPerSample = clampProb(c.DropProbPerSample)
	c.DupProbPerSample = clampProb(c.DupProbPerSample)
	c.RestartProbPerNodeDay = clampProb(c.RestartProbPerNodeDay)
	c.EpilogueDelayProb = clampProb(c.EpilogueDelayProb)
	if !(c.MeanOutageTicks >= 1) { // false for NaN and sub-tick means
		c.MeanOutageTicks = 1
	}
	if !(c.EpilogueDelayMeanSeconds > 0) {
		c.EpilogueDelayMeanSeconds = 0
	}
	return c
}

// Fate is what happens to one scheduled node-sample.
type Fate uint8

// Sample fates, in the order the collection path decides them: an
// unreachable node wins over a cron miss, which wins over a re-baseline,
// which wins over a duplicate read.
const (
	FateCaptured   Fate = iota
	FateDown            // node unreachable (crash/reboot window)
	FateDropped         // cron missed the sweep
	FateRebase          // first read after a counter reset: baseline only, no delta
	FateDuplicated      // read twice; the second read is a zero-delta duplicate
)

// String names the fate.
func (f Fate) String() string {
	switch f {
	case FateCaptured:
		return "captured"
	case FateDown:
		return "down"
	case FateDropped:
		return "dropped"
	case FateRebase:
		return "rebase"
	case FateDuplicated:
		return "duplicated"
	}
	return "fate(?)"
}

// ResetKind distinguishes the two counter-reset events.
type ResetKind uint8

// Reset kinds.
const (
	NoReset      ResetKind = iota
	RebootReset            // node crash: hardware registers and totals zeroed
	RestartReset           // daemon restart: extended totals zeroed, hardware keeps counting
)

// Plan is one day's fault schedule: pure data, derived entirely from
// (Config, seed, day, geometry). Building the same plan twice — or on
// different workers, or out of day order — yields identical values.
type Plan struct {
	Day   int
	Nodes int
	Ticks int

	// drop and dup are per node-tick Bernoulli outcomes, indexed
	// node*Ticks+tick; nil when the corresponding rate is zero.
	drop []bool
	dup  []bool
	// downFrom/downTo give each node's unreachable tick window
	// [downFrom, downTo); downFrom == -1 means no window. resetTick is
	// the tick the node's counters reset (-1 none), with resetKind saying
	// how much state the reset destroys.
	downFrom  []int
	downTo    []int
	resetTick []int
	resetKind []ResetKind
}

// NewPlan builds the day's fault schedule. Draw order is fixed (node
// major, fault mode minor) so the plan is a pure function of its
// arguments; nodes or ticks outside the geometry are never scheduled.
func NewPlan(cfg Config, seed uint64, day, nodes, ticks int) Plan {
	p := Plan{Day: day, Nodes: nodes, Ticks: ticks}
	if nodes <= 0 || ticks <= 0 {
		return p
	}
	cfg = cfg.sanitized()
	p.downFrom = make([]int, nodes)
	p.downTo = make([]int, nodes)
	p.resetTick = make([]int, nodes)
	p.resetKind = make([]ResetKind, nodes)
	for i := 0; i < nodes; i++ {
		p.downFrom[i], p.downTo[i], p.resetTick[i] = -1, -1, -1
	}
	if !cfg.Enabled() {
		return p
	}
	rnd := rng.Stream(seed, planStreamBase+uint64(day))
	if cfg.DropProbPerSample > 0 {
		p.drop = make([]bool, nodes*ticks)
		for i := range p.drop {
			p.drop[i] = rnd.Bool(cfg.DropProbPerSample)
		}
	}
	if cfg.DupProbPerSample > 0 {
		p.dup = make([]bool, nodes*ticks)
		for i := range p.dup {
			p.dup[i] = rnd.Bool(cfg.DupProbPerSample)
		}
	}
	for n := 0; n < nodes; n++ {
		if cfg.CrashProbPerNodeDay > 0 && rnd.Bool(cfg.CrashProbPerNodeDay) {
			start := rnd.Intn(ticks)
			length := 1 + int(rnd.Exponential(cfg.MeanOutageTicks-1))
			if length < 1 || length > ticks {
				length = ticks // clamp pathological draws; window still clips below
			}
			end := start + length
			if end > ticks {
				end = ticks // outages do not cross the day boundary
			}
			p.downFrom[n], p.downTo[n] = start, end
			p.resetTick[n], p.resetKind[n] = start, RebootReset
		}
		// A daemon restart on a crashing node is subsumed by the reboot.
		if cfg.RestartProbPerNodeDay > 0 && p.resetKind[n] == NoReset &&
			rnd.Bool(cfg.RestartProbPerNodeDay) {
			p.resetTick[n], p.resetKind[n] = rnd.Intn(ticks), RestartReset
		}
	}
	return p
}

// Empty reports whether the plan schedules no fault at all.
func (p Plan) Empty() bool {
	for _, f := range p.downFrom {
		if f >= 0 {
			return false
		}
	}
	for _, t := range p.resetTick {
		if t >= 0 {
			return false
		}
	}
	for _, b := range p.drop {
		if b {
			return false
		}
	}
	for _, b := range p.dup {
		if b {
			return false
		}
	}
	return true
}

// Down reports whether the node is unreachable at the tick.
func (p Plan) Down(node, tick int) bool {
	if p.downFrom == nil || node < 0 || node >= p.Nodes {
		return false
	}
	return p.downFrom[node] >= 0 && tick >= p.downFrom[node] && tick < p.downTo[node]
}

// Dropped reports whether the cron sweep misses the node at the tick.
func (p Plan) Dropped(node, tick int) bool {
	if p.drop == nil || node < 0 || node >= p.Nodes || tick < 0 || tick >= p.Ticks {
		return false
	}
	return p.drop[node*p.Ticks+tick]
}

// Duplicated reports whether the sweep reads the node twice at the tick.
func (p Plan) Duplicated(node, tick int) bool {
	if p.dup == nil || node < 0 || node >= p.Nodes || tick < 0 || tick >= p.Ticks {
		return false
	}
	return p.dup[node*p.Ticks+tick]
}

// ResetAt returns the reset event scheduled for the node at the tick.
func (p Plan) ResetAt(node, tick int) ResetKind {
	if p.resetTick == nil || node < 0 || node >= p.Nodes || p.resetTick[node] != tick {
		return NoReset
	}
	return p.resetKind[node]
}

// EpilogueDelay returns the epilogue-capture truncation, in seconds, for
// the job with the given campaign-unique UID — zero for the (usual) jobs
// whose epilogue wins the race. Pure in (cfg, seed, jobUID): the draw
// comes from the job's own fault substream, so it is independent of which
// day the job ends on and of every other job.
func (c Config) EpilogueDelay(seed, jobUID uint64) float64 {
	c = c.sanitized()
	if c.EpilogueDelayProb <= 0 || c.EpilogueDelayMeanSeconds <= 0 {
		return 0
	}
	rnd := rng.Stream(seed, jobStreamBase+jobUID)
	if !rnd.Bool(c.EpilogueDelayProb) {
		return 0
	}
	return rnd.Exponential(c.EpilogueDelayMeanSeconds)
}
