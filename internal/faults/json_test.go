package faults

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// TestPlanJSONRoundTrip is the codec's property test: for randomized
// seeded plans — empty days, zero-node/zero-tick geometry, single fault
// modes, everything-on mixes with duplicated samples — the encode→decode
// round trip is exact under reflect.DeepEqual, nil-ness of every
// internal slice included.
func TestPlanJSONRoundTrip(t *testing.T) {
	configs := []Config{
		{}, // no faults: per-tick tables stay nil
		{DropProbPerSample: 0.2},
		{DupProbPerSample: 0.9}, // dense duplicated-sample entries
		{CrashProbPerNodeDay: 0.5, MeanOutageTicks: 4},
		{RestartProbPerNodeDay: 0.5},
		Default(),
		{ // everything on, hot
			CrashProbPerNodeDay:   0.3,
			MeanOutageTicks:       3,
			DropProbPerSample:     0.15,
			DupProbPerSample:      0.15,
			RestartProbPerNodeDay: 0.3,
		},
	}
	geoms := []struct{ nodes, ticks int }{
		{0, 0}, {0, 96}, {8, 0}, {-1, 96}, // degenerate: all-nil plans
		{1, 1}, {4, 96}, {16, 12},
	}
	rnd := rand.New(rand.NewSource(10))
	for ci, cfg := range configs {
		for _, g := range geoms {
			for rep := 0; rep < 3; rep++ {
				seed := rnd.Uint64()
				day := rnd.Intn(30)
				p := NewPlan(cfg, seed, day, g.nodes, g.ticks)
				data, err := json.Marshal(p)
				if err != nil {
					t.Fatalf("config %d %dx%d: marshal: %v", ci, g.nodes, g.ticks, err)
				}
				var got Plan
				if err := json.Unmarshal(data, &got); err != nil {
					t.Fatalf("config %d %dx%d: unmarshal: %v", ci, g.nodes, g.ticks, err)
				}
				if !reflect.DeepEqual(p, got) {
					t.Fatalf("config %d %dx%d seed %d day %d: round trip not exact\nwant %+v\ngot  %+v",
						ci, g.nodes, g.ticks, seed, day, p, got)
				}
			}
		}
	}
}

// TestPlanJSONRoundTripPreservesBehavior re-checks the round trip at the
// accessor level: every (node, tick) query answers identically on the
// decoded plan, which is the property replay actually depends on.
func TestPlanJSONRoundTripPreservesBehavior(t *testing.T) {
	cfg := Config{
		CrashProbPerNodeDay:   0.4,
		MeanOutageTicks:       5,
		DropProbPerSample:     0.1,
		DupProbPerSample:      0.1,
		RestartProbPerNodeDay: 0.4,
	}
	p := NewPlan(cfg, 99, 3, 12, 24)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var got Plan
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	for n := -1; n <= p.Nodes; n++ {
		for tick := -1; tick <= p.Ticks; tick++ {
			if p.Down(n, tick) != got.Down(n, tick) ||
				p.Dropped(n, tick) != got.Dropped(n, tick) ||
				p.Duplicated(n, tick) != got.Duplicated(n, tick) ||
				p.ResetAt(n, tick) != got.ResetAt(n, tick) {
				t.Fatalf("accessor disagreement at node %d tick %d", n, tick)
			}
		}
	}
	if p.Empty() != got.Empty() {
		t.Fatal("Empty() disagrees after round trip")
	}
}

// TestPlanUnmarshalRejectsUnsound pins the decoder's validation: wire
// forms whose geometry and tables disagree must fail to decode, because
// a plan with (say) a short downTo slice would panic in Down.
func TestPlanUnmarshalRejectsUnsound(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"negative nodes with rows", `{"day":0,"nodes":-2,"ticks":4,"drop":null,"dup":null,"down_from":[1],"down_to":[2],"reset_tick":[0],"reset_kind":[0]}`},
		{"negative ticks with cells", `{"day":0,"nodes":2,"ticks":-4,"drop":[true],"dup":null,"down_from":null,"down_to":null,"reset_tick":null,"reset_kind":null}`},
		{"huge geometry", `{"day":0,"nodes":2000000,"ticks":2000000,"drop":null,"dup":null,"down_from":null,"down_to":null,"reset_tick":null,"reset_kind":null}`},
		{"short drop table", `{"day":0,"nodes":2,"ticks":4,"drop":[true],"dup":null,"down_from":null,"down_to":null,"reset_tick":null,"reset_kind":null}`},
		{"short dup table", `{"day":0,"nodes":2,"ticks":4,"drop":null,"dup":[false,true],"down_from":null,"down_to":null,"reset_tick":null,"reset_kind":null}`},
		{"partial per-node set", `{"day":0,"nodes":2,"ticks":4,"drop":null,"dup":null,"down_from":[1,-1],"down_to":null,"reset_tick":null,"reset_kind":null}`},
		{"short down_to", `{"day":0,"nodes":2,"ticks":4,"drop":null,"dup":null,"down_from":[1,-1],"down_to":[2],"reset_tick":[-1,-1],"reset_kind":[0,0]}`},
		{"reset kind out of range", `{"day":0,"nodes":1,"ticks":4,"drop":null,"dup":null,"down_from":[-1],"down_to":[-1],"reset_tick":[2],"reset_kind":[7]}`},
		{"not an object", `[1,2,3]`},
	}
	for _, tc := range cases {
		var p Plan
		if err := json.Unmarshal([]byte(tc.json), &p); err == nil {
			t.Errorf("%s: decode unexpectedly succeeded: %+v", tc.name, p)
		}
	}
}
