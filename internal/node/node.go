// Package node assembles one SP2 node: a POWER2 CPU with its hardware
// performance monitor, at least 128 MB of memory, a 2 GB local disk, and a
// switch adapter. The node is where architectural simulation (instruction
// streams through the CPU) and campaign-level accounting (DMA traffic,
// disk I/O, monitor snapshots for the RS2HPM daemon) meet.
package node

import (
	"fmt"
	"sync"

	"repro/internal/hpm"
	"repro/internal/isa"
	"repro/internal/power2"
	"repro/internal/units"
)

// Config describes a node.
type Config struct {
	// ID is the cluster-wide node number (0-based).
	ID int
	// MemoryBytes is physical memory; zero selects the SP2's 128 MB.
	MemoryBytes uint64
	// DiskBytes is local disk; zero selects the SP2's 2 GB.
	DiskBytes uint64
	// CPU overrides parts of the processor configuration; MemoryBytes
	// above takes precedence for the paging model.
	CPU power2.Config
}

// Node is one SP2 node. The mutex guards the monitor against concurrent
// access from the RS2HPM daemon's TCP handlers; the CPU itself is driven
// from the simulation goroutine only.
type Node struct {
	id   int
	cpu  *power2.CPU // driven from the simulation goroutine, under mu
	disk *Disk
	acc  *hpm.Accumulator // guarded by mu; the daemon's extended 64-bit counter view

	mu sync.Mutex // guards monitor access for cross-goroutine snapshots
}

// New builds a node.
func New(cfg Config) *Node {
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = units.NodeMemoryBytes
	}
	if cfg.DiskBytes == 0 {
		cfg.DiskBytes = units.NodeDiskBytes
	}
	cpuCfg := cfg.CPU
	cpuCfg.MemoryBytes = cfg.MemoryBytes
	if cpuCfg.Seed == 0 {
		cpuCfg.Seed = uint64(cfg.ID) + 1
	}
	cpu := power2.New(cpuCfg)
	return &Node{
		id:   cfg.ID,
		cpu:  cpu,
		disk: NewDisk(cfg.DiskBytes),
		acc:  hpm.NewAccumulator(cpu.Monitor()),
	}
}

// ID returns the node number.
func (n *Node) ID() int { return n.id }

// NodeID implements hps.Adapter.
func (n *Node) NodeID() int { return n.id }

// CPU exposes the processor (single-goroutine use only).
func (n *Node) CPU() *power2.CPU { return n.cpu }

// Disk exposes the local disk model.
func (n *Node) Disk() *Disk { return n.disk }

// Run executes an instruction stream on the node's CPU and folds the new
// hardware counts into the extended totals. Callers must keep individual
// runs short enough that no 32-bit register wraps twice (under 2^31
// cycles, i.e. ~30 simulated seconds — vastly more than any microsim
// burst).
func (n *Node) Run(s isa.Stream) power2.RunStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.cpu.Run(s)
	n.acc.Sample()
	return st
}

// RunLimited executes at most k instructions.
func (n *Node) RunLimited(s isa.Stream, k uint64) power2.RunStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.cpu.RunLimited(s, k)
	n.acc.Sample()
	return st
}

// AccountDMA implements hps.Adapter: message-passing traffic lands in the
// SCU's DMA counters.
func (n *Node) AccountDMA(reads, writes uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cpu.AddDMA(reads, writes)
	n.acc.Sample()
}

// ArmSelection re-programs the hardware monitor with a verified counter
// selection (clearing the registers and the extended totals, as re-arming
// the real hardware did). It implements rs2hpm's optional Armer interface.
func (n *Node) ArmSelection(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.cpu.Monitor().Arm(name); err != nil {
		return err
	}
	n.acc.Reset()
	return nil
}

// AddIOWait charges I/O-wait time (message receipt, barrier waits, disk
// service) to the CPU's io_wait signal; visible only when the I/O-wait
// counter selection is armed.
func (n *Node) AddIOWait(seconds float64) {
	if seconds <= 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cpu.AddIOWait(uint64(seconds * units.ClockHz))
	n.acc.Sample()
}

// Counters returns the daemon's extended 64-bit counter view; safe to
// call from the daemon goroutine while the simulation runs.
func (n *Node) Counters() hpm.Counts64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.acc.Sample()
	return n.acc.Totals()
}

// WithMonitor runs fn with exclusive access to the node's hardware
// monitor, folding any new counts into the extended totals afterwards.
func (n *Node) WithMonitor(fn func(m *hpm.Monitor)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(n.cpu.Monitor())
	n.acc.Sample()
}

// WithAccumulator runs fn with exclusive access to the extended counter
// accumulator. The campaign layer uses it to advance counters by profile
// extrapolation.
func (n *Node) WithAccumulator(fn func(a *hpm.Accumulator)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(n.acc)
}

// ResetMonitor zeroes both the hardware counters and the extended totals
// (used between campaign segments, and by the fault layer for a node
// crash: a reboot loses registers and daemon state alike).
func (n *Node) ResetMonitor() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cpu.Monitor().Reset()
	n.acc.Reset()
}

// ResetExtendedTotals zeroes the extended software totals and re-baselines
// against the live hardware registers, which keep counting — an RS2HPM
// daemon restart, where the kernel extension survives but the daemon's
// accumulated totals are gone.
func (n *Node) ResetExtendedTotals() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.acc.Reset()
}

// Disk is the node's local disk plus its NFS path to the home filesystems:
// a capacity bookkeeping device whose traffic also appears in the DMA
// counters (the paper notes disk traffic shows up in the DMA read/write
// system report). Safe for concurrent use: the simulation goroutine and
// campaign bookkeeping may touch it from different goroutines.
type Disk struct {
	capacity uint64 // immutable after NewDisk

	mu         sync.Mutex
	used       uint64 // guarded by mu
	readBytes  uint64 // guarded by mu
	writeBytes uint64 // guarded by mu
}

// NewDisk builds a disk with the given capacity.
func NewDisk(capacity uint64) *Disk {
	return &Disk{capacity: capacity}
}

// Capacity returns the disk size in bytes.
func (d *Disk) Capacity() uint64 { return d.capacity }

// Used returns allocated bytes.
func (d *Disk) Used() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Allocate reserves space, failing when the disk would overflow.
func (d *Disk) Allocate(bytes uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.used+bytes > d.capacity {
		return fmt.Errorf("node: disk full: %d + %d > %d", d.used, bytes, d.capacity)
	}
	d.used += bytes
	return nil
}

// Release frees space (clamped at zero).
func (d *Disk) Release(bytes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if bytes > d.used {
		bytes = d.used
	}
	d.used -= bytes
}

// RecordIO accumulates raw traffic counters.
func (d *Disk) RecordIO(readBytes, writeBytes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.readBytes += readBytes
	d.writeBytes += writeBytes
}

// Traffic reports accumulated read/write bytes.
func (d *Disk) Traffic() (readBytes, writeBytes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readBytes, d.writeBytes
}

// DiskIO performs disk traffic on the node: it charges the DMA counters
// (reads from disk are device-to-memory dma_write transfers and vice
// versa) and records the raw byte counts.
func (n *Node) DiskIO(readBytes, writeBytes uint64) {
	const per = 64
	n.AccountDMA((writeBytes+per-1)/per, (readBytes+per-1)/per)
	n.disk.RecordIO(readBytes, writeBytes)
}
