package node

import (
	"sync"
	"testing"

	"repro/internal/hpm"
	"repro/internal/isa"
	"repro/internal/units"
)

func testNode(id int) *Node { return New(Config{ID: id}) }

func fmaLoop(iters uint64) *isa.Loop {
	b := isa.NewBuilder()
	b.FMA(0, 8, 9, 0)
	b.FMA(1, 8, 9, 1)
	return b.Build(iters, 0)
}

func TestDefaults(t *testing.T) {
	n := testNode(7)
	if n.ID() != 7 || n.NodeID() != 7 {
		t.Fatalf("IDs = %d/%d", n.ID(), n.NodeID())
	}
	if n.Disk().Capacity() != units.NodeDiskBytes {
		t.Fatalf("disk = %d", n.Disk().Capacity())
	}
	if n.CPU().VM() == nil {
		t.Fatal("paging model not enabled by default")
	}
}

func TestRunFeedsMonitor(t *testing.T) {
	n := testNode(0)
	st := n.Run(fmaLoop(100))
	if st.Flops != 400 {
		t.Fatalf("flops = %d", st.Flops)
	}
	s := n.Counters()
	fpu := s.Get(hpm.User, hpm.EvFPU0Instr) + s.Get(hpm.User, hpm.EvFPU1Instr)
	if fpu != 200 {
		t.Fatalf("FPU instr = %d", fpu)
	}
}

func TestRunLimited(t *testing.T) {
	n := testNode(0)
	st := n.RunLimited(fmaLoop(1000000), 50)
	if st.Instructions != 50 {
		t.Fatalf("instructions = %d", st.Instructions)
	}
}

func TestAccountDMA(t *testing.T) {
	n := testNode(0)
	n.AccountDMA(5, 9)
	s := n.Counters()
	if s.Get(hpm.User, hpm.EvDMARead) != 5 || s.Get(hpm.User, hpm.EvDMAWrite) != 9 {
		t.Fatal("DMA counters wrong")
	}
}

func TestDiskIOChargesDMA(t *testing.T) {
	n := testNode(0)
	// Reading 6400 bytes from disk = 100 device-to-memory (dma_write)
	// transfers; writing 640 = 10 memory-to-device (dma_read).
	n.DiskIO(6400, 640)
	s := n.Counters()
	if got := s.Get(hpm.User, hpm.EvDMAWrite); got != 100 {
		t.Fatalf("dma_write = %d, want 100", got)
	}
	if got := s.Get(hpm.User, hpm.EvDMARead); got != 10 {
		t.Fatalf("dma_read = %d, want 10", got)
	}
	r, w := n.Disk().Traffic()
	if r != 6400 || w != 640 {
		t.Fatalf("traffic = %d/%d", r, w)
	}
}

func TestWithMonitorAndReset(t *testing.T) {
	n := testNode(0)
	n.WithMonitor(func(m *hpm.Monitor) { m.Add(hpm.EvCycles, 42) })
	if n.Counters().Get(hpm.User, hpm.EvCycles) != 42 {
		t.Fatal("WithMonitor write lost")
	}
	n.ResetMonitor()
	if n.Counters().Get(hpm.User, hpm.EvCycles) != 0 {
		t.Fatal("ResetMonitor did not clear")
	}
}

func TestConcurrentSnapshotsDoNotRace(t *testing.T) {
	// The RS2HPM daemon snapshots while the simulation accounts DMA.
	n := testNode(0)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				n.Counters()
			}
		}()
	}
	for j := 0; j < 1000; j++ {
		n.AccountDMA(1, 1)
	}
	wg.Wait()
	s := n.Counters()
	if s.Get(hpm.User, hpm.EvDMARead) != 1000 {
		t.Fatalf("dma_read = %d", s.Get(hpm.User, hpm.EvDMARead))
	}
}

func TestDiskAllocate(t *testing.T) {
	d := NewDisk(1000)
	if err := d.Allocate(600); err != nil {
		t.Fatal(err)
	}
	if err := d.Allocate(500); err == nil {
		t.Fatal("overflow allocation succeeded")
	}
	if d.Used() != 600 {
		t.Fatalf("used = %d", d.Used())
	}
	d.Release(100)
	if d.Used() != 500 {
		t.Fatalf("used after release = %d", d.Used())
	}
	d.Release(10000) // clamped
	if d.Used() != 0 {
		t.Fatalf("used after clamp release = %d", d.Used())
	}
}

func TestSeedDerivedFromID(t *testing.T) {
	// Different nodes must not share TLB-penalty RNG streams; same-ID
	// nodes must be reproducible. We can only observe this indirectly:
	// construction succeeds and a fresh node's run is deterministic.
	a1 := testNode(3)
	a2 := testNode(3)
	s1 := a1.Run(fmaLoop(1000))
	s2 := a2.Run(fmaLoop(1000))
	if s1 != s2 {
		t.Fatalf("same node ID, different run stats: %+v vs %+v", s1, s2)
	}
}

func TestArmSelection(t *testing.T) {
	n := testNode(0)
	n.AccountDMA(5, 5)
	if err := n.ArmSelection("iowait"); err != nil {
		t.Fatal(err)
	}
	// Re-arming cleared both hardware registers and extended totals.
	if got := n.Counters().Get(hpm.User, hpm.EvDMARead); got != 0 {
		t.Fatalf("counters survived re-arm: %d", got)
	}
	// I/O wait is now countable.
	n.AddIOWait(0.001) // ~66.7k cycles
	got := n.Counters().Get(hpm.User, hpm.EvICacheReload)
	if got < 66000 || got > 67000 {
		t.Fatalf("io_wait slot = %d, want ~66700", got)
	}
	if err := n.ArmSelection("nope"); err == nil {
		t.Fatal("unknown selection armed")
	}
}

func TestAddIOWaitInvisibleUnderNAS(t *testing.T) {
	n := testNode(0)
	n.AddIOWait(0.5)
	c := n.Counters()
	var total uint64
	for ev := hpm.Event(0); ev < hpm.NumEvents; ev++ {
		total += c.Get(hpm.User, ev) + c.Get(hpm.System, ev)
	}
	if total != 0 {
		t.Fatalf("I/O wait leaked into NAS-selected counters: %d", total)
	}
}

// TestConcurrentDiskTrafficDoesNotRace drives disk bookkeeping from
// several goroutines at once, as campaign bookkeeping and the simulation
// goroutine may: the traffic counters and allocation must be guarded.
func TestConcurrentDiskTrafficDoesNotRace(t *testing.T) {
	n := testNode(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n.DiskIO(128, 64)
				n.Disk().Traffic()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := n.Disk().Allocate(16); err != nil {
					t.Errorf("allocate: %v", err)
					return
				}
				n.Disk().Release(16)
				n.Disk().Used()
			}
		}()
	}
	wg.Wait()
	r, w := n.Disk().Traffic()
	if r != 4*500*128 || w != 4*500*64 {
		t.Fatalf("Traffic() = %d, %d", r, w)
	}
	if n.Disk().Used() != 0 {
		t.Fatalf("Used() = %d after balanced alloc/release", n.Disk().Used())
	}
}
