package vm

import (
	"testing"
	"testing/quick"
)

const page = 4096

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, c := range []struct {
		mem  uint64
		page int
	}{{0, 4096}, {1 << 20, 0}, {1 << 20, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.mem, c.page)
				}
			}()
			New(c.mem, c.page)
		}()
	}
}

func TestFrameCount(t *testing.T) {
	m := New(16*page, page)
	if m.Frames() != 16 {
		t.Fatalf("Frames = %d", m.Frames())
	}
}

func TestTouchFaultsOnceWhenResidentFits(t *testing.T) {
	m := New(8*page, page)
	for pass := 0; pass < 3; pass++ {
		for p := 0; p < 8; p++ {
			m.Touch(uint64(p*page), false)
		}
	}
	st := m.Stats()
	if st.Faults != 8 {
		t.Fatalf("faults = %d, want 8 (one per page)", st.Faults)
	}
	if st.Touches != 24 {
		t.Fatalf("touches = %d", st.Touches)
	}
	if m.ResidentPages() != 8 {
		t.Fatalf("resident = %d", m.ResidentPages())
	}
}

func TestZeroFillVsPageIn(t *testing.T) {
	m := New(2*page, page)
	if got := m.Touch(0, false); got != ZeroFill {
		t.Fatalf("first touch = %v, want ZeroFill", got)
	}
	if got := m.Touch(0, false); got != NoFault {
		t.Fatalf("resident touch = %v, want NoFault", got)
	}
	m.Touch(1*page, false)
	m.Touch(2*page, false) // evicts page 0
	m.Touch(3*page, false)
	// Page 0 was evicted: re-touching is a page-in from paging space.
	for m.Resident(0) {
		m.Touch(4*page, false)
	}
	if got := m.Touch(0, false); got != PageIn {
		t.Fatalf("re-touch of evicted page = %v, want PageIn", got)
	}
	st := m.Stats()
	if st.PageIns == 0 || st.ZeroFills == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReleaseAllForgetsHistory(t *testing.T) {
	m := New(2*page, page)
	m.Touch(0, false)
	m.ReleaseAll()
	// After job exit the address space is fresh: first touch is zero-fill
	// again, not a page-in.
	if got := m.Touch(0, false); got != ZeroFill {
		t.Fatalf("post-release touch = %v, want ZeroFill", got)
	}
}

func TestOversubscribedWorkingSetThrashes(t *testing.T) {
	// Working set of 16 pages cycled through 8 frames with CLOCK: every
	// touch faults in steady state (sequential cyclic sweep is CLOCK's
	// worst case — this is the paper's >64-node paging pathology).
	m := New(8*page, page)
	for pass := 0; pass < 4; pass++ {
		for p := 0; p < 16; p++ {
			m.Touch(uint64(p*page), false)
		}
	}
	st := m.Stats()
	if st.FaultRatio() < 0.9 {
		t.Fatalf("oversubscribed fault ratio = %v, want ~1", st.FaultRatio())
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under oversubscription")
	}
}

func TestDirtyEvictionCountsPageOut(t *testing.T) {
	m := New(2*page, page)
	m.Touch(0*page, true)  // dirty
	m.Touch(1*page, false) // clean
	m.Touch(2*page, false) // evicts something
	m.Touch(3*page, false) // evicts something
	st := m.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if st.PageOuts != 1 {
		t.Fatalf("pageouts = %d, want 1 (only the dirty page)", st.PageOuts)
	}
}

func TestClockGivesSecondChance(t *testing.T) {
	m := New(2*page, page)
	m.Touch(0*page, false)
	m.Touch(1*page, false)
	// Re-reference page 0 so its bit is set; page 1's bit is also set from
	// its fault. Fault a third page: CLOCK clears bits in order and evicts
	// the first frame it finds unreferenced — frame 0 after one full lap.
	m.Touch(0*page, false)
	m.Touch(2*page, false)
	if m.ResidentPages() != 2 {
		t.Fatalf("resident = %d", m.ResidentPages())
	}
	if !m.Resident(2 * page) {
		t.Fatal("newly faulted page not resident")
	}
}

func TestReleaseAll(t *testing.T) {
	m := New(4*page, page)
	m.Touch(0, true)
	m.Touch(page, false)
	m.ReleaseAll()
	if m.ResidentPages() != 0 {
		t.Fatalf("resident = %d after ReleaseAll", m.ResidentPages())
	}
	if m.Stats().PageOuts != 1 {
		t.Fatalf("pageouts = %d, want 1 dirty cleanout", m.Stats().PageOuts)
	}
	// Frames are reusable.
	m.Touch(42*page, false)
	if m.ResidentPages() != 1 {
		t.Fatal("manager unusable after ReleaseAll")
	}
}

func TestResidentProbeNoSideEffects(t *testing.T) {
	m := New(4*page, page)
	m.Touch(0, false)
	before := m.Stats()
	if !m.Resident(0) || m.Resident(page) {
		t.Fatal("Resident probe wrong")
	}
	if m.Stats() != before {
		t.Fatal("Resident probe changed stats")
	}
}

func TestResetStats(t *testing.T) {
	m := New(4*page, page)
	m.Touch(0, false)
	m.ResetStats()
	if m.Stats().Touches != 0 {
		t.Fatal("ResetStats did not zero")
	}
	if !m.Resident(0) {
		t.Fatal("ResetStats evicted pages")
	}
}

func TestOversubscription(t *testing.T) {
	m := New(8*page, page)
	if got := m.Oversubscription(16 * page); got != 2.0 {
		t.Fatalf("Oversubscription = %v", got)
	}
	if got := m.Oversubscription(4 * page); got != 0.5 {
		t.Fatalf("Oversubscription = %v", got)
	}
}

func TestPageOf(t *testing.T) {
	m := New(4*page, page)
	if m.PageOf(0) != 0 || m.PageOf(page-1) != 0 || m.PageOf(page) != 1 {
		t.Fatal("PageOf boundaries wrong")
	}
}

func TestAccountingInvariantsProperty(t *testing.T) {
	f := func(touches []uint16, dirt []bool) bool {
		m := New(8*page, page)
		for i, p := range touches {
			dirty := i < len(dirt) && dirt[i]
			m.Touch(uint64(p%64)*page, dirty)
		}
		st := m.Stats()
		// Faults split exactly into zero-fills and page-ins; resident pages
		// never exceed frames; evictions never exceed faults; page-outs
		// never exceed evictions.
		return st.Faults == st.ZeroFills+st.PageIns &&
			m.ResidentPages() <= m.Frames() &&
			st.Evictions <= st.Faults &&
			st.PageOuts <= st.Evictions &&
			st.Touches == uint64(len(touches))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultRatioEmptyStats(t *testing.T) {
	var s Stats
	if s.FaultRatio() != 0 {
		t.Fatal("empty FaultRatio not 0")
	}
}

func BenchmarkTouchResident(b *testing.B) {
	m := New(1024*page, page)
	m.Touch(0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Touch(0, false)
	}
}

func BenchmarkTouchThrashing(b *testing.B) {
	m := New(64*page, page)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Touch(uint64(i%128)*page, false)
	}
}
