// Package vm models AIX virtual memory on a node: a fixed number of
// resident page frames managed with a CLOCK second-chance policy. When a
// job's working set exceeds node memory the manager page-faults, and each
// fault costs system-mode CPU time plus disk DMA traffic — the mechanism
// behind the paper's key finding that >64-node jobs spent more instructions
// in system mode than user mode because they were paging.
package vm

import "fmt"

// Fault classifies the outcome of a page touch.
type Fault uint8

// Fault kinds. A first touch of a never-seen page is a zero-fill fault:
// AIX allocates and zeroes a frame, cheap and disk-free. A touch of a page
// that was previously resident and got evicted is a page-in: the frame
// must come back from paging space — the expensive path behind the
// paper's >64-node pathology.
const (
	NoFault Fault = iota
	ZeroFill
	PageIn
)

// Stats accumulates paging events.
type Stats struct {
	Touches   uint64 // page references checked
	Faults    uint64 // references to non-resident pages (zero-fill + page-in)
	ZeroFills uint64 // first-touch faults (no disk traffic)
	PageIns   uint64 // pages read back from paging space
	PageOuts  uint64 // dirty pages written to disk on eviction
	Evictions uint64 // pages evicted (dirty or clean)
}

// FaultRatio reports faults per touch.
func (s Stats) FaultRatio() float64 {
	if s.Touches == 0 {
		return 0
	}
	return float64(s.Faults) / float64(s.Touches)
}

type frame struct {
	vpn        uint64
	valid      bool
	referenced bool
	dirty      bool
}

// Manager is a per-node virtual memory manager. Not safe for concurrent
// use; each simulated node owns one.
//
// Storage is allocated lazily: a node that never touches memory (the
// common case in the campaign, where job behaviour is extrapolated from
// profiles rather than micro-simulated per node) costs a few words, not
// nframes of frame table and map buckets. The frame table grows one frame
// at a time as first-touch faults claim frames, so it reaches nframes only
// if the workload actually fills memory.
type Manager struct {
	pageBytes uint64
	nframes   int                 // physical frame count (fixed geometry)
	frames    []frame             // allocated frames; len grows up to nframes
	index     map[uint64]int      // vpn -> frame; nil until first fault
	seen      map[uint64]struct{} // pages ever resident; nil until first fault
	hand      int
	free      int // frames never yet used (fast path before memory fills)
	stats     Stats

	// lastFi caches the frame that served the previous touch (-1 when
	// unknown). Consecutive references land on the same page far more
	// often than not, and the check — frame valid with matching vpn — is
	// equivalent to the index-map hit for that page, so the shortcut
	// skips the map lookup without changing any outcome.
	lastFi int
}

// New builds a manager with capacity for memoryBytes of resident pages.
// It panics on non-positive geometry.
func New(memoryBytes uint64, pageBytes int) *Manager {
	if memoryBytes == 0 || pageBytes <= 0 {
		panic(fmt.Sprintf("vm: bad geometry memory=%d page=%d", memoryBytes, pageBytes))
	}
	n := int(memoryBytes / uint64(pageBytes))
	if n < 1 {
		n = 1
	}
	return &Manager{
		pageBytes: uint64(pageBytes),
		nframes:   n,
		free:      n,
		lastFi:    -1,
	}
}

// Frames reports the number of physical page frames.
func (m *Manager) Frames() int { return m.nframes }

// ResidentPages reports how many frames currently hold pages.
func (m *Manager) ResidentPages() int { return len(m.index) }

// Stats returns the accumulated paging counts.
func (m *Manager) Stats() Stats { return m.stats }

// ResetStats zeroes the counters without evicting pages.
func (m *Manager) ResetStats() { m.stats = Stats{} }

// PageOf returns the virtual page number for addr.
func (m *Manager) PageOf(addr uint64) uint64 { return addr / m.pageBytes }

// Touch references the page containing addr, faulting it in if necessary.
// dirty marks the page modified (a store). It returns the fault kind.
func (m *Manager) Touch(addr uint64, dirty bool) Fault {
	m.stats.Touches++
	vpn := addr / m.pageBytes
	if m.lastFi >= 0 {
		if f := &m.frames[m.lastFi]; f.valid && f.vpn == vpn {
			f.referenced = true
			if dirty {
				f.dirty = true
			}
			return NoFault
		}
	}
	if fi, ok := m.index[vpn]; ok {
		m.frames[fi].referenced = true
		if dirty {
			m.frames[fi].dirty = true
		}
		m.lastFi = fi
		return NoFault
	}

	m.stats.Faults++
	kind := ZeroFill
	if _, ever := m.seen[vpn]; ever {
		kind = PageIn
		m.stats.PageIns++
	} else {
		m.stats.ZeroFills++
		if m.seen == nil {
			//hpmlint:ignore hotalloc lazy one-time map allocation on the first fault, amortised to zero over a run
			m.seen = make(map[uint64]struct{})
		}
		m.seen[vpn] = struct{}{}
	}

	var fi int
	if m.free > 0 {
		fi = m.nframes - m.free
		m.free--
		if fi == len(m.frames) {
			//hpmlint:ignore hotalloc the frame pool grows to nframes once then stabilises; BenchmarkRunKernel measures the steady state
			m.frames = append(m.frames, frame{})
		}
	} else {
		fi = m.evict()
	}
	m.frames[fi] = frame{vpn: vpn, valid: true, referenced: true, dirty: dirty}
	if m.index == nil {
		//hpmlint:ignore hotalloc lazy one-time map allocation on the first fault, amortised to zero over a run
		m.index = make(map[uint64]int)
	}
	m.index[vpn] = fi
	m.lastFi = fi
	return kind
}

// evict runs the CLOCK hand until it finds an unreferenced frame, clearing
// reference bits as it passes, and returns the freed frame index.
func (m *Manager) evict() int {
	for {
		f := &m.frames[m.hand]
		if f.valid && f.referenced {
			f.referenced = false
			m.hand = (m.hand + 1) % len(m.frames)
			continue
		}
		idx := m.hand
		m.hand = (m.hand + 1) % len(m.frames)
		if f.valid {
			delete(m.index, f.vpn)
			m.stats.Evictions++
			if f.dirty {
				m.stats.PageOuts++
			}
		}
		f.valid = false
		return idx
	}
}

// Resident probes whether the page containing addr is resident without
// touching reference bits or statistics.
func (m *Manager) Resident(addr uint64) bool {
	_, ok := m.index[addr/m.pageBytes]
	return ok
}

// ReleaseAll drops every resident page and forgets the touch history (job
// exit). Dirty pages count as page-outs: AIX must clean them before the
// frames are reusable.
func (m *Manager) ReleaseAll() {
	for vpn, fi := range m.index {
		if m.frames[fi].dirty {
			m.stats.PageOuts++
		}
		m.frames[fi] = frame{}
		delete(m.index, vpn)
	}
	m.seen = nil
	m.free = m.nframes
	m.hand = 0
	m.lastFi = -1
}

// Oversubscription reports the ratio of a hypothetical working set (in
// bytes) to physical memory; values above 1.0 predict steady-state paging.
func (m *Manager) Oversubscription(workingSetBytes uint64) float64 {
	return float64(workingSetBytes) / float64(uint64(m.nframes)*m.pageBytes)
}
