// Package isa models the POWER2 instruction set at the granularity the
// hardware performance monitor observes it: every instruction carries an
// operation class (which decides the execution unit and the counters it
// ticks), the registers it reads and writes (which decide dependency-driven
// FPU0/FPU1 issue), and an effective address for storage references (which
// drives the cache and TLB models).
//
// This is not a functional emulator — no architectural state is computed —
// but it is a faithful *event* model: each simulated instruction produces
// exactly the monitor events a real one would.
package isa

import "fmt"

// Op is an instruction operation class.
type Op uint8

// Operation classes, grouped by the unit that executes them.
const (
	// OpNop is an empty slot; streams should not normally emit it.
	OpNop Op = iota

	// Floating-point unit operations (FPU0/FPU1).
	OpFAdd  // floating add/subtract: 1 flop
	OpFMul  // floating multiply: 1 flop
	OpFDiv  // floating divide: 1 flop, 10-cycle multicycle op
	OpFMA   // compound multiply-add: 2 flops
	OpFSqrt // square root: 1 flop, 15-cycle multicycle op
	OpFMove // register move/negate/round: 0 flops, still an FPU instruction

	// Fixed-point unit operations (FXU0/FXU1).
	OpLoad      // storage reference: load one word/doubleword
	OpStore     // storage reference: store one word/doubleword
	OpLoadQuad  // quad load (lfq): moves 16 bytes, counts as ONE instruction
	OpStoreQuad // quad store (stfq): moves 16 bytes, counts as ONE instruction
	OpIntALU    // integer arithmetic/logical
	OpIntMulDiv // integer multiply/divide for addressing (FXU1 only)

	// Instruction-decode unit operations.
	OpBranch  // branch (conditional or not)
	OpCondReg // condition-register logical

	opCount // sentinel
)

// Unit identifies the execution resource class an Op needs.
type Unit uint8

// Execution unit classes.
const (
	UnitNone Unit = iota
	UnitFPU       // either FPU0 or FPU1
	UnitFXU       // either FXU0 or FXU1
	UnitICU       // executed by the instruction decode unit itself
)

type opInfo struct {
	name      string
	unit      Unit
	flops     uint8 // flop count credited by the monitor
	memBytes  uint8 // bytes moved for storage references
	latency   uint8 // issue-to-result latency in cycles
	isStore   bool
	multicyc  bool // occupies its FPU for many cycles (div, sqrt)
	addrMulDv bool // requires FXU1 (integer mul/div for addressing)
}

var opTable = [opCount]opInfo{
	OpNop:       {name: "nop", unit: UnitNone, latency: 1},
	OpFAdd:      {name: "fadd", unit: UnitFPU, flops: 1, latency: 2},
	OpFMul:      {name: "fmul", unit: UnitFPU, flops: 1, latency: 2},
	OpFDiv:      {name: "fdiv", unit: UnitFPU, flops: 1, latency: 10, multicyc: true},
	OpFMA:       {name: "fma", unit: UnitFPU, flops: 2, latency: 2},
	OpFSqrt:     {name: "fsqrt", unit: UnitFPU, flops: 1, latency: 15, multicyc: true},
	OpFMove:     {name: "fmove", unit: UnitFPU, flops: 0, latency: 1},
	OpLoad:      {name: "load", unit: UnitFXU, memBytes: 8, latency: 1},
	OpStore:     {name: "store", unit: UnitFXU, memBytes: 8, latency: 1, isStore: true},
	OpLoadQuad:  {name: "loadq", unit: UnitFXU, memBytes: 16, latency: 1},
	OpStoreQuad: {name: "storeq", unit: UnitFXU, memBytes: 16, latency: 1, isStore: true},
	OpIntALU:    {name: "intalu", unit: UnitFXU, latency: 1},
	OpIntMulDiv: {name: "intmuldiv", unit: UnitFXU, latency: 5, addrMulDv: true},
	OpBranch:    {name: "branch", unit: UnitICU, latency: 1},
	OpCondReg:   {name: "condreg", unit: UnitICU, latency: 1},
}

// String returns the mnemonic for the operation class.
func (o Op) String() string {
	if o >= opCount {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opTable[o].name
}

// Valid reports whether o is a defined operation class.
func (o Op) Valid() bool { return o > OpNop && o < opCount }

// Unit returns the execution resource class for the operation.
func (o Op) Unit() Unit {
	if o >= opCount {
		return UnitNone
	}
	return opTable[o].unit
}

// Flops returns the floating-point operations the monitor credits for one
// execution (2 for fma, which counts as an add and a multiply).
func (o Op) Flops() int { return int(opTable[o].flops) }

// IsMemory reports whether the operation is a storage reference.
func (o Op) IsMemory() bool {
	if o >= opCount {
		return false
	}
	return opTable[o].memBytes > 0
}

// MemBytes returns the bytes moved by a storage reference (0 otherwise).
func (o Op) MemBytes() int { return int(opTable[o].memBytes) }

// IsStore reports whether the operation writes storage.
func (o Op) IsStore() bool { return opTable[o].isStore }

// IsQuad reports whether the operation is a quad load/store. The HPM counts
// a quad as a single FXU instruction even though it moves two doublewords.
func (o Op) IsQuad() bool { return o == OpLoadQuad || o == OpStoreQuad }

// Latency returns the issue-to-result latency in cycles.
func (o Op) Latency() int { return int(opTable[o].latency) }

// IsMulticycle reports whether the operation monopolises its FPU for many
// cycles (divide, square root). The ICU redirects the floating instruction
// stream to the other FPU while such an operation drains.
func (o Op) IsMulticycle() bool { return opTable[o].multicyc }

// NeedsFXU1 reports whether the operation can only execute on FXU1
// (integer multiply/divide used for addressing).
func (o Op) NeedsFXU1() bool { return opTable[o].addrMulDv }

// NoReg marks an unused register operand.
const NoReg uint8 = 0xFF

// Instr is one dynamic instruction as seen by the monitor-level simulator.
type Instr struct {
	Op   Op
	Dst  uint8 // destination register, or NoReg
	SrcA uint8 // source registers, or NoReg
	SrcB uint8
	SrcC uint8  // third source (fma), or NoReg
	Addr uint64 // effective address for storage references
	PC   uint64 // instruction address (drives the I-cache model)
}

// MakeInstr builds an instruction with all register fields defaulted to
// NoReg; callers set the operands they use.
func MakeInstr(op Op) Instr {
	return Instr{Op: op, Dst: NoReg, SrcA: NoReg, SrcB: NoReg, SrcC: NoReg}
}

// String renders the instruction for debugging.
func (in Instr) String() string {
	if in.Op.IsMemory() {
		return fmt.Sprintf("%s @%#x", in.Op, in.Addr)
	}
	return in.Op.String()
}

// Stream produces a sequence of dynamic instructions. Next fills *in and
// reports whether an instruction was produced; false means end of stream.
type Stream interface {
	Next(in *Instr) bool
}

// SliceStream replays a fixed slice of instructions once.
type SliceStream struct {
	instrs []Instr
	pos    int
}

// NewSliceStream returns a stream over the given instructions.
func NewSliceStream(instrs []Instr) *SliceStream {
	return &SliceStream{instrs: instrs}
}

// Next implements Stream.
func (s *SliceStream) Next(in *Instr) bool {
	if s.pos >= len(s.instrs) {
		return false
	}
	*in = s.instrs[s.pos]
	s.pos++
	return true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Limit wraps a stream, truncating it after n instructions.
type Limit struct {
	Inner Stream
	N     uint64
	seen  uint64
}

// NewLimit returns a stream producing at most n instructions from inner.
func NewLimit(inner Stream, n uint64) *Limit { return &Limit{Inner: inner, N: n} }

// Next implements Stream.
func (l *Limit) Next(in *Instr) bool {
	if l.seen >= l.N {
		return false
	}
	if !l.Inner.Next(in) {
		return false
	}
	l.seen++
	return true
}

// Concat chains streams end to end.
type Concat struct {
	streams []Stream
	idx     int
}

// NewConcat returns a stream producing each input stream in order.
func NewConcat(streams ...Stream) *Concat { return &Concat{streams: streams} }

// Next implements Stream.
func (c *Concat) Next(in *Instr) bool {
	for c.idx < len(c.streams) {
		if c.streams[c.idx].Next(in) {
			return true
		}
		c.idx++
	}
	return false
}

// Func adapts a generator function to the Stream interface.
type Func func(in *Instr) bool

// Next implements Stream.
func (f Func) Next(in *Instr) bool { return f(in) }

// Cycle produces an endless stream that runs each factory's stream to
// exhaustion in rotation, recreating it on every revisit. It models a
// solver iterating over distinct code phases (different text pages — the
// source of I-cache refill traffic) whose data sweeps restart each pass.
type Cycle struct {
	factories []func() Stream
	idx       int
	cur       Stream
}

// NewCycle builds the rotation; it panics without factories.
func NewCycle(factories ...func() Stream) *Cycle {
	if len(factories) == 0 {
		panic("isa: NewCycle with no factories")
	}
	return &Cycle{factories: factories}
}

// Next implements Stream. A factory returning an empty stream is skipped;
// if every factory yields empty streams the cycle ends (avoids spinning).
func (c *Cycle) Next(in *Instr) bool {
	for tries := 0; tries <= len(c.factories); tries++ {
		if c.cur == nil {
			c.cur = c.factories[c.idx%len(c.factories)]()
			c.idx++
		}
		if c.cur.Next(in) {
			return true
		}
		c.cur = nil
	}
	return false
}

// Count drains the stream and returns the number of instructions produced.
// It is a test helper; production code runs streams through the CPU model.
func Count(s Stream) uint64 {
	var in Instr
	var n uint64
	for s.Next(&in) {
		n++
	}
	return n
}
