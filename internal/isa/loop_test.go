package isa

import (
	"testing"
	"testing/quick"
)

func TestLoopIterationAndCount(t *testing.T) {
	body := []Instr{MakeInstr(OpFAdd), MakeInstr(OpBranch)}
	l := NewLoop(body, nil, 5, 0x100)
	if l.BodyLen() != 2 || l.Iterations() != 5 || l.TotalInstrs() != 10 {
		t.Fatalf("geometry: body=%d iters=%d total=%d", l.BodyLen(), l.Iterations(), l.TotalInstrs())
	}
	if got := Count(l); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
}

func TestLoopPCsAreSequentialAndStable(t *testing.T) {
	body := []Instr{MakeInstr(OpFAdd), MakeInstr(OpFMul), MakeInstr(OpBranch)}
	l := NewLoop(body, nil, 2, 0x1000)
	var pcs []uint64
	var in Instr
	for l.Next(&in) {
		pcs = append(pcs, in.PC)
	}
	want := []uint64{0x1000, 0x1004, 0x1008, 0x1000, 0x1004, 0x1008}
	for i := range want {
		if pcs[i] != want[i] {
			t.Fatalf("pcs = %#x, want %#x", pcs, want)
		}
	}
}

func TestLoopStridedAddresses(t *testing.T) {
	body := []Instr{MakeInstr(OpLoad)}
	refs := []Ref{{Base: 0x2000, Stride: 8}}
	l := NewLoop(body, refs, 4, 0)
	var addrs []uint64
	var in Instr
	for l.Next(&in) {
		addrs = append(addrs, in.Addr)
	}
	want := []uint64{0x2000, 0x2008, 0x2010, 0x2018}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("addrs = %#x, want %#x", addrs, want)
		}
	}
}

func TestLoopWorkingSetWraps(t *testing.T) {
	body := []Instr{MakeInstr(OpLoad)}
	refs := []Ref{{Base: 0x4000, Stride: 8, WorkingSet: 16}}
	l := NewLoop(body, refs, 4, 0)
	var addrs []uint64
	var in Instr
	for l.Next(&in) {
		addrs = append(addrs, in.Addr)
	}
	want := []uint64{0x4000, 0x4008, 0x4000, 0x4008}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("addrs = %#x, want %#x", addrs, want)
		}
	}
}

func TestLoopNegativeStrideWithWorkingSet(t *testing.T) {
	body := []Instr{MakeInstr(OpLoad)}
	refs := []Ref{{Base: 0x4000, Stride: -8, WorkingSet: 32}}
	l := NewLoop(body, refs, 5, 0)
	var in Instr
	for l.Next(&in) {
		if in.Addr < 0x4000-32 || in.Addr > 0x4000+32 {
			t.Fatalf("negative-stride address escaped working set: %#x", in.Addr)
		}
	}
}

func TestLoopAddrFnOverrides(t *testing.T) {
	body := []Instr{MakeInstr(OpLoad)}
	refs := []Ref{{Base: 0x1, Stride: 1, AddrFn: func(iter uint64) uint64 { return 0x9000 + iter*4096 }}}
	l := NewLoop(body, refs, 3, 0)
	var in Instr
	for i := uint64(0); l.Next(&in); i++ {
		if in.Addr != 0x9000+i*4096 {
			t.Fatalf("AddrFn ignored: %#x at iter %d", in.Addr, i)
		}
	}
}

func TestLoopNonMemorySlotsKeepTemplateAddr(t *testing.T) {
	add := MakeInstr(OpFAdd)
	add.Addr = 0xdead
	body := []Instr{add}
	refs := []Ref{{Base: 0x1000, Stride: 8}}
	l := NewLoop(body, refs, 1, 0)
	var in Instr
	l.Next(&in)
	if in.Addr != 0xdead {
		t.Fatalf("non-memory instruction address rewritten: %#x", in.Addr)
	}
}

func TestNewLoopValidation(t *testing.T) {
	t.Run("mismatched refs", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		NewLoop([]Instr{MakeInstr(OpFAdd)}, []Ref{{}, {}}, 1, 0)
	})
	t.Run("empty body", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		NewLoop(nil, nil, 1, 0)
	})
}

func TestNewLoopCopiesInputs(t *testing.T) {
	body := []Instr{MakeInstr(OpLoad)}
	refs := []Ref{{Base: 0x1000}}
	l := NewLoop(body, refs, 2, 0)
	body[0].Op = OpStore
	refs[0].Base = 0x9999
	var in Instr
	l.Next(&in)
	if in.Op != OpLoad || in.Addr != 0x1000 {
		t.Fatalf("loop aliases caller slices: %v @%#x", in.Op, in.Addr)
	}
}

func TestBuilderEmitsExpectedBody(t *testing.T) {
	b := NewBuilder()
	f0, f1, acc := b.FPR(), b.FPR(), b.FPR()
	g0 := b.GPR()
	b.Load(f0, Ref{Base: 0x1000, Stride: 8})
	b.LoadQuad(f1, Ref{Base: 0x2000, Stride: 16})
	b.FMA(acc, f0, f1, acc)
	b.FAdd(acc, acc, f0)
	b.FMul(acc, acc, f1)
	b.FDiv(acc, acc, f0)
	b.FSqrt(acc, acc)
	b.IntALU(g0, g0)
	b.IntMulDiv(g0, g0)
	b.Store(acc, Ref{Base: 0x3000, Stride: 8})
	b.StoreQuad(acc, Ref{Base: 0x4000, Stride: 16})
	b.CondReg()
	b.Branch()
	if b.Len() != 13 {
		t.Fatalf("Len = %d", b.Len())
	}
	l := b.Build(2, 0)
	var ops []Op
	var in Instr
	for l.Next(&in) {
		ops = append(ops, in.Op)
	}
	if len(ops) != 26 {
		t.Fatalf("total = %d", len(ops))
	}
	wantFirst := []Op{OpLoad, OpLoadQuad, OpFMA, OpFAdd, OpFMul, OpFDiv, OpFSqrt, OpIntALU, OpIntMulDiv, OpStore, OpStoreQuad, OpCondReg, OpBranch}
	for i, w := range wantFirst {
		if ops[i] != w {
			t.Fatalf("ops[%d] = %v, want %v", i, ops[i], w)
		}
	}
}

func TestBuilderRegisterAllocationWraps(t *testing.T) {
	b := NewBuilder()
	seen := map[uint8]bool{}
	for i := 0; i < 64; i++ {
		r := b.FPR()
		if r >= 32 {
			t.Fatalf("FPR out of file: %d", r)
		}
		seen[r] = true
	}
	if len(seen) != 32 {
		t.Fatalf("FPR allocator covered %d registers, want 32", len(seen))
	}
}

func TestBuilderReusableAfterBuild(t *testing.T) {
	b := NewBuilder()
	b.FAdd(0, 1, 2)
	l1 := b.Build(1, 0)
	b.FMul(3, 4, 5)
	l2 := b.Build(1, 0)
	if Count(l1) != 1 {
		t.Fatal("first loop changed by later emits")
	}
	if Count(l2) != 2 {
		t.Fatal("second loop missing later emits")
	}
}

func TestRefAddrProperty(t *testing.T) {
	// With a working set, addresses always stay within [Base, Base+WS).
	f := func(base uint32, stride int8, wsPow uint8, iter uint16) bool {
		ws := uint64(1) << (4 + wsPow%10)
		r := Ref{Base: uint64(base), Stride: int64(stride), WorkingSet: ws}
		a := r.addr(uint64(iter))
		lo := int64(base) - int64(ws)
		hi := int64(base) + int64(ws)
		return int64(a) >= lo && int64(a) < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	b := NewBuilder()
	b.Load(0, Ref{Base: 0x1000, Stride: 8})
	b.FMA(1, 0, 2, 1)
	b.Store(1, Ref{Base: 0x2000, Stride: 8})
	b.Branch()
	m := Describe(b.Build(10, 0x100), 40)
	if m.Instructions != 40 {
		t.Fatalf("instructions = %d", m.Instructions)
	}
	if m.ByOp[OpFMA] != 10 || m.ByOp[OpLoad] != 10 || m.ByOp[OpBranch] != 10 {
		t.Fatalf("histogram = %v", m.ByOp)
	}
	if m.Flops != 20 {
		t.Fatalf("flops = %d", m.Flops)
	}
	if m.MemRefs != 20 || m.MemBytes != 160 {
		t.Fatalf("mem = %d refs %d bytes", m.MemRefs, m.MemBytes)
	}
	if m.FlopsPerMemRef() != 1.0 {
		t.Fatalf("flops/memref = %v", m.FlopsPerMemRef())
	}
	if m.DistinctPCs != 4 || m.CodeBytes != 16 {
		t.Fatalf("code = %d PCs %d bytes", m.DistinctPCs, m.CodeBytes)
	}
	// Address window covers both arrays.
	if m.MinAddr != 0x1000 || m.MaxAddr != 0x2000+9*8 {
		t.Fatalf("addr window = %#x..%#x", m.MinAddr, m.MaxAddr)
	}
	// Unit shares sum to 1 for streams without nops.
	sum := m.UnitShare(UnitFPU) + m.UnitShare(UnitFXU) + m.UnitShare(UnitICU)
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("unit shares sum = %v", sum)
	}
	if m.String() == "" {
		t.Fatal("empty report")
	}
}

func TestDescribeEmptyStream(t *testing.T) {
	m := Describe(NewSliceStream(nil), 100)
	if m.Instructions != 0 || m.FlopsPerMemRef() != 0 || m.UnitShare(UnitFPU) != 0 {
		t.Fatal("empty stream mix not zero")
	}
	if m.CodeBytes != 0 {
		t.Fatalf("code bytes = %d", m.CodeBytes)
	}
}

func TestCycleRotatesFactories(t *testing.T) {
	mk := func(op Op) func() Stream {
		return func() Stream {
			return NewSliceStream([]Instr{MakeInstr(op), MakeInstr(op)})
		}
	}
	c := NewCycle(mk(OpFAdd), mk(OpFMul))
	var ops []Op
	var in Instr
	for i := 0; i < 8; i++ {
		if !c.Next(&in) {
			t.Fatal("cycle ended")
		}
		ops = append(ops, in.Op)
	}
	want := []Op{OpFAdd, OpFAdd, OpFMul, OpFMul, OpFAdd, OpFAdd, OpFMul, OpFMul}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v", ops)
		}
	}
}

func TestCycleAllEmptyEnds(t *testing.T) {
	empty := func() Stream { return NewSliceStream(nil) }
	c := NewCycle(empty, empty)
	var in Instr
	if c.Next(&in) {
		t.Fatal("cycle of empties produced an instruction")
	}
}

func TestCyclePanicsWithoutFactories(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCycle()
}
