package isa

import "testing"

func TestOpMetadata(t *testing.T) {
	cases := []struct {
		op       Op
		unit     Unit
		flops    int
		mem      bool
		store    bool
		quad     bool
		multicyc bool
	}{
		{OpFAdd, UnitFPU, 1, false, false, false, false},
		{OpFMul, UnitFPU, 1, false, false, false, false},
		{OpFDiv, UnitFPU, 1, false, false, false, true},
		{OpFMA, UnitFPU, 2, false, false, false, false},
		{OpFSqrt, UnitFPU, 1, false, false, false, true},
		{OpFMove, UnitFPU, 0, false, false, false, false},
		{OpLoad, UnitFXU, 0, true, false, false, false},
		{OpStore, UnitFXU, 0, true, true, false, false},
		{OpLoadQuad, UnitFXU, 0, true, false, true, false},
		{OpStoreQuad, UnitFXU, 0, true, true, true, false},
		{OpIntALU, UnitFXU, 0, false, false, false, false},
		{OpIntMulDiv, UnitFXU, 0, false, false, false, false},
		{OpBranch, UnitICU, 0, false, false, false, false},
		{OpCondReg, UnitICU, 0, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.Unit() != c.unit {
			t.Errorf("%v.Unit() = %v, want %v", c.op, c.op.Unit(), c.unit)
		}
		if c.op.Flops() != c.flops {
			t.Errorf("%v.Flops() = %d, want %d", c.op, c.op.Flops(), c.flops)
		}
		if c.op.IsMemory() != c.mem {
			t.Errorf("%v.IsMemory() = %v", c.op, c.op.IsMemory())
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%v.IsStore() = %v", c.op, c.op.IsStore())
		}
		if c.op.IsQuad() != c.quad {
			t.Errorf("%v.IsQuad() = %v", c.op, c.op.IsQuad())
		}
		if c.op.IsMulticycle() != c.multicyc {
			t.Errorf("%v.IsMulticycle() = %v", c.op, c.op.IsMulticycle())
		}
		if !c.op.Valid() {
			t.Errorf("%v.Valid() = false", c.op)
		}
	}
}

func TestOpLatencies(t *testing.T) {
	// Paper: 10-cycle divide and 15-cycle square root.
	if OpFDiv.Latency() != 10 {
		t.Fatalf("fdiv latency = %d, want 10", OpFDiv.Latency())
	}
	if OpFSqrt.Latency() != 15 {
		t.Fatalf("fsqrt latency = %d, want 15", OpFSqrt.Latency())
	}
}

func TestQuadMovesSixteenBytes(t *testing.T) {
	if OpLoadQuad.MemBytes() != 16 || OpStoreQuad.MemBytes() != 16 {
		t.Fatal("quad ops must move 16 bytes")
	}
	if OpLoad.MemBytes() != 8 || OpStore.MemBytes() != 8 {
		t.Fatal("scalar memory ops must move 8 bytes")
	}
}

func TestOnlyIntMulDivNeedsFXU1(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		want := op == OpIntMulDiv
		if op.NeedsFXU1() != want {
			t.Errorf("%v.NeedsFXU1() = %v, want %v", op, op.NeedsFXU1(), want)
		}
	}
}

func TestInvalidOp(t *testing.T) {
	bad := Op(200)
	if bad.Valid() {
		t.Fatal("Op(200).Valid() = true")
	}
	if bad.Unit() != UnitNone {
		t.Fatal("invalid op has a unit")
	}
	if bad.IsMemory() {
		t.Fatal("invalid op is memory")
	}
	if bad.String() == "" {
		t.Fatal("invalid op has empty string")
	}
	if OpNop.Valid() {
		t.Fatal("nop reported valid")
	}
}

func TestMakeInstrDefaults(t *testing.T) {
	in := MakeInstr(OpFMA)
	if in.Dst != NoReg || in.SrcA != NoReg || in.SrcB != NoReg || in.SrcC != NoReg {
		t.Fatalf("MakeInstr registers not NoReg: %+v", in)
	}
	if in.Op != OpFMA {
		t.Fatalf("Op = %v", in.Op)
	}
}

func TestInstrString(t *testing.T) {
	in := MakeInstr(OpLoad)
	in.Addr = 0x1000
	if got := in.String(); got != "load @0x1000" {
		t.Fatalf("String = %q", got)
	}
	if got := MakeInstr(OpFMA).String(); got != "fma" {
		t.Fatalf("String = %q", got)
	}
}

func TestSliceStream(t *testing.T) {
	instrs := []Instr{MakeInstr(OpFAdd), MakeInstr(OpFMul)}
	s := NewSliceStream(instrs)
	var in Instr
	if !s.Next(&in) || in.Op != OpFAdd {
		t.Fatal("first Next wrong")
	}
	if !s.Next(&in) || in.Op != OpFMul {
		t.Fatal("second Next wrong")
	}
	if s.Next(&in) {
		t.Fatal("stream did not end")
	}
	s.Reset()
	if Count(s) != 2 {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	body := []Instr{MakeInstr(OpFAdd)}
	l := NewLimit(NewLoop(body, nil, 1000, 0), 7)
	if got := Count(l); got != 7 {
		t.Fatalf("Limit produced %d, want 7", got)
	}
}

func TestLimitShorterInner(t *testing.T) {
	s := NewSliceStream([]Instr{MakeInstr(OpFAdd)})
	l := NewLimit(s, 100)
	if got := Count(l); got != 1 {
		t.Fatalf("Limit over short stream produced %d, want 1", got)
	}
}

func TestConcat(t *testing.T) {
	a := NewSliceStream([]Instr{MakeInstr(OpFAdd)})
	b := NewSliceStream([]Instr{MakeInstr(OpFMul), MakeInstr(OpFMA)})
	c := NewConcat(a, b)
	var ops []Op
	var in Instr
	for c.Next(&in) {
		ops = append(ops, in.Op)
	}
	want := []Op{OpFAdd, OpFMul, OpFMA}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v", ops)
		}
	}
}

func TestConcatEmpty(t *testing.T) {
	var in Instr
	if NewConcat().Next(&in) {
		t.Fatal("empty Concat produced an instruction")
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	f := Func(func(in *Instr) bool {
		if n >= 3 {
			return false
		}
		*in = MakeInstr(OpBranch)
		n++
		return true
	})
	if Count(f) != 3 {
		t.Fatal("Func stream miscounted")
	}
}
