package isa

import "fmt"

// Ref describes how one body slot of a Loop generates effective addresses
// across iterations. The default (zero) Ref leaves the template address
// untouched, which is what non-memory instructions use.
type Ref struct {
	// Base is the first iteration's effective address.
	Base uint64
	// Stride is added to the address each iteration.
	Stride int64
	// WorkingSet, when non-zero, wraps the offset (iteration*Stride) modulo
	// this many bytes, modelling a kernel that sweeps a bounded array
	// repeatedly (e.g. a cache-blocked matrix multiply).
	WorkingSet uint64
	// AddrFn, when non-nil, overrides Base/Stride/WorkingSet entirely; it
	// receives the iteration number. Used for random/gather patterns.
	AddrFn func(iter uint64) uint64
}

// addr computes the effective address for the given iteration.
func (r *Ref) addr(iter uint64) uint64 {
	if r.AddrFn != nil {
		return r.AddrFn(iter)
	}
	off := int64(iter) * r.Stride
	if r.WorkingSet != 0 {
		m := int64(r.WorkingSet)
		off %= m
		if off < 0 {
			off += m
		}
	}
	return uint64(int64(r.Base) + off)
}

// Loop is an instruction stream that executes a fixed body for a number of
// iterations. Instruction addresses (PCs) are assigned sequentially within
// the body so the I-cache model sees a tight floating-point loop: misses on
// the first trip, hits thereafter — exactly the behaviour behind the
// paper's 0.4% I-cache miss observation.
type Loop struct {
	body  []Instr
	refs  []Ref
	iters uint64

	iter uint64
	pos  int
}

// InstrBytes is the encoded size of one instruction (4 bytes on POWER).
const InstrBytes = 4

// NewLoop builds a loop from a body template, per-slot address generators,
// and an iteration count. refs must either be nil (no memory references) or
// the same length as body. basePC positions the body in the text segment.
func NewLoop(body []Instr, refs []Ref, iters uint64, basePC uint64) *Loop {
	if refs != nil && len(refs) != len(body) {
		panic(fmt.Sprintf("isa: NewLoop refs length %d != body length %d", len(refs), len(body)))
	}
	if len(body) == 0 {
		panic("isa: NewLoop with empty body")
	}
	b := make([]Instr, len(body))
	copy(b, body)
	for i := range b {
		b[i].PC = basePC + uint64(i)*InstrBytes
	}
	var r []Ref
	if refs != nil {
		r = make([]Ref, len(refs))
		copy(r, refs)
	}
	return &Loop{body: b, refs: r, iters: iters}
}

// Next implements Stream.
func (l *Loop) Next(in *Instr) bool {
	if l.iter >= l.iters {
		return false
	}
	*in = l.body[l.pos]
	if l.refs != nil && in.Op.IsMemory() {
		*(&in.Addr) = l.refs[l.pos].addr(l.iter)
	}
	l.pos++
	if l.pos == len(l.body) {
		l.pos = 0
		l.iter++
	}
	return true
}

// BodyLen reports the number of instructions in the body.
func (l *Loop) BodyLen() int { return len(l.body) }

// Iterations reports the configured iteration count.
func (l *Loop) Iterations() uint64 { return l.iters }

// TotalInstrs reports body length times iterations.
func (l *Loop) TotalInstrs() uint64 { return uint64(len(l.body)) * l.iters }

// Builder assembles a loop body with a small register allocator, keeping
// kernel construction readable. Floating registers and fixed registers are
// drawn from separate POWER2 files (32 FPRs, 32 GPRs).
type Builder struct {
	body    []Instr
	refs    []Ref
	nextFPR uint8
	nextGPR uint8
}

// NewBuilder returns an empty loop-body builder.
func NewBuilder() *Builder { return &Builder{} }

// FPR allocates the next floating-point register, wrapping at 32.
func (b *Builder) FPR() uint8 {
	r := b.nextFPR % 32
	b.nextFPR++
	return r
}

// GPR allocates the next general-purpose register, wrapping at 32.
func (b *Builder) GPR() uint8 {
	r := b.nextGPR % 32
	b.nextGPR++
	return r
}

// emit appends an instruction with its address generator.
func (b *Builder) emit(in Instr, ref Ref) {
	b.body = append(b.body, in)
	b.refs = append(b.refs, ref)
}

// Load emits a doubleword load into dst with the given address pattern.
func (b *Builder) Load(dst uint8, ref Ref) {
	in := MakeInstr(OpLoad)
	in.Dst = dst
	b.emit(in, ref)
}

// LoadQuad emits a quad load (two doublewords, one instruction) into
// dst/dst+1 with the given address pattern.
func (b *Builder) LoadQuad(dst uint8, ref Ref) {
	in := MakeInstr(OpLoadQuad)
	in.Dst = dst
	b.emit(in, ref)
}

// Store emits a doubleword store of src with the given address pattern.
func (b *Builder) Store(src uint8, ref Ref) {
	in := MakeInstr(OpStore)
	in.SrcA = src
	b.emit(in, ref)
}

// StoreQuad emits a quad store of src with the given address pattern.
func (b *Builder) StoreQuad(src uint8, ref Ref) {
	in := MakeInstr(OpStoreQuad)
	in.SrcA = src
	b.emit(in, ref)
}

// FAdd emits dst = a + b.
func (b *Builder) FAdd(dst, a, bb uint8) {
	in := MakeInstr(OpFAdd)
	in.Dst, in.SrcA, in.SrcB = dst, a, bb
	b.emit(in, Ref{})
}

// FMul emits dst = a * b.
func (b *Builder) FMul(dst, a, bb uint8) {
	in := MakeInstr(OpFMul)
	in.Dst, in.SrcA, in.SrcB = dst, a, bb
	b.emit(in, Ref{})
}

// FMA emits dst = a*b + c (dst may equal c for accumulation).
func (b *Builder) FMA(dst, a, bb, c uint8) {
	in := MakeInstr(OpFMA)
	in.Dst, in.SrcA, in.SrcB, in.SrcC = dst, a, bb, c
	b.emit(in, Ref{})
}

// FMove emits a floating register move/negate/round (an FPU instruction
// that produces no flops).
func (b *Builder) FMove(dst, a uint8) {
	in := MakeInstr(OpFMove)
	in.Dst, in.SrcA = dst, a
	b.emit(in, Ref{})
}

// FDiv emits dst = a / b (10-cycle multicycle operation).
func (b *Builder) FDiv(dst, a, bb uint8) {
	in := MakeInstr(OpFDiv)
	in.Dst, in.SrcA, in.SrcB = dst, a, bb
	b.emit(in, Ref{})
}

// FSqrt emits dst = sqrt(a) (15-cycle multicycle operation).
func (b *Builder) FSqrt(dst, a uint8) {
	in := MakeInstr(OpFSqrt)
	in.Dst, in.SrcA = dst, a
	b.emit(in, Ref{})
}

// IntALU emits a fixed-point arithmetic/logical instruction.
func (b *Builder) IntALU(dst, a uint8) {
	in := MakeInstr(OpIntALU)
	in.Dst, in.SrcA = dst, a
	b.emit(in, Ref{})
}

// IntMulDiv emits an addressing multiply/divide (FXU1 only).
func (b *Builder) IntMulDiv(dst, a uint8) {
	in := MakeInstr(OpIntMulDiv)
	in.Dst, in.SrcA = dst, a
	b.emit(in, Ref{})
}

// Branch emits the loop-closing (or any) branch.
func (b *Builder) Branch() { b.emit(MakeInstr(OpBranch), Ref{}) }

// CondReg emits a condition-register logical instruction.
func (b *Builder) CondReg() { b.emit(MakeInstr(OpCondReg), Ref{}) }

// Len reports the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.body) }

// Build produces the Loop. The builder can keep being used afterwards; the
// loop owns copies.
func (b *Builder) Build(iters uint64, basePC uint64) *Loop {
	return NewLoop(b.body, b.refs, iters, basePC)
}
