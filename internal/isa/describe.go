package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Mix summarises the static/dynamic character of an instruction stream
// prefix: the op histogram, unit shares, flop accounting, and the memory
// footprint — the quantities one checks when tuning a kernel against a
// workload's counter signature.
type Mix struct {
	Instructions uint64
	ByOp         map[Op]uint64
	Flops        uint64
	MemRefs      uint64
	MemBytes     uint64
	DistinctPCs  int
	CodeBytes    uint64 // span of distinct PCs (footprint proxy)
	MinAddr      uint64
	MaxAddr      uint64
}

// UnitShare reports the fraction of instructions bound for the unit.
func (m Mix) UnitShare(u Unit) float64 {
	if m.Instructions == 0 {
		return 0
	}
	var n uint64
	for op, c := range m.ByOp {
		if op.Unit() == u {
			n += c
		}
	}
	return float64(n) / float64(m.Instructions)
}

// FlopsPerMemRef reports the register-reuse measure of the stream itself.
func (m Mix) FlopsPerMemRef() float64 {
	if m.MemRefs == 0 {
		return 0
	}
	return float64(m.Flops) / float64(m.MemRefs)
}

// Describe consumes up to n instructions from the stream and summarises
// them. The stream is advanced; describe a fresh stream instance.
func Describe(s Stream, n uint64) Mix {
	m := Mix{ByOp: make(map[Op]uint64)}
	pcs := make(map[uint64]struct{})
	var in Instr
	first := true
	for m.Instructions < n && s.Next(&in) {
		m.Instructions++
		m.ByOp[in.Op]++
		m.Flops += uint64(in.Op.Flops())
		pcs[in.PC] = struct{}{}
		if in.Op.IsMemory() {
			m.MemRefs++
			m.MemBytes += uint64(in.Op.MemBytes())
			if first || in.Addr < m.MinAddr {
				m.MinAddr = in.Addr
			}
			if first || in.Addr > m.MaxAddr {
				m.MaxAddr = in.Addr
			}
			first = false
		}
	}
	m.DistinctPCs = len(pcs)
	var lo, hi uint64
	started := false
	for pc := range pcs {
		if !started || pc < lo {
			lo = pc
		}
		if !started || pc > hi {
			hi = pc
		}
		started = true
	}
	if started {
		m.CodeBytes = hi - lo + InstrBytes
	}
	return m
}

// String renders the mix as a compact report.
func (m Mix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions %d  flops %d  memrefs %d (%d bytes)  flops/memref %.2f\n",
		m.Instructions, m.Flops, m.MemRefs, m.MemBytes, m.FlopsPerMemRef())
	fmt.Fprintf(&b, "unit shares: FPU %.1f%%  FXU %.1f%%  ICU %.1f%%\n",
		100*m.UnitShare(UnitFPU), 100*m.UnitShare(UnitFXU), 100*m.UnitShare(UnitICU))
	fmt.Fprintf(&b, "code: %d distinct PCs spanning %d bytes\n", m.DistinctPCs, m.CodeBytes)
	type kv struct {
		op Op
		n  uint64
	}
	var ops []kv
	for op, n := range m.ByOp {
		ops = append(ops, kv{op, n})
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].n != ops[j].n {
			return ops[i].n > ops[j].n
		}
		return ops[i].op < ops[j].op
	})
	b.WriteString("op histogram:")
	for _, o := range ops {
		fmt.Fprintf(&b, " %s=%d", o.op, o.n)
	}
	b.WriteByte('\n')
	return b.String()
}
