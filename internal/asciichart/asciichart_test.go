package asciichart

import (
	"math"
	"strings"
	"testing"
)

func TestNewCanvasValidation(t *testing.T) {
	cases := []struct {
		w, h           int
		x0, x1, y0, y1 float64
	}{
		{1, 10, 0, 1, 0, 1},
		{10, 1, 0, 1, 0, 1},
		{10, 10, 1, 1, 0, 1},
		{10, 10, 0, 1, 2, 2},
		{10, 10, 2, 1, 0, 1},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			NewCanvas(c.w, c.h, c.x0, c.x1, c.y0, c.y1)
		}()
	}
}

func TestPlotCorners(t *testing.T) {
	c := NewCanvas(10, 5, 0, 9, 0, 4)
	c.Plot(0, 0, 'A') // bottom-left
	c.Plot(9, 4, 'B') // top-right
	if c.cells[4][0] != 'A' {
		t.Fatalf("bottom-left = %q", c.cells[4][0])
	}
	if c.cells[0][9] != 'B' {
		t.Fatalf("top-right = %q", c.cells[0][9])
	}
}

func TestPlotClipsOutside(t *testing.T) {
	c := NewCanvas(10, 5, 0, 9, 0, 4)
	c.Plot(-1, 0, 'X')
	c.Plot(0, 99, 'X')
	c.Plot(math.NaN(), 1, 'X')
	for _, row := range c.cells {
		for _, ch := range row {
			if ch == 'X' {
				t.Fatal("out-of-window point plotted")
			}
		}
	}
}

func TestLineMismatchPanics(t *testing.T) {
	c := NewCanvas(10, 5, 0, 9, 0, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Line([]float64{1, 2}, []float64{1}, '*')
}

func TestVBarFillsColumn(t *testing.T) {
	c := NewCanvas(10, 5, 0, 9, 0, 4)
	c.VBar(3, 4, '#')
	col := 3 * (10 - 1) / 9
	for row := 0; row < 5; row++ {
		if c.cells[row][col] != '#' {
			t.Fatalf("bar gap at row %d", row)
		}
	}
}

func TestVBarClipsTall(t *testing.T) {
	c := NewCanvas(10, 5, 0, 9, 0, 4)
	c.VBar(3, 100, '#') // taller than window: clipped to full height
	col := 3 * (10 - 1) / 9
	if c.cells[0][col] != '#' {
		t.Fatal("tall bar not clipped to top")
	}
	c.VBar(-5, 2, '#') // out of x range: ignored, must not panic
}

func TestCanvasStringHasFrame(t *testing.T) {
	c := NewCanvas(20, 8, 0, 10, 0, 5)
	s := c.String()
	if !strings.Contains(s, "+") || !strings.Contains(s, "|") {
		t.Fatal("frame missing")
	}
	if len(strings.Split(strings.TrimRight(s, "\n"), "\n")) != 8+2 {
		t.Fatalf("unexpected line count in:\n%s", s)
	}
}

func TestLineChart(t *testing.T) {
	s := LineChart("Figure 1", 40, 10,
		Series{Glyph: '*', Label: "daily", Values: []float64{1, 2, 3, 2, 1}},
		Series{Glyph: 'o', Label: "avg", Values: []float64{1.5, 2, 2, 2, 1.5}},
	)
	if !strings.Contains(s, "Figure 1") || !strings.Contains(s, "* = daily") {
		t.Fatalf("chart header missing:\n%s", s)
	}
	if !strings.ContainsRune(s, '*') || !strings.ContainsRune(s, 'o') {
		t.Fatal("series glyphs missing")
	}
}

func TestLineChartEmpty(t *testing.T) {
	s := LineChart("empty", 40, 10)
	if !strings.Contains(s, "(no data)") {
		t.Fatalf("empty chart = %q", s)
	}
	s = LineChart("one", 40, 10, Series{Glyph: '*', Values: []float64{5}})
	if !strings.Contains(s, "(no data)") {
		t.Fatal("single-point chart should degrade gracefully")
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	s := LineChart("flat", 40, 10, Series{Glyph: '*', Label: "c", Values: []float64{2, 2, 2}})
	if !strings.ContainsRune(s, '*') {
		t.Fatal("constant series not plotted")
	}
}

func TestBarChart(t *testing.T) {
	s := BarChart("Figure 2", []string{"8", "16", "32"}, []float64{10, 40, 20}, 20)
	lines := strings.Split(s, "\n")
	count := func(line string) int { return strings.Count(line, "#") }
	if count(lines[2]) != 20 {
		t.Fatalf("peak bar = %d hashes, want full width:\n%s", count(lines[2]), s)
	}
	if count(lines[1]) >= count(lines[3]) || count(lines[3]) >= count(lines[2]) {
		t.Fatalf("bar ordering wrong:\n%s", s)
	}
}

func TestBarChartZeros(t *testing.T) {
	s := BarChart("z", []string{"a"}, []float64{0}, 10)
	if !strings.Contains(s, "a") {
		t.Fatal("label missing")
	}
}

func TestBarChartMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BarChart("x", []string{"a"}, []float64{1, 2}, 10)
}

func TestScatter(t *testing.T) {
	s := Scatter("Figure 5", 40, 10, []float64{0, 1, 2, 3}, []float64{20, 10, 5, 2}, 'x')
	if !strings.Contains(s, "Figure 5") || !strings.ContainsRune(s, 'x') {
		t.Fatalf("scatter broken:\n%s", s)
	}
}

func TestScatterEmptyAndDegenerate(t *testing.T) {
	if s := Scatter("e", 40, 10, nil, nil, 'x'); !strings.Contains(s, "(no data)") {
		t.Fatal("empty scatter")
	}
	// Single point: degenerate ranges must not panic.
	s := Scatter("p", 40, 10, []float64{1}, []float64{1}, 'x')
	if !strings.ContainsRune(s, 'x') {
		t.Fatal("single point missing")
	}
}

func TestScatterMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Scatter("x", 10, 5, []float64{1}, nil, 'x')
}
