// Package asciichart renders the paper's figures as terminal plots: line
// charts with multiple series (Figure 1, 4), bar charts (Figure 2), and
// scatter plots (Figures 3, 5). Pure text, no dependencies — the harness
// prints the same series the paper plots and the shapes are judged by eye
// and by the accompanying numeric summaries.
package asciichart

import (
	"fmt"
	"math"
	"strings"
)

// Canvas is a character grid with an x/y data window mapped onto it.
type Canvas struct {
	w, h   int
	cells  [][]rune
	x0, x1 float64
	y0, y1 float64
}

// NewCanvas builds a w x h plotting area covering [x0,x1] x [y0,y1]. It
// panics on degenerate geometry.
func NewCanvas(w, h int, x0, x1, y0, y1 float64) *Canvas {
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("asciichart: canvas %dx%d too small", w, h))
	}
	if !(x1 > x0) || !(y1 > y0) {
		panic(fmt.Sprintf("asciichart: degenerate window [%v,%v]x[%v,%v]", x0, x1, y0, y1))
	}
	cells := make([][]rune, h)
	for i := range cells {
		cells[i] = make([]rune, w)
		for j := range cells[i] {
			cells[i][j] = ' '
		}
	}
	return &Canvas{w: w, h: h, cells: cells, x0: x0, x1: x1, y0: y0, y1: y1}
}

// pixel maps data coordinates to grid indices; ok is false outside the
// window.
func (c *Canvas) pixel(x, y float64) (col, row int, ok bool) {
	if math.IsNaN(x) || math.IsNaN(y) {
		return 0, 0, false
	}
	fx := (x - c.x0) / (c.x1 - c.x0)
	fy := (y - c.y0) / (c.y1 - c.y0)
	if fx < 0 || fx > 1 || fy < 0 || fy > 1 {
		return 0, 0, false
	}
	col = int(fx * float64(c.w-1))
	row = c.h - 1 - int(fy*float64(c.h-1))
	return col, row, true
}

// Plot marks the data point with the given glyph (clipped to the window).
func (c *Canvas) Plot(x, y float64, glyph rune) {
	if col, row, ok := c.pixel(x, y); ok {
		c.cells[row][col] = glyph
	}
}

// Line plots a series of y values at the given x positions.
func (c *Canvas) Line(xs, ys []float64, glyph rune) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("asciichart: Line length mismatch %d vs %d", len(xs), len(ys)))
	}
	for i := range xs {
		c.Plot(xs[i], ys[i], glyph)
	}
}

// VBar draws a vertical bar from the x axis (or the window bottom) up to y.
func (c *Canvas) VBar(x, y float64, glyph rune) {
	col, top, ok := c.pixel(x, y)
	if !ok {
		// Clip the height to the top of the window but keep the bar.
		if x < c.x0 || x > c.x1 || y < c.y0 {
			return
		}
		col, top, _ = c.pixel(x, c.y1)
	}
	base := c.h - 1
	for row := top; row <= base; row++ {
		c.cells[row][col] = glyph
	}
}

// String renders the canvas with a y-axis scale and frame.
func (c *Canvas) String() string {
	var b strings.Builder
	for row := 0; row < c.h; row++ {
		// y label every few rows.
		frac := float64(c.h-1-row) / float64(c.h-1)
		yv := c.y0 + frac*(c.y1-c.y0)
		if row%4 == 0 || row == c.h-1 {
			fmt.Fprintf(&b, "%9.2f |", yv)
		} else {
			b.WriteString("          |")
		}
		b.WriteString(string(c.cells[row]))
		b.WriteByte('\n')
	}
	b.WriteString("          +")
	b.WriteString(strings.Repeat("-", c.w))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%12.6g%s%.6g\n", c.x0, strings.Repeat(" ", maxInt(1, c.w-10)), c.x1)
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Series pairs a glyph with y values for multi-series line charts.
type Series struct {
	Glyph  rune
	Label  string
	Values []float64
}

// LineChart renders one or more series over a shared integer x axis
// (0..n-1), auto-scaling y to the data with a little headroom.
func LineChart(title string, w, h int, series ...Series) string {
	n := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if n < 2 || math.IsInf(lo, 1) {
		return title + "\n(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	cv := NewCanvas(w, h, 0, float64(n-1), math.Min(lo, 0), hi+pad)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	for _, s := range series {
		cv.Line(xs[:len(s.Values)], s.Values, s.Glyph)
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", s.Glyph, s.Label)
	}
	b.WriteString(cv.String())
	return b.String()
}

// BarChart renders labelled bars (Figure 2's walltime-by-node-count).
func BarChart(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("asciichart: BarChart length mismatch %d vs %d", len(labels), len(values)))
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	hi := 0.0
	for _, v := range values {
		if v > hi {
			hi = v
		}
	}
	if hi == 0 {
		hi = 1
	}
	for i, v := range values {
		n := int(v / hi * float64(width))
		fmt.Fprintf(&b, "%8s | %-*s %.3g\n", labels[i], width, strings.Repeat("#", n), v)
	}
	return b.String()
}

// Scatter renders x/y points with auto-scaled axes (Figures 3 and 5).
func Scatter(title string, w, h int, xs, ys []float64, glyph rune) string {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("asciichart: Scatter length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) == 0 {
		return title + "\n(no data)\n"
	}
	xlo, xhi := xs[0], xs[0]
	ylo, yhi := ys[0], ys[0]
	for i := range xs {
		xlo, xhi = math.Min(xlo, xs[i]), math.Max(xhi, xs[i])
		ylo, yhi = math.Min(ylo, ys[i]), math.Max(yhi, ys[i])
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	cv := NewCanvas(w, h, xlo, xhi+(xhi-xlo)*0.02, math.Min(ylo, 0), yhi+(yhi-ylo)*0.05)
	for i := range xs {
		cv.Plot(xs[i], ys[i], glyph)
	}
	return title + "\n" + cv.String()
}
