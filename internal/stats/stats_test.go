package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !approx(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("StdDev single = %v", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Fatalf("StdDev(nil) = %v", got)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !approx(got, 4, 1e-9) {
		t.Fatalf("Variance = %v, want 4", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Fatalf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Fatal("empty-slice Min/Max/Sum not zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %v", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 25); !approx(got, 2.5, 1e-12) {
		t.Fatalf("interpolated percentile = %v, want 2.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("Median = %v", got)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 3)
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if !approx(got[i], want[i], 1e-12) {
			t.Fatalf("MovingAverage[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMovingAverageWindowOne(t *testing.T) {
	xs := []float64{4, 8, 15}
	got := MovingAverage(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("window-1 moving average changed values: %v", got)
		}
	}
	// Degenerate window is clamped to 1.
	got = MovingAverage(xs, 0)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("window-0 moving average changed values: %v", got)
		}
	}
}

func TestMovingAverageConstantInvariant(t *testing.T) {
	f := func(v uint8, n uint8, w uint8) bool {
		nn := int(n%50) + 1
		xs := make([]float64, nn)
		for i := range xs {
			xs[i] = float64(v)
		}
		out := MovingAverage(xs, int(w%10)+1)
		for _, o := range out {
			if !approx(o, float64(v), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMean(t *testing.T) {
	xs := []float64{10, 20}
	ws := []float64{1, 3}
	if got := WeightedMean(xs, ws); !approx(got, 17.5, 1e-12) {
		t.Fatalf("WeightedMean = %v", got)
	}
	if got := WeightedMean([]float64{1}, []float64{0}); got != 0 {
		t.Fatalf("zero-weight WeightedMean = %v", got)
	}
}

func TestWeightedMeanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty Summary string")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Observe(0.5) // bin 0
	h.Observe(9.5) // bin 4
	h.Add(5.0, 3)  // bin 2, weight 3
	if h.Counts[0] != 1 || h.Counts[4] != 1 || h.Counts[2] != 3 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %v", h.Total())
	}
	if h.MaxBin() != 2 {
		t.Fatalf("MaxBin = %d", h.MaxBin())
	}
	if !approx(h.BinCenter(0), 1, 1e-12) || !approx(h.BinCenter(4), 9, 1e-12) {
		t.Fatalf("BinCenter = %v, %v", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Observe(-3)
	h.Observe(42)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, c := range []struct {
		name   string
		lo, hi float64
		bins   int
	}{{"no bins", 0, 1, 0}, {"inverted", 1, 0, 3}, {"empty range", 1, 1, 3}} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			NewHistogram(c.lo, c.hi, c.bins)
		})
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("daily", 3)
	s.Values[0], s.Values[1], s.Values[2] = 3, 6, 9
	sm := s.Smoothed(2)
	want := []float64{3, 4.5, 7.5}
	for i := range want {
		if !approx(sm.Values[i], want[i], 1e-12) {
			t.Fatalf("Smoothed[%d] = %v, want %v", i, sm.Values[i], want[i])
		}
	}
	if sm.Label != "daily (moving avg)" {
		t.Fatalf("label = %q", sm.Label)
	}
	// Smoothing must not alias the original storage.
	sm.Values[0] = 99
	if s.Values[0] != 3 {
		t.Fatal("Smoothed aliases original values")
	}
}

func TestFilter(t *testing.T) {
	// The paper's 30-of-270-days filter: keep days above a threshold.
	xs := []float64{1.5, 2.5, 0.9, 3.1}
	got := Filter(xs, func(x float64) bool { return x > 2.0 })
	if len(got) != 2 || got[0] != 2.5 || got[1] != 3.1 {
		t.Fatalf("Filter = %v", got)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Correlation(xs, ys); !approx(got, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Correlation(xs, neg); !approx(got, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	flat := []float64{5, 5, 5, 5}
	if got := Correlation(xs, flat); got != 0 {
		t.Fatalf("degenerate correlation = %v", got)
	}
	if got := Correlation([]float64{1}, []float64{2}); got != 0 {
		t.Fatalf("single-point correlation = %v", got)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(xs, ys)
	if !approx(slope, 2, 1e-12) || !approx(intercept, 1, 1e-12) {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	// Degenerate: all xs equal.
	slope, intercept = LinearFit([]float64{5, 5}, []float64{1, 3})
	if slope != 0 || !approx(intercept, 2, 1e-12) {
		t.Fatalf("degenerate fit = %v, %v", slope, intercept)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
