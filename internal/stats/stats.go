// Package stats provides the descriptive statistics used to reduce nine
// months of counter samples into the paper's tables and figures: means and
// standard deviations, moving averages, histograms, percentiles, and simple
// time-series utilities.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 for fewer
// than two samples. The paper reports population statistics over its
// 30-day sample.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	sd := StdDev(xs)
	return sd * sd
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// MovingAverage returns the trailing moving average of xs with the given
// window. Element i averages xs[max(0,i-window+1) .. i], so the output has
// the same length as the input (the figures in the paper plot a moving
// average over the full date range, ramping up at the start).
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	sum := 0.0
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
		}
		n := i + 1
		if n > window {
			n = window
		}
		out[i] = sum / float64(n)
	}
	return out
}

// WeightedMean returns the weighted mean of xs with weights ws. It returns
// 0 if the weight total is zero. The paper's batch-job database reports a
// "time-weighted average" of 19 Mflops/node.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic(fmt.Sprintf("stats: WeightedMean length mismatch %d vs %d", len(xs), len(ws)))
	}
	num, den := 0.0, 0.0
	for i, x := range xs {
		num += x * ws[i]
		den += ws[i]
	}
	//hpmlint:ignore floatcompare exact zero guards the division; weights of exactly zero carry no information
	if den == 0 {
		return 0
	}
	return num / den
}

// Summary bundles the descriptive statistics the tables report.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f max=%.3f", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the
// range are clamped into the edge bins, which is the behaviour the paper's
// node-count figures need (all jobs request 1..144 nodes).
type Histogram struct {
	Lo, Hi float64
	Counts []float64
	width  float64
}

// NewHistogram builds a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: NewHistogram with no bins")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, bins), width: (hi - lo) / float64(bins)}
}

// binFor returns the bin index for x, clamped to the edge bins.
func (h *Histogram) binFor(x float64) int {
	i := int((x - h.Lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Add accumulates weight w at value x.
func (h *Histogram) Add(x, w float64) { h.Counts[h.binFor(x)] += w }

// Observe accumulates a unit count at value x.
func (h *Histogram) Observe(x float64) { h.Add(x, 1) }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.width
}

// Total returns the accumulated weight over all bins.
func (h *Histogram) Total() float64 { return Sum(h.Counts) }

// MaxBin returns the index of the heaviest bin (the first, under ties).
func (h *Histogram) MaxBin() int {
	best, bestW := 0, h.Counts[0]
	for i, w := range h.Counts {
		if w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// Series is a time-indexed sequence of values (e.g. one value per day).
type Series struct {
	Label  string
	Values []float64
}

// NewSeries allocates a named series of the given length.
func NewSeries(label string, n int) *Series {
	return &Series{Label: label, Values: make([]float64, n)}
}

// Smoothed returns a new series holding the trailing moving average.
func (s *Series) Smoothed(window int) *Series {
	return &Series{Label: s.Label + " (moving avg)", Values: MovingAverage(s.Values, window)}
}

// Filter returns the values for which keep reports true.
func Filter(xs []float64, keep func(float64) bool) []float64 {
	var out []float64
	for _, x := range xs {
		if keep(x) {
			out = append(out, x)
		}
	}
	return out
}

// Correlation returns the Pearson correlation coefficient between xs and
// ys, or 0 when undefined. Used by the analysis layer to confirm the
// paper's "no obvious trends" observation.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Correlation length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	//hpmlint:ignore floatcompare degenerate input (all values equal) sums to exactly 0.0
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinearFit returns the least-squares slope and intercept of ys against xs.
// It returns (0, mean(ys)) for degenerate inputs.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: LinearFit length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		return 0, Mean(ys)
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	//hpmlint:ignore floatcompare degenerate input (all xs equal) sums to exactly 0.0
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}
