package mpi

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hpm"
	"repro/internal/hps"
	"repro/internal/node"
)

func newWorld(t *testing.T, p int) *World {
	t.Helper()
	net := hps.New(hps.SP2())
	nodes := make([]*node.Node, p)
	for i := range nodes {
		nodes[i] = node.New(node.Config{ID: i})
	}
	return NewWorld(net, nodes)
}

func TestNewWorldPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewWorld(hps.New(hps.SP2()), nil)
}

func TestSendRecvAdvancesReceiverClock(t *testing.T) {
	w := newWorld(t, 2)
	var recvTime, sendTime float64
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(0.010)
			r.Send(1, 34000) // ~1 ms serialisation + 45 us latency
			sendTime = r.Now()
		case 1:
			if got := r.Recv(0); got != 34000 {
				t.Errorf("recv bytes = %d", got)
			}
			recvTime = r.Now()
		}
	})
	// Receiver must be at >= 10 ms (sender's compute) + latency + transfer.
	want := 0.010 + 45e-6 + 34000/34e6
	if math.Abs(recvTime-want) > 1e-9 {
		t.Fatalf("receiver clock = %v, want %v", recvTime, want)
	}
	if sendTime >= recvTime {
		t.Fatalf("async send blocked: sender %v, receiver %v", sendTime, recvTime)
	}
	// The wait time is recorded.
	if got := w.Ranks()[1].WaitSeconds(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("wait seconds = %v", got)
	}
}

func TestRecvDoesNotRewindAheadClock(t *testing.T) {
	w := newWorld(t, 2)
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 64)
		case 1:
			r.Compute(5.0) // receiver far ahead
			r.Recv(0)
			if r.Now() < 5.0 {
				t.Errorf("clock rewound to %v", r.Now())
			}
			if r.WaitSeconds() != 0 {
				t.Errorf("no wait expected, got %v", r.WaitSeconds())
			}
		}
	})
}

func TestMessagesAccountDMAOnBothNodes(t *testing.T) {
	w := newWorld(t, 2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 6400)
		} else {
			r.Recv(0)
		}
	})
	s0 := w.nodes[0].Counters()
	s1 := w.nodes[1].Counters()
	if got := s0.Get(hpm.User, hpm.EvDMARead); got != 100 {
		t.Fatalf("sender dma_read = %d, want 100", got)
	}
	if got := s1.Get(hpm.User, hpm.EvDMAWrite); got != 100 {
		t.Fatalf("receiver dma_write = %d, want 100", got)
	}
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	w := newWorld(t, 4)
	w.Run(func(r *Rank) {
		r.Compute(float64(r.ID()) * 0.25) // ranks arrive at 0, .25, .5, .75
		r.Barrier()
		want := 0.75 + 45e-6
		if math.Abs(r.Now()-want) > 1e-9 {
			t.Errorf("rank %d left barrier at %v, want %v", r.ID(), r.Now(), want)
		}
	})
}

func TestSequentialBarriers(t *testing.T) {
	w := newWorld(t, 3)
	w.Run(func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.Compute(0.001 * float64(r.ID()+1))
			r.Barrier()
		}
	})
	// All clocks equal after the last barrier.
	base := w.Ranks()[0].Now()
	for _, r := range w.Ranks() {
		if math.Abs(r.Now()-base) > 1e-9 {
			t.Fatalf("clocks diverged: %v vs %v", r.Now(), base)
		}
	}
}

func TestAllreduceChargesButterfly(t *testing.T) {
	w := newWorld(t, 8)
	w.Run(func(r *Rank) {
		r.Allreduce(800)
	})
	// 2*log2(8) = 6 steps of (latency + 800/34e6), after a barrier exit of
	// one latency.
	want := 45e-6 + 6*(45e-6+800/34e6)
	for _, r := range w.Ranks() {
		if math.Abs(r.Now()-want) > 1e-9 {
			t.Fatalf("allreduce time = %v, want %v", r.Now(), want)
		}
	}
}

func TestAllreduceSingleRank(t *testing.T) {
	w := newWorld(t, 1)
	w.Run(func(r *Rank) {
		r.Allreduce(1000)
	})
	// Barrier of one completes immediately; no butterfly steps.
	if got := w.Ranks()[0].Now(); math.Abs(got-45e-6) > 1e-9 {
		t.Fatalf("single-rank allreduce time = %v", got)
	}
}

func TestHaloExchangeRing(t *testing.T) {
	const p = 8
	w := newWorld(t, p)
	w.Run(func(r *Rank) {
		right := (r.ID() + 1) % p
		left := (r.ID() + p - 1) % p
		for step := 0; step < 10; step++ {
			r.Compute(0.001)
			if got := r.SendRecv(right, 4096, left); got != 4096 {
				t.Errorf("halo recv = %d bytes", got)
			}
		}
	})
	for _, r := range w.Ranks() {
		if r.BytesSent() != 10*4096 {
			t.Fatalf("rank %d sent %d bytes", r.ID(), r.BytesSent())
		}
		if r.MessagesSent() != 10 {
			t.Fatalf("rank %d sent %d messages", r.ID(), r.MessagesSent())
		}
	}
}

func TestWaitFractionReflectsImbalance(t *testing.T) {
	// A slow rank makes the fast ranks wait at the barrier — the job-level
	// rate dilution mechanism.
	w := newWorld(t, 4)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(1.0) // straggler
		} else {
			r.Compute(0.1)
		}
		r.Barrier()
	})
	for _, r := range w.Ranks() {
		if r.ID() == 0 {
			if r.WaitSeconds() > 0.001 {
				t.Fatalf("straggler waited %v", r.WaitSeconds())
			}
		} else if r.WaitSeconds() < 0.89 {
			t.Fatalf("fast rank %d waited only %v", r.ID(), r.WaitSeconds())
		}
	}
}

func TestDeadlockPanicsInsteadOfHanging(t *testing.T) {
	w := newWorld(t, 2)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("deadlock did not panic")
		}
		if !strings.Contains(p.(string), "deadlock") {
			t.Fatalf("unexpected panic %v", p)
		}
	}()
	w.Run(func(r *Rank) {
		r.Recv(1 - r.ID()) // both receive, nobody sends
	})
}

func TestRecvFromFinishedRankPanics(t *testing.T) {
	w := newWorld(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.Run(func(r *Rank) {
		if r.ID() == 1 {
			r.Recv(0) // rank 0 exits immediately: deadlock
		}
	})
}

func TestSendValidation(t *testing.T) {
	w := newWorld(t, 2)
	for _, dst := range []int{-1, 2} {
		dst := dst
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Send(%d) did not panic", dst)
				}
			}()
			w.Run(func(r *Rank) {
				if r.ID() == 0 {
					r.Send(dst, 1)
				}
			})
		}()
	}
}

func TestSendToSelfPanics(t *testing.T) {
	w := newWorld(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(0, 1)
		}
	})
}

func TestNegativeComputePanics(t *testing.T) {
	w := newWorld(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.Run(func(r *Rank) { r.Compute(-1) })
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		w := newWorld(t, 6)
		w.Run(func(r *Rank) {
			right := (r.ID() + 1) % 6
			left := (r.ID() + 5) % 6
			for i := 0; i < 20; i++ {
				r.Compute(0.0001 * float64(r.ID()+1))
				r.SendRecv(right, 1024, left)
			}
			r.Barrier()
		})
		var times []float64
		for _, r := range w.Ranks() {
			times = append(times, r.Now(), r.WaitSeconds())
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run results diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBcastReachesEveryRank(t *testing.T) {
	for _, p := range []int{2, 4, 7, 8} {
		w := newWorld(t, p)
		w.Run(func(r *Rank) {
			r.Compute(float64(r.ID()) * 0.001) // skewed start times
			r.Bcast(0, 4096)
		})
		// Every non-root rank received exactly once from somewhere: total
		// messages = p-1.
		var msgs uint64
		for _, r := range w.Ranks() {
			msgs += r.MessagesSent()
		}
		if msgs != uint64(p-1) {
			t.Fatalf("p=%d: bcast used %d messages, want %d", p, msgs, p-1)
		}
		// Non-root clocks are at or after the root's send epoch.
		root := w.Ranks()[0]
		for _, r := range w.Ranks()[1:] {
			if r.Now() < root.Now()-1 {
				t.Fatalf("p=%d: rank %d finished before data could arrive", p, r.ID())
			}
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	w := newWorld(t, 5)
	w.Run(func(r *Rank) {
		r.Bcast(3, 128)
	})
	var msgs uint64
	for _, r := range w.Ranks() {
		msgs += r.MessagesSent()
	}
	if msgs != 4 {
		t.Fatalf("messages = %d", msgs)
	}
}

func TestReduceConvergesToRoot(t *testing.T) {
	for _, p := range []int{2, 4, 6, 8} {
		w := newWorld(t, p)
		w.Run(func(r *Rank) {
			r.Compute(float64(p-r.ID()) * 0.001) // reverse skew
			r.Reduce(0, 800)
		})
		var msgs uint64
		for _, r := range w.Ranks() {
			msgs += r.MessagesSent()
		}
		if msgs != uint64(p-1) {
			t.Fatalf("p=%d: reduce used %d messages, want %d", p, msgs, p-1)
		}
		// The root ends no earlier than any contributor's send time.
		root := w.Ranks()[0]
		for _, r := range w.Ranks()[1:] {
			if root.Now() < float64(p-r.ID())*0.001 {
				t.Fatalf("root finished before rank %d contributed", r.ID())
			}
		}
	}
}

func TestBcastSingleRankNoop(t *testing.T) {
	w := newWorld(t, 1)
	w.Run(func(r *Rank) {
		r.Bcast(0, 100)
		r.Reduce(0, 100)
	})
	if w.Ranks()[0].Now() != 0 {
		t.Fatal("single-rank collectives should be free")
	}
}

func TestCollectiveValidation(t *testing.T) {
	w := newWorld(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.Run(func(r *Rank) { r.Bcast(9, 1) })
}
