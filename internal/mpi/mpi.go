// Package mpi is the message-passing substrate the NAS workload codes were
// ported to (the paper: "made portable by employing PVM and/or MPI"). It
// runs one goroutine per rank, each with its own virtual clock, over the
// simulated High Performance Switch:
//
//   - Send is asynchronous (the style Cui and Street used for the
//     best-performing 28-node job): it deposits the message with an
//     arrival timestamp and the sender continues;
//   - Recv blocks until the message exists, then advances the receiver's
//     clock to max(own time, arrival) — waiting is what separates a rank's
//     compute rate from its job-level rate;
//   - Barrier and Allreduce synchronise all clocks, modelling the
//     synchronous codes the paper blames for some >64-node jobs.
//
// Every message is accounted as adapter DMA traffic on both endpoint
// nodes, so message passing appears in the SCU dma_read/dma_write counters
// exactly as RS2HPM saw it.
package mpi

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/hps"
	"repro/internal/isa"
	"repro/internal/node"
	"repro/internal/units"
)

type srcDst struct{ src, dst int }

type message struct {
	bytes   uint64
	arrival float64
}

// World is a communicator over a set of ranks. Create one with NewWorld,
// then call Run with the per-rank program.
type World struct {
	net   *hps.Network
	nodes []*node.Node

	mu   sync.Mutex
	cond *sync.Cond // signals queue/barrier state changes; created in NewWorld

	queues      map[srcDst][]message // guarded by mu
	totalQueued int                  // guarded by mu
	waiting     int                  // guarded by mu
	size        int                  // immutable after NewWorld

	barrierCount int     // guarded by mu
	barrierEpoch uint64  // guarded by mu
	barrierTime  float64 // guarded by mu
	releaseTime  float64 // guarded by mu; barrierTime snapshot at the last release
	finished     int     // guarded by mu; ranks whose body has returned

	lastRanks []*Rank
}

// NewWorld builds a communicator whose rank i runs on nodes[i]. The nodes
// are attached to the network here; do not attach them beforehand.
func NewWorld(net *hps.Network, nodes []*node.Node) *World {
	if len(nodes) == 0 {
		panic("mpi: NewWorld with no nodes")
	}
	for _, n := range nodes {
		net.Attach(n)
	}
	w := &World{
		net:    net,
		nodes:  nodes,
		queues: make(map[srcDst][]message),
		size:   len(nodes),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.size }

// Ranks returns the rank objects from the most recent Run (nil before any
// Run), for reading final virtual times and wait fractions.
func (w *World) Ranks() []*Rank { return w.lastRanks }

// deadlockedLocked reports whether every rank is blocked with nothing in
// flight. Callers hold w.mu and have already counted themselves in
// w.waiting or w.barrierCount.
func (w *World) deadlockedLocked() bool {
	return w.waiting+w.barrierCount+w.finished >= w.size &&
		w.totalQueued == 0 &&
		w.barrierCount < w.size
}

// Rank is one process of the parallel job. All methods must be called from
// the rank's own goroutine (the one Run starts).
type Rank struct {
	world *World
	id    int
	node  *node.Node

	now  float64 // virtual seconds since job start
	wait float64 // cumulative blocked time
	sent uint64  // bytes sent
	msgs uint64  // messages sent
}

// ID reports the rank number.
func (r *Rank) ID() int { return r.id }

// Node returns the node this rank runs on.
func (r *Rank) Node() *node.Node { return r.node }

// Now reports the rank's virtual time in seconds.
func (r *Rank) Now() float64 { return r.now }

// WaitSeconds reports cumulative time spent blocked in communication.
func (r *Rank) WaitSeconds() float64 { return r.wait }

// BytesSent reports cumulative bytes this rank has sent.
func (r *Rank) BytesSent() uint64 { return r.sent }

// MessagesSent reports how many messages this rank has sent.
func (r *Rank) MessagesSent() uint64 { return r.msgs }

// Compute advances the rank's clock by a pure-time computation phase.
func (r *Rank) Compute(seconds float64) {
	if seconds < 0 {
		panic(fmt.Sprintf("mpi: negative compute time %v", seconds))
	}
	r.now += seconds
}

// ComputeStream executes instructions on the rank's node CPU and advances
// the virtual clock by the simulated elapsed time.
func (r *Rank) ComputeStream(s isa.Stream, maxInstrs uint64) {
	st := r.node.RunLimited(s, maxInstrs)
	r.now += float64(st.Cycles) / units.ClockHz
}

// Send transmits bytes to rank dst asynchronously. The message arrives at
// the destination at now + latency + bytes/bandwidth.
func (r *Rank) Send(dst int, bytes uint64) {
	if dst < 0 || dst >= r.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	if dst == r.id {
		panic("mpi: send to self")
	}
	sec, err := r.world.net.Deliver(r.node.NodeID(), r.world.nodes[dst].NodeID(), bytes)
	if err != nil {
		panic(fmt.Sprintf("mpi: deliver: %v", err))
	}
	arrival := r.now + sec
	w := r.world
	w.mu.Lock()
	key := srcDst{r.id, dst}
	w.queues[key] = append(w.queues[key], message{bytes: bytes, arrival: arrival})
	w.totalQueued++
	w.mu.Unlock()
	w.cond.Broadcast()
	r.sent += bytes
	r.msgs++
	// The sender pays a software injection overhead.
	r.now += r.world.net.Config().LatencySeconds / 2
}

// Recv blocks until a message from src is available and returns its size.
// The rank's clock advances to the arrival time if the message was still
// in flight. A genuine deadlock (every rank blocked, nothing in any
// queue) panics rather than hanging the test suite.
func (r *Rank) Recv(src int) uint64 {
	if src < 0 || src >= r.world.size {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d", src))
	}
	w := r.world
	key := srcDst{src, r.id}
	w.mu.Lock()
	for len(w.queues[key]) == 0 {
		w.waiting++
		if w.deadlockedLocked() {
			w.waiting--
			w.mu.Unlock()
			w.cond.Broadcast()
			panic(fmt.Sprintf("mpi: deadlock: rank %d blocked in Recv(%d) with all ranks idle", r.id, src))
		}
		w.cond.Wait()
		w.waiting--
	}
	m := w.queues[key][0]
	w.queues[key] = w.queues[key][1:]
	w.totalQueued--
	w.mu.Unlock()

	if m.arrival > r.now {
		r.wait += m.arrival - r.now
		r.node.AddIOWait(m.arrival - r.now)
		r.now = m.arrival
	}
	return m.bytes
}

// SendRecv performs the halo-exchange idiom: send to `to`, then receive
// from `from`. Returns the received byte count.
func (r *Rank) SendRecv(to int, bytes uint64, from int) uint64 {
	r.Send(to, bytes)
	return r.Recv(from)
}

// Barrier blocks until every rank arrives; all leave at the latest
// arrival time plus one switch latency.
func (r *Rank) Barrier() {
	w := r.world
	w.mu.Lock()
	epoch := w.barrierEpoch
	if r.now > w.barrierTime {
		w.barrierTime = r.now
	}
	w.barrierCount++
	if w.barrierCount == w.size {
		w.barrierCount = 0
		w.barrierEpoch++
		w.releaseTime = w.barrierTime
		w.barrierTime = 0
		w.cond.Broadcast()
	} else {
		for w.barrierEpoch == epoch {
			if w.deadlockedLocked() {
				w.barrierCount--
				w.mu.Unlock()
				w.cond.Broadcast()
				panic(fmt.Sprintf("mpi: deadlock: rank %d blocked in Barrier", r.id))
			}
			w.cond.Wait()
		}
	}
	exit := w.releaseTime + w.net.Config().LatencySeconds
	w.mu.Unlock()
	if exit > r.now {
		r.wait += exit - r.now
		r.node.AddIOWait(exit - r.now)
		r.now = exit
	}
}

// Allreduce synchronises all ranks and charges the butterfly exchange
// cost: 2*ceil(log2 p) message steps of the given payload.
func (r *Rank) Allreduce(bytes uint64) {
	r.Barrier()
	if r.world.size == 1 {
		return
	}
	steps := 2 * math.Ceil(math.Log2(float64(r.world.size)))
	r.now += steps * r.world.net.TransferTime(bytes)
}

// Run starts one goroutine per rank executing body and waits for all to
// finish. A panic in any rank is re-raised here with its rank number.
func (w *World) Run(body func(r *Rank)) {
	w.mu.Lock()
	w.finished = 0
	w.mu.Unlock()
	var wg sync.WaitGroup
	panics := make([]any, w.size)
	ranks := make([]*Rank, w.size)
	for i := 0; i < w.size; i++ {
		ranks[i] = &Rank{world: w, id: i, node: w.nodes[i]}
	}
	for i := 0; i < w.size; i++ {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r.id] = p
				}
				w.mu.Lock()
				w.finished++
				w.mu.Unlock()
				w.cond.Broadcast()
			}()
			body(r)
		}(ranks[i])
	}
	wg.Wait()
	w.lastRanks = ranks
	for id, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mpi: rank %d: %v", id, p))
		}
	}
}

// Bcast distributes bytes from root to every other rank (binomial tree:
// ceil(log2 p) steps). All ranks must call it; non-root ranks' clocks
// advance to their receive time.
func (r *Rank) Bcast(root int, bytes uint64) {
	if root < 0 || root >= r.world.size {
		panic(fmt.Sprintf("mpi: bcast from invalid root %d", root))
	}
	if r.world.size == 1 {
		return
	}
	// Tree position relative to the root.
	rel := (r.id - root + r.world.size) % r.world.size
	steps := 0
	for 1<<steps < r.world.size {
		steps++
	}
	for s := 0; s < steps; s++ {
		bit := 1 << s
		if rel < bit {
			// Already has the data: send to the partner if it exists.
			peerRel := rel + bit
			if peerRel < r.world.size {
				r.Send((peerRel+root)%r.world.size, bytes)
			}
		} else if rel < bit*2 {
			// Receives in this step.
			peerRel := rel - bit
			r.Recv((peerRel + root) % r.world.size)
		}
	}
}

// Reduce gathers contributions to the root (the reverse tree): every rank
// sends its payload up; the root's clock advances to the slowest arrival.
func (r *Rank) Reduce(root int, bytes uint64) {
	if root < 0 || root >= r.world.size {
		panic(fmt.Sprintf("mpi: reduce to invalid root %d", root))
	}
	if r.world.size == 1 {
		return
	}
	rel := (r.id - root + r.world.size) % r.world.size
	steps := 0
	for 1<<steps < r.world.size {
		steps++
	}
	for s := steps - 1; s >= 0; s-- {
		bit := 1 << s
		if rel < bit {
			peerRel := rel + bit
			if peerRel < r.world.size {
				r.Recv((peerRel + root) % r.world.size)
			}
		} else if rel < bit*2 {
			peerRel := rel - bit
			r.Send((peerRel+root)%r.world.size, bytes)
			return // contributed; done with the reduction
		}
	}
}
