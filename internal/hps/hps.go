// Package hps models the SP2 High Performance Switch (Stunkel et al.,
// 1995) as the paper characterises it: ~45 microsecond node-to-node
// latency, ~34 MB/s node-to-node bandwidth, and aggregate bandwidth that
// scales linearly with the number of processors (every node has its own
// adapter port; the multistage network is non-blocking for the workloads
// measured).
//
// The switch moves message bytes between node adapters. Every transfer is
// also accounted as DMA traffic (4-8 word transfers) against the SCU
// counters of both endpoints, which is how message passing shows up in the
// paper's dma_read/dma_write rows.
package hps

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/units"
)

// Config describes a switch fabric.
type Config struct {
	// LatencySeconds is the one-way node-to-node message latency.
	LatencySeconds float64
	// BandwidthBytesPerSec is the per-link node-to-node bandwidth.
	BandwidthBytesPerSec float64
	// DMABytesPerTransfer is the accounting granularity of the adapter's
	// DMA engine (a transfer moves 4 or 8 words; 64 bytes by default).
	DMABytesPerTransfer int
}

// SP2 returns the NAS SP2 switch parameters from the paper.
func SP2() Config {
	return Config{
		LatencySeconds:       units.SwitchLatencySeconds,
		BandwidthBytesPerSec: units.SwitchBandwidthBytesPerSec,
		DMABytesPerTransfer:  64,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LatencySeconds < 0 {
		return fmt.Errorf("hps: negative latency %v", c.LatencySeconds)
	}
	if c.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("hps: non-positive bandwidth %v", c.BandwidthBytesPerSec)
	}
	if c.DMABytesPerTransfer <= 0 {
		return fmt.Errorf("hps: non-positive DMA transfer size %d", c.DMABytesPerTransfer)
	}
	return nil
}

// Adapter is the per-node communication port. Implemented by node.Node;
// defined here so the switch does not import the node package.
type Adapter interface {
	// NodeID identifies the endpoint.
	NodeID() int
	// AccountDMA charges DMA transfer counts: reads are memory-to-device
	// (sending), writes are device-to-memory (receiving).
	AccountDMA(reads, writes uint64)
}

// Network is a switch fabric connecting adapters. Safe for concurrent
// use: Deliver is called from mpi rank goroutines while the cluster layer
// may still be attaching late-booting nodes or NFS servers.
type Network struct {
	cfg Config

	mu       sync.RWMutex
	adapters map[int]Adapter // guarded by mu

	// Aggregate statistics; atomic because Deliver is called concurrently
	// from mpi rank goroutines.
	messages atomic.Uint64
	bytes    atomic.Uint64
}

// New builds a network; it panics on an invalid configuration.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Network{cfg: cfg, adapters: make(map[int]Adapter)}
}

// Config returns the fabric parameters.
func (n *Network) Config() Config { return n.cfg }

// Attach registers an adapter; it panics on a duplicate node ID (wiring is
// a construction-time programming error).
func (n *Network) Attach(a Adapter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.adapters[a.NodeID()]; dup {
		panic(fmt.Sprintf("hps: duplicate adapter for node %d", a.NodeID()))
	}
	n.adapters[a.NodeID()] = a
}

// Attached reports the number of attached adapters.
func (n *Network) Attached() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.adapters)
}

// TransferTime returns the one-way time to move a message of the given
// size between two nodes: latency plus serialisation at link bandwidth.
func (n *Network) TransferTime(bytes uint64) float64 {
	return n.cfg.LatencySeconds + float64(bytes)/n.cfg.BandwidthBytesPerSec
}

// Transfers reports how many DMA transfers a message of the given size
// costs at the adapter granularity (at least one for a non-empty message).
func (n *Network) Transfers(bytes uint64) uint64 {
	if bytes == 0 {
		return 0
	}
	per := uint64(n.cfg.DMABytesPerTransfer)
	return (bytes + per - 1) / per
}

// Deliver accounts a message from src to dst and returns its transfer
// time. Both endpoints must be attached. The sender's adapter DMAs the
// message out of memory (dma_read); the receiver's DMAs it in (dma_write).
func (n *Network) Deliver(src, dst int, bytes uint64) (seconds float64, err error) {
	n.mu.RLock()
	sa, okSrc := n.adapters[src]
	da, okDst := n.adapters[dst]
	n.mu.RUnlock()
	if !okSrc {
		return 0, fmt.Errorf("hps: source node %d not attached", src)
	}
	if !okDst {
		return 0, fmt.Errorf("hps: destination node %d not attached", dst)
	}
	t := n.Transfers(bytes)
	sa.AccountDMA(t, 0)
	da.AccountDMA(0, t)
	n.messages.Add(1)
	n.bytes.Add(bytes)
	return n.TransferTime(bytes), nil
}

// Stats reports aggregate message and byte counts.
func (n *Network) Stats() (messages, bytes uint64) {
	return n.messages.Load(), n.bytes.Load()
}

// BisectionBandwidth reports the aggregate bandwidth available to p
// processors; the paper notes it scales linearly.
func (n *Network) BisectionBandwidth(p int) float64 {
	if p < 0 {
		p = 0
	}
	return float64(p) * n.cfg.BandwidthBytesPerSec
}
