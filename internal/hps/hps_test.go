package hps

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

type fakeAdapter struct {
	id     int
	reads  uint64
	writes uint64
}

func (f *fakeAdapter) NodeID() int { return f.id }
func (f *fakeAdapter) AccountDMA(r, w uint64) {
	f.reads += r
	f.writes += w
}

func TestSP2Config(t *testing.T) {
	cfg := SP2()
	if cfg.LatencySeconds != 45e-6 {
		t.Fatalf("latency = %v", cfg.LatencySeconds)
	}
	if cfg.BandwidthBytesPerSec != 34e6 {
		t.Fatalf("bandwidth = %v", cfg.BandwidthBytesPerSec)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{LatencySeconds: -1, BandwidthBytesPerSec: 1, DMABytesPerTransfer: 64},
		{LatencySeconds: 1, BandwidthBytesPerSec: 0, DMABytesPerTransfer: 64},
		{LatencySeconds: 1, BandwidthBytesPerSec: 1, DMABytesPerTransfer: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{})
}

func TestTransferTime(t *testing.T) {
	n := New(SP2())
	// Zero bytes: pure latency.
	if got := n.TransferTime(0); got != 45e-6 {
		t.Fatalf("latency-only transfer = %v", got)
	}
	// 34 MB takes latency + 1 second.
	got := n.TransferTime(34e6)
	if math.Abs(got-1.000045) > 1e-9 {
		t.Fatalf("34MB transfer = %v, want ~1.000045", got)
	}
}

func TestTransfersGranularity(t *testing.T) {
	n := New(SP2())
	cases := []struct {
		bytes uint64
		want  uint64
	}{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {4096, 64}}
	for _, c := range cases {
		if got := n.Transfers(c.bytes); got != c.want {
			t.Errorf("Transfers(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestDeliverAccountsBothEnds(t *testing.T) {
	n := New(SP2())
	a := &fakeAdapter{id: 0}
	b := &fakeAdapter{id: 1}
	n.Attach(a)
	n.Attach(b)
	sec, err := n.Deliver(0, 1, 6400)
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 45e-6 {
		t.Fatalf("transfer time %v too small", sec)
	}
	if a.reads != 100 || a.writes != 0 {
		t.Fatalf("sender DMA = %d/%d, want 100 reads", a.reads, a.writes)
	}
	if b.writes != 100 || b.reads != 0 {
		t.Fatalf("receiver DMA = %d/%d, want 100 writes", b.reads, b.writes)
	}
	msgs, bytes := n.Stats()
	if msgs != 1 || bytes != 6400 {
		t.Fatalf("stats = %d msgs %d bytes", msgs, bytes)
	}
}

func TestDeliverUnattachedEndpoints(t *testing.T) {
	n := New(SP2())
	n.Attach(&fakeAdapter{id: 0})
	if _, err := n.Deliver(0, 9, 100); err == nil {
		t.Fatal("delivery to unattached node succeeded")
	}
	if _, err := n.Deliver(9, 0, 100); err == nil {
		t.Fatal("delivery from unattached node succeeded")
	}
}

func TestAttachDuplicatePanics(t *testing.T) {
	n := New(SP2())
	n.Attach(&fakeAdapter{id: 3})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate attach")
		}
	}()
	n.Attach(&fakeAdapter{id: 3})
}

func TestAttachedCount(t *testing.T) {
	n := New(SP2())
	for i := 0; i < 144; i++ {
		n.Attach(&fakeAdapter{id: i})
	}
	if n.Attached() != 144 {
		t.Fatalf("Attached = %d", n.Attached())
	}
}

func TestBisectionScalesLinearly(t *testing.T) {
	n := New(SP2())
	if n.BisectionBandwidth(144) != 144*34e6 {
		t.Fatalf("bisection = %v", n.BisectionBandwidth(144))
	}
	if n.BisectionBandwidth(-1) != 0 {
		t.Fatal("negative processor count not clamped")
	}
}

func TestTransferTimeMonotoneProperty(t *testing.T) {
	n := New(SP2())
	f := func(a, b uint32) bool {
		lo, hi := uint64(a), uint64(a)+uint64(b)
		return n.TransferTime(lo) <= n.TransferTime(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDMAConservationProperty(t *testing.T) {
	// Total reads accounted equals total writes for any message pattern
	// (every byte sent is received).
	n := New(SP2())
	ads := make([]*fakeAdapter, 4)
	for i := range ads {
		ads[i] = &fakeAdapter{id: i}
		n.Attach(ads[i])
	}
	f := func(moves []uint16) bool {
		for i, m := range moves {
			src := i % 4
			dst := (i + 1 + int(m)%3) % 4
			if _, err := n.Deliver(src, dst, uint64(m)); err != nil {
				return false
			}
		}
		var r, w uint64
		for _, a := range ads {
			r += a.reads
			w += a.writes
		}
		return r == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// atomicAdapter is an adapter safe for concurrent delivery, for the race
// stress test below.
type atomicAdapter struct {
	id     int
	reads  atomic.Uint64
	writes atomic.Uint64
}

func (a *atomicAdapter) NodeID() int { return a.id }
func (a *atomicAdapter) AccountDMA(r, w uint64) {
	a.reads.Add(r)
	a.writes.Add(w)
}

// TestConcurrentAttachAndDeliver exercises the fabric the way the cluster
// layer does: rank goroutines delivering messages while late-booting nodes
// and NFS servers are still being attached. Run under -race this pins the
// mutex protection of the adapter table.
func TestConcurrentAttachAndDeliver(t *testing.T) {
	n := New(SP2())
	const initial = 8
	for i := 0; i < initial; i++ {
		n.Attach(&atomicAdapter{id: i})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				src := (g + i) % initial
				dst := (src + 1) % initial
				if _, err := n.Deliver(src, dst, 256); err != nil {
					t.Errorf("deliver: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			n.Attach(&atomicAdapter{id: initial + i})
			n.Attached()
			n.Stats()
		}
	}()
	wg.Wait()
	if got := n.Attached(); got != initial+100 {
		t.Fatalf("Attached() = %d, want %d", got, initial+100)
	}
	msgs, bytes := n.Stats()
	if msgs != 2000 || bytes != 2000*256 {
		t.Fatalf("Stats() = %d msgs, %d bytes", msgs, bytes)
	}
}
