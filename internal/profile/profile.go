// Package profile bridges the instruction-level CPU model and the
// nine-month campaign simulation. A Profile is the measured per-second
// counter signature of a kernel: every one of the 22 monitor events, in
// user and system mode, normalised by simulated wall time.
//
// Kernels are micro-simulated in full (every instruction through the
// dispatch, cache, TLB and paging models); the campaign then advances node
// counters at the measured rates over job lifetimes. This is the standard
// way to scale a microarchitecture simulator to months of machine time
// while keeping every rate self-consistent with the detailed model.
package profile

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/hpm"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/power2"
	"repro/internal/rng"
)

// Profile is a kernel's counter signature in events per second of node
// wall time, plus convenience aggregates.
type Profile struct {
	Name string
	// EventsPerSec holds per-mode, per-event rates.
	EventsPerSec [2][hpm.NumEvents]float64
	// Mflops is the counter-derived user-mode floating rate, for quick
	// reference and workload calibration.
	Mflops float64
	// TrueDivPerSec preserves the divide rate the broken hardware counter
	// missed.
	TrueDivPerSec float64
}

// Measure runs n instructions of the stream on a fresh CPU with the given
// configuration and returns the resulting rate signature.
func Measure(name string, stream isa.Stream, cfg power2.Config, n uint64) Profile {
	return MeasureRun(name, stream, cfg, n).Profile()
}

// MeasureKernel measures a kernel from the registry under the given CPU
// configuration.
func MeasureKernel(k kernels.Kernel, cfg power2.Config, n uint64) Profile {
	return MeasureRunKernel(k, cfg, n).Profile()
}

// Scale returns a copy of the profile with every rate multiplied by f —
// how per-job performance variability (compiler flags, problem sizes,
// tuning) is injected without re-simulating.
func (p Profile) Scale(f float64) Profile {
	out := p
	for m := 0; m < 2; m++ {
		for ev := range out.EventsPerSec[m] {
			out.EventsPerSec[m][ev] *= f
		}
	}
	out.Mflops *= f
	out.TrueDivPerSec *= f
	return out
}

// Blend returns a profile that is fracA of a plus (1-fracA) of b — the
// compute/communication duty-cycle composition of a job phase mix.
func Blend(a Profile, fracA float64, b Profile) Profile {
	if fracA < 0 || fracA > 1 {
		panic(fmt.Sprintf("profile: blend fraction %v out of [0,1]", fracA))
	}
	var out Profile
	out.Name = a.Name + "+" + b.Name
	for m := 0; m < 2; m++ {
		for ev := range out.EventsPerSec[m] {
			out.EventsPerSec[m][ev] = fracA*a.EventsPerSec[m][ev] + (1-fracA)*b.EventsPerSec[m][ev]
		}
	}
	out.Mflops = fracA*a.Mflops + (1-fracA)*b.Mflops
	out.TrueDivPerSec = fracA*a.TrueDivPerSec + (1-fracA)*b.TrueDivPerSec
	return out
}

// Plus returns the event-wise sum of two profiles — used to overlay a
// partially-active phase (e.g. comm-time memcpy at less than full duty)
// on a compute baseline.
func (p Profile) Plus(q Profile) Profile {
	out := p
	out.Name = p.Name + "+" + q.Name
	for m := 0; m < 2; m++ {
		for ev := range out.EventsPerSec[m] {
			out.EventsPerSec[m][ev] += q.EventsPerSec[m][ev]
		}
	}
	out.Mflops += q.Mflops
	out.TrueDivPerSec += q.TrueDivPerSec
	return out
}

// WithDMA returns a copy with the user-mode DMA read/write rates replaced
// (transfers per second). The campaign sets these from a job's message and
// disk traffic rather than the microsim (whose streams do no real I/O).
func (p Profile) WithDMA(readsPerSec, writesPerSec float64) Profile {
	out := p
	out.EventsPerSec[hpm.User][hpm.EvDMARead] = readsPerSec
	out.EventsPerSec[hpm.User][hpm.EvDMAWrite] = writesPerSec
	return out
}

// Apply advances a node's extended counters by seconds of this profile.
// It writes through the daemon's 64-bit accumulator rather than the 32-bit
// hardware registers: a 15-minute interval at SP2 rates overflows a 32-bit
// register many times, which is exactly why the real tools kept software
// totals. Fractional counts are rounded stochastically with rnd so rare
// events (I-cache misses, DMA on short phases) keep the right expectation;
// a nil rnd truncates.
//
// The receiver is a pointer purely to avoid copying the ~370-byte rate
// table once per job per tick on the campaign's hot path; Apply never
// mutates the profile.
func (p *Profile) Apply(acc *hpm.Accumulator, seconds float64, rnd *rng.Source) {
	if seconds < 0 {
		panic(fmt.Sprintf("profile: negative apply duration %v", seconds))
	}
	for mode := hpm.Mode(0); mode < 2; mode++ {
		for ev := hpm.Event(0); ev < hpm.NumEvents; ev++ {
			x := p.EventsPerSec[mode][ev] * seconds
			n := uint64(x)
			if rnd != nil && rnd.Float64() < x-float64(n) {
				n++
			}
			if n > 0 {
				acc.AddDirect(mode, ev, n)
			}
		}
	}
}

// Standard is the precomputed set of profiles the campaign uses.
type Standard struct {
	CFD        Profile
	BT         Profile
	MatMul     Profile
	Sequential Profile
	Comm       Profile
	Paging     Profile // measured on a memory-constrained node: system-heavy
}

// instrsPerMeasurement balances fidelity against start-up time; 400k
// instructions is far past cache/TLB warm-up for every kernel.
const instrsPerMeasurement = 400_000

// MeasureStandard builds the standard profile set with one micro-simulation
// in flight per available CPU. The paging profile is measured on a node
// with only 32 MB available to the job, against the kernel's 256 MB
// working set — the >64-node oversubscription regime.
func MeasureStandard(seed uint64) Standard {
	return MeasureStandardWorkers(seed, runtime.GOMAXPROCS(0))
}

// MeasureStandardWorkers builds the standard profile set with at most
// workers kernel micro-simulations in flight, consulting (and filling)
// the DefaultStore. Each measurement runs on its own freshly-seeded CPU
// and writes its own field of the result, so the profiles are
// bit-identical for every worker count — and, because a store hit returns
// exactly what the simulation would compute, for store hits and misses.
func MeasureStandardWorkers(seed uint64, workers int) Standard {
	return MeasureStandardStore(DefaultStore, seed, workers)
}

// MeasureStandardStore builds the standard profile set through the given
// store; a nil store bypasses memoization entirely (the reference path
// the determinism guard compares against).
func MeasureStandardStore(store *Store, seed uint64, workers int) Standard {
	base := power2.Config{Seed: seed + 1}
	mustKernel := func(name string) kernels.Kernel {
		k, ok := kernels.ByName(name)
		if !ok {
			panic("profile: missing kernel " + name)
		}
		return k
	}
	measure := func(k kernels.Kernel, cfg power2.Config, instrs uint64) Profile {
		if store == nil {
			return MeasureKernel(k, cfg, instrs)
		}
		return store.MeasureProfile(k, cfg, instrs)
	}
	pagingCfg := power2.Config{Seed: seed + 2, MemoryBytes: 32 << 20}
	var std Standard
	tasks := []struct {
		dst    *Profile
		kernel string
		cfg    power2.Config
		instrs uint64
	}{
		{&std.CFD, "cfd", base, instrsPerMeasurement},
		{&std.BT, "bt", base, instrsPerMeasurement},
		{&std.MatMul, "matmul", base, instrsPerMeasurement},
		{&std.Sequential, "sequential", base, instrsPerMeasurement},
		{&std.Comm, "comm", base, instrsPerMeasurement},
		{&std.Paging, "paging", pagingCfg, 700_000},
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			*t.dst = measure(mustKernel(t.kernel), t.cfg, t.instrs)
		}
		return std
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, t := range tasks {
		t := t
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			*t.dst = measure(mustKernel(t.kernel), t.cfg, t.instrs)
		}()
	}
	wg.Wait()
	return std
}

// Idle applies nothing: an unallocated or drained node. Kept as an explicit
// named helper so campaign code reads as prose.
func Idle(_ *hpm.Accumulator, _ float64) {}
