package profile

// A Measurement is the raw outcome of micro-simulating one kernel: the
// architectural run summary, the full counter delta, the simulated wall
// time, and the divides the broken hardware counter swallowed. It is the
// unit the profile store memoizes — callers that want rates derive a
// Profile from it, callers that want counter-level detail (cmd/calibrate,
// the NPB table) read the delta directly, and both reconstructions are
// bit-for-bit the computation they would have performed on a fresh
// micro-simulation.

import (
	"fmt"

	"repro/internal/hpm"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/power2"
)

// Measurement is one kernel micro-simulation, raw.
type Measurement struct {
	// Kernel, Config and Instrs identify what was measured; together they
	// are the store's cache key, and they fully determine every other
	// field (the simulator is deterministic in them).
	Kernel string
	Config power2.Resolved
	Instrs uint64

	Stats   power2.RunStats
	Delta   hpm.Delta // counters from a cold monitor, both modes
	Seconds float64   // simulated wall time at the SP2 clock
	// TrueDivides preserves, per mode, the divide count the hardware
	// monitor's bug hid from the registers.
	TrueDivides [2]uint64
}

// Profile derives the per-second rate signature. The arithmetic is exactly
// what Measure historically performed on a fresh CPU, so a cached
// measurement yields a bit-identical Profile.
func (m Measurement) Profile() Profile {
	var p Profile
	p.Name = m.Kernel
	for mode := hpm.Mode(0); mode < 2; mode++ {
		for ev := hpm.Event(0); ev < hpm.NumEvents; ev++ {
			p.EventsPerSec[mode][ev] = float64(m.Delta.Get(mode, ev)) / m.Seconds
		}
	}
	p.Mflops = hpm.UserRates(m.Delta, m.Seconds).MflopsAll
	p.TrueDivPerSec = float64(m.TrueDivides[hpm.User]) / m.Seconds
	return p
}

// MeasureRun micro-simulates n instructions of stream on a fresh CPU and
// returns the raw measurement. The stream must be the one the (name, cfg)
// pair canonically denotes — for registry kernels, k.New(cfg.Seed) — or
// the measurement must not be stored (see Store).
func MeasureRun(name string, stream isa.Stream, cfg power2.Config, n uint64) Measurement {
	r := cfg.Resolve()
	cpu := power2.NewResolved(r)
	st := cpu.RunLimited(stream, n)
	elapsed := cpu.Elapsed()
	if elapsed <= 0 {
		panic(fmt.Sprintf("profile: kernel %q produced no cycles", name))
	}
	return Measurement{
		Kernel:  name,
		Config:  r,
		Instrs:  n,
		Stats:   st,
		Delta:   hpm.Sub(hpm.Snapshot{}, cpu.Monitor().Snapshot()),
		Seconds: elapsed,
		TrueDivides: [2]uint64{
			cpu.Monitor().TrueDivides(hpm.User),
			cpu.Monitor().TrueDivides(hpm.System),
		},
	}
}

// MeasureRunKernel measures a registry kernel, instantiating its stream
// from the configuration seed (the canonical stream for the cache key).
func MeasureRunKernel(k kernels.Kernel, cfg power2.Config, n uint64) Measurement {
	return MeasureRun(k.Name, k.New(cfg.Seed), cfg, n)
}
