package profile

import (
	"sync"
	"testing"

	"repro/internal/power2"

	"repro/internal/kernels"
)

func mustKernelT(t *testing.T, name string) kernels.Kernel {
	t.Helper()
	k, ok := kernels.ByName(name)
	if !ok {
		t.Fatalf("missing kernel %q", name)
	}
	return k
}

// A cached measurement must be byte-identical to a fresh micro-simulation
// of the same key — that is the store's entire contract.
func TestStoreHitIsBitIdentical(t *testing.T) {
	s := NewStore()
	k := mustKernelT(t, "matmul")
	cfg := power2.Config{Seed: 11}

	fresh := MeasureRunKernel(k, cfg, 50_000)
	first := s.Measure(k, cfg, 50_000)  // miss: simulates
	second := s.Measure(k, cfg, 50_000) // hit: cached

	if first != fresh {
		t.Fatalf("store miss diverged from direct measurement:\n store %+v\n fresh %+v", first, fresh)
	}
	if second != fresh {
		t.Fatalf("store hit diverged from direct measurement:\n store %+v\n fresh %+v", second, fresh)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// Keys must separate everything that changes the simulation: kernel,
// budget, seed, and any config knob.
func TestStoreKeySeparation(t *testing.T) {
	s := NewStore()
	k := mustKernelT(t, "matmul")

	s.Measure(k, power2.Config{Seed: 1}, 10_000)
	variants := []struct {
		name string
		cfg  power2.Config
		n    uint64
	}{
		{"seed", power2.Config{Seed: 2}, 10_000},
		{"budget", power2.Config{Seed: 1}, 20_000},
		{"policy", power2.Config{Seed: 1, Policy: power2.RoundRobin}, 10_000},
		{"quad", power2.Config{Seed: 1, QuadCountsAsTwo: true}, 10_000},
		{"memory", power2.Config{Seed: 1, MemoryBytes: 32 << 20}, 10_000},
	}
	want := 1
	for _, v := range variants {
		s.Measure(k, v.cfg, v.n)
		want++
		if got := s.Len(); got != want {
			t.Fatalf("after %s variant: store has %d entries, want %d (key collision)", v.name, got, want)
		}
	}
	if st := s.Stats(); st.Hits != 0 {
		t.Fatalf("stats = %+v, want no hits across distinct keys", st)
	}
}

// Defaulted and explicit configurations that resolve identically must
// share an entry.
func TestStoreKeyCanonicalization(t *testing.T) {
	s := NewStore()
	k := mustKernelT(t, "sequential")

	implicit := power2.Config{Seed: 3}
	explicit := power2.Config{Seed: 3, PageFaultCycles: 10000, PageFaultInstrs: 3000,
		ZeroFillCycles: 800, ZeroFillInstrs: 300}
	a := s.Measure(k, implicit, 10_000)
	b := s.Measure(k, explicit, 10_000)
	if a != b {
		t.Fatal("identical resolved configs produced different measurements")
	}
	if s.Len() != 1 {
		t.Fatalf("store has %d entries, want 1 (defaults not canonicalized into the key)", s.Len())
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// Concurrent mixed hit/miss traffic must be race-free (run under -race in
// CI) and converge to one entry per key with every caller seeing the same
// value.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	k := mustKernelT(t, "comm")
	ref := MeasureRunKernel(k, power2.Config{Seed: 5}, 10_000)

	var wg sync.WaitGroup
	const goroutines = 8
	results := make([]Measurement, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				results[g] = s.Measure(k, power2.Config{Seed: 5}, 10_000)
			}
		}(g)
	}
	wg.Wait()
	for g, m := range results {
		if m != ref {
			t.Fatalf("goroutine %d saw a measurement diverging from the reference", g)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("store has %d entries, want 1", s.Len())
	}
}

// Entries must come out in a stable order regardless of insertion order —
// persisted caches are diffed byte-for-byte.
func TestStoreEntriesDeterministic(t *testing.T) {
	build := func(order []int) []Measurement {
		s := NewStore()
		keys := []struct {
			kernel string
			cfg    power2.Config
			n      uint64
		}{
			{"matmul", power2.Config{Seed: 1}, 10_000},
			{"comm", power2.Config{Seed: 2}, 10_000},
			{"matmul", power2.Config{Seed: 1}, 20_000},
			{"matmul", power2.Config{Seed: 9}, 10_000},
		}
		for _, i := range order {
			kk := keys[i]
			s.Measure(mustKernelT(t, kk.kernel), kk.cfg, kk.n)
		}
		return s.Entries()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if len(a) != len(b) {
		t.Fatalf("entry counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs across insertion orders: %q/%d vs %q/%d",
				i, a[i].Kernel, a[i].Instrs, b[i].Kernel, b[i].Instrs)
		}
	}
}

// MeasureStandardStore with a warm store must reproduce the uncached
// standard profiles exactly, at any worker count.
func TestMeasureStandardStoreEquivalence(t *testing.T) {
	reference := MeasureStandardStore(nil, 42, 1)
	s := NewStore()
	for _, workers := range []int{1, 4} {
		got := MeasureStandardStore(s, 42, workers)
		if got != reference {
			t.Fatalf("store-backed standard profiles (workers=%d) diverged from uncached reference", workers)
		}
	}
	// Second pass: all hits, still identical.
	if got := MeasureStandardStore(s, 42, 2); got != reference {
		t.Fatal("warm-store standard profiles diverged from uncached reference")
	}
	if st := s.Stats(); st.Hits == 0 {
		t.Fatalf("stats = %+v, expected hits on the warm passes", st)
	}
}
