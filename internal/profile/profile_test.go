package profile

import (
	"math"
	"sync"
	"testing"

	"repro/internal/hpm"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/power2"
	"repro/internal/rng"
)

var (
	stdOnce sync.Once
	std     Standard
)

func standard(t *testing.T) Standard {
	t.Helper()
	stdOnce.Do(func() { std = MeasureStandard(1) })
	return std
}

func TestMeasureCFDSignature(t *testing.T) {
	p := standard(t).CFD
	if p.Name != "cfd" {
		t.Fatalf("name = %q", p.Name)
	}
	if p.Mflops < 22 || p.Mflops > 40 {
		t.Fatalf("CFD profile Mflops = %v", p.Mflops)
	}
	// Divides executed but not counted.
	if p.TrueDivPerSec <= 0 {
		t.Fatal("no true divides recorded")
	}
	if p.EventsPerSec[hpm.User][hpm.EvFPU0Div] != 0 {
		t.Fatal("divide counter rate should be 0")
	}
}

func TestMeasurePagingIsSystemHeavy(t *testing.T) {
	p := standard(t).Paging
	sysFXU := p.EventsPerSec[hpm.System][hpm.EvFXU0Instr] + p.EventsPerSec[hpm.System][hpm.EvFXU1Instr]
	userFXU := p.EventsPerSec[hpm.User][hpm.EvFXU0Instr] + p.EventsPerSec[hpm.User][hpm.EvFXU1Instr]
	if sysFXU <= userFXU {
		t.Fatalf("paging profile not system-heavy: sys %v vs user %v", sysFXU, userFXU)
	}
	if p.EventsPerSec[hpm.System][hpm.EvDMAWrite] == 0 {
		t.Fatal("paging profile has no page-in DMA")
	}
}

func TestCommProfileHasNoFlops(t *testing.T) {
	p := standard(t).Comm
	if p.Mflops != 0 {
		t.Fatalf("comm profile Mflops = %v, want 0", p.Mflops)
	}
	fxu := p.EventsPerSec[hpm.User][hpm.EvFXU0Instr] + p.EventsPerSec[hpm.User][hpm.EvFXU1Instr]
	if fxu == 0 {
		t.Fatal("comm profile has no FXU work (memcpy missing)")
	}
}

func TestMeasurePanicsOnEmptyStream(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Measure("empty", isa.NewSliceStream(nil), power2.Config{}, 10)
}

func TestScale(t *testing.T) {
	p := standard(t).CFD
	h := p.Scale(0.5)
	if math.Abs(h.Mflops-p.Mflops/2) > 1e-9 {
		t.Fatalf("scaled Mflops = %v", h.Mflops)
	}
	for m := 0; m < 2; m++ {
		for ev := range h.EventsPerSec[m] {
			if math.Abs(h.EventsPerSec[m][ev]-p.EventsPerSec[m][ev]/2) > 1e-9 {
				t.Fatalf("event %d not scaled", ev)
			}
		}
	}
}

func TestBlend(t *testing.T) {
	s := standard(t)
	b := Blend(s.CFD, 0.8, s.Comm)
	want := 0.8 * s.CFD.Mflops // comm has zero flops
	if math.Abs(b.Mflops-want) > 1e-9 {
		t.Fatalf("blended Mflops = %v, want %v", b.Mflops, want)
	}
	// FXU rate is the weighted mix (relative tolerance: rates are tens of
	// millions per second).
	for _, ev := range []hpm.Event{hpm.EvFXU0Instr, hpm.EvFXU1Instr} {
		want := 0.8*s.CFD.EventsPerSec[hpm.User][ev] + 0.2*s.Comm.EventsPerSec[hpm.User][ev]
		if diff := math.Abs(b.EventsPerSec[hpm.User][ev] - want); diff > 1e-6*want {
			t.Fatalf("blend event %v off by %v", ev, diff)
		}
	}
}

func TestBlendPanicsOutOfRange(t *testing.T) {
	s := standard(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Blend(s.CFD, 1.5, s.Comm)
}

func TestWithDMA(t *testing.T) {
	p := standard(t).CFD.WithDMA(24000, 17000)
	if p.EventsPerSec[hpm.User][hpm.EvDMARead] != 24000 {
		t.Fatal("DMA read rate not set")
	}
	if p.EventsPerSec[hpm.User][hpm.EvDMAWrite] != 17000 {
		t.Fatal("DMA write rate not set")
	}
}

func TestApplyAdvancesCounters(t *testing.T) {
	p := standard(t).CFD
	acc := hpm.NewAccumulator(hpm.New())
	p.Apply(acc, 900, rng.New(7)) // one 15-minute interval
	d := hpm.Sub64(hpm.Counts64{}, acc.Totals())
	r := hpm.UserRates(d, 900)
	// The reconstructed rates must match the profile within stochastic
	// rounding error — note 900 s of SP2 activity far exceeds what the
	// 32-bit hardware registers could hold, which is exactly why Apply
	// writes the daemon's extended totals.
	if math.Abs(r.MflopsAll-p.Mflops) > 0.05 {
		t.Fatalf("applied Mflops = %v, profile %v", r.MflopsAll, p.Mflops)
	}
}

func TestApplyStochasticRoundingExpectation(t *testing.T) {
	// A rate of 0.3 events/sec over 1 second applied many times must
	// average ~0.3 events.
	var p Profile
	p.EventsPerSec[hpm.User][hpm.EvICacheReload] = 0.3
	rnd := rng.New(11)
	total := uint64(0)
	const n = 20000
	for i := 0; i < n; i++ {
		acc := hpm.NewAccumulator(hpm.New())
		p.Apply(acc, 1, rnd)
		total += acc.Totals().Get(hpm.User, hpm.EvICacheReload)
	}
	mean := float64(total) / n
	if math.Abs(mean-0.3) > 0.02 {
		t.Fatalf("stochastic rounding mean = %v, want ~0.3", mean)
	}
}

func TestApplyNilRNGTruncates(t *testing.T) {
	var p Profile
	p.EventsPerSec[hpm.User][hpm.EvCycles] = 0.9
	acc := hpm.NewAccumulator(hpm.New())
	p.Apply(acc, 1, nil)
	if got := acc.Totals().Get(hpm.User, hpm.EvCycles); got != 0 {
		t.Fatalf("truncating apply added %d", got)
	}
}

func TestApplyNegativePanics(t *testing.T) {
	var p Profile
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.Apply(hpm.NewAccumulator(hpm.New()), -1, nil)
}

func TestApplyRespectsDivideBug(t *testing.T) {
	// Even if a profile somehow carried a divide rate, the accumulator of
	// a bugged monitor must swallow it, as the hardware did.
	var p Profile
	p.EventsPerSec[hpm.User][hpm.EvFPU0Div] = 1000
	acc := hpm.NewAccumulator(hpm.New())
	p.Apply(acc, 1, nil)
	if got := acc.Totals().Get(hpm.User, hpm.EvFPU0Div); got != 0 {
		t.Fatalf("divide counts leaked through: %d", got)
	}
}

func TestStandardOrdering(t *testing.T) {
	s := standard(t)
	if !(s.CFD.Mflops < s.BT.Mflops && s.BT.Mflops < s.MatMul.Mflops) {
		t.Fatalf("profile ordering violated: cfd=%v bt=%v matmul=%v",
			s.CFD.Mflops, s.BT.Mflops, s.MatMul.Mflops)
	}
	if s.Paging.Mflops > s.CFD.Mflops/2 {
		t.Fatalf("paging profile too fast: %v", s.Paging.Mflops)
	}
}

func TestMeasureKernelDeterministic(t *testing.T) {
	k, _ := kernels.ByName("bt")
	a := MeasureKernel(k, power2.Config{Seed: 3}, 100000)
	b := MeasureKernel(k, power2.Config{Seed: 3}, 100000)
	if a != b {
		t.Fatal("measurement not deterministic")
	}
}

func TestMeasureStandardWorkersBitIdentical(t *testing.T) {
	serial := MeasureStandardWorkers(3, 1)
	parallel := MeasureStandardWorkers(3, 4)
	if serial != parallel {
		t.Fatal("parallel MeasureStandard differs from serial")
	}
	// And the default entry point agrees with both.
	if def := MeasureStandard(3); def != serial {
		t.Fatal("MeasureStandard differs from MeasureStandardWorkers")
	}
}
