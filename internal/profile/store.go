package profile

// The memoized profile store. Every consumer of the microsim — the
// standard campaign profiles, cmd/calibrate, cmd/experiments, the NPB
// table, the ablation benches — measures the same handful of kernels
// under the same handful of configurations, and the simulator is fully
// deterministic in (kernel, resolved config, instruction budget). So a
// measurement is a pure function of its key, and caching it is invisible:
// a hit returns byte-for-byte the Measurement a fresh micro-simulation
// would produce. That is the whole determinism argument, and the golden
// campaign hash pins it (store on and off produce the identical Result).
//
// What-if experiments that re-arm the monitor's event selection
// (analysis.MeasureIOWaitWhatIf) must NOT go through the store: the
// selection is armed on the live CPU mid-run and is not part of the key.

import (
	"sort"
	"sync"

	"repro/internal/kernels"
	"repro/internal/power2"
	"repro/internal/telemetry"
)

// hpmtel instrumentation: cache effectiveness plus the latency of the
// miss path (a full micro-simulation). Every Store in the process feeds
// the same handles — the store is a process-wide concern, and the
// per-instance split already exists in Stats().
var (
	telStore       = telemetry.Default.Scope("profile.store")
	telStoreHits   = telStore.Counter("hits")
	telStoreMisses = telStore.Counter("misses")
	telStoreLoadNs = telStore.Histogram("load_ns", telemetry.DurationBuckets)
)

// Key identifies one deterministic micro-simulation: the registry kernel
// (whose stream is instantiated from the config seed), the fully-resolved
// CPU configuration, and the instruction budget.
type Key struct {
	Kernel string
	Config power2.Resolved
	Instrs uint64
}

// StoreStats reports cache effectiveness.
type StoreStats struct {
	Hits   uint64
	Misses uint64
}

// Store is a concurrency-safe memo table of kernel measurements. The zero
// value is not usable; construct with NewStore.
type Store struct {
	mu           sync.Mutex
	measurements map[Key]Measurement // guarded by mu
	hits         uint64              // guarded by mu
	misses       uint64              // guarded by mu
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{measurements: make(map[Key]Measurement)}
}

// DefaultStore is the process-wide store the standard measurement paths
// consult. Sharing it across callers is safe and deterministic: every
// entry is a pure function of its key.
var DefaultStore = NewStore()

// Measure returns the measurement for (k, cfg, n), micro-simulating on a
// miss and memoizing the result. The simulation runs outside the lock; if
// two goroutines race on the same cold key both compute the identical
// value, so the duplicated work is the only cost.
func (s *Store) Measure(k kernels.Kernel, cfg power2.Config, n uint64) Measurement {
	key := Key{Kernel: k.Name, Config: cfg.Resolve(), Instrs: n}
	s.mu.Lock()
	if m, ok := s.measurements[key]; ok {
		s.hits++
		s.mu.Unlock()
		telStoreHits.Inc()
		return m
	}
	s.misses++
	s.mu.Unlock()
	telStoreMisses.Inc()

	w := telemetry.StartWatch()
	m := MeasureRunKernel(k, cfg, n)
	w.Record(telStoreLoadNs)
	s.mu.Lock()
	s.measurements[key] = m
	s.mu.Unlock()
	return m
}

// MeasureProfile is Measure with the rate derivation applied — the common
// call shape for campaign code.
func (s *Store) MeasureProfile(k kernels.Kernel, cfg power2.Config, n uint64) Profile {
	return s.Measure(k, cfg, n).Profile()
}

// Lookup returns the cached measurement for the key, if present, without
// simulating.
func (s *Store) Lookup(key Key) (Measurement, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.measurements[key]
	return m, ok
}

// Add inserts a measurement keyed by its identifying fields (used when
// loading a persisted cache). The caller vouches that the measurement was
// produced by the canonical simulation for that key.
func (s *Store) Add(m Measurement) {
	key := Key{Kernel: m.Kernel, Config: m.Config, Instrs: m.Instrs}
	s.mu.Lock()
	s.measurements[key] = m
	s.mu.Unlock()
}

// AddAll inserts a batch of measurements.
func (s *Store) AddAll(ms []Measurement) {
	for _, m := range ms {
		s.Add(m)
	}
}

// Len reports the number of cached measurements.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.measurements)
}

// Stats reports hit/miss counts since construction.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Hits: s.hits, Misses: s.misses}
}

// Entries returns every cached measurement in a deterministic order
// (kernel name, then instruction budget, then seed), so persisted caches
// are byte-stable across runs.
func (s *Store) Entries() []Measurement {
	s.mu.Lock()
	out := make([]Measurement, 0, len(s.measurements))
	for _, m := range s.measurements {
		out = append(out, m)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.Instrs != b.Instrs {
			return a.Instrs < b.Instrs
		}
		if a.Config.Seed != b.Config.Seed {
			return a.Config.Seed < b.Config.Seed
		}
		if a.Config.MemoryBytes != b.Config.MemoryBytes {
			return a.Config.MemoryBytes < b.Config.MemoryBytes
		}
		if a.Config.Policy != b.Config.Policy {
			return a.Config.Policy < b.Config.Policy
		}
		if a.Config.QuadCountsAsTwo != b.Config.QuadCountsAsTwo {
			return b.Config.QuadCountsAsTwo
		}
		if a.Config.DCache.Policy != b.Config.DCache.Policy {
			return a.Config.DCache.Policy < b.Config.DCache.Policy
		}
		return a.Config.PageFaultCycles < b.Config.PageFaultCycles
	})
	return out
}
