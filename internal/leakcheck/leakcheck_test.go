package leakcheck

import (
	"net"
	"runtime"
	"testing"
	"time"
)

// TestCleanPasses: a body that releases everything it took must pass.
func TestCleanPasses(t *testing.T) {
	before := Take()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { <-done }()
	close(done)
	ln.Close()
	Check(t, before)
}

// TestDetectsGoroutineLeak: a held goroutine is reported. Uses a fake
// testing.TB so the failure is observed, not suffered.
func TestDetectsGoroutineLeak(t *testing.T) {
	before := Take()
	hold := make(chan struct{})
	go func() { <-hold }()
	rec := &recorder{TB: t}
	checkFast(rec, before)
	if !rec.failed {
		t.Error("leaked goroutine not detected")
	}
	close(hold)
}

// TestDetectsFDLeak: a held socket is reported on platforms where FDs
// are countable.
func TestDetectsFDLeak(t *testing.T) {
	if Take().FDs < 0 {
		t.Skip("fd counting unavailable on this platform")
	}
	before := Take()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	rec := &recorder{TB: t}
	checkFast(rec, before)
	if !rec.failed {
		t.Error("leaked fd not detected")
	}
}

// checkFast is Check with a tiny settle budget, so the leak tests don't
// spend the full budget waiting for a leak that will never clear.
func checkFast(tb testing.TB, before Snapshot) {
	deadline := time.Now().Add(50 * time.Millisecond)
	for {
		if leaked(before, Take()) == "" {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
	}
	now := Take()
	tb.Errorf("leakcheck: %s", leaked(before, now))
}

// recorder captures Errorf instead of failing the real test.
type recorder struct {
	testing.TB
	failed bool
}

func (r *recorder) Errorf(string, ...any) { r.failed = true }
func (r *recorder) Helper()               {}
