// Package leakcheck counts goroutines and open file descriptors before
// and after a test so resource leaks fail loudly. The sustained
// collection service holds sockets and goroutines by design; the soak
// harness and the loopback integration test bracket themselves with a
// Snapshot/Check pair to prove everything is returned on Close. Use it
// only in tests that do not run in parallel — the counts are
// process-wide.
package leakcheck

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// Snapshot is a point-in-time reading of the process's resource counts.
type Snapshot struct {
	Goroutines int
	// FDs is the open file-descriptor count, or -1 where the platform
	// offers no way to read it (then the FD check is skipped).
	FDs int
}

// Take reads the current counts.
func Take() Snapshot {
	return Snapshot{Goroutines: runtime.NumGoroutine(), FDs: openFDs()}
}

// openFDs counts entries in /proc/self/fd; -1 if unreadable (non-Linux).
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir call itself holds one descriptor for the directory.
	return len(ents) - 1
}

// settleBudget bounds how long Check waits for counts to fall back to
// the baseline. Goroutine exits and kernel-side socket teardown lag the
// Close call that triggered them, so a leak check that reads the counts
// immediately flakes; 5 s is far beyond any honest teardown.
const settleBudget = 5 * time.Second

// Check fails the test if the process holds more goroutines or file
// descriptors than the before snapshot, after allowing teardown to
// settle. Call it deferred, after every Close in the test body has run.
func Check(tb testing.TB, before Snapshot) {
	tb.Helper()
	deadline := time.Now().Add(settleBudget)
	var now Snapshot
	for {
		now = Take()
		if leaked(before, now) == "" {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	tb.Errorf("leakcheck: %s (before: %d goroutines / %d fds, after: %d goroutines / %d fds)",
		leaked(before, now), before.Goroutines, before.FDs, now.Goroutines, now.FDs)
}

// leaked names what is still held beyond the baseline, or "" when clean.
func leaked(before, now Snapshot) string {
	switch {
	case now.Goroutines > before.Goroutines:
		return "goroutines leaked"
	case before.FDs >= 0 && now.FDs > before.FDs:
		return "file descriptors leaked"
	}
	return ""
}
