// Package simclock is a minimal discrete-event simulation core: a simulated
// clock, a priority queue of timestamped events, and a scheduler that runs
// them in time order.
//
// The campaign layer uses it to advance the cluster through nine months of
// 15-minute sampling intervals, job arrivals, and job completions without
// any wall-clock dependence.
package simclock

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the campaign.
type Time float64

// Infinity is a time later than any event.
const Infinity = Time(math.MaxFloat64)

// Minutes returns a duration of m minutes.
func Minutes(m float64) Time { return Time(m * 60) }

// Hours returns a duration of h hours.
func Hours(h float64) Time { return Time(h * 3600) }

// Days returns a duration of d days.
func Days(d float64) Time { return Time(d * 86400) }

// Seconds reports the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Day reports which campaign day (0-based) the instant falls in.
func (t Time) Day() int { return int(float64(t) / 86400) }

// String renders the time as d:hh:mm:ss.
func (t Time) String() string {
	s := float64(t)
	d := int(s / 86400)
	s -= float64(d) * 86400
	h := int(s / 3600)
	s -= float64(h) * 3600
	m := int(s / 60)
	s -= float64(m) * 60
	return fmt.Sprintf("%dd %02d:%02d:%05.2f", d, h, m, s)
}

// Event is a scheduled callback.
type Event struct {
	At       Time
	Fn       func()
	seq      uint64 // tie-break so same-time events run FIFO
	index    int
	canceled bool
}

// Cancel marks the event so it will be skipped when its time arrives.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether the event was canceled.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Clock is a discrete-event scheduler. The zero value is ready to use.
type Clock struct {
	now   Time
	queue eventQueue
	seq   uint64
	ran   uint64
}

// Now reports the current simulated time.
func (c *Clock) Now() Time { return c.now }

// EventsRun reports how many events have executed.
func (c *Clock) EventsRun() uint64 { return c.ran }

// Pending reports how many events are queued (including canceled ones not
// yet reaped).
func (c *Clock) Pending() int { return len(c.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// a discrete-event simulation that rewinds time is corrupt.
func (c *Clock) At(t Time, fn func()) *Event {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling at %v before now %v", t, c.now))
	}
	e := &Event{At: t, Fn: fn, seq: c.seq}
	c.seq++
	heap.Push(&c.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (c *Clock) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return c.At(c.now+d, fn)
}

// Every schedules fn at t, t+period, t+2*period, ... until the returned
// stop function is called. fn receives the firing time.
func (c *Clock) Every(start Time, period Time, fn func(Time)) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive period %v", period))
	}
	stopped := false
	var schedule func(Time)
	schedule = func(at Time) {
		c.At(at, func() {
			if stopped {
				return
			}
			fn(c.now)
			if !stopped {
				schedule(c.now + period)
			}
		})
	}
	schedule(start)
	return func() { stopped = true }
}

// EveryUntil schedules fn at start, start+period, ... for every firing
// time not after limit. Unlike Every it needs no stop function and never
// enqueues an event past limit — the shape a fixed-horizon sampler wants:
// when the last tick has run, the queue holds nothing of the ticker's.
func (c *Clock) EveryUntil(start, period, limit Time, fn func(Time)) {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive period %v", period))
	}
	var schedule func(Time)
	schedule = func(at Time) {
		if at > limit {
			return
		}
		c.At(at, func() {
			fn(c.now)
			schedule(c.now + period)
		})
	}
	schedule(start)
}

// Step runs the next event, advancing the clock to its time. It reports
// whether an event was run (false when the queue is empty). Canceled events
// are reaped silently without counting as a step.
func (c *Clock) Step() bool {
	for len(c.queue) > 0 {
		e := heap.Pop(&c.queue).(*Event)
		if e.canceled {
			continue
		}
		c.now = e.At
		c.ran++
		e.Fn()
		return true
	}
	return false
}

// RunUntil executes events in time order until the queue is exhausted or
// the next event would occur after limit. The clock is left at the time of
// the last executed event (or limit, whichever the caller prefers to read;
// AdvanceTo can move it to limit exactly).
func (c *Clock) RunUntil(limit Time) {
	for len(c.queue) > 0 {
		// Peek without popping: queue[0] is the earliest event.
		next := c.queue[0]
		if next.canceled {
			heap.Pop(&c.queue)
			continue
		}
		if next.At > limit {
			return
		}
		c.Step()
	}
}

// Run executes all queued events.
func (c *Clock) Run() { c.RunUntil(Infinity) }

// AdvanceTo moves the clock forward to t without running events; it panics
// if an uncanceled event earlier than t is pending or if t is in the past.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: AdvanceTo(%v) before now %v", t, c.now))
	}
	for len(c.queue) > 0 && c.queue[0].canceled {
		heap.Pop(&c.queue)
	}
	if len(c.queue) > 0 && c.queue[0].At < t {
		panic(fmt.Sprintf("simclock: AdvanceTo(%v) skips pending event at %v", t, c.queue[0].At))
	}
	c.now = t
}
