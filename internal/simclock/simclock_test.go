package simclock

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeHelpers(t *testing.T) {
	if Minutes(15) != Time(900) {
		t.Fatalf("Minutes(15) = %v", Minutes(15))
	}
	if Hours(2) != Time(7200) {
		t.Fatalf("Hours(2) = %v", Hours(2))
	}
	if Days(1) != Time(86400) {
		t.Fatalf("Days(1) = %v", Days(1))
	}
	if Days(1.5).Day() != 1 {
		t.Fatalf("Day() = %d", Days(1.5).Day())
	}
	if got := Time(90061.5).String(); got != "1d 01:01:01.50" {
		t.Fatalf("String = %q", got)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	var c Clock
	var order []int
	c.At(Time(30), func() { order = append(order, 3) })
	c.At(Time(10), func() { order = append(order, 1) })
	c.At(Time(20), func() { order = append(order, 2) })
	c.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if c.Now() != Time(30) {
		t.Fatalf("Now = %v", c.Now())
	}
	if c.EventsRun() != 3 {
		t.Fatalf("EventsRun = %d", c.EventsRun())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	var c Clock
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(Time(5), func() { order = append(order, i) })
	}
	c.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events not FIFO: %v", order)
	}
}

func TestAfter(t *testing.T) {
	var c Clock
	var at Time
	c.At(Time(10), func() {
		c.After(Time(5), func() { at = c.Now() })
	})
	c.Run()
	if at != Time(15) {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var c Clock
	c.At(Time(10), func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		c.At(Time(5), func() {})
	})
	c.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	c.After(Time(-1), func() {})
}

func TestCancel(t *testing.T) {
	var c Clock
	fired := false
	e := c.At(Time(10), func() { fired = true })
	e.Cancel()
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	c.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if c.EventsRun() != 0 {
		t.Fatalf("EventsRun = %d, want 0", c.EventsRun())
	}
}

func TestRunUntilStopsBeforeLaterEvents(t *testing.T) {
	var c Clock
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		c.At(at, func() { fired = append(fired, at) })
	}
	c.RunUntil(Time(25))
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d", c.Pending())
	}
	c.Run()
	if len(fired) != 4 {
		t.Fatalf("after full Run fired = %v", fired)
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	var c Clock
	fired := false
	c.At(Time(25), func() { fired = true })
	c.RunUntil(Time(25))
	if !fired {
		t.Fatal("event exactly at limit did not fire")
	}
}

func TestEvery(t *testing.T) {
	var c Clock
	var fires []Time
	stop := c.Every(Minutes(15), Minutes(15), func(at Time) {
		fires = append(fires, at)
		if len(fires) == 4 {
			// stop is captured below; canceling from inside the callback.
		}
	})
	c.RunUntil(Minutes(60))
	stop()
	c.Run()
	if len(fires) != 4 {
		t.Fatalf("fires = %v, want 4 firings in the first hour", fires)
	}
	for i, f := range fires {
		want := Minutes(15 * float64(i+1))
		if f != want {
			t.Fatalf("fire %d at %v, want %v", i, f, want)
		}
	}
}

func TestEveryStopInsideCallback(t *testing.T) {
	var c Clock
	count := 0
	var stop func()
	stop = c.Every(Time(1), Time(1), func(Time) {
		count++
		if count == 3 {
			stop()
		}
	})
	c.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestEveryPanicsOnBadPeriod(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	c.Every(Time(0), Time(0), func(Time) {})
}

func TestAdvanceTo(t *testing.T) {
	var c Clock
	c.AdvanceTo(Time(100))
	if c.Now() != Time(100) {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestAdvanceToPanicsOverPendingEvent(t *testing.T) {
	var c Clock
	c.At(Time(50), func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo over pending event did not panic")
		}
	}()
	c.AdvanceTo(Time(100))
}

func TestAdvanceToSkipsCanceledEvents(t *testing.T) {
	var c Clock
	e := c.At(Time(50), func() {})
	e.Cancel()
	c.AdvanceTo(Time(100)) // must not panic
	if c.Now() != Time(100) {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestAdvanceToBackwardsPanics(t *testing.T) {
	var c Clock
	c.AdvanceTo(Time(10))
	defer func() {
		if recover() == nil {
			t.Fatal("backwards AdvanceTo did not panic")
		}
	}()
	c.AdvanceTo(Time(5))
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	var c Clock
	if c.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestNestedScheduling(t *testing.T) {
	// Events scheduled by running events must interleave correctly.
	var c Clock
	var order []string
	c.At(Time(10), func() {
		order = append(order, "a")
		c.At(Time(15), func() { order = append(order, "nested") })
	})
	c.At(Time(20), func() { order = append(order, "b") })
	c.Run()
	want := []string{"a", "nested", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestEventOrderProperty(t *testing.T) {
	// For arbitrary event times, execution order must be non-decreasing.
	f := func(raw []uint16) bool {
		var c Clock
		var times []Time
		for _, v := range raw {
			at := Time(v)
			c.At(at, func() { times = append(times, c.Now()) })
		}
		c.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var c Clock
		for j := 0; j < 1000; j++ {
			c.At(Time(j%97), func() {})
		}
		c.Run()
	}
}

func TestEveryUntil(t *testing.T) {
	var c Clock
	var fired []Time
	c.EveryUntil(10, 10, 45, func(at Time) { fired = append(fired, at) })
	c.Run()
	want := []Time{10, 20, 30, 40}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	// Inclusive limit, and nothing left on the queue afterwards.
	fired = nil
	c2 := &Clock{}
	c2.EveryUntil(5, 5, 15, func(at Time) { fired = append(fired, at) })
	c2.Run()
	if len(fired) != 3 || fired[2] != 15 {
		t.Fatalf("inclusive-limit firings = %v, want [5 10 15]", fired)
	}
	if c2.Pending() != 0 {
		t.Fatalf("%d events left queued past the limit", c2.Pending())
	}
}

func TestEveryUntilBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var c Clock
	c.EveryUntil(0, 0, 10, func(Time) {})
}
