package power2

import (
	"testing"
	"testing/quick"

	"repro/internal/hpm"
	"repro/internal/isa"
	"repro/internal/units"
)

// fmaKernel builds a cache-resident, dependency-free fma loop: the best
// case for the POWER2 (4 flops/cycle peak).
func fmaKernel(iters uint64) *isa.Loop {
	b := isa.NewBuilder()
	// Four independent fma chains per loop body with distinct accumulators
	// (fma latency is 2, so two chains per unit keep both FPUs saturated),
	// operands preloaded in registers: no memory traffic.
	x, y := uint8(8), uint8(9)
	for acc := uint8(0); acc < 4; acc++ {
		b.FMA(acc, x, y, acc)
	}
	return b.Build(iters, 0x10000)
}

func userDelta(c *CPU) hpm.Delta {
	return hpm.Sub(hpm.Snapshot{}, c.Monitor().Snapshot())
}

func TestFMAKernelCounts(t *testing.T) {
	c := New(Config{})
	st := c.Run(fmaKernel(1000))
	if st.Instructions != 4000 {
		t.Fatalf("instructions = %d", st.Instructions)
	}
	if st.Flops != 8000 {
		t.Fatalf("flops = %d, want 8000 (4 fma x 2 flops x 1000)", st.Flops)
	}
	d := userDelta(c)
	// fma counting convention: each fma ticks the add counter AND the fma
	// counter on its unit.
	adds := d.Get(hpm.User, hpm.EvFPU0Add) + d.Get(hpm.User, hpm.EvFPU1Add)
	fmas := d.Get(hpm.User, hpm.EvFPU0FMA) + d.Get(hpm.User, hpm.EvFPU1FMA)
	if adds != 4000 || fmas != 4000 {
		t.Fatalf("adds=%d fmas=%d, want 4000 each", adds, fmas)
	}
	instr := d.Get(hpm.User, hpm.EvFPU0Instr) + d.Get(hpm.User, hpm.EvFPU1Instr)
	if instr != 4000 {
		t.Fatalf("FPU instructions = %d", instr)
	}
}

func TestSerialChainStaysOnFPU0(t *testing.T) {
	// A fully serial dependency chain never finds FPU1 earlier than FPU0,
	// so it stays on the preferred unit.
	b := isa.NewBuilder()
	b.FMA(0, 0, 1, 0) // acc = acc*r1 + acc: depends on itself
	c := New(Config{})
	c.Run(b.Build(1000, 0))
	d := userDelta(c)
	fpu0 := d.Get(hpm.User, hpm.EvFPU0Instr)
	if fpu0 < 1000 {
		t.Fatalf("serial chain executed only %d instrs on FPU0", fpu0)
	}
}

func TestMulticycleOpsDrainOnFPU1(t *testing.T) {
	// Divides and square roots process on the second unit while its backup
	// register lets FPU0 continue with the main stream (paper §5).
	b := isa.NewBuilder()
	b.FDiv(0, 0, 1) // serial divides
	b.FAdd(2, 2, 4) // serial add chain: must keep flowing on FPU0
	c := New(Config{})
	c.Run(b.Build(200, 0))
	d := userDelta(c)
	if got := d.Get(hpm.User, hpm.EvFPU1Instr); got != 200 {
		t.Fatalf("FPU1 executed %d instructions, want the 200 divides", got)
	}
	if got := d.Get(hpm.User, hpm.EvFPU0Add); got != 200 {
		t.Fatalf("FPU0 executed %d adds, want 200", got)
	}
}

func TestIndependentPairsSplitAcrossFPUs(t *testing.T) {
	c := New(Config{})
	c.Run(fmaKernel(1000))
	d := userDelta(c)
	f0 := d.Get(hpm.User, hpm.EvFPU0Instr)
	f1 := d.Get(hpm.User, hpm.EvFPU1Instr)
	if f0 == 0 || f1 == 0 {
		t.Fatalf("FPU split degenerate: %d/%d", f0, f1)
	}
	// FPU0 must do at least as much as FPU1 under FPU0-first issue.
	if f0 < f1 {
		t.Fatalf("FPU0 (%d) < FPU1 (%d) under FPU0-first policy", f0, f1)
	}
}

func TestRoundRobinAblationBalancesFPUs(t *testing.T) {
	c := New(Config{Policy: RoundRobin})
	c.Run(fmaKernel(1000))
	d := userDelta(c)
	f0 := d.Get(hpm.User, hpm.EvFPU0Instr)
	f1 := d.Get(hpm.User, hpm.EvFPU1Instr)
	if f0 != f1 {
		t.Fatalf("round robin should balance exactly: %d vs %d", f0, f1)
	}
}

func TestPeakKernelApproachesPeakRate(t *testing.T) {
	c := New(Config{})
	st := c.Run(fmaKernel(100000))
	// 2 independent fma/cycle = 4 flops/cycle = ~267 Mflops at 66.7 MHz.
	// Allow warm-up slack.
	if got := st.FlopsPerCycle(); got < 3.5 {
		t.Fatalf("peak kernel flops/cycle = %v, want ~4", got)
	}
	if mf := st.Mflops(); mf < 230 || mf > 270 {
		t.Fatalf("peak kernel Mflops = %v, want ~267", mf)
	}
}

func TestCyclesCounterMatchesRunCycles(t *testing.T) {
	c := New(Config{})
	st := c.Run(fmaKernel(500))
	d := userDelta(c)
	if got := d.Get(hpm.User, hpm.EvCycles); got != st.Cycles {
		t.Fatalf("cycles counter = %d, run cycles = %d", got, st.Cycles)
	}
}

func TestStreamingLoadsMissEvery32(t *testing.T) {
	b := isa.NewBuilder()
	b.Load(0, isa.Ref{Base: 0x100000, Stride: 8})
	c := New(Config{})
	const n = 32 * 256
	st := c.Run(b.Build(n, 0))
	d := userDelta(c)
	misses := d.Get(hpm.User, hpm.EvDCacheMiss)
	if misses != n/32 {
		t.Fatalf("misses = %d, want %d", misses, n/32)
	}
	reloads := d.Get(hpm.User, hpm.EvDCacheReload)
	if reloads != misses {
		t.Fatalf("reloads = %d != misses %d", reloads, misses)
	}
	if st.MemRefs != n {
		t.Fatalf("memrefs = %d", st.MemRefs)
	}
}

func TestTLBMissStallsBetween36And54(t *testing.T) {
	// One load per page: every access TLB-misses after the first pages.
	b := isa.NewBuilder()
	b.Load(0, isa.Ref{Base: 0, Stride: int64(units.PageBytes)})
	c := New(Config{})
	const n = 2048 // > 512 TLB entries
	st := c.Run(b.Build(n, 0))
	d := userDelta(c)
	tlbMisses := d.Get(hpm.User, hpm.EvTLBMiss)
	if tlbMisses != n {
		t.Fatalf("TLB misses = %d, want %d (one per new page)", tlbMisses, n)
	}
	// Each miss stalls 36-54 cycles plus the cache miss 8: average cycle
	// cost must be within those bounds.
	perRef := float64(st.Cycles) / float64(n)
	if perRef < 36 || perRef > 75 {
		t.Fatalf("cycles per page-stride ref = %v, want ~45-60", perRef)
	}
}

func TestDirtyCastoutsCountDCacheStore(t *testing.T) {
	// Stream stores over a range far exceeding the cache: every line
	// eventually evicts dirty.
	b := isa.NewBuilder()
	b.Store(0, isa.Ref{Base: 0, Stride: 8})
	c := New(Config{})
	const n = 64 * 1024 // 512 KB of stores = 2x cache size
	c.Run(b.Build(n, 0))
	d := userDelta(c)
	if d.Get(hpm.User, hpm.EvDCacheStore) == 0 {
		t.Fatal("no castouts counted for streaming stores")
	}
}

func TestICacheMissOnlyOnFirstTrip(t *testing.T) {
	c := New(Config{})
	c.Run(fmaKernel(10000))
	d := userDelta(c)
	// The loop body is one I-cache line; all iterations after the first
	// hit. (20000 instructions, at most a couple of reloads.)
	if got := d.Get(hpm.User, hpm.EvICacheReload); got > 2 {
		t.Fatalf("icache reloads = %d, want <= 2 for a tight loop", got)
	}
}

func TestBranchesCountICUType1(t *testing.T) {
	b := isa.NewBuilder()
	b.FAdd(0, 1, 2)
	b.Branch()
	c := New(Config{})
	c.Run(b.Build(100, 0))
	d := userDelta(c)
	if got := d.Get(hpm.User, hpm.EvICUType1); got != 100 {
		t.Fatalf("ICU type I = %d, want 100", got)
	}
}

func TestCondRegCountsICUType2(t *testing.T) {
	b := isa.NewBuilder()
	b.CondReg()
	c := New(Config{})
	c.Run(b.Build(50, 0))
	d := userDelta(c)
	if got := d.Get(hpm.User, hpm.EvICUType2); got != 50 {
		t.Fatalf("ICU type II = %d, want 50", got)
	}
}

func TestFXU1PreferredOverFXU0(t *testing.T) {
	b := isa.NewBuilder()
	b.Load(0, isa.Ref{Base: 0, Stride: 8, WorkingSet: 4096})
	b.FAdd(1, 1, 2)
	b.Branch()
	c := New(Config{})
	c.Run(b.Build(5000, 0))
	d := userDelta(c)
	f0 := d.Get(hpm.User, hpm.EvFXU0Instr)
	f1 := d.Get(hpm.User, hpm.EvFXU1Instr)
	if f1 <= f0 {
		t.Fatalf("FXU1 (%d) should exceed FXU0 (%d), as in Table 3", f1, f0)
	}
}

func TestIntMulDivOnlyOnFXU1(t *testing.T) {
	b := isa.NewBuilder()
	b.IntMulDiv(0, 1)
	c := New(Config{})
	c.Run(b.Build(100, 0))
	d := userDelta(c)
	if got := d.Get(hpm.User, hpm.EvFXU0Instr); got != 0 {
		t.Fatalf("addressing mul/div ran on FXU0: %d", got)
	}
	if got := d.Get(hpm.User, hpm.EvFXU1Instr); got != 100 {
		t.Fatalf("FXU1 = %d, want 100", got)
	}
}

func TestQuadCountsAsOneInstructionByDefault(t *testing.T) {
	b := isa.NewBuilder()
	b.LoadQuad(0, isa.Ref{Base: 0, Stride: 16, WorkingSet: 4096})
	c := New(Config{})
	st := c.Run(b.Build(100, 0))
	d := userDelta(c)
	fxu := d.Get(hpm.User, hpm.EvFXU0Instr) + d.Get(hpm.User, hpm.EvFXU1Instr)
	if fxu != 100 {
		t.Fatalf("quad loads counted as %d FXU instructions, want 100", fxu)
	}
	if st.Instructions != 100 {
		t.Fatalf("instructions = %d", st.Instructions)
	}
}

func TestQuadAblationCountsTwo(t *testing.T) {
	b := isa.NewBuilder()
	b.LoadQuad(0, isa.Ref{Base: 0, Stride: 16, WorkingSet: 4096})
	c := New(Config{QuadCountsAsTwo: true})
	c.Run(b.Build(100, 0))
	d := userDelta(c)
	fxu := d.Get(hpm.User, hpm.EvFXU0Instr) + d.Get(hpm.User, hpm.EvFXU1Instr)
	if fxu != 200 {
		t.Fatalf("ablated quad count = %d FXU instructions, want 200", fxu)
	}
}

func TestDivideBugSwallowsDivCounts(t *testing.T) {
	b := isa.NewBuilder()
	b.FDiv(0, 0, 2) // self-dependent: fully serial divides
	c := New(Config{})
	st := c.Run(b.Build(100, 0))
	d := userDelta(c)
	if d.Get(hpm.User, hpm.EvFPU0Div)+d.Get(hpm.User, hpm.EvFPU1Div) != 0 {
		t.Fatal("divide counters must read 0")
	}
	if c.Monitor().TrueDivides(hpm.User) != 100 {
		t.Fatalf("TrueDivides = %d", c.Monitor().TrueDivides(hpm.User))
	}
	// The divide still costs flops architecturally and 10 cycles each.
	if st.Flops != 100 {
		t.Fatalf("flops = %d", st.Flops)
	}
	if st.Cycles < 900 {
		t.Fatalf("cycles = %d, want ~1000 for 100 serial 10-cycle divides", st.Cycles)
	}
}

func TestPagingChargesSystemMode(t *testing.T) {
	// 64 KB of memory but a 1 MB working set swept repeatedly: after the
	// first pass every touch is a page-in from paging space.
	b := isa.NewBuilder()
	b.Load(0, isa.Ref{Base: 0, Stride: int64(units.PageBytes), WorkingSet: 1 << 20})
	c := New(Config{MemoryBytes: 64 * 1024})
	const n = 4096
	st := c.Run(b.Build(n, 0))
	if st.PageFaults == 0 {
		t.Fatal("no page faults under oversubscription")
	}
	d := userDelta(c)
	ratio := hpm.SystemUserFXURatio(d)
	if ratio <= 1.0 {
		t.Fatalf("system/user FXU ratio = %v, want > 1 when paging (Figure 5)", ratio)
	}
	if d.Get(hpm.System, hpm.EvCycles) == 0 {
		t.Fatal("no system cycles charged")
	}
	if d.Get(hpm.System, hpm.EvDMAWrite) == 0 {
		t.Fatal("no page-in DMA traffic")
	}
}

func TestFirstTouchZeroFillIsCheap(t *testing.T) {
	// Touching fresh pages (no reuse, nothing evicted and revisited) costs
	// only the zero-fill path: modest system time, no disk DMA.
	b := isa.NewBuilder()
	b.Load(0, isa.Ref{Base: 0, Stride: int64(units.PageBytes)})
	c := New(Config{MemoryBytes: 1 << 30})
	c.Run(b.Build(2000, 0))
	d := userDelta(c)
	if got := d.Get(hpm.System, hpm.EvDMAWrite); got != 0 {
		t.Fatalf("zero-fill faults produced %d page-in DMA transfers", got)
	}
	if d.Get(hpm.System, hpm.EvCycles) == 0 {
		t.Fatal("zero-fill faults cost no system time at all")
	}
	// The zero-fill path is at least 10x cheaper than the page-in path.
	thrash := New(Config{MemoryBytes: 64 * 1024})
	bb := isa.NewBuilder()
	bb.Load(0, isa.Ref{Base: 0, Stride: int64(units.PageBytes), WorkingSet: 1 << 20})
	thrash.Run(bb.Build(2000, 0))
	dt := userDelta(thrash)
	if 10*d.Get(hpm.System, hpm.EvCycles) > dt.Get(hpm.System, hpm.EvCycles) {
		t.Fatalf("zero-fill (%d sys cycles) not much cheaper than thrash (%d)",
			d.Get(hpm.System, hpm.EvCycles), dt.Get(hpm.System, hpm.EvCycles))
	}
}

func TestNoPagingWhenMemoryFits(t *testing.T) {
	b := isa.NewBuilder()
	b.Load(0, isa.Ref{Base: 0, Stride: 8, WorkingSet: 64 * 1024})
	c := New(Config{MemoryBytes: units.NodeMemoryBytes})
	st := c.Run(b.Build(500000, 0))
	if st.PageFaults > 16+1 {
		t.Fatalf("page faults = %d for a resident working set", st.PageFaults)
	}
	d := userDelta(c)
	if got := hpm.SystemUserFXURatio(d); got > 0.5 {
		t.Fatalf("system/user ratio = %v for resident job", got)
	}
}

func TestAddDMA(t *testing.T) {
	c := New(Config{})
	c.AddDMA(10, 20)
	d := userDelta(c)
	if d.Get(hpm.User, hpm.EvDMARead) != 10 || d.Get(hpm.User, hpm.EvDMAWrite) != 20 {
		t.Fatal("AddDMA miscounted")
	}
}

func TestRunStatsDerived(t *testing.T) {
	st := RunStats{Instructions: 100, Cycles: 50, Flops: 200}
	if st.IPC() != 2.0 {
		t.Fatalf("IPC = %v", st.IPC())
	}
	if st.FlopsPerCycle() != 4.0 {
		t.Fatalf("FlopsPerCycle = %v", st.FlopsPerCycle())
	}
	var zero RunStats
	if zero.IPC() != 0 || zero.FlopsPerCycle() != 0 || zero.Mflops() != 0 {
		t.Fatal("zero RunStats rates not zero")
	}
}

func TestRunLimited(t *testing.T) {
	c := New(Config{})
	st := c.RunLimited(fmaKernel(1000000), 500)
	if st.Instructions != 500 {
		t.Fatalf("RunLimited ran %d instructions", st.Instructions)
	}
}

func TestSuccessiveRunsAccumulateMonitor(t *testing.T) {
	c := New(Config{})
	c.Run(fmaKernel(100))
	s1 := c.Monitor().Snapshot()
	st2 := c.Run(fmaKernel(100))
	d := hpm.Sub(s1, c.Monitor().Snapshot())
	fpu := d.Get(hpm.User, hpm.EvFPU0Instr) + d.Get(hpm.User, hpm.EvFPU1Instr)
	if fpu != 400 {
		t.Fatalf("second-run delta FPU instr = %d, want 400 (4 fma x 100)", fpu)
	}
	if st2.Cycles == 0 {
		t.Fatal("second run reported zero cycles")
	}
}

func TestInvalidInstructionPanics(t *testing.T) {
	c := New(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid op")
		}
	}()
	var in isa.Instr // OpNop
	c.execute(&in)
}

func TestElapsedSeconds(t *testing.T) {
	c := New(Config{})
	c.Run(fmaKernel(66700)) // ~66.7k cycles
	s := c.Elapsed()
	if s <= 0 || s > 0.01 {
		t.Fatalf("Elapsed = %v", s)
	}
}

func BenchmarkExecuteFMA(b *testing.B) {
	c := New(Config{})
	loop := fmaKernel(uint64(b.N))
	b.ResetTimer()
	c.Run(loop)
}

func BenchmarkExecuteStreamingLoad(b *testing.B) {
	bd := isa.NewBuilder()
	bd.Load(0, isa.Ref{Base: 0, Stride: 8})
	c := New(Config{})
	loop := bd.Build(uint64(b.N), 0)
	b.ResetTimer()
	c.Run(loop)
}

func TestCounterConservationProperty(t *testing.T) {
	// For arbitrary generated instruction streams, the monitor's counts
	// must exactly match a ground-truth tally of what was executed:
	// FPU0+FPU1 instr == FP instructions, adds include fma adds, FXU
	// instr == memory + integer ops, ICU == branches + condreg, and
	// dcache reloads == dcache misses.
	ops := []isa.Op{
		isa.OpFAdd, isa.OpFMul, isa.OpFMA, isa.OpFMove,
		isa.OpLoad, isa.OpStore, isa.OpLoadQuad, isa.OpStoreQuad,
		isa.OpIntALU, isa.OpIntMulDiv, isa.OpBranch, isa.OpCondReg,
	}
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%800) + 50
		rnd := seed
		next := func(m uint64) uint64 {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			return (rnd >> 33) % m
		}
		var instrs []isa.Instr
		var fpTotal, adds, muls, fmas, fxu, icu, mem uint64
		addr := uint64(0x10000)
		for i := 0; i < n; i++ {
			op := ops[next(uint64(len(ops)))]
			in := isa.MakeInstr(op)
			in.PC = uint64(i%64) * 4
			in.Dst = uint8(next(30))
			in.SrcA = uint8(next(30))
			if op.IsMemory() {
				addr += 8 * next(64)
				in.Addr = addr
				mem++
			}
			switch op.Unit() {
			case isa.UnitFPU:
				fpTotal++
			case isa.UnitFXU:
				fxu++
			case isa.UnitICU:
				icu++
			}
			switch op {
			case isa.OpFAdd:
				adds++
			case isa.OpFMul:
				muls++
			case isa.OpFMA:
				adds++ // the fma's add lands in the add counter
				fmas++
			}
			instrs = append(instrs, in)
		}
		c := New(Config{Seed: seed})
		st := c.Run(isa.NewSliceStream(instrs))
		d := userDelta(c)
		g := func(ev hpm.Event) uint64 { return d.Get(hpm.User, ev) }

		if st.Instructions != uint64(n) || st.MemRefs != mem {
			return false
		}
		if g(hpm.EvFPU0Instr)+g(hpm.EvFPU1Instr) != fpTotal {
			return false
		}
		if g(hpm.EvFPU0Add)+g(hpm.EvFPU1Add) != adds {
			return false
		}
		if g(hpm.EvFPU0Mul)+g(hpm.EvFPU1Mul) != muls {
			return false
		}
		if g(hpm.EvFPU0FMA)+g(hpm.EvFPU1FMA) != fmas {
			return false
		}
		if g(hpm.EvFXU0Instr)+g(hpm.EvFXU1Instr) != fxu {
			return false
		}
		if g(hpm.EvICUType1)+g(hpm.EvICUType2) != icu {
			return false
		}
		if g(hpm.EvDCacheMiss) != g(hpm.EvDCacheReload) {
			return false
		}
		if g(hpm.EvDCacheMiss) > mem {
			return false
		}
		// Cycles must cover at least a 4-wide dispatch lower bound.
		return st.Cycles >= uint64(n)/4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclesMonotoneInStreamLengthProperty(t *testing.T) {
	// Running a longer prefix of the same stream never takes fewer cycles.
	f := func(seed uint64) bool {
		k := fmaKernel(1 << 30)
		a := New(Config{Seed: seed})
		sa := a.RunLimited(k, 1000)
		b := New(Config{Seed: seed})
		kb := fmaKernel(1 << 30)
		sb := b.RunLimited(kb, 2000)
		return sb.Cycles >= sa.Cycles && sb.Flops == 2*sa.Flops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
