// Package power2 is the node CPU model: an in-order, dispatch-accounting
// simulator of the RS6000/590 POWER2 processor as the hardware performance
// monitor sees it.
//
// The model executes an isa.Stream instruction by instruction, applying the
// structural rules the paper describes:
//
//   - the ICU dispatches up to 4 instructions per cycle and executes
//     branches and condition-register ops itself;
//   - floating instructions issue to FPU0 until a dependency or a
//     multicycle operation (divide, sqrt) forces them to FPU1;
//   - the dual FXUs execute all storage references; FXU1 alone handles
//     addressing multiplies/divides, and FXU0 carries the extra burden of
//     cache-miss directory handling;
//   - a D-cache miss stalls execution 8 cycles, a TLB miss 36-54 cycles;
//   - a page fault traps to system mode, where AIX's handler instructions
//     and the disk DMA traffic are counted against the system bank of the
//     monitor — the signature behind the paper's Figure 5.
//
// Every architectural event feeds the hpm.Monitor, so counter-derived rates
// (Mflops, Mips, miss ratios, FPU asymmetry) come out of the same machinery
// the paper used rather than being asserted.
package power2

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/hpm"
	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/tlb"
	"repro/internal/units"
	"repro/internal/vm"
)

// FPUPolicy selects how floating instructions choose a unit.
type FPUPolicy uint8

// FPU issue policies. FPU0First is the POWER2 behaviour; RoundRobin exists
// for the ablation bench (it destroys the paper's 1.7 asymmetry).
const (
	FPU0First FPUPolicy = iota
	RoundRobin
)

// Config parameterises a CPU. Zero values select the paper's machine.
type Config struct {
	// DCache, ICache and TLB override the SP2 geometries when non-nil.
	DCache *cache.Config
	ICache *cache.Config
	TLB    *tlb.Config

	// Memory, when non-nil, enables the paging model with the given
	// physical capacity. Nil means every page is resident (a node whose
	// job fits in memory).
	MemoryBytes uint64

	// FPU issue policy (ablation hook).
	Policy FPUPolicy

	// QuadCountsAsTwo, when true, counts a quad load/store as two FXU
	// instructions instead of one (ablation hook; the real monitor counts
	// one, which is why the paper's flop/memref ratio reads ~0.5).
	QuadCountsAsTwo bool

	// PageFaultCycles is the system-mode cost of one page-in fault (a
	// previously evicted page returning from paging space); zero selects
	// the default (~10000 cycles: AIX fault path plus amortised
	// paging-disk service).
	PageFaultCycles uint64
	// PageFaultInstrs is the number of system-mode handler instructions
	// charged per page-in; zero selects the default (3000).
	PageFaultInstrs uint64
	// ZeroFillCycles / ZeroFillInstrs cost a first-touch fault (frame
	// allocation and zeroing, no disk); zero selects ~800 cycles and 300
	// instructions.
	ZeroFillCycles uint64
	ZeroFillInstrs uint64

	// Seed drives the stochastic TLB penalty draw (36-54 cycles).
	Seed uint64
}

const (
	defaultPageFaultCycles = 10000
	defaultPageFaultInstrs = 3000
	defaultZeroFillCycles  = 800
	defaultZeroFillInstrs  = 300
	// dmaBytesPerTransfer: a DMA transfer moves 4 or 8 words; we account
	// page traffic in 8-word (64-byte) transfers.
	dmaBytesPerTransfer = 64
)

func sp2DCacheConfig() cache.Config {
	return cache.Config{
		SizeBytes:     units.DCacheBytes,
		LineBytes:     units.DCacheLineBytes,
		Ways:          units.DCacheWays,
		Policy:        cache.LRU,
		WriteAllocate: true,
	}
}

func sp2ICacheConfig() cache.Config {
	return cache.Config{
		SizeBytes:     units.ICacheBytes,
		LineBytes:     units.ICacheLineBytes,
		Ways:          units.ICacheWays,
		Policy:        cache.LRU,
		WriteAllocate: true,
	}
}

func sp2TLBConfig() tlb.Config {
	return tlb.Config{Entries: units.TLBEntries, Ways: units.TLBWays, PageBytes: units.PageBytes}
}

// CPU is one POWER2 processor. Not safe for concurrent use.
type CPU struct {
	cfg    Resolved
	dcache *cache.Cache
	icache *cache.Cache
	tlb    *tlb.TLB
	vmm    *vm.Manager
	mon    *hpm.Monitor
	rnd    *rng.Source

	cycle     uint64 // current dispatch cycle
	lastCount uint64 // cycles already credited to the monitor

	// Per-cycle dispatch occupancy.
	slotCycle uint64
	slots     int
	fxuSlots  int
	fpuSlots  int
	icuSlots  int

	// Register scoreboard: cycle at which each register's value is ready.
	fprReady [32]uint64
	gprReady [32]uint64
	// fprUnit records which FPU produced each register last, so accumulator
	// chains keep unit affinity (result forwarding stays local).
	fprUnit [32]uint8

	// Unit occupancy: first cycle at which the unit can accept an issue.
	fpuFree [2]uint64
	fxuFree [2]uint64

	rrNext int // round-robin state for the ablation policy

	// pend batches user-mode counter increments so the monitor's routing
	// runs once per signal per Run instead of once per event. Counter
	// banks are 32-bit accumulators under a fixed mode, so deferring the
	// adds is exact: uint32 addition is commutative and associative mod
	// 2^32, and every path that switches the monitor's mode or hands
	// control back to the caller flushes first (drain, the fault
	// handlers). Invariant: pend is all-zero whenever Run returns.
	pend [hpm.NumSignals]uint64

	stats RunStats
}

// signal batches a user-mode monitor signal for the current Run.
//
//hpmlint:hotpath fires once per modelled event inside the cycle loop
func (c *CPU) signal(sig hpm.Signal, n uint64) {
	c.pend[sig] += n
}

// flushPend pushes all batched signals into the monitor. Must be called
// before any monitor mode switch or counter read.
//
//hpmlint:hotpath runs between every monitor mode switch; BenchmarkRunKernel guards the same path
func (c *CPU) flushPend() {
	for sig := range c.pend {
		if n := c.pend[sig]; n != 0 {
			c.mon.Signal(hpm.Signal(sig), n)
			c.pend[sig] = 0
		}
	}
}

// RunStats summarises one Run at the architectural level (the monitor holds
// the counter-level view).
type RunStats struct {
	Instructions uint64
	Cycles       uint64
	Flops        uint64
	MemRefs      uint64 // storage-reference instructions (quad = 1)
	PageFaults   uint64
}

// IPC reports instructions per cycle.
func (s RunStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// FlopsPerCycle reports floating-point operations per cycle.
func (s RunStats) FlopsPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Flops) / float64(s.Cycles)
}

// Mflops converts the run to a Mflops rate at the SP2 clock.
func (s RunStats) Mflops() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Flops) / (float64(s.Cycles) / units.ClockHz) / 1e6
}

// Resolved is a Config with every default applied and the geometry
// pointers flattened into values. It is a plain comparable struct, so two
// Configs that Resolve() equal build behaviourally identical CPUs — which
// is exactly what makes it usable as a memoization key (the profile
// store's cache key is built on it).
type Resolved struct {
	DCache          cache.Config
	ICache          cache.Config
	TLB             tlb.Config
	MemoryBytes     uint64
	Policy          FPUPolicy
	QuadCountsAsTwo bool
	PageFaultCycles uint64
	PageFaultInstrs uint64
	ZeroFillCycles  uint64
	ZeroFillInstrs  uint64
	Seed            uint64
}

// Resolve applies the paper's-machine defaults, producing the canonical
// form of the configuration.
//
//hpmlint:pure the profile store keys on Resolved; resolution must be a pure function of Config
func (cfg Config) Resolve() Resolved {
	r := Resolved{
		DCache:          sp2DCacheConfig(),
		ICache:          sp2ICacheConfig(),
		TLB:             sp2TLBConfig(),
		MemoryBytes:     cfg.MemoryBytes,
		Policy:          cfg.Policy,
		QuadCountsAsTwo: cfg.QuadCountsAsTwo,
		PageFaultCycles: cfg.PageFaultCycles,
		PageFaultInstrs: cfg.PageFaultInstrs,
		ZeroFillCycles:  cfg.ZeroFillCycles,
		ZeroFillInstrs:  cfg.ZeroFillInstrs,
		Seed:            cfg.Seed,
	}
	if cfg.DCache != nil {
		r.DCache = *cfg.DCache
	}
	if cfg.ICache != nil {
		r.ICache = *cfg.ICache
	}
	if cfg.TLB != nil {
		r.TLB = *cfg.TLB
	}
	if r.PageFaultCycles == 0 {
		r.PageFaultCycles = defaultPageFaultCycles
	}
	if r.PageFaultInstrs == 0 {
		r.PageFaultInstrs = defaultPageFaultInstrs
	}
	if r.ZeroFillCycles == 0 {
		r.ZeroFillCycles = defaultZeroFillCycles
	}
	if r.ZeroFillInstrs == 0 {
		r.ZeroFillInstrs = defaultZeroFillInstrs
	}
	return r
}

// New builds a CPU with the given configuration.
func New(cfg Config) *CPU {
	return NewResolved(cfg.Resolve())
}

// NewResolved builds a CPU from an already-resolved configuration.
func NewResolved(r Resolved) *CPU {
	c := &CPU{
		cfg:    r,
		dcache: cache.New(r.DCache),
		icache: cache.New(r.ICache),
		tlb:    tlb.New(r.TLB),
		mon:    hpm.New(),
		rnd:    rng.New(r.Seed),
	}
	if r.MemoryBytes > 0 {
		c.vmm = vm.New(r.MemoryBytes, r.TLB.PageBytes)
	}
	return c
}

// Monitor exposes the hardware performance monitor (the node's SCU
// counters); callers take snapshots and compute deltas through it.
func (c *CPU) Monitor() *hpm.Monitor { return c.mon }

// DCache exposes the data cache (for tests and warm-up probes).
func (c *CPU) DCache() *cache.Cache { return c.dcache }

// TLBUnit exposes the TLB.
func (c *CPU) TLBUnit() *tlb.TLB { return c.tlb }

// VM exposes the paging manager; nil when paging is disabled.
func (c *CPU) VM() *vm.Manager { return c.vmm }

// Cycle reports the current cycle count.
func (c *CPU) Cycle() uint64 { return c.cycle }

// creditCycles pushes un-credited elapsed cycles into the monitor's cycles
// counter under the current mode.
func (c *CPU) creditCycles() {
	if c.cycle > c.lastCount {
		c.signal(hpm.SigCycles, c.cycle-c.lastCount)
		c.lastCount = c.cycle
	}
}

// advanceTo moves the dispatch cycle forward, crediting elapsed cycles.
func (c *CPU) advanceTo(cycle uint64) {
	if cycle <= c.cycle {
		return
	}
	c.cycle = cycle
	c.creditCycles()
	if c.slotCycle != c.cycle {
		c.slotCycle = c.cycle
		c.slots, c.fxuSlots, c.fpuSlots, c.icuSlots = 0, 0, 0, 0
	}
}

func max2(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// srcReadyFPR returns the cycle at which all named FPR sources are ready.
func (c *CPU) srcReadyFPR(in *isa.Instr) uint64 {
	ready := uint64(0)
	for _, r := range [3]uint8{in.SrcA, in.SrcB, in.SrcC} {
		if r != isa.NoReg {
			ready = max2(ready, c.fprReady[r%32])
		}
	}
	return ready
}

func (c *CPU) srcReadyGPR(in *isa.Instr) uint64 {
	ready := uint64(0)
	for _, r := range [3]uint8{in.SrcA, in.SrcB, in.SrcC} {
		if r != isa.NoReg {
			ready = max2(ready, c.gprReady[r%32])
		}
	}
	return ready
}

// takeSlot consumes a dispatch slot, advancing to the next cycle when the
// 4-wide dispatch group or the per-unit issue ports are exhausted.
func (c *CPU) takeSlot(unit isa.Unit) {
	for {
		if c.slotCycle != c.cycle {
			c.slotCycle = c.cycle
			c.slots, c.fxuSlots, c.fpuSlots, c.icuSlots = 0, 0, 0, 0
		}
		full := c.slots >= units.DispatchWidth
		switch unit {
		case isa.UnitFXU:
			full = full || c.fxuSlots >= 2
		case isa.UnitFPU:
			full = full || c.fpuSlots >= 2
		case isa.UnitICU:
			full = full || c.icuSlots >= 2
		}
		if !full {
			break
		}
		c.advanceTo(c.cycle + 1)
	}
	c.slots++
	switch unit {
	case isa.UnitFXU:
		c.fxuSlots++
	case isa.UnitFPU:
		c.fpuSlots++
	case isa.UnitICU:
		c.icuSlots++
	}
}

// Run executes the whole stream and returns the architectural summary.
// Counter effects accumulate in the Monitor across calls; use the monitor's
// snapshots for deltas.
func (c *CPU) Run(stream isa.Stream) RunStats {
	start := c.stats
	startCycle := c.cycle
	var in isa.Instr
	for stream.Next(&in) {
		c.execute(&in)
	}
	c.drain()
	return RunStats{
		Instructions: c.stats.Instructions - start.Instructions,
		Cycles:       c.cycle - startCycle,
		Flops:        c.stats.Flops - start.Flops,
		MemRefs:      c.stats.MemRefs - start.MemRefs,
		PageFaults:   c.stats.PageFaults - start.PageFaults,
	}
}

// drain advances the clock past all in-flight results and synchronises the
// cycle statistic.
func (c *CPU) drain() {
	latest := c.cycle
	for _, r := range c.fprReady {
		latest = max2(latest, r)
	}
	for _, r := range c.gprReady {
		latest = max2(latest, r)
	}
	latest = max2(latest, max2(c.fpuFree[0], c.fpuFree[1]))
	latest = max2(latest, max2(c.fxuFree[0], c.fxuFree[1]))
	c.advanceTo(latest)
	c.flushPend()
	c.stats.Cycles = c.cycle
}

// RunLimited executes at most n instructions from the stream.
func (c *CPU) RunLimited(stream isa.Stream, n uint64) RunStats {
	return c.Run(isa.NewLimit(stream, n))
}

// execute models one instruction: fetch, dispatch, unit timing, memory
// hierarchy, and the monitor signals each step raises.
//
//hpmlint:hotpath the per-instruction path of the zero-alloc microsim contract
func (c *CPU) execute(in *isa.Instr) {
	if !in.Op.Valid() {
		panic(fmt.Sprintf("power2: invalid instruction %v", in.Op))
	}
	// Instruction fetch through the I-cache; a miss stalls the pipeline
	// while the line reloads.
	if !c.icache.Access(in.PC, false) {
		c.signal(hpm.SigICacheReload, 1)
		c.advanceTo(c.cycle + units.CacheMissPenaltyCycles)
	}

	switch in.Op.Unit() {
	case isa.UnitFPU:
		c.executeFPU(in)
	case isa.UnitFXU:
		c.executeFXU(in)
	case isa.UnitICU:
		c.executeICU(in)
	}
	c.stats.Instructions++
}

func (c *CPU) executeFPU(in *isa.Instr) {
	c.takeSlot(isa.UnitFPU)

	ready := c.srcReadyFPR(in)

	// Steering: FPU0 is the preferred unit; an instruction spills to FPU1
	// only when FPU0 cannot accept it as early (it is draining a multicycle
	// op, or an independent instruction is ready while FPU0 is occupied by
	// the one just issued). Serial dependency chains therefore stay on
	// FPU0, and bursts of independent work split across both — which is
	// what produces the paper's 1.7 asymmetry for the workload and
	// near-1.0 ratios for high-ILP codes.
	var unit int
	if c.cfg.Policy == RoundRobin {
		unit = c.rrNext
		c.rrNext = 1 - c.rrNext
	} else if in.Op.IsMulticycle() {
		// Divide and square root drain on the second unit, whose backup
		// register lets FPU0 continue with the main stream (paper §5).
		unit = 1
	} else {
		t0 := max2(ready, c.fpuFree[0])
		t1 := max2(ready, c.fpuFree[1])
		switch {
		case t1 < t0:
			unit = 1
		case t0 < t1:
			unit = 0
		default:
			// Tie: an accumulator chain (destination also a source) stays
			// on the unit that produced it; anything else prefers FPU0.
			if in.Dst != isa.NoReg &&
				(in.Dst == in.SrcA || in.Dst == in.SrcB || in.Dst == in.SrcC) {
				unit = int(c.fprUnit[in.Dst%32])
			}
		}
	}

	issue := max2(c.cycle, max2(ready, c.fpuFree[unit]))
	c.advanceTo(issue)

	lat := uint64(in.Op.Latency())
	if in.Op.IsMulticycle() {
		// Divide/sqrt monopolise the unit.
		c.fpuFree[unit] = issue + lat
	} else {
		c.fpuFree[unit] = issue + 1 // pipelined: one issue per cycle
	}
	if in.Dst != isa.NoReg {
		c.fprReady[in.Dst%32] = issue + lat
		c.fprUnit[in.Dst%32] = uint8(unit)
	}

	c.countFPU(unit, in.Op)
	c.stats.Flops += uint64(in.Op.Flops())
}

func (c *CPU) countFPU(unit int, op isa.Op) {
	var instrSig, addSig, mulSig, divSig, fmaSig, sqrtSig hpm.Signal
	if unit == 0 {
		instrSig, addSig, mulSig, divSig, fmaSig, sqrtSig =
			hpm.SigFPU0Instr, hpm.SigFPU0Add, hpm.SigFPU0Mul, hpm.SigFPU0Div, hpm.SigFPU0FMA, hpm.SigFPU0Sqrt
	} else {
		instrSig, addSig, mulSig, divSig, fmaSig, sqrtSig =
			hpm.SigFPU1Instr, hpm.SigFPU1Add, hpm.SigFPU1Mul, hpm.SigFPU1Div, hpm.SigFPU1FMA, hpm.SigFPU1Sqrt
	}
	c.signal(instrSig, 1)
	switch op {
	case isa.OpFAdd:
		c.signal(addSig, 1)
	case isa.OpFMul:
		c.signal(mulSig, 1)
	case isa.OpFDiv:
		c.signal(divSig, 1)
	case isa.OpFSqrt:
		c.signal(sqrtSig, 1)
	case isa.OpFMA:
		// The fma's add lands in the add counter, the fma itself in the
		// muladd counter (paper §5).
		c.signal(addSig, 1)
		c.signal(fmaSig, 1)
	}
}

func (c *CPU) executeFXU(in *isa.Instr) {
	c.takeSlot(isa.UnitFXU)

	ready := c.srcReadyGPR(in)

	var unit int
	switch {
	case in.Op.NeedsFXU1():
		unit = 1
	case c.fxuFree[1] <= c.cycle:
		// FXU1 is preferred when it can accept this cycle: FXU0 carries the
		// cache-miss directory work, so the dispatcher keeps it available.
		// This is the structural source of the paper's FXU1 > FXU0
		// asymmetry (Table 3: 16.5 vs 11.1 Mips).
		unit = 1
	default:
		unit = 0
	}

	issue := max2(c.cycle, max2(ready, c.fxuFree[unit]))
	c.advanceTo(issue)
	lat := uint64(in.Op.Latency())
	c.fxuFree[unit] = issue + 1
	if in.Op == isa.OpIntMulDiv {
		c.fxuFree[unit] = issue + lat
	}

	if unit == 0 {
		c.signal(hpm.SigFXU0Instr, 1)
	} else {
		c.signal(hpm.SigFXU1Instr, 1)
	}
	if in.Op.NeedsFXU1() {
		c.signal(hpm.SigFXUAddrMulDiv, 1)
	}
	if c.cfg.QuadCountsAsTwo && in.Op.IsQuad() {
		// Ablation: count the second doubleword as another instruction on
		// the same unit.
		if unit == 0 {
			c.signal(hpm.SigFXU0Instr, 1)
		} else {
			c.signal(hpm.SigFXU1Instr, 1)
		}
		c.stats.Instructions++
	}

	if in.Op.IsMemory() {
		c.stats.MemRefs++
		if in.Op.IsStore() {
			c.signal(hpm.SigFXUStores, 1)
		} else {
			c.signal(hpm.SigFXULoads, 1)
		}
		c.accessMemory(in)
	}

	if in.Dst != isa.NoReg {
		c.gprReady[in.Dst%32] = issue + lat
	}
}

// accessMemory runs the address through the paging model, the TLB and the
// D-cache, applying stalls and counting monitor events.
func (c *CPU) accessMemory(in *isa.Instr) {
	isStore := in.Op.IsStore()

	if c.vmm != nil {
		switch c.vmm.Touch(in.Addr, isStore) {
		case vm.ZeroFill:
			c.zeroFillFault()
		case vm.PageIn:
			c.pageFault(isStore)
		}
	}

	if !c.tlb.Translate(in.Addr) {
		c.signal(hpm.SigTLBMiss, 1)
		penalty := uint64(c.rnd.IntRange(units.TLBMissPenaltyMinCycles, units.TLBMissPenaltyMaxCycles))
		c.advanceTo(c.cycle + penalty)
	}

	castoutsBefore := c.dcache.Castouts()
	if !c.dcache.Access(in.Addr, isStore) {
		c.signal(hpm.SigDCacheMiss, 1)
		c.signal(hpm.SigDCacheReload, 1)
		// FXU0 performs the D-cache directory search for the miss.
		c.signal(hpm.SigFXU0DirSearch, 1)
		c.advanceTo(c.cycle + units.CacheMissPenaltyCycles)
	}
	if co := c.dcache.Castouts() - castoutsBefore; co > 0 {
		c.signal(hpm.SigDCacheStore, co)
	}
}

// zeroFillFault charges the cheap first-touch path: AIX allocates and
// zeroes a frame entirely in memory.
func (c *CPU) zeroFillFault() {
	c.stats.PageFaults++
	c.creditCycles()
	c.flushPend()
	c.mon.SetMode(hpm.System)
	n := c.cfg.ZeroFillInstrs
	c.mon.Signal(hpm.SigFXU0Instr, n*4/10)
	c.mon.Signal(hpm.SigFXU1Instr, n*4/10)
	c.mon.Signal(hpm.SigICUType1, n*2/10)
	c.mon.Signal(hpm.SigCycles, c.cfg.ZeroFillCycles)
	c.mon.SetMode(hpm.User)
	c.cycle += c.cfg.ZeroFillCycles
	c.lastCount = c.cycle
}

// pageFault charges the heavy AIX fault path for a page returning from
// paging space: system-mode handler instructions, system-mode cycles, and
// the disk DMA traffic for the page transfer.
func (c *CPU) pageFault(dirty bool) {
	c.stats.PageFaults++
	c.creditCycles()
	c.flushPend()
	c.mon.SetMode(hpm.System)

	// Handler instruction mix: storage references and branches dominate.
	n := c.cfg.PageFaultInstrs
	c.mon.Signal(hpm.SigFXU0Instr, n*4/10)
	c.mon.Signal(hpm.SigFXU1Instr, n*4/10)
	c.mon.Signal(hpm.SigICUType1, n*2/10)
	c.mon.Signal(hpm.SigCycles, c.cfg.PageFaultCycles)
	// The fault service time is I/O wait — invisible to the NAS
	// selection, visible to the I/O-wait selection the paper recommends.
	c.mon.Signal(hpm.SigIOWaitCycles, c.cfg.PageFaultCycles)
	c.mon.Signal(hpm.SigPageIns, 1)

	// Page-in: 4096 bytes at 64 bytes per DMA transfer.
	transfers := uint64(units.PageBytes / dmaBytesPerTransfer)
	c.mon.Signal(hpm.SigDMAWrite, transfers) // device-to-memory
	if dirty {
		// Stealing a dirty frame forces a page-out too (approximation:
		// charge it with the fault that caused the steal).
		c.mon.Signal(hpm.SigDMARead, transfers) // memory-to-device
	}

	c.mon.SetMode(hpm.User)
	// The faulting process is suspended for the fault service time.
	c.cycle += c.cfg.PageFaultCycles
	c.lastCount = c.cycle // system cycles were credited above
}

func (c *CPU) executeICU(in *isa.Instr) {
	c.takeSlot(isa.UnitICU)
	switch in.Op {
	case isa.OpBranch:
		c.signal(hpm.SigICUType1, 1)
		c.signal(hpm.SigBranchTaken, 1)
		// A taken branch ends the dispatch group: the next instruction
		// dispatches no earlier than the following cycle.
		c.advanceTo(c.cycle + 1)
	case isa.OpCondReg:
		c.signal(hpm.SigICUType2, 1)
	}
}

// AddIOWait charges cycles the node spent waiting on I/O (message receipt,
// disk service) to the I/O-wait signal — invisible under the NAS selection,
// countable under the I/O-wait selection.
func (c *CPU) AddIOWait(cycles uint64) {
	c.mon.Signal(hpm.SigIOWaitCycles, cycles)
}

// AddDMA lets the node account I/O DMA traffic (message passing, disk)
// against the SCU counters; the CPU is not involved in the transfer.
// Counts are in DMA transfers (4-8 words each).
func (c *CPU) AddDMA(reads, writes uint64) {
	c.mon.Signal(hpm.SigDMARead, reads)
	c.mon.Signal(hpm.SigDMAWrite, writes)
	c.mon.Signal(hpm.SigSwitchMsgBytes, reads+writes)
}

// Elapsed reports cycles as simulated seconds at the SP2 clock.
func (c *CPU) Elapsed() float64 { return units.Cycles(c.cycle).Seconds() }
