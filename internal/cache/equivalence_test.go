package cache

// Equivalence guard for the flattened lookup path. refCache below is a
// line-for-line port of the straightforward implementation this package
// shipped with (per-set slices, tag shift recomputed on every access, no
// MRU shortcut). The optimized Cache must agree with it on every
// observable: the hit/miss outcome of each access, the running Stats, the
// Random policy's victim stream, and the final contents. A randomized
// million-access trace with occasional flushes exercises hits, misses,
// invalid-way fills, dirty castouts and both replacement policies.

import (
	"testing"

	"repro/internal/rng"
)

// refLine / refCache: the reference (pre-optimization) implementation.
type refLine struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

type refCache struct {
	cfg       Config
	sets      [][]refLine
	setMask   uint64
	lineShift uint
	stats     Stats
	tick      uint64
	rndState  uint64
}

func newRefCache(cfg Config) *refCache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	sets := make([][]refLine, nsets)
	for i := range sets {
		sets[i] = make([]refLine, cfg.Ways)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &refCache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(nsets - 1),
		lineShift: shift,
		rndState:  0x9e3779b97f4a7c15,
	}
}

func (c *refCache) index(addr uint64) (set uint64, tag uint64) {
	return (addr >> c.lineShift) & c.setMask,
		addr >> (c.lineShift + refLog2(uint64(len(c.sets))))
}

func refLog2(n uint64) uint {
	s := uint(0)
	for 1<<s < n {
		s++
	}
	return s
}

func (c *refCache) nextRnd() uint64 {
	x := c.rndState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rndState = x
	return x
}

func (c *refCache) Access(addr uint64, isStore bool) bool {
	c.tick++
	setIdx, tag := c.index(addr)
	set := c.sets[setIdx]

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.tick
			if isStore {
				set[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}

	c.stats.Misses++
	if isStore && !c.cfg.WriteAllocate {
		return false
	}

	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		switch c.cfg.Policy {
		case Random:
			victim = int(c.nextRnd() % uint64(len(set)))
		default: // LRU
			victim = 0
			for i := 1; i < len(set); i++ {
				if set[i].lastUse < set[victim].lastUse {
					victim = i
				}
			}
		}
		if set[victim].dirty {
			c.stats.Castouts++
		}
	}

	set[victim] = refLine{tag: tag, valid: true, dirty: isStore, lastUse: c.tick}
	c.stats.Reloads++
	return false
}

func (c *refCache) Contains(addr uint64) bool {
	setIdx, tag := c.index(addr)
	for _, l := range c.sets[setIdx] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

func (c *refCache) Flush() {
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].dirty {
				c.stats.Castouts++
			}
			c.sets[s][i] = refLine{}
		}
	}
}

// TestOptimizedCacheEquivalence drives the optimized Cache and the
// reference in lockstep over a randomized trace and demands bit-identical
// observables at every step.
func TestOptimizedCacheEquivalence(t *testing.T) {
	const accesses = 1_000_000

	configs := []struct {
		name string
		cfg  Config
	}{
		{"lru-dcache", Config{SizeBytes: 16 << 10, LineBytes: 256, Ways: 4, Policy: LRU, WriteAllocate: true}},
		{"random-dcache", Config{SizeBytes: 16 << 10, LineBytes: 256, Ways: 4, Policy: Random, WriteAllocate: true}},
		{"lru-no-allocate", Config{SizeBytes: 8 << 10, LineBytes: 128, Ways: 2, Policy: LRU, WriteAllocate: false}},
		{"random-direct", Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 1, Policy: Random, WriteAllocate: true}},
	}

	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			opt := New(tc.cfg)
			ref := newRefCache(tc.cfg)
			src := rng.New(0xcac4e + uint64(len(tc.name)))

			// Mix of strided sweeps (MRU-friendly) and random jumps
			// (MRU-hostile) over a footprint a few times the cache size,
			// so both the fast path and the full scan-and-evict paths run.
			footprint := uint64(tc.cfg.SizeBytes) * 4
			var addr uint64
			for i := 0; i < accesses; i++ {
				r := src.Uint64()
				switch r % 8 {
				case 0, 1, 2: // sequential walk
					addr += 8
				case 3, 4: // stay on the current line
					addr ^= r & 0x38
				default: // random jump
					addr = r % footprint
				}
				a := addr % footprint
				isStore := r&(1<<40) != 0

				oh := opt.Access(a, isStore)
				rh := ref.Access(a, isStore)
				if oh != rh {
					t.Fatalf("access %d addr %#x store=%v: optimized hit=%v reference hit=%v", i, a, isStore, oh, rh)
				}
				if opt.Stats() != ref.stats {
					t.Fatalf("access %d: stats diverged: optimized %+v reference %+v", i, opt.Stats(), ref.stats)
				}
				if opt.rndState != ref.rndState {
					t.Fatalf("access %d: random-policy victim streams diverged", i)
				}
				// Occasional flush exercises castout accounting and MRU reset.
				if i%200_000 == 199_999 {
					opt.Flush()
					ref.Flush()
					if opt.Stats() != ref.stats {
						t.Fatalf("after flush at %d: stats diverged: optimized %+v reference %+v", i, opt.Stats(), ref.stats)
					}
				}
			}

			// Final contents must agree: probe every line-aligned address in
			// the footprint.
			for a := uint64(0); a < footprint; a += uint64(tc.cfg.LineBytes) {
				if opt.Contains(a) != ref.Contains(a) {
					t.Fatalf("final contents diverged at %#x: optimized=%v reference=%v", a, opt.Contains(a), ref.Contains(a))
				}
			}
		})
	}
}
