package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// sp2DCache builds the NAS SP2 data-cache geometry from the paper.
func sp2DCache() *Cache {
	return New(Config{
		SizeBytes:     units.DCacheBytes,
		LineBytes:     units.DCacheLineBytes,
		Ways:          units.DCacheWays,
		Policy:        LRU,
		WriteAllocate: true,
	})
}

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 256 * 1024, LineBytes: 256, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 256, Ways: 4},
		{SizeBytes: 256 * 1024, LineBytes: 0, Ways: 4},
		{SizeBytes: 256 * 1024, LineBytes: 256, Ways: 0},
		{SizeBytes: 256 * 1024, LineBytes: 255, Ways: 4},  // non power-of-two line
		{SizeBytes: 255 * 1024, LineBytes: 256, Ways: 4},  // size not divisible
		{SizeBytes: 3 * 256 * 4, LineBytes: 256, Ways: 4}, // sets not power of two
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{SizeBytes: 1, LineBytes: 3, Ways: 1})
}

func TestSP2Geometry(t *testing.T) {
	c := sp2DCache()
	// Paper: 1024 lines total, 4-way => 256 sets.
	if c.Sets() != 256 {
		t.Fatalf("Sets = %d, want 256", c.Sets())
	}
}

func TestMissThenHit(t *testing.T) {
	c := sp2DCache()
	if c.Access(0x1000, false) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000, false) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x10FF, false) {
		t.Fatal("same-line access missed") // 256-byte line covers 0x1000..0x10FF
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Reloads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSequentialScanMissesEvery32Elements(t *testing.T) {
	// The paper's thought experiment: sequentially accessing real*8 data
	// misses once every 32 elements (256-byte line / 8-byte element).
	c := sp2DCache()
	const n = 32 * 1024
	for i := 0; i < n; i++ {
		c.Access(uint64(i*8), false)
	}
	st := c.Stats()
	wantMisses := uint64(n / 32)
	if st.Misses != wantMisses {
		t.Fatalf("misses = %d, want %d", st.Misses, wantMisses)
	}
	ratio := st.MissRatio()
	if ratio < 0.031 || ratio > 0.032 {
		t.Fatalf("sequential miss ratio = %v, want ~0.03125", ratio)
	}
}

func TestCacheResidentWorkingSetHits(t *testing.T) {
	// A working set that fits in 256 KB must hit ~100% after warm-up.
	c := sp2DCache()
	const ws = 128 * 1024
	for pass := 0; pass < 4; pass++ {
		for a := 0; a < ws; a += 8 {
			c.Access(uint64(a), false)
		}
	}
	st := c.Stats()
	if st.Misses != ws/units.DCacheLineBytes {
		t.Fatalf("resident working set remissed: misses=%d want %d", st.Misses, ws/units.DCacheLineBytes)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Tiny cache: 2 sets x 2 ways x 16-byte lines = 64 bytes.
	c := New(Config{SizeBytes: 64, LineBytes: 16, Ways: 2, Policy: LRU, WriteAllocate: true})
	// All in set 0: addresses multiples of 32.
	c.Access(0x000, false) // A
	c.Access(0x020, false) // B
	c.Access(0x000, false) // touch A; B is now LRU
	c.Access(0x040, false) // C evicts B
	if !c.Contains(0x000) {
		t.Fatal("A evicted, want B")
	}
	if c.Contains(0x020) {
		t.Fatal("B survived, want evicted")
	}
	if !c.Contains(0x040) {
		t.Fatal("C missing")
	}
}

func TestDirtyCastout(t *testing.T) {
	c := New(Config{SizeBytes: 64, LineBytes: 16, Ways: 2, Policy: LRU, WriteAllocate: true})
	c.Access(0x000, true)  // dirty A
	c.Access(0x020, false) // clean B
	c.Access(0x040, false) // evicts A (LRU) -> castout
	st := c.Stats()
	if st.Castouts != 1 {
		t.Fatalf("castouts = %d, want 1", st.Castouts)
	}
	// Evicting the clean line must not cast out.
	c.Access(0x060, false) // evicts B
	if c.Stats().Castouts != 1 {
		t.Fatalf("clean eviction cast out: %+v", c.Stats())
	}
}

func TestStoreHitMarksDirty(t *testing.T) {
	c := New(Config{SizeBytes: 64, LineBytes: 16, Ways: 2, Policy: LRU, WriteAllocate: true})
	c.Access(0x000, false) // clean fill
	c.Access(0x000, true)  // store hit dirties it
	c.Access(0x020, false)
	c.Access(0x040, false) // evict A
	if c.Stats().Castouts != 1 {
		t.Fatalf("store-hit line not cast out: %+v", c.Stats())
	}
}

func TestNoWriteAllocate(t *testing.T) {
	c := New(Config{SizeBytes: 64, LineBytes: 16, Ways: 2, Policy: LRU, WriteAllocate: false})
	c.Access(0x000, true) // store miss: no fill
	if c.Contains(0x000) {
		t.Fatal("store miss filled line despite no-write-allocate")
	}
	if c.Stats().Reloads != 0 {
		t.Fatalf("reloads = %d, want 0", c.Stats().Reloads)
	}
}

func TestFlushCountsDirtyLines(t *testing.T) {
	c := New(Config{SizeBytes: 64, LineBytes: 16, Ways: 2, Policy: LRU, WriteAllocate: true})
	c.Access(0x000, true)
	c.Access(0x010, false)
	c.Flush()
	if c.Contains(0x000) || c.Contains(0x010) {
		t.Fatal("flush left lines valid")
	}
	if c.Stats().Castouts != 1 {
		t.Fatalf("flush castouts = %d, want 1", c.Stats().Castouts)
	}
	// After flush everything misses again.
	if c.Access(0x000, false) {
		t.Fatal("hit after flush")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := sp2DCache()
	c.Access(0x1000, false)
	c.ResetStats()
	if c.Stats().Accesses() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	if !c.Access(0x1000, false) {
		t.Fatal("ResetStats flushed contents")
	}
}

func TestRandomPolicyStillCaches(t *testing.T) {
	c := New(Config{SizeBytes: 64, LineBytes: 16, Ways: 2, Policy: Random, WriteAllocate: true})
	c.Access(0x000, false)
	if !c.Access(0x000, false) {
		t.Fatal("random-policy cache did not hit on re-reference")
	}
	// Conflict beyond associativity must still evict exactly one line.
	c.Access(0x020, false)
	c.Access(0x040, false)
	resident := 0
	for _, a := range []uint64{0x000, 0x020, 0x040} {
		if c.Contains(a) {
			resident++
		}
	}
	if resident != 2 {
		t.Fatalf("resident = %d, want 2 (one eviction)", resident)
	}
}

func TestMissRatioEmpty(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Fatal("empty MissRatio not 0")
	}
}

func TestConservationProperty(t *testing.T) {
	// Hits + Misses == Accesses, and Reloads <= Misses, for random traces.
	f := func(addrs []uint16, stores []bool) bool {
		c := New(Config{SizeBytes: 1024, LineBytes: 32, Ways: 2, Policy: LRU, WriteAllocate: true})
		for i, a := range addrs {
			isStore := i < len(stores) && stores[i]
			c.Access(uint64(a), isStore)
		}
		st := c.Stats()
		return st.Hits+st.Misses == uint64(len(addrs)) && st.Reloads <= st.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAssociativityConflictProperty(t *testing.T) {
	// K distinct lines mapping to one set, K <= ways: second pass all hits.
	c := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4, Policy: LRU, WriteAllocate: true})
	sets := c.Sets()
	stride := uint64(sets * 64) // same set each time
	for k := 0; k < 4; k++ {
		c.Access(uint64(k)*stride, false)
	}
	c.ResetStats()
	for k := 0; k < 4; k++ {
		if !c.Access(uint64(k)*stride, false) {
			t.Fatalf("way %d evicted within associativity", k)
		}
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := sp2DCache()
	c.Access(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false)
	}
}

func BenchmarkAccessStreaming(b *testing.B) {
	c := sp2DCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*8, false)
	}
}
