// Package cache implements the set-associative caches of the RS6000/590
// node: the 256 KB four-way data cache (1024 lines of 256 bytes) and the
// instruction cache. The model tracks exactly the events the SCU counters
// report — reloads from memory, and castouts of modified lines back to
// memory (the paper's user.dcache_reload and user.dcache_store events).
package cache

import "fmt"

// Replacement selects the victim policy for a set.
type Replacement uint8

// Replacement policies. LRU is the POWER2 behaviour; Random exists for the
// ablation bench called out in DESIGN.md.
const (
	LRU Replacement = iota
	Random
)

// Config describes a cache geometry.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
	Policy    Replacement
	// WriteAllocate controls whether a store miss fills the line (the
	// POWER2 D-cache is store-in / write-allocate).
	WriteAllocate bool
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line %d", c.SizeBytes, c.LineBytes*c.Ways)
	}
	sets := c.SizeBytes / c.LineBytes / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats accumulates the monitor-visible cache events.
type Stats struct {
	Hits     uint64
	Misses   uint64
	Reloads  uint64 // lines brought in from memory (== misses for this model)
	Castouts uint64 // modified lines written back on eviction
}

// MissRatio reports misses over total references (0 for no references).
func (s Stats) MissRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// Accesses reports total references.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lastUse orders lines for LRU within a set.
	lastUse uint64
}

// Cache is a set-associative cache. It is not safe for concurrent use; each
// simulated node owns its caches.
//
// The lookup path is on the CPU model's per-instruction critical path
// (every fetch goes through the I-cache, every storage reference through
// the D-cache), so the layout is flattened: one backing array indexed by
// set*ways, both address shifts precomputed at construction, and a per-set
// MRU way checked before the associative scan. None of this changes any
// observable behaviour — hits, misses, LRU ordering, victim choices and
// the Random policy's xorshift stream are bit-identical to the
// straightforward implementation (pinned by TestOptimizedCacheEquivalence).
type Cache struct {
	cfg   Config
	lines []line // nsets*ways, set s occupying [s*ways, (s+1)*ways)
	nsets int
	ways  int

	setMask   uint64
	lineShift uint // address -> line address
	tagShift  uint // address -> tag, lineShift + log2(nsets), computed once

	// mru holds each set's most-recently-hit (or -filled) way; -1 when the
	// set has never been touched. Purely an access accelerator: checking it
	// first gives the same hit the scan would find.
	mru []int16

	stats Stats
	tick  uint64
	// rndState is a tiny xorshift for the Random policy ablation.
	rndState uint64
}

// New builds a cache with the given geometry; it panics on an invalid
// configuration (geometry is fixed at construction, so this is a programming
// error, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	lineShift := uintLog2(uint64(cfg.LineBytes))
	c := &Cache{
		cfg:       cfg,
		lines:     make([]line, nsets*cfg.Ways),
		nsets:     nsets,
		ways:      cfg.Ways,
		setMask:   uint64(nsets - 1),
		lineShift: lineShift,
		tagShift:  lineShift + uintLog2(uint64(nsets)),
		mru:       make([]int16, nsets),
		rndState:  0x9e3779b97f4a7c15,
	}
	for i := range c.mru {
		c.mru[i] = -1
	}
	return c
}

// Config returns the geometry the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated event counts.
func (c *Cache) Stats() Stats { return c.stats }

// Castouts returns the castout count alone, without copying the whole
// Stats struct (the CPU model reads it around every D-cache access).
func (c *Cache) Castouts() uint64 { return c.stats.Castouts }

// ResetStats zeroes the event counts without disturbing cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.nsets }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	return (addr >> c.lineShift) & c.setMask, addr >> c.tagShift
}

func uintLog2(n uint64) uint {
	s := uint(0)
	for 1<<s < n {
		s++
	}
	return s
}

func (c *Cache) nextRnd() uint64 {
	x := c.rndState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rndState = x
	return x
}

// Access performs a reference to addr. isStore marks a write. It returns
// true on a hit. On a miss the line is reloaded (subject to the
// write-allocate setting) and a modified victim is cast out.
func (c *Cache) Access(addr uint64, isStore bool) bool {
	c.tick++
	setIdx := (addr >> c.lineShift) & c.setMask
	tag := addr >> c.tagShift
	set := c.lines[setIdx*uint64(c.ways) : (setIdx+1)*uint64(c.ways)]

	// MRU fast path: most references hit the way they hit last time
	// (sequential sweeps and tight loops revisit the same line), so check
	// it before scanning the set.
	if m := c.mru[setIdx]; m >= 0 {
		if l := &set[m]; l.valid && l.tag == tag {
			l.lastUse = c.tick
			if isStore {
				l.dirty = true
			}
			c.stats.Hits++
			return true
		}
	}

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.tick
			if isStore {
				set[i].dirty = true
			}
			c.mru[setIdx] = int16(i)
			c.stats.Hits++
			return true
		}
	}

	c.stats.Misses++
	if isStore && !c.cfg.WriteAllocate {
		// Write-through-no-allocate: the store goes to memory, no fill.
		return false
	}

	// Choose a victim: first invalid way, else policy.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		switch c.cfg.Policy {
		case Random:
			victim = int(c.nextRnd() % uint64(len(set)))
		default: // LRU
			victim = 0
			for i := 1; i < len(set); i++ {
				if set[i].lastUse < set[victim].lastUse {
					victim = i
				}
			}
		}
		if set[victim].dirty {
			c.stats.Castouts++
		}
	}

	set[victim] = line{tag: tag, valid: true, dirty: isStore, lastUse: c.tick}
	c.mru[setIdx] = int16(victim)
	c.stats.Reloads++
	return false
}

// Contains reports whether addr currently hits without touching any state
// or statistics (a probe, for tests and warm-up checks).
func (c *Cache) Contains(addr uint64) bool {
	setIdx, tag := c.index(addr)
	set := c.lines[setIdx*uint64(c.ways) : (setIdx+1)*uint64(c.ways)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line, casting out modified ones (counted in
// Castouts). Used at job boundaries: PBS gave users dedicated nodes, so a
// new job starts cold.
func (c *Cache) Flush() {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			c.stats.Castouts++
		}
		c.lines[i] = line{}
	}
	for i := range c.mru {
		c.mru[i] = -1
	}
}
