package cache

// Property tests over randomized geometries and traces. The fixed-config
// equivalence suite pins the POWER2 shapes; these widen the net: for any
// valid geometry, the accounting identity hits+misses == accesses holds,
// and the MRU fast path agrees with the plain associative scan on every
// access.

import (
	"testing"

	"repro/internal/rng"
)

// randomGeometry draws a valid configuration: power-of-two line size and
// set count, any way count, either policy.
func randomGeometry(r *rng.Source) Config {
	line := 1 << r.IntRange(4, 8)
	ways := []int{1, 2, 3, 4, 8}[r.Intn(5)]
	sets := 1 << r.IntRange(0, 6)
	return Config{
		SizeBytes:     sets * ways * line,
		LineBytes:     line,
		Ways:          ways,
		Policy:        Replacement(r.Intn(2)),
		WriteAllocate: r.Bool(0.5),
	}
}

// step advances a trace address the way the equivalence suite does: mostly
// sequential with line-local jitter, sometimes a random jump.
func step(r *rng.Source, addr, footprint uint64) uint64 {
	switch v := r.Uint64(); v % 8 {
	case 0, 1, 2:
		return addr + 8
	case 3, 4:
		return addr ^ (v & 0x38)
	default:
		return v % footprint
	}
}

func TestPropertyCacheStatsBalance(t *testing.T) {
	r := rng.New(0xba1a)
	for trial := 0; trial < 60; trial++ {
		cfg := randomGeometry(r)
		c := New(cfg)
		footprint := uint64(cfg.SizeBytes) * 4
		const accesses = 3000
		var addr uint64
		for i := 0; i < accesses; i++ {
			addr = step(r, addr, footprint)
			c.Access(addr%footprint, r.Bool(0.3))
		}
		s := c.Stats()
		if s.Hits+s.Misses != accesses {
			t.Fatalf("trial %d %+v: hits %d + misses %d != %d accesses", trial, cfg, s.Hits, s.Misses, accesses)
		}
		if s.Accesses() != accesses {
			t.Fatalf("trial %d: Accesses() = %d, want %d", trial, s.Accesses(), accesses)
		}
		if s.Reloads > s.Misses {
			t.Fatalf("trial %d %+v: %d reloads exceed %d misses", trial, cfg, s.Reloads, s.Misses)
		}
		if cfg.WriteAllocate && s.Reloads != s.Misses {
			t.Fatalf("trial %d %+v: write-allocate cache reloaded %d of %d misses", trial, cfg, s.Reloads, s.Misses)
		}
		if ratio := s.MissRatio(); ratio < 0 || ratio > 1 {
			t.Fatalf("trial %d: miss ratio %v out of [0,1]", trial, ratio)
		}
	}
}

// TestPropertyMRUFastPathEquivalence checks the MRU shortcut against the
// reference scan-only port for random geometries: identical hit/miss on
// every access, identical stats throughout, identical victim stream under
// the Random policy.
func TestPropertyMRUFastPathEquivalence(t *testing.T) {
	r := rng.New(0xfa57)
	for trial := 0; trial < 40; trial++ {
		cfg := randomGeometry(r)
		opt := New(cfg)
		ref := newRefCache(cfg)
		footprint := uint64(cfg.SizeBytes) * 4
		var addr uint64
		for i := 0; i < 5000; i++ {
			addr = step(r, addr, footprint)
			a := addr % footprint
			isStore := r.Bool(0.3)
			if oh, rh := opt.Access(a, isStore), ref.Access(a, isStore); oh != rh {
				t.Fatalf("trial %d %+v access %d addr %#x: MRU path hit=%v, scan hit=%v", trial, cfg, i, a, oh, rh)
			}
			if opt.Stats() != ref.stats {
				t.Fatalf("trial %d %+v access %d: stats diverged: %+v vs %+v", trial, cfg, i, opt.Stats(), ref.stats)
			}
			if i%1500 == 1499 {
				opt.Flush()
				ref.Flush()
			}
		}
		if opt.rndState != ref.rndState {
			t.Fatalf("trial %d %+v: random victim streams diverged", trial, cfg)
		}
		// Contents agree: probe a sample of the footprint.
		for i := 0; i < 200; i++ {
			a := r.Uint64() % footprint
			if opt.Contains(a) != ref.Contains(a) {
				t.Fatalf("trial %d %+v: contents diverged at %#x", trial, cfg, a)
			}
		}
	}
}
