package hpm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorExtendsPastWrap(t *testing.T) {
	m := New()
	a := NewAccumulator(m)
	// Drive the cycles register around the 32-bit horn three times. The
	// daemon's contract is that it samples before any register advances a
	// full 2^32 between reads (multipass mode), so sample between bursts.
	for i := 0; i < 3; i++ {
		m.Add(EvCycles, math.MaxUint32)
		a.Sample()
		m.Add(EvCycles, 1) // completes one wrap per pass
		a.Sample()
	}
	want := 3 * (uint64(math.MaxUint32) + 1)
	if got := a.Totals().Get(User, EvCycles); got != want {
		t.Fatalf("extended cycles = %d, want %d", got, want)
	}
}

func TestAccumulatorBaseline(t *testing.T) {
	m := New()
	m.Add(EvCycles, 500) // activity before the accumulator attaches
	a := NewAccumulator(m)
	a.Sample()
	if got := a.Totals().Get(User, EvCycles); got != 0 {
		t.Fatalf("pre-attach activity leaked: %d", got)
	}
	m.Add(EvCycles, 7)
	a.Sample()
	if got := a.Totals().Get(User, EvCycles); got != 7 {
		t.Fatalf("totals = %d", got)
	}
}

func TestAccumulatorSampleIdempotentWhenQuiet(t *testing.T) {
	m := New()
	a := NewAccumulator(m)
	m.Add(EvFXU0Instr, 9)
	a.Sample()
	a.Sample()
	a.Sample()
	if got := a.Totals().Get(User, EvFXU0Instr); got != 9 {
		t.Fatalf("re-sampling double-counted: %d", got)
	}
}

func TestAccumulatorReset(t *testing.T) {
	m := New()
	a := NewAccumulator(m)
	m.Add(EvCycles, 100)
	a.Sample()
	a.Reset()
	if got := a.Totals().Get(User, EvCycles); got != 0 {
		t.Fatalf("Reset left %d", got)
	}
	// Hardware state between Reset and next activity is the new baseline.
	m.Add(EvCycles, 5)
	a.Sample()
	if got := a.Totals().Get(User, EvCycles); got != 5 {
		t.Fatalf("post-reset totals = %d", got)
	}
}

func TestAccumulatorTracksModes(t *testing.T) {
	m := New()
	a := NewAccumulator(m)
	m.Add(EvFXU0Instr, 3)
	m.SetMode(System)
	m.Add(EvFXU0Instr, 11)
	a.Sample()
	tot := a.Totals()
	if tot.Get(User, EvFXU0Instr) != 3 || tot.Get(System, EvFXU0Instr) != 11 {
		t.Fatalf("mode split wrong: %d/%d", tot.Get(User, EvFXU0Instr), tot.Get(System, EvFXU0Instr))
	}
}

func TestAddDirect(t *testing.T) {
	a := NewAccumulator(New())
	a.AddDirect(User, EvCycles, 1<<40) // far beyond 32 bits in one shot
	if got := a.Totals().Get(User, EvCycles); got != 1<<40 {
		t.Fatalf("AddDirect = %d", got)
	}
}

func TestAddDirectRespectsDivBug(t *testing.T) {
	a := NewAccumulator(New())
	a.AddDirect(User, EvFPU0Div, 100)
	a.AddDirect(User, EvFPU1Div, 100)
	if a.Totals().Get(User, EvFPU0Div) != 0 || a.Totals().Get(User, EvFPU1Div) != 0 {
		t.Fatal("divide counts leaked through the bugged monitor")
	}
	// A fixed monitor passes them through.
	b := NewAccumulator(NewWithoutDivBug())
	b.AddDirect(User, EvFPU0Div, 100)
	if b.Totals().Get(User, EvFPU0Div) != 100 {
		t.Fatal("fixed monitor swallowed divide counts")
	}
}

func TestAddDirectPanicsOnInvalidEvent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewAccumulator(New()).AddDirect(User, NumEvents, 1)
}

func TestSub64(t *testing.T) {
	var a, b Counts64
	a.Counts[User][EvCycles] = 100
	b.Counts[User][EvCycles] = 350
	d := Sub64(a, b)
	if d.Get(User, EvCycles) != 250 {
		t.Fatalf("delta = %d", d.Get(User, EvCycles))
	}
}

func TestSub64PanicsOnBackwards(t *testing.T) {
	var a, b Counts64
	a.Counts[User][EvCycles] = 100
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Sub64(a, b)
}

func TestCounts64Add(t *testing.T) {
	var c Counts64
	var d Delta
	d.Counts[System][EvFXU1Instr] = 42
	c.Add(d)
	c.Add(d)
	if c.Get(System, EvFXU1Instr) != 84 {
		t.Fatalf("Add = %d", c.Get(System, EvFXU1Instr))
	}
}

func TestAccumulatorConservationProperty(t *testing.T) {
	// For any increment sequence that respects the sampling contract (no
	// register advances 2^32 between samples), totals equal the arithmetic
	// sum regardless of wraps.
	f := func(incs []uint32, sampleEvery uint8) bool {
		period := int(sampleEvery%5) + 1
		m := New()
		a := NewAccumulator(m)
		var sum uint64
		for i, raw := range incs {
			inc := uint64(raw) % (1 << 29) // period<=5 -> <2^32 between samples
			m.Add(EvFXU1Instr, inc)
			sum += inc
			if i%period == 0 {
				a.Sample()
			}
		}
		a.Sample()
		return a.Totals().Get(User, EvFXU1Instr) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
