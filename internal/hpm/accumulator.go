package hpm

// This file models the software half of the monitoring stack: the 32-bit
// hardware registers wrap every few tens of seconds at SP2 rates (the
// cycles counter alone wraps every ~64 s at 66.7 MHz), so Maki's tools ran
// a "multipass sampling mode" — the daemon re-read the hardware often
// enough that no register could wrap twice, and maintained extended
// software totals. Accumulator is that mechanism.

// Counts64 is the daemon's extended view of the 22 counters in both modes.
type Counts64 struct {
	Counts [numModes][NumEvents]uint64
}

// Get returns one extended counter.
func (c Counts64) Get(m Mode, ev Event) uint64 { return c.Counts[m][ev] }

// Sub64 computes after - before for extended counters. Extended counters
// do not wrap in any realistic campaign (2^64 events); the subtraction is
// plain. It panics if any counter ran backwards, which indicates sample
// misordering.
func Sub64(before, after Counts64) Delta {
	var d Delta
	for m := Mode(0); m < numModes; m++ {
		for e := Event(0); e < NumEvents; e++ {
			b, a := before.Counts[m][e], after.Counts[m][e]
			if a < b {
				panic("hpm: Sub64 with counters running backwards (misordered samples)")
			}
			d.Counts[m][e] = a - b
		}
	}
	return d
}

// Add accumulates a delta into the extended counters.
func (c *Counts64) Add(d Delta) {
	for m := Mode(0); m < numModes; m++ {
		for e := Event(0); e < NumEvents; e++ {
			c.Counts[m][e] += d.Counts[m][e]
		}
	}
}

// Accumulator pairs a hardware monitor with extended software totals.
// Sample must be called before any register can advance by 2^32 between
// calls — the owner (the node) samples after every burst of activity.
type Accumulator struct {
	mon    *Monitor
	last   Snapshot
	totals Counts64
}

// NewAccumulator wraps a monitor. The monitor's current contents become
// the baseline: totals start at zero.
func NewAccumulator(m *Monitor) *Accumulator {
	return &Accumulator{mon: m, last: m.Snapshot()}
}

// Monitor exposes the underlying hardware.
func (a *Accumulator) Monitor() *Monitor { return a.mon }

// Sample reads the hardware registers, wrap-corrects against the previous
// read, and folds the delta into the extended totals.
func (a *Accumulator) Sample() {
	cur := a.mon.Snapshot()
	a.totals.Add(Sub(a.last, cur))
	a.last = cur
}

// Totals returns the extended counters as of the last Sample.
func (a *Accumulator) Totals() Counts64 { return a.totals }

// Reset zeroes the extended totals and re-baselines against the current
// hardware state (job prologue on a dedicated node).
func (a *Accumulator) Reset() {
	a.totals = Counts64{}
	a.last = a.mon.Snapshot()
}

// AddDirect folds counts into the extended totals without touching the
// hardware registers. The campaign's profile extrapolation uses it for
// event volumes that exceed what a 32-bit register can express between
// samples.
func (a *Accumulator) AddDirect(m Mode, ev Event, n uint64) {
	if ev >= NumEvents {
		panic("hpm: AddDirect with invalid event")
	}
	// Respect the hardware divide-counter bug: what the registers never
	// counted, the daemon never saw.
	if a.mon != nil && a.mon.divBug && a.mon.divSlot[ev] {
		return
	}
	a.totals.Counts[m][ev] += n
}
