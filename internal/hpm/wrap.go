package hpm

// 32-bit wraparound arithmetic for the hardware registers. The POWER2
// counters are 32 bits wide and wrap silently — the cycles counter alone
// wraps every ~64 s at 66.7 MHz — so every consumer of consecutive raw
// register reads needs the same correction: interpret the unsigned
// difference modulo 2^32. That is exact provided fewer than 2^32 events
// occurred between the reads (the multipass-sampling contract the daemon
// enforces); a second wrap inside one interval is undetectable from the
// registers alone and can only be caught against an unwrapped 64-bit
// shadow total.

// Wrap32Delta returns the wrap-corrected delta between two consecutive
// reads of one 32-bit counter register, and whether the register wrapped
// between them. The correction assumes at most one wrap: modulo-2^32
// subtraction is exact for any true delta below 2^32 and the result is
// always non-negative by construction.
func Wrap32Delta(before, after uint32) (delta uint64, wrapped bool) {
	return uint64(after - before), after < before
}

// WrapLoss reports the counts a single-wrap-corrected delta lost against
// the true (unwrapped, 64-bit) delta for the same interval. The loss is
// always a multiple of 2^32; a non-zero loss means the register wrapped
// at least twice between reads — the sampling cadence violated the
// multipass contract. It panics if the corrected delta exceeds the true
// one, which indicates the two deltas describe different intervals.
func WrapLoss(corrected, true64 uint64) uint64 {
	if corrected > true64 {
		panic("hpm: WrapLoss with corrected delta exceeding the shadow delta")
	}
	return true64 - corrected
}

// DoubleWrapped reports whether a single-wrap-corrected delta disagrees
// with the unwrapped 64-bit shadow delta — the double-wrap detector the
// fault layer uses to validate reconstructed gaps.
func DoubleWrapped(corrected, true64 uint64) bool {
	return WrapLoss(corrected, true64) != 0
}

// RanBackwards reports whether any extended counter decreased between two
// Counts64 readings. Extended totals never wrap; a decrease means the
// counting state was reset between the reads (daemon restart, node
// reboot) and the interval must be gap-marked instead of differenced.
func RanBackwards(before, after Counts64) bool {
	for m := Mode(0); m < numModes; m++ {
		for e := Event(0); e < NumEvents; e++ {
			if after.Counts[m][e] < before.Counts[m][e] {
				return true
			}
		}
	}
	return false
}
