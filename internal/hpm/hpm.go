// Package hpm implements the POWER2 hardware performance monitor: 22
// 32-bit counters on the SCU chip, organised as five counters each for the
// FXU, FPU0, FPU1 and SCU groups plus two for the ICU (Welbon, 1994). The
// NAS event selection (Table 1 of the paper) is fixed here, the counters
// wrap at 32 bits, and counting is split between user and system mode —
// the feature that let the paper diagnose the >64-node paging pathology.
package hpm

import "fmt"

// Event identifies one of the 22 selected counter events.
type Event uint8

// The NAS SP2 RS2HPM counter selection (paper Table 1), in group order.
const (
	// FXU group.
	EvFXU0Instr  Event = iota // FXU[0]: instructions executed by FXU 0
	EvFXU1Instr               // FXU[1]: instructions executed by FXU 1
	EvDCacheMiss              // FXU[2]: FPU+FXU requests not in the D-cache
	EvTLBMiss                 // FXU[3]: FPU+FXU requests missing the TLB
	EvCycles                  // FXU[4]: cycles

	// FPU0 group.
	EvFPU0Instr // FPU0[0]: arithmetic instructions executed by Math 0
	EvFPU0Add   // FPU0[1]: floating adds executed by Math 0
	EvFPU0Mul   // FPU0[2]: floating multiplies executed by Math 0
	EvFPU0Div   // FPU0[3]: floating divides executed by Math 0 (broken in hw)
	EvFPU0FMA   // FPU0[4]: floating multiply-adds executed by Math 0

	// FPU1 group.
	EvFPU1Instr // FPU1[0]: arithmetic instructions executed by Math 1
	EvFPU1Add   // FPU1[1]: floating adds executed by Math 1
	EvFPU1Mul   // FPU1[2]: floating multiplies executed by Math 1
	EvFPU1Div   // FPU1[3]: floating divides executed by Math 1 (broken in hw)
	EvFPU1FMA   // FPU1[4]: floating multiply-adds executed by Math 1

	// ICU group.
	EvICUType1 // ICU[0]: type I instructions executed (branches)
	EvICUType2 // ICU[1]: type II instructions executed (condition register)

	// SCU group.
	EvICacheReload // SCU[0]: memory-to-I-cache transfers
	EvDCacheReload // SCU[1]: memory-to-D-cache transfers
	EvDCacheStore  // SCU[2]: D-cache-to-memory castouts of modified data
	EvDMARead      // SCU[3]: memory-to-I/O-device transfers
	EvDMAWrite     // SCU[4]: I/O-device-to-memory transfers

	// NumEvents is the number of selected counters (22).
	NumEvents
)

// Mode distinguishes user-state from system-state counting.
type Mode uint8

// Execution modes.
const (
	User Mode = iota
	System
	numModes
)

// String names the mode.
func (m Mode) String() string {
	if m == User {
		return "user"
	}
	return "system"
}

// CounterInfo describes one Table 1 row.
type CounterInfo struct {
	Event       Event
	Label       string // the RS2HPM label, e.g. "user.fxu0"
	Group       string // hardware group: FXU, FPU0, FPU1, ICU, SCU
	Index       int    // index within the group's five counters
	Description string
}

var table1 = [NumEvents]CounterInfo{
	EvFXU0Instr:    {EvFXU0Instr, "user.fxu0", "FXU", 0, "number of instructions executed by Execution unit 0"},
	EvFXU1Instr:    {EvFXU1Instr, "user.fxu1", "FXU", 1, "number of instructions executed by Execution unit 1"},
	EvDCacheMiss:   {EvDCacheMiss, "user.dcache_mis", "FXU", 2, "FPU and FXU requests for data not in the D-cache"},
	EvTLBMiss:      {EvTLBMiss, "user.tlb_mis", "FXU", 3, "FPU and FXU requests for data not in the TLB"},
	EvCycles:       {EvCycles, "user.cycles", "FXU", 4, "user cycles"},
	EvFPU0Instr:    {EvFPU0Instr, "user.fpu0", "FPU0", 0, "arithmetic instructions executed by Math 0"},
	EvFPU0Add:      {EvFPU0Add, "fpop.fp_add", "FPU0", 1, "floating point adds executed by Math 0"},
	EvFPU0Mul:      {EvFPU0Mul, "fpop.fp_mul", "FPU0", 2, "floating point multiplies executed by Math 0"},
	EvFPU0Div:      {EvFPU0Div, "fpop.fp_div", "FPU0", 3, "floating point divides executed by Math 0"},
	EvFPU0FMA:      {EvFPU0FMA, "fpop.fp_muladd", "FPU0", 4, "floating point multiply-adds executed by Math 0"},
	EvFPU1Instr:    {EvFPU1Instr, "user.fpu1", "FPU1", 0, "arithmetic instructions executed by Math 1"},
	EvFPU1Add:      {EvFPU1Add, "fpop.fp_add", "FPU1", 1, "floating point adds executed by Math 1"},
	EvFPU1Mul:      {EvFPU1Mul, "fpop.fp_mul", "FPU1", 2, "floating point multiplies executed by Math 1"},
	EvFPU1Div:      {EvFPU1Div, "fpop.fp_div", "FPU1", 3, "floating point divides executed by Math 1"},
	EvFPU1FMA:      {EvFPU1FMA, "fpop.fp_muladd", "FPU1", 4, "floating point multiply-adds executed by Math 1"},
	EvICUType1:     {EvICUType1, "user.icu0", "ICU", 0, "number of type I instructions executed"},
	EvICUType2:     {EvICUType2, "user.icu1", "ICU", 1, "number of type II instructions executed"},
	EvICacheReload: {EvICacheReload, "user.icache_reload", "SCU", 0, "data transfers from memory to the I-cache"},
	EvDCacheReload: {EvDCacheReload, "user.dcache_reload", "SCU", 1, "data transfers from memory to the D-cache"},
	EvDCacheStore:  {EvDCacheStore, "user.dcache_store", "SCU", 2, "transfers of modified D-cache data to memory"},
	EvDMARead:      {EvDMARead, "user.dma_read", "SCU", 3, "data transfers from memory to an I/O device"},
	EvDMAWrite:     {EvDMAWrite, "user.dma_write", "SCU", 4, "data transfers to memory from an I/O device"},
}

// Info returns the Table 1 row for an event.
func Info(ev Event) CounterInfo {
	if ev >= NumEvents {
		panic(fmt.Sprintf("hpm: invalid event %d", ev))
	}
	return table1[ev]
}

// Table1 returns the full NAS counter selection in Table 1 order.
func Table1() []CounterInfo {
	out := make([]CounterInfo, NumEvents)
	copy(out, table1[:])
	return out
}

// String returns the RS2HPM label for the event.
func (e Event) String() string {
	if e >= NumEvents {
		return fmt.Sprintf("event(%d)", uint8(e))
	}
	return table1[e].Label
}

// Snapshot is a point-in-time reading of all counters in both modes. The
// values are the raw 32-bit register contents.
type Snapshot struct {
	Counts [numModes][NumEvents]uint32
}

// Get returns the raw register value for one counter.
func (s Snapshot) Get(m Mode, ev Event) uint32 { return s.Counts[m][ev] }

// Delta holds 64-bit event counts between two snapshots, wrap-corrected.
type Delta struct {
	Counts [numModes][NumEvents]uint64
}

// Get returns the count for one counter over the interval.
func (d Delta) Get(m Mode, ev Event) uint64 { return d.Counts[m][ev] }

// Total returns user + system counts for one event.
func (d Delta) Total(ev Event) uint64 {
	return d.Counts[User][ev] + d.Counts[System][ev]
}

// Add accumulates another delta into this one.
func (d *Delta) Add(o Delta) {
	for m := Mode(0); m < numModes; m++ {
		for e := Event(0); e < NumEvents; e++ {
			d.Counts[m][e] += o.Counts[m][e]
		}
	}
}

// Sub computes after - before with single-wrap correction on each 32-bit
// register: provided fewer than 2^32 events occurred in the interval (the
// reason RS2HPM sampled every 15 minutes), the correction is exact. See
// Wrap32Delta for the arithmetic and its double-wrap caveat.
func Sub(before, after Snapshot) Delta {
	var d Delta
	for m := Mode(0); m < numModes; m++ {
		for e := Event(0); e < NumEvents; e++ {
			d.Counts[m][e], _ = Wrap32Delta(before.Counts[m][e], after.Counts[m][e])
		}
	}
	return d
}

// Monitor is the counting hardware on one node's SCU. Not safe for
// concurrent use; the node wraps it behind its own synchronisation.
type Monitor struct {
	counts [numModes][NumEvents]uint32
	mode   Mode

	// sel is the armed event selection (Table 1's NAS selection by
	// default); router maps hardware signals onto its counter slots.
	// divSlot marks the slots the armed selection routes a divide signal
	// to, precomputed so per-count paths (AddDirect in particular, which
	// the campaign's profile extrapolation calls per event per job per
	// tick) avoid two Selection slot compares.
	sel     Selection
	router  router
	divSlot [NumEvents]bool

	// The paper documents an implementation error in the hardware monitor
	// that prevented proper reporting of divide operations; the fp_div
	// counters always read zero. trueDivides preserves the real count for
	// validation so the bug is modelled, not silently forgotten.
	divBug      bool
	trueDivides [numModes]uint64
}

// New returns a monitor armed with the NAS selection and the hardware
// divide-counter bug enabled, as on the real machine.
func New() *Monitor {
	sel := NASSelection()
	return &Monitor{divBug: true, sel: sel, router: buildRouter(sel), divSlot: buildDivSlots(sel)}
}

// NewWithoutDivBug returns a monitor whose divide counters work; used by
// the ablation bench to show what Table 3's Mflops-div row would have been.
func NewWithoutDivBug() *Monitor {
	sel := NASSelection()
	return &Monitor{sel: sel, router: buildRouter(sel), divSlot: buildDivSlots(sel)}
}

// SetMode switches between user and system counting state.
func (m *Monitor) SetMode(mode Mode) {
	if mode >= numModes {
		panic(fmt.Sprintf("hpm: invalid mode %d", mode))
	}
	m.mode = mode
}

// CurrentMode reports the counting state.
func (m *Monitor) CurrentMode() Mode { return m.mode }

// Add increments a counter slot by n in the current mode, wrapping at 32
// bits as the hardware does. The slot is addressed by its Table 1 position;
// if the armed selection routes a divide signal there, the hardware bug
// swallows the count.
func (m *Monitor) Add(ev Event, n uint64) {
	if ev >= NumEvents {
		panic(fmt.Sprintf("hpm: invalid event %d", ev))
	}
	if m.divBug && m.divSlot[ev] {
		m.trueDivides[m.mode] += n
		return
	}
	m.counts[m.mode][ev] += uint32(n) // wraps naturally
}

// Inc increments an event counter by one.
func (m *Monitor) Inc(ev Event) { m.Add(ev, 1) }

// Snapshot returns the current raw register values.
func (m *Monitor) Snapshot() Snapshot {
	var s Snapshot
	s.Counts = m.counts
	return s
}

// TrueDivides reports the divides the hardware failed to count, for
// validation against the paper's "~3% of total floating operations" note.
func (m *Monitor) TrueDivides(mode Mode) uint64 { return m.trueDivides[mode] }

// Reset zeroes every counter (job prologue on a dedicated node).
func (m *Monitor) Reset() {
	m.counts = [numModes][NumEvents]uint32{}
	m.trueDivides = [numModes]uint64{}
}
