package hpm

import "testing"

func TestNASSelectionValid(t *testing.T) {
	if err := NASSelection().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := IOWaitSelection().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionValidateRejectsCrossBank(t *testing.T) {
	s := NASSelection()
	s.Slots[EvFXU0Instr] = SigFPU0Add // FPU0-bank signal on an FXU slot
	if err := s.Validate(); err == nil {
		t.Fatal("cross-bank selection accepted")
	}
}

func TestSelectionValidateRejectsDuplicates(t *testing.T) {
	s := NASSelection()
	s.Slots[EvFXU1Instr] = SigFXU0Instr // duplicate of slot 0
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate selection accepted")
	}
}

func TestSelectionValidateRejectsEmptySlot(t *testing.T) {
	s := NASSelection()
	s.Slots[EvCycles] = SigNone
	if err := s.Validate(); err == nil {
		t.Fatal("empty slot accepted")
	}
}

func TestSignalRoutingUnderNAS(t *testing.T) {
	m := New()
	m.Signal(SigFXU0Instr, 7)
	m.Signal(SigDCacheMiss, 3)
	// Signals outside the NAS selection must vanish.
	m.Signal(SigIOWaitCycles, 1000)
	m.Signal(SigBranchTaken, 50)
	s := m.Snapshot()
	if s.Get(User, EvFXU0Instr) != 7 || s.Get(User, EvDCacheMiss) != 3 {
		t.Fatal("selected signals not counted")
	}
	total := uint64(0)
	for ev := Event(0); ev < NumEvents; ev++ {
		total += uint64(s.Get(User, ev))
	}
	if total != 10 {
		t.Fatalf("unselected signals leaked into registers: total=%d", total)
	}
}

func TestArmIOWaitSelection(t *testing.T) {
	m := New()
	m.Signal(SigCycles, 99)
	if err := m.Arm("iowait"); err != nil {
		t.Fatal(err)
	}
	// Arming resets the registers.
	if m.Snapshot().Get(User, EvCycles) != 0 {
		t.Fatal("Arm did not reset counters")
	}
	// I/O wait now lands in the repurposed SCU slot; icache reloads vanish.
	m.Signal(SigIOWaitCycles, 1234)
	m.Signal(SigICacheReload, 55)
	m.Signal(SigPageIns, 9)
	m.Signal(SigSwitchMsgBytes, 77)
	s := m.Snapshot()
	if got := s.Get(User, EvICacheReload); got != 1234 {
		t.Fatalf("io_wait slot = %d, want 1234", got)
	}
	if got := s.Get(User, EvDMARead); got != 9 {
		t.Fatalf("page_ins slot = %d, want 9", got)
	}
	if got := s.Get(User, EvDMAWrite); got != 77 {
		t.Fatalf("switch payload slot = %d, want 77", got)
	}
	if m.Selection().Name != "iowait" {
		t.Fatalf("Selection = %q", m.Selection().Name)
	}
}

func TestArmRejectsUnverified(t *testing.T) {
	if err := New().Arm("never-implemented"); err == nil {
		t.Fatal("unverified selection armed")
	}
}

func TestVerifySelectionRegistersCustom(t *testing.T) {
	s := NASSelection()
	s.Name = "custom-dirsearch"
	s.Slots[EvDCacheMiss] = SigFXU0DirSearch
	if err := VerifySelection(s); err != nil {
		t.Fatal(err)
	}
	m := New()
	if err := m.Arm("custom-dirsearch"); err != nil {
		t.Fatal(err)
	}
	m.Signal(SigFXU0DirSearch, 4)
	m.Signal(SigDCacheMiss, 9) // no longer selected
	if got := m.Snapshot().Get(User, EvDCacheMiss); got != 4 {
		t.Fatalf("custom slot = %d, want 4", got)
	}
}

func TestVerifySelectionRejectsInvalid(t *testing.T) {
	s := NASSelection()
	s.Name = ""
	if err := VerifySelection(s); err == nil {
		t.Fatal("unnamed selection verified")
	}
	s = NASSelection()
	s.Name = "bad"
	s.Slots[EvCycles] = SigDMARead // SCU signal on FXU slot
	if err := VerifySelection(s); err == nil {
		t.Fatal("invalid selection verified")
	}
}

func TestDivideBugIsSignalLevel(t *testing.T) {
	// Whatever slot selects a divide signal, the hardware never delivers
	// the counts.
	s := NASSelection()
	s.Name = "div-on-slot4"
	s.Slots[EvFPU0Div] = SigFPU0Sqrt // move div off its usual slot...
	s.Slots[EvFPU0FMA] = SigFPU0Div  // ...onto the fma slot
	if err := VerifySelection(s); err != nil {
		t.Fatal(err)
	}
	m := New()
	if err := m.Arm("div-on-slot4"); err != nil {
		t.Fatal(err)
	}
	m.Signal(SigFPU0Div, 100)
	if got := m.Snapshot().Get(User, EvFPU0FMA); got != 0 {
		t.Fatalf("divide counts reached a register: %d", got)
	}
	if m.TrueDivides(User) != 100 {
		t.Fatalf("TrueDivides = %d", m.TrueDivides(User))
	}
	// Sqrt now counts on the old div slot.
	m.Signal(SigFPU0Sqrt, 5)
	if got := m.Snapshot().Get(User, EvFPU0Div); got != 5 {
		t.Fatalf("sqrt on div slot = %d", got)
	}
}

func TestSignalPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New().Signal(NumSignals, 1)
}

func TestSignalNamesAndGroups(t *testing.T) {
	if SigIOWaitCycles.String() != "io_wait_cycles" || SigIOWaitCycles.Group() != "SCU" {
		t.Fatal("io_wait metadata wrong")
	}
	if Signal(9999).String() == "" || Signal(9999).Group() != "" {
		t.Fatal("invalid signal metadata wrong")
	}
	for sig := Signal(1); sig < NumSignals; sig++ {
		if sig.String() == "" || sig.Group() == "" {
			t.Errorf("signal %d missing metadata", sig)
		}
	}
}

func TestSignalModeSplit(t *testing.T) {
	m := New()
	m.Signal(SigFXU0Instr, 2)
	m.SetMode(System)
	m.Signal(SigFXU0Instr, 5)
	s := m.Snapshot()
	if s.Get(User, EvFXU0Instr) != 2 || s.Get(System, EvFXU0Instr) != 5 {
		t.Fatal("signal counting ignores mode")
	}
}
