package hpm

// This file models the layer below Table 1: the POWER2 performance monitor
// could observe ~320 (partly overlapping) signals, of which software
// selects one per counter slot — "each combination must be implemented and
// verified in the monitoring software" (paper §3, citing Welbon 1994). The
// NAS deployment armed the 22-event selection of Table 1; the paper's
// conclusion recommends that other sites select options reporting I/O wait
// in addition to CPU performance. Both selections are implemented here,
// and the CPU model emits the superset of signals so alternative
// selections see real data.

import "fmt"

// Signal identifies one selectable performance-monitor signal.
type Signal uint16

// The signal catalog, grouped by the chip unit that sources them. This is
// a representative implementation of the documented catalog: every signal
// the NAS selection needs, the unit-level signals the paper's text
// discusses (directory searches, store overlap, branches taken, I/O wait),
// and the usual decode/dispatch signals. The real hardware exposed ~320
// partly-overlapping encodings.
const (
	SigNone Signal = iota

	// FXU-sourced signals.
	SigFXU0Instr
	SigFXU1Instr
	SigDCacheMiss
	SigTLBMiss
	SigCycles
	SigFXU0DirSearch // D-cache directory searches handled by FXU0 (paper §5)
	SigFXUAddrMulDiv // addressing multiply/divide executed (FXU1 only)
	SigFXULoads      // storage-reference loads (quad counts once)
	SigFXUStores     // storage-reference stores (quad counts once)

	// FPU0-sourced signals.
	SigFPU0Instr
	SigFPU0Add
	SigFPU0Mul
	SigFPU0Div
	SigFPU0FMA
	SigFPU0Sqrt
	SigFPU0StOverlap // stores overlapped with arithmetic (paper §2)

	// FPU1-sourced signals.
	SigFPU1Instr
	SigFPU1Add
	SigFPU1Mul
	SigFPU1Div
	SigFPU1FMA
	SigFPU1Sqrt
	SigFPU1StOverlap

	// ICU-sourced signals.
	SigICUType1
	SigICUType2
	SigBranchTaken
	SigDispatchedInstr // instructions dispatched to FXU/FPU

	// SCU-sourced signals.
	SigICacheReload
	SigDCacheReload
	SigDCacheStore
	SigDMARead
	SigDMAWrite
	SigIOWaitCycles   // cycles the CPU waited on I/O (paging, messages)
	SigPageIns        // pages brought back from paging space
	SigSwitchMsgBytes // adapter payload bytes (in 64-byte units)

	NumSignals // sentinel
)

// signalInfo describes a catalog entry.
type signalInfo struct {
	name  string
	group string // which unit's counter bank can select it
}

var signalTable = [NumSignals]signalInfo{
	SigNone:            {"none", ""},
	SigFXU0Instr:       {"fxu0_instr", "FXU"},
	SigFXU1Instr:       {"fxu1_instr", "FXU"},
	SigDCacheMiss:      {"dcache_miss", "FXU"},
	SigTLBMiss:         {"tlb_miss", "FXU"},
	SigCycles:          {"cycles", "FXU"},
	SigFXU0DirSearch:   {"fxu0_dir_search", "FXU"},
	SigFXUAddrMulDiv:   {"fxu_addr_muldiv", "FXU"},
	SigFXULoads:        {"fxu_loads", "FXU"},
	SigFXUStores:       {"fxu_stores", "FXU"},
	SigFPU0Instr:       {"fpu0_instr", "FPU0"},
	SigFPU0Add:         {"fpu0_add", "FPU0"},
	SigFPU0Mul:         {"fpu0_mul", "FPU0"},
	SigFPU0Div:         {"fpu0_div", "FPU0"},
	SigFPU0FMA:         {"fpu0_fma", "FPU0"},
	SigFPU0Sqrt:        {"fpu0_sqrt", "FPU0"},
	SigFPU0StOverlap:   {"fpu0_st_overlap", "FPU0"},
	SigFPU1Instr:       {"fpu1_instr", "FPU1"},
	SigFPU1Add:         {"fpu1_add", "FPU1"},
	SigFPU1Mul:         {"fpu1_mul", "FPU1"},
	SigFPU1Div:         {"fpu1_div", "FPU1"},
	SigFPU1FMA:         {"fpu1_fma", "FPU1"},
	SigFPU1Sqrt:        {"fpu1_sqrt", "FPU1"},
	SigFPU1StOverlap:   {"fpu1_st_overlap", "FPU1"},
	SigICUType1:        {"icu_type1", "ICU"},
	SigICUType2:        {"icu_type2", "ICU"},
	SigBranchTaken:     {"branch_taken", "ICU"},
	SigDispatchedInstr: {"dispatched_instr", "ICU"},
	SigICacheReload:    {"icache_reload", "SCU"},
	SigDCacheReload:    {"dcache_reload", "SCU"},
	SigDCacheStore:     {"dcache_store", "SCU"},
	SigDMARead:         {"dma_read", "SCU"},
	SigDMAWrite:        {"dma_write", "SCU"},
	SigIOWaitCycles:    {"io_wait_cycles", "SCU"},
	SigPageIns:         {"page_ins", "SCU"},
	SigSwitchMsgBytes:  {"switch_msg_64b", "SCU"},
}

// String returns the catalog name of the signal.
func (s Signal) String() string {
	if s >= NumSignals {
		return fmt.Sprintf("signal(%d)", uint16(s))
	}
	return signalTable[s].name
}

// Group returns the unit whose counter bank can select the signal.
func (s Signal) Group() string {
	if s >= NumSignals {
		return ""
	}
	return signalTable[s].group
}

// slotGroups names the counter bank each of the 22 slots belongs to, in
// Event order.
var slotGroups = [NumEvents]string{
	EvFXU0Instr: "FXU", EvFXU1Instr: "FXU", EvDCacheMiss: "FXU",
	EvTLBMiss: "FXU", EvCycles: "FXU",
	EvFPU0Instr: "FPU0", EvFPU0Add: "FPU0", EvFPU0Mul: "FPU0",
	EvFPU0Div: "FPU0", EvFPU0FMA: "FPU0",
	EvFPU1Instr: "FPU1", EvFPU1Add: "FPU1", EvFPU1Mul: "FPU1",
	EvFPU1Div: "FPU1", EvFPU1FMA: "FPU1",
	EvICUType1: "ICU", EvICUType2: "ICU",
	EvICacheReload: "SCU", EvDCacheReload: "SCU", EvDCacheStore: "SCU",
	EvDMARead: "SCU", EvDMAWrite: "SCU",
}

// Selection assigns one signal to each of the 22 counter slots.
type Selection struct {
	Name  string
	Slots [NumEvents]Signal
}

// Validate checks that every slot carries a signal its counter bank can
// select and that no signal is selected twice.
func (s Selection) Validate() error {
	seen := map[Signal]Event{}
	for ev := Event(0); ev < NumEvents; ev++ {
		sig := s.Slots[ev]
		if sig == SigNone || sig >= NumSignals {
			return fmt.Errorf("hpm: selection %q slot %v has no signal", s.Name, ev)
		}
		if sig.Group() != slotGroups[ev] {
			return fmt.Errorf("hpm: selection %q slot %v (%s bank) cannot select %s-bank signal %v",
				s.Name, ev, slotGroups[ev], sig.Group(), sig)
		}
		if prev, dup := seen[sig]; dup {
			return fmt.Errorf("hpm: selection %q selects %v on both %v and %v", s.Name, sig, prev, ev)
		}
		seen[sig] = ev
	}
	return nil
}

// NASSelection is Table 1: the 22 events NAS armed for the campaign.
func NASSelection() Selection {
	var s Selection
	s.Name = "nas"
	s.Slots = [NumEvents]Signal{
		EvFXU0Instr: SigFXU0Instr, EvFXU1Instr: SigFXU1Instr,
		EvDCacheMiss: SigDCacheMiss, EvTLBMiss: SigTLBMiss, EvCycles: SigCycles,
		EvFPU0Instr: SigFPU0Instr, EvFPU0Add: SigFPU0Add, EvFPU0Mul: SigFPU0Mul,
		EvFPU0Div: SigFPU0Div, EvFPU0FMA: SigFPU0FMA,
		EvFPU1Instr: SigFPU1Instr, EvFPU1Add: SigFPU1Add, EvFPU1Mul: SigFPU1Mul,
		EvFPU1Div: SigFPU1Div, EvFPU1FMA: SigFPU1FMA,
		EvICUType1: SigICUType1, EvICUType2: SigICUType2,
		EvICacheReload: SigICacheReload, EvDCacheReload: SigDCacheReload,
		EvDCacheStore: SigDCacheStore, EvDMARead: SigDMARead, EvDMAWrite: SigDMAWrite,
	}
	return s
}

// IOWaitSelection is the counter option the paper's conclusion recommends:
// keep the CPU-performance core but repurpose three SCU slots for I/O wait
// cycles, page-ins and switch payload — "counter options which could also
// report I/O wait time in addition to CPU performance".
func IOWaitSelection() Selection {
	s := NASSelection()
	s.Name = "iowait"
	s.Slots[EvICacheReload] = SigIOWaitCycles
	s.Slots[EvDMARead] = SigPageIns
	s.Slots[EvDMAWrite] = SigSwitchMsgBytes
	return s
}

// verifiedSelections is the registry of combinations that have been
// "implemented and verified in the monitoring software". Arming an
// unverified selection is rejected, as on the real system.
var verifiedSelections = map[string]Selection{}

func init() {
	for _, s := range []Selection{NASSelection(), IOWaitSelection()} {
		if err := s.Validate(); err != nil {
			panic(err)
		}
		verifiedSelections[s.Name] = s
	}
}

// VerifySelection validates a custom selection and registers it as
// implemented, making it armable.
func VerifySelection(s Selection) error {
	if s.Name == "" {
		return fmt.Errorf("hpm: selection needs a name")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	verifiedSelections[s.Name] = s
	return nil
}

// VerifiedSelection looks up a registered selection by name.
func VerifiedSelection(name string) (Selection, bool) {
	s, ok := verifiedSelections[name]
	return s, ok
}

// router maps signals to counter slots for an armed selection.
type router [NumSignals]int8

func buildRouter(sel Selection) router {
	var r router
	for i := range r {
		r[i] = -1
	}
	for ev := Event(0); ev < NumEvents; ev++ {
		r[sel.Slots[ev]] = int8(ev)
	}
	return r
}

// Selection reports the selection the monitor is armed with.
func (m *Monitor) Selection() Selection { return m.sel }

// Arm re-programs the monitor with a verified selection, clearing the
// counters (re-arming the hardware resets the registers). It fails for
// selections that were never verified.
func (m *Monitor) Arm(name string) error {
	sel, ok := VerifiedSelection(name)
	if !ok {
		return fmt.Errorf("hpm: selection %q not implemented/verified", name)
	}
	m.sel = sel
	m.router = buildRouter(sel)
	m.divSlot = buildDivSlots(sel)
	m.Reset()
	return nil
}

// buildDivSlots precomputes which counter slots the selection routes the
// (hardware-bugged) divide signals into.
func buildDivSlots(sel Selection) [NumEvents]bool {
	var d [NumEvents]bool
	for ev := Event(0); ev < NumEvents; ev++ {
		d[ev] = sel.Slots[ev] == SigFPU0Div || sel.Slots[ev] == SigFPU1Div
	}
	return d
}

// Signal counts n occurrences of a hardware signal; it lands in a counter
// register only if the armed selection routes it to a slot. The divide
// counter bug is a property of the divide *signals*: the hardware never
// delivered them, whatever slot selected them.
func (m *Monitor) Signal(sig Signal, n uint64) {
	if sig >= NumSignals {
		panic(fmt.Sprintf("hpm: invalid signal %d", sig))
	}
	if m.divBug && (sig == SigFPU0Div || sig == SigFPU1Div) {
		m.trueDivides[m.mode] += n
		return
	}
	slot := m.router[sig]
	if slot < 0 {
		return
	}
	m.counts[m.mode][slot] += uint32(n)
}
