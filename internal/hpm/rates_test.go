package hpm

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// paperDelta builds a user-mode delta whose rates over 1 second reproduce
// Table 3's average column: Mflops-add 9.5 (4.7 of it from fma adds),
// Mflops-mul 3.2, Mflops-fma 4.7, FPU0 9.4, FPU1 5.4 Mips, FXU0 11.1,
// FXU1 16.5 Mips, ICU 3.3 Mips, cache 0.30, TLB 0.04, icache 0.014,
// DMA 0.024/0.017 M/s.
func paperDelta() Delta {
	var d Delta
	set := func(ev Event, millions float64) {
		d.Counts[User][ev] = uint64(millions * 1e6)
	}
	// Split FPU work roughly 1.7:1 between units.
	set(EvFPU0Add, 6.0)
	set(EvFPU1Add, 3.5)
	set(EvFPU0Mul, 2.0)
	set(EvFPU1Mul, 1.2)
	set(EvFPU0FMA, 3.0)
	set(EvFPU1FMA, 1.7)
	set(EvFPU0Instr, 9.4)
	set(EvFPU1Instr, 5.4)
	set(EvFXU0Instr, 11.1)
	set(EvFXU1Instr, 16.5)
	set(EvICUType1, 3.0)
	set(EvICUType2, 0.3)
	set(EvDCacheMiss, 0.30)
	set(EvTLBMiss, 0.04)
	set(EvICacheReload, 0.014)
	set(EvDMARead, 0.024)
	set(EvDMAWrite, 0.017)
	return d
}

func TestUserRatesReproduceTable3Arithmetic(t *testing.T) {
	r := UserRates(paperDelta(), 1.0)
	if !approx(r.MflopsAdd, 9.5, 1e-9) {
		t.Fatalf("MflopsAdd = %v", r.MflopsAdd)
	}
	if !approx(r.MflopsMul, 3.2, 1e-9) {
		t.Fatalf("MflopsMul = %v", r.MflopsMul)
	}
	if !approx(r.MflopsFMA, 4.7, 1e-9) {
		t.Fatalf("MflopsFMA = %v", r.MflopsFMA)
	}
	if !approx(r.MflopsAll, 17.4, 1e-9) {
		t.Fatalf("MflopsAll = %v, want 17.4 (Table 3 avg)", r.MflopsAll)
	}
	if !approx(r.MipsFPU, 14.8, 1e-9) {
		t.Fatalf("MipsFPU = %v, want 14.8", r.MipsFPU)
	}
	if !approx(r.MipsFXU, 27.6, 1e-9) {
		t.Fatalf("MipsFXU = %v, want 27.6", r.MipsFXU)
	}
	if !approx(r.MipsICU, 3.3, 1e-9) {
		t.Fatalf("MipsICU = %v, want 3.3", r.MipsICU)
	}
	// Table 2 aggregates: Mips 45.7, Mops 48.3.
	if !approx(r.Mips, 45.7, 1e-9) {
		t.Fatalf("Mips = %v, want 45.7", r.Mips)
	}
	if !approx(r.Mops, 48.3, 1e-9) {
		t.Fatalf("Mops = %v, want 48.3", r.Mops)
	}
}

func TestFMAFractionMatchesPaper(t *testing.T) {
	r := UserRates(paperDelta(), 1.0)
	// Paper: fma produces ~54% of the flops (2*4.7/17.4 = 0.54).
	if got := r.FMAFraction(); !approx(got, 0.54, 0.005) {
		t.Fatalf("FMAFraction = %v, want ~0.54", got)
	}
}

func TestFPUAsymmetryMatchesPaper(t *testing.T) {
	r := UserRates(paperDelta(), 1.0)
	if got := r.FPUAsymmetry(); !approx(got, 1.74, 0.01) {
		t.Fatalf("FPUAsymmetry = %v, want ~1.7", got)
	}
}

func TestFlopsPerMemRef(t *testing.T) {
	r := UserRates(paperDelta(), 1.0)
	// Paper: ~0.53 for the workload sample (17.4/27.6 = 0.63; the paper's
	// 0.53 uses floating-point memory instructions only — we accept the
	// FXU-based measure here and verify the exact quotient).
	if got := r.FlopsPerMemRef(); !approx(got, 17.4/27.6, 1e-9) {
		t.Fatalf("FlopsPerMemRef = %v", got)
	}
}

func TestMissRatios(t *testing.T) {
	r := UserRates(paperDelta(), 1.0)
	// Paper: cache-miss ratio ~1.0%, TLB ~0.1% (lower bounds over FXU sum).
	if got := r.CacheMissRatio(); !approx(got, 0.30/27.6, 1e-9) {
		t.Fatalf("CacheMissRatio = %v", got)
	}
	if r.CacheMissRatio() < 0.009 || r.CacheMissRatio() > 0.012 {
		t.Fatalf("CacheMissRatio = %v, want ~0.011", r.CacheMissRatio())
	}
	if r.TLBMissRatio() < 0.001 || r.TLBMissRatio() > 0.002 {
		t.Fatalf("TLBMissRatio = %v, want ~0.0014", r.TLBMissRatio())
	}
}

func TestDelayPerMemRef(t *testing.T) {
	r := UserRates(paperDelta(), 1.0)
	// Paper: ~0.12 cycles per memory reference with 8-cycle cache and
	// ~45-cycle TLB penalties.
	got := r.DelayPerMemRef(8, 45)
	if got < 0.10 || got > 0.18 {
		t.Fatalf("DelayPerMemRef = %v, want ~0.15", got)
	}
}

func TestBranchFraction(t *testing.T) {
	r := UserRates(paperDelta(), 1.0)
	if got := r.BranchFraction(); !approx(got, 3.3/45.7, 1e-9) {
		t.Fatalf("BranchFraction = %v", got)
	}
}

func TestSystemRatesSeparateFromUser(t *testing.T) {
	var d Delta
	d.Counts[User][EvFXU0Instr] = 1e6
	d.Counts[System][EvFXU0Instr] = 5e6
	ur := UserRates(d, 1.0)
	sr := SystemRates(d, 1.0)
	if !approx(ur.MipsFXU0, 1.0, 1e-9) || !approx(sr.MipsFXU0, 5.0, 1e-9) {
		t.Fatalf("user %v / system %v", ur.MipsFXU0, sr.MipsFXU0)
	}
}

func TestSystemUserFXURatio(t *testing.T) {
	var d Delta
	d.Counts[User][EvFXU0Instr] = 2e6
	d.Counts[User][EvFXU1Instr] = 2e6
	d.Counts[System][EvFXU0Instr] = 6e6
	d.Counts[System][EvFXU1Instr] = 2e6
	if got := SystemUserFXURatio(d); !approx(got, 2.0, 1e-9) {
		t.Fatalf("ratio = %v, want 2", got)
	}
	// No user instructions at all.
	var e Delta
	if got := SystemUserFXURatio(e); got != 0 {
		t.Fatalf("empty ratio = %v", got)
	}
	e.Counts[System][EvFXU0Instr] = 3
	if got := SystemUserFXURatio(e); got != 3 {
		t.Fatalf("system-only ratio = %v", got)
	}
}

func TestZeroIntervalRatesAreZero(t *testing.T) {
	r := UserRates(paperDelta(), 0)
	if r.MflopsAll != 0 || r.Mips != 0 {
		t.Fatal("zero-interval rates not zero")
	}
	if r.FMAFraction() != 0 || r.FPUAsymmetry() != 0 || r.FlopsPerMemRef() != 0 ||
		r.CacheMissRatio() != 0 || r.TLBMissRatio() != 0 || r.BranchFraction() != 0 ||
		r.DelayPerMemRef(8, 45) != 0 {
		t.Fatal("derived ratios on zero rates not zero")
	}
}

func TestDivBuggedMonitorYieldsZeroDivRate(t *testing.T) {
	m := New()
	m.Add(EvFPU0Div, 1e6)
	before := Snapshot{}
	d := Sub(before, m.Snapshot())
	r := UserRates(d, 1.0)
	if r.MflopsDiv != 0 {
		t.Fatalf("MflopsDiv = %v, want 0 (Table 3's Mflops-div row)", r.MflopsDiv)
	}
}
