package hpm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1HasTwentyTwoCounters(t *testing.T) {
	if NumEvents != 22 {
		t.Fatalf("NumEvents = %d, want 22 (paper: 22 counters)", NumEvents)
	}
	rows := Table1()
	if len(rows) != 22 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	// Group sizes: FXU 5, FPU0 5, FPU1 5, ICU 2, SCU 5.
	groups := map[string]int{}
	for _, r := range rows {
		groups[r.Group]++
	}
	want := map[string]int{"FXU": 5, "FPU0": 5, "FPU1": 5, "ICU": 2, "SCU": 5}
	for g, n := range want {
		if groups[g] != n {
			t.Errorf("group %s has %d counters, want %d", g, groups[g], n)
		}
	}
}

func TestTable1Labels(t *testing.T) {
	if Info(EvFXU0Instr).Label != "user.fxu0" {
		t.Fatalf("label = %q", Info(EvFXU0Instr).Label)
	}
	if Info(EvDMAWrite).Label != "user.dma_write" {
		t.Fatalf("label = %q", Info(EvDMAWrite).Label)
	}
	if EvCycles.String() != "user.cycles" {
		t.Fatalf("String = %q", EvCycles.String())
	}
	if Event(99).String() == "" {
		t.Fatal("invalid event String empty")
	}
	for _, r := range Table1() {
		if r.Index < 0 || r.Index > 4 {
			t.Errorf("%s index %d out of range", r.Label, r.Index)
		}
		if r.Description == "" {
			t.Errorf("%s has no description", r.Label)
		}
	}
}

func TestInfoPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Info(NumEvents)
}

func TestModeString(t *testing.T) {
	if User.String() != "user" || System.String() != "system" {
		t.Fatal("mode names wrong")
	}
}

func TestAddAndSnapshot(t *testing.T) {
	m := New()
	m.Inc(EvFXU0Instr)
	m.Add(EvCycles, 100)
	m.SetMode(System)
	m.Add(EvFXU0Instr, 7)
	s := m.Snapshot()
	if s.Get(User, EvFXU0Instr) != 1 || s.Get(User, EvCycles) != 100 {
		t.Fatalf("user counts wrong: %+v", s.Counts[User])
	}
	if s.Get(System, EvFXU0Instr) != 7 {
		t.Fatalf("system count wrong: %d", s.Get(System, EvFXU0Instr))
	}
	if m.CurrentMode() != System {
		t.Fatal("mode not sticky")
	}
}

func TestAddPanicsOnInvalidEvent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New().Add(NumEvents, 1)
}

func TestSetModePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New().SetMode(Mode(9))
}

func TestCounterWrapsAt32Bits(t *testing.T) {
	m := New()
	m.Add(EvCycles, math.MaxUint32) // register now MaxUint32
	m.Add(EvCycles, 5)              // wraps to 4
	if got := m.Snapshot().Get(User, EvCycles); got != 4 {
		t.Fatalf("wrapped register = %d, want 4", got)
	}
}

func TestSubWrapCorrection(t *testing.T) {
	m := New()
	m.Add(EvCycles, math.MaxUint32-10)
	before := m.Snapshot()
	m.Add(EvCycles, 100) // wraps
	after := m.Snapshot()
	d := Sub(before, after)
	if got := d.Get(User, EvCycles); got != 100 {
		t.Fatalf("wrap-corrected delta = %d, want 100", got)
	}
}

func TestSubProperty(t *testing.T) {
	// For any starting register and any increment, the delta is exact.
	f := func(start uint32, inc uint32) bool {
		m := New()
		m.Add(EvFXU1Instr, uint64(start))
		before := m.Snapshot()
		m.Add(EvFXU1Instr, uint64(inc))
		d := Sub(before, m.Snapshot())
		return d.Get(User, EvFXU1Instr) == uint64(inc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivideCounterBug(t *testing.T) {
	m := New()
	m.Add(EvFPU0Div, 50)
	m.Add(EvFPU1Div, 30)
	s := m.Snapshot()
	if s.Get(User, EvFPU0Div) != 0 || s.Get(User, EvFPU1Div) != 0 {
		t.Fatal("divide counters must read 0 (hardware bug)")
	}
	if m.TrueDivides(User) != 80 {
		t.Fatalf("TrueDivides = %d, want 80", m.TrueDivides(User))
	}
}

func TestNewWithoutDivBugCounts(t *testing.T) {
	m := NewWithoutDivBug()
	m.Add(EvFPU0Div, 50)
	if got := m.Snapshot().Get(User, EvFPU0Div); got != 50 {
		t.Fatalf("fixed monitor divide counter = %d, want 50", got)
	}
}

func TestReset(t *testing.T) {
	m := New()
	m.Add(EvCycles, 42)
	m.Add(EvFPU0Div, 7)
	m.SetMode(System)
	m.Add(EvCycles, 9)
	m.Reset()
	s := m.Snapshot()
	for mode := Mode(0); mode < numModes; mode++ {
		for e := Event(0); e < NumEvents; e++ {
			if s.Get(mode, e) != 0 {
				t.Fatalf("counter %v/%v not reset", mode, e)
			}
		}
	}
	if m.TrueDivides(User) != 0 {
		t.Fatal("trueDivides not reset")
	}
	if m.CurrentMode() != System {
		t.Fatal("Reset should not change mode")
	}
}

func TestDeltaTotalAndAdd(t *testing.T) {
	var d Delta
	d.Counts[User][EvFXU0Instr] = 10
	d.Counts[System][EvFXU0Instr] = 3
	if d.Total(EvFXU0Instr) != 13 {
		t.Fatalf("Total = %d", d.Total(EvFXU0Instr))
	}
	var e Delta
	e.Counts[User][EvFXU0Instr] = 5
	d.Add(e)
	if d.Get(User, EvFXU0Instr) != 15 {
		t.Fatalf("Add = %d", d.Get(User, EvFXU0Instr))
	}
}
