package hpm

import (
	"testing"

	"repro/internal/rng"
)

// TestWrap32Delta is the table-driven contract for the wrap-correct
// helper: plain deltas, the zero delta, wrap exactly at the 32-bit
// boundary, and the deltas a double wrap silently truncates.
func TestWrap32Delta(t *testing.T) {
	cases := []struct {
		name          string
		before, after uint32
		want          uint64
		wrapped       bool
	}{
		{"zero delta", 1234, 1234, 0, false},
		{"plain advance", 100, 350, 250, false},
		{"advance from zero", 0, 0xffffffff, 0xffffffff, false},
		{"wrap at boundary", 0xffffffff, 0, 1, true},
		{"wrap past boundary", 0xfffffff0, 0x10, 0x20, true},
		{"wrap to equal is invisible", 7, 7, 0, false}, // a true delta of 2^32 reads as zero
		{"large single wrap", 0x80000000, 0x7fffffff, 0xffffffff, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, wrapped := Wrap32Delta(tc.before, tc.after)
			if got != tc.want || wrapped != tc.wrapped {
				t.Fatalf("Wrap32Delta(%#x, %#x) = (%d, %v), want (%d, %v)",
					tc.before, tc.after, got, wrapped, tc.want, tc.wrapped)
			}
		})
	}
}

// TestWrapLossDetectsDoubleWrap checks the shadow-counter cross-check:
// single wraps reconcile exactly, double wraps leave a multiple of 2^32.
func TestWrapLossDetectsDoubleWrap(t *testing.T) {
	cases := []struct {
		name     string
		true64   uint64
		wantLoss uint64
	}{
		{"zero", 0, 0},
		{"no wrap", 12345, 0},
		{"just under one wrap", 1<<32 - 1, 0},
		{"exactly one wrap", 1 << 32, 1 << 32},
		{"one wrap plus change", 1<<32 + 99, 1 << 32},
		{"double wrap", 2<<32 + 7, 2 << 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var before uint32 = 0x12345678
			after := before + uint32(tc.true64) // hardware register arithmetic
			corrected, _ := Wrap32Delta(before, after)
			if loss := WrapLoss(corrected, tc.true64); loss != tc.wantLoss {
				t.Fatalf("WrapLoss = %d, want %d", loss, tc.wantLoss)
			}
			if got, want := DoubleWrapped(corrected, tc.true64), tc.wantLoss != 0; got != want {
				t.Fatalf("DoubleWrapped = %v, want %v", got, want)
			}
		})
	}
}

// TestWrapLossPanicsOnMismatchedIntervals pins the misuse guard.
func TestWrapLossPanicsOnMismatchedIntervals(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WrapLoss(corrected > true) did not panic")
		}
	}()
	WrapLoss(10, 3)
}

// TestPropertyWrap32MatchesShadow drives a simulated 32-bit register next
// to an unwrapped 64-bit shadow with random increments below 2^32: the
// wrap-corrected delta must equal the shadow delta at every step (and is
// non-negative by type). Increments at or above 2^32 must instead be
// flagged by the shadow cross-check.
func TestPropertyWrap32MatchesShadow(t *testing.T) {
	rnd := rng.New(20260806)
	var reg uint32
	var shadow uint64
	for i := 0; i < 100_000; i++ {
		inc := rnd.Uint64n(1 << 32) // multipass contract holds
		before, shadowBefore := reg, shadow
		reg += uint32(inc)
		shadow += inc
		d, wrapped := Wrap32Delta(before, reg)
		if d != shadow-shadowBefore {
			t.Fatalf("step %d: corrected delta %d != shadow delta %d", i, d, shadow-shadowBefore)
		}
		if DoubleWrapped(d, inc) {
			t.Fatalf("step %d: false double-wrap on increment %d", i, inc)
		}
		if wantWrap := uint64(before)+inc > 0xffffffff; wrapped != wantWrap {
			t.Fatalf("step %d: wrapped = %v, want %v (before %#x, inc %d)", i, wrapped, wantWrap, before, inc)
		}
	}
	// Contract violations: the register laps at least once unseen.
	for i := 0; i < 10_000; i++ {
		inc := (1 + rnd.Uint64n(8)) << 32 // whole laps ...
		inc += rnd.Uint64n(1 << 32)       // ... plus a visible remainder
		before := reg
		reg += uint32(inc)
		d, _ := Wrap32Delta(before, reg)
		if !DoubleWrapped(d, inc) {
			t.Fatalf("step %d: missed double wrap on increment %d (corrected %d)", i, inc, d)
		}
		if WrapLoss(d, inc)%(1<<32) != 0 {
			t.Fatalf("step %d: wrap loss %d not a multiple of 2^32", i, WrapLoss(d, inc))
		}
	}
}

// TestPropertyRanBackwards checks the reset detector: monotone totals are
// never flagged, and any single-counter regression is.
func TestPropertyRanBackwards(t *testing.T) {
	rnd := rng.New(99)
	var cur Counts64
	for i := 0; i < 5_000; i++ {
		next := cur
		for n := 0; n < 4; n++ {
			m := Mode(rnd.Intn(2))
			ev := Event(rnd.Intn(int(NumEvents)))
			next.Counts[m][ev] += rnd.Uint64n(1 << 40)
		}
		if RanBackwards(cur, next) {
			t.Fatalf("step %d: monotone advance flagged as backwards", i)
		}
		// A daemon restart zeroes the totals: must be flagged unless the
		// totals were still all zero.
		if RanBackwards(next, Counts64{}) != (next != Counts64{}) {
			t.Fatalf("step %d: reset detection wrong", i)
		}
		cur = next
	}
}
