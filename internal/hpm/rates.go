package hpm

// This file reduces counter deltas to the rate quantities the paper's
// tables report, using the paper's own accounting conventions:
//
//   - An fma counts as an add and a multiply for flop purposes; the
//     hardware puts the fma's add into the fp_add counter and the fma
//     itself into the fp_muladd counter, so Mflops-All is the sum of the
//     add, div, mul and fma rows (paper §5, Table 3).
//   - Mips is the total instruction rate: FPU + FXU + ICU instructions
//     (Table 2's 45.7 = Table 3's 14.8 + 27.6 + 3.3).
//   - Mops replaces the FPU instruction count with the flop count:
//     Mops = Mflops-All + FXU Mips + ICU Mips (48.3 = 17.4 + 27.6 + 3.3).
//   - Memory instructions are approximated by FXU0+FXU1, which the paper
//     notes is a lower-bound-quality estimate (quad load/store counts as
//     one instruction).

// Rates are per-node rates in millions per second, the unit of every table.
type Rates struct {
	Seconds float64 // measurement interval

	// Floating-point operation rates (Table 3, OPS section).
	MflopsAll float64
	MflopsAdd float64 // includes the add half of each fma
	MflopsDiv float64 // zero on real hardware (counter bug)
	MflopsMul float64
	MflopsFMA float64 // the multiply half of each fma

	// Instruction rates (Table 3, INST section).
	MipsFPU  float64
	MipsFPU0 float64
	MipsFPU1 float64
	MipsFXU  float64
	MipsFXU0 float64
	MipsFXU1 float64
	MipsICU  float64

	// Aggregates (Table 2).
	Mips float64
	Mops float64

	// Cache section (millions of events per second).
	DCacheMissM float64
	TLBMissM    float64
	ICacheMissM float64

	// I/O section (millions of transfers per second).
	DMAReadM  float64
	DMAWriteM float64
}

func mrate(count uint64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(count) / seconds / 1e6
}

// UserRates reduces the user-mode half of a delta over an interval.
func UserRates(d Delta, seconds float64) Rates { return rates(d, User, seconds) }

// SystemRates reduces the system-mode half of a delta over an interval.
func SystemRates(d Delta, seconds float64) Rates { return rates(d, System, seconds) }

func rates(d Delta, m Mode, seconds float64) Rates {
	g := func(ev Event) float64 { return mrate(d.Get(m, ev), seconds) }

	r := Rates{Seconds: seconds}
	r.MflopsAdd = g(EvFPU0Add) + g(EvFPU1Add)
	r.MflopsDiv = g(EvFPU0Div) + g(EvFPU1Div)
	r.MflopsMul = g(EvFPU0Mul) + g(EvFPU1Mul)
	r.MflopsFMA = g(EvFPU0FMA) + g(EvFPU1FMA)
	r.MflopsAll = r.MflopsAdd + r.MflopsDiv + r.MflopsMul + r.MflopsFMA

	r.MipsFPU0 = g(EvFPU0Instr)
	r.MipsFPU1 = g(EvFPU1Instr)
	r.MipsFPU = r.MipsFPU0 + r.MipsFPU1
	r.MipsFXU0 = g(EvFXU0Instr)
	r.MipsFXU1 = g(EvFXU1Instr)
	r.MipsFXU = r.MipsFXU0 + r.MipsFXU1
	r.MipsICU = g(EvICUType1) + g(EvICUType2)

	r.Mips = r.MipsFPU + r.MipsFXU + r.MipsICU
	r.Mops = r.MflopsAll + r.MipsFXU + r.MipsICU

	r.DCacheMissM = g(EvDCacheMiss)
	r.TLBMissM = g(EvTLBMiss)
	r.ICacheMissM = g(EvICacheReload)
	r.DMAReadM = g(EvDMARead)
	r.DMAWriteM = g(EvDMAWrite)
	return r
}

// FMAFraction reports the share of all floating-point operations produced
// by fma instructions (its add and its multiply both count), the paper's
// "~54%" statistic.
func (r Rates) FMAFraction() float64 {
	if r.MflopsAll == 0 {
		return 0
	}
	return 2 * r.MflopsFMA / r.MflopsAll
}

// FPUAsymmetry reports the FPU0/FPU1 instruction ratio (paper: ~1.7).
func (r Rates) FPUAsymmetry() float64 {
	if r.MipsFPU1 == 0 {
		return 0
	}
	return r.MipsFPU0 / r.MipsFPU1
}

// MemoryMips approximates the memory-instruction issue rate by FXU0+FXU1,
// as the paper does.
func (r Rates) MemoryMips() float64 { return r.MipsFXU }

// FlopsPerMemRef reports floating-point operations per memory instruction,
// the register-reuse measure (paper: 0.53 for the workload, 3.0 for the
// blocked matrix multiply).
func (r Rates) FlopsPerMemRef() float64 {
	if r.MipsFXU == 0 {
		return 0
	}
	return r.MflopsAll / r.MipsFXU
}

// CacheMissRatio reports D-cache misses per memory instruction (a lower
// bound, since FXU counts exceed pure memory instructions; paper: ~1.0%).
func (r Rates) CacheMissRatio() float64 {
	if r.MipsFXU == 0 {
		return 0
	}
	return r.DCacheMissM / r.MipsFXU
}

// TLBMissRatio reports TLB misses per memory instruction (paper: ~0.1%).
func (r Rates) TLBMissRatio() float64 {
	if r.MipsFXU == 0 {
		return 0
	}
	return r.TLBMissM / r.MipsFXU
}

// BranchFraction estimates the share of all instructions that are branches,
// approximating branches by the ICU instruction count (paper: ~11% via the
// DO-loop-closing-branch interpretation). The ICU rate used here is ICU
// type I + II; the paper's 3.3/29.7-ish arithmetic used total instructions
// from a simple test problem, so treat this as the same rough measure.
func (r Rates) BranchFraction() float64 {
	if r.Mips == 0 {
		return 0
	}
	return r.MipsICU / r.Mips
}

// SystemUserFXURatio reports system-mode FXU instructions over user-mode
// FXU instructions for a delta — Figure 5's x-axis. A ratio above 1 marks
// a paging node.
func SystemUserFXURatio(d Delta) float64 {
	user := d.Get(User, EvFXU0Instr) + d.Get(User, EvFXU1Instr)
	sys := d.Get(System, EvFXU0Instr) + d.Get(System, EvFXU1Instr)
	if user == 0 {
		if sys == 0 {
			return 0
		}
		return float64(sys) // effectively infinite; callers clamp for plotting
	}
	return float64(sys) / float64(user)
}

// DelayPerMemRef estimates stall cycles per memory instruction from the
// miss rates and the fixed penalties, as the paper does (~0.12 cycles):
// (cache misses * 8 + TLB misses * 45) / memory instructions.
func (r Rates) DelayPerMemRef(cacheMissPenalty, tlbMissPenalty float64) float64 {
	if r.MipsFXU == 0 {
		return 0
	}
	return (r.DCacheMissM*cacheMissPenalty + r.TLBMissM*tlbMissPenalty) / r.MipsFXU
}
