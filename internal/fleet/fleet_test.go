package fleet

// The fleet determinism contract, machine-checked: the merged Result is
// bit-identical for every shard count, bit-identical to the
// single-campaign path for a one-cluster fleet (the golden campaign
// hash, through serialization and back), and bit-identical across
// kill/resume cycles at every day boundary. These tests run under -race
// in CI's GOMAXPROCS matrix, so scheduler-order nondeterminism in the
// shard fan-out is hunted, not assumed away.

import (
	"encoding/json"
	"errors"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/workload"
)

// goldenCampaignHash mirrors the unexported constant guarding
// internal/workload's TestGoldenCampaignHash: resultHash of the seed-7,
// 2-day default campaign, captured on the pre-optimization tree. The
// fleet path must reproduce it exactly — sharding is an execution knob,
// never a model change.
const goldenCampaignHash uint64 = 0x88ee6c33b8c0bd5c

func resultHash(t *testing.T, r workload.Result) uint64 {
	t.Helper()
	h := fnv.New64a()
	if err := json.NewEncoder(h).Encode(r); err != nil {
		t.Fatalf("hash result: %v", err)
	}
	return h.Sum64()
}

var (
	stdOnce sync.Once
	stdSet  profile.Standard
)

func std(t *testing.T) profile.Standard {
	t.Helper()
	stdOnce.Do(func() { stdSet = profile.MeasureStandard(1) })
	return stdSet
}

// goldenMember is the golden recipe as a fleet of one: standard profiles
// at seed 7, 2-day default campaign, the given engine worker count.
func goldenMember(workers int) Member {
	std := profile.MeasureStandardWorkers(7, workers)
	cfg := workload.DefaultConfig(7)
	cfg.Days = 2
	cfg.Workers = workers
	return Member{Config: cfg, Mix: workload.DefaultMix(std)}
}

// smallFleet builds a homogeneous fleet with per-cluster seeds derived
// from the fleet seed, short windows, default node count.
func smallFleet(t *testing.T, clusters, days int, seed uint64) []Member {
	t.Helper()
	members := make([]Member, clusters)
	for c := range members {
		cfg := workload.DefaultConfig(workload.ClusterSeed(seed, c))
		cfg.Days = days
		members[c] = Member{Config: cfg, Mix: workload.DefaultMix(std(t))}
	}
	return members
}

func TestGoldenFleetCampaignHash(t *testing.T) {
	if testing.Short() {
		t.Skip("golden fleet campaign is a full 2-day simulation per case")
	}
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 2, 8} {
			res, err := Run([]Member{goldenMember(workers)}, Options{Shards: shards})
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if h := resultHash(t, res); h != goldenCampaignHash {
				t.Fatalf("shards=%d workers=%d: fleet hash %#x, want golden %#x — the fleet path changed observable behaviour",
					shards, workers, h, goldenCampaignHash)
			}
		}
	}

	// Checkpoint/resume cycle: the first run persists the completed
	// cluster; the resumed run restores it from disk — the whole Result
	// round-trips through the gzip JSON envelope — and must still hash to
	// the same golden constant, at a different shard and worker count.
	path := filepath.Join(t.TempDir(), "golden.ckpt.gz")
	if _, err := Run([]Member{goldenMember(1)}, Options{Shards: 2, Checkpoint: path}); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	res, err := Run([]Member{goldenMember(8)}, Options{Shards: 8, Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if h := resultHash(t, res); h != goldenCampaignHash {
		t.Fatalf("resumed fleet hash %#x, want golden %#x — the checkpoint round-trip changed bits", h, goldenCampaignHash)
	}
}

func TestFleetShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster fleet simulation")
	}
	members := smallFleet(t, 4, 2, 42)
	base, err := Run(members, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := resultHash(t, base)

	// Cross-check the merge tree against clusters run directly through
	// the single-campaign path and folded offline.
	parts := make([]workload.Result, len(members))
	for c := range members {
		parts[c] = workload.NewCampaign(members[c].Config, members[c].Mix).Run()
	}
	if h := resultHash(t, workload.MergeResults(parts)); h != want {
		t.Fatalf("offline merge hash %#x differs from fleet run %#x", h, want)
	}

	for _, shards := range []int{2, 4, 7} {
		res, err := Run(members, Options{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if h := resultHash(t, res); h != want {
			t.Fatalf("shards=%d hash %#x differs from shards=1 %#x", shards, h, want)
		}
	}
}

// The kill/resume equivalence satellite: checkpoint at every day
// boundary, halt mid-campaign (twice), resume, and require the merged
// Result to hash identically to the uninterrupted run — for shard counts
// 1 and 4.
func TestFleetKillResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster fleet simulation")
	}
	members := smallFleet(t, 4, 2, 1234)
	for _, shards := range []int{1, 4} {
		uninterrupted, err := Run(members, Options{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: uninterrupted: %v", shards, err)
		}
		want := resultHash(t, uninterrupted)

		path := filepath.Join(t.TempDir(), "fleet.ckpt")
		opts := Options{Shards: shards, Checkpoint: path, CheckpointEachDay: true, HaltAfter: 1}
		if _, err := Run(members, opts); !errors.Is(err, ErrHalted) {
			t.Fatalf("shards=%d: first kill: got %v, want ErrHalted", shards, err)
		}
		opts.Resume = true
		// A second partial cycle, unless the first already completed every
		// cluster (with 4 shards all clusters are in flight at the halt).
		if cp, err := trace.ReadFleetCheckpointFile(path); err != nil {
			t.Fatalf("shards=%d: checkpoint unreadable between runs: %v", shards, err)
		} else if len(cp.Done) < len(members) {
			if _, err := Run(members, opts); !errors.Is(err, ErrHalted) {
				t.Fatalf("shards=%d: second kill: got %v, want ErrHalted", shards, err)
			}
		}
		opts.HaltAfter = 0
		res, err := Run(members, opts)
		if err != nil {
			t.Fatalf("shards=%d: final resume: %v", shards, err)
		}
		if h := resultHash(t, res); h != want {
			t.Fatalf("shards=%d: resumed hash %#x, uninterrupted %#x — kill/resume changed bits", shards, h, want)
		}
	}
}

// recorder captures the merged stream a sink receives.
type recorder struct {
	days   []workload.Day
	finals []workload.Final
}

func (r *recorder) ReduceDay(d workload.Day) { r.days = append(r.days, d) }
func (r *recorder) Finish(f workload.Final)  { r.finals = append(r.finals, f) }

func TestFleetStreamsMergedDaysToSinks(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster fleet simulation")
	}
	// Ragged fleet: cluster windows of different lengths exercise the
	// frontier on days only some clusters cover.
	members := smallFleet(t, 2, 3, 77)
	members[1].Config.Days = 1

	var rec recorder
	res, err := Run(members, Options{Shards: 2}, &rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.finals) != 1 {
		t.Fatalf("sink saw %d Finish calls, want 1", len(rec.finals))
	}
	if len(rec.days) != 3 {
		t.Fatalf("sink saw %d merged days, want 3", len(rec.days))
	}
	for i, d := range rec.days {
		if d.Index != i {
			t.Fatalf("merged day %d has index %d — stream out of order", i, d.Index)
		}
	}
	wantNodes := members[0].Config.Nodes + members[1].Config.Nodes
	if rec.finals[0].Config.Nodes != wantNodes {
		t.Fatalf("fleet Final Nodes = %d, want %d", rec.finals[0].Config.Nodes, wantNodes)
	}
	// The returned Result is exactly the stream the sinks saw.
	for i := range rec.days {
		if rec.days[i] != res.Days[i] {
			t.Fatalf("day %d: sink stream and merged Result disagree", i)
		}
	}
}

func TestFleetRunRejectsBadOptions(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	members := smallFleet(t, 1, 1, 5)
	if _, err := Run(members, Options{Resume: true}); err == nil {
		t.Fatal("Resume without Checkpoint accepted")
	}
	if _, err := Run(members, Options{Resume: true, Checkpoint: filepath.Join(t.TempDir(), "absent.ckpt")}); err == nil {
		t.Fatal("Resume from a missing checkpoint accepted")
	}
	// An unwritable checkpoint path must fail before any cluster runs.
	if _, err := Run(members, Options{Checkpoint: filepath.Join(t.TempDir(), "no-such-dir", "fleet.ckpt")}); err == nil {
		t.Fatal("unwritable checkpoint path accepted")
	}
}

func TestFleetResumeRejectsForeignCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a short campaign to produce a checkpoint")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.ckpt")
	members := smallFleet(t, 2, 1, 5)
	opts := Options{Checkpoint: path, HaltAfter: 1}
	if _, err := Run(members, opts); !errors.Is(err, ErrHalted) {
		t.Fatalf("got %v, want ErrHalted", err)
	}
	// A different fleet definition (different seed) must refuse the file.
	other := smallFleet(t, 2, 1, 6)
	if _, err := Run(other, Options{Checkpoint: path, Resume: true}); err == nil {
		t.Fatal("checkpoint from a different fleet accepted")
	}
	// Corrupt bytes must refuse cleanly too.
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(members, Options{Checkpoint: path, Resume: true}); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestFleetIDIgnoresExecutionKnobs(t *testing.T) {
	a := smallFleet(t, 2, 1, 9)
	b := smallFleet(t, 2, 1, 9)
	b[0].Config.Workers = 16
	b[1].Config.Scenario = "renamed"
	if ID(a) != ID(b) {
		t.Fatal("fleet ID depends on Workers/Scenario — resume would break across shard/worker changes")
	}
	c := smallFleet(t, 2, 1, 10)
	if ID(a) == ID(c) {
		t.Fatal("different fleet definitions share an ID")
	}
}
