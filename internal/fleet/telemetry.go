package fleet

// hpmtel instrumentation for the fleet layer. Handles are package-level
// (one registry lookup at init, atomic updates on the paths that run),
// per-shard busy counters are materialized once per Run — the only
// allocations happen at setup, never per day or per cluster. As
// everywhere else: observation only, no metric feeds back into simulated
// state, so the merged Result is identical with telemetry on or off.

import (
	"fmt"

	"repro/internal/telemetry"
)

var (
	telFleet            = telemetry.Default.Scope("fleet")
	telClustersRun      = telFleet.Counter("clusters_run")
	telClustersRestored = telFleet.Counter("clusters_restored")
	telDaysMerged       = telFleet.Counter("days_merged")
	telCheckpoints      = telFleet.Counter("checkpoints_written")
	telClusterNs        = telFleet.Histogram("cluster_ns", telemetry.DurationBuckets)
	telCheckpointNs     = telFleet.Histogram("checkpoint_ns", telemetry.DurationBuckets)
)

// shardBusyCounters returns the per-shard busy-time counters,
// fleet.shard<N>.busy_ns. Registering is idempotent, so repeated fleet
// runs in one process share (and keep accumulating into) the same
// counters, mirroring the engine's per-worker pattern.
func shardBusyCounters(shards int) []*telemetry.Counter {
	cs := make([]*telemetry.Counter, shards)
	for s := range cs {
		cs[s] = telFleet.Counter(fmt.Sprintf("shard%d.busy_ns", s))
	}
	return cs
}
