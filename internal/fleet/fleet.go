// Package fleet shards a multi-cluster campaign across parallel workers
// and folds the per-cluster reductions through a canonical-order merge
// tree into one fleet-wide Result — the paper's per-day cluster
// reduction applied to a whole fleet of SP2-class machines.
//
// The layering sits above the staged engine: each fleet member is an
// ordinary (Config, Mix) campaign whose seed comes from
// workload.ClusterSeed, each shard owns a stripe of clusters (shard s
// runs clusters s, s+Shards, ...) and runs them sequentially through its
// own engine worker pool, and a frontier merger streams merged fleet
// days to the caller's reducers the moment every cluster has closed that
// day — analysis consumes a fleet online exactly as it consumes one
// machine.
//
// The determinism contract carries over unchanged: a cluster's Result is
// a pure function of (Config, Mix, seed), the merge folds clusters in
// ascending index (never in completion order), and therefore the merged
// Result is bit-identical for every shard count, every worker count, and
// across a kill/resume cycle. Checkpoints (internal/trace) record the
// completed-cluster frontier; anything in flight at a kill is simply
// re-run from its own day 0 on resume and lands on the same bits.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/replay"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Member is one cluster of the fleet: a complete campaign definition.
// Derive Config.Seed with workload.ClusterSeed so clusters draw from
// disjoint substream namespaces.
type Member struct {
	Config workload.Config
	Mix    workload.Mix
}

// Options shape a fleet run. The zero value runs everything in one shard
// with no checkpointing.
type Options struct {
	// Shards is the number of cluster-level workers; values below 1 mean
	// one shard. Shards trades wall clock only — the merged Result is
	// bit-identical for every value.
	Shards int
	// Checkpoint, when non-empty, is the path checkpoints are written to
	// (atomically, after every cluster completion; ".gz" compresses).
	Checkpoint string
	// CheckpointEachDay additionally rewrites the checkpoint at every
	// cluster-day boundary, keeping the cursor record fresh for long
	// clusters at the cost of more (still atomic) writes.
	CheckpointEachDay bool
	// Resume loads Checkpoint before running and skips the clusters it
	// records as complete. The checkpoint must match the fleet definition
	// (FleetID) or Run fails.
	Resume bool
	// HaltAfter, when positive, stops the run after that many cluster
	// completions in this process: no new clusters start, the checkpoint
	// holds the completed frontier, and Run returns ErrHalted. It exists
	// to force kill/resume cycles in tests and smoke targets.
	HaltAfter int
	// RecordTo, when non-empty, records every cluster's generated plans
	// (and resolved fault schedules) to a campaign trace at this path
	// (internal/replay; always gzip). A trace must be complete to be
	// useful, so RecordTo rejects Resume, HaltAfter, and ReplayFrom —
	// each would leave some cluster's days ungenerated — and the trace
	// file appears only if the whole run succeeds.
	RecordTo string
	// ReplayFrom, when non-empty, feeds every cluster's plans from the
	// campaign trace at this path instead of the generators, bypassing
	// generation. The trace must match the fleet definition (config
	// fingerprint) or Run fails before any cluster starts.
	ReplayFrom string
}

// ErrHalted reports a run stopped by Options.HaltAfter: progress is in
// the checkpoint, and the campaign is resumable, but there is no merged
// Result yet.
var ErrHalted = errors.New("fleet: halted by HaltAfter; campaign checkpointed, not complete")

// ID binds a checkpoint to a fleet definition: the fnv-64a hash of every
// member's serialized (Config, Mix). Execution knobs (Workers, the spec
// label) are excluded from Config's JSON form, so a resume may change
// shard or worker counts without invalidating the checkpoint.
func ID(members []Member) uint64 {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	for i := range members {
		if err := enc.Encode(members[i]); err != nil {
			panic(fmt.Sprintf("fleet: hashing member %d: %v", i, err))
		}
	}
	return h.Sum64()
}

// run is the shared state of one fleet execution.
type run struct {
	members []Member
	opts    Options
	id      uint64
	maxDays int

	mu sync.Mutex
	// parts accumulates each cluster's reduction as its days close;
	// guarded by mu.
	parts []workload.Result
	// done marks clusters whose Finish arrived (or was restored); guarded
	// by mu.
	done []bool
	// next is the first fleet day not yet streamed to the sinks; guarded
	// by mu.
	next int
	// completions counts clusters finished in this process (restored ones
	// excluded), the HaltAfter trigger; guarded by mu.
	completions int
	// halt stops shards from starting new clusters; guarded by mu.
	halt bool
	// cpErr is the first checkpoint-write failure; once set, no further
	// writes are attempted and Run reports it. Guarded by mu.
	cpErr error
	// sinks receive the merged day stream; called only under mu, so
	// reducers need no locking of their own. The tail sink is the
	// internal ResultReducer the merged Result comes from.
	sinks workload.TeeReducer

	// rec/rp are the trace recorder and replayer; nil unless
	// RecordTo/ReplayFrom is set. Both are internally synchronized, so
	// shards use them without holding mu.
	rec *replay.Recorder
	rp  *replay.Replayer
}

// Run executes the fleet campaign and returns the merged Result. The
// sinks receive the merged reduction stream — fleet day d the moment
// every cluster has closed its day d, then the merged Final — so a
// streaming analysis rides along exactly as it does on one campaign.
func Run(members []Member, opts Options, sinks ...workload.Reducer) (workload.Result, error) {
	if len(members) == 0 {
		return workload.Result{}, errors.New("fleet: no members")
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Resume && opts.Checkpoint == "" {
		return workload.Result{}, errors.New("fleet: Resume requires a Checkpoint path")
	}
	if opts.RecordTo != "" {
		switch {
		case opts.ReplayFrom != "":
			return workload.Result{}, errors.New("fleet: RecordTo with ReplayFrom (a replay would only copy the trace)")
		case opts.Resume:
			return workload.Result{}, errors.New("fleet: RecordTo with Resume (restored clusters never regenerate, the trace would be incomplete)")
		case opts.HaltAfter > 0:
			return workload.Result{}, errors.New("fleet: RecordTo with HaltAfter (a halted run records an incomplete trace)")
		}
	}

	var rr workload.ResultReducer
	r := &run{
		members: members,
		opts:    opts,
		id:      ID(members),
		parts:   make([]workload.Result, len(members)),
		done:    make([]bool, len(members)),
		sinks:   append(workload.TeeReducer(sinks), &rr),
	}
	for i := range members {
		if members[i].Config.Days > r.maxDays {
			r.maxDays = members[i].Config.Days
		}
	}

	if opts.RecordTo != "" || opts.ReplayFrom != "" {
		defs := make([]replay.Def, len(members))
		for i := range members {
			defs[i] = replay.Def{Config: members[i].Config, Mix: members[i].Mix}
		}
		if opts.RecordTo != "" {
			rec, err := replay.Create(opts.RecordTo, replay.HeaderFor(defs))
			if err != nil {
				return workload.Result{}, fmt.Errorf("fleet: %w", err)
			}
			r.rec = rec
			defer rec.Abort() // no-op once Close succeeds; discards on failure
		}
		if opts.ReplayFrom != "" {
			rp, err := replay.OpenFile(opts.ReplayFrom)
			if err != nil {
				return workload.Result{}, fmt.Errorf("fleet: %w", err)
			}
			if err := rp.Validate(defs); err != nil {
				return workload.Result{}, fmt.Errorf("fleet: %w", err)
			}
			r.rp = rp
		}
	}

	if opts.Resume {
		if err := r.restore(); err != nil {
			return workload.Result{}, err
		}
	}
	// Stream any days already satisfied by restored clusters (a fully
	// restored fleet must still deliver the whole day stream), and write
	// the opening checkpoint — an unwritable path must fail before any
	// cluster burns wall clock on work it could never persist.
	r.mu.Lock()
	r.advanceLocked()
	if r.opts.Checkpoint != "" {
		r.writeCheckpointLocked()
	}
	err := r.cpErr
	r.mu.Unlock()
	if err != nil {
		return workload.Result{}, err
	}

	busy := shardBusyCounters(opts.Shards)
	var wg sync.WaitGroup
	for s := 0; s < opts.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r.shardLoop(s, busy[s])
		}(s)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cpErr != nil {
		return workload.Result{}, r.cpErr
	}
	if r.halt {
		return workload.Result{}, ErrHalted
	}
	for c := range r.done {
		if !r.done[c] {
			return workload.Result{}, fmt.Errorf("fleet: cluster %d never finished", c)
		}
	}
	if r.rec != nil {
		if err := r.rec.Close(); err != nil {
			return workload.Result{}, fmt.Errorf("fleet: %w", err)
		}
	}
	r.sinks.Finish(workload.MergeFinal(r.parts))
	return rr.Result(), nil
}

// shardLoop runs the shard's stripe of clusters in ascending index.
func (r *run) shardLoop(shard int, busy *telemetry.Counter) {
	for c := shard; c < len(r.members); c += r.opts.Shards {
		r.mu.Lock()
		skip := r.done[c]
		stop := r.halt
		r.mu.Unlock()
		if stop {
			return
		}
		if skip {
			continue
		}
		w := telemetry.StartWatch()
		campaign := workload.NewCampaign(r.members[c].Config, r.members[c].Mix)
		// The record/replay seam: tee the cluster's generate stage into
		// the trace, or substitute the trace for it (plans and fault
		// schedules both). Simulate and reduce run unchanged either way.
		if r.rec != nil {
			campaign.SetGenerator(r.rec.Tap(c, r.members[c].Config,
				workload.NewGenerator(r.members[c].Config, r.members[c].Mix)))
		}
		if r.rp != nil {
			src := r.rp.Source(c)
			campaign.SetGenerator(src)
			campaign.SetFaultPlanner(src)
		}
		campaign.RunInto(&clusterTap{r: r, cluster: c})
		w.Record(telClusterNs)
		w.AddTo(busy)
		telClustersRun.Inc()
	}
}

// clusterTap is the per-cluster reducer: it forwards the cluster's day
// stream into the shared merge frontier and records its Final.
type clusterTap struct {
	r       *run
	cluster int
}

// ReduceDay appends the cluster's closed day and advances the fleet
// frontier.
func (t *clusterTap) ReduceDay(d workload.Day) {
	r := t.r
	r.mu.Lock()
	defer r.mu.Unlock()
	r.parts[t.cluster].Days = append(r.parts[t.cluster].Days, d)
	r.advanceLocked()
	if r.opts.Checkpoint != "" && r.opts.CheckpointEachDay {
		r.writeCheckpointLocked()
	}
}

// Finish records the cluster's end-of-campaign aggregates, checkpoints
// the new completed frontier, and arms the halt if HaltAfter is reached.
func (t *clusterTap) Finish(f workload.Final) {
	r := t.r
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &r.parts[t.cluster]
	p.Config = f.Config
	p.Records = f.Records
	p.MaxGflops15min = f.MaxGflops15min
	p.DroppedRecords = f.DroppedRecords
	p.Coverage = f.Coverage
	r.done[t.cluster] = true
	r.completions++
	if r.opts.Checkpoint != "" {
		r.writeCheckpointLocked()
	}
	if r.opts.HaltAfter > 0 && r.completions >= r.opts.HaltAfter {
		r.halt = true
	}
}

// advanceLocked streams every fleet day whose inputs are all present:
// day d is ready once each cluster whose window covers d has closed it.
// The fold walks clusters in ascending index — the canonical order that
// makes the float sums independent of shard count and completion order.
// Caller holds mu.
func (r *run) advanceLocked() {
	for ; r.next < r.maxDays; r.next++ {
		d := r.next
		for c := range r.members {
			if r.members[c].Config.Days > d && len(r.parts[c].Days) <= d {
				return
			}
		}
		day := workload.Day{Index: d}
		for c := range r.parts {
			if d < len(r.parts[c].Days) {
				day.Merge(r.parts[c].Days[d])
			}
		}
		r.sinks.ReduceDay(day)
		telDaysMerged.Inc()
	}
}

// writeCheckpointLocked persists the completed-cluster frontier plus the
// per-cluster day cursors. Caller holds mu; the write is atomic
// (tmp+rename), so a kill at any moment leaves a loadable checkpoint. On
// the first write failure checkpointing stops and Run reports the error
// — silently running on without durability would defeat the point.
func (r *run) writeCheckpointLocked() {
	if r.cpErr != nil {
		return
	}
	cp := trace.FleetCheckpoint{
		Version:  trace.FleetCheckpointVersion,
		FleetID:  r.id,
		Clusters: len(r.members),
	}
	for c := range r.parts {
		if r.done[c] {
			cp.Done = append(cp.Done, trace.FleetClusterResult{Cluster: c, Result: r.parts[c]})
		}
		if n := len(r.parts[c].Days); n > 0 || r.done[c] {
			cp.Cursors = append(cp.Cursors, trace.FleetCursor{Cluster: c, NextDay: n})
		}
	}
	w := telemetry.StartWatch()
	if err := trace.WriteFleetCheckpointFile(r.opts.Checkpoint, cp); err != nil {
		r.cpErr = fmt.Errorf("fleet: checkpoint: %w", err)
		r.halt = true // no point finishing clusters that can never persist
		return
	}
	w.Record(telCheckpointNs)
	telCheckpoints.Inc()
}

// restore loads the checkpoint and marks its completed clusters done. It
// runs before any shard goroutine exists, but takes the lock anyway so
// the parts/done guard invariant holds everywhere they are written.
func (r *run) restore() error {
	cp, err := trace.ReadFleetCheckpointFile(r.opts.Checkpoint)
	if err != nil {
		return fmt.Errorf("fleet: resume: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cp.FleetID != r.id {
		return fmt.Errorf("fleet: resume: checkpoint is for fleet %016x, this fleet is %016x (definition changed?)", cp.FleetID, r.id)
	}
	if cp.Clusters != len(r.members) {
		return fmt.Errorf("fleet: resume: checkpoint has %d clusters, fleet has %d", cp.Clusters, len(r.members))
	}
	for _, d := range cp.Done {
		if got, want := len(d.Result.Days), r.members[d.Cluster].Config.Days; got != want {
			return fmt.Errorf("fleet: resume: cluster %d checkpointed with %d days, config says %d", d.Cluster, got, want)
		}
		r.parts[d.Cluster] = d.Result
		r.done[d.Cluster] = true
		telClustersRestored.Inc()
	}
	return nil
}
