package kernels

// This file extends the kernel library with the rest of the NAS Parallel
// Benchmark class the paper's reference chain leans on (Saphir, Woo and
// Yarrow, "The NAS Parallel Benchmarks 2.1 Results", NAS-96-010): SP, LU,
// MG, FT and CG analogues. Each is built to the benchmark's documented
// performance character on POWER2-class machines rather than to its exact
// arithmetic:
//
//   SP — scalar pentadiagonal solver: BT's structure with narrower bands
//        and less exploitable ILP; sits between the workload average and BT.
//   LU — SSOR wavefront: deep serial recurrences, the slowest of the
//        "solver" trio per CPU.
//   MG — multigrid V-cycles: streaming sweeps at multiple strides, memory
//        bandwidth bound, high cache-miss ratio per memory reference.
//   FT — 3-D FFT: long power-of-two strides from the transpose phases,
//        the TLB-hostile access pattern the paper warns about ("we might
//        expect high TLB miss rates from programs accessing data with
//        large memory strides").
//   CG — conjugate gradient: indirect gather through an index vector,
//        nearly every gather a cache miss; the classic low-Mflops NPB.

import (
	"repro/internal/isa"
	"repro/internal/units"
)

// SP is the scalar pentadiagonal solver analogue.
func SP() Kernel {
	return Kernel{
		Name:             "sp",
		Description:      "NPB SP-like scalar pentadiagonal solver",
		WorkingSetBytes:  24 << 20,
		CommBytesPerFlop: 0.05,
		New: func(seed uint64) isa.Stream {
			var mem arena
			u := mem.alloc(8 << 20)
			rhs := mem.alloc(8 << 20)
			lhs := mem.alloc(64 << 10)

			b := isa.NewBuilder()
			idx := b.GPR()
			b.IntALU(idx, idx)

			v0, v1, v2 := b.FPR(), b.FPR(), b.FPR()
			c0, c1 := b.FPR(), b.FPR()
			b.LoadQuad(v0, isa.Ref{Base: u, Stride: 16, WorkingSet: 512 << 10})
			b.LoadQuad(v1, isa.Ref{Base: rhs, Stride: 16})
			b.Load(v2, isa.Ref{Base: u, Stride: 8, WorkingSet: 512 << 10})
			b.Load(c0, isa.Ref{Base: lhs, Stride: 8, WorkingSet: 32 << 10})
			b.Load(c1, isa.Ref{Base: lhs, Stride: 8, WorkingSet: 32 << 10})

			// One main recurrence plus a short independent strand: less
			// ILP than BT's two full chains.
			a0 := b.FPR()
			b.FMA(a0, v0, c0, a0)
			b.FMA(a0, v1, c1, a0)
			b.FAdd(a0, a0, v2)
			b.FMul(a0, a0, c0)
			b.FMA(a0, v2, c1, a0)
			b.FAdd(a0, a0, v1)
			a1 := b.FPR()
			b.FMA(a1, v1, c0, a1)
			b.FAdd(a1, a1, v0)

			b.Store(a0, isa.Ref{Base: rhs, Stride: 8, WorkingSet: 512 << 10})
			b.Store(a1, isa.Ref{Base: u, Stride: 8, WorkingSet: 512 << 10})
			b.IntALU(idx, idx)
			b.Branch()
			return b.Build(unbounded, 0xA0000)
		},
	}
}

// LU is the SSOR wavefront solver analogue.
func LU() Kernel {
	return Kernel{
		Name:             "lu",
		Description:      "NPB LU-like SSOR wavefront solver",
		WorkingSetBytes:  24 << 20,
		CommBytesPerFlop: 0.06,
		New: func(seed uint64) isa.Stream {
			var mem arena
			u := mem.alloc(8 << 20)
			rsd := mem.alloc(8 << 20)
			jac := mem.alloc(64 << 10)

			b := isa.NewBuilder()
			idx := b.GPR()
			b.IntMulDiv(idx, idx)

			v0, v1 := b.FPR(), b.FPR()
			c0, c1 := b.FPR(), b.FPR()
			b.LoadQuad(v0, isa.Ref{Base: u, Stride: 16})
			b.Load(v1, isa.Ref{Base: rsd, Stride: 8})
			b.Load(c0, isa.Ref{Base: jac, Stride: 8, WorkingSet: 32 << 10})
			b.Load(c1, isa.Ref{Base: jac, Stride: 8, WorkingSet: 32 << 10})

			// The wavefront: one long, fully serial recurrence — each point
			// of the lower/upper triangular sweep depends on its neighbour.
			a := b.FPR()
			b.FMA(a, v0, c0, a)
			b.FAdd(a, a, v1)
			b.FMul(a, a, c0)
			b.FMA(a, v1, c1, a)
			b.FAdd(a, a, v0)
			b.FMul(a, a, c1)
			b.FMA(a, v0, c1, a)
			b.FAdd(a, a, v1)
			b.FMove(a, a)

			b.Store(a, isa.Ref{Base: rsd, Stride: 8, WorkingSet: 512 << 10})
			b.IntALU(idx, idx)
			b.Branch()
			return b.Build(unbounded, 0xB0000)
		},
	}
}

// MG is the multigrid analogue.
func MG() Kernel {
	return Kernel{
		Name:             "mg",
		Description:      "NPB MG-like multigrid V-cycle (bandwidth bound)",
		WorkingSetBytes:  32 << 20,
		CommBytesPerFlop: 0.05,
		New: func(seed uint64) isa.Stream {
			var mem arena
			fine := mem.alloc(16 << 20)
			coarse := mem.alloc(8 << 20)
			resid := mem.alloc(16 << 20)

			b := isa.NewBuilder()
			// Streaming stencil at the fine level plus a strided restriction
			// to the coarse level: four memory streams per point, little
			// register reuse, modest arithmetic — bandwidth bound.
			v0, v1, v2, v3 := b.FPR(), b.FPR(), b.FPR(), b.FPR()
			b.LoadQuad(v0, isa.Ref{Base: fine, Stride: 16})
			b.Load(v1, isa.Ref{Base: fine, Stride: 8})
			b.Load(v2, isa.Ref{Base: resid, Stride: 8})
			b.Load(v3, isa.Ref{Base: coarse, Stride: 16}) // every other point

			a0, a1 := b.FPR(), b.FPR()
			b.FMA(a0, v0, v1, a0)
			b.FAdd(a0, a0, v2)
			b.FMA(a1, v2, v3, a1)
			b.FAdd(a1, a1, v0)

			b.Store(a0, isa.Ref{Base: resid, Stride: 8})
			b.Store(a1, isa.Ref{Base: coarse, Stride: 16})
			b.IntALU(0, 0)
			b.Branch()
			return b.Build(unbounded, 0xC0000)
		},
	}
}

// FT is the 3-D FFT analogue.
func FT() Kernel {
	return Kernel{
		Name:             "ft",
		Description:      "NPB FT-like 3-D FFT (transpose strides, TLB hostile)",
		WorkingSetBytes:  32 << 20,
		CommBytesPerFlop: 0.10, // all-to-all transposes
		New: func(seed uint64) isa.Stream {
			var mem arena
			data := mem.alloc(16 << 20)
			work := mem.alloc(16 << 20)
			twid := mem.alloc(32 << 10)

			b := isa.NewBuilder()
			// Three unit-stride butterfly groups per transpose touch: the
			// FFT passes are cache-friendly; only the transpose walks
			// column-wise.
			for g := 0; g < 3; g++ {
				re0, im0 := b.FPR(), b.FPR()
				w0, w1 := b.FPR(), b.FPR()
				off := int64(g) * 16
				b.LoadQuad(re0, isa.Ref{Base: uint64(int64(data) + off), Stride: 48})
				b.Load(im0, isa.Ref{Base: uint64(int64(data)+off) + 8, Stride: 48})
				b.Load(w0, isa.Ref{Base: twid, Stride: 8, WorkingSet: 16 << 10})
				b.Load(w1, isa.Ref{Base: twid, Stride: 8, WorkingSet: 16 << 10})
				a0, a1 := b.FPR(), b.FPR()
				b.FMul(a0, re0, w0)
				b.FAdd(a0, a0, im0)
				b.FMul(a1, im0, w1)
				b.FAdd(a1, a1, re0)
				b.FAdd(a0, a0, a1)
				b.FMul(a1, a1, w0)
				b.StoreQuad(a0, isa.Ref{Base: uint64(int64(work) + off), Stride: 48})
			}
			// The transpose touch: one column element per body, walking a
			// plane whose pages, together with the streaming passes,
			// overcommit the 512-entry TLB — elevated but not pathological
			// miss rates, as the paper expects of large-stride codes.
			tr := b.FPR()
			b.Load(tr, isa.Ref{Base: data + (12 << 20), Stride: units.PageBytes, WorkingSet: 768 << 10})
			b.Store(tr, isa.Ref{Base: work + (12 << 20), Stride: units.PageBytes, WorkingSet: 768 << 10})
			b.IntALU(0, 0)
			b.Branch()
			return b.Build(unbounded, 0xD0000)
		},
	}
}

// CG is the conjugate-gradient analogue.
func CG() Kernel {
	return Kernel{
		Name:             "cg",
		Description:      "NPB CG-like sparse matrix-vector (indirect gathers)",
		WorkingSetBytes:  24 << 20,
		CommBytesPerFlop: 0.08,
		New: func(seed uint64) isa.Stream {
			var mem arena
			vals := mem.alloc(8 << 20)
			x := mem.alloc(8 << 20)
			y := mem.alloc(4 << 20)

			// The gather x[col[j]]: pseudo-random 8-byte-aligned probes
			// over the vector — effectively every probe a new cache line
			// and frequently a new page.
			const gatherWS = 1 << 20 // ~600 KB x vector: TLB-resident, cache-busting
			h := seed*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
			gather := func(iter uint64) uint64 {
				z := (iter + h) * 0x9e3779b97f4a7c15
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z ^= z >> 27
				return x + (z%gatherWS)&^7
			}

			b := isa.NewBuilder()
			idx := b.GPR()
			b.IntALU(idx, idx) // col[j] index load bookkeeping

			a, v, xv := b.FPR(), b.FPR(), b.FPR()
			b.Load(v, isa.Ref{Base: vals, Stride: 8}) // matrix values: streaming
			b.Load(xv, isa.Ref{AddrFn: gather})       // x[col[j]]: random gather
			b.FMA(a, v, xv, a)                        // y_i += a_ij * x_j

			// Row change every few elements.
			b.IntALU(idx, idx)
			b.Store(a, isa.Ref{Base: y, Stride: 8, WorkingSet: 2 << 20})
			b.Branch()
			return b.Build(unbounded, 0xE0000)
		},
	}
}

var _ = units.PageBytes // strides above are chosen relative to the 4 KB page
