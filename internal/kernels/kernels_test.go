package kernels

import (
	"testing"

	"repro/internal/hpm"
	"repro/internal/isa"
	"repro/internal/power2"
)

// measure runs n instructions of the kernel on a fresh SP2 CPU and returns
// the architectural stats plus counter-derived rates over the run.
func measure(t *testing.T, k Kernel, n uint64) (power2.RunStats, hpm.Rates) {
	t.Helper()
	cpu := power2.New(power2.Config{Seed: 1})
	st := cpu.RunLimited(k.New(1), n)
	d := hpm.Sub(hpm.Snapshot{}, cpu.Monitor().Snapshot())
	r := hpm.UserRates(d, cpu.Elapsed())
	return st, r
}

func TestRegistry(t *testing.T) {
	ks := All()
	if len(ks) != 11 {
		t.Fatalf("All() = %d kernels, want 11", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if k.Name == "" || k.Description == "" || k.New == nil {
			t.Fatalf("kernel %+v incomplete", k.Name)
		}
		if seen[k.Name] {
			t.Fatalf("duplicate kernel %q", k.Name)
		}
		seen[k.Name] = true
	}
	if _, ok := ByName("cfd"); !ok {
		t.Fatal("ByName(cfd) missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) found something")
	}
}

func TestKernelStreamsAreDeterministic(t *testing.T) {
	for _, k := range All() {
		a, b := k.New(7), k.New(7)
		var ia, ib isa.Instr
		for i := 0; i < 2000; i++ {
			if !a.Next(&ia) || !b.Next(&ib) {
				t.Fatalf("%s: stream ended early", k.Name)
			}
			if ia != ib {
				t.Fatalf("%s: streams diverge at %d: %v vs %v", k.Name, i, ia, ib)
			}
		}
	}
}

func TestCFDMatchesWorkloadSignature(t *testing.T) {
	st, r := measure(t, CFD(), 400000)

	// These are pure-crunch rates. At the batch-job level the rate is
	// crunch x compute-duty (~0.8, the rest is message passing and load
	// imbalance) and the campaign average further scales by utilization
	// (~0.76), which is how ~28 Mflops crunch presents as the paper's 17.4
	// Mflops/node (28 x 0.8 x 0.76 = 17.0). The crunch band here is 22..40.
	if r.MflopsAll < 22 || r.MflopsAll > 40 {
		t.Errorf("CFD crunch Mflops = %.1f, want ~28 (22..40)", r.MflopsAll)
	}
	// The CFD kernel alone sits a little under the paper's 54% fma share;
	// the pooled workload (which includes fma-rich tuned codes) lands on
	// it. Band 0.36..0.52 for the bare kernel.
	if f := r.FMAFraction(); f < 0.36 || f > 0.52 {
		t.Errorf("CFD fma fraction = %.2f, want ~0.43", f)
	}
	// FPU0/FPU1 asymmetry ~1.7 (band 1.2..2.5).
	if a := r.FPUAsymmetry(); a < 1.2 || a > 2.5 {
		t.Errorf("CFD FPU asymmetry = %.2f, want ~1.7", a)
	}
	// FXU1 carries more than FXU0 (Table 3: 16.5 vs 11.1).
	if r.MipsFXU1 <= r.MipsFXU0 {
		t.Errorf("CFD FXU1 (%.1f) <= FXU0 (%.1f)", r.MipsFXU1, r.MipsFXU0)
	}
	// Cache miss ratio ~1% of FXU instructions (band 0.3..2%).
	if cr := r.CacheMissRatio(); cr < 0.003 || cr > 0.02 {
		t.Errorf("CFD cache miss ratio = %.4f, want ~0.01", cr)
	}
	// TLB miss ratio ~0.1% (band 0.02..0.4%).
	if tr := r.TLBMissRatio(); tr < 0.0002 || tr > 0.004 {
		t.Errorf("CFD TLB miss ratio = %.5f, want ~0.001", tr)
	}
	// Flops per memory instruction well below the matmul's 3.0 (paper:
	// 0.53 with FP refs, 0.63 with the FXU approximation; band 0.3..1.2).
	if fm := r.FlopsPerMemRef(); fm < 0.3 || fm > 1.2 {
		t.Errorf("CFD flops/memref = %.2f, want ~0.6", fm)
	}
	// Divides execute (~3% of flops) but the counter reads zero.
	if r.MflopsDiv != 0 {
		t.Errorf("CFD Mflops-div = %v, want 0 (hardware bug)", r.MflopsDiv)
	}
	if st.Flops == 0 {
		t.Fatal("no architectural flops")
	}
}

func TestMatMulApproachesAchievablePeak(t *testing.T) {
	_, r := measure(t, MatMul(), 400000)
	// Paper: ~240 Mflops for the blocked, unrolled matmul.
	if r.MflopsAll < 200 || r.MflopsAll > 270 {
		t.Errorf("MatMul Mflops = %.1f, want ~240", r.MflopsAll)
	}
	// Better-performing codes do >= 80% of their flops in fma.
	if f := r.FMAFraction(); f < 0.8 {
		t.Errorf("MatMul fma fraction = %.2f, want >= 0.8", f)
	}
	// Register reuse: flops/memref ~3.0.
	if fm := r.FlopsPerMemRef(); fm < 2.2 || fm > 4.5 {
		t.Errorf("MatMul flops/memref = %.2f, want ~3.0", fm)
	}
	// Cache-resident: negligible miss ratio.
	if cr := r.CacheMissRatio(); cr > 0.003 {
		t.Errorf("MatMul cache miss ratio = %.4f, want ~0", cr)
	}
}

func TestBTSitsBetweenWorkloadAndPeak(t *testing.T) {
	_, r := measure(t, BT(), 400000)
	// Paper Table 4 reports 44 Mflops/CPU for BT on 49 CPUs, which
	// includes communication duty; pure crunch is about twice that
	// (44 / ~0.5 duty). Crunch band 70..115.
	if r.MflopsAll < 70 || r.MflopsAll > 115 {
		t.Errorf("BT crunch Mflops = %.1f, want ~90 (70..115)", r.MflopsAll)
	}
	// TLB ratio lower than the workload's (paper: 0.06% vs 0.1%).
	if tr := r.TLBMissRatio(); tr > 0.001 {
		t.Errorf("BT TLB miss ratio = %.5f, want ~0.0006", tr)
	}
	// Cache miss ratio ~1.2%.
	if cr := r.CacheMissRatio(); cr < 0.002 || cr > 0.025 {
		t.Errorf("BT cache miss ratio = %.4f, want ~0.012", cr)
	}
	if f := r.FMAFraction(); f < 0.7 {
		t.Errorf("BT fma fraction = %.2f, want fma-dominated", f)
	}
}

func TestSequentialMatchesThoughtExperiment(t *testing.T) {
	_, r := measure(t, Sequential(), 300000)
	// Paper Table 4: cache miss ratio 3%, TLB 0.2% per memory reference.
	if cr := r.CacheMissRatio(); cr < 0.025 || cr > 0.04 {
		t.Errorf("Sequential cache miss ratio = %.4f, want ~0.031", cr)
	}
	if tr := r.TLBMissRatio(); tr < 0.0015 || tr > 0.0025 {
		t.Errorf("Sequential TLB miss ratio = %.5f, want ~0.002", tr)
	}
}

func TestOrderingAcrossKernels(t *testing.T) {
	// The paper's central comparison: workload << BT << matmul.
	_, cfd := measure(t, CFD(), 200000)
	_, bt := measure(t, BT(), 200000)
	_, mm := measure(t, MatMul(), 200000)
	if !(cfd.MflopsAll < bt.MflopsAll && bt.MflopsAll < mm.MflopsAll) {
		t.Fatalf("ordering violated: cfd=%.1f bt=%.1f matmul=%.1f",
			cfd.MflopsAll, bt.MflopsAll, mm.MflopsAll)
	}
	// And the register-reuse ordering: matmul ~3.0 vs workload ~0.5.
	if mm.FlopsPerMemRef() < 3*cfd.FlopsPerMemRef() {
		t.Fatalf("reuse ordering violated: matmul %.2f vs cfd %.2f",
			mm.FlopsPerMemRef(), cfd.FlopsPerMemRef())
	}
}

func TestPagingThrashesOnSmallNode(t *testing.T) {
	k := Paging()
	cpu := power2.New(power2.Config{Seed: 1, MemoryBytes: 8 << 20}) // small node
	st := cpu.RunLimited(k.New(1), 50000)
	if st.PageFaults == 0 {
		t.Fatal("paging kernel did not fault")
	}
	d := hpm.Sub(hpm.Snapshot{}, cpu.Monitor().Snapshot())
	if ratio := hpm.SystemUserFXURatio(d); ratio <= 1 {
		t.Fatalf("system/user FXU ratio = %.2f, want > 1", ratio)
	}
}

func TestPagingKernelFineOnBigNode(t *testing.T) {
	// The same kernel on a node with enough memory only cold-faults. Run
	// more than two full sweeps of the 256 MB working set (65536 pages x 5
	// instructions per page) so steady state dominates.
	const twoSweeps = 700000
	k := Paging()
	cpu := power2.New(power2.Config{Seed: 1, MemoryBytes: 1 << 30})
	cpu.RunLimited(k.New(1), twoSweeps)
	d := hpm.Sub(hpm.Snapshot{}, cpu.Monitor().Snapshot())
	// First sweep cold-faults every page; the steady state depends on
	// sweep count. Just require the ratio to be far below the thrashing
	// case rather than absolutely small.
	thrash := power2.New(power2.Config{Seed: 1, MemoryBytes: 8 << 20})
	thrash.RunLimited(k.New(1), twoSweeps)
	dt := hpm.Sub(hpm.Snapshot{}, thrash.Monitor().Snapshot())
	if hpm.SystemUserFXURatio(d) >= hpm.SystemUserFXURatio(dt) {
		t.Fatal("big node pages as hard as small node")
	}
}

func TestWorkingSetsDeclared(t *testing.T) {
	for _, k := range All() {
		if k.WorkingSetBytes == 0 {
			t.Errorf("%s: zero working set", k.Name)
		}
	}
	if Paging().WorkingSetBytes <= 128<<20 {
		t.Error("paging kernel must oversubscribe a 128 MB node")
	}
	if MatMul().WorkingSetBytes > 256<<10 {
		t.Error("matmul must fit the 256 KB cache")
	}
}

func TestInterleavePattern(t *testing.T) {
	a := isa.NewLoop([]isa.Instr{isa.MakeInstr(isa.OpFAdd)}, nil, 1<<40, 0)
	b := isa.NewLoop([]isa.Instr{isa.MakeInstr(isa.OpFMul)}, nil, 1<<40, 0)
	s := interleave(a, 3, b, 1)
	var in isa.Instr
	var got []isa.Op
	for i := 0; i < 8; i++ {
		s.Next(&in)
		got = append(got, in.Op)
	}
	want := []isa.Op{isa.OpFAdd, isa.OpFAdd, isa.OpFAdd, isa.OpFMul,
		isa.OpFAdd, isa.OpFAdd, isa.OpFAdd, isa.OpFMul}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave = %v, want %v", got, want)
		}
	}
}

func TestInterleavePanicsOnBadCounts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	interleave(nil, 0, nil, 1)
}

func BenchmarkCFDSimulation(b *testing.B) {
	cpu := power2.New(power2.Config{Seed: 1})
	s := CFD().New(1)
	b.ResetTimer()
	cpu.RunLimited(s, uint64(b.N))
}
