package kernels

import (
	"testing"

	"repro/internal/isa"
)

// The NPB analogues are built to the benchmarks' documented performance
// characters on POWER2-class machines; these tests pin the qualitative
// signatures (orderings and pathologies), not absolute 1996 numbers.

func TestSPBetweenWorkloadAndBT(t *testing.T) {
	_, cfd := measure(t, CFD(), 200000)
	_, sp := measure(t, SP(), 200000)
	_, bt := measure(t, BT(), 200000)
	if !(cfd.MflopsAll < sp.MflopsAll && sp.MflopsAll < bt.MflopsAll) {
		t.Fatalf("ordering: cfd %.1f, sp %.1f, bt %.1f", cfd.MflopsAll, sp.MflopsAll, bt.MflopsAll)
	}
}

func TestLUSlowestSolver(t *testing.T) {
	_, lu := measure(t, LU(), 200000)
	_, sp := measure(t, SP(), 200000)
	_, bt := measure(t, BT(), 200000)
	if !(lu.MflopsAll < sp.MflopsAll && lu.MflopsAll < bt.MflopsAll) {
		t.Fatalf("LU (%.1f) should be the slowest solver (sp %.1f, bt %.1f)",
			lu.MflopsAll, sp.MflopsAll, bt.MflopsAll)
	}
	// The wavefront recurrence keeps everything on FPU0.
	if lu.MipsFPU1 > lu.MipsFPU0/4 {
		t.Errorf("LU FPU1 share too high: %.1f vs %.1f", lu.MipsFPU1, lu.MipsFPU0)
	}
}

func TestMGBandwidthBound(t *testing.T) {
	_, mg := measure(t, MG(), 200000)
	_, bt := measure(t, BT(), 200000)
	// More cache misses per memory instruction than the solvers.
	if mg.CacheMissRatio() <= bt.CacheMissRatio() {
		t.Errorf("MG cache ratio %.4f should exceed BT's %.4f", mg.CacheMissRatio(), bt.CacheMissRatio())
	}
	// Memory instructions dominate: flops/memref below 1.
	if fm := mg.FlopsPerMemRef(); fm >= 1 {
		t.Errorf("MG flops/memref = %.2f, want < 1", fm)
	}
}

func TestFTTransposeIsTLBHostile(t *testing.T) {
	_, ft := measure(t, FT(), 300000)
	_, cfd := measure(t, CFD(), 300000)
	// The paper: "we might expect high TLB miss rates from programs
	// accessing data with large memory strides" — several times the
	// workload's ratio.
	if ft.TLBMissRatio() < 3*cfd.TLBMissRatio() {
		t.Errorf("FT TLB ratio %.5f not elevated vs workload %.5f",
			ft.TLBMissRatio(), cfd.TLBMissRatio())
	}
	// Complex butterflies compile to separate adds and multiplies: no fma.
	if ft.FMAFraction() != 0 {
		t.Errorf("FT fma fraction = %.2f, want 0", ft.FMAFraction())
	}
}

func TestCGGatherBound(t *testing.T) {
	_, cg := measure(t, CG(), 300000)
	_, cfd := measure(t, CFD(), 300000)
	// The gather makes CG the slowest NPB per CPU and the most
	// cache-hostile per reference.
	if cg.MflopsAll >= cfd.MflopsAll {
		t.Errorf("CG (%.1f) should be slower than the workload average (%.1f)",
			cg.MflopsAll, cfd.MflopsAll)
	}
	if cg.CacheMissRatio() < 0.05 {
		t.Errorf("CG cache miss ratio = %.4f, want gather-dominated (>5%%)", cg.CacheMissRatio())
	}
}

func TestCGGatherDeterministicPerSeed(t *testing.T) {
	a, b := CG().New(3), CG().New(3)
	var ia, ib isa.Instr
	for i := 0; i < 1000; i++ {
		if !a.Next(&ia) || !b.Next(&ib) || ia != ib {
			t.Fatal("CG stream not deterministic for equal seeds")
		}
	}
	c := CG().New(4)
	diff := false
	a2 := CG().New(3)
	for i := 0; i < 1000; i++ {
		a2.Next(&ia)
		c.Next(&ib)
		if ia.Addr != ib.Addr {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("CG gather pattern identical across seeds")
	}
}
