// Package kernels defines the synthetic computational kernels standing in
// for the 1996 NAS workload codes. Each kernel is an instruction-stream
// generator whose mix, dependency structure and memory access pattern are
// chosen so that running it through the power2 CPU model reproduces the
// counter signature the paper reports for the corresponding code class:
//
//   - CFD: the workload-average multi-block solver — moderate fma fraction
//     (~54% of flops), serial recurrences (tridiagonal line solves) that
//     limit instruction-level parallelism, flops/memref well below 1, cache
//     miss ratio ~1% and TLB ratio ~0.1% of memory instructions.
//   - MatMul: the paper's single-node anchor — a cache-blocked, unrolled
//     matrix multiply at ~240 Mflops with flops/memref ~3.
//   - BT: an NPB-BT-like solver: fma-rich, cache-friendlier loop nests,
//     ~44 Mflops/CPU with a low TLB miss ratio.
//   - Sequential: the paper's thought experiment — a single large-array
//     sweep with no reuse (cache miss every 32 real*8 elements, TLB miss
//     every 512).
//   - Paging: a page-striding sweep over a working set far beyond node
//     memory, the >64-node oversubscription pathology.
package kernels

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/units"
)

// Kernel describes one synthetic code.
type Kernel struct {
	// Name is the registry key.
	Name string
	// Description says which workload class the kernel stands in for.
	Description string
	// WorkingSetBytes is the per-node memory demand; the campaign layer
	// compares it against node memory to decide whether a job pages.
	WorkingSetBytes uint64
	// CommBytesPerFlop scales message-passing volume with computation; the
	// node layer converts it to switch traffic and DMA transfers.
	CommBytesPerFlop float64
	// New returns a fresh, effectively unbounded instruction stream.
	// Callers bound it with isa.NewLimit.
	New func(seed uint64) isa.Stream
}

// unbounded is the iteration count used for "infinite" loops.
const unbounded = uint64(1) << 62

// arena hands out non-overlapping base addresses for a kernel's arrays so
// different arrays never alias in the cache model.
type arena struct{ next uint64 }

func (a *arena) alloc(bytes uint64) uint64 {
	// Keep arrays page-aligned and separated by a guard page.
	base := (a.next + units.PageBytes - 1) &^ (units.PageBytes - 1)
	a.next = base + bytes + units.PageBytes
	return base
}

// CFD is the workload-average kernel: one grid point of an implicit
// multi-block solver per loop trip. The body couples an addressing
// integer multiply (FXU1, 5 cycles), neighbour loads, a serial floating
// recurrence (the line-solve dependency), spill/reload traffic from poor
// register reuse, and a pivot divide every third point (~3% of flops,
// matching the paper's divide share).
//
// The solver cycles through three code phases (x-, y- and z-sweeps) at
// distinct text addresses, each heavily unrolled, so the static code
// footprint exceeds the 32 KB I-cache — the source of the paper's small
// but non-zero I-cache refill rate.
func CFD() Kernel {
	const (
		unroll     = 128 // replicas per phase body (~16 KB of code each)
		phaseIters = 60  // body executions before switching phase
	)
	return Kernel{
		Name:             "cfd",
		Description:      "multi-block implicit CFD solver (workload average)",
		WorkingSetBytes:  48 << 20, // ~48 MB: grids + solution + coefficients
		CommBytesPerFlop: 0.08,     // nearest-neighbour halo exchange
		New: func(seed uint64) isa.Stream {
			var mem arena
			grid := mem.alloc(16 << 20)  // streamed solution array
			grid2 := mem.alloc(16 << 20) // streamed RHS array
			local := mem.alloc(64 << 10) // blocked neighbour window (resident)
			coeff := mem.alloc(24 << 10) // cache-resident coefficients
			out := mem.alloc(16 << 20)

			// Streamed arrays wrap at this working set — far beyond the
			// 256 KB cache, well within the arena allocations.
			const streamWS = 8 << 20

			// emitPoint generates one grid point's work. Replica u of the
			// unrolled body advances each array slot by u elements so the
			// unrolled loop sweeps exactly like the rolled one; passOff
			// carries the sweep position across phase switches so the
			// solver keeps streaming fresh memory instead of re-reading
			// the last phase's footprint.
			emitPoint := func(b *isa.Builder, u int, passOff int64) {
				uo := int64(u)
				stride := func(s int64) int64 { return s * unroll }
				ref := func(base uint64, s int64, ws uint64) isa.Ref {
					off := uo * s
					if ws == 0 { // streaming slot: bounded by streamWS
						ws = streamWS
						off += (passOff * s) % streamWS
					}
					return isa.Ref{Base: uint64(int64(base) + off), Stride: stride(s), WorkingSet: ws}
				}

				idx := b.GPR()
				b.IntMulDiv(idx, idx)
				b.IntALU(idx, idx)

				v0, v1, v2, v3 := b.FPR(), b.FPR(), b.FPR(), b.FPR()
				c0, c1 := b.FPR(), b.FPR()
				b.LoadQuad(v0, ref(grid, 16, 0))
				b.Load(v1, ref(grid2, 8, 0))
				b.Load(v2, ref(local, 8, 32<<10))
				b.Load(v3, ref(local, 8, 32<<10))
				b.Load(c0, ref(coeff, 8, 16<<10))
				b.Load(c1, ref(coeff, 8, 16<<10))

				// Chain A: the line-solve recurrence — serial through acc,
				// carried across points. It pins the critical path and
				// stays on FPU0.
				acc := b.FPR()
				b.FMA(acc, v0, c0, acc)
				b.FAdd(acc, acc, v2)
				b.FMul(acc, acc, c0)
				b.FAdd(acc, acc, v1)
				b.FMA(acc, v3, c1, acc)
				b.FAdd(acc, acc, v3)
				b.FMul(acc, acc, c1)
				b.FMove(acc, acc)

				// Chain B: independent flux terms — ready while FPU0 is
				// busy with the recurrence, so they spill to FPU1 (the
				// source of the 1.7 asymmetry).
				flux := b.FPR()
				b.FMA(flux, v1, c1, flux)
				b.FAdd(flux, flux, v2)
				b.FMul(flux, flux, c0)
				b.FAdd(flux, flux, v0)

				// Every third point performs the pivot divide of the
				// forward elimination (~3% of flops; the hardware counter
				// never reported it).
				if u%3 == 0 {
					b.FDiv(flux, flux, c0)
				}

				// Spill traffic: codes that do not exploit the POWER2
				// register file reload neighbour values and spill
				// temporaries — pure FXU work per flop, pushing
				// flops/memref toward the measured ~0.6.
				t0, t1, t2 := b.FPR(), b.FPR(), b.FPR()
				b.Load(t0, ref(local, 8, 32<<10))
				b.Load(t1, ref(local, 8, 32<<10))
				b.Load(t2, ref(coeff, 8, 16<<10))
				b.Load(t0, ref(grid, 8, 0))
				b.Load(t1, ref(local, 8, 32<<10))
				b.Store(t2, ref(local, 8, 32<<10))

				b.Store(acc, ref(out, 8, 0))
				b.Store(flux, ref(grid2, 8, 32<<10))

				b.IntALU(idx, idx)
				b.IntALU(idx, idx)
				b.CondReg()
				b.Branch()
			}

			pass := 0
			phase := func(basePC uint64) func() isa.Stream {
				return func() isa.Stream {
					passOff := int64(pass) * phaseIters * unroll
					pass++
					b := isa.NewBuilder()
					for u := 0; u < unroll; u++ {
						emitPoint(b, u, passOff)
					}
					return b.Build(phaseIters, basePC)
				}
			}
			// Three sweep directions at distinct text addresses: ~48 KB of
			// code against a 32 KB I-cache.
			return isa.NewCycle(phase(0x10000), phase(0x40000), phase(0x70000))
		},
	}
}

// MatMul is the blocked, unrolled single-node matrix multiply the paper
// uses as its achievable-peak anchor (~240 Mflops, flops/memref ~3,
// fma-dominated).
func MatMul() Kernel {
	return Kernel{
		Name:             "matmul",
		Description:      "cache-blocked unrolled matrix multiply (240 Mflops anchor)",
		WorkingSetBytes:  192 << 10, // fits the 256 KB cache
		CommBytesPerFlop: 0,
		New: func(seed uint64) isa.Stream {
			var mem arena
			ablk := mem.alloc(64 << 10)
			bblk := mem.alloc(64 << 10)

			b := isa.NewBuilder()
			// 4x2 register block: 8 independent fma chains over quad-loaded
			// operands, everything cache-resident.
			var accs [8]uint8
			for i := range accs {
				accs[i] = b.FPR()
			}
			x0, x1 := b.FPR(), b.FPR()
			y0, y1 := b.FPR(), b.FPR()
			b.LoadQuad(x0, isa.Ref{Base: ablk, Stride: 16, WorkingSet: 48 << 10})
			b.LoadQuad(x1, isa.Ref{Base: ablk, Stride: 16, WorkingSet: 48 << 10})
			b.LoadQuad(y0, isa.Ref{Base: bblk, Stride: 16, WorkingSet: 48 << 10})
			b.LoadQuad(y1, isa.Ref{Base: bblk, Stride: 16, WorkingSet: 48 << 10})
			b.FMA(accs[0], x0, y0, accs[0])
			b.FMA(accs[1], x0, y1, accs[1])
			b.FMA(accs[2], x1, y0, accs[2])
			b.FMA(accs[3], x1, y1, accs[3])
			b.FMA(accs[4], x0, y0, accs[4])
			b.FMA(accs[5], x0, y1, accs[5])
			b.FMA(accs[6], x1, y0, accs[6])
			b.FMA(accs[7], x1, y1, accs[7])
			b.IntALU(0, 0)
			b.Branch()
			return b.Build(unbounded, 0x30000)
		},
	}
}

// BT is an NPB-BT-class kernel: loop nests rearranged for cache reuse
// (the paper credits BT's low TLB ratio to exactly this), fma-rich, with
// enough independent chains to sustain ~44 Mflops.
func BT() Kernel {
	return Kernel{
		Name:             "bt",
		Description:      "NPB BT-like block-tridiagonal solver (49-CPU reference)",
		WorkingSetBytes:  24 << 20,
		CommBytesPerFlop: 0.04,
		New: func(seed uint64) isa.Stream {
			var mem arena
			u := mem.alloc(8 << 20)
			rhs := mem.alloc(8 << 20)
			lhs := mem.alloc(64 << 10) // blocked, cache-resident factor

			b := isa.NewBuilder()
			idx := b.GPR()
			b.IntALU(idx, idx)

			// The rearranged loop nests keep the sweeps inside a working
			// window the 512-entry TLB covers (paper: BT's low TLB ratio
			// comes from exactly this restructuring); one array still
			// streams.
			v0, v1, v2 := b.FPR(), b.FPR(), b.FPR()
			c0, c1 := b.FPR(), b.FPR()
			b.LoadQuad(v0, isa.Ref{Base: u, Stride: 16, WorkingSet: 128 << 10})
			b.LoadQuad(v1, isa.Ref{Base: rhs, Stride: 16})
			b.Load(v2, isa.Ref{Base: u, Stride: 8, WorkingSet: 128 << 10})
			b.Load(c0, isa.Ref{Base: lhs, Stride: 8, WorkingSet: 32 << 10})
			b.Load(c1, isa.Ref{Base: lhs, Stride: 8, WorkingSet: 32 << 10})

			// Two interleaved recurrences: twice the ILP of the workload
			// average, which is what buys BT its 2.5x rate.
			a0, a1 := b.FPR(), b.FPR()
			b.FMA(a0, v0, c0, a0)
			b.FMA(a1, v1, c1, a1)
			b.FMA(a0, v2, c1, a0)
			b.FMA(a1, v0, c0, a1)
			b.FAdd(a0, a0, v1)
			b.FMA(a1, v2, c0, a1)
			b.FMul(a0, a0, c1)
			b.FMA(a1, v1, c1, a1)

			b.Store(a0, isa.Ref{Base: rhs, Stride: 8, WorkingSet: 128 << 10})
			b.StoreQuad(a1, isa.Ref{Base: u, Stride: 16, WorkingSet: 128 << 10})
			b.IntALU(idx, idx)
			b.Branch()
			return b.Build(unbounded, 0x40000)
		},
	}
}

// Sequential is the paper's sequential-access reference: a single large
// array swept once with trivial computation and no reuse.
func Sequential() Kernel {
	return Kernel{
		Name:             "sequential",
		Description:      "single large-array sequential sweep, no cache reuse",
		WorkingSetBytes:  64 << 20,
		CommBytesPerFlop: 0,
		New: func(seed uint64) isa.Stream {
			var mem arena
			array := mem.alloc(64 << 20)
			b := isa.NewBuilder()
			v := b.FPR()
			acc := b.FPR()
			b.Load(v, isa.Ref{Base: array, Stride: 8})
			b.FAdd(acc, acc, v)
			b.Branch()
			return b.Build(unbounded, 0x50000)
		},
	}
}

// Comm is the message-passing service kernel: what a rank's CPU executes
// while it is communicating rather than computing — memcpy of message
// buffers in and out of cache-resident staging areas, protocol integer
// work, and zero floating-point operations. Jobs interleave their compute
// kernel with this one according to their communication duty cycle, which
// is how a ~45 Mflops crunch kernel presents as the paper's ~17-22 Mflops
// at the batch-job level while FXU Mips stay high.
func Comm() Kernel {
	return Kernel{
		Name:             "comm",
		Description:      "message-passing service: buffer copies and protocol work",
		WorkingSetBytes:  256 << 10,
		CommBytesPerFlop: 0,
		New: func(seed uint64) isa.Stream {
			var mem arena
			stage := mem.alloc(64 << 10)
			user := mem.alloc(64 << 10)
			b := isa.NewBuilder()
			v0, v1 := b.FPR(), b.FPR()
			g := b.GPR()
			// Copy loop: quad in, quad out, bounded buffers.
			b.LoadQuad(v0, isa.Ref{Base: user, Stride: 16, WorkingSet: 32 << 10})
			b.StoreQuad(v0, isa.Ref{Base: stage, Stride: 16, WorkingSet: 32 << 10})
			b.LoadQuad(v1, isa.Ref{Base: stage, Stride: 16, WorkingSet: 32 << 10})
			b.StoreQuad(v1, isa.Ref{Base: user, Stride: 16, WorkingSet: 32 << 10})
			// Protocol bookkeeping.
			b.IntALU(g, g)
			b.IntALU(g, g)
			b.CondReg()
			b.Branch()
			return b.Build(unbounded, 0x70000)
		},
	}
}

// Paging is the oversubscription pathology: page-striding references over
// a working set far beyond node memory, so on a memory-limited node nearly
// every page touch faults and the OS dominates the instruction counts.
func Paging() Kernel {
	return Kernel{
		Name:             "paging",
		Description:      ">64-node oversubscribed job: page-striding, thrashing sweep",
		WorkingSetBytes:  256 << 20, // 2x a 128 MB node
		CommBytesPerFlop: 0.02,
		New: func(seed uint64) isa.Stream {
			var mem arena
			huge := mem.alloc(256 << 20)
			b := isa.NewBuilder()
			v := b.FPR()
			acc := b.FPR()
			// One touch per page: the fastest way to demand pages.
			b.Load(v, isa.Ref{Base: huge, Stride: units.PageBytes, WorkingSet: 256 << 20})
			b.FMA(acc, acc, v, acc)
			b.FAdd(acc, acc, v)
			b.IntALU(0, 0)
			b.Branch()
			return b.Build(unbounded, 0x60000)
		},
	}
}

// interleave produces a stream that alternates nA instructions from a with
// nB instructions from b, forever (both inputs must be unbounded).
func interleave(a isa.Stream, nA int, b isa.Stream, nB int) isa.Stream {
	if nA <= 0 || nB <= 0 {
		panic(fmt.Sprintf("kernels: interleave with non-positive counts %d/%d", nA, nB))
	}
	phase, taken := 0, 0
	return isa.Func(func(in *isa.Instr) bool {
		for {
			var src isa.Stream
			var limit int
			if phase == 0 {
				src, limit = a, nA
			} else {
				src, limit = b, nB
			}
			if taken < limit && src.Next(in) {
				taken++
				return true
			}
			phase = 1 - phase
			taken = 0
		}
	})
}

// All returns every kernel in a stable order.
func All() []Kernel {
	ks := []Kernel{CFD(), MatMul(), BT(), Sequential(), Paging(), Comm(), SP(), LU(), MG(), FT(), CG()}
	sort.Slice(ks, func(i, j int) bool { return ks[i].Name < ks[j].Name })
	return ks
}

// ByName looks a kernel up; the second result reports whether it exists.
func ByName(name string) (Kernel, bool) {
	for _, k := range All() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}
