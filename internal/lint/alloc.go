package lint

// A conservative, syntax-plus-types classifier for heap allocation. It
// does not re-implement the compiler's escape analysis; it identifies the
// operations that *may* allocate and errs toward reporting, because the
// contract it backs (hotalloc) is "the benchmark's AllocsPerRun == 0
// guard can never regress" — a false positive costs one reviewed
// suppression, a false negative costs a silent hot-path regression.
//
// One deliberate exemption: allocations inside the arguments of a panic
// call are skipped. A panic on a simulator hot path is a cannot-happen
// assertion; the fmt.Sprintf feeding it never runs in a valid campaign,
// and flagging it would train people to write worse assertions.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// allocSite is one potentially-allocating operation.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocPkgs are standard-library packages whose exported call surface
// allocates freely (formatting, string building, reflection). A hot path
// reaching any of them has left zero-alloc territory.
var allocPkgs = map[string]bool{
	"fmt": true, "errors": true, "log": true,
	"strings": true, "bytes": true, "strconv": true,
	"sort": true, "regexp": true, "reflect": true,
	"os": true, "io": true, "bufio": true, "net": true,
	"encoding/json": true, "encoding/binary": true,
}

// pointerShaped reports whether boxing a value of type t into an
// interface stores only a word and therefore does not allocate.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// panicSpans returns the argument spans of the panic calls in one body.
// Allocations and allocating calls inside them are exempt: a panic on a
// simulator hot path is a cannot-happen assertion, and the formatting that
// feeds it never runs in a valid campaign.
func panicSpans(n *funcNode) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := n.pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				spans = append(spans, [2]token.Pos{call.Lparen, call.Rparen})
			}
		}
		return true
	})
	return spans
}

// inSpans reports whether pos falls inside any of the spans.
func inSpans(pos token.Pos, spans [][2]token.Pos) bool {
	for _, span := range spans {
		if span[0] <= pos && pos <= span[1] {
			return true
		}
	}
	return false
}

// allocSites scans one function body (literals included) for operations
// that may hit the heap.
func allocSites(n *funcNode) []allocSite {
	p := n.pkg
	var sites []allocSite
	add := func(pos token.Pos, format string, args ...any) {
		sites = append(sites, allocSite{pos: pos, what: fmt.Sprintf(format, args...)})
	}

	// Pre-pass: the argument spans of panic calls are exempt.
	exempt := panicSpans(n)
	exempted := func(pos token.Pos) bool { return inSpans(pos, exempt) }

	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.CallExpr:
			if exempted(e.Lparen) {
				return true
			}
			classifyCall(p, e, add)
		case *ast.UnaryExpr:
			if e.Op == token.AND && !exempted(e.OpPos) {
				if _, ok := unparen(e.X).(*ast.CompositeLit); ok {
					add(e.OpPos, "address of composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if exempted(e.Lbrace) {
				return true
			}
			if t, ok := p.Info.Types[e]; ok {
				switch t.Type.Underlying().(type) {
				case *types.Map:
					add(e.Lbrace, "map literal allocates")
				case *types.Slice:
					add(e.Lbrace, "slice literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && !exempted(e.OpPos) {
				if t, ok := p.Info.Types[e]; ok {
					if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						add(e.OpPos, "string concatenation allocates")
					}
				}
			}
		case *ast.FuncLit:
			if !exempted(e.Pos()) {
				add(e.Pos(), "function literal (closure) allocates")
			}
			return true // still walk the body for its own sites
		case *ast.GoStmt:
			add(e.Go, "go statement allocates a goroutine")
		}
		return true
	})
	return sites
}

// classifyCall reports the allocating behaviours of one call expression:
// allocating builtins, allocating conversions, and interface boxing of
// arguments against the callee's signature.
func classifyCall(p *Package, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	fun := unparen(call.Fun)

	// Conversions: T(x).
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) != 1 {
			return
		}
		src := p.Info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		switch {
		case types.IsInterface(dst) && !types.IsInterface(src) && !pointerShaped(src):
			add(call.Lparen, "conversion to interface %s boxes its operand on the heap", types.TypeString(dst, types.RelativeTo(p.Types)))
		case isStringByteConversion(dst, src):
			add(call.Lparen, "string/byte-slice conversion copies and allocates")
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Lparen, "make allocates")
			case "new":
				add(call.Lparen, "new allocates")
			case "append":
				add(call.Lparen, "append may grow its backing array")
			}
			return
		}
	}

	// Interface boxing of arguments. The signature covers methods, funcs
	// and function values alike.
	sigT, ok := p.Info.Types[call.Fun]
	if !ok || sigT.Type == nil {
		return
	}
	sig, ok := sigT.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return // f(xs...) passes the slice through unboxed
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		at := p.Info.Types[arg].Type
		if at == nil {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if types.IsInterface(pt) && !types.IsInterface(at) && !pointerShaped(at) {
			add(arg.Pos(), "argument boxes into interface parameter (%s)", types.TypeString(pt, types.RelativeTo(p.Types)))
		}
	}
}

// isStringByteConversion reports a string <-> []byte/[]rune conversion.
func isStringByteConversion(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}
