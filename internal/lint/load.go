package lint

// This file loads and type-checks packages without golang.org/x/tools.
// Module-local packages are parsed and checked from source; standard
// library imports are resolved by the stdlib "source" importer. Everything
// works offline, which CI relies on.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path, e.g. repro/internal/hpm
	Name  string // package name from the source
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader resolves imports for type-checking: module-local paths from
// source, everything else through the stdlib source importer.
type loader struct {
	fset    *token.FileSet
	root    string // absolute module root (directory holding go.mod)
	modpath string // module path from go.mod
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool
}

// moduleRoot walks up from dir to the directory containing go.mod and
// returns it with the declared module path.
func moduleRoot(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the module-local package at the given import
// path, caching the result.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modpath)))
	files, name, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	p := &Package{
		Path:  path,
		Name:  name,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.cache[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of one directory as a single
// package, in deterministic file order.
func (l *loader) parseDir(dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, "", fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, "", fmt.Errorf("lint: %w", err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			return nil, "", fmt.Errorf("lint: %s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, pkgName, nil
}

// Load resolves patterns relative to dir and returns the matched packages,
// parsed and type-checked. Supported patterns are Go-style: a directory
// path ("./internal/hpm"), or a "..." wildcard ("./...",
// "./internal/lint/testdata/src/...") that walks subdirectories. As with
// the go tool, wildcard walks skip testdata and hidden directories — but a
// pattern rooted *inside* a testdata tree matches normally, which is how
// the violation fixtures are linted on purpose.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, _, err := load(dir, patterns...)
	return pkgs, err
}

// load is Load exposing the loader, whose cache holds the dependency
// closure LoadProgram hands to the interprocedural analyzers.
func load(dir string, patterns ...string) ([]*Package, *loader, error) {
	root, modpath, err := moduleRoot(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modpath: modpath,
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, walk := strings.CutSuffix(pat, "...")
		base = filepath.Join(abs, filepath.FromSlash(strings.TrimSuffix(base, "/")))
		if !strings.HasPrefix(base+string(filepath.Separator), root+string(filepath.Separator)) {
			return nil, nil, fmt.Errorf("lint: pattern %q escapes module root %s", pat, root)
		}
		if !walk {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("lint: walk %s: %w", base, err)
		}
	}
	if len(dirs) == 0 {
		return nil, nil, fmt.Errorf("lint: patterns %v matched no packages", patterns)
	}

	var pkgs []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, nil, err
		}
		path := modpath
		if rel != "." {
			path = modpath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.load(path)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, l, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go source file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") &&
			!strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
			return true
		}
	}
	return false
}
